//! Budget allocation between seeding and boosting (Section V-D,
//! Figure 13).
//!
//! A company can spend its budget nurturing initial adopters (expensive)
//! or boosting potential customers (cheap). For each tested split the
//! heuristic (1) picks seeds with IMM, (2) picks boosted users with
//! PRR-Boost, and (3) scores the combination by Monte-Carlo simulation;
//! the caller charts boosted influence against the seeding fraction.

use kboost_diffusion::monte_carlo::{estimate_sigma, McConfig};
use kboost_graph::{DiGraph, NodeId};
use kboost_rrset::imm::ImmParams;
use kboost_rrset::seeds::select_seeds;

use crate::algo::{prr_boost_lb, BoostOptions};

/// Options for a budget sweep.
#[derive(Clone, Copy, Debug)]
pub struct BudgetOptions {
    /// Number of seeds affordable if the whole budget went to seeding
    /// (the paper uses 100).
    pub max_seeds: usize,
    /// How many boosts one seed's cost buys (the paper tests 100–800).
    pub cost_ratio: usize,
    /// PRR-Boost options for the boosting side.
    pub boost: BoostOptions,
    /// IMM parameters for the seeding side (its `k` field is overwritten
    /// per allocation).
    pub imm: ImmParams,
    /// Monte-Carlo evaluation of each allocation.
    pub mc: McConfig,
}

/// Outcome of one tested allocation.
#[derive(Clone, Debug)]
pub struct BudgetPoint {
    /// Fraction of the budget spent on seeding.
    pub seed_fraction: f64,
    /// Seeds purchased.
    pub num_seeds: usize,
    /// Boosts purchased.
    pub num_boosts: usize,
    /// Monte-Carlo estimate of the boosted influence spread σ_S(B).
    pub sigma: f64,
}

/// Sweeps the given seeding fractions and scores each allocation.
///
/// A fraction `f` buys `round(f · max_seeds)` seeds and
/// `(max_seeds − seeds) · cost_ratio` boosts.
pub fn budget_sweep(g: &DiGraph, fractions: &[f64], opts: &BudgetOptions) -> Vec<BudgetPoint> {
    let mut out = Vec::with_capacity(fractions.len());
    for &f in fractions {
        let num_seeds = ((f * opts.max_seeds as f64).round() as usize).clamp(1, opts.max_seeds);
        let num_boosts = (opts.max_seeds - num_seeds) * opts.cost_ratio;

        let mut imm = opts.imm;
        imm.k = num_seeds;
        let seeds = select_seeds(g, &imm);

        let boosts: Vec<NodeId> = if num_boosts == 0 {
            Vec::new()
        } else {
            prr_boost_lb(g, &seeds, num_boosts, &opts.boost).best
        };

        let sigma = estimate_sigma(g, &seeds, &boosts, &opts.mc);
        out.push(BudgetPoint {
            seed_fraction: f,
            num_seeds,
            num_boosts,
            sigma,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kboost_graph::generators::preferential_attachment;
    use kboost_graph::probability::ProbabilityModel;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn sweep_produces_monotone_budget_accounting() {
        let mut rng = SmallRng::seed_from_u64(41);
        let g =
            preferential_attachment(300, 3, 0.2, ProbabilityModel::Constant(0.05), 2.0, &mut rng);
        let opts = BudgetOptions {
            max_seeds: 10,
            cost_ratio: 5,
            boost: BoostOptions {
                threads: 2,
                seed: 1,
                max_sketches: Some(20_000),
                ..Default::default()
            },
            imm: ImmParams {
                k: 1,
                epsilon: 0.5,
                ell: 1.0,
                threads: 2,
                seed: 2,
                max_sketches: Some(20_000),
                min_sketches: 0,
            },
            mc: McConfig::quick(400, 3),
        };
        let points = budget_sweep(&g, &[0.5, 1.0], &opts);
        assert_eq!(points.len(), 2);
        // Full seeding buys 10 seeds and no boosts.
        assert_eq!(points[1].num_seeds, 10);
        assert_eq!(points[1].num_boosts, 0);
        // Half seeding buys 5 seeds and 25 boosts.
        assert_eq!(points[0].num_seeds, 5);
        assert_eq!(points[0].num_boosts, 25);
        for p in &points {
            assert!(p.sigma >= p.num_seeds as f64, "sigma below seed count");
        }
    }

    fn tiny_opts() -> BudgetOptions {
        BudgetOptions {
            max_seeds: 4,
            cost_ratio: 3,
            boost: BoostOptions {
                threads: 2,
                seed: 5,
                max_sketches: Some(5_000),
                ..Default::default()
            },
            imm: ImmParams {
                k: 1,
                epsilon: 0.5,
                ell: 1.0,
                threads: 2,
                seed: 6,
                max_sketches: Some(5_000),
                min_sketches: 0,
            },
            mc: McConfig::quick(100, 1),
        }
    }

    fn tiny_graph() -> kboost_graph::DiGraph {
        let mut rng = SmallRng::seed_from_u64(43);
        preferential_attachment(60, 2, 0.1, ProbabilityModel::Constant(0.1), 2.0, &mut rng)
    }

    #[test]
    fn zero_fraction_clamps_to_one_seed() {
        // A fraction of 0 cannot buy zero seeds — seeding is what creates
        // influence to boost; the sweep clamps to one seed and spends the
        // rest on boosts.
        let points = budget_sweep(&tiny_graph(), &[0.0], &tiny_opts());
        assert_eq!(points.len(), 1);
        assert_eq!(points[0].num_seeds, 1);
        assert_eq!(points[0].num_boosts, 9); // (4 − 1) · 3
        assert!(points[0].sigma >= 1.0);
    }

    #[test]
    fn empty_fraction_list_is_an_empty_sweep() {
        let points = budget_sweep(&tiny_graph(), &[], &tiny_opts());
        assert!(points.is_empty());
    }
}
