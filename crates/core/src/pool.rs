//! The retained PRR-graph pool with `Δ̂` / `µ̂` estimators.
//!
//! Boostable PRR-graphs live in a flat [`PrrArena`] (single shared arrays,
//! no per-graph allocation) that the sampling workers build incrementally
//! as [`PrrArenaShard`]s — converting a finished sketch pool into a
//! `PrrPool` is a move, not a copy. Both estimators sweep the arena with a
//! deterministic parallel fan-out: the arena is split into contiguous
//! graph ranges, each worker counts hits with its own scratch, and the
//! per-range counts are summed — so estimates are exact counts,
//! independent of the thread count.

use kboost_diffusion::sim::BoostMask;
use kboost_graph::NodeId;
use kboost_prr::{CompressedPrr, PrrArena, PrrArenaShard, PrrEvalScratch, PrrGraphView};
use kboost_rrset::sketch::SketchPool;

/// Reusable workspace for [`PrrPool::evaluate_many_with`].
///
/// Holds the inverted candidate-membership bitsets plus one hit-count
/// accumulator set per estimator worker. Grown on first use, fully
/// overwritten on every call (so reuse can never leak state between
/// batches), and reusable across pools and batch shapes. `Default` is
/// the empty workspace.
#[derive(Default)]
pub struct EvalManyScratch {
    /// node → bitset of the candidates containing it (`n · ⌈C/64⌉` words).
    membership: Vec<u64>,
    /// Per-worker accumulators; index = worker slot in the fan-out.
    workers: Vec<EvalWorkerScratch>,
}

/// One estimator worker's slice of [`EvalManyScratch`].
#[derive(Default)]
struct EvalWorkerScratch {
    delta: Vec<u64>,
    mu: Vec<u64>,
    rel: Vec<u64>,
    prr: PrrEvalScratch,
}

/// A pool of sampled PRR-graphs for a fixed `(G, S, k)`.
///
/// Provides the two estimators of Section IV:
/// `Δ̂_R(B) = n/|R| · Σ f_R(B)` and `µ̂_R(B) = n/|R| · Σ f⁻_R(B)`.
///
/// `Clone` is a flat-array copy of the arena plus the counters — what
/// the serving subsystem (`kboost-serve`) pays to freeze an immutable
/// epoch snapshot while the maintainer keeps mutating its own pool.
#[derive(Clone)]
pub struct PrrPool {
    arena: PrrArena,
    n: usize,
    total: u64,
    empties: u64,
    threads: usize,
}

impl PrrPool {
    /// Converts a finished sketch pool into an arena-backed PRR pool.
    ///
    /// The pool's merged sampling shard *is* the arena — this constructor
    /// moves it, there is no copy stage. `n` is the host-graph node count;
    /// `threads` bounds the parallel fan-out of
    /// [`delta_hat`](Self::delta_hat) / [`mu_hat`](Self::mu_hat). The
    /// sketch covers are dropped — critical sets are stored once, in the
    /// arena.
    pub fn new(inner: SketchPool<PrrArenaShard>, n: usize, threads: usize) -> Self {
        let (_covers, shard, total, _cover_empties) = inner.into_parts();
        let arena = PrrArena::from_shard(shard);
        // The sketch pool counts *cover-less* samples; the pool's empty
        // count means *not stored* (activated / hopeless). Cover-less
        // boostable graphs are stored with an empty cover, so derive
        // empties from storage.
        let empties = total - arena.len() as u64;
        PrrPool {
            arena,
            n,
            total,
            empties,
            threads: threads.max(1),
        }
    }

    /// Test-only equivalence oracle: builds the pool by copying legacy
    /// per-graph payloads into the arena one by one (the pre-shard
    /// pipeline). Kept so tests can assert the shard path is byte-equal;
    /// do not use outside tests/benches.
    pub fn from_legacy(inner: SketchPool<Vec<CompressedPrr>>, n: usize, threads: usize) -> Self {
        let (_covers, payloads, total, _cover_empties) = inner.into_parts();
        let empties = total - payloads.len() as u64;
        PrrPool {
            arena: PrrArena::from_graphs(payloads),
            n,
            total,
            empties,
            threads: threads.max(1),
        }
    }

    /// Assembles a pool from an already-built arena and its sample
    /// counters — the constructor the online maintenance subsystem (and
    /// its rebuild oracle) uses when the arena was not produced by a
    /// single sampling pass.
    pub fn from_raw_parts(
        arena: PrrArena,
        n: usize,
        total: u64,
        empties: u64,
        threads: usize,
    ) -> Self {
        PrrPool {
            arena,
            n,
            total,
            empties,
            threads: threads.max(1),
        }
    }

    /// Mutable access to the arena for online maintenance: tombstoning
    /// stale graphs, absorbing refresh shards, compacting. Callers must
    /// keep the sample counters in sync via
    /// [`record_refresh`](Self::record_refresh).
    pub fn arena_mut(&mut self) -> &mut PrrArena {
        &mut self.arena
    }

    /// Records one refresh step of the online maintainer: `invalidated`
    /// samples were debited — of which `invalidated_empty` were empty
    /// samples (only detectable under exact staleness, where their
    /// footprints are retained) and the rest tombstoned stored graphs —
    /// and `drawn` fresh samples, `drawn_empties` of them empty, were
    /// absorbed in their place. With `drawn == invalidated` the
    /// denominator is unchanged and the estimators stay unbiased over the
    /// refreshed slots.
    pub fn record_refresh(
        &mut self,
        invalidated: u64,
        invalidated_empty: u64,
        drawn: u64,
        drawn_empties: u64,
    ) {
        debug_assert!(self.total >= invalidated);
        debug_assert!(self.empties >= invalidated_empty);
        self.total = self.total - invalidated + drawn;
        self.empties = self.empties - invalidated_empty + drawn_empties;
    }

    /// Host-graph node count.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Total samples drawn, including non-boostable graphs.
    pub fn total_samples(&self) -> u64 {
        self.total
    }

    /// Samples that produced no boostable graph (activated or hopeless).
    pub fn empty_samples(&self) -> u64 {
        self.empties
    }

    /// The flat storage of the boostable PRR-graphs.
    pub fn arena(&self) -> &PrrArena {
        &self.arena
    }

    /// The stored boostable PRR-graphs — **all** of them, tombstoned
    /// included; online consumers should pair this with
    /// [`arena()`](Self::arena)`.is_live(i)`.
    pub fn graphs(&self) -> impl Iterator<Item = PrrGraphView<'_>> {
        self.arena.iter()
    }

    /// Number of stored *live* boostable graphs (tombstoned graphs from
    /// online maintenance are excluded).
    pub fn num_boostable(&self) -> usize {
        self.arena.num_live()
    }

    /// Counts live stored graphs satisfying `hit`, fanning out over
    /// contiguous arena ranges. Deterministic: addition over disjoint
    /// exact counts. Tombstoned graphs never count.
    fn count_hits<F>(&self, hit: F) -> u64
    where
        F: Fn(PrrGraphView<'_>, &mut PrrEvalScratch) -> bool + Sync,
    {
        let num_graphs = self.arena.len();
        let count_range = |range: std::ops::Range<usize>| -> u64 {
            let mut scratch = PrrEvalScratch::default();
            range
                .filter(|&i| self.arena.is_live(i) && hit(self.arena.graph(i), &mut scratch))
                .count() as u64
        };
        let workers = self.threads.min(num_graphs.max(1));
        if workers <= 1 || num_graphs < 1024 {
            return count_range(0..num_graphs);
        }
        let per = num_graphs.div_ceil(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let lo = (per * w).min(num_graphs);
                    let hi = (lo + per).min(num_graphs);
                    let count_range = &count_range;
                    scope.spawn(move || count_range(lo..hi))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("estimator worker panicked"))
                .sum()
        })
    }

    /// `Δ̂(B)`: the unbiased PRR estimate of the boost of influence.
    pub fn delta_hat(&self, boost: &[NodeId]) -> f64 {
        let mask = BoostMask::from_nodes(self.n, boost);
        let hits = self.count_hits(|g, scratch| g.f(&mask, scratch));
        self.n as f64 * hits as f64 / self.total.max(1) as f64
    }

    /// `µ̂(B)`: the lower-bound estimate via critical sets.
    pub fn mu_hat(&self, boost: &[NodeId]) -> f64 {
        let mask = BoostMask::from_nodes(self.n, boost);
        let hits = self.count_hits(|g, _| g.critical().iter().any(|&v| mask.contains(v)));
        self.n as f64 * hits as f64 / self.total.max(1) as f64
    }

    /// Scores a whole batch of candidate boost sets in **one traversal
    /// of the arena**, returning `(Δ̂, µ̂)` per candidate — bit-for-bit
    /// equal to calling [`delta_hat`](Self::delta_hat) /
    /// [`mu_hat`](Self::mu_hat) per set, at a fraction of the cost.
    ///
    /// The kernel inverts the batch into per-node candidate bitsets
    /// (`⌈C/64⌉` words per node). Per stored graph it then unions the
    /// bitsets of the graph's *boost-edge heads* — the only nodes whose
    /// boosting can change `f_R` — and runs the forward evaluation only
    /// for the candidates in that union: for every other candidate
    /// `f_R(B) = f_R(∅) = 0`, since a stored graph is by definition
    /// *boostable* (root not live-reachable). `µ̂` needs no traversal at
    /// all: a candidate µ-hits a graph iff its bitset intersects the
    /// union over the graph's critical set. Real candidate sets are
    /// small against `n`, so most graphs are settled by the two bitset
    /// unions alone.
    ///
    /// The parallel fan-out mirrors [`delta_hat`](Self::delta_hat):
    /// contiguous arena ranges, per-range exact hit counts summed in
    /// range order — deterministic for any thread count.
    pub fn evaluate_many(&self, candidates: &[Vec<NodeId>]) -> Vec<(f64, f64)> {
        self.evaluate_many_with(candidates, &mut EvalManyScratch::default())
    }

    /// [`evaluate_many`](Self::evaluate_many) with a caller-owned
    /// workspace: the membership bitsets and every worker's hit
    /// accumulators live in `scratch` and are reused across calls, so a
    /// query worker scoring batches in a loop performs no steady-state
    /// heap allocation beyond the returned result vector. Results are
    /// bit-for-bit identical to the allocating entry point — the
    /// workspace is fully overwritten before use.
    pub fn evaluate_many_with(
        &self,
        candidates: &[Vec<NodeId>],
        scratch: &mut EvalManyScratch,
    ) -> Vec<(f64, f64)> {
        let c = candidates.len();
        if c == 0 {
            return Vec::new();
        }
        let words = c.div_ceil(64);
        let num_graphs = self.arena.len();
        let fan_out = self.threads.min(num_graphs.max(1));
        let workers = if fan_out <= 1 || num_graphs < 1024 {
            1
        } else {
            fan_out
        };
        let EvalManyScratch {
            membership,
            workers: worker_scratch,
        } = scratch;
        // node → bitset of the candidates containing it.
        membership.clear();
        membership.resize(self.n * words, 0);
        for (ci, set) in candidates.iter().enumerate() {
            for &v in set {
                membership[v.index() * words + ci / 64] |= 1u64 << (ci % 64);
            }
        }
        if worker_scratch.len() < workers {
            worker_scratch.resize_with(workers, EvalWorkerScratch::default);
        }
        let membership = &*membership;
        let eval_range = |range: std::ops::Range<usize>, ws: &mut EvalWorkerScratch| {
            ws.delta.clear();
            ws.delta.resize(c, 0);
            ws.mu.clear();
            ws.mu.resize(c, 0);
            ws.rel.clear();
            ws.rel.resize(words, 0);
            for i in range {
                if !self.arena.is_live(i) {
                    continue;
                }
                let g = self.arena.graph(i);
                // µ̂: a candidate hits iff it intersects the critical set.
                ws.rel.iter_mut().for_each(|w| *w = 0);
                for &v in g.critical() {
                    let base = v.index() * words;
                    for (w, r) in ws.rel.iter_mut().enumerate() {
                        *r |= membership[base + w];
                    }
                }
                for (w, &r) in ws.rel.iter().enumerate() {
                    let mut bits = r;
                    while bits != 0 {
                        ws.mu[w * 64 + bits.trailing_zeros() as usize] += 1;
                        bits &= bits - 1;
                    }
                }
                // Δ̂: evaluate f_R only for candidates holding at least
                // one of this graph's boost-edge heads.
                ws.rel.iter_mut().for_each(|w| *w = 0);
                g.for_each_boost_head(|v| {
                    let base = v.index() * words;
                    for (w, r) in ws.rel.iter_mut().enumerate() {
                        *r |= membership[base + w];
                    }
                });
                for (w, &r) in ws.rel.iter().enumerate() {
                    let mut bits = r;
                    while bits != 0 {
                        let ci = w * 64 + bits.trailing_zeros() as usize;
                        let hit = g.f_by(
                            |v| membership[v.index() * words + ci / 64] >> (ci % 64) & 1 == 1,
                            &mut ws.prr,
                        );
                        ws.delta[ci] += hit as u64;
                        bits &= bits - 1;
                    }
                }
            }
        };
        if workers <= 1 {
            eval_range(0..num_graphs, &mut worker_scratch[0]);
        } else {
            let per = num_graphs.div_ceil(workers);
            std::thread::scope(|scope| {
                for (w, ws) in worker_scratch.iter_mut().take(workers).enumerate() {
                    let lo = (per * w).min(num_graphs);
                    let hi = (lo + per).min(num_graphs);
                    let eval_range = &eval_range;
                    scope.spawn(move || eval_range(lo..hi, ws));
                }
            });
        }
        // Fold the per-worker exact hit counts into worker 0 — integer
        // sums over disjoint ranges, so the result is independent of both
        // fold order and thread count.
        let (acc, rest) = worker_scratch.split_at_mut(1);
        let acc = &mut acc[0];
        for ws in rest.iter().take(workers - 1) {
            for ci in 0..c {
                acc.delta[ci] += ws.delta[ci];
                acc.mu[ci] += ws.mu[ci];
            }
        }
        (0..c)
            .map(|ci| {
                (
                    self.n as f64 * acc.delta[ci] as f64 / self.total.max(1) as f64,
                    self.n as f64 * acc.mu[ci] as f64 / self.total.max(1) as f64,
                )
            })
            .collect()
    }

    /// Mean number of edges per live stored graph before and after
    /// compression: `(avg_uncompressed, avg_compressed)` — the paper's
    /// compression-ratio numerator and denominator (Tables 2–3).
    pub fn compression_stats(&self) -> (f64, f64) {
        let count = self.arena.num_live() as u64;
        if count == 0 {
            return (0.0, 0.0);
        }
        let (mut total_unc, mut total_cmp) = (0u64, 0u64);
        for i in 0..self.arena.len() {
            if self.arena.is_live(i) {
                let g = self.arena.graph(i);
                total_unc += g.uncompressed_edges() as u64;
                total_cmp += g.num_edges() as u64;
            }
        }
        (
            total_unc as f64 / count as f64,
            total_cmp as f64 / count as f64,
        )
    }

    /// Bytes used by the flat arena (graphs and critical sets).
    pub fn memory_bytes(&self) -> usize {
        self.arena.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kboost_graph::{GraphBuilder, NodeId};
    use kboost_prr::PrrFullSource;

    fn figure1_pool(threads: usize) -> PrrPool {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 0.2, 0.4).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.1, 0.2).unwrap();
        let g = b.build().unwrap();
        let source = PrrFullSource::new(&g, &[NodeId(0)], 2);
        let mut sketches: SketchPool<PrrArenaShard> = SketchPool::new(11, threads);
        sketches.extend_to(&source, 60_000);
        PrrPool::new(sketches, 3, threads)
    }

    #[test]
    fn estimators_agree_across_thread_counts() {
        let a = figure1_pool(1);
        let b = figure1_pool(4);
        assert_eq!(a.total_samples(), b.total_samples());
        assert_eq!(a.num_boostable(), b.num_boostable());
        for set in [vec![NodeId(1)], vec![NodeId(2)], vec![NodeId(1), NodeId(2)]] {
            assert_eq!(a.delta_hat(&set), b.delta_hat(&set));
            assert_eq!(a.mu_hat(&set), b.mu_hat(&set));
        }
    }

    #[test]
    fn estimators_skip_tombstoned_graphs() {
        // Tombstoning every graph whose critical set contains node 1 must
        // change Δ̂/µ̂ exactly as if those graphs were never stored — while
        // the denominator (total samples) stays put.
        let mut pool = figure1_pool(2);
        let total = pool.total_samples();
        let stale: Vec<usize> = (0..pool.arena().len())
            .filter(|&i| pool.arena().graph(i).critical().contains(&NodeId(1)))
            .collect();
        assert!(!stale.is_empty(), "degenerate pool");
        assert!(pool.mu_hat(&[NodeId(1)]) > 0.0);
        for &i in &stale {
            pool.arena_mut().tombstone(i);
        }
        assert_eq!(pool.total_samples(), total);
        assert_eq!(pool.num_boostable(), pool.arena().num_live());
        // No surviving graph has node 1 in its critical set, so µ̂({1})
        // must drop to exactly zero while the denominator stays put.
        assert_eq!(pool.mu_hat(&[NodeId(1)]), 0.0);
        let (unc, cmp) = pool.compression_stats();
        if pool.num_boostable() > 0 {
            assert!(unc > 0.0 && cmp >= 0.0);
        } else {
            assert_eq!((unc, cmp), (0.0, 0.0));
        }
    }

    #[test]
    fn record_refresh_keeps_denominator_in_sync() {
        let pool = figure1_pool(1);
        let (total, empties) = (pool.total_samples(), pool.empty_samples());
        let arena = pool.arena().compacted();
        let mut rebuilt = PrrPool::from_raw_parts(arena, 3, total, empties, 2);
        assert_eq!(rebuilt.total_samples(), total);
        assert_eq!(
            rebuilt.delta_hat(&[NodeId(1)]),
            pool.delta_hat(&[NodeId(1)])
        );
        rebuilt.record_refresh(10, 0, 10, 4);
        assert_eq!(rebuilt.total_samples(), total);
        assert_eq!(rebuilt.empty_samples(), empties + 4);
        // Exact staleness also debits refreshed empty samples.
        rebuilt.record_refresh(6, 2, 6, 1);
        assert_eq!(rebuilt.total_samples(), total);
        assert_eq!(rebuilt.empty_samples(), empties + 4 - 2 + 1);
    }

    #[test]
    fn evaluate_many_matches_per_set_oracle() {
        let pool = figure1_pool(2);
        let candidates: Vec<Vec<NodeId>> = vec![
            vec![],
            vec![NodeId(1)],
            vec![NodeId(2)],
            vec![NodeId(1), NodeId(2)],
            vec![NodeId(2), NodeId(1)],
            vec![NodeId(0)],
        ];
        let batch = pool.evaluate_many(&candidates);
        assert_eq!(batch.len(), candidates.len());
        for (set, &(d, m)) in candidates.iter().zip(&batch) {
            assert_eq!(d, pool.delta_hat(set), "Δ̂ mismatch for {set:?}");
            assert_eq!(m, pool.mu_hat(set), "µ̂ mismatch for {set:?}");
        }
        assert!(pool.evaluate_many(&[]).is_empty());
        // A batch wider than one bitset word exercises the multi-word
        // union paths.
        let wide: Vec<Vec<NodeId>> = (0..130)
            .map(|i| vec![NodeId(i % 3), NodeId((i + 1) % 3)])
            .collect();
        for (set, (d, m)) in wide.iter().zip(pool.evaluate_many(&wide)) {
            assert_eq!(d, pool.delta_hat(set));
            assert_eq!(m, pool.mu_hat(set));
        }
    }

    #[test]
    fn stats_and_memory_populated() {
        let pool = figure1_pool(2);
        assert!(pool.num_boostable() > 0);
        assert!(pool.empty_samples() > 0);
        let (unc, cmp) = pool.compression_stats();
        assert!(unc > 0.0 && cmp > 0.0);
        assert!(pool.memory_bytes() > 0);
        // µ̂ ≤ Δ̂ for any set (lower bound).
        let set = [NodeId(1)];
        assert!(pool.mu_hat(&set) <= pool.delta_hat(&set) + 1e-12);
    }
}
