//! The retained PRR-graph pool with `Δ̂` / `µ̂` estimators.
//!
//! Boostable PRR-graphs live in a flat [`PrrArena`] (single shared arrays,
//! no per-graph allocation) that the sampling workers build incrementally
//! as [`PrrArenaShard`]s — converting a finished sketch pool into a
//! `PrrPool` is a move, not a copy. Both estimators sweep the arena with a
//! deterministic parallel fan-out: the arena is split into contiguous
//! graph ranges, each worker counts hits with its own scratch, and the
//! per-range counts are summed — so estimates are exact counts,
//! independent of the thread count.

use kboost_diffusion::sim::BoostMask;
use kboost_graph::NodeId;
use kboost_prr::{CompressedPrr, PrrArena, PrrArenaShard, PrrEvalScratch, PrrGraphView};
use kboost_rrset::sketch::SketchPool;

/// A pool of sampled PRR-graphs for a fixed `(G, S, k)`.
///
/// Provides the two estimators of Section IV:
/// `Δ̂_R(B) = n/|R| · Σ f_R(B)` and `µ̂_R(B) = n/|R| · Σ f⁻_R(B)`.
pub struct PrrPool {
    arena: PrrArena,
    n: usize,
    total: u64,
    empties: u64,
    threads: usize,
}

impl PrrPool {
    /// Converts a finished sketch pool into an arena-backed PRR pool.
    ///
    /// The pool's merged sampling shard *is* the arena — this constructor
    /// moves it, there is no copy stage. `n` is the host-graph node count;
    /// `threads` bounds the parallel fan-out of
    /// [`delta_hat`](Self::delta_hat) / [`mu_hat`](Self::mu_hat). The
    /// sketch covers are dropped — critical sets are stored once, in the
    /// arena.
    pub fn new(inner: SketchPool<PrrArenaShard>, n: usize, threads: usize) -> Self {
        let (_covers, shard, total, empties) = inner.into_parts();
        PrrPool {
            arena: PrrArena::from_shard(shard),
            n,
            total,
            empties,
            threads: threads.max(1),
        }
    }

    /// Test-only equivalence oracle: builds the pool by copying legacy
    /// per-graph payloads into the arena one by one (the pre-shard
    /// pipeline). Kept so tests can assert the shard path is byte-equal;
    /// do not use outside tests/benches.
    pub fn from_legacy(inner: SketchPool<Vec<CompressedPrr>>, n: usize, threads: usize) -> Self {
        let (_covers, payloads, total, empties) = inner.into_parts();
        PrrPool {
            arena: PrrArena::from_graphs(payloads),
            n,
            total,
            empties,
            threads: threads.max(1),
        }
    }

    /// Host-graph node count.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Total samples drawn, including non-boostable graphs.
    pub fn total_samples(&self) -> u64 {
        self.total
    }

    /// Samples that produced no boostable graph (activated or hopeless).
    pub fn empty_samples(&self) -> u64 {
        self.empties
    }

    /// The flat storage of the boostable PRR-graphs.
    pub fn arena(&self) -> &PrrArena {
        &self.arena
    }

    /// The stored boostable PRR-graphs.
    pub fn graphs(&self) -> impl Iterator<Item = PrrGraphView<'_>> {
        self.arena.iter()
    }

    /// Number of stored boostable graphs.
    pub fn num_boostable(&self) -> usize {
        self.arena.len()
    }

    /// Counts stored graphs satisfying `hit`, fanning out over contiguous
    /// arena ranges. Deterministic: addition over disjoint exact counts.
    fn count_hits<F>(&self, hit: F) -> u64
    where
        F: Fn(PrrGraphView<'_>, &mut PrrEvalScratch) -> bool + Sync,
    {
        let num_graphs = self.arena.len();
        let count_range = |range: std::ops::Range<usize>| -> u64 {
            let mut scratch = PrrEvalScratch::default();
            range
                .filter(|&i| hit(self.arena.graph(i), &mut scratch))
                .count() as u64
        };
        let workers = self.threads.min(num_graphs.max(1));
        if workers <= 1 || num_graphs < 1024 {
            return count_range(0..num_graphs);
        }
        let per = num_graphs.div_ceil(workers);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let lo = (per * w).min(num_graphs);
                    let hi = (lo + per).min(num_graphs);
                    let count_range = &count_range;
                    scope.spawn(move || count_range(lo..hi))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("estimator worker panicked"))
                .sum()
        })
    }

    /// `Δ̂(B)`: the unbiased PRR estimate of the boost of influence.
    pub fn delta_hat(&self, boost: &[NodeId]) -> f64 {
        let mask = BoostMask::from_nodes(self.n, boost);
        let hits = self.count_hits(|g, scratch| g.f(&mask, scratch));
        self.n as f64 * hits as f64 / self.total.max(1) as f64
    }

    /// `µ̂(B)`: the lower-bound estimate via critical sets.
    pub fn mu_hat(&self, boost: &[NodeId]) -> f64 {
        let mask = BoostMask::from_nodes(self.n, boost);
        let hits = self.count_hits(|g, _| g.critical().iter().any(|&v| mask.contains(v)));
        self.n as f64 * hits as f64 / self.total.max(1) as f64
    }

    /// Mean number of edges per stored graph before and after compression:
    /// `(avg_uncompressed, avg_compressed)` — the paper's compression-ratio
    /// numerator and denominator (Tables 2–3).
    pub fn compression_stats(&self) -> (f64, f64) {
        let count = self.arena.len() as u64;
        if count == 0 {
            return (0.0, 0.0);
        }
        let total_unc: u64 = self.graphs().map(|p| p.uncompressed_edges() as u64).sum();
        let total_cmp = self.arena.total_edges() as u64;
        (
            total_unc as f64 / count as f64,
            total_cmp as f64 / count as f64,
        )
    }

    /// Bytes used by the flat arena (graphs and critical sets).
    pub fn memory_bytes(&self) -> usize {
        self.arena.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kboost_graph::{GraphBuilder, NodeId};
    use kboost_prr::PrrFullSource;

    fn figure1_pool(threads: usize) -> PrrPool {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 0.2, 0.4).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.1, 0.2).unwrap();
        let g = b.build().unwrap();
        let source = PrrFullSource::new(&g, &[NodeId(0)], 2);
        let mut sketches: SketchPool<PrrArenaShard> = SketchPool::new(11, threads);
        sketches.extend_to(&source, 60_000);
        PrrPool::new(sketches, 3, threads)
    }

    #[test]
    fn estimators_agree_across_thread_counts() {
        let a = figure1_pool(1);
        let b = figure1_pool(4);
        assert_eq!(a.total_samples(), b.total_samples());
        assert_eq!(a.num_boostable(), b.num_boostable());
        for set in [vec![NodeId(1)], vec![NodeId(2)], vec![NodeId(1), NodeId(2)]] {
            assert_eq!(a.delta_hat(&set), b.delta_hat(&set));
            assert_eq!(a.mu_hat(&set), b.mu_hat(&set));
        }
    }

    #[test]
    fn stats_and_memory_populated() {
        let pool = figure1_pool(2);
        assert!(pool.num_boostable() > 0);
        assert!(pool.empty_samples() > 0);
        let (unc, cmp) = pool.compression_stats();
        assert!(unc > 0.0 && cmp > 0.0);
        assert!(pool.memory_bytes() > 0);
        // µ̂ ≤ Δ̂ for any set (lower bound).
        let set = [NodeId(1)];
        assert!(pool.mu_hat(&set) <= pool.delta_hat(&set) + 1e-12);
    }
}
