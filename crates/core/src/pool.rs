//! The retained PRR-graph pool with `Δ̂` / `µ̂` estimators.

use kboost_diffusion::sim::BoostMask;
use kboost_graph::NodeId;
use kboost_prr::{CompressedPrr, PrrEvalScratch};
use kboost_rrset::sketch::SketchPool;

/// A pool of sampled PRR-graphs for a fixed `(G, S, k)`.
///
/// Wraps the raw [`SketchPool`] with the two estimators of Section IV:
/// `Δ̂_R(B) = n/|R| · Σ f_R(B)` and `µ̂_R(B) = n/|R| · Σ f⁻_R(B)`.
pub struct PrrPool {
    inner: SketchPool<CompressedPrr>,
    n: usize,
}

impl PrrPool {
    /// Wraps a sketch pool; `n` is the host-graph node count.
    pub fn new(inner: SketchPool<CompressedPrr>, n: usize) -> Self {
        PrrPool { inner, n }
    }

    /// Host-graph node count.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Total samples drawn, including non-boostable graphs.
    pub fn total_samples(&self) -> u64 {
        self.inner.total_samples()
    }

    /// The stored boostable PRR-graphs.
    pub fn graphs(&self) -> impl Iterator<Item = &CompressedPrr> {
        self.inner.payloads().iter().flatten()
    }

    /// Number of stored boostable graphs.
    pub fn num_boostable(&self) -> usize {
        self.inner.payloads().iter().flatten().count()
    }

    /// `Δ̂(B)`: the unbiased PRR estimate of the boost of influence.
    pub fn delta_hat(&self, boost: &[NodeId]) -> f64 {
        let mask = BoostMask::from_nodes(self.n, boost);
        let mut scratch = PrrEvalScratch::default();
        let hits = self.graphs().filter(|p| p.f(&mask, &mut scratch)).count();
        self.n as f64 * hits as f64 / self.total_samples().max(1) as f64
    }

    /// `µ̂(B)`: the lower-bound estimate via critical sets.
    pub fn mu_hat(&self, boost: &[NodeId]) -> f64 {
        let mask = BoostMask::from_nodes(self.n, boost);
        let hits = self
            .graphs()
            .filter(|p| p.critical().iter().any(|&v| mask.contains(v)))
            .count();
        self.n as f64 * hits as f64 / self.total_samples().max(1) as f64
    }

    /// Mean number of edges per stored graph before and after compression:
    /// `(avg_uncompressed, avg_compressed)` — the paper's compression-ratio
    /// numerator and denominator (Tables 2–3).
    pub fn compression_stats(&self) -> (f64, f64) {
        let mut total_unc = 0u64;
        let mut total_cmp = 0u64;
        let mut count = 0u64;
        for p in self.graphs() {
            total_unc += p.uncompressed_edges() as u64;
            total_cmp += p.num_edges() as u64;
            count += 1;
        }
        if count == 0 {
            (0.0, 0.0)
        } else {
            (total_unc as f64 / count as f64, total_cmp as f64 / count as f64)
        }
    }

    /// Bytes used by the stored boostable PRR-graphs.
    pub fn payload_memory_bytes(&self) -> usize {
        self.graphs().map(|p| p.memory_bytes()).sum()
    }

    /// Bytes used by the stored critical-set covers.
    pub fn cover_memory_bytes(&self) -> usize {
        self.inner.cover_memory_bytes()
    }

    /// Access to the underlying sketch pool.
    pub fn sketches(&self) -> &SketchPool<CompressedPrr> {
        &self.inner
    }
}
