//! Algorithm 2 — PRR-Boost — and its light variant PRR-Boost-LB.

use std::time::Instant;

use kboost_graph::{DiGraph, NodeId};
use kboost_prr::{greedy_delta_selection, PrrFullSource, PrrLbSource};
use kboost_rrset::imm::{run_imm, ImmParams};

use crate::pool::PrrPool;

/// Tuning knobs shared by both algorithms.
#[derive(Clone, Copy, Debug)]
pub struct BoostOptions {
    /// Approximation slack ε (paper default 0.5).
    pub epsilon: f64,
    /// Failure exponent ℓ (paper default 1; Algorithm 2 internally uses
    /// `ℓ' = ℓ·(1 + log 3/log n)`).
    pub ell: f64,
    /// Sketch-generation threads (paper: 8 OpenMP threads).
    pub threads: usize,
    /// RNG seed.
    pub seed: u64,
    /// Optional sketch cap for bounded experiment runs.
    pub max_sketches: Option<u64>,
    /// Sketch floor (see [`ImmParams::min_sketches`]).
    pub min_sketches: u64,
}

impl Default for BoostOptions {
    fn default() -> Self {
        BoostOptions {
            epsilon: 0.5,
            ell: 1.0,
            threads: 8,
            seed: 0x0B00_57ED,
            max_sketches: None,
            min_sketches: 0,
        }
    }
}

impl BoostOptions {
    fn imm_params(&self, g: &DiGraph, k: usize) -> ImmParams {
        let n = (g.num_nodes() as f64).max(2.0);
        // Algorithm 2 line 1: ℓ' = ℓ · (1 + log 3 / log n).
        let ell_prime = self.ell * (1.0 + 3f64.ln() / n.ln());
        ImmParams {
            k,
            epsilon: self.epsilon,
            ell: ell_prime,
            threads: self.threads,
            seed: self.seed,
            max_sketches: self.max_sketches,
            min_sketches: self.min_sketches,
        }
    }
}

/// Diagnostics of a PRR-Boost / PRR-Boost-LB run.
#[derive(Clone, Debug, Default)]
pub struct BoostStats {
    /// Total PRR-graphs sampled (boostable or not).
    pub total_samples: u64,
    /// Stored boostable PRR-graphs.
    pub boostable: u64,
    /// Wall-clock seconds in the sampling phase.
    pub sampling_secs: f64,
    /// Wall-clock seconds in node selection.
    pub selection_secs: f64,
    /// Mean phase-I edges per boostable graph (compression-ratio
    /// numerator).
    pub avg_uncompressed_edges: f64,
    /// Mean compressed edges per boostable graph (denominator).
    pub avg_compressed_edges: f64,
    /// Bytes retained for boostable PRR-graphs (arena, or covers for the
    /// LB variant).
    pub memory_bytes: usize,
}

/// Result of a boosting run.
#[derive(Clone, Debug)]
pub struct BoostOutcome {
    /// The returned boost set `B_sa` (PRR-Boost) or `B_µ` (PRR-Boost-LB).
    pub best: Vec<NodeId>,
    /// The lower-bound-greedy set `B_µ`.
    pub b_mu: Vec<NodeId>,
    /// The `Δ̂`-greedy set `B_Δ` (empty for PRR-Boost-LB).
    pub b_delta: Vec<NodeId>,
    /// `Δ̂(best)` under the run's own pool (PRR-Boost) or `µ̂(B_µ)`
    /// (PRR-Boost-LB).
    pub estimate: f64,
    /// Run diagnostics.
    pub stats: BoostStats,
}

/// PRR-Boost (Algorithm 2): returns the boost set and, for further
/// analysis (sandwich ratios, re-estimation), the PRR-graph pool.
pub fn prr_boost(
    g: &DiGraph,
    seeds: &[NodeId],
    k: usize,
    opts: &BoostOptions,
) -> (BoostOutcome, PrrPool) {
    let t0 = Instant::now();
    let source = PrrFullSource::new(g, seeds, k);
    // Lines 2-3: IMM sampling sized for µ, plus the µ-greedy selection.
    let run = run_imm(&source, &opts.imm_params(g, k));
    let sampling_secs = t0.elapsed().as_secs_f64();
    let b_mu = run.result.selected.clone();

    let pool = PrrPool::new(run.pool, g.num_nodes(), opts.threads);

    // Line 4: greedy selection directly on Δ̂ over the same PRR-graphs,
    // via the inverted coverage index.
    let t1 = Instant::now();
    let delta_sel = greedy_delta_selection(pool.arena(), g.num_nodes(), k, opts.threads);
    let b_delta = delta_sel.selected;

    // Line 5: the Sandwich choice — keep whichever set has the larger
    // estimated boost.
    let est_mu = pool.delta_hat(&b_mu);
    let est_delta = pool.delta_hat(&b_delta);
    let (best, estimate) = if est_delta >= est_mu {
        (b_delta.clone(), est_delta)
    } else {
        (b_mu.clone(), est_mu)
    };
    let selection_secs = t1.elapsed().as_secs_f64();

    let (avg_unc, avg_cmp) = pool.compression_stats();
    let stats = BoostStats {
        total_samples: pool.total_samples(),
        boostable: pool.num_boostable() as u64,
        sampling_secs,
        selection_secs,
        avg_uncompressed_edges: avg_unc,
        avg_compressed_edges: avg_cmp,
        memory_bytes: pool.memory_bytes(),
    };

    (
        BoostOutcome {
            best,
            b_mu,
            b_delta,
            estimate,
            stats,
        },
        pool,
    )
}

/// PRR-Boost-LB (Section V-C): maximizes only the submodular lower bound,
/// trading a slightly weaker empirical solution for faster sampling and a
/// far smaller memory footprint.
pub fn prr_boost_lb(g: &DiGraph, seeds: &[NodeId], k: usize, opts: &BoostOptions) -> BoostOutcome {
    let t0 = Instant::now();
    let source = PrrLbSource::new(g, seeds, k);
    let run = run_imm(&source, &opts.imm_params(g, k));
    let sampling_secs = t0.elapsed().as_secs_f64();

    let b_mu = run.result.selected;
    let estimate =
        g.num_nodes() as f64 * run.result.covered as f64 / run.pool.total_samples().max(1) as f64;

    let boostable = run.pool.covers().len() as u64;
    let stats = BoostStats {
        total_samples: run.pool.total_samples(),
        boostable,
        sampling_secs,
        selection_secs: 0.0,
        avg_uncompressed_edges: 0.0,
        avg_compressed_edges: 0.0,
        memory_bytes: run.pool.cover_memory_bytes(),
    };
    BoostOutcome {
        best: b_mu.clone(),
        b_mu,
        b_delta: Vec::new(),
        estimate,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kboost_diffusion::exact::exact_boost;
    use kboost_graph::GraphBuilder;

    fn quick_opts(seed: u64) -> BoostOptions {
        BoostOptions {
            epsilon: 0.5,
            ell: 1.0,
            threads: 2,
            seed,
            max_sketches: Some(200_000),
            min_sketches: 100_000,
        }
    }

    fn figure1() -> DiGraph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 0.2, 0.4).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.1, 0.2).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn figure1_boosts_v0_not_v1() {
        // Section III-A: with one boost, v0 (node 1) beats v1 (node 2).
        let g = figure1();
        let (out, pool) = prr_boost(&g, &[NodeId(0)], 1, &quick_opts(21));
        assert_eq!(out.best, vec![NodeId(1)]);
        // Δ̂ should approximate Δ({v0}) = 0.22.
        let est = pool.delta_hat(&[NodeId(1)]);
        let truth = exact_boost(&g, &[NodeId(0)], &[NodeId(1)]);
        assert!((est - truth).abs() < 0.05, "Δ̂ {est} vs Δ {truth}");
    }

    #[test]
    fn lb_variant_agrees_on_figure1() {
        let g = figure1();
        let out = prr_boost_lb(&g, &[NodeId(0)], 1, &quick_opts(22));
        assert_eq!(out.best, vec![NodeId(1)]);
        assert!(out.stats.total_samples > 0);
        assert!(out.b_delta.is_empty());
    }

    #[test]
    fn k2_selects_both_path_nodes() {
        let g = figure1();
        let (out, _) = prr_boost(&g, &[NodeId(0)], 2, &quick_opts(23));
        let mut best = out.best.clone();
        best.sort_unstable();
        assert_eq!(best, vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn stats_populated() {
        let g = figure1();
        let (out, _) = prr_boost(&g, &[NodeId(0)], 1, &quick_opts(24));
        assert!(out.stats.total_samples > 0);
        assert!(out.stats.boostable > 0);
        assert!(out.stats.avg_compressed_edges > 0.0);
        assert!(out.stats.memory_bytes > 0);
    }

    #[test]
    fn seeds_never_selected() {
        // A graph where the seed has huge in-probability edges: boosting it
        // would look attractive if allowed.
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(1), NodeId(0), 0.5, 1.0).unwrap();
        b.add_edge(NodeId(0), NodeId(1), 0.2, 0.4).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.2, 0.4).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 0.2, 0.4).unwrap();
        let g = b.build().unwrap();
        let (out, _) = prr_boost(&g, &[NodeId(0)], 2, &quick_opts(25));
        assert!(
            !out.best.contains(&NodeId(0)),
            "seed in boost set: {:?}",
            out.best
        );
        let lb = prr_boost_lb(&g, &[NodeId(0)], 2, &quick_opts(26));
        assert!(!lb.best.contains(&NodeId(0)));
    }
}

/// PRR-Boost with the SSA-style adaptive sampler instead of IMM
/// (Section IV-A notes either framework applies). Stops sampling once the
/// greedy solution's estimate validates on an independent pool — usually
/// far fewer sketches than IMM's worst-case bound, at the cost of the
/// formal guarantee.
pub fn prr_boost_ssa(
    g: &DiGraph,
    seeds: &[NodeId],
    k: usize,
    opts: &BoostOptions,
) -> (BoostOutcome, PrrPool) {
    use kboost_rrset::ssa::{run_ssa, SsaParams};

    let t0 = Instant::now();
    let source = kboost_prr::PrrFullSource::new(g, seeds, k);
    let params = SsaParams {
        k,
        epsilon: opts.epsilon,
        initial: 2_000,
        max_sketches: opts.max_sketches.unwrap_or(u64::MAX / 2),
        threads: opts.threads,
        seed: opts.seed,
    };
    let run = run_ssa(&source, &params);
    let sampling_secs = t0.elapsed().as_secs_f64();
    let b_mu = run.result.selected.clone();

    let pool = PrrPool::new(run.pool, g.num_nodes(), opts.threads);
    let t1 = Instant::now();
    let b_delta = greedy_delta_selection(pool.arena(), g.num_nodes(), k, opts.threads).selected;
    let est_mu = pool.delta_hat(&b_mu);
    let est_delta = pool.delta_hat(&b_delta);
    let (best, estimate) = if est_delta >= est_mu {
        (b_delta.clone(), est_delta)
    } else {
        (b_mu.clone(), est_mu)
    };
    let selection_secs = t1.elapsed().as_secs_f64();

    let (avg_unc, avg_cmp) = pool.compression_stats();
    let stats = BoostStats {
        total_samples: pool.total_samples(),
        boostable: pool.num_boostable() as u64,
        sampling_secs,
        selection_secs,
        avg_uncompressed_edges: avg_unc,
        avg_compressed_edges: avg_cmp,
        memory_bytes: pool.memory_bytes(),
    };
    (
        BoostOutcome {
            best,
            b_mu,
            b_delta,
            estimate,
            stats,
        },
        pool,
    )
}

#[cfg(test)]
mod ssa_tests {
    use super::*;
    use kboost_graph::GraphBuilder;

    #[test]
    fn ssa_variant_agrees_on_figure1() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 0.2, 0.4).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.1, 0.2).unwrap();
        let g = b.build().unwrap();
        let opts = BoostOptions {
            threads: 2,
            seed: 71,
            max_sketches: Some(400_000),
            min_sketches: 0,
            ..Default::default()
        };
        let (out, pool) = prr_boost_ssa(&g, &[NodeId(0)], 1, &opts);
        assert_eq!(out.best, vec![NodeId(1)]);
        assert!(pool.total_samples() > 0);
    }
}
