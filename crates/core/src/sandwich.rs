//! Sandwich-ratio analysis (Figures 7, 9 and 12).
//!
//! The approximation factor of PRR-Boost depends on `µ(B*)/Δ_S(B*)`
//! (Theorem 2). The optimum is unknowable, so the paper charts the ratio
//! `µ̂(B)/Δ̂(B)` for 300 sets `B` obtained by replacing a random number of
//! nodes of the returned solution `B_sa` with other non-seed nodes,
//! discarding sets whose boost falls below 50% of `Δ̂(B_sa)`.

use kboost_graph::{DiGraph, NodeId};
use rand::rngs::SmallRng;
use rand::seq::IndexedRandom;
use rand::{Rng, SeedableRng};

use crate::pool::PrrPool;

/// One perturbed set's measurements.
#[derive(Clone, Copy, Debug)]
pub struct RatioPoint {
    /// `Δ̂(B)` — the x-axis of Figures 7/9/12.
    pub delta_hat: f64,
    /// `µ̂(B)/Δ̂(B)` — the y-axis.
    pub ratio: f64,
}

/// Generates `num_sets` perturbations of `base` and returns their
/// `(Δ̂, µ̂/Δ̂)` points, keeping only sets with
/// `Δ̂(B) ≥ keep_above_frac · Δ̂(base)` (the paper uses 0.5).
#[allow(clippy::too_many_arguments)]
pub fn sandwich_ratio_curve(
    g: &DiGraph,
    pool: &PrrPool,
    seeds: &[NodeId],
    base: &[NodeId],
    num_sets: usize,
    keep_above_frac: f64,
    seed: u64,
) -> Vec<RatioPoint> {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut is_excluded = vec![false; g.num_nodes()];
    for &s in seeds {
        is_excluded[s.index()] = true;
    }
    let candidates: Vec<NodeId> = g.nodes().filter(|v| !is_excluded[v.index()]).collect();

    let base_delta = pool.delta_hat(base);
    let threshold = keep_above_frac * base_delta;

    let mut points = Vec::with_capacity(num_sets);
    for _ in 0..num_sets {
        let b = perturb(base, &candidates, &mut rng);
        let delta_hat = pool.delta_hat(&b);
        if delta_hat < threshold || delta_hat <= 0.0 {
            continue;
        }
        let mu_hat = pool.mu_hat(&b);
        points.push(RatioPoint {
            delta_hat,
            ratio: mu_hat / delta_hat,
        });
    }
    points
}

/// Replaces a random number of nodes of `base` with random other
/// candidates, keeping the set size.
fn perturb(base: &[NodeId], candidates: &[NodeId], rng: &mut SmallRng) -> Vec<NodeId> {
    let k = base.len();
    if k == 0 {
        return Vec::new();
    }
    let replace = rng.random_range(0..=k);
    let mut b: Vec<NodeId> = base.to_vec();
    // Choose `replace` positions to overwrite with fresh random candidates.
    for _ in 0..replace {
        let pos = rng.random_range(0..k);
        loop {
            let candidate = *candidates.choose(rng).expect("candidate pool non-empty");
            if !b.contains(&candidate) {
                b[pos] = candidate;
                break;
            }
        }
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{prr_boost, BoostOptions};
    use kboost_graph::GraphBuilder;

    fn parallel_paths() -> DiGraph {
        // Seed fans out to 4 disjoint 2-hop paths; boosting midpoints helps.
        let mut b = GraphBuilder::new(9);
        for i in 0..4u32 {
            let mid = 1 + i;
            let end = 5 + i;
            b.add_edge(NodeId(0), NodeId(mid), 0.3, 0.6).unwrap();
            b.add_edge(NodeId(mid), NodeId(end), 0.3, 0.6).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn ratio_points_are_sane() {
        let g = parallel_paths();
        let opts = BoostOptions {
            threads: 2,
            seed: 31,
            max_sketches: Some(60_000),
            ..Default::default()
        };
        let (out, pool) = prr_boost(&g, &[NodeId(0)], 2, &opts);
        let pts = sandwich_ratio_curve(&g, &pool, &[NodeId(0)], &out.best, 100, 0.5, 7);
        assert!(!pts.is_empty());
        for p in &pts {
            assert!(p.delta_hat > 0.0);
            // µ ≤ Δ always; sampling noise can push the estimate slightly
            // over 1.
            assert!(p.ratio <= 1.05, "ratio {} > 1", p.ratio);
            assert!(p.ratio >= 0.0);
        }
    }

    #[test]
    fn curve_is_deterministic_given_seed_and_respects_threshold() {
        let g = parallel_paths();
        let opts = BoostOptions {
            threads: 2,
            seed: 33,
            max_sketches: Some(40_000),
            ..Default::default()
        };
        let (out, pool) = prr_boost(&g, &[NodeId(0)], 2, &opts);
        let base_delta = pool.delta_hat(&out.best);

        let a = sandwich_ratio_curve(&g, &pool, &[NodeId(0)], &out.best, 60, 0.5, 11);
        let b = sandwich_ratio_curve(&g, &pool, &[NodeId(0)], &out.best, 60, 0.5, 11);
        assert_eq!(a.len(), b.len());
        for (pa, pb) in a.iter().zip(&b) {
            assert_eq!(pa.delta_hat, pb.delta_hat);
            assert_eq!(pa.ratio, pb.ratio);
        }

        // Raising the keep-above threshold can only filter points, and
        // every surviving point must clear it.
        let strict = sandwich_ratio_curve(&g, &pool, &[NodeId(0)], &out.best, 60, 0.95, 11);
        assert!(strict.len() <= a.len());
        for p in &strict {
            assert!(p.delta_hat >= 0.95 * base_delta);
        }
    }

    #[test]
    fn empty_base_yields_no_points() {
        // Perturbing an empty solution produces Δ̂ = 0 sets, all filtered.
        let g = parallel_paths();
        let opts = BoostOptions {
            threads: 2,
            seed: 35,
            max_sketches: Some(20_000),
            ..Default::default()
        };
        let (_, pool) = prr_boost(&g, &[NodeId(0)], 1, &opts);
        let pts = sandwich_ratio_curve(&g, &pool, &[NodeId(0)], &[], 30, 0.5, 3);
        assert!(pts.is_empty());
    }

    #[test]
    fn perturb_keeps_size_and_dedup() {
        let mut rng = SmallRng::seed_from_u64(3);
        let base = vec![NodeId(1), NodeId(2)];
        let candidates: Vec<NodeId> = (1..9u32).map(NodeId).collect();
        for _ in 0..50 {
            let b = perturb(&base, &candidates, &mut rng);
            assert_eq!(b.len(), 2);
            assert_ne!(b[0], b[1]);
        }
    }
}
