//! PRR-Boost and PRR-Boost-LB — the paper's algorithms for the
//! k-boosting problem on general graphs (Section V).
//!
//! * [`algo`] — Algorithm 2: IMM-style sampling over PRR-graphs, greedy
//!   selection for both the submodular lower bound `µ̂` and the true
//!   objective `Δ̂`, and the Sandwich Approximation choosing between them.
//! * [`pool`] — the retained PRR-graph pool with `Δ̂`/`µ̂` estimators.
//! * [`sandwich`] — the sandwich-ratio analysis of Figures 7/9/12:
//!   perturb a solution and chart `µ̂(B)/Δ̂(B)` against `Δ̂(B)`.
//! * [`budget`] — the budget-allocation heuristic of Section V-D /
//!   Figure 13: split a budget between seeding and boosting.
//!
//! # Guarantee
//!
//! With probability at least `1 − n^−ℓ`, PRR-Boost returns a
//! `(1 − 1/e − ε)·µ(B*)/Δ_S(B*)`-approximate solution (Theorem 2);
//! PRR-Boost-LB has the same factor at lower cost (Section V-C).

pub mod algo;
pub mod budget;
pub mod pool;
pub mod sandwich;

pub use algo::{prr_boost, prr_boost_lb, prr_boost_ssa, BoostOptions, BoostOutcome, BoostStats};
pub use budget::{budget_sweep, BudgetOptions, BudgetPoint};
pub use pool::{EvalManyScratch, PrrPool};
pub use sandwich::{sandwich_ratio_curve, RatioPoint};
