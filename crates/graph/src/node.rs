use std::fmt;

// Serialization is gated: the offline build environment has no serde. The
// derives return once a vendored serde (with derive macros) is available.
#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// Identifier of a node in a [`DiGraph`](crate::DiGraph).
///
/// Node ids are dense: a graph with `n` nodes uses ids `0..n`. The id is a
/// `u32` to halve the memory footprint of adjacency arrays relative to
/// `usize` (the paper's largest network, Flickr, has 1.45M nodes — well
/// within range).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as an index usable with slices.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a node id from a slice index.
    ///
    /// # Panics
    /// Panics if `i` exceeds `u32::MAX`.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        NodeId(u32::try_from(i).expect("node index exceeds u32::MAX"))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<NodeId> for u32 {
    fn from(v: NodeId) -> Self {
        v.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        for i in [0usize, 1, 17, 4096] {
            assert_eq!(NodeId::from_index(i).index(), i);
        }
    }

    #[test]
    fn display_is_plain_number() {
        assert_eq!(NodeId(42).to_string(), "42");
    }

    #[test]
    fn ordering_follows_raw_id() {
        assert!(NodeId(3) < NodeId(10));
        assert_eq!(NodeId(7), NodeId(7));
    }
}
