//! Graph statistics and weakly-connected components.
//!
//! The paper's Table 1 reports `n`, `m`, and the average influence
//! probability per dataset, after restricting to the largest weakly
//! connected component; this module provides those measurements.

use crate::{DiGraph, GraphBuilder, NodeId};

/// Summary statistics of a graph, as reported in Table 1.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of directed edges.
    pub edges: usize,
    /// Mean base influence probability over all edges.
    pub avg_probability: f64,
    /// Mean boosted influence probability over all edges.
    pub avg_boosted_probability: f64,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Maximum in-degree.
    pub max_in_degree: usize,
}

/// Computes [`GraphStats`] for `g`.
pub fn graph_stats(g: &DiGraph) -> GraphStats {
    let mut sum_p = 0.0;
    let mut sum_pb = 0.0;
    for (_, _, p) in g.edges() {
        sum_p += p.base;
        sum_pb += p.boosted;
    }
    let m = g.num_edges();
    let denom = if m == 0 { 1.0 } else { m as f64 };
    GraphStats {
        nodes: g.num_nodes(),
        edges: m,
        avg_probability: sum_p / denom,
        avg_boosted_probability: sum_pb / denom,
        max_out_degree: g.nodes().map(|u| g.out_degree(u)).max().unwrap_or(0),
        max_in_degree: g.nodes().map(|u| g.in_degree(u)).max().unwrap_or(0),
    }
}

/// Assigns each node a weakly-connected-component label in `0..#components`
/// and returns `(labels, component_sizes)`.
pub fn weakly_connected_components(g: &DiGraph) -> (Vec<u32>, Vec<usize>) {
    const UNSEEN: u32 = u32::MAX;
    let n = g.num_nodes();
    let mut label = vec![UNSEEN; n];
    let mut sizes = Vec::new();
    let mut stack = Vec::new();

    for start in 0..n {
        if label[start] != UNSEEN {
            continue;
        }
        let comp = sizes.len() as u32;
        let mut size = 0usize;
        label[start] = comp;
        stack.push(start as u32);
        while let Some(u) = stack.pop() {
            size += 1;
            let u = NodeId(u);
            for (v, _) in g.out_edges(u) {
                if label[v.index()] == UNSEEN {
                    label[v.index()] = comp;
                    stack.push(v.0);
                }
            }
            for (v, _) in g.in_edges(u) {
                if label[v.index()] == UNSEEN {
                    label[v.index()] = comp;
                    stack.push(v.0);
                }
            }
        }
        sizes.push(size);
    }
    (label, sizes)
}

/// Restricts `g` to its largest weakly connected component, relabelling
/// nodes densely. Returns the subgraph and the mapping
/// `new id -> old id`.
///
/// Mirrors the paper's preprocessing: "we remove edges with zero influence
/// probability and keep the largest weakly connected component".
pub fn largest_weakly_connected_component(g: &DiGraph) -> (DiGraph, Vec<NodeId>) {
    let (labels, sizes) = weakly_connected_components(g);
    let Some((largest, _)) = sizes.iter().enumerate().max_by_key(|&(_, s)| *s) else {
        return (
            GraphBuilder::new(0).build().expect("empty graph builds"),
            Vec::new(),
        );
    };
    let largest = largest as u32;

    let mut old_of_new = Vec::new();
    let mut new_of_old = vec![u32::MAX; g.num_nodes()];
    for (old, &lab) in labels.iter().enumerate() {
        if lab == largest {
            new_of_old[old] = old_of_new.len() as u32;
            old_of_new.push(NodeId(old as u32));
        }
    }

    let mut b = GraphBuilder::new(old_of_new.len());
    for (u, v, p) in g.edges() {
        let (nu, nv) = (new_of_old[u.index()], new_of_old[v.index()]);
        if nu != u32::MAX && nv != u32::MAX {
            b.add_edge(NodeId(nu), NodeId(nv), p.base, p.boosted)
                .expect("probabilities already validated");
        }
    }
    (
        b.build().expect("subgraph of valid graph is valid"),
        old_of_new,
    )
}

/// Drops zero-probability edges, keeping everything else.
pub fn remove_zero_probability_edges(g: &DiGraph) -> DiGraph {
    let mut b = GraphBuilder::new(g.num_nodes());
    for (u, v, p) in g.edges() {
        if p.base > 0.0 {
            b.add_edge(u, v, p.base, p.boosted).expect("valid edge");
        }
    }
    b.build().expect("valid graph")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn two_components() -> DiGraph {
        // Component A: 0 -> 1 -> 2 ; Component B: 3 <-> 4
        let mut b = GraphBuilder::new(5);
        b.add_edge(NodeId(0), NodeId(1), 0.5, 0.6).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.5, 0.6).unwrap();
        b.add_bidirected_edge(NodeId(3), NodeId(4), 0.1, 0.2)
            .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn wcc_counts() {
        let g = two_components();
        let (labels, sizes) = weakly_connected_components(&g);
        assert_eq!(sizes.len(), 2);
        assert_eq!(sizes.iter().sum::<usize>(), 5);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[0], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
    }

    #[test]
    fn largest_wcc_extraction() {
        let g = two_components();
        let (sub, map) = largest_weakly_connected_component(&g);
        assert_eq!(sub.num_nodes(), 3);
        assert_eq!(sub.num_edges(), 2);
        assert_eq!(map, vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn stats_basic() {
        let g = two_components();
        let s = graph_stats(&g);
        assert_eq!(s.nodes, 5);
        assert_eq!(s.edges, 4);
        let expect = (0.5 + 0.5 + 0.1 + 0.1) / 4.0;
        assert!((s.avg_probability - expect).abs() < 1e-12);
        assert_eq!(s.max_out_degree, 1);
    }

    #[test]
    fn zero_probability_edges_removed() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 0.0, 0.0).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.4, 0.5).unwrap();
        let g = remove_zero_probability_edges(&b.build().unwrap());
        assert_eq!(g.num_edges(), 1);
        assert!(g.has_edge(NodeId(1), NodeId(2)));
    }

    #[test]
    fn empty_graph_stats() {
        let g = GraphBuilder::new(0).build().unwrap();
        let s = graph_stats(&g);
        assert_eq!(s.nodes, 0);
        assert_eq!(s.edges, 0);
        let (_, sizes) = weakly_connected_components(&g);
        assert!(sizes.is_empty());
    }
}
