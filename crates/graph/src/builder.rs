use std::fmt;

use crate::{csr::EdgeProbs, DiGraph, NodeId};

/// Errors produced while assembling a [`DiGraph`].
#[derive(Clone, Debug, PartialEq)]
pub enum BuildError {
    /// An endpoint id was `>= n`.
    NodeOutOfRange { node: NodeId, n: usize },
    /// A self-loop `(u, u)` was added; the diffusion model has no use for
    /// them and the tree algorithms assume their absence.
    SelfLoop { node: NodeId },
    /// The probability pair violated `0 ≤ p ≤ p' ≤ 1`.
    InvalidProbability { base: f64, boosted: f64 },
    /// The same directed edge was added twice.
    DuplicateEdge { from: NodeId, to: NodeId },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} out of range for graph with {n} nodes")
            }
            BuildError::SelfLoop { node } => write!(f, "self-loop on node {node}"),
            BuildError::InvalidProbability { base, boosted } => {
                write!(f, "invalid probability pair p={base}, p'={boosted}")
            }
            BuildError::DuplicateEdge { from, to } => {
                write!(f, "duplicate edge ({from}, {to})")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Incremental builder for [`DiGraph`].
///
/// Collects edges in any order, then sorts them into CSR form in
/// [`build`](GraphBuilder::build). Duplicate edges are rejected at build
/// time (the influence boosting model defines exactly one `(p, p')` pair per
/// directed edge).
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(u32, u32, EdgeProbs)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `n` nodes (ids `0..n`).
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "too many nodes for u32 node ids");
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Pre-allocates space for `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        let mut b = Self::new(n);
        b.edges.reserve(m);
        b
    }

    /// Number of edges added so far.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of nodes the final graph will have.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Adds the directed edge `(u, v)` with base probability `p` and boosted
    /// probability `p_boost`.
    pub fn add_edge(
        &mut self,
        u: NodeId,
        v: NodeId,
        p: f64,
        p_boost: f64,
    ) -> Result<(), BuildError> {
        if u.index() >= self.n {
            return Err(BuildError::NodeOutOfRange { node: u, n: self.n });
        }
        if v.index() >= self.n {
            return Err(BuildError::NodeOutOfRange { node: v, n: self.n });
        }
        if u == v {
            return Err(BuildError::SelfLoop { node: u });
        }
        let probs = EdgeProbs::new(p, p_boost).ok_or(BuildError::InvalidProbability {
            base: p,
            boosted: p_boost,
        })?;
        self.edges.push((u.0, v.0, probs));
        Ok(())
    }

    /// Convenience: adds both `(u, v)` and `(v, u)` with the same pair.
    ///
    /// Bidirected trees (Section VI) are built this way.
    pub fn add_bidirected_edge(
        &mut self,
        u: NodeId,
        v: NodeId,
        p: f64,
        p_boost: f64,
    ) -> Result<(), BuildError> {
        self.add_edge(u, v, p, p_boost)?;
        self.add_edge(v, u, p, p_boost)
    }

    /// Finalizes the builder into an immutable CSR graph.
    pub fn build(mut self) -> Result<DiGraph, BuildError> {
        let n = self.n;
        // Sort by (source, target) for the forward CSR and duplicate check.
        self.edges.sort_unstable_by_key(|&(u, v, _)| (u, v));
        for w in self.edges.windows(2) {
            if w[0].0 == w[1].0 && w[0].1 == w[1].1 {
                return Err(BuildError::DuplicateEdge {
                    from: NodeId(w[0].0),
                    to: NodeId(w[0].1),
                });
            }
        }

        let m = self.edges.len();
        let mut out_offsets = vec![0u32; n + 1];
        for &(u, _, _) in &self.edges {
            out_offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
        }
        let mut out_targets = Vec::with_capacity(m);
        let mut out_probs = Vec::with_capacity(m);
        for &(_, v, p) in &self.edges {
            out_targets.push(v);
            out_probs.push(p);
        }

        // Reverse CSR: counting sort by target keeps sources sorted per head.
        let mut in_offsets = vec![0u32; n + 1];
        for &(_, v, _) in &self.edges {
            in_offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut cursor: Vec<u32> = in_offsets[..n].to_vec();
        let mut in_sources = vec![0u32; m];
        let mut in_probs = vec![
            EdgeProbs {
                base: 0.0,
                boosted: 0.0
            };
            m
        ];
        for &(u, v, p) in &self.edges {
            let slot = cursor[v as usize] as usize;
            in_sources[slot] = u;
            in_probs[slot] = p;
            cursor[v as usize] += 1;
        }

        Ok(DiGraph::from_parts(
            n as u32,
            out_offsets,
            out_targets,
            out_probs,
            in_offsets,
            in_sources,
            in_probs,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_out_of_range() {
        let mut b = GraphBuilder::new(2);
        let err = b.add_edge(NodeId(0), NodeId(2), 0.1, 0.2).unwrap_err();
        assert!(matches!(err, BuildError::NodeOutOfRange { .. }));
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = GraphBuilder::new(2);
        let err = b.add_edge(NodeId(1), NodeId(1), 0.1, 0.2).unwrap_err();
        assert!(matches!(err, BuildError::SelfLoop { .. }));
    }

    #[test]
    fn rejects_bad_probabilities() {
        let mut b = GraphBuilder::new(2);
        let err = b.add_edge(NodeId(0), NodeId(1), 0.5, 0.4).unwrap_err();
        assert!(matches!(err, BuildError::InvalidProbability { .. }));
    }

    #[test]
    fn rejects_duplicates_at_build() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1), 0.1, 0.2).unwrap();
        b.add_edge(NodeId(0), NodeId(1), 0.3, 0.4).unwrap();
        let err = b.build().unwrap_err();
        assert!(matches!(err, BuildError::DuplicateEdge { .. }));
    }

    #[test]
    fn bidirected_adds_both_directions() {
        let mut b = GraphBuilder::new(2);
        b.add_bidirected_edge(NodeId(0), NodeId(1), 0.1, 0.19)
            .unwrap();
        let g = b.build().unwrap();
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert!(g.has_edge(NodeId(1), NodeId(0)));
    }

    #[test]
    fn empty_graph_builds() {
        let g = GraphBuilder::new(0).build().unwrap();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn out_edges_sorted_by_target() {
        let mut b = GraphBuilder::new(5);
        for v in [4u32, 1, 3, 2] {
            b.add_edge(NodeId(0), NodeId(v), 0.1, 0.2).unwrap();
        }
        let g = b.build().unwrap();
        let targets: Vec<u32> = g.out_edges(NodeId(0)).map(|(v, _)| v.0).collect();
        assert_eq!(targets, vec![1, 2, 3, 4]);
    }
}
