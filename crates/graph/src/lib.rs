//! Directed-graph substrate for the k-boosting problem.
//!
//! This crate provides the graph model every other `kboost` crate builds on:
//!
//! * [`DiGraph`]: an immutable directed graph in compressed-sparse-row form,
//!   with *two* influence probabilities per edge — the base probability
//!   `p_uv` and the boosted probability `p'_uv ≥ p_uv` used when the edge's
//!   head is a boosted node (Definition 1 of the paper).
//! * [`GraphBuilder`]: the only way to construct a [`DiGraph`].
//! * [`generators`]: synthetic network generators (Erdős–Rényi, preferential
//!   attachment, Watts–Strogatz, bidirected trees, and the set-cover gadget
//!   used in the paper's NP-hardness proof).
//! * [`probability`]: influence-probability models (constant, trivalency,
//!   weighted cascade, log-normal) and the boosting parameter
//!   `p' = 1 − (1−p)^β`.
//! * [`io`]: a plain-text edge-list format.
//! * [`stats`]: degree/probability statistics and weakly-connected components.
//!
//! # Example
//!
//! ```
//! use kboost_graph::{GraphBuilder, NodeId};
//!
//! // The 3-node example from Figure 1 of the paper.
//! let mut b = GraphBuilder::new(3);
//! b.add_edge(NodeId(0), NodeId(1), 0.2, 0.4).unwrap();
//! b.add_edge(NodeId(1), NodeId(2), 0.1, 0.2).unwrap();
//! let g = b.build().unwrap();
//! assert_eq!(g.num_nodes(), 3);
//! assert_eq!(g.num_edges(), 2);
//! let (v, p) = g.out_edges(NodeId(0)).next().unwrap();
//! assert_eq!(v, NodeId(1));
//! assert!((p.base - 0.2).abs() < 1e-12);
//! ```

mod builder;
mod csr;
mod node;

pub mod generators;
pub mod io;
pub mod probability;
pub mod stats;

pub use builder::{BuildError, GraphBuilder};
pub use csr::{DiGraph, EdgeProbs, InEdgeSoa};
pub use node::NodeId;

/// A set of nodes represented as a sorted, deduplicated vector.
///
/// Used for seed sets and boost sets throughout the workspace. Kept as a
/// plain vector (rather than a hash set) because algorithms iterate these
/// sets far more often than they test membership, and the sets are small.
pub type NodeSet = Vec<NodeId>;

/// Normalizes a list of nodes into a sorted, deduplicated [`NodeSet`].
pub fn node_set(mut nodes: Vec<NodeId>) -> NodeSet {
    nodes.sort_unstable();
    nodes.dedup();
    nodes
}
