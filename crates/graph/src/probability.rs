//! Influence-probability models and the boosting parameter β.
//!
//! The paper assigns base probabilities `p_uv` either by learning them from
//! action logs (general-graph experiments; Goyal et al.'s method) or by the
//! Trivalency model (tree experiments), and derives the boosted probability
//! as `p'_uv = 1 − (1 − p_uv)^β` for a boosting parameter `β > 1` (β = 2 by
//! default, i.e. "two independent chances").

use rand::Rng;

use crate::{DiGraph, EdgeProbs, NodeId};

/// How base influence probabilities are assigned to edges.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ProbabilityModel {
    /// Every edge gets the same probability.
    Constant(f64),
    /// The Trivalency model: each edge draws uniformly from
    /// {0.1, 0.01, 0.001} (used for the paper's tree experiments).
    Trivalency,
    /// The Weighted-Cascade model: `p_uv = 1 / in_degree(v)`.
    WeightedCascade,
    /// Log-normal probabilities clamped to `[0, cap]`, parameterized by the
    /// underlying normal's mean and standard deviation. Mimics the skewed
    /// distribution of probabilities learned from real action logs.
    LogNormal { mu: f64, sigma: f64, cap: f64 },
}

/// Applies the boosting parameter: `p' = 1 − (1 − p)^β`.
///
/// For β ≥ 1 this always satisfies `p' ≥ p`, matching Definition 1's
/// requirement.
#[inline]
pub fn boost_probability(p: f64, beta: f64) -> f64 {
    debug_assert!(beta >= 1.0, "boosting parameter must be >= 1");
    1.0 - (1.0 - p).powf(beta)
}

impl ProbabilityModel {
    /// Draws a base probability for edge `(u, v)`.
    ///
    /// `in_degree` is the **final** in-degree of `v` (needed by weighted
    /// cascade). Generators must therefore assign probabilities in a
    /// second pass once the topology is complete — sampling mid-generation
    /// used to silently produce `p = 0` edges; weighted cascade now
    /// panics on the impossible in-degree of 0 (the edge being sampled is
    /// itself an in-edge of `v`) to keep that bug dead.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, in_degree: usize) -> f64 {
        match *self {
            ProbabilityModel::Constant(p) => p,
            ProbabilityModel::Trivalency => {
                const LEVELS: [f64; 3] = [0.1, 0.01, 0.001];
                LEVELS[rng.random_range(0..3usize)]
            }
            ProbabilityModel::WeightedCascade => {
                assert!(
                    in_degree > 0,
                    "WeightedCascade sampled with in-degree 0: assign probabilities \
                     in a second pass, after the topology is final"
                );
                1.0 / in_degree as f64
            }
            ProbabilityModel::LogNormal { mu, sigma, cap } => {
                // Box–Muller transform; avoids pulling in rand_distr.
                let u1: f64 = rng.random_range(f64::EPSILON..1.0);
                let u2: f64 = rng.random();
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                (mu + sigma * z).exp().min(cap).max(0.0)
            }
        }
    }
}

/// Re-parameterizes a graph: re-draws every base probability from `model`
/// and sets `p' = 1 − (1−p)^β`.
pub fn assign_probabilities<R: Rng + ?Sized>(
    g: &DiGraph,
    model: ProbabilityModel,
    beta: f64,
    rng: &mut R,
) -> DiGraph {
    // In-degrees snapshot for weighted cascade.
    let in_deg: Vec<usize> = (0..g.num_nodes())
        .map(|v| g.in_degree(NodeId::from_index(v)))
        .collect();
    g.map_probs(|_, v, _| {
        let p = model.sample(rng, in_deg[v.index()]);
        EdgeProbs::new(p, boost_probability(p, beta)).expect("model produced valid probability")
    })
}

/// Changes only the boosting parameter, keeping base probabilities: used by
/// the β-sweep experiment (Figure 8/9).
pub fn reboost(g: &DiGraph, beta: f64) -> DiGraph {
    g.map_probs(|_, _, probs| {
        EdgeProbs::new(probs.base, boost_probability(probs.base, beta))
            .expect("boosting keeps probabilities valid")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn boost_probability_beta_two() {
        // β = 2: p' = 1 - (1-p)^2 = 2p - p².
        let p = 0.2;
        assert!((boost_probability(p, 2.0) - (2.0 * p - p * p)).abs() < 1e-12);
    }

    #[test]
    fn boost_probability_monotone_in_beta() {
        let p = 0.3;
        let mut prev = p;
        for beta in [1.0, 1.5, 2.0, 4.0, 8.0] {
            let b = boost_probability(p, beta);
            assert!(b >= prev - 1e-12);
            assert!((0.0..=1.0).contains(&b));
            prev = b;
        }
    }

    #[test]
    fn trivalency_draws_levels() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            let p = ProbabilityModel::Trivalency.sample(&mut rng, 0);
            assert!([0.1, 0.01, 0.001].contains(&p));
        }
    }

    #[test]
    fn weighted_cascade_uses_in_degree() {
        let mut rng = SmallRng::seed_from_u64(1);
        let p = ProbabilityModel::WeightedCascade.sample(&mut rng, 4);
        assert!((p - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "in-degree 0")]
    fn weighted_cascade_rejects_zero_in_degree() {
        let mut rng = SmallRng::seed_from_u64(1);
        ProbabilityModel::WeightedCascade.sample(&mut rng, 0);
    }

    #[test]
    fn log_normal_within_cap() {
        let mut rng = SmallRng::seed_from_u64(7);
        let model = ProbabilityModel::LogNormal {
            mu: -2.0,
            sigma: 1.0,
            cap: 0.8,
        };
        for _ in 0..200 {
            let p = model.sample(&mut rng, 0);
            assert!((0.0..=0.8).contains(&p));
        }
    }

    #[test]
    fn reboost_changes_only_boosted() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1), 0.2, 0.4).unwrap();
        let g = b.build().unwrap();
        let g3 = reboost(&g, 3.0);
        let p = g3.edge(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(p.base, 0.2);
        assert!((p.boosted - (1.0 - 0.8f64.powi(3))).abs() < 1e-12);
    }

    #[test]
    fn assign_probabilities_respects_model() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(2), 0.5, 0.6).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.5, 0.6).unwrap();
        let g = b.build().unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        let g2 = assign_probabilities(&g, ProbabilityModel::WeightedCascade, 2.0, &mut rng);
        let p = g2.edge(NodeId(0), NodeId(2)).unwrap();
        assert!((p.base - 0.5).abs() < 1e-12); // in-degree of node 2 is 2
        assert!((p.boosted - boost_probability(0.5, 2.0)).abs() < 1e-12);
    }
}
