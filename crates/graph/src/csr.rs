#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

use crate::NodeId;

/// The pair of influence probabilities attached to a directed edge `(u, v)`.
///
/// * `base` is `p_uv`: the probability that a newly-activated `u` influences
///   `v` when `v` is *not* boosted.
/// * `boosted` is `p'_uv`: the probability used when `v` *is* boosted
///   (Definition 1). The paper requires `p'_uv ≥ p_uv`.
#[derive(Clone, Copy, PartialEq, Debug)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct EdgeProbs {
    /// Base influence probability `p_uv` (in `[0, 1]`).
    pub base: f64,
    /// Boosted influence probability `p'_uv` (in `[base, 1]`).
    pub boosted: f64,
}

impl EdgeProbs {
    /// Creates a probability pair, validating `0 ≤ base ≤ boosted ≤ 1`.
    pub fn new(base: f64, boosted: f64) -> Option<Self> {
        if (0.0..=1.0).contains(&base) && (0.0..=1.0).contains(&boosted) && base <= boosted {
            Some(EdgeProbs { base, boosted })
        } else {
            None
        }
    }

    /// The extra probability mass unlocked by boosting: `p' − p`.
    #[inline]
    pub fn gain(self) -> f64 {
        self.boosted - self.base
    }

    /// The probability to use given whether the edge head is boosted.
    #[inline]
    pub fn for_boosted(self, head_boosted: bool) -> f64 {
        if head_boosted {
            self.boosted
        } else {
            self.base
        }
    }
}

/// An immutable directed graph in compressed-sparse-row (CSR) form.
///
/// Both the forward (out-edges) and reverse (in-edges) adjacency are stored,
/// because the diffusion simulators traverse forward while RR-set / PRR-graph
/// generation traverses backward. Each direction stores the neighbor id and
/// the [`EdgeProbs`] inline, so a traversal touches a single contiguous
/// array.
#[derive(Clone, Debug)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct DiGraph {
    n: u32,
    out_offsets: Vec<u32>,
    out_targets: Vec<u32>,
    out_probs: Vec<EdgeProbs>,
    in_offsets: Vec<u32>,
    in_sources: Vec<u32>,
    in_probs: Vec<EdgeProbs>,
}

impl DiGraph {
    /// Internal constructor used by [`GraphBuilder`](crate::GraphBuilder).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        n: u32,
        out_offsets: Vec<u32>,
        out_targets: Vec<u32>,
        out_probs: Vec<EdgeProbs>,
        in_offsets: Vec<u32>,
        in_sources: Vec<u32>,
        in_probs: Vec<EdgeProbs>,
    ) -> Self {
        debug_assert_eq!(out_offsets.len(), n as usize + 1);
        debug_assert_eq!(in_offsets.len(), n as usize + 1);
        debug_assert_eq!(out_targets.len(), out_probs.len());
        debug_assert_eq!(in_sources.len(), in_probs.len());
        debug_assert_eq!(out_targets.len(), in_sources.len());
        DiGraph {
            n,
            out_offsets,
            out_targets,
            out_probs,
            in_offsets,
            in_sources,
            in_probs,
        }
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n as usize
    }

    /// Number of directed edges `m`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.out_targets.len()
    }

    /// Iterator over all node ids `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + use<> {
        (0..self.n).map(NodeId)
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn out_degree(&self, u: NodeId) -> usize {
        let i = u.index();
        (self.out_offsets[i + 1] - self.out_offsets[i]) as usize
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: NodeId) -> usize {
        let i = v.index();
        (self.in_offsets[i + 1] - self.in_offsets[i]) as usize
    }

    /// Iterates over `(v, probs)` for every out-edge `(u, v)`.
    #[inline]
    pub fn out_edges(&self, u: NodeId) -> impl Iterator<Item = (NodeId, EdgeProbs)> + '_ {
        let i = u.index();
        let (lo, hi) = (
            self.out_offsets[i] as usize,
            self.out_offsets[i + 1] as usize,
        );
        self.out_targets[lo..hi]
            .iter()
            .zip(&self.out_probs[lo..hi])
            .map(|(&t, &p)| (NodeId(t), p))
    }

    /// Iterates over `(edge_index, v, probs)` for every out-edge `(u, v)`.
    ///
    /// The edge index is the position of the edge in the forward CSR and is
    /// stable for the lifetime of the graph; the diffusion simulator uses it
    /// to derive per-edge random draws so that coupled simulations (with and
    /// without boosting) see identical randomness.
    #[inline]
    pub fn out_edges_indexed(
        &self,
        u: NodeId,
    ) -> impl Iterator<Item = (u32, NodeId, EdgeProbs)> + '_ {
        let i = u.index();
        let (lo, hi) = (
            self.out_offsets[i] as usize,
            self.out_offsets[i + 1] as usize,
        );
        self.out_targets[lo..hi]
            .iter()
            .zip(&self.out_probs[lo..hi])
            .enumerate()
            .map(move |(off, (&t, &p))| ((lo + off) as u32, NodeId(t), p))
    }

    /// Iterates over `(u, probs)` for every in-edge `(u, v)`.
    #[inline]
    pub fn in_edges(&self, v: NodeId) -> impl Iterator<Item = (NodeId, EdgeProbs)> + '_ {
        let i = v.index();
        let (lo, hi) = (self.in_offsets[i] as usize, self.in_offsets[i + 1] as usize);
        self.in_sources[lo..hi]
            .iter()
            .zip(&self.in_probs[lo..hi])
            .map(|(&s, &p)| (NodeId(s), p))
    }

    /// Looks up the probabilities on edge `(u, v)`, if it exists.
    ///
    /// Out-edges are sorted by target, so this is a binary search.
    pub fn edge(&self, u: NodeId, v: NodeId) -> Option<EdgeProbs> {
        let i = u.index();
        let (lo, hi) = (
            self.out_offsets[i] as usize,
            self.out_offsets[i + 1] as usize,
        );
        let slice = &self.out_targets[lo..hi];
        slice
            .binary_search(&v.0)
            .ok()
            .map(|pos| self.out_probs[lo + pos])
    }

    /// Whether the directed edge `(u, v)` exists.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edge(u, v).is_some()
    }

    /// Iterates over every edge as `(u, v, probs)`, in `u`-major order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, EdgeProbs)> + '_ {
        self.nodes()
            .flat_map(move |u| self.out_edges(u).map(move |(v, p)| (u, v, p)))
    }

    /// Returns a copy of this graph with every edge's probabilities replaced
    /// by `f(u, v, probs)`.
    ///
    /// Used to re-parameterize a network, e.g. when sweeping the boosting
    /// parameter β (Section VII, Figure 8).
    pub fn map_probs(&self, mut f: impl FnMut(NodeId, NodeId, EdgeProbs) -> EdgeProbs) -> DiGraph {
        let mut g = self.clone();
        for u in 0..self.n {
            let (lo, hi) = (
                g.out_offsets[u as usize] as usize,
                g.out_offsets[u as usize + 1] as usize,
            );
            for idx in lo..hi {
                let v = g.out_targets[idx];
                g.out_probs[idx] = f(NodeId(u), NodeId(v), g.out_probs[idx]);
            }
        }
        // Rebuild the reverse probability array to stay consistent.
        for v in 0..self.n {
            let (lo, hi) = (
                g.in_offsets[v as usize] as usize,
                g.in_offsets[v as usize + 1] as usize,
            );
            for idx in lo..hi {
                let u = g.in_sources[idx];
                g.in_probs[idx] = g
                    .edge(NodeId(u), NodeId(v))
                    .expect("reverse edge must exist in forward adjacency");
            }
        }
        g
    }

    /// Approximate heap footprint of the CSR arrays in bytes.
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        (self.out_offsets.len() + self.in_offsets.len()) * size_of::<u32>()
            + (self.out_targets.len() + self.in_sources.len()) * size_of::<u32>()
            + (self.out_probs.len() + self.in_probs.len()) * size_of::<EdgeProbs>()
    }

    /// Builds the struct-of-arrays mirror of the in-edge adjacency used by
    /// the data-oriented samplers (see [`InEdgeSoa`]). `O(m)`; call once
    /// per graph (and once per mutation epoch, since every epoch rebuilds
    /// the CSR and therefore any mirror of it).
    pub fn in_edge_soa(&self) -> InEdgeSoa {
        InEdgeSoa {
            offsets: self.in_offsets.clone(),
            heads: self.in_sources.clone(),
            probs: self.in_probs.clone(),
        }
    }
}

/// Flat mirror of a graph's in-edge adjacency tuned for the backward
/// sampling kernels: a narrow `u32` head lane and a paired
/// `(base, boosted)` probability lane, both in the CSR in-edge layout (and
/// edge order) of the [`DiGraph`] it was built from.
///
/// The lane split follows the kernels' access pattern. Every draw
/// compares against `boosted` and usually `base` of the *same* edge, so
/// the two probabilities live together in one 16-byte [`EdgeProbs`]
/// record — one cache line serves four edges instead of spreading each
/// edge's pair across two distant lines. Heads stay in their own `u32`
/// lane because they are read ahead of the draws (the kernels prefetch
/// per-node state for upcoming heads), and a narrow lane packs sixteen
/// per line. Built once per graph via [`DiGraph::in_edge_soa`] — it holds
/// copies, not borrows, so a mutation epoch that rebuilds the `DiGraph`
/// must rebuild the mirror too (sources do this by construction: they
/// build their mirror from the epoch's graph).
#[derive(Clone, Debug)]
pub struct InEdgeSoa {
    /// Per-node edge ranges, `n + 1` entries (the in-edge CSR offsets).
    offsets: Vec<u32>,
    /// Edge source node ids, one per in-edge.
    heads: Vec<u32>,
    /// Paired `(p_uv, p'_uv)` probabilities, one record per in-edge.
    probs: Vec<EdgeProbs>,
}

impl InEdgeSoa {
    /// The flat edge range of `v`'s in-edges: index `heads`/`base`/
    /// `boosted` with it.
    #[inline]
    pub fn range(&self, v: NodeId) -> (usize, usize) {
        let i = v.index();
        (self.offsets[i] as usize, self.offsets[i + 1] as usize)
    }

    /// Edge source ids, parallel to [`base`](Self::base) and
    /// [`boosted`](Self::boosted).
    #[inline]
    pub fn heads(&self) -> &[u32] {
        &self.heads
    }

    /// The raw CSR offset array (`n + 1` entries) behind
    /// [`range`](Self::range) — exposed so samplers can prefetch a node's
    /// range entry as soon as the node is enqueued, before it is expanded.
    #[inline]
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// The paired `(p_uv, p'_uv)` lane, parallel to [`heads`](Self::heads).
    #[inline]
    pub fn probs(&self) -> &[EdgeProbs] {
        &self.probs
    }

    /// Approximate heap bytes of the mirror.
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        (self.offsets.len() + self.heads.len()) * size_of::<u32>()
            + self.probs.len() * size_of::<EdgeProbs>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn diamond() -> DiGraph {
        // 0 -> 1 -> 3, 0 -> 2 -> 3
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 0.5, 0.7).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 0.25, 0.5).unwrap();
        b.add_edge(NodeId(1), NodeId(3), 0.1, 0.2).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 0.9, 1.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn degrees_and_counts() {
        let g = diamond();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_degree(NodeId(0)), 2);
        assert_eq!(g.in_degree(NodeId(3)), 2);
        assert_eq!(g.out_degree(NodeId(3)), 0);
        assert_eq!(g.in_degree(NodeId(0)), 0);
    }

    #[test]
    fn forward_and_reverse_agree() {
        let g = diamond();
        for (u, v, p) in g.edges() {
            let back = g
                .in_edges(v)
                .find(|&(s, _)| s == u)
                .expect("edge present in reverse adjacency");
            assert_eq!(back.1, p);
        }
    }

    #[test]
    fn edge_lookup() {
        let g = diamond();
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert!(!g.has_edge(NodeId(1), NodeId(0)));
        let p = g.edge(NodeId(2), NodeId(3)).unwrap();
        assert_eq!(p.base, 0.9);
        assert_eq!(p.boosted, 1.0);
    }

    #[test]
    fn map_probs_updates_both_directions() {
        let g = diamond().map_probs(|_, _, p| EdgeProbs::new(p.base / 2.0, p.boosted).unwrap());
        let fwd = g.edge(NodeId(0), NodeId(1)).unwrap();
        assert!((fwd.base - 0.25).abs() < 1e-12);
        let rev = g.in_edges(NodeId(1)).next().unwrap().1;
        assert_eq!(rev, fwd);
    }

    #[test]
    fn in_edge_soa_mirrors_in_edges() {
        let g = diamond();
        let soa = g.in_edge_soa();
        for v in 0..g.num_nodes() as u32 {
            let (lo, hi) = soa.range(NodeId(v));
            let aos: Vec<(NodeId, EdgeProbs)> = g.in_edges(NodeId(v)).collect();
            assert_eq!(hi - lo, aos.len());
            for (e, &(u, p)) in (lo..hi).zip(aos.iter()) {
                assert_eq!(soa.heads()[e], u.0);
                assert_eq!(soa.probs()[e], p);
            }
        }
        assert!(soa.memory_bytes() > 0);
    }

    #[test]
    fn edge_probs_validation() {
        assert!(EdgeProbs::new(0.2, 0.1).is_none());
        assert!(EdgeProbs::new(-0.1, 0.5).is_none());
        assert!(EdgeProbs::new(0.5, 1.1).is_none());
        let p = EdgeProbs::new(0.2, 0.6).unwrap();
        assert!((p.gain() - 0.4).abs() < 1e-12);
        assert_eq!(p.for_boosted(true), 0.6);
        assert_eq!(p.for_boosted(false), 0.2);
    }
}
