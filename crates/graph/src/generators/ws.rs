use rand::Rng;

use crate::probability::{assign_probabilities, ProbabilityModel};
use crate::{DiGraph, GraphBuilder, NodeId};

/// Generates a directed Watts–Strogatz small-world graph.
///
/// Starts from a ring lattice where each node points to its `k_half`
/// clockwise neighbors, then rewires each edge's head uniformly at random
/// with probability `rewire_prob`. Small-world topologies exercise the
/// paper's observation that pruning in PRR-graph generation loses bite as
/// path lengths shrink.
///
/// Influence probabilities are assigned in a second pass once the rewired
/// topology (and hence every in-degree) is final, so degree-dependent
/// models like [`ProbabilityModel::WeightedCascade`] are safe here.
pub fn watts_strogatz<R: Rng + ?Sized>(
    n: usize,
    k_half: usize,
    rewire_prob: f64,
    model: ProbabilityModel,
    beta: f64,
    rng: &mut R,
) -> DiGraph {
    assert!(n > 2 * k_half, "ring lattice needs n > 2*k_half");
    let mut edges = std::collections::HashSet::<(u32, u32)>::with_capacity(n * k_half);
    for u in 0..n as u32 {
        for d in 1..=k_half as u32 {
            let v = (u + d) % n as u32;
            edges.insert((u, v));
        }
    }

    // Rewire pass: move each original edge's head with probability
    // `rewire_prob`, avoiding self-loops and duplicates.
    let originals: Vec<(u32, u32)> = edges.iter().copied().collect();
    for (u, v) in originals {
        if rng.random_bool(rewire_prob) {
            let mut attempts = 0;
            loop {
                attempts += 1;
                if attempts > 100 {
                    break;
                }
                let w = rng.random_range(0..n as u32);
                if w != u && !edges.contains(&(u, w)) {
                    edges.remove(&(u, v));
                    edges.insert((u, w));
                    break;
                }
            }
        }
    }

    let mut builder = GraphBuilder::with_capacity(n, edges.len());
    let mut sorted: Vec<(u32, u32)> = edges.into_iter().collect();
    sorted.sort_unstable(); // deterministic iteration for reproducibility
    for (u, v) in sorted {
        builder
            .add_edge(NodeId(u), NodeId(v), 0.0, 0.0)
            .expect("valid edge");
    }
    let topology = builder.build().expect("generator produces valid graphs");
    assign_probabilities(&topology, model, beta, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn zero_rewire_is_ring_lattice() {
        let mut rng = SmallRng::seed_from_u64(31);
        let g = watts_strogatz(10, 2, 0.0, ProbabilityModel::Constant(0.1), 2.0, &mut rng);
        assert_eq!(g.num_edges(), 20);
        for u in 0..10u32 {
            assert!(g.has_edge(NodeId(u), NodeId((u + 1) % 10)));
            assert!(g.has_edge(NodeId(u), NodeId((u + 2) % 10)));
        }
    }

    #[test]
    fn rewire_keeps_edge_count() {
        let mut rng = SmallRng::seed_from_u64(37);
        let g = watts_strogatz(50, 3, 0.5, ProbabilityModel::Constant(0.1), 2.0, &mut rng);
        assert_eq!(g.num_edges(), 150);
    }

    #[test]
    fn weighted_cascade_probabilities_strictly_positive() {
        // Second-pass assignment: every edge head has final in-degree ≥ 1,
        // so weighted cascade yields p > 0 everywhere.
        let mut rng = SmallRng::seed_from_u64(61);
        let g = watts_strogatz(40, 2, 0.3, ProbabilityModel::WeightedCascade, 2.0, &mut rng);
        for (_, v, probs) in g.edges() {
            assert!((probs.base - 1.0 / g.in_degree(v) as f64).abs() < 1e-12);
            assert!(probs.base > 0.0);
        }
    }

    #[test]
    fn full_rewire_changes_topology() {
        let mut rng = SmallRng::seed_from_u64(41);
        let g = watts_strogatz(100, 2, 1.0, ProbabilityModel::Constant(0.1), 2.0, &mut rng);
        // With rewiring probability 1 it's vanishingly unlikely the ring
        // lattice survived intact.
        let ring_edges = (0..100u32)
            .filter(|&u| g.has_edge(NodeId(u), NodeId((u + 1) % 100)))
            .count();
        assert!(ring_edges < 60, "ring mostly intact after full rewire");
    }
}
