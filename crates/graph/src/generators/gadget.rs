use crate::{DiGraph, GraphBuilder, NodeId};

/// A Set Cover instance `(ground set X, collection C of subsets)` used to
/// build the NP-hardness gadget of Appendix A (Figure 16).
#[derive(Clone, Debug)]
pub struct SetCoverInstance {
    /// Size of the ground set `|X|`.
    pub num_elements: usize,
    /// Subsets, each a list of element indices `< num_elements`.
    pub subsets: Vec<Vec<usize>>,
}

/// Builds the tripartite reduction graph from the paper's NP-hardness proof.
///
/// Layout (Figure 16): node `0` is the seed `s`; nodes `1..=m` are the
/// set-nodes `c_i`; nodes `m+1..=m+n` are the element-nodes `x_j`.
/// Edges `s → c_i` carry `p = 0.5, p' = 1`; edges `c_i → x_j` (whenever
/// `e_j ∈ C_i`) carry `p = p' = 1`.
///
/// Boosting the set-nodes corresponding to a size-`k` set cover yields
/// `σ_S(B) = 1 + n + m`, so the gadget doubles as a test bed where the
/// optimal boost set is known by construction.
pub fn set_cover_gadget(instance: &SetCoverInstance) -> DiGraph {
    let m = instance.subsets.len();
    let n = instance.num_elements;
    let total = 1 + m + n;
    let mut b = GraphBuilder::new(total);
    for (i, subset) in instance.subsets.iter().enumerate() {
        let ci = NodeId((1 + i) as u32);
        b.add_edge(NodeId(0), ci, 0.5, 1.0).expect("valid edge");
        for &e in subset {
            assert!(e < n, "element index out of range");
            let xj = NodeId((1 + m + e) as u32);
            b.add_edge(ci, xj, 1.0, 1.0).expect("valid edge");
        }
    }
    b.build().expect("gadget builds")
}

impl SetCoverInstance {
    /// The set-node id in the gadget graph for subset `i`.
    pub fn set_node(&self, i: usize) -> NodeId {
        NodeId((1 + i) as u32)
    }

    /// The element-node id in the gadget graph for element `j`.
    pub fn element_node(&self, j: usize) -> NodeId {
        NodeId((1 + self.subsets.len() + j) as u32)
    }

    /// Whether the chosen subset indices cover the ground set.
    pub fn is_cover(&self, chosen: &[usize]) -> bool {
        let mut covered = vec![false; self.num_elements];
        for &i in chosen {
            for &e in &self.subsets[i] {
                covered[e] = true;
            }
        }
        covered.iter().all(|&c| c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure16() -> SetCoverInstance {
        // X = {x1..x6}, C1 = {1,2,3}, C2 = {2,3,4}, C3 = {4,5,6} (0-based).
        SetCoverInstance {
            num_elements: 6,
            subsets: vec![vec![0, 1, 2], vec![1, 2, 3], vec![3, 4, 5]],
        }
    }

    #[test]
    fn gadget_structure() {
        let inst = figure16();
        let g = set_cover_gadget(&inst);
        assert_eq!(g.num_nodes(), 1 + 3 + 6);
        assert_eq!(g.num_edges(), 3 + 9);
        // s -> every set node at (0.5, 1.0)
        for i in 0..3 {
            let p = g.edge(NodeId(0), inst.set_node(i)).unwrap();
            assert_eq!((p.base, p.boosted), (0.5, 1.0));
        }
        // c1 -> x1 deterministic
        let p = g.edge(inst.set_node(0), inst.element_node(0)).unwrap();
        assert_eq!((p.base, p.boosted), (1.0, 1.0));
    }

    #[test]
    fn cover_check() {
        let inst = figure16();
        assert!(inst.is_cover(&[0, 2]));
        assert!(!inst.is_cover(&[0, 1]));
        assert!(inst.is_cover(&[0, 1, 2]));
    }
}
