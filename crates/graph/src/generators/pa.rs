use rand::Rng;

use crate::probability::{assign_probabilities, ProbabilityModel};
use crate::{DiGraph, GraphBuilder, NodeId};

/// Generates a scale-free directed graph by preferential attachment.
///
/// Nodes arrive one at a time; each new node draws `out_per_node` targets
/// from the existing nodes with probability proportional to
/// `in_degree + 1`, then with probability `back_edge_prob` each chosen
/// target links back (creating reciprocal follow relationships, common in
/// social networks). The resulting in-degree distribution has a power-law
/// tail, which is the regime the paper's real datasets live in.
///
/// Influence probabilities are assigned in a **second pass**, after the
/// topology (and hence every in-degree) is final — degree-dependent models
/// like [`ProbabilityModel::WeightedCascade`] would otherwise see the
/// mid-generation in-degree of 0 and produce `p = 0` on every edge.
pub fn preferential_attachment<R: Rng + ?Sized>(
    n: usize,
    out_per_node: usize,
    back_edge_prob: f64,
    model: ProbabilityModel,
    beta: f64,
    rng: &mut R,
) -> DiGraph {
    assert!(n >= 2, "need at least two nodes");
    let mut builder = GraphBuilder::with_capacity(n, n * out_per_node * 2);

    // `targets` holds one entry per (in-degree + 1) unit of attachment mass,
    // i.e. the classic Barabási–Albert repeated-nodes trick.
    let mut attachment_pool: Vec<u32> = (0..n as u32).collect();
    let mut edge_exists = std::collections::HashSet::<(u32, u32)>::new();

    for u in 1..n as u32 {
        let wanted = out_per_node.min(u as usize);
        let mut added = 0usize;
        let mut attempts = 0usize;
        while added < wanted && attempts < 50 * wanted {
            attempts += 1;
            // Sample from attachment mass restricted to ids < u.
            let v = attachment_pool[rng.random_range(0..attachment_pool.len())];
            if v >= u || edge_exists.contains(&(u, v)) {
                continue;
            }
            builder
                .add_edge(NodeId(u), NodeId(v), 0.0, 0.0)
                .expect("valid edge");
            edge_exists.insert((u, v));
            attachment_pool.push(v); // v gained an in-edge
            added += 1;
            if rng.random_bool(back_edge_prob) && !edge_exists.contains(&(v, u)) {
                builder
                    .add_edge(NodeId(v), NodeId(u), 0.0, 0.0)
                    .expect("valid edge");
                edge_exists.insert((v, u));
                attachment_pool.push(u);
            }
        }
    }
    let topology = builder.build().expect("generator produces valid graphs");
    assign_probabilities(&topology, model, beta, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn produces_connected_ish_graph() {
        let mut rng = SmallRng::seed_from_u64(21);
        let g =
            preferential_attachment(200, 3, 0.3, ProbabilityModel::Constant(0.1), 2.0, &mut rng);
        assert_eq!(g.num_nodes(), 200);
        // Every node except node 0 has at least one out-edge.
        let isolated = g
            .nodes()
            .filter(|&u| g.out_degree(u) + g.in_degree(u) == 0)
            .count();
        assert_eq!(isolated, 0);
    }

    #[test]
    fn heavy_tail_in_degree() {
        let mut rng = SmallRng::seed_from_u64(23);
        let g =
            preferential_attachment(2000, 2, 0.0, ProbabilityModel::Constant(0.1), 2.0, &mut rng);
        let max_in = g.nodes().map(|u| g.in_degree(u)).max().unwrap();
        let avg_in = g.num_edges() as f64 / g.num_nodes() as f64;
        // Power-law hubs: the max should dwarf the average.
        assert!(
            max_in as f64 > 10.0 * avg_in,
            "max in-degree {max_in} vs avg {avg_in}"
        );
    }

    #[test]
    fn weighted_cascade_probabilities_strictly_positive() {
        // Regression: probabilities used to be sampled mid-generation,
        // when every target's in-degree read as 0 — WeightedCascade then
        // assigned p = 0 to every edge. The second pass must see final
        // in-degrees, i.e. p_uv = 1/in_degree(v) > 0 on every edge.
        let mut rng = SmallRng::seed_from_u64(17);
        let g = preferential_attachment(
            400,
            3,
            0.2,
            ProbabilityModel::WeightedCascade,
            2.0,
            &mut rng,
        );
        assert!(g.num_edges() > 0);
        for (_, v, probs) in g.edges() {
            let expected = 1.0 / g.in_degree(v) as f64;
            assert!(
                probs.base > 0.0 && probs.boosted >= probs.base,
                "non-positive probability on an edge into {v:?}"
            );
            assert!(
                (probs.base - expected).abs() < 1e-12,
                "p into {v:?}: {} vs 1/in_degree {expected}",
                probs.base
            );
        }
    }

    #[test]
    fn no_duplicate_edges() {
        let mut rng = SmallRng::seed_from_u64(29);
        let g = preferential_attachment(300, 4, 0.5, ProbabilityModel::Trivalency, 2.0, &mut rng);
        let mut seen = std::collections::HashSet::new();
        for (u, v, _) in g.edges() {
            assert!(seen.insert((u, v)), "duplicate edge ({u}, {v})");
            assert_ne!(u, v);
        }
    }
}
