//! Synthetic network generators.
//!
//! Real social traces (Digg, Flixster, Twitter, Flickr) are not available
//! offline, so the experiment harness substitutes synthetic networks whose
//! degree structure and probability distribution are calibrated to Table 1
//! of the paper (see `kboost-datasets`). This module provides the raw
//! topology generators:
//!
//! * [`erdos_renyi`] — G(n, m) uniform random directed graphs;
//! * [`preferential_attachment`] — power-law (scale-free) directed graphs;
//! * [`watts_strogatz`] — small-world rewired ring lattices;
//! * [`random_tree`] / [`complete_binary_tree`] — bidirected trees for the
//!   Section VI/VIII experiments;
//! * [`set_cover_gadget`] — the tripartite reduction graph from the
//!   NP-hardness proof (Appendix A, Figure 16), useful as a test bed where
//!   the optimal boost set is known.

mod er;
mod gadget;
mod pa;
mod tree;
mod ws;

pub use er::erdos_renyi;
pub use gadget::{set_cover_gadget, SetCoverInstance};
pub use pa::preferential_attachment;
pub use tree::{complete_binary_tree, random_tree, TreeTopology};
pub use ws::watts_strogatz;
