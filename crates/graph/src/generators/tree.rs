use rand::Rng;

use crate::probability::{assign_probabilities, ProbabilityModel};
use crate::{DiGraph, GraphBuilder, NodeId};

/// An undirected tree topology, stored as the list of `(parent, child)`
/// pairs of a rooted orientation. Node `0` is always the root.
///
/// Converted into a *bidirected* [`DiGraph`] (both directions present,
/// probabilities sampled independently per direction as in Section VIII)
/// with [`TreeTopology::into_bidirected_graph`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TreeTopology {
    n: usize,
    edges: Vec<(u32, u32)>,
}

impl TreeTopology {
    /// Builds a topology from explicit `(parent, child)` pairs.
    ///
    /// # Panics
    /// Panics if the edges do not form a tree on `n` nodes rooted at 0
    /// (i.e. exactly `n−1` edges, each child appearing once, parents
    /// preceding children is *not* required).
    pub fn from_edges(n: usize, edges: Vec<(u32, u32)>) -> Self {
        assert_eq!(
            edges.len(),
            n.saturating_sub(1),
            "a tree on {n} nodes has {} edges",
            n.saturating_sub(1)
        );
        let mut seen_child = vec![false; n];
        for &(p, c) in &edges {
            assert!(
                (p as usize) < n && (c as usize) < n,
                "edge endpoint out of range"
            );
            assert!(!seen_child[c as usize], "node {c} has two parents");
            assert_ne!(c, 0, "root cannot be a child");
            seen_child[c as usize] = true;
        }
        TreeTopology { n, edges }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// The `(parent, child)` pairs.
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// Converts the topology into a bidirected [`DiGraph`], sampling each
    /// direction's base probability independently from `model` and boosting
    /// with `beta`.
    ///
    /// Probabilities are assigned in a second pass, after both directions
    /// of every edge exist, so degree-dependent models see final
    /// in-degrees.
    pub fn into_bidirected_graph<R: Rng + ?Sized>(
        &self,
        model: ProbabilityModel,
        beta: f64,
        rng: &mut R,
    ) -> DiGraph {
        let mut b = GraphBuilder::with_capacity(self.n, self.edges.len() * 2);
        for &(u, v) in &self.edges {
            b.add_edge(NodeId(u), NodeId(v), 0.0, 0.0)
                .expect("valid edge");
            b.add_edge(NodeId(v), NodeId(u), 0.0, 0.0)
                .expect("valid edge");
        }
        let topology = b.build().expect("tree builds");
        assign_probabilities(&topology, model, beta, rng)
    }
}

/// A complete binary tree on `n` nodes in heap order: node `i`'s children
/// are `2i+1` and `2i+2`. This is the topology used in the paper's tree
/// experiments ("for every given number of nodes n, we construct a complete
/// binary tree").
pub fn complete_binary_tree(n: usize) -> TreeTopology {
    let mut edges = Vec::with_capacity(n.saturating_sub(1));
    for c in 1..n as u32 {
        edges.push(((c - 1) / 2, c));
    }
    TreeTopology::from_edges(n, edges)
}

/// A uniform random recursive tree: node `i` attaches to a uniformly random
/// node in `0..i`. `max_children` optionally caps the number of children a
/// node may receive (useful for exercising the general DP on bounded-degree
/// trees).
pub fn random_tree<R: Rng + ?Sized>(
    n: usize,
    max_children: Option<usize>,
    rng: &mut R,
) -> TreeTopology {
    let mut child_count = vec![0usize; n];
    let mut edges = Vec::with_capacity(n.saturating_sub(1));
    for c in 1..n as u32 {
        let parent = loop {
            let p = rng.random_range(0..c);
            match max_children {
                Some(cap) if child_count[p as usize] >= cap => continue,
                _ => break p,
            }
        };
        child_count[parent as usize] += 1;
        edges.push((parent, c));
    }
    TreeTopology::from_edges(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn complete_binary_tree_shape() {
        let t = complete_binary_tree(7);
        assert_eq!(t.num_nodes(), 7);
        assert_eq!(t.edges(), &[(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (2, 6)]);
    }

    #[test]
    fn bidirected_graph_has_two_edges_per_pair() {
        let mut rng = SmallRng::seed_from_u64(43);
        let g = complete_binary_tree(15).into_bidirected_graph(
            ProbabilityModel::Constant(0.1),
            2.0,
            &mut rng,
        );
        assert_eq!(g.num_nodes(), 15);
        assert_eq!(g.num_edges(), 28);
        for (u, v, _) in g.edges() {
            assert!(g.has_edge(v, u));
        }
    }

    #[test]
    fn random_tree_is_tree() {
        let mut rng = SmallRng::seed_from_u64(47);
        let t = random_tree(100, None, &mut rng);
        assert_eq!(t.edges().len(), 99);
        // Connectivity: union-find over edges must join everything.
        let mut parent: Vec<u32> = (0..100).collect();
        fn find(p: &mut Vec<u32>, x: u32) -> u32 {
            if p[x as usize] != x {
                let r = find(p, p[x as usize]);
                p[x as usize] = r;
            }
            p[x as usize]
        }
        for &(u, v) in t.edges() {
            let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
            assert_ne!(ru, rv, "cycle detected");
            parent[ru as usize] = rv;
        }
    }

    #[test]
    fn max_children_respected() {
        let mut rng = SmallRng::seed_from_u64(53);
        let t = random_tree(200, Some(2), &mut rng);
        let mut counts = vec![0usize; 200];
        for &(p, _) in t.edges() {
            counts[p as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c <= 2));
    }

    #[test]
    #[should_panic(expected = "two parents")]
    fn duplicate_child_rejected() {
        TreeTopology::from_edges(3, vec![(0, 1), (2, 1)]);
    }

    #[test]
    fn boosted_probability_matches_figure4() {
        // Figure 4: p = 0.1 ⇒ p' = 0.19 with β = 2.
        let mut rng = SmallRng::seed_from_u64(1);
        let g = complete_binary_tree(3).into_bidirected_graph(
            ProbabilityModel::Constant(0.1),
            2.0,
            &mut rng,
        );
        for (_, _, p) in g.edges() {
            assert!((p.boosted - 0.19).abs() < 1e-12);
        }
    }
}
