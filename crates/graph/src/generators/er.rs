use rand::Rng;

use crate::probability::{boost_probability, ProbabilityModel};
use crate::{DiGraph, GraphBuilder, NodeId};

/// Generates a uniform random directed graph `G(n, m)` with `m` distinct
/// directed edges (no self-loops), probabilities drawn from `model` and
/// boosted with parameter `beta`.
///
/// # Panics
/// Panics if `m` exceeds the number of possible edges `n·(n−1)`.
pub fn erdos_renyi<R: Rng + ?Sized>(
    n: usize,
    m: usize,
    model: ProbabilityModel,
    beta: f64,
    rng: &mut R,
) -> DiGraph {
    let max_edges = n.saturating_mul(n.saturating_sub(1));
    assert!(m <= max_edges, "G(n={n}) cannot hold {m} edges");

    // Rejection-sample distinct pairs; fine while m is far below n².
    // For dense requests fall back to sampling from the full pair list.
    let mut builder = GraphBuilder::with_capacity(n, m);
    if m * 3 < max_edges {
        let mut seen = std::collections::HashSet::with_capacity(m * 2);
        while seen.len() < m {
            let u = rng.random_range(0..n as u64);
            let v = rng.random_range(0..n as u64);
            if u == v {
                continue;
            }
            seen.insert(u * n as u64 + v);
        }
        for key in seen {
            let (u, v) = ((key / n as u64) as u32, (key % n as u64) as u32);
            add_edge(&mut builder, u, v, model, beta, rng);
        }
    } else {
        let mut pairs: Vec<(u32, u32)> = (0..n as u32)
            .flat_map(|u| (0..n as u32).filter(move |&v| v != u).map(move |v| (u, v)))
            .collect();
        // Partial Fisher–Yates: select m pairs uniformly.
        for i in 0..m {
            let j = rng.random_range(i..pairs.len());
            pairs.swap(i, j);
            let (u, v) = pairs[i];
            add_edge(&mut builder, u, v, model, beta, rng);
        }
    }
    builder.build().expect("generator produces valid graphs")
}

fn add_edge<R: Rng + ?Sized>(
    b: &mut GraphBuilder,
    u: u32,
    v: u32,
    model: ProbabilityModel,
    beta: f64,
    rng: &mut R,
) {
    // Weighted cascade needs in-degrees which are unknown mid-generation;
    // approximate with the expected in-degree m/n (documented behaviour).
    let p = match model {
        ProbabilityModel::WeightedCascade => {
            let expected = (b.num_edges().max(1) as f64 / b.num_nodes().max(1) as f64).max(1.0);
            1.0 / expected
        }
        other => other.sample(rng, 0),
    };
    b.add_edge(NodeId(u), NodeId(v), p, boost_probability(p, beta))
        .expect("distinct sampled edges are valid");
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn exact_edge_count_sparse() {
        let mut rng = SmallRng::seed_from_u64(11);
        let g = erdos_renyi(50, 200, ProbabilityModel::Constant(0.1), 2.0, &mut rng);
        assert_eq!(g.num_nodes(), 50);
        assert_eq!(g.num_edges(), 200);
    }

    #[test]
    fn exact_edge_count_dense() {
        let mut rng = SmallRng::seed_from_u64(13);
        let g = erdos_renyi(10, 80, ProbabilityModel::Constant(0.1), 2.0, &mut rng);
        assert_eq!(g.num_edges(), 80);
    }

    #[test]
    fn no_self_loops_and_no_duplicates() {
        let mut rng = SmallRng::seed_from_u64(17);
        let g = erdos_renyi(20, 100, ProbabilityModel::Trivalency, 2.0, &mut rng);
        let mut seen = std::collections::HashSet::new();
        for (u, v, _) in g.edges() {
            assert_ne!(u, v);
            assert!(seen.insert((u, v)));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let g1 = erdos_renyi(
            30,
            90,
            ProbabilityModel::Constant(0.2),
            2.0,
            &mut SmallRng::seed_from_u64(5),
        );
        let g2 = erdos_renyi(
            30,
            90,
            ProbabilityModel::Constant(0.2),
            2.0,
            &mut SmallRng::seed_from_u64(5),
        );
        let e1: Vec<_> = g1.edges().map(|(u, v, _)| (u, v)).collect();
        let e2: Vec<_> = g2.edges().map(|(u, v, _)| (u, v)).collect();
        assert_eq!(e1, e2);
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn too_many_edges_panics() {
        let mut rng = SmallRng::seed_from_u64(1);
        erdos_renyi(3, 7, ProbabilityModel::Constant(0.1), 2.0, &mut rng);
    }
}
