use rand::Rng;

use crate::probability::{assign_probabilities, ProbabilityModel};
use crate::{DiGraph, GraphBuilder, NodeId};

/// Generates a uniform random directed graph `G(n, m)` with `m` distinct
/// directed edges (no self-loops), probabilities drawn from `model` and
/// boosted with parameter `beta`.
///
/// Influence probabilities are assigned in a **second pass**, after the
/// topology (and hence every in-degree) is final — the same regime the PA
/// generator uses. Degree-dependent models like
/// [`ProbabilityModel::WeightedCascade`] get the true `1 / in_degree(v)`
/// instead of the old mid-generation `m/n` approximation, and random
/// models draw in deterministic CSR edge order (the old per-edge draws
/// iterated a `HashSet`, whose order varies run to run).
///
/// # Panics
/// Panics if `m` exceeds the number of possible edges `n·(n−1)`.
pub fn erdos_renyi<R: Rng + ?Sized>(
    n: usize,
    m: usize,
    model: ProbabilityModel,
    beta: f64,
    rng: &mut R,
) -> DiGraph {
    let max_edges = n.saturating_mul(n.saturating_sub(1));
    assert!(m <= max_edges, "G(n={n}) cannot hold {m} edges");

    // Rejection-sample distinct pairs; fine while m is far below n².
    // For dense requests fall back to sampling from the full pair list.
    let mut builder = GraphBuilder::with_capacity(n, m);
    let add = |b: &mut GraphBuilder, u: u32, v: u32| {
        b.add_edge(NodeId(u), NodeId(v), 0.0, 0.0)
            .expect("distinct sampled edges are valid");
    };
    if m * 3 < max_edges {
        let mut seen = std::collections::HashSet::with_capacity(m * 2);
        while seen.len() < m {
            let u = rng.random_range(0..n as u64);
            let v = rng.random_range(0..n as u64);
            if u == v {
                continue;
            }
            seen.insert(u * n as u64 + v);
        }
        for key in seen {
            add(
                &mut builder,
                (key / n as u64) as u32,
                (key % n as u64) as u32,
            );
        }
    } else {
        let mut pairs: Vec<(u32, u32)> = (0..n as u32)
            .flat_map(|u| (0..n as u32).filter(move |&v| v != u).map(move |v| (u, v)))
            .collect();
        // Partial Fisher–Yates: select m pairs uniformly.
        for i in 0..m {
            let j = rng.random_range(i..pairs.len());
            pairs.swap(i, j);
            let (u, v) = pairs[i];
            add(&mut builder, u, v);
        }
    }
    let topology = builder.build().expect("generator produces valid graphs");
    assign_probabilities(&topology, model, beta, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn exact_edge_count_sparse() {
        let mut rng = SmallRng::seed_from_u64(11);
        let g = erdos_renyi(50, 200, ProbabilityModel::Constant(0.1), 2.0, &mut rng);
        assert_eq!(g.num_nodes(), 50);
        assert_eq!(g.num_edges(), 200);
    }

    #[test]
    fn exact_edge_count_dense() {
        let mut rng = SmallRng::seed_from_u64(13);
        let g = erdos_renyi(10, 80, ProbabilityModel::Constant(0.1), 2.0, &mut rng);
        assert_eq!(g.num_edges(), 80);
    }

    #[test]
    fn no_self_loops_and_no_duplicates() {
        let mut rng = SmallRng::seed_from_u64(17);
        let g = erdos_renyi(20, 100, ProbabilityModel::Trivalency, 2.0, &mut rng);
        let mut seen = std::collections::HashSet::new();
        for (u, v, _) in g.edges() {
            assert_ne!(u, v);
            assert!(seen.insert((u, v)));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let g1 = erdos_renyi(
            30,
            90,
            ProbabilityModel::Constant(0.2),
            2.0,
            &mut SmallRng::seed_from_u64(5),
        );
        let g2 = erdos_renyi(
            30,
            90,
            ProbabilityModel::Constant(0.2),
            2.0,
            &mut SmallRng::seed_from_u64(5),
        );
        let e1: Vec<_> = g1.edges().map(|(u, v, _)| (u, v)).collect();
        let e2: Vec<_> = g2.edges().map(|(u, v, _)| (u, v)).collect();
        assert_eq!(e1, e2);
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn too_many_edges_panics() {
        let mut rng = SmallRng::seed_from_u64(1);
        erdos_renyi(3, 7, ProbabilityModel::Constant(0.1), 2.0, &mut rng);
    }

    #[test]
    fn weighted_cascade_probabilities_strictly_positive() {
        // Regression (mirrors the PA generator's): WeightedCascade used to
        // be approximated with the expected in-degree m/n mid-generation.
        // The second pass must see final in-degrees, i.e.
        // p_uv = 1/in_degree(v) > 0 on every edge.
        let mut rng = SmallRng::seed_from_u64(19);
        let g = erdos_renyi(120, 700, ProbabilityModel::WeightedCascade, 2.0, &mut rng);
        assert_eq!(g.num_edges(), 700);
        for (_, v, probs) in g.edges() {
            let expected = 1.0 / g.in_degree(v) as f64;
            assert!(
                probs.base > 0.0 && probs.boosted >= probs.base,
                "non-positive probability on an edge into {v:?}"
            );
            assert!(
                (probs.base - expected).abs() < 1e-12,
                "p into {v:?}: {} vs 1/in_degree {expected}",
                probs.base
            );
        }
    }

    #[test]
    fn random_model_probabilities_deterministic_given_seed() {
        // Before the second pass, per-edge draws iterated a HashSet whose
        // order changes between runs — two same-seed graphs could carry
        // different Trivalency probabilities. CSR-order assignment makes
        // the probabilities a pure function of the seed.
        let make = || {
            erdos_renyi(
                40,
                160,
                ProbabilityModel::Trivalency,
                2.0,
                &mut SmallRng::seed_from_u64(7),
            )
        };
        let (g1, g2) = (make(), make());
        let e1: Vec<_> = g1.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        assert_eq!(e1, e2, "same-seed graphs diverged (edges or probs)");
    }
}
