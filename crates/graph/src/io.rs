//! Plain-text edge-list IO.
//!
//! Format: first non-comment line is `n m`, followed by `m` lines
//! `u v p p_boost`. Lines starting with `#` are comments. This mirrors the
//! format used by public influence-maximization datasets, extended with the
//! boosted probability column.

use std::fmt;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::{BuildError, DiGraph, GraphBuilder, NodeId};

/// Errors produced while reading an edge list.
#[derive(Debug)]
pub enum IoError {
    /// Underlying IO failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based line number.
    Parse { line: usize, message: String },
    /// Structurally invalid graph (duplicate edge, bad probability, ...).
    Build(BuildError),
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Parse { line, message } => write!(f, "parse error on line {line}: {message}"),
            IoError::Build(e) => write!(f, "invalid graph: {e}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<BuildError> for IoError {
    fn from(e: BuildError) -> Self {
        IoError::Build(e)
    }
}

/// Reads a graph from any reader in the edge-list format.
pub fn read_edge_list<R: Read>(reader: R) -> Result<DiGraph, IoError> {
    let mut lines = BufReader::new(reader).lines();
    let mut line_no = 0usize;

    let header = loop {
        line_no += 1;
        match lines.next() {
            None => {
                return Err(IoError::Parse {
                    line: line_no,
                    message: "missing header line `n m`".to_string(),
                })
            }
            Some(line) => {
                let line = line?;
                let trimmed = line.trim();
                if trimmed.is_empty() || trimmed.starts_with('#') {
                    continue;
                }
                break trimmed.to_string();
            }
        }
    };

    let mut parts = header.split_whitespace();
    let n: usize = parse_field(&mut parts, line_no, "n")?;
    let m: usize = parse_field(&mut parts, line_no, "m")?;

    let mut builder = GraphBuilder::with_capacity(n, m);
    let mut read_edges = 0usize;
    for line in lines {
        line_no += 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let u: u32 = parse_field(&mut parts, line_no, "u")?;
        let v: u32 = parse_field(&mut parts, line_no, "v")?;
        let p: f64 = parse_field(&mut parts, line_no, "p")?;
        let pb: f64 = parse_field(&mut parts, line_no, "p_boost")?;
        builder.add_edge(NodeId(u), NodeId(v), p, pb)?;
        read_edges += 1;
    }

    if read_edges != m {
        return Err(IoError::Parse {
            line: line_no,
            message: format!("header declared {m} edges but found {read_edges}"),
        });
    }
    Ok(builder.build()?)
}

fn parse_field<'a, T: std::str::FromStr>(
    parts: &mut impl Iterator<Item = &'a str>,
    line: usize,
    name: &str,
) -> Result<T, IoError> {
    let raw = parts.next().ok_or_else(|| IoError::Parse {
        line,
        message: format!("missing field `{name}`"),
    })?;
    raw.parse().map_err(|_| IoError::Parse {
        line,
        message: format!("cannot parse `{raw}` as `{name}`"),
    })
}

/// Writes a graph to any writer in the edge-list format.
pub fn write_edge_list<W: Write>(g: &DiGraph, writer: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# kboost edge list: u v p p_boost")?;
    writeln!(w, "{} {}", g.num_nodes(), g.num_edges())?;
    for (u, v, p) in g.edges() {
        writeln!(w, "{} {} {} {}", u, v, p.base, p.boosted)?;
    }
    w.flush()
}

/// Reads a graph from a file path.
pub fn read_edge_list_file(path: impl AsRef<Path>) -> Result<DiGraph, IoError> {
    read_edge_list(std::fs::File::open(path)?)
}

/// Writes a graph to a file path.
pub fn write_edge_list_file(g: &DiGraph, path: impl AsRef<Path>) -> std::io::Result<()> {
    write_edge_list(g, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn sample_graph() -> DiGraph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 0.2, 0.4).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.1, 0.2).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn round_trip() {
        let g = sample_graph();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..]).unwrap();
        assert_eq!(g2.num_nodes(), g.num_nodes());
        assert_eq!(g2.num_edges(), g.num_edges());
        for (u, v, p) in g.edges() {
            assert_eq!(g2.edge(u, v), Some(p));
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "# hello\n\n3 1\n# edge below\n0 1 0.5 0.75\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn missing_header_is_error() {
        let err = read_edge_list("# only comments\n".as_bytes()).unwrap_err();
        assert!(matches!(err, IoError::Parse { .. }));
    }

    #[test]
    fn edge_count_mismatch_is_error() {
        let err = read_edge_list("2 2\n0 1 0.1 0.2\n".as_bytes()).unwrap_err();
        assert!(matches!(err, IoError::Parse { .. }));
    }

    #[test]
    fn bad_probability_is_build_error() {
        let err = read_edge_list("2 1\n0 1 0.9 0.2\n".as_bytes()).unwrap_err();
        assert!(matches!(err, IoError::Build(_)));
    }
}
