//! Lazy-greedy weighted maximum coverage — the IMM node-selection phase.
//!
//! Given a pool of coverage sets, repeatedly pick the node covering the
//! most not-yet-covered sketches. Because marginal coverage only shrinks as
//! the solution grows, a CELF-style lazy priority queue gives the exact
//! greedy answer while re-evaluating only stale entries.

use std::collections::BinaryHeap;

use kboost_graph::NodeId;

/// Result of a greedy maximum-coverage run.
#[derive(Clone, Debug)]
pub struct CoverResult {
    /// Selected nodes, in pick order.
    pub selected: Vec<NodeId>,
    /// Number of sketches covered by the selection.
    pub covered: u64,
    /// Marginal number of sketches covered by each pick.
    pub gains: Vec<u64>,
}

/// Greedily selects up to `k` nodes maximizing sketch coverage.
///
/// * `covers` — the coverage set of each sketch.
/// * `n` — number of nodes in the universe.
/// * `eligible` — optional mask of selectable nodes (e.g. non-seeds);
///   `None` means every node is eligible.
pub fn greedy_max_cover(
    covers: &[Vec<NodeId>],
    n: usize,
    k: usize,
    eligible: Option<&[bool]>,
) -> CoverResult {
    // Inverted index: node -> sketch ids containing it.
    let mut degree = vec![0u32; n];
    for cover in covers {
        for &v in cover {
            degree[v.index()] += 1;
        }
    }
    let mut index_offsets = vec![0u32; n + 1];
    for i in 0..n {
        index_offsets[i + 1] = index_offsets[i] + degree[i];
    }
    let mut cursor = index_offsets[..n].to_vec();
    let mut index = vec![0u32; covers.iter().map(Vec::len).sum()];
    for (sid, cover) in covers.iter().enumerate() {
        for &v in cover {
            index[cursor[v.index()] as usize] = sid as u32;
            cursor[v.index()] += 1;
        }
    }

    // Lazy greedy: heap of (stale) marginal gains.
    let mut gain = degree; // initially marginal gain == degree
    let mut heap: BinaryHeap<(u32, u32)> = (0..n as u32)
        .filter(|&v| eligible.is_none_or(|e| e[v as usize]) && gain[v as usize] > 0)
        .map(|v| (gain[v as usize], v))
        .collect();

    let mut sketch_covered = vec![false; covers.len()];
    let mut selected = Vec::with_capacity(k);
    let mut gains = Vec::with_capacity(k);
    let mut covered = 0u64;

    while selected.len() < k {
        let Some((g, v)) = heap.pop() else { break };
        if g == 0 {
            break;
        }
        if g != gain[v as usize] {
            // Stale entry: re-insert with the current gain.
            if gain[v as usize] > 0 {
                heap.push((gain[v as usize], v));
            }
            continue;
        }
        // Select v: mark its sketches covered and decrement the gain of
        // every other node in those sketches.
        selected.push(NodeId(v));
        gains.push(g as u64);
        covered += g as u64;
        let (lo, hi) = (
            index_offsets[v as usize] as usize,
            index_offsets[v as usize + 1] as usize,
        );
        for &sid in &index[lo..hi] {
            if sketch_covered[sid as usize] {
                continue;
            }
            sketch_covered[sid as usize] = true;
            for &w in &covers[sid as usize] {
                gain[w.index()] -= 1;
            }
        }
        debug_assert_eq!(gain[v as usize], 0);
    }

    CoverResult {
        selected,
        covered,
        gains,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<NodeId> {
        v.iter().map(|&x| NodeId(x)).collect()
    }

    #[test]
    fn picks_highest_degree_first() {
        let covers = vec![ids(&[0, 1]), ids(&[0]), ids(&[2])];
        let res = greedy_max_cover(&covers, 3, 1, None);
        assert_eq!(res.selected, vec![NodeId(0)]);
        assert_eq!(res.covered, 2);
    }

    #[test]
    fn covers_everything_with_enough_picks() {
        let covers = vec![ids(&[0]), ids(&[1]), ids(&[2]), ids(&[0, 2])];
        let res = greedy_max_cover(&covers, 3, 3, None);
        assert_eq!(res.covered, 4);
        assert_eq!(res.selected.len(), 3);
    }

    #[test]
    fn marginal_gains_are_marginal() {
        // Node 0 covers sketches {a, b}; node 1 covers {b, c}.
        let covers = vec![ids(&[0]), ids(&[0, 1]), ids(&[1])];
        let res = greedy_max_cover(&covers, 2, 2, None);
        assert_eq!(res.gains, vec![2, 1]);
        assert_eq!(res.covered, 3);
    }

    #[test]
    fn eligibility_mask_respected() {
        let covers = vec![ids(&[0, 1]), ids(&[0])];
        let eligible = vec![false, true];
        let res = greedy_max_cover(&covers, 2, 2, Some(&eligible));
        assert_eq!(res.selected, vec![NodeId(1)]);
        assert_eq!(res.covered, 1);
    }

    #[test]
    fn stops_when_no_gain() {
        let covers = vec![ids(&[0])];
        let res = greedy_max_cover(&covers, 3, 3, None);
        assert_eq!(res.selected.len(), 1);
        assert_eq!(res.covered, 1);
    }

    #[test]
    fn empty_pool() {
        let res = greedy_max_cover(&[], 5, 2, None);
        assert!(res.selected.is_empty());
        assert_eq!(res.covered, 0);
    }

    #[test]
    fn matches_bruteforce_on_small_instances() {
        // Exhaustively compare greedy's coverage with the best single swap
        // being no better at each step (greedy property), on a fixed pool.
        let covers = vec![
            ids(&[0, 1, 2]),
            ids(&[1, 3]),
            ids(&[3]),
            ids(&[0, 3]),
            ids(&[4]),
        ];
        let res = greedy_max_cover(&covers, 5, 2, None);
        // Best 2-subset by brute force:
        let mut best = 0;
        for a in 0..5u32 {
            for b in (a + 1)..5u32 {
                let covered = covers
                    .iter()
                    .filter(|c| c.contains(&NodeId(a)) || c.contains(&NodeId(b)))
                    .count() as u64;
                best = best.max(covered);
            }
        }
        // Max-coverage greedy is a (1-1/e) approximation; on this instance
        // it is exactly optimal.
        assert_eq!(res.covered, best);
    }
}
