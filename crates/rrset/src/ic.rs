//! RR-set sketch sources for the Independent Cascade model.
//!
//! An RR-set for a root `r` is the random set of nodes that can reach `r`
//! in a sampled deterministic copy of the graph (each edge `(u,v)` kept
//! with probability `p_uv`). Its key property (Section IV-A):
//! `σ(S) = n · E[I(R ∩ S ≠ ∅)]`.

//! Like the PRR phase-I sampler, two equivalent implementations coexist:
//! the scalar loop below (one `rng.random::<f64>()` per qualifying edge)
//! and a data-oriented kernel walking the [`InEdgeSoa`] lanes with batched
//! [`RngCore::fill_u64`] draws consumed from a rolling buffer. The scalar
//! loop only consumes a draw when the head is unmarked *and* `p > 0`; the
//! kernel applies the same test at consumption time and, on exit, rewinds
//! the RNG to the last refill snapshot and replays exactly the consumed
//! draws, so the streams are bit-identical
//! (`kernel_matches_scalar_oracle`).
//!
//! Unlike the PRR kernel — whose walk is cache-miss-dominated at benchmark
//! scale, hiding the buffer machinery in the miss shadow — an RR-set walk
//! is small and usually cache-resident, so batching is roughly
//! cost-neutral here (the vendored RNG fills sequentially; see
//! `benches/sampling.rs` for the measured kernel-vs-scalar ratio per
//! family). The kernel still buys the shared SoA layout and keeps the
//! draw path uniform across samplers.

use kboost_diffusion::sim::BoostMask;
use kboost_graph::{DiGraph, InEdgeSoa, NodeId};
use rand::distr::unit_f64;
use rand::rngs::SmallRng;
use rand::{Rng, RngCore};

use crate::sketch::SketchGenerator;

/// Maximum number of uniforms drawn per bulk RNG refill in the kernel.
/// Deliberately smaller than the PRR kernel's batch: an RR-set consumes
/// hundreds of draws, not tens of thousands, and the unused tail of the
/// final batch is pure overhead (filled, then discarded by the rewind),
/// so the cap bounds that waste at 64 draws per sample.
const UNIFORM_BATCH: usize = 64;

/// First refill size of a sample; refills double up to [`UNIFORM_BATCH`]
/// so small RR-sets over-draw at most ~8 uniforms (cheap rewind) while
/// large walks amortise into maximal batches.
const UNIFORM_BATCH_MIN: usize = 8;

/// Generates one RR-set: all nodes reaching the random root through kept
/// edges, traversed backward.
pub fn sample_rr_set(g: &DiGraph, rng: &mut SmallRng, scratch: &mut RrScratch) -> Vec<NodeId> {
    let root = NodeId(rng.random_range(0..g.num_nodes() as u32));
    sample_rr_set_from(g, root, rng, scratch)
}

/// Generates one RR-set rooted at `root`.
pub fn sample_rr_set_from(
    g: &DiGraph,
    root: NodeId,
    rng: &mut SmallRng,
    scratch: &mut RrScratch,
) -> Vec<NodeId> {
    scratch.reset(g.num_nodes());
    let mut set = Vec::with_capacity(8);
    scratch.mark(root);
    set.push(root);
    let mut head = 0usize;
    while head < set.len() {
        let v = set[head];
        head += 1;
        for (u, p) in g.in_edges(v) {
            if !scratch.is_marked(u) && p.base > 0.0 && rng.random::<f64>() < p.base {
                scratch.mark(u);
                set.push(u);
            }
        }
    }
    set
}

/// Generates one RR-set for a uniformly random root through the
/// data-oriented kernel; draw-stream identical to [`sample_rr_set`].
pub fn sample_rr_set_kernel(
    g: &DiGraph,
    soa: &InEdgeSoa,
    rng: &mut SmallRng,
    scratch: &mut RrScratch,
) -> Vec<NodeId> {
    let root = NodeId(rng.random_range(0..g.num_nodes() as u32));
    sample_rr_set_from_kernel(g, soa, root, rng, scratch)
}

/// Kernel counterpart of [`sample_rr_set_from`]: a single pass over the
/// SoA lanes, drawing from a rolling bulk-filled uniform buffer. The
/// eligibility test (`p > 0` and head unmarked) runs at consumption time,
/// exactly like the scalar loop; on exit the RNG is rewound to the last
/// refill snapshot and advanced by the consumed draws so the stream stays
/// bit-identical.
pub fn sample_rr_set_from_kernel(
    g: &DiGraph,
    soa: &InEdgeSoa,
    root: NodeId,
    rng: &mut SmallRng,
    scratch: &mut RrScratch,
) -> Vec<NodeId> {
    scratch.reset(g.num_nodes());
    if scratch.uniforms.len() != UNIFORM_BATCH {
        scratch.uniforms.resize(UNIFORM_BATCH, 0);
    }
    let RrScratch {
        stamp,
        round,
        uniforms,
    } = scratch;
    let round = *round;
    let heads = soa.heads();
    let probs = soa.probs();

    let mut set = Vec::with_capacity(8);
    stamp[root.index()] = round;
    set.push(root);
    let mut saved = rng.clone();
    let mut pos = 0usize;
    let mut batch = 0usize;
    let mut head_cursor = 0usize;
    while head_cursor < set.len() {
        let v = set[head_cursor];
        head_cursor += 1;
        let (lo, hi) = soa.range(v);
        for e in lo..hi {
            let u = heads[e];
            if probs[e].base > 0.0 && stamp[u as usize] != round {
                if pos == batch {
                    batch = if batch == 0 {
                        UNIFORM_BATCH_MIN
                    } else {
                        (batch * 2).min(UNIFORM_BATCH)
                    };
                    saved = rng.clone();
                    rng.fill_u64(&mut uniforms[..batch]);
                    pos = 0;
                }
                let x = unit_f64(uniforms[pos]);
                pos += 1;
                if x < probs[e].base {
                    stamp[u as usize] = round;
                    set.push(NodeId(u));
                }
            }
        }
    }
    // Resync after over-drawing the tail of the last batch (no-op when the
    // buffer was never filled or exactly exhausted).
    if pos != batch {
        *rng = saved;
        for _ in 0..pos {
            rng.next_u64();
        }
    }
    set
}

/// Reusable visited-stamp buffer for RR-set BFS (avoids reallocating a
/// visited array per sample; see the perf-book guidance on workhorse
/// collections), plus the kernel's uniform batch buffer.
#[derive(Default)]
pub struct RrScratch {
    stamp: Vec<u32>,
    round: u32,
    uniforms: Vec<u64>,
}

impl RrScratch {
    fn reset(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp = vec![0; n];
            self.round = 0;
        }
        self.round += 1;
        if self.round == u32::MAX {
            self.stamp.fill(0);
            self.round = 1;
        }
    }

    #[inline]
    fn mark(&mut self, v: NodeId) {
        self.stamp[v.index()] = self.round;
    }

    #[inline]
    fn is_marked(&self, v: NodeId) -> bool {
        self.stamp[v.index()] == self.round
    }
}

/// Sketch source for plain influence maximization: every RR-set is
/// coverable and covers exactly its member nodes.
pub struct InfluenceRr<'g> {
    g: &'g DiGraph,
    soa: Option<InEdgeSoa>,
}

impl<'g> InfluenceRr<'g> {
    /// Creates the source over `g`, sampling through the batched-draw
    /// kernel (builds the SoA in-edge mirror once).
    pub fn new(g: &'g DiGraph) -> Self {
        InfluenceRr {
            g,
            soa: Some(g.in_edge_soa()),
        }
    }

    /// Scalar-oracle variant of [`new`](Self::new): identical stream,
    /// original per-edge loop. For equivalence tests and baseline timing.
    pub fn new_scalar_oracle(g: &'g DiGraph) -> Self {
        InfluenceRr { g, soa: None }
    }
}

thread_local! {
    // Workhorse scratch shared by all RR-set sources on this thread, so a
    // sample costs O(|R|) rather than O(n) for the visited array.
    static SCRATCH: std::cell::RefCell<RrScratch> = std::cell::RefCell::new(RrScratch::default());
}

impl SketchGenerator for InfluenceRr<'_> {
    type Shard = ();

    fn universe(&self) -> usize {
        self.g.num_nodes()
    }

    fn generate(&self, rng: &mut SmallRng, (): &mut ()) -> Vec<NodeId> {
        SCRATCH.with_borrow_mut(|scratch| match &self.soa {
            Some(soa) => sample_rr_set_kernel(self.g, soa, rng, scratch),
            None => sample_rr_set(self.g, rng, scratch),
        })
    }
}

/// Sketch source for *marginal* influence: an RR-set already intersecting
/// the fixed seed set `S` is uncoverable (its root would be activated
/// regardless), so greedy coverage maximizes `σ(S ∪ T) − σ(S)`.
/// This drives the MoreSeeds baseline.
pub struct MarginalRr<'g> {
    g: &'g DiGraph,
    soa: Option<InEdgeSoa>,
    seed_mask: BoostMask,
}

impl<'g> MarginalRr<'g> {
    /// Creates the source over `g` with fixed existing seeds, sampling
    /// through the batched-draw kernel.
    pub fn new(g: &'g DiGraph, seeds: &[NodeId]) -> Self {
        MarginalRr {
            g,
            soa: Some(g.in_edge_soa()),
            seed_mask: BoostMask::from_nodes(g.num_nodes(), seeds),
        }
    }

    /// Scalar-oracle variant of [`new`](Self::new).
    pub fn new_scalar_oracle(g: &'g DiGraph, seeds: &[NodeId]) -> Self {
        MarginalRr {
            g,
            soa: None,
            seed_mask: BoostMask::from_nodes(g.num_nodes(), seeds),
        }
    }
}

impl SketchGenerator for MarginalRr<'_> {
    type Shard = ();

    fn universe(&self) -> usize {
        self.g.num_nodes()
    }

    fn generate(&self, rng: &mut SmallRng, (): &mut ()) -> Vec<NodeId> {
        let set = SCRATCH.with_borrow_mut(|scratch| match &self.soa {
            Some(soa) => sample_rr_set_kernel(self.g, soa, rng, scratch),
            None => sample_rr_set(self.g, rng, scratch),
        });
        if set.iter().any(|&v| self.seed_mask.contains(v)) {
            Vec::new()
        } else {
            set
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kboost_diffusion::exact::exact_sigma;
    use kboost_graph::GraphBuilder;
    use rand::SeedableRng;

    fn path_graph() -> DiGraph {
        // 0 -> 1 -> 2 with p = 0.5, 0.5
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 0.5, 0.6).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.5, 0.6).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn rr_sets_contain_root() {
        let g = path_graph();
        let mut rng = SmallRng::seed_from_u64(5);
        let mut scratch = RrScratch::default();
        for _ in 0..50 {
            let set = sample_rr_set(&g, &mut rng, &mut scratch);
            assert!(!set.is_empty());
        }
    }

    #[test]
    fn rr_unbiasedness() {
        // n * P[R ∩ {0} != ∅] should equal σ({0}) = 1 + 0.5 + 0.25 = 1.75.
        let g = path_graph();
        let mut rng = SmallRng::seed_from_u64(7);
        let mut scratch = RrScratch::default();
        let trials = 200_000;
        let mut hits = 0u32;
        for _ in 0..trials {
            let set = sample_rr_set(&g, &mut rng, &mut scratch);
            if set.contains(&NodeId(0)) {
                hits += 1;
            }
        }
        let est = 3.0 * hits as f64 / trials as f64;
        let truth = exact_sigma(&g, &[NodeId(0)], &[]);
        assert!((est - truth).abs() < 0.02, "est {est} vs exact {truth}");
    }

    #[test]
    fn marginal_rr_excludes_seed_covered() {
        let g = path_graph();
        let src = MarginalRr::new(&g, &[NodeId(0)]);
        let mut rng = SmallRng::seed_from_u64(11);
        let mut saw_empty = false;
        let mut saw_cover = false;
        for _ in 0..500 {
            let cover = src.generate(&mut rng, &mut ());
            if cover.is_empty() {
                saw_empty = true;
            } else {
                assert!(!cover.contains(&NodeId(0)));
                saw_cover = true;
            }
        }
        assert!(saw_empty && saw_cover);
    }

    #[test]
    fn kernel_matches_scalar_oracle() {
        // Same seed → identical sets AND identical RNG state after every
        // sample, across random graphs with mixed zero/positive edges.
        use kboost_graph::generators::erdos_renyi;
        use kboost_graph::probability::ProbabilityModel;
        for gseed in 0..6u64 {
            let mut grng = SmallRng::seed_from_u64(gseed + 40);
            let g = erdos_renyi(25, 100, ProbabilityModel::Trivalency, 2.0, &mut grng);
            let soa = g.in_edge_soa();
            let mut rng_s = SmallRng::seed_from_u64(gseed * 13 + 1);
            let mut rng_k = rng_s.clone();
            let mut scratch_s = RrScratch::default();
            let mut scratch_k = RrScratch::default();
            for _ in 0..400 {
                let set_s = sample_rr_set(&g, &mut rng_s, &mut scratch_s);
                let set_k = sample_rr_set_kernel(&g, &soa, &mut rng_k, &mut scratch_k);
                assert_eq!(set_s, set_k, "RR-sets diverged (gseed {gseed})");
            }
            assert_eq!(
                rng_s.next_u64(),
                rng_k.next_u64(),
                "rng stream diverged (gseed {gseed})"
            );
        }
    }

    #[test]
    fn kernel_sources_match_scalar_sources() {
        let g = path_graph();
        let kernel = MarginalRr::new(&g, &[NodeId(0)]);
        let scalar = MarginalRr::new_scalar_oracle(&g, &[NodeId(0)]);
        let mut rng_k = SmallRng::seed_from_u64(21);
        let mut rng_s = rng_k.clone();
        for _ in 0..300 {
            assert_eq!(
                kernel.generate(&mut rng_k, &mut ()),
                scalar.generate(&mut rng_s, &mut ())
            );
        }
        let kernel = InfluenceRr::new(&g);
        let scalar = InfluenceRr::new_scalar_oracle(&g);
        for _ in 0..300 {
            assert_eq!(
                kernel.generate(&mut rng_k, &mut ()),
                scalar.generate(&mut rng_s, &mut ())
            );
        }
    }

    #[test]
    fn rooted_rr_set_respects_probabilities() {
        // Root at 2: must include 2, may include 1 then 0.
        let g = path_graph();
        let mut rng = SmallRng::seed_from_u64(13);
        let mut scratch = RrScratch::default();
        let mut with_one = 0u32;
        let trials = 100_000;
        for _ in 0..trials {
            let set = sample_rr_set_from(&g, NodeId(2), &mut rng, &mut scratch);
            assert!(set.contains(&NodeId(2)));
            if set.contains(&NodeId(0)) {
                assert!(set.contains(&NodeId(1)), "0 unreachable without 1");
            }
            if set.contains(&NodeId(1)) {
                with_one += 1;
            }
        }
        let frac = with_one as f64 / trials as f64;
        assert!((frac - 0.5).abs() < 0.01, "P[1 in R] ≈ {frac}");
    }
}
