//! RR-set sketch sources for the Independent Cascade model.
//!
//! An RR-set for a root `r` is the random set of nodes that can reach `r`
//! in a sampled deterministic copy of the graph (each edge `(u,v)` kept
//! with probability `p_uv`). Its key property (Section IV-A):
//! `σ(S) = n · E[I(R ∩ S ≠ ∅)]`.

use kboost_diffusion::sim::BoostMask;
use kboost_graph::{DiGraph, NodeId};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::sketch::SketchGenerator;

/// Generates one RR-set: all nodes reaching the random root through kept
/// edges, traversed backward.
pub fn sample_rr_set(g: &DiGraph, rng: &mut SmallRng, scratch: &mut RrScratch) -> Vec<NodeId> {
    let root = NodeId(rng.random_range(0..g.num_nodes() as u32));
    sample_rr_set_from(g, root, rng, scratch)
}

/// Generates one RR-set rooted at `root`.
pub fn sample_rr_set_from(
    g: &DiGraph,
    root: NodeId,
    rng: &mut SmallRng,
    scratch: &mut RrScratch,
) -> Vec<NodeId> {
    scratch.reset(g.num_nodes());
    let mut set = Vec::with_capacity(8);
    scratch.mark(root);
    set.push(root);
    let mut head = 0usize;
    while head < set.len() {
        let v = set[head];
        head += 1;
        for (u, p) in g.in_edges(v) {
            if !scratch.is_marked(u) && p.base > 0.0 && rng.random::<f64>() < p.base {
                scratch.mark(u);
                set.push(u);
            }
        }
    }
    set
}

/// Reusable visited-stamp buffer for RR-set BFS (avoids reallocating a
/// visited array per sample; see the perf-book guidance on workhorse
/// collections).
#[derive(Default)]
pub struct RrScratch {
    stamp: Vec<u32>,
    round: u32,
}

impl RrScratch {
    fn reset(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp = vec![0; n];
            self.round = 0;
        }
        self.round += 1;
        if self.round == u32::MAX {
            self.stamp.fill(0);
            self.round = 1;
        }
    }

    #[inline]
    fn mark(&mut self, v: NodeId) {
        self.stamp[v.index()] = self.round;
    }

    #[inline]
    fn is_marked(&self, v: NodeId) -> bool {
        self.stamp[v.index()] == self.round
    }
}

/// Sketch source for plain influence maximization: every RR-set is
/// coverable and covers exactly its member nodes.
pub struct InfluenceRr<'g> {
    g: &'g DiGraph,
}

impl<'g> InfluenceRr<'g> {
    /// Creates the source over `g`.
    pub fn new(g: &'g DiGraph) -> Self {
        InfluenceRr { g }
    }
}

thread_local! {
    // Workhorse scratch shared by all RR-set sources on this thread, so a
    // sample costs O(|R|) rather than O(n) for the visited array.
    static SCRATCH: std::cell::RefCell<RrScratch> = std::cell::RefCell::new(RrScratch::default());
}

impl SketchGenerator for InfluenceRr<'_> {
    type Shard = ();

    fn universe(&self) -> usize {
        self.g.num_nodes()
    }

    fn generate(&self, rng: &mut SmallRng, (): &mut ()) -> Vec<NodeId> {
        SCRATCH.with_borrow_mut(|scratch| sample_rr_set(self.g, rng, scratch))
    }
}

/// Sketch source for *marginal* influence: an RR-set already intersecting
/// the fixed seed set `S` is uncoverable (its root would be activated
/// regardless), so greedy coverage maximizes `σ(S ∪ T) − σ(S)`.
/// This drives the MoreSeeds baseline.
pub struct MarginalRr<'g> {
    g: &'g DiGraph,
    seed_mask: BoostMask,
}

impl<'g> MarginalRr<'g> {
    /// Creates the source over `g` with fixed existing seeds.
    pub fn new(g: &'g DiGraph, seeds: &[NodeId]) -> Self {
        MarginalRr {
            g,
            seed_mask: BoostMask::from_nodes(g.num_nodes(), seeds),
        }
    }
}

impl SketchGenerator for MarginalRr<'_> {
    type Shard = ();

    fn universe(&self) -> usize {
        self.g.num_nodes()
    }

    fn generate(&self, rng: &mut SmallRng, (): &mut ()) -> Vec<NodeId> {
        let set = SCRATCH.with_borrow_mut(|scratch| sample_rr_set(self.g, rng, scratch));
        if set.iter().any(|&v| self.seed_mask.contains(v)) {
            Vec::new()
        } else {
            set
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kboost_diffusion::exact::exact_sigma;
    use kboost_graph::GraphBuilder;
    use rand::SeedableRng;

    fn path_graph() -> DiGraph {
        // 0 -> 1 -> 2 with p = 0.5, 0.5
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 0.5, 0.6).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.5, 0.6).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn rr_sets_contain_root() {
        let g = path_graph();
        let mut rng = SmallRng::seed_from_u64(5);
        let mut scratch = RrScratch::default();
        for _ in 0..50 {
            let set = sample_rr_set(&g, &mut rng, &mut scratch);
            assert!(!set.is_empty());
        }
    }

    #[test]
    fn rr_unbiasedness() {
        // n * P[R ∩ {0} != ∅] should equal σ({0}) = 1 + 0.5 + 0.25 = 1.75.
        let g = path_graph();
        let mut rng = SmallRng::seed_from_u64(7);
        let mut scratch = RrScratch::default();
        let trials = 200_000;
        let mut hits = 0u32;
        for _ in 0..trials {
            let set = sample_rr_set(&g, &mut rng, &mut scratch);
            if set.contains(&NodeId(0)) {
                hits += 1;
            }
        }
        let est = 3.0 * hits as f64 / trials as f64;
        let truth = exact_sigma(&g, &[NodeId(0)], &[]);
        assert!((est - truth).abs() < 0.02, "est {est} vs exact {truth}");
    }

    #[test]
    fn marginal_rr_excludes_seed_covered() {
        let g = path_graph();
        let src = MarginalRr::new(&g, &[NodeId(0)]);
        let mut rng = SmallRng::seed_from_u64(11);
        let mut saw_empty = false;
        let mut saw_cover = false;
        for _ in 0..500 {
            let cover = src.generate(&mut rng, &mut ());
            if cover.is_empty() {
                saw_empty = true;
            } else {
                assert!(!cover.contains(&NodeId(0)));
                saw_cover = true;
            }
        }
        assert!(saw_empty && saw_cover);
    }

    #[test]
    fn rooted_rr_set_respects_probabilities() {
        // Root at 2: must include 2, may include 1 then 0.
        let g = path_graph();
        let mut rng = SmallRng::seed_from_u64(13);
        let mut scratch = RrScratch::default();
        let mut with_one = 0u32;
        let trials = 100_000;
        for _ in 0..trials {
            let set = sample_rr_set_from(&g, NodeId(2), &mut rng, &mut scratch);
            assert!(set.contains(&NodeId(2)));
            if set.contains(&NodeId(0)) {
                assert!(set.contains(&NodeId(1)), "0 unreachable without 1");
            }
            if set.contains(&NodeId(1)) {
                with_one += 1;
            }
        }
        let frac = with_one as f64 / trials as f64;
        assert!((frac - 0.5).abs() < 0.01, "P[1 in R] ≈ {frac}");
    }
}
