//! Cooperative termination for chunked sampling — the latency contract.
//!
//! A [`Terminator`] is polled by [`SketchPool::extend_to_within`] once per
//! work chunk, *before* the chunk is claimed. Stopping is cooperative:
//! every chunk that was already claimed completes, so an interrupted pool
//! always holds a contiguous prefix of the chunk stream and the
//! determinism contract survives — the pool's contents are determined by
//! *how many* chunks completed, never by which thread observed the stop.
//!
//! Terminators whose verdict depends only on [`SampleProgress`] (e.g.
//! [`SampleBudget`], [`StopAtChunk`]) stop after a thread-count-invariant
//! chunk count: the shared chunk counter hands out indices monotonically,
//! so every worker that receives an index past the threshold stops and
//! every worker below it proceeds. Wall-clock terminators ([`Deadline`])
//! and external flags ([`CancelFlag`]) stop at a timing-dependent — but
//! still prefix-valid — point.
//!
//! [`SketchPool::extend_to_within`]: crate::sketch::SketchPool::extend_to_within

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Sampling progress at a chunk boundary, as seen by a [`Terminator`].
#[derive(Clone, Copy, Debug)]
pub struct SampleProgress {
    /// Samples the pool will contain if sampling stops before this chunk
    /// (the pool total at the start of the extension plus one full chunk
    /// per lower-indexed chunk of this extension).
    pub samples: u64,
    /// The global chunk index about to be generated (the pool-lifetime
    /// counter the determinism contract seeds chunks by).
    pub chunk: u64,
}

/// A cooperative stop condition, polled at chunk boundaries.
///
/// Implementations must be cheap (the poll sits on the sampling hot path,
/// once per [`CHUNK_SIZE`](crate::sketch::CHUNK_SIZE) samples) and
/// *monotone*: once `should_stop` returns `true` it must keep returning
/// `true` for every later poll of the same run, or workers could disagree
/// about whether a run is over.
pub trait Terminator: Sync {
    /// Whether sampling should stop before generating this chunk.
    fn should_stop(&self, progress: &SampleProgress) -> bool;
}

/// Never stops: `extend_to_within(…, &Unlimited)` is exactly `extend_to`.
#[derive(Clone, Copy, Debug, Default)]
pub struct Unlimited;

impl Terminator for Unlimited {
    #[inline]
    fn should_stop(&self, _progress: &SampleProgress) -> bool {
        false
    }
}

/// Stops once a wall-clock instant passes. The stop point is
/// timing-dependent (runs are prefix-valid but not reproducible); use
/// [`SampleBudget`] when determinism matters more than latency.
#[derive(Clone, Copy, Debug)]
pub struct Deadline(pub Instant);

impl Deadline {
    /// A deadline `budget` from now.
    pub fn after(budget: Duration) -> Self {
        Deadline(Instant::now() + budget)
    }
}

impl Terminator for Deadline {
    #[inline]
    fn should_stop(&self, _progress: &SampleProgress) -> bool {
        Instant::now() >= self.0
    }
}

/// Stops once the pool holds at least this many samples — fully
/// deterministic: the stop chunk depends only on the budget and the chunk
/// geometry, never on thread count or timing. The pool may overshoot the
/// budget by up to one chunk (sampling stops at the first chunk boundary
/// at or past it).
#[derive(Clone, Copy, Debug)]
pub struct SampleBudget(pub u64);

impl Terminator for SampleBudget {
    #[inline]
    fn should_stop(&self, progress: &SampleProgress) -> bool {
        progress.samples >= self.0
    }
}

/// Stops before the given *global* chunk index — the deterministic
/// primitive underneath fault-injection tests ("cancel at exactly chunk
/// `c` of the refresh stream").
#[derive(Clone, Copy, Debug)]
pub struct StopAtChunk(pub u64);

impl Terminator for StopAtChunk {
    #[inline]
    fn should_stop(&self, progress: &SampleProgress) -> bool {
        progress.chunk >= self.0
    }
}

/// Stops when an external flag is raised — the cooperative-cancellation
/// hook for serving threads. The flag must stay raised for the rest of
/// the run (monotonicity; see [`Terminator`]).
#[derive(Clone, Debug, Default)]
pub struct CancelFlag(pub Arc<AtomicBool>);

impl CancelFlag {
    /// A fresh, unraised flag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Raises the flag; every subsequent poll stops.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether the flag has been raised.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

impl Terminator for CancelFlag {
    #[inline]
    fn should_stop(&self, _progress: &SampleProgress) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Fault injection: **panics** inside the poll of the given global chunk
/// index, and stops at every later one. Exactly one worker receives the
/// poisoned index (the chunk counter hands each index out once), so one
/// panic unwinds through the sampling scope while the remaining workers
/// stop cooperatively. Test harnesses use this to prove that a panic at
/// an arbitrary chunk boundary rolls an epoch back cleanly.
#[derive(Clone, Copy, Debug)]
pub struct PanicAt(pub u64);

impl Terminator for PanicAt {
    fn should_stop(&self, progress: &SampleProgress) -> bool {
        assert!(
            progress.chunk != self.0,
            "injected fault at chunk {}",
            self.0
        );
        progress.chunk > self.0
    }
}

/// Composition: a pair stops as soon as *either* side stops.
impl<A: Terminator, B: Terminator> Terminator for (A, B) {
    #[inline]
    fn should_stop(&self, progress: &SampleProgress) -> bool {
        self.0.should_stop(progress) || self.1.should_stop(progress)
    }
}

impl<T: Terminator + ?Sized> Terminator for &T {
    #[inline]
    fn should_stop(&self, progress: &SampleProgress) -> bool {
        (**self).should_stop(progress)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(samples: u64, chunk: u64) -> SampleProgress {
        SampleProgress { samples, chunk }
    }

    #[test]
    fn sample_budget_stops_at_or_past_budget() {
        let t = SampleBudget(1_000);
        assert!(!t.should_stop(&at(999, 3)));
        assert!(t.should_stop(&at(1_000, 4)));
        assert!(t.should_stop(&at(5_000, 19)));
    }

    #[test]
    fn stop_at_chunk_is_a_strict_bound() {
        let t = StopAtChunk(2);
        assert!(!t.should_stop(&at(0, 1)));
        assert!(t.should_stop(&at(0, 2)));
        assert!(t.should_stop(&at(0, 3)));
    }

    #[test]
    fn cancel_flag_round_trip() {
        let flag = CancelFlag::new();
        assert!(!flag.should_stop(&at(0, 0)));
        assert!(!flag.is_cancelled());
        flag.cancel();
        assert!(flag.is_cancelled());
        assert!(flag.should_stop(&at(0, 0)));
    }

    #[test]
    fn pair_stops_when_either_side_stops() {
        let t = (SampleBudget(100), StopAtChunk(10));
        assert!(!t.should_stop(&at(50, 5)));
        assert!(t.should_stop(&at(150, 5)));
        assert!(t.should_stop(&at(50, 10)));
    }

    #[test]
    fn deadline_in_the_past_stops_immediately() {
        let t = Deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.should_stop(&at(0, 0)));
        let future = Deadline::after(Duration::from_secs(3600));
        assert!(!future.should_stop(&at(0, 0)));
    }

    #[test]
    #[should_panic(expected = "injected fault at chunk 7")]
    fn panic_at_detonates_on_its_chunk() {
        let t = PanicAt(7);
        assert!(!t.should_stop(&at(0, 6)));
        let _ = t.should_stop(&at(0, 7));
    }
}
