//! The IMM sampling algorithm (Tang, Shi, Xiao — SIGMOD 2015).
//!
//! IMM draws enough sketches that, with probability `≥ 1 − n^−ℓ`, greedy
//! maximum coverage over the pool is a `(1 − 1/e − ε)`-approximation of the
//! underlying objective. The paper's Lemma 3 instantiates these bounds for
//! the lower-bound function `µ`; the same code selects influence-maximizing
//! seeds when fed RR-sets.
//!
//! Phase 1 (estimating `OPT`): for `x = n/2, n/4, …` draw `θ_i = λ'/x`
//! sketches, run greedy, and stop at the first `x` whose greedy estimate
//! clears `(1+ε')·x`; this certifies the lower bound `LB`.
//! Phase 2: grow the pool to `θ = λ*/LB` sketches and run greedy once more.

use crate::greedy::{greedy_max_cover, CoverResult};
use crate::sketch::{ExtendStatus, SketchGenerator, SketchPool};
use crate::terminator::{Terminator, Unlimited};

/// Parameters of an IMM run.
#[derive(Clone, Copy, Debug)]
pub struct ImmParams {
    /// Solution size `k`.
    pub k: usize,
    /// Approximation slack ε (the paper uses 0.5).
    pub epsilon: f64,
    /// Failure exponent ℓ: success probability is `1 − n^−ℓ`.
    ///
    /// PRR-Boost passes `ℓ' = ℓ·(1 + log 3 / log n)` here to absorb its
    /// three union-bounded failure events (Algorithm 2, line 1).
    pub ell: f64,
    /// Worker threads for sketch generation.
    pub threads: usize,
    /// RNG seed.
    pub seed: u64,
    /// Optional hard cap on the number of sketches (a pragmatic guard for
    /// experiment harnesses; `None` reproduces the paper exactly).
    pub max_sketches: Option<u64>,
    /// Minimum number of sketches regardless of the bounds. The martingale
    /// bounds assume `OPT ≥ 1`, which tiny test graphs violate; a floor
    /// keeps estimates usable there. `0` reproduces the paper.
    pub min_sketches: u64,
}

impl ImmParams {
    /// The paper's default setting: ε = 0.5, ℓ = 1.
    pub fn paper_defaults(k: usize) -> Self {
        ImmParams {
            k,
            epsilon: 0.5,
            ell: 1.0,
            threads: 8,
            seed: 0x133_75EED,
            max_sketches: None,
            min_sketches: 0,
        }
    }
}

/// Outcome of an IMM run: the selected nodes, the retained sketch pool and
/// diagnostic counters.
pub struct ImmRun<S> {
    /// Greedy selection over the final pool.
    pub result: CoverResult,
    /// The final sketch pool (PRR-Boost reuses its merged shard).
    pub pool: SketchPool<S>,
    /// The certified lower bound `LB` on `OPT` from phase 1.
    pub lower_bound: f64,
    /// The final sample target θ.
    pub theta: u64,
}

/// `ln C(n, k)` — logarithm of the binomial coefficient, `0` when `k > n`.
pub fn ln_binom(n: usize, k: usize) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k); // symmetry keeps the loop short
    (1..=k)
        .map(|i| ((n - k + i) as f64).ln() - (i as f64).ln())
        .sum()
}

/// Runs IMM against an arbitrary sketch generator.
///
/// Returns the greedy solution over the final pool; `n·covered/total` is a
/// `(1−1/e−ε)`-approximation of `max_{|B|≤k} F(B)` w.p. `≥ 1−n^−ℓ`.
pub fn run_imm<G: SketchGenerator>(generator: &G, params: &ImmParams) -> ImmRun<G::Shard> {
    run_imm_within(generator, params, &Unlimited).0
}

/// [`run_imm`] under a cooperative stop condition: the terminator is
/// polled at every chunk boundary of both phases, and an interrupted run
/// returns the greedy selection over whatever the budget bought (the
/// second tuple element is `true`). The pool is always a deterministic
/// chunk prefix, so [`achieved_epsilon`] applied to its sample count
/// yields an honest a-posteriori guarantee. With
/// [`Unlimited`](crate::terminator::Unlimited) this *is* `run_imm`,
/// bit for bit.
pub fn run_imm_within<G: SketchGenerator, T: Terminator + ?Sized>(
    generator: &G,
    params: &ImmParams,
    term: &T,
) -> (ImmRun<G::Shard>, bool) {
    let n = generator.universe() as f64;
    let k = params.k;
    let (eps, ell) = (params.epsilon, params.ell);
    // ℓ is bumped so the two phases' failure probabilities union-bound to
    // n^-ℓ (Tang et al., Section 4.2: ℓ ← ℓ + ln 2 / ln n).
    let ell = ell + 2f64.ln() / n.max(2.0).ln();

    let log_nk = ln_binom(
        generator.num_candidates(),
        k.min(generator.num_candidates()),
    );
    let eps_prime = 2f64.sqrt() * eps;
    let ln_n = n.max(2.0).ln();
    let log2_n = n.max(2.0).log2().max(1.0);

    // λ' from Tang et al. (Algorithm 2).
    let lambda_prime = (2.0 + 2.0 * eps_prime / 3.0) * (log_nk + ell * ln_n + log2_n.ln()) * n
        / (eps_prime * eps_prime);

    // λ* from Theorem 2 / the paper's Lemma 3.
    let alpha = (ell * ln_n + 2f64.ln()).sqrt();
    let beta = ((1.0 - 1.0 / std::f64::consts::E) * (log_nk + ell * ln_n + 2f64.ln())).sqrt();
    let e = std::f64::consts::E;
    let lambda_star = 2.0 * n * ((1.0 - 1.0 / e) * alpha + beta).powi(2) / (eps * eps);

    let mut pool = SketchPool::new(params.seed, params.threads);
    let mut lb = 1.0f64;
    let mut interrupted = false;

    let max_i = log2_n.floor() as u32;
    for i in 1..max_i {
        let x = n / 2f64.powi(i as i32);
        let theta_i = (lambda_prime / x).ceil() as u64;
        let theta_i = cap(theta_i, params.max_sketches);
        if pool.extend_to_within(generator, theta_i, term) == ExtendStatus::Interrupted {
            interrupted = true;
            break;
        }
        let res = greedy_max_cover(pool.covers(), generator.universe(), k, None);
        let est = n * res.covered as f64 / pool.total_samples() as f64;
        if est >= (1.0 + eps_prime) * x {
            lb = est / (1.0 + eps_prime);
            break;
        }
        if params
            .max_sketches
            .is_some_and(|cap| pool.total_samples() >= cap)
        {
            break;
        }
    }

    let theta = cap((lambda_star / lb).ceil() as u64, params.max_sketches).max(params.min_sketches);
    if !interrupted && pool.extend_to_within(generator, theta, term) == ExtendStatus::Interrupted {
        interrupted = true;
    }
    let result = greedy_max_cover(pool.covers(), generator.universe(), k, None);

    (
        ImmRun {
            result,
            pool,
            lower_bound: lb,
            theta,
        },
        interrupted,
    )
}

/// Inverts the IMM sample bound: the ε for which `theta` samples satisfy
/// `θ ≥ λ*(ε) / LB` — the *achieved* accuracy of a (possibly truncated)
/// pool, reported by `solve_within` so a deadline-cut answer still
/// carries an honest guarantee. Mirrors the λ* computation of
/// [`run_imm`] exactly (including the internal `ℓ ← ℓ + ln 2 / ln n`
/// union-bound bump), so `achieved_epsilon(…, θ(ε), LB) ≈ ε` when the
/// pool ran to completion. `opt_lb` is a lower bound on the optimum
/// (clamped to ≥ 1, as the martingale bounds assume).
pub fn achieved_epsilon(
    n: usize,
    num_candidates: usize,
    k: usize,
    ell: f64,
    theta: u64,
    opt_lb: f64,
) -> f64 {
    let n_f = n as f64;
    let ell = ell + 2f64.ln() / n_f.max(2.0).ln();
    let log_nk = ln_binom(num_candidates, k.min(num_candidates));
    let ln_n = n_f.max(2.0).ln();
    let e = std::f64::consts::E;
    let alpha = (ell * ln_n + 2f64.ln()).sqrt();
    let beta = ((1.0 - 1.0 / e) * (log_nk + ell * ln_n + 2f64.ln())).sqrt();
    let coef = 2.0 * n_f * ((1.0 - 1.0 / e) * alpha + beta).powi(2);
    (coef / (theta.max(1) as f64 * opt_lb.max(1.0))).sqrt()
}

fn cap(theta: u64, max: Option<u64>) -> u64 {
    match max {
        Some(m) => theta.min(m),
        None => theta,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kboost_graph::NodeId;
    use rand::rngs::SmallRng;
    use rand::Rng;

    #[test]
    fn ln_binom_values() {
        assert!((ln_binom(5, 2) - 10f64.ln()).abs() < 1e-9);
        assert!((ln_binom(10, 0) - 0.0).abs() < 1e-12);
        assert!((ln_binom(10, 10) - 0.0).abs() < 1e-9);
        // C(50, 25) computed independently: ln ≈ 32.472...
        let expected = (126_410_606_437_752f64).ln();
        assert!((ln_binom(50, 25) - expected).abs() < 1e-6);
    }

    /// A synthetic objective: node 0 covers sketches w.p. 0.4, node 1 w.p.
    /// 0.2, the rest w.p. 0.01 each (disjointly). OPT for k=1 is node 0.
    struct Synthetic;

    impl SketchGenerator for Synthetic {
        type Shard = ();
        fn universe(&self) -> usize {
            20
        }
        fn generate(&self, rng: &mut SmallRng, (): &mut ()) -> Vec<NodeId> {
            let x: f64 = rng.random();
            let node = if x < 0.4 {
                Some(0u32)
            } else if x < 0.6 {
                Some(1)
            } else if x < 0.78 {
                Some(2 + ((x - 0.6) / 0.01) as u32)
            } else {
                None
            };
            match node {
                Some(v) => vec![NodeId(v)],
                None => Vec::new(),
            }
        }
    }

    #[test]
    fn imm_finds_the_heavy_node() {
        let params = ImmParams {
            k: 1,
            epsilon: 0.3,
            ell: 1.0,
            threads: 2,
            seed: 99,
            max_sketches: Some(200_000),
            min_sketches: 0,
        };
        let run = run_imm(&Synthetic, &params);
        assert_eq!(run.result.selected, vec![NodeId(0)]);
        // Estimated objective should approach n * 0.4 = 8.
        let est = 20.0 * run.result.covered as f64 / run.pool.total_samples() as f64;
        assert!((est - 8.0).abs() < 1.0, "estimate {est}");
        assert!(run.lower_bound >= 1.0);
        assert!(run.theta > 0);
    }

    #[test]
    fn imm_k2_takes_top_two() {
        let params = ImmParams {
            k: 2,
            epsilon: 0.3,
            ell: 1.0,
            threads: 2,
            seed: 7,
            max_sketches: Some(200_000),
            min_sketches: 0,
        };
        let run = run_imm(&Synthetic, &params);
        let mut sel = run.result.selected.clone();
        sel.sort_unstable();
        assert_eq!(sel, vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    fn achieved_epsilon_inverts_the_sample_bound() {
        // θ derived from λ*(ε)/LB must invert back to ε (up to the ceil).
        let (n, cand, k, ell) = (5_000usize, 4_950usize, 20usize, 1.0f64);
        for eps in [0.3f64, 0.5, 1.0] {
            for lb in [1.0f64, 7.5, 120.0] {
                let coef = achieved_epsilon(n, cand, k, ell, 1, lb).powi(2) * lb.max(1.0);
                let theta = (coef / (eps * eps) / lb).ceil() as u64;
                let back = achieved_epsilon(n, cand, k, ell, theta, lb);
                assert!(
                    (back - eps).abs() < 1e-3,
                    "ε {eps} LB {lb} → θ {theta} → ε {back}"
                );
            }
        }
        // More samples → tighter ε; larger LB → tighter ε.
        let base = achieved_epsilon(n, cand, k, ell, 10_000, 5.0);
        assert!(achieved_epsilon(n, cand, k, ell, 40_000, 5.0) < base);
        assert!(achieved_epsilon(n, cand, k, ell, 10_000, 20.0) < base);
    }

    #[test]
    fn interrupted_imm_returns_a_usable_partial_run() {
        use crate::terminator::{StopAtChunk, Unlimited};
        let params = ImmParams {
            k: 1,
            epsilon: 0.3,
            ell: 1.0,
            threads: 2,
            seed: 99,
            max_sketches: Some(200_000),
            min_sketches: 0,
        };
        let (run, interrupted) = run_imm_within(&Synthetic, &params, &StopAtChunk(2));
        assert!(interrupted);
        assert!(run.pool.total_samples() > 0, "two chunks were bought");
        assert!(!run.result.selected.is_empty());
        // The unlimited variant is exactly run_imm.
        let (full, interrupted) = run_imm_within(&Synthetic, &params, &Unlimited);
        assert!(!interrupted);
        let reference = run_imm(&Synthetic, &params);
        assert_eq!(full.result.selected, reference.result.selected);
        assert_eq!(full.pool.total_samples(), reference.pool.total_samples());
        assert_eq!(full.theta, reference.theta);
    }

    #[test]
    fn cap_limits_pool() {
        let params = ImmParams {
            k: 1,
            epsilon: 0.5,
            ell: 1.0,
            threads: 2,
            seed: 3,
            max_sketches: Some(500),
            min_sketches: 0,
        };
        let run = run_imm(&Synthetic, &params);
        assert!(run.pool.total_samples() <= 500 + 4); // rounding slack per thread
    }
}
