//! The sketch abstraction and a parallel sketch pool.
//!
//! A *sketch* is one random draw of a coverage set `C ⊆ V` such that for a
//! monotone set function `F` being maximized, `F(B) = n · E[I(B ∩ C ≠ ∅)]`.
//! RR-sets realize `F = σ` (influence spread); PRR-graph critical sets
//! realize `F = µ` (the paper's submodular lower bound of the boost).
//!
//! Sketches may be *empty* (e.g. a hopeless or activated PRR-graph): they
//! still count toward the number of samples (the estimator's denominator)
//! but can never be covered.

use kboost_graph::NodeId;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// One sampled sketch: the coverage set plus an optional payload retained
/// alongside it (PRR-Boost keeps the full compressed PRR-graph here).
#[derive(Clone, Debug)]
pub struct Sketch<T> {
    /// Nodes that cover this sketch. Empty means the sketch is uncoverable.
    pub cover: Vec<NodeId>,
    /// Extra data carried with the sketch.
    pub payload: Option<T>,
}

impl<T> Sketch<T> {
    /// An uncoverable sketch (still counted in the denominator).
    pub fn empty() -> Self {
        Sketch { cover: Vec::new(), payload: None }
    }
}

/// A source of independent random sketches.
///
/// Implementations must be `Sync`: the pool samples from multiple threads,
/// each with its own RNG.
pub trait SketchGenerator: Sync {
    /// Payload type carried by coverable sketches.
    type Payload: Send;

    /// Universe size `n`: the estimator is `n · (covered / total)`.
    fn universe(&self) -> usize;

    /// Number of candidate nodes eligible for selection; used for the
    /// `ln C(candidates, k)` term of the IMM bounds. Defaults to `n`.
    fn num_candidates(&self) -> usize {
        self.universe()
    }

    /// Draws one sketch.
    fn generate(&self, rng: &mut SmallRng) -> Sketch<Self::Payload>;
}

/// A pool of sampled sketches, extended in deterministic parallel batches.
pub struct SketchPool<T> {
    covers: Vec<Vec<NodeId>>,
    payloads: Vec<Option<T>>,
    /// Total number of samples drawn, including empty sketches.
    total: u64,
    /// Number of empty (uncoverable) sketches drawn.
    empties: u64,
    base_seed: u64,
    batches_issued: u64,
    threads: usize,
}

/// Batch result of one worker: `(covers, payloads, empty_count)`.
type WorkerBatch<T> = (Vec<Vec<NodeId>>, Vec<Option<T>>, u64);

impl<T: Send> SketchPool<T> {
    /// Creates an empty pool. `base_seed` fixes the randomness of all
    /// future sampling; `threads` sets the parallel fan-out.
    pub fn new(base_seed: u64, threads: usize) -> Self {
        SketchPool {
            covers: Vec::new(),
            payloads: Vec::new(),
            total: 0,
            empties: 0,
            base_seed,
            batches_issued: 0,
            threads: threads.max(1),
        }
    }

    /// Total number of samples drawn (empty included).
    pub fn total_samples(&self) -> u64 {
        self.total
    }

    /// Number of empty sketches drawn.
    pub fn empty_samples(&self) -> u64 {
        self.empties
    }

    /// The coverage sets of the coverable sketches.
    pub fn covers(&self) -> &[Vec<NodeId>] {
        &self.covers
    }

    /// The payloads, parallel to [`covers`](Self::covers).
    pub fn payloads(&self) -> &[Option<T>] {
        &self.payloads
    }

    /// Extends the pool until `total_samples() >= target`.
    ///
    /// Work is split into per-thread chunks with seeds derived from
    /// `(base_seed, batch_counter)`, and results are merged in thread
    /// order, so the pool contents depend only on the sequence of targets —
    /// not on scheduling.
    pub fn extend_to<G>(&mut self, generator: &G, target: u64)
    where
        G: SketchGenerator<Payload = T>,
    {
        if self.total >= target {
            return;
        }
        let need = target - self.total;
        let per_thread = need.div_ceil(self.threads as u64);
        let batch = self.batches_issued;
        self.batches_issued += 1;

        let results: Vec<WorkerBatch<T>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.threads)
                .map(|w| {
                    let quota = per_thread.min(need.saturating_sub(per_thread * w as u64));
                    let seed = self
                        .base_seed
                        .wrapping_add(batch.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                        .wrapping_add((w as u64).wrapping_mul(0xD134_2543_DE82_EF95));
                    scope.spawn(move || {
                        let mut rng = SmallRng::seed_from_u64(seed);
                        let mut covers = Vec::new();
                        let mut payloads = Vec::new();
                        let mut empties = 0u64;
                        for _ in 0..quota {
                            let s = generator.generate(&mut rng);
                            if s.cover.is_empty() {
                                empties += 1;
                            } else {
                                covers.push(s.cover);
                                payloads.push(s.payload);
                            }
                        }
                        (covers, payloads, empties)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sketch worker panicked"))
                .collect()
        });

        for (covers, payloads, empties) in results {
            self.total += covers.len() as u64 + empties;
            self.empties += empties;
            self.covers.extend(covers);
            self.payloads.extend(payloads);
        }
    }

    /// Estimated objective value of set `B`:
    /// `n/total · |{sketches covered by B}|`.
    pub fn estimate(&self, universe: usize, b: &[NodeId]) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let mut member = vec![false; universe];
        for &v in b {
            member[v.index()] = true;
        }
        let covered = self
            .covers
            .iter()
            .filter(|c| c.iter().any(|v| member[v.index()]))
            .count();
        universe as f64 * covered as f64 / self.total as f64
    }

    /// Approximate heap bytes used by the stored coverage sets.
    pub fn cover_memory_bytes(&self) -> usize {
        self.covers
            .iter()
            .map(|c| c.capacity() * std::mem::size_of::<NodeId>() + std::mem::size_of::<Vec<NodeId>>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A degenerate generator: always covers node 0, payload counts calls.
    struct Always;

    impl SketchGenerator for Always {
        type Payload = ();
        fn universe(&self) -> usize {
            10
        }
        fn generate(&self, _rng: &mut SmallRng) -> Sketch<()> {
            Sketch { cover: vec![NodeId(0)], payload: Some(()) }
        }
    }

    /// Covers node 0 with probability 1/2, otherwise empty.
    struct Half;

    impl SketchGenerator for Half {
        type Payload = ();
        fn universe(&self) -> usize {
            10
        }
        fn generate(&self, rng: &mut SmallRng) -> Sketch<()> {
            use rand::Rng;
            if rng.random_bool(0.5) {
                Sketch { cover: vec![NodeId(0)], payload: Some(()) }
            } else {
                Sketch::empty()
            }
        }
    }

    #[test]
    fn extend_reaches_target() {
        let mut pool = SketchPool::new(1, 4);
        pool.extend_to(&Always, 100);
        assert!(pool.total_samples() >= 100);
        assert_eq!(pool.covers().len() as u64, pool.total_samples());
        pool.extend_to(&Always, 50); // no-op: already past target
        let t = pool.total_samples();
        pool.extend_to(&Always, t); // no-op
        assert_eq!(pool.total_samples(), t);
    }

    #[test]
    fn empties_counted() {
        let mut pool = SketchPool::new(2, 2);
        pool.extend_to(&Half, 4000);
        let frac = pool.empty_samples() as f64 / pool.total_samples() as f64;
        assert!((frac - 0.5).abs() < 0.05, "empty fraction {frac}");
        // Estimate of the objective for B = {0}: n * P[cover] ≈ 10 * 0.5.
        let est = pool.estimate(10, &[NodeId(0)]);
        assert!((est - 5.0).abs() < 0.5, "estimate {est}");
        assert_eq!(pool.estimate(10, &[NodeId(3)]), 0.0);
    }

    #[test]
    fn deterministic_given_seed_and_threads() {
        let mut a = SketchPool::new(7, 3);
        a.extend_to(&Half, 500);
        let mut b = SketchPool::new(7, 3);
        b.extend_to(&Half, 500);
        assert_eq!(a.total_samples(), b.total_samples());
        assert_eq!(a.empty_samples(), b.empty_samples());
    }

    #[test]
    fn zero_samples_estimate_is_zero() {
        let pool: SketchPool<()> = SketchPool::new(1, 2);
        assert_eq!(pool.estimate(10, &[NodeId(0)]), 0.0);
    }
}
