//! The sketch abstraction and a parallel, shard-accumulating sketch pool.
//!
//! A *sketch* is one random draw of a coverage set `C ⊆ V` such that for a
//! monotone set function `F` being maximized, `F(B) = n · E[I(B ∩ C ≠ ∅)]`.
//! RR-sets realize `F = σ` (influence spread); PRR-graph critical sets
//! realize `F = µ` (the paper's submodular lower bound of the boost).
//!
//! Sketches may be *empty* (e.g. a hopeless or activated PRR-graph): they
//! still count toward the number of samples (the estimator's denominator)
//! but can never be covered.
//!
//! Beyond the cover, a generator may retain arbitrary per-sample data by
//! appending it to a per-chunk [`SketchShard`] — PRR-Boost builds compact
//! arena shards of compressed PRR-graphs this way, in place, with no
//! per-sample heap payloads. Cover-only sources (plain RR-sets, the
//! PRR-Boost-LB critical sets) use the unit shard `()` and pay nothing.
//!
//! Sampling is parallel *and* deterministic: see the [`SketchPool`]
//! determinism contract — pool contents depend only on the base seed and
//! the sequence of targets, never on the thread count.

use kboost_graph::NodeId;
use kboost_obs::Obs;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::terminator::{SampleProgress, Terminator, Unlimited};

/// Per-chunk storage that a [`SketchGenerator`] appends retained sample
/// data into, merged across chunks in deterministic chunk order. The
/// `Default` value is the empty shard.
///
/// Implementations must make [`absorb`](Self::absorb) order-preserving:
/// `a.absorb(b)` appends `b`'s contents *after* `a`'s, so that merging
/// chunk shards in chunk index order yields the same result as generating
/// every sample sequentially into one shard. This is what keeps shard
/// contents thread-count invariant.
pub trait SketchShard: Send + Default {
    /// Appends `later`'s contents after this shard's own.
    fn absorb(&mut self, later: Self);
}

/// The trivial shard for cover-only sketch sources: retains nothing.
impl SketchShard for () {
    fn absorb(&mut self, (): Self) {}
}

/// Per-sample retention as a plain vector — the legacy per-graph storage
/// model, kept as the equivalence oracle for shard-built pools.
impl<T: Send> SketchShard for Vec<T> {
    fn absorb(&mut self, mut later: Self) {
        self.append(&mut later);
    }
}

/// A source of independent random sketches.
///
/// Implementations must be `Sync`: the pool samples from multiple threads,
/// each with its own RNG and its own shard.
pub trait SketchGenerator: Sync {
    /// Per-chunk retained storage; `()` for cover-only sources.
    type Shard: SketchShard;

    /// Universe size `n`: the estimator is `n · (covered / total)`.
    fn universe(&self) -> usize;

    /// Number of candidate nodes eligible for selection; used for the
    /// `ln C(candidates, k)` term of the IMM bounds. Defaults to `n`.
    fn num_candidates(&self) -> usize {
        self.universe()
    }

    /// Draws one sketch, appending any retained data to `shard`, and
    /// returns its cover. An empty cover means the sketch is uncoverable:
    /// it is counted (the estimator's denominator) and contributes nothing
    /// to the pool's cover list — but it MAY still append retained data
    /// (e.g. the PRR pipeline stores cover-less boostable graphs, and its
    /// empty-sample footprint column covers every sample), as long as the
    /// shard keeps its chunk-order merge semantics. Consumers that need a
    /// storage-based empty count must derive it from the shard, not from
    /// [`SketchPool::empty_samples`] (which counts cover-less sketches).
    fn generate(&self, rng: &mut SmallRng, shard: &mut Self::Shard) -> Vec<NodeId>;
}

/// Adapter exposing any sketch source as *cover-only*: per-sample retained
/// data is generated into a transient default shard and dropped, so a pool
/// sampling through the adapter retains no payload bytes while drawing the
/// **same covers from the same randomness** as the wrapped source.
///
/// Used by SSA's validation pool, which only ever evaluates covers — the
/// generation CPU is unchanged, but the validation side no longer holds a
/// second arena it never reads.
pub struct CoverOnly<'a, G>(pub &'a G);

impl<G: SketchGenerator> SketchGenerator for CoverOnly<'_, G> {
    type Shard = ();

    fn universe(&self) -> usize {
        self.0.universe()
    }

    fn num_candidates(&self) -> usize {
        self.0.num_candidates()
    }

    fn generate(&self, rng: &mut SmallRng, (): &mut ()) -> Vec<NodeId> {
        let mut discard = G::Shard::default();
        self.0.generate(rng, &mut discard)
    }
}

/// Number of samples per work chunk. Small enough to load-balance across
/// threads, large enough to amortize scheduling; the pool's contents are
/// the concatenation of per-chunk results in chunk order, so this constant
/// is part of the determinism contract (changing it reshuffles streams).
/// Public because chunk geometry is part of the latency contract too:
/// staged extensions whose intermediate targets are multiples of the
/// chunk size are bit-identical to a one-shot extension, which is how
/// `solve_within` streams progress without perturbing results.
pub const CHUNK_SIZE: u64 = 256;

/// Outcome of [`SketchPool::extend_to_within`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExtendStatus {
    /// The pool reached the requested target.
    Completed,
    /// The terminator stopped the extension early; the pool holds a
    /// contiguous chunk prefix of what the full extension would have
    /// produced.
    Interrupted,
}

/// A pool of sampled sketches, extended in deterministic parallel chunks.
///
/// # Determinism contract
///
/// Sampling work is split into fixed-size chunks; chunk `c` (a global
/// counter across all [`extend_to`](Self::extend_to) calls) is generated by
/// an RNG seeded from `(base_seed, c)` alone. Worker threads *pull* chunks
/// from a shared counter, and both the covers and the retained shards are
/// merged in chunk order — so for a fixed `base_seed` and sequence of
/// targets, the pool's contents (covers *and* shard bytes) are identical
/// for **any** thread count (the same contract
/// `kboost_diffusion::monte_carlo` provides for simulation runs).
pub struct SketchPool<S> {
    covers: Vec<Vec<NodeId>>,
    shard: S,
    /// Total number of samples drawn, including empty sketches.
    total: u64,
    /// Number of empty (uncoverable) sketches drawn.
    empties: u64,
    base_seed: u64,
    chunks_issued: u64,
    threads: usize,
    obs: Obs,
}

/// Result of one generated chunk: `(covers, shard, empty_count)`.
type ChunkResult<S> = (Vec<Vec<NodeId>>, S, u64);

/// Derives the RNG seed of global chunk `chunk` (SplitMix64-style mixing,
/// so consecutive chunk indices yield decorrelated streams).
#[inline]
fn chunk_seed(base_seed: u64, chunk: u64) -> u64 {
    let mut z = base_seed ^ chunk.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the sampling-stream seed of refresh `epoch` from a pool's base
/// seed — the online-maintenance extension of the determinism contract:
/// chunk RNGs are seeded from `(base_seed, epoch, global_chunk_index)`,
/// with the chunk counter restarting at 0 each epoch.
///
/// Epoch 0 **is** the base seed, so offline pools (which never advance the
/// epoch) keep their historical streams bit-for-bit; later epochs get a
/// SplitMix64-mixed stream decorrelated from the initial build and from
/// each other.
#[inline]
pub fn epoch_stream_seed(base_seed: u64, epoch: u64) -> u64 {
    if epoch == 0 {
        return base_seed;
    }
    let mut z = base_seed
        .rotate_left(23)
        .wrapping_add(epoch.wrapping_mul(0xA076_1D64_78BD_642F));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl<S: SketchShard> SketchPool<S> {
    /// Creates an empty pool. `base_seed` fixes the randomness of all
    /// future sampling; `threads` sets the parallel fan-out.
    pub fn new(base_seed: u64, threads: usize) -> Self {
        SketchPool {
            covers: Vec::new(),
            shard: S::default(),
            total: 0,
            empties: 0,
            base_seed,
            chunks_issued: 0,
            threads: threads.max(1),
            obs: Obs::noop(),
        }
    }

    /// Attaches an observability handle: each generated chunk records its
    /// duration (`sampler.chunk_secs`), throughput
    /// (`sampler.chunk_samples_per_sec`) and the `sampler.chunks` /
    /// `sampler.samples` / `sampler.rng_refills` counters. A detached
    /// handle (the default) records nothing and reads no clock.
    ///
    /// Instrumentation consumes no randomness: pool contents under any
    /// recorder are bit-identical to the no-op run.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Creates an empty pool whose chunk seeds derive from
    /// `(base_seed, epoch, global_chunk_index)` — one fresh pool per
    /// refresh epoch is how the online maintainer resamples invalidated
    /// graphs (see [`epoch_stream_seed`]). `with_epoch(s, 0, t)` is
    /// exactly `new(s, t)`.
    pub fn with_epoch(base_seed: u64, epoch: u64, threads: usize) -> Self {
        Self::new(epoch_stream_seed(base_seed, epoch), threads)
    }

    /// Total number of samples drawn (empty included).
    pub fn total_samples(&self) -> u64 {
        self.total
    }

    /// Number of empty sketches drawn.
    pub fn empty_samples(&self) -> u64 {
        self.empties
    }

    /// The coverage sets of the coverable sketches.
    pub fn covers(&self) -> &[Vec<NodeId>] {
        &self.covers
    }

    /// The merged retained shard (chunk shards absorbed in chunk order).
    pub fn shard(&self) -> &S {
        &self.shard
    }

    /// Extends the pool until `total_samples() >= target`.
    ///
    /// The shortfall is split into [`CHUNK_SIZE`] chunks seeded from
    /// `(base_seed, global_chunk_index)`; workers pull chunks from a shared
    /// counter and each builds its own covers and shard, which are merged
    /// in chunk order — so the pool contents depend only on `base_seed` and
    /// the sequence of targets, not on the thread count or the OS
    /// scheduler.
    pub fn extend_to<G>(&mut self, generator: &G, target: u64)
    where
        G: SketchGenerator<Shard = S>,
    {
        let status = self.extend_to_within(generator, target, &Unlimited);
        debug_assert_eq!(status, ExtendStatus::Completed);
    }

    /// [`extend_to`](Self::extend_to) under a cooperative stop condition,
    /// polled once per chunk *before* the chunk is claimed.
    ///
    /// On an early stop the pool holds a **contiguous chunk prefix** of
    /// the full extension (claimed chunks always complete; should a
    /// timing-dependent terminator leave a gap, the trailing chunks past
    /// it are discarded), and the chunk counter rewinds to the end of
    /// that prefix — so a later `extend_to` call resumes the stream
    /// exactly where the interrupted run left off, and an
    /// interrupted-then-resumed pool is bit-identical to an uninterrupted
    /// one. With [`Unlimited`] this *is* `extend_to`.
    ///
    /// Deterministic terminators (verdicts depending only on
    /// [`SampleProgress`]) stop after a thread-count-invariant chunk
    /// count; see the [`terminator`](crate::terminator) module docs.
    pub fn extend_to_within<G, T>(&mut self, generator: &G, target: u64, term: &T) -> ExtendStatus
    where
        G: SketchGenerator<Shard = S>,
        T: Terminator + ?Sized,
    {
        if self.total >= target {
            return ExtendStatus::Completed;
        }
        let need = target - self.total;
        let num_chunks = need.div_ceil(CHUNK_SIZE);
        let last_quota = need - (num_chunks - 1) * CHUNK_SIZE;
        let first_chunk = self.chunks_issued;
        let base_seed = self.base_seed;
        let base_total = self.total;

        // Progress if sampling stops before local chunk `c`: all
        // lower-indexed chunks of this extension are full-sized (only the
        // final chunk can be short, and stopping before it means it never
        // ran).
        let progress_at = |c: u64| SampleProgress {
            samples: base_total + c * CHUNK_SIZE,
            chunk: first_chunk + c,
        };

        let obs = self.obs.clone();
        let generate_chunk = move |c: u64| -> ChunkResult<S> {
            let quota = if c + 1 == num_chunks {
                last_quota
            } else {
                CHUNK_SIZE
            };
            // Chunk timing only reads the clock when a recorder is
            // attached; the no-op path costs one branch per 256 samples.
            let timer = obs.is_enabled().then(std::time::Instant::now);
            let mut rng = SmallRng::seed_from_u64(chunk_seed(base_seed, first_chunk + c));
            let mut covers = Vec::new();
            let mut shard = S::default();
            let mut empties = 0u64;
            for _ in 0..quota {
                let cover = generator.generate(&mut rng, &mut shard);
                if cover.is_empty() {
                    empties += 1;
                } else {
                    covers.push(cover);
                }
            }
            if let Some(start) = timer {
                let secs = start.elapsed().as_secs_f64();
                obs.observe("sampler.chunk_secs", secs);
                if secs > 0.0 {
                    obs.observe("sampler.chunk_samples_per_sec", quota as f64 / secs);
                }
                obs.counter_add("sampler.chunks", 1);
                obs.counter_add("sampler.samples", quota);
                // One deterministic chunk-RNG reseed per chunk.
                obs.counter_add("sampler.rng_refills", 1);
            }
            (covers, shard, empties)
        };

        let workers = self.threads.min(num_chunks as usize);
        if workers <= 1 {
            let mut completed = 0u64;
            for c in 0..num_chunks {
                if term.should_stop(&progress_at(c)) {
                    break;
                }
                self.merge(generate_chunk(c));
                completed += 1;
            }
            self.chunks_issued = first_chunk + completed;
            return if completed == num_chunks {
                ExtendStatus::Completed
            } else {
                ExtendStatus::Interrupted
            };
        }

        let next = std::sync::atomic::AtomicU64::new(0);
        let mut results: Vec<(u64, ChunkResult<S>)> = std::thread::scope(|scope| {
            let (tx, rx) = std::sync::mpsc::channel();
            for _ in 0..workers {
                let tx = tx.clone();
                let next = &next;
                let generate_chunk = &generate_chunk;
                let progress_at = &progress_at;
                scope.spawn(move || loop {
                    let c = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if c >= num_chunks || term.should_stop(&progress_at(c)) {
                        break;
                    }
                    tx.send((c, generate_chunk(c)))
                        .expect("pool receiver dropped");
                });
            }
            drop(tx);
            rx.into_iter().collect()
        });
        results.sort_unstable_by_key(|&(c, _)| c);
        // Merge the contiguous prefix only. A timing-dependent stop can
        // strand a completed chunk past a gap (a worker holding chunk `c`
        // observed the stop after another worker generated `c + 1`);
        // deterministic terminators never gap, so nothing is discarded on
        // their runs.
        let mut completed = 0u64;
        for (c, chunk) in results {
            if c != completed {
                break;
            }
            self.merge(chunk);
            completed += 1;
        }
        self.chunks_issued = first_chunk + completed;
        if completed == num_chunks {
            ExtendStatus::Completed
        } else {
            ExtendStatus::Interrupted
        }
    }

    fn merge(&mut self, (covers, shard, empties): ChunkResult<S>) {
        self.total += covers.len() as u64 + empties;
        self.empties += empties;
        self.covers.extend(covers);
        self.shard.absorb(shard);
    }

    /// Consumes the pool, returning
    /// `(covers, shard, total_samples, empty_samples)` — used to turn the
    /// merged shard into a `PrrPool` arena without any copy stage.
    pub fn into_parts(self) -> (Vec<Vec<NodeId>>, S, u64, u64) {
        (self.covers, self.shard, self.total, self.empties)
    }

    /// Estimated objective value of set `B`:
    /// `n/total · |{sketches covered by B}|`.
    pub fn estimate(&self, universe: usize, b: &[NodeId]) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let mut member = vec![false; universe];
        for &v in b {
            member[v.index()] = true;
        }
        let covered = self
            .covers
            .iter()
            .filter(|c| c.iter().any(|v| member[v.index()]))
            .count();
        universe as f64 * covered as f64 / self.total as f64
    }

    /// Approximate heap bytes used by the stored coverage sets.
    pub fn cover_memory_bytes(&self) -> usize {
        self.covers
            .iter()
            .map(|c| {
                c.capacity() * std::mem::size_of::<NodeId>() + std::mem::size_of::<Vec<NodeId>>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A degenerate generator: always covers node 0, shard counts calls.
    struct Always;

    impl SketchGenerator for Always {
        type Shard = Vec<()>;
        fn universe(&self) -> usize {
            10
        }
        fn generate(&self, _rng: &mut SmallRng, shard: &mut Vec<()>) -> Vec<NodeId> {
            shard.push(());
            vec![NodeId(0)]
        }
    }

    /// Covers node 0 with probability 1/2, otherwise empty.
    struct Half;

    impl SketchGenerator for Half {
        type Shard = ();
        fn universe(&self) -> usize {
            10
        }
        fn generate(&self, rng: &mut SmallRng, (): &mut ()) -> Vec<NodeId> {
            use rand::Rng;
            if rng.random_bool(0.5) {
                vec![NodeId(0)]
            } else {
                Vec::new()
            }
        }
    }

    #[test]
    fn extend_reaches_target() {
        let mut pool = SketchPool::new(1, 4);
        pool.extend_to(&Always, 100);
        assert!(pool.total_samples() >= 100);
        assert_eq!(pool.covers().len() as u64, pool.total_samples());
        assert_eq!(pool.shard().len() as u64, pool.total_samples());
        pool.extend_to(&Always, 50); // no-op: already past target
        let t = pool.total_samples();
        pool.extend_to(&Always, t); // no-op
        assert_eq!(pool.total_samples(), t);
    }

    #[test]
    fn empties_counted() {
        let mut pool: SketchPool<()> = SketchPool::new(2, 2);
        pool.extend_to(&Half, 4000);
        let frac = pool.empty_samples() as f64 / pool.total_samples() as f64;
        assert!((frac - 0.5).abs() < 0.05, "empty fraction {frac}");
        // Estimate of the objective for B = {0}: n * P[cover] ≈ 10 * 0.5.
        let est = pool.estimate(10, &[NodeId(0)]);
        assert!((est - 5.0).abs() < 0.5, "estimate {est}");
        assert_eq!(pool.estimate(10, &[NodeId(3)]), 0.0);
    }

    #[test]
    fn deterministic_given_seed_and_threads() {
        let mut a: SketchPool<()> = SketchPool::new(7, 3);
        a.extend_to(&Half, 500);
        let mut b: SketchPool<()> = SketchPool::new(7, 3);
        b.extend_to(&Half, 500);
        assert_eq!(a.total_samples(), b.total_samples());
        assert_eq!(a.empty_samples(), b.empty_samples());
    }

    /// Covers a pseudo-random node per draw so cover *contents* and the
    /// retained shard (not just counts) are compared across thread counts.
    struct RandomNode;

    impl SketchGenerator for RandomNode {
        type Shard = Vec<u32>;
        fn universe(&self) -> usize {
            64
        }
        fn generate(&self, rng: &mut SmallRng, shard: &mut Vec<u32>) -> Vec<NodeId> {
            use rand::Rng;
            if rng.random_bool(0.25) {
                return Vec::new();
            }
            let v = rng.random_range(0..64u32);
            shard.push(v);
            vec![NodeId(v)]
        }
    }

    #[test]
    fn pool_contents_invariant_to_thread_count() {
        let mut reference = SketchPool::new(99, 1);
        // Two extensions: chunk indexing must survive incremental growth.
        reference.extend_to(&RandomNode, 700);
        reference.extend_to(&RandomNode, 2_000);
        for threads in [2usize, 3, 7, 16] {
            let mut pool = SketchPool::new(99, threads);
            pool.extend_to(&RandomNode, 700);
            pool.extend_to(&RandomNode, 2_000);
            assert_eq!(pool.total_samples(), reference.total_samples());
            assert_eq!(pool.empty_samples(), reference.empty_samples());
            assert_eq!(
                pool.covers(),
                reference.covers(),
                "covers differ at {threads} threads"
            );
            assert_eq!(
                pool.shard(),
                reference.shard(),
                "shards differ at {threads} threads"
            );
        }
    }

    #[test]
    fn zero_samples_estimate_is_zero() {
        let pool: SketchPool<()> = SketchPool::new(1, 2);
        assert_eq!(pool.estimate(10, &[NodeId(0)]), 0.0);
    }

    #[test]
    fn epoch_zero_is_the_base_stream() {
        assert_eq!(epoch_stream_seed(42, 0), 42);
        let mut a: SketchPool<Vec<u32>> = SketchPool::new(42, 2);
        a.extend_to(&RandomNode, 600);
        let mut b: SketchPool<Vec<u32>> = SketchPool::with_epoch(42, 0, 2);
        b.extend_to(&RandomNode, 600);
        assert_eq!(a.covers(), b.covers());
        assert_eq!(a.shard(), b.shard());
    }

    #[test]
    fn epochs_decorrelate_streams_deterministically() {
        let seeds: Vec<u64> = (0..4).map(|e| epoch_stream_seed(42, e)).collect();
        for i in 0..seeds.len() {
            for j in i + 1..seeds.len() {
                assert_ne!(seeds[i], seeds[j], "epochs {i} and {j} collide");
            }
        }
        // Same (seed, epoch) → same stream, across thread counts.
        let mut a: SketchPool<Vec<u32>> = SketchPool::with_epoch(7, 3, 1);
        a.extend_to(&RandomNode, 600);
        let mut b: SketchPool<Vec<u32>> = SketchPool::with_epoch(7, 3, 5);
        b.extend_to(&RandomNode, 600);
        assert_eq!(a.covers(), b.covers());
        assert_eq!(a.shard(), b.shard());
        // A different epoch draws a different stream.
        let mut c: SketchPool<Vec<u32>> = SketchPool::with_epoch(7, 4, 1);
        c.extend_to(&RandomNode, 600);
        assert_ne!(a.covers(), c.covers());
    }

    #[test]
    fn interrupted_then_resumed_equals_one_shot() {
        use crate::terminator::{SampleBudget, StopAtChunk};
        for threads in [1usize, 4] {
            let mut reference: SketchPool<Vec<u32>> = SketchPool::new(55, threads);
            reference.extend_to(&RandomNode, 3_000);

            let mut pool: SketchPool<Vec<u32>> = SketchPool::new(55, threads);
            let status = pool.extend_to_within(&RandomNode, 3_000, &StopAtChunk(4));
            assert_eq!(status, ExtendStatus::Interrupted);
            assert_eq!(pool.total_samples(), 4 * CHUNK_SIZE);
            // Partial content is a prefix of the reference stream.
            assert_eq!(
                pool.shard().as_slice(),
                &reference.shard()[..pool.shard().len()],
                "{threads} threads"
            );
            // Resuming reaches the target and reproduces the one-shot run.
            let status = pool.extend_to_within(&RandomNode, 3_000, &Unlimited);
            assert_eq!(status, ExtendStatus::Completed);
            assert_eq!(pool.total_samples(), reference.total_samples());
            assert_eq!(pool.covers(), reference.covers());
            assert_eq!(pool.shard(), reference.shard());

            // A deterministic sample budget stops at the covering chunk
            // boundary, identically at every thread count.
            let mut budgeted: SketchPool<Vec<u32>> = SketchPool::new(55, threads);
            let status = budgeted.extend_to_within(&RandomNode, 3_000, &SampleBudget(1_000));
            assert_eq!(status, ExtendStatus::Interrupted);
            assert_eq!(
                budgeted.total_samples(),
                1_000u64.div_ceil(CHUNK_SIZE) * CHUNK_SIZE
            );
            assert_eq!(
                budgeted.shard().as_slice(),
                &reference.shard()[..budgeted.shard().len()]
            );
        }
    }

    #[test]
    fn chunk_aligned_staging_is_bit_identical() {
        // The staging idiom `solve_within` relies on: growing a pool in
        // chunk-aligned stages equals the one-shot extension exactly.
        let mut reference: SketchPool<Vec<u32>> = SketchPool::new(77, 3);
        reference.extend_to(&RandomNode, 2_500);
        let mut staged: SketchPool<Vec<u32>> = SketchPool::new(77, 3);
        let mut target = 0u64;
        while staged.total_samples() < 2_500 {
            target = (target + 3 * CHUNK_SIZE).min(2_500);
            staged.extend_to(&RandomNode, target);
        }
        assert_eq!(staged.covers(), reference.covers());
        assert_eq!(staged.shard(), reference.shard());
    }

    #[test]
    fn worker_panic_propagates_out_of_the_scope() {
        use crate::terminator::PanicAt;
        for threads in [1usize, 4] {
            let mut pool: SketchPool<Vec<u32>> = SketchPool::new(3, threads);
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                pool.extend_to_within(&RandomNode, 2_000, &PanicAt(2))
            }));
            assert!(outcome.is_err(), "injected panic must unwind");
        }
    }

    #[test]
    fn cover_only_adapter_matches_wrapped_covers() {
        let mut full: SketchPool<Vec<u32>> = SketchPool::new(13, 3);
        full.extend_to(&RandomNode, 900);
        let mut lean: SketchPool<()> = SketchPool::new(13, 3);
        lean.extend_to(&CoverOnly(&RandomNode), 900);
        assert_eq!(full.covers(), lean.covers());
        assert_eq!(full.total_samples(), lean.total_samples());
        assert_eq!(full.empty_samples(), lean.empty_samples());
        assert!(!full.shard().is_empty(), "wrapped source retains data");
    }
}
