//! A Stop-and-Stare-style adaptive sampler (Nguyen, Thai, Dinh 2016).
//!
//! Section IV-A notes that "other similar frameworks based on RR-sets
//! (e.g., SSA/D-SSA) could also be applied" in place of IMM. This module
//! provides that alternative: instead of deriving a worst-case sample
//! count from martingale bounds, it doubles the sketch pool until the
//! greedy solution's coverage estimate *validates* on an independent pool
//! ("stare"), typically stopping with far fewer samples on easy instances.
//!
//! The stopping rule implemented here is the practical core of SSA: stop
//! at the first epoch where the selection pool's estimate and an equally
//! sized validation pool's estimate of the same solution agree within
//! `ε/3` relatively, and the estimate moved less than `ε/3` since the
//! previous epoch. (We keep IMM as the default because its guarantee is
//! what the paper's Lemma 3 states; SSA is offered for experimentation and
//! the ablation benches.)

use kboost_graph::NodeId;

use crate::greedy::{greedy_max_cover, CoverResult};
use crate::sketch::{CoverOnly, ExtendStatus, SketchGenerator, SketchPool};
use crate::terminator::{Terminator, Unlimited};

/// Parameters of an SSA run.
#[derive(Clone, Copy, Debug)]
pub struct SsaParams {
    /// Solution size.
    pub k: usize,
    /// Target relative accuracy ε.
    pub epsilon: f64,
    /// Initial pool size (doubled each epoch).
    pub initial: u64,
    /// Hard cap on total samples across both pools.
    pub max_sketches: u64,
    /// Worker threads.
    pub threads: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SsaParams {
    fn default() -> Self {
        SsaParams {
            k: 1,
            epsilon: 0.5,
            initial: 1_000,
            max_sketches: 50_000_000,
            threads: 8,
            seed: 0x55A,
        }
    }
}

/// Outcome of an SSA run.
pub struct SsaRun<S> {
    /// Greedy selection over the final selection pool.
    pub result: CoverResult,
    /// The selection pool (merged shard retained, as with IMM).
    pub pool: SketchPool<S>,
    /// The validation pool. Sampled through [`CoverOnly`], so it retains
    /// covers only — validation never evaluates retained graphs, and
    /// keeping a second arena alive doubled SSA's footprint for nothing.
    pub validation: SketchPool<()>,
    /// Objective estimate of the returned solution from the *validation*
    /// pool (unbiased: the validation pool never influenced selection).
    pub validated_estimate: f64,
    /// Number of doubling epochs used.
    pub epochs: u32,
}

/// Runs the adaptive sampler against any sketch generator.
pub fn run_ssa<G: SketchGenerator>(generator: &G, params: &SsaParams) -> SsaRun<G::Shard> {
    run_ssa_within(generator, params, &Unlimited).0
}

/// [`run_ssa`] under a cooperative stop condition, polled at every chunk
/// boundary of both the selection and the validation pool. An interrupted
/// run (second tuple element `true`) returns the greedy selection over
/// the samples the budget bought; the validated estimate is then computed
/// on however much validation material exists (possibly none, in which
/// case it reads 0 — partial runs should be judged by the selection
/// pool's achieved ε instead). With
/// [`Unlimited`](crate::terminator::Unlimited) this *is* `run_ssa`.
pub fn run_ssa_within<G: SketchGenerator, T: Terminator + ?Sized>(
    generator: &G,
    params: &SsaParams,
    term: &T,
) -> (SsaRun<G::Shard>, bool) {
    let n = generator.universe() as f64;
    let cover_only = CoverOnly(generator);
    let mut select_pool: SketchPool<G::Shard> = SketchPool::new(params.seed, params.threads);
    let mut validate_pool: SketchPool<()> =
        SketchPool::new(params.seed ^ 0xDEAD_BEEF, params.threads);

    let mut target = params.initial.max(16);
    // NaN sentinel: `close` is false against it, forcing ≥ 2 epochs.
    let mut prev_estimate = f64::NAN;
    let mut epochs = 0u32;
    loop {
        epochs += 1;
        let select_status = select_pool.extend_to_within(generator, target, term);
        let result = greedy_max_cover(select_pool.covers(), generator.universe(), params.k, None);
        let est_select = n * result.covered as f64 / select_pool.total_samples().max(1) as f64;

        if select_status == ExtendStatus::Interrupted {
            let est_validate = validate_pool.estimate(generator.universe(), &result.selected);
            return (
                SsaRun {
                    result,
                    pool: select_pool,
                    validation: validate_pool,
                    validated_estimate: est_validate,
                    epochs,
                },
                true,
            );
        }

        // Stare: estimate the same solution on fresh samples.
        let validate_status = validate_pool.extend_to_within(&cover_only, target, term);
        let est_validate = validate_pool.estimate(generator.universe(), &result.selected);

        let tol = params.epsilon / 3.0;
        let close = |a: f64, b: f64| (a - b).abs() <= tol * a.abs().max(b.abs()).max(1e-12);
        let budget_spent =
            select_pool.total_samples() + validate_pool.total_samples() >= params.max_sketches;
        let interrupted = validate_status == ExtendStatus::Interrupted;
        if (close(est_select, est_validate) && close(est_validate, prev_estimate))
            || budget_spent
            || interrupted
        {
            return (
                SsaRun {
                    result,
                    pool: select_pool,
                    validation: validate_pool,
                    validated_estimate: est_validate,
                    epochs,
                },
                interrupted,
            );
        }
        prev_estimate = est_validate;
        target *= 2;
    }
}

/// Convenience: SSA-based seed selection (drop-in for
/// [`select_seeds`](crate::seeds::select_seeds)).
pub fn select_seeds_ssa(g: &kboost_graph::DiGraph, params: &SsaParams) -> (Vec<NodeId>, f64) {
    let run = run_ssa(&crate::ic::InfluenceRr::new(g), params);
    (run.result.selected, run.validated_estimate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kboost_graph::{GraphBuilder, NodeId};
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Node 0 covers w.p. 0.4, node 1 w.p. 0.2, empty otherwise.
    struct Synthetic;

    impl SketchGenerator for Synthetic {
        type Shard = ();
        fn universe(&self) -> usize {
            10
        }
        fn generate(&self, rng: &mut SmallRng, (): &mut ()) -> Vec<NodeId> {
            let x: f64 = rng.random();
            if x < 0.4 {
                vec![NodeId(0)]
            } else if x < 0.6 {
                vec![NodeId(1)]
            } else {
                Vec::new()
            }
        }
    }

    #[test]
    fn ssa_finds_heavy_node_cheaply() {
        let params = SsaParams {
            k: 1,
            epsilon: 0.3,
            seed: 1,
            threads: 2,
            ..Default::default()
        };
        let run = run_ssa(&Synthetic, &params);
        assert_eq!(run.result.selected, vec![NodeId(0)]);
        // Validated estimate ≈ 10 · 0.4 = 4.
        assert!(
            (run.validated_estimate - 4.0).abs() < 1.0,
            "est {}",
            run.validated_estimate
        );
        assert!(run.epochs >= 2, "must validate at least once");
    }

    #[test]
    fn ssa_respects_budget_cap() {
        let params = SsaParams {
            k: 1,
            epsilon: 0.001, // unreachable accuracy
            initial: 100,
            max_sketches: 5_000,
            threads: 2,
            seed: 2,
        };
        let run = run_ssa(&Synthetic, &params);
        assert!(run.pool.total_samples() <= 6_000);
    }

    #[test]
    fn validation_pool_retains_covers_only() {
        // A source that retains one shard entry per coverable sample: the
        // selection pool keeps its shard, while the validation pool samples
        // through `CoverOnly` and must retain nothing but covers.
        struct Retaining;
        impl SketchGenerator for Retaining {
            type Shard = Vec<u64>;
            fn universe(&self) -> usize {
                10
            }
            fn generate(&self, rng: &mut SmallRng, shard: &mut Vec<u64>) -> Vec<NodeId> {
                let x: f64 = rng.random();
                if x < 0.5 {
                    shard.push(0xFEED);
                    vec![NodeId(0)]
                } else {
                    Vec::new()
                }
            }
        }
        let params = SsaParams {
            k: 1,
            epsilon: 0.3,
            seed: 9,
            threads: 2,
            ..Default::default()
        };
        let run = run_ssa(&Retaining, &params);
        let retained = run.pool.total_samples() - run.pool.empty_samples();
        assert_eq!(run.pool.shard().len() as u64, retained);
        // The validation pool drew real samples but its shard is the unit
        // shard: retained validation memory is the covers alone.
        assert!(run.validation.total_samples() > 0);
        assert!(run.validation.cover_memory_bytes() > 0);
        let () = *run.validation.shard();
    }

    #[test]
    fn ssa_seed_selection_on_star() {
        let mut b = GraphBuilder::new(20);
        for v in 1..20u32 {
            b.add_edge(NodeId(0), NodeId(v), 0.8, 0.9).unwrap();
        }
        let g = b.build().unwrap();
        let params = SsaParams {
            k: 1,
            epsilon: 0.3,
            seed: 3,
            threads: 2,
            ..Default::default()
        };
        let (seeds, est) = select_seeds_ssa(&g, &params);
        assert_eq!(seeds, vec![NodeId(0)]);
        // σ({0}) = 1 + 19·0.8 = 16.2.
        assert!((est - 16.2).abs() < 2.0, "estimate {est}");
    }
}
