//! Seed-selection entry points used by the experiment harness.

use kboost_graph::{DiGraph, NodeId};

use crate::ic::{InfluenceRr, MarginalRr};
use crate::imm::{run_imm, ImmParams};

/// Selects `k` influence-maximizing seeds with IMM — the paper's
/// "50 influential nodes selected by the IMM method".
pub fn select_seeds(g: &DiGraph, params: &ImmParams) -> Vec<NodeId> {
    run_imm(&InfluenceRr::new(g), params).result.selected
}

/// Selects `k` *additional* seeds maximizing marginal influence over the
/// existing set — the MoreSeeds baseline of Section VII ("we adapt the IMM
/// framework to select k more seeds with the goal of maximizing the
/// increase of the expected influence spread").
pub fn select_more_seeds(g: &DiGraph, existing: &[NodeId], params: &ImmParams) -> Vec<NodeId> {
    run_imm(&MarginalRr::new(g, existing), params)
        .result
        .selected
}

/// Selects `k` uniformly random non-seed nodes — the "random seeds"
/// scenario of Section VII-B.
pub fn select_random_nodes(g: &DiGraph, k: usize, exclude: &[NodeId], seed: u64) -> Vec<NodeId> {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let mut excluded = vec![false; g.num_nodes()];
    for &v in exclude {
        excluded[v.index()] = true;
    }
    let mut pool: Vec<NodeId> = g.nodes().filter(|v| !excluded[v.index()]).collect();
    pool.shuffle(&mut rng);
    pool.truncate(k);
    pool
}

#[cfg(test)]
mod tests {
    use super::*;
    use kboost_graph::GraphBuilder;

    /// A star: node 0 points at everyone with p = 0.9. IMM must pick 0.
    fn star(n: usize) -> DiGraph {
        let mut b = GraphBuilder::new(n);
        for v in 1..n as u32 {
            b.add_edge(NodeId(0), NodeId(v), 0.9, 0.95).unwrap();
        }
        b.build().unwrap()
    }

    fn quick_params(k: usize, seed: u64) -> ImmParams {
        ImmParams {
            k,
            epsilon: 0.4,
            ell: 1.0,
            threads: 2,
            seed,
            max_sketches: Some(100_000),
            min_sketches: 0,
        }
    }

    #[test]
    fn imm_picks_star_center() {
        let g = star(30);
        let seeds = select_seeds(&g, &quick_params(1, 3));
        assert_eq!(seeds, vec![NodeId(0)]);
    }

    #[test]
    fn more_seeds_avoids_covered_region() {
        // Two disjoint stars; center 0 is already a seed, so the marginal
        // best is the other center (node 15).
        let mut b = GraphBuilder::new(30);
        for v in 1..15u32 {
            b.add_edge(NodeId(0), NodeId(v), 0.9, 0.95).unwrap();
        }
        for v in 16..30u32 {
            b.add_edge(NodeId(15), NodeId(v), 0.9, 0.95).unwrap();
        }
        let g = b.build().unwrap();
        let more = select_more_seeds(&g, &[NodeId(0)], &quick_params(1, 5));
        assert_eq!(more, vec![NodeId(15)]);
    }

    #[test]
    fn random_nodes_exclude_and_count() {
        let g = star(20);
        let picked = select_random_nodes(&g, 5, &[NodeId(0)], 42);
        assert_eq!(picked.len(), 5);
        assert!(!picked.contains(&NodeId(0)));
        let mut dedup = picked.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 5);
    }

    #[test]
    fn random_nodes_deterministic() {
        let g = star(20);
        assert_eq!(
            select_random_nodes(&g, 4, &[], 9),
            select_random_nodes(&g, 4, &[], 9)
        );
    }
}
