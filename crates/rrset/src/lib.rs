//! Reverse-Reachable sets and the IMM framework.
//!
//! The paper builds PRR-Boost on "the Influence Maximization via Martingale
//! (IMM) method based on the idea of Reverse-Reachable Sets" (Section IV-A).
//! This crate implements that substrate:
//!
//! * [`sketch`] — a generic *sketch* abstraction: a random coverage set over
//!   nodes whose expected coverage, scaled by `n`, is the objective being
//!   maximized. RR-sets, marginal RR-sets and PRR-graph critical sets are
//!   all sketches. Generators retain per-sample data by appending it to a
//!   per-chunk [`SketchShard`](sketch::SketchShard), merged deterministically
//!   in chunk order (PRR-Boost builds its flat graph arena this way).
//! * [`greedy`] — lazy-greedy weighted maximum coverage over a sketch pool
//!   (the IMM node-selection phase).
//! * [`imm`] — the two-phase IMM sampling algorithm with martingale-based
//!   stopping (Lemma 3 of the paper, which imports Theorems 1–2 of Tang et
//!   al. 2015).
//! * [`ic`] — concrete sketch sources for the Independent Cascade model:
//!   RR-sets for influence maximization and *marginal* RR-sets for the
//!   MoreSeeds baseline.
//! * [`seeds`] — convenience seed-selection entry points used by the
//!   experiments ("50 influential nodes selected by IMM").
//! * [`terminator`] — cooperative stop conditions (deadline, sample
//!   budget, cancel flag) polled at chunk boundaries; an interrupted pool
//!   always holds a contiguous chunk prefix, so partial results stay
//!   inside the determinism contract.

pub mod greedy;
pub mod ic;
pub mod imm;
pub mod seeds;
pub mod sketch;
pub mod ssa;
pub mod terminator;

pub use greedy::greedy_max_cover;
pub use imm::{achieved_epsilon, ImmParams, ImmRun};
pub use seeds::{select_more_seeds, select_seeds};
pub use sketch::{
    epoch_stream_seed, CoverOnly, ExtendStatus, SketchGenerator, SketchPool, SketchShard,
    CHUNK_SIZE,
};
pub use ssa::{run_ssa, SsaParams, SsaRun};
pub use terminator::{
    CancelFlag, Deadline, PanicAt, SampleBudget, SampleProgress, StopAtChunk, Terminator, Unlimited,
};
