//! [`EngineBuilder`] — validated configuration for an [`Engine`].
//!
//! Every knob that used to be hand-threaded through `BoostOptions`,
//! `ImmParams`, `SsaParams` and `MaintainerOptions` lives here once:
//! graph, seed set, budget `k`, sampling parameters (ε and the failure
//! exponent ℓ, or the failure probability δ = n^−ℓ directly), base RNG
//! seed, thread count and the default algorithm. [`build`] checks the
//! whole configuration and returns a typed [`KboostError::Config`] per
//! violated constraint instead of panicking deep inside a sampler.
//!
//! [`build`]: EngineBuilder::build
//! [`Engine`]: crate::Engine
//! [`KboostError::Config`]: crate::KboostError::Config

use std::sync::Arc;

use kboost_graph::{DiGraph, NodeId};
use kboost_obs::{Obs, Recorder};
use kboost_online::Staleness;

use crate::algorithms::Algorithm;
use crate::engine::Engine;
use crate::error::{config_err, KboostError};

/// How the PRR-graph pool behind the estimator-based algorithms is sized.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Sampling {
    /// IMM-style worst-case sizing from `(ε, ℓ)` — Algorithm 2 of the
    /// paper, with the formal `(1 − 1/e − ε)`-style guarantee.
    Imm,
    /// SSA-style adaptive sampling: stop once the greedy solution
    /// validates on an independent pool. Usually far fewer sketches than
    /// IMM, at the cost of the formal guarantee.
    Ssa {
        /// Samples drawn in the first doubling epoch (default 2000).
        initial: u64,
    },
    /// A fixed-size pool. Required for online maintenance
    /// ([`Engine::apply_mutations`](crate::Engine::apply_mutations)): the
    /// maintainer keeps exactly this many samples alive at every epoch.
    Fixed {
        /// Total samples drawn (and maintained, in online mode).
        samples: u64,
    },
}

/// Which storage pipeline builds the pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pipeline {
    /// The streaming shard→arena pipeline — the production hot path.
    Shard,
    /// The legacy per-graph payload pipeline (sample into standalone
    /// `CompressedPrr` objects, then copy into the arena). Kept as the
    /// equivalence oracle and the memory/throughput baseline that
    /// `exp_perf` records; supports [`Sampling::Fixed`] only and cannot
    /// serve online mutations.
    Legacy,
}

/// A fully validated engine configuration (everything but the graph and
/// seed set, which the [`Engine`] owns directly).
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// Boost budget `k`.
    pub k: usize,
    /// Approximation slack ε (paper default 0.5).
    pub epsilon: f64,
    /// Failure exponent ℓ: the guarantee holds with probability
    /// `1 − n^−ℓ`. Algorithm 2 internally bumps it to
    /// `ℓ' = ℓ·(1 + log 3/log n)`.
    pub ell: f64,
    /// Base RNG seed of the determinism contract.
    pub seed: u64,
    /// Worker threads for sampling, estimation and selection.
    pub threads: usize,
    /// Optional hard cap on drawn sketches (experiment guard).
    pub max_sketches: Option<u64>,
    /// Sketch floor regardless of the bounds (tiny-graph guard).
    pub min_sketches: u64,
    /// Pool sizing policy.
    pub sampling: Sampling,
    /// Storage pipeline.
    pub pipeline: Pipeline,
    /// Online maintenance: compact the arena when the tombstoned fraction
    /// exceeds this threshold.
    pub compact_threshold: f64,
    /// Online maintenance: the staleness-detection rule (exact modes
    /// retain per-sample footprints; see
    /// [`Staleness`]).
    pub staleness: Staleness,
    /// The algorithm [`Engine::run`](crate::Engine::run) dispatches to.
    pub algorithm: Algorithm,
}

/// Builder for [`Engine`] — the single typed entry point over the whole
/// workspace.
///
/// ```
/// use kboost_engine::{EngineBuilder, KboostError};
/// use kboost_graph::{GraphBuilder, NodeId};
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(NodeId(0), NodeId(1), 0.2, 0.4).unwrap();
/// let g = b.build().unwrap();
///
/// // A seed outside the graph is rejected at build time, not deep in a
/// // sampler:
/// let err = EngineBuilder::new(g).seeds([NodeId(9)]).k(1).build();
/// assert!(matches!(err, Err(KboostError::Config { field: "seeds", .. })));
/// ```
#[derive(Clone, Debug)]
pub struct EngineBuilder {
    graph: DiGraph,
    seeds: Vec<NodeId>,
    k: usize,
    epsilon: f64,
    ell: f64,
    delta: Option<f64>,
    seed: u64,
    threads: usize,
    max_sketches: Option<u64>,
    min_sketches: u64,
    sampling: Sampling,
    pipeline: Pipeline,
    compact_threshold: f64,
    staleness: Staleness,
    algorithm: Algorithm,
    obs: Obs,
}

impl EngineBuilder {
    /// Starts a builder over `graph` with the paper's default parameters
    /// (ε = 0.5, ℓ = 1, 8 threads, IMM sampling, the Sandwich
    /// Approximation as the default algorithm).
    pub fn new(graph: DiGraph) -> Self {
        EngineBuilder {
            graph,
            seeds: Vec::new(),
            k: 1,
            epsilon: 0.5,
            ell: 1.0,
            delta: None,
            seed: 0x0B00_57ED,
            threads: 8,
            max_sketches: None,
            min_sketches: 0,
            sampling: Sampling::Imm,
            pipeline: Pipeline::Shard,
            compact_threshold: 0.25,
            staleness: Staleness::Approximate,
            algorithm: Algorithm::Sandwich,
            obs: Obs::noop(),
        }
    }

    /// The seed set `S` the boost is conditioned on (required, non-empty).
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = NodeId>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// The boost budget `k`.
    pub fn k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Approximation slack ε ∈ (0, 1).
    pub fn epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// Failure exponent ℓ > 0 (success probability `1 − n^−ℓ`).
    pub fn ell(mut self, ell: f64) -> Self {
        self.ell = ell;
        self.delta = None;
        self
    }

    /// Failure probability δ ∈ (0, 1) — the convenience spelling of the
    /// guarantee: `build` converts it to `ℓ = ln(1/δ)/ln n`. Overrides
    /// [`ell`](Self::ell).
    pub fn failure_probability(mut self, delta: f64) -> Self {
        self.delta = Some(delta);
        self
    }

    /// Base RNG seed. Results are a pure function of this seed and the
    /// sample-target sequence, never of the thread count.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Worker threads (≥ 1) for sampling, estimation and selection.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Optional hard cap on drawn sketches (bounded experiment runs).
    pub fn max_sketches(mut self, max: u64) -> Self {
        self.max_sketches = Some(max);
        self
    }

    /// Sketch floor regardless of the theoretical bounds.
    pub fn min_sketches(mut self, min: u64) -> Self {
        self.min_sketches = min;
        self
    }

    /// Pool sizing policy (default [`Sampling::Imm`]).
    pub fn sampling(mut self, sampling: Sampling) -> Self {
        self.sampling = sampling;
        self
    }

    /// Storage pipeline (default [`Pipeline::Shard`]).
    pub fn pipeline(mut self, pipeline: Pipeline) -> Self {
        self.pipeline = pipeline;
        self
    }

    /// Online maintenance compaction threshold ∈ [0, 1] (default 0.25).
    pub fn compact_threshold(mut self, threshold: f64) -> Self {
        self.compact_threshold = threshold;
        self
    }

    /// Online staleness-detection rule (default
    /// [`Staleness::Approximate`]). The exact modes retain a per-sample
    /// edge-space footprint so mutations invalidate exactly the samples
    /// whose generation queried them — zero estimator drift at the cost
    /// of footprint memory ([`SolveStats::footprint_bytes`]). Memory
    /// tiers: `Exact` stores sorted lists, `ExactCompressed` delta-varint
    /// blobs (never more bytes than sorted), `ExactBloom` / `ExactHybrid`
    /// constant-size fingerprints (never-miss, rare extra refreshes), and
    /// `ExactTrace` adds each sample's coin trace so invalidated samples
    /// are conditionally *replayed* instead of redrawn — the maintained
    /// pool stays distribution-fresh under partial churn. Requires
    /// [`Sampling::Fixed`] on the shard pipeline: footprints only pay off
    /// where a maintainer can refresh, and the legacy oracle pipeline
    /// does not carry them.
    ///
    /// [`SolveStats::footprint_bytes`]: crate::SolveStats::footprint_bytes
    pub fn staleness(mut self, staleness: Staleness) -> Self {
        self.staleness = staleness;
        self
    }

    /// The algorithm [`Engine::run`](crate::Engine::run) dispatches to
    /// (default [`Algorithm::Sandwich`]).
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Attaches a metrics [`Recorder`] (e.g.
    /// [`MetricsRecorder`](kboost_obs::MetricsRecorder)) to the engine's
    /// whole lifecycle: solve stage timings, sampler chunk throughput,
    /// online epoch accounting and serving publish/pin metrics all flow
    /// into it, and [`Engine::metrics`](crate::Engine::metrics) reads it
    /// back. Without a recorder every instrumentation point is a single
    /// predicted-not-taken branch — no clock reads, no allocation.
    ///
    /// Recording never consumes randomness: solves, sampled pools and
    /// mutation histories are **bit-identical** with and without a
    /// recorder attached (`tests/obs.rs` asserts it property-style).
    pub fn recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.obs = Obs::new(recorder);
        self
    }

    /// Validates the whole configuration and produces the [`Engine`].
    ///
    /// # Errors
    /// Returns [`KboostError::Config`] naming the offending field for:
    /// an empty graph, an empty / out-of-range / duplicated seed set, a
    /// budget larger than the non-seed population, ε ∉ (0, 1), ℓ ≤ 0
    /// (or δ ∉ (0, 1)), zero threads, a zero fixed sample target, a
    /// sketch cap below the floor, a compaction threshold outside
    /// [0, 1], or an exact staleness rule off the fixed-sampling shard
    /// pipeline (or with an invalid bloom fingerprint width).
    pub fn build(self) -> Result<Engine, KboostError> {
        let n = self.graph.num_nodes();
        if n == 0 {
            return Err(config_err("graph", "graph has no nodes"));
        }
        if self.seeds.is_empty() {
            return Err(config_err(
                "seeds",
                "seed set is empty: boosting spreads influence that seeding creates",
            ));
        }
        let mut seen = vec![false; n];
        for &s in &self.seeds {
            if s.index() >= n {
                return Err(config_err(
                    "seeds",
                    format!("seed {s} out of range for a graph with {n} nodes"),
                ));
            }
            if seen[s.index()] {
                return Err(config_err("seeds", format!("duplicate seed {s}")));
            }
            seen[s.index()] = true;
        }
        if self.k > n - self.seeds.len() {
            return Err(config_err(
                "k",
                format!(
                    "budget {} exceeds the {} boostable (non-seed) nodes",
                    self.k,
                    n - self.seeds.len()
                ),
            ));
        }
        if !(self.epsilon > 0.0 && self.epsilon < 1.0) {
            return Err(config_err(
                "epsilon",
                format!("ε must lie in (0, 1), got {}", self.epsilon),
            ));
        }
        let ell = match self.delta {
            None => self.ell,
            Some(delta) => {
                if !(delta > 0.0 && delta < 1.0) {
                    return Err(config_err(
                        "failure_probability",
                        format!("δ must lie in (0, 1), got {delta}"),
                    ));
                }
                (1.0 / delta).ln() / (n as f64).max(2.0).ln()
            }
        };
        if !ell.is_finite() || ell <= 0.0 {
            return Err(config_err("ell", format!("ℓ must be positive, got {ell}")));
        }
        if self.threads == 0 {
            return Err(config_err("threads", "thread count must be at least 1"));
        }
        if let Sampling::Fixed { samples } = self.sampling {
            if samples == 0 {
                return Err(config_err(
                    "sampling",
                    "fixed sampling needs at least one sample",
                ));
            }
        }
        if let (Some(max), min) = (self.max_sketches, self.min_sketches) {
            if max < min {
                return Err(config_err(
                    "max_sketches",
                    format!("sketch cap {max} is below the floor {min}"),
                ));
            }
        }
        if !(0.0..=1.0).contains(&self.compact_threshold) {
            return Err(config_err(
                "compact_threshold",
                format!(
                    "threshold must lie in [0, 1], got {}",
                    self.compact_threshold
                ),
            ));
        }
        if self.pipeline == Pipeline::Legacy && !matches!(self.sampling, Sampling::Fixed { .. }) {
            return Err(config_err(
                "pipeline",
                "the legacy oracle pipeline supports Sampling::Fixed only",
            ));
        }
        if self.staleness.is_exact() {
            if let Err(message) = self.staleness.footprint_mode().validate() {
                return Err(config_err("staleness", message));
            }
            if self.pipeline == Pipeline::Legacy {
                return Err(config_err(
                    "staleness",
                    "exact staleness needs the shard pipeline: the legacy oracle \
                     retains no footprints",
                ));
            }
            if !matches!(self.sampling, Sampling::Fixed { .. }) {
                return Err(config_err(
                    "staleness",
                    "exact staleness requires Sampling::Fixed (online mode): footprints \
                     exist so a maintainer can refresh exactly the invalidated samples",
                ));
            }
        }

        let cfg = EngineConfig {
            k: self.k,
            epsilon: self.epsilon,
            ell,
            seed: self.seed,
            threads: self.threads,
            max_sketches: self.max_sketches,
            min_sketches: self.min_sketches,
            sampling: self.sampling,
            pipeline: self.pipeline,
            compact_threshold: self.compact_threshold,
            staleness: self.staleness,
            algorithm: self.algorithm,
        };
        Ok(Engine::from_validated(
            self.graph, self.seeds, cfg, self.obs,
        ))
    }
}
