//! Scenario wrappers: multi-run experiments exposed through the same
//! validated-config discipline as the engine itself.

use kboost_core::{budget_sweep as core_budget_sweep, BoostOptions, BudgetOptions, BudgetPoint};
use kboost_diffusion::McConfig;
use kboost_graph::DiGraph;
use kboost_rrset::imm::ImmParams;

use crate::error::{config_err, KboostError};

/// Configuration of a seeding-vs-boosting budget sweep (Section V-D /
/// Figure 13). One seed costs as much as `cost_ratio` boosts.
#[derive(Clone, Copy, Debug)]
pub struct BudgetPlan {
    /// Seeds affordable if the whole budget went to seeding.
    pub max_seeds: usize,
    /// Boosts one seed's cost buys (the paper tests 100–800).
    pub cost_ratio: usize,
    /// Approximation slack ε for both IMM seeding and PRR-Boost-LB.
    pub epsilon: f64,
    /// Worker threads.
    pub threads: usize,
    /// RNG seed for the boosting side.
    pub boost_seed: u64,
    /// RNG seed for the seeding side.
    pub seeding_seed: u64,
    /// Optional sketch cap for bounded runs.
    pub max_sketches: Option<u64>,
    /// Sketch floor for the boosting side.
    pub min_sketches: u64,
    /// Monte-Carlo evaluation of each allocation.
    pub mc: McConfig,
}

/// Sweeps the given seeding fractions: a fraction `f` buys
/// `round(f · max_seeds)` seeds (clamped to ≥ 1) and
/// `(max_seeds − seeds) · cost_ratio` boosts; each allocation is scored
/// by simulation.
///
/// # Errors
/// [`KboostError::Config`] for an empty graph, `max_seeds` of zero, a
/// zero `cost_ratio`, ε ∉ (0, 1), zero threads, or a fraction outside
/// [0, 1].
pub fn budget_sweep(
    g: &DiGraph,
    fractions: &[f64],
    plan: &BudgetPlan,
) -> Result<Vec<BudgetPoint>, KboostError> {
    if g.num_nodes() == 0 {
        return Err(config_err("graph", "graph has no nodes"));
    }
    if plan.max_seeds == 0 {
        return Err(config_err("max_seeds", "need at least one seed to afford"));
    }
    if plan.cost_ratio == 0 {
        return Err(config_err(
            "cost_ratio",
            "one seed must cost at least one boost",
        ));
    }
    if !(plan.epsilon > 0.0 && plan.epsilon < 1.0) {
        return Err(config_err(
            "epsilon",
            format!("ε must lie in (0, 1), got {}", plan.epsilon),
        ));
    }
    if plan.threads == 0 {
        return Err(config_err("threads", "thread count must be at least 1"));
    }
    for &f in fractions {
        if !(0.0..=1.0).contains(&f) {
            return Err(config_err(
                "fractions",
                format!("seeding fraction must lie in [0, 1], got {f}"),
            ));
        }
    }
    let opts = BudgetOptions {
        max_seeds: plan.max_seeds,
        cost_ratio: plan.cost_ratio,
        boost: BoostOptions {
            epsilon: plan.epsilon,
            ell: 1.0,
            threads: plan.threads,
            seed: plan.boost_seed,
            max_sketches: plan.max_sketches,
            min_sketches: plan.min_sketches,
        },
        imm: ImmParams {
            k: 1, // overwritten per allocation by the sweep
            epsilon: plan.epsilon,
            ell: 1.0,
            threads: plan.threads,
            seed: plan.seeding_seed,
            max_sketches: plan.max_sketches,
            min_sketches: 0,
        },
        mc: plan.mc,
    };
    Ok(core_budget_sweep(g, fractions, &opts))
}
