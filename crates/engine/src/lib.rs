//! `kboost-engine` — the single typed entry point over the whole kboost
//! workspace.
//!
//! Every caller used to hand-wire `GraphBuilder → SketchPool → PrrPool →
//! greedy → sandwich` with seeds, thread counts, ε/ℓ and maintainer
//! options scattered across five crates. The engine folds that into one
//! object:
//!
//! * [`EngineBuilder`] — graph, seed set, budget `k`, sampling parameters
//!   (ε and ℓ, or the failure probability δ directly), base RNG seed,
//!   thread count and algorithm choice, validated into an [`Engine`] with
//!   a typed [`KboostError`] per violated constraint.
//! * [`BoostAlgorithm`] / [`Algorithm`] — one trait over PRR-Boost,
//!   PRR-Boost-LB, the Sandwich Approximation, the exact tree algorithms
//!   and every Section-VII baseline; [`Algorithm::registry`] makes
//!   cross-algorithm sweeps a loop instead of five call signatures.
//! * [`Solution`] — the uniform result: boost set, `Δ̂`/`µ̂`, the
//!   [`SandwichCertificate`], and build/select timing plus peak-memory
//!   stats ([`SolveStats`]).
//! * **Online lifecycle** — [`Engine::apply_mutations`] drives the
//!   incremental pool maintainer behind the same handle, so one object
//!   serves `Δ̂`/`µ̂`/solve queries while the graph evolves. Epochs are
//!   transactional: malformed batches are rejected at ingress with a
//!   typed [`KboostError::Mutation`], and an epoch whose refresh is
//!   cancelled or panics rolls back byte-identically
//!   ([`KboostError::Interrupted`]) and can be retried verbatim.
//! * **Serving** — [`Engine::serving`] hands out a cloneable
//!   [`SnapshotService`]: query threads pin immutable, epoch-stamped
//!   [`PoolSnapshot`]s (each answering `Δ̂`/`µ̂` and the batched
//!   [`evaluate_many`](Engine::evaluate_many), lock-free) while the
//!   maintainer builds and publishes the next epoch
//!   by pointer swap — see `kboost_serve` for the pinning contract.
//! * **Latency contract** — [`Engine::solve_within`] bounds a solve by a
//!   [`Budget`] (deadline, sample cap, cooperative [`CancelFlag`] —
//!   composable, with an optional progress observer). Sampling stops at
//!   the next chunk boundary, selection runs on whatever the budget
//!   bought, and the solution reports the accuracy the partial pool
//!   actually guarantees ([`SolveStats::achieved_epsilon`]).
//!   `solve_within` under [`Budget::unlimited`] is bit-identical to
//!   [`Engine::solve`].
//!
//! Selections through the engine are **bit-identical** to the hand-wired
//! pipeline under the workspace determinism contract (same seed and
//! sample-target sequence, any thread count) — the deep module paths stay
//! re-exported from the facade precisely so the existing tests double as
//! the equivalence oracle.
//!
//! # Example
//!
//! ```
//! use kboost_engine::{Algorithm, EngineBuilder, Sampling};
//! use kboost_graph::{GraphBuilder, NodeId};
//!
//! // Figure 1 of the paper: s → v0 → v1.
//! let mut b = GraphBuilder::new(3);
//! b.add_edge(NodeId(0), NodeId(1), 0.2, 0.4).unwrap();
//! b.add_edge(NodeId(1), NodeId(2), 0.1, 0.2).unwrap();
//! let g = b.build().unwrap();
//!
//! let mut engine = EngineBuilder::new(g)
//!     .seeds([NodeId(0)])
//!     .k(1)
//!     .threads(2)
//!     .seed(21)
//!     .sampling(Sampling::Fixed { samples: 30_000 })
//!     .build()
//!     .unwrap();
//! let solution = engine.solve(&Algorithm::Sandwich).unwrap();
//! assert_eq!(solution.boost_set, vec![NodeId(1)]); // boost v0, not v1
//! ```

#![deny(missing_docs)]

mod algorithms;
mod budget;
mod config;
mod engine;
mod error;
pub mod scenario;
mod solution;

pub use algorithms::{Algorithm, BoostAlgorithm};
pub use budget::{Budget, SolveProgress};
pub use config::{EngineBuilder, EngineConfig, Pipeline, Sampling};
pub use engine::Engine;
pub use error::KboostError;
pub use solution::{SandwichCertificate, Solution, SolveStats};

// Re-exports so engine-only callers (examples, services, bench bins) can
// name the types that flow through the API without depending on the
// deeper crates directly.
pub use kboost_baselines::WeightedDegree;
pub use kboost_core::{BudgetPoint, RatioPoint};
pub use kboost_graph::{DiGraph, EdgeProbs, GraphBuilder, NodeId};
pub use kboost_obs::{HistogramSummary, MetricsRecorder, MetricsSnapshot, NoopRecorder, Recorder};
pub use kboost_online::{
    EpochBatch, EpochReport, InterruptCause, Mutation, MutationError, MutationLog, Staleness,
};
pub use kboost_rrset::terminator::CancelFlag;
pub use kboost_serve::{PoolSnapshot, ServeStats, SnapshotService};
