//! [`Engine`] — one handle over pool building, estimation, selection and
//! the online lifecycle.

use std::time::Instant;

use kboost_core::{sandwich_ratio_curve, PrrPool, RatioPoint};
use kboost_graph::{DiGraph, NodeId};
use kboost_obs::{MetricsSnapshot, Obs, Value};
use kboost_online::{
    validate_mutations, EpochBatch, EpochReport, MaintainerOptions, Mutation, PoolMaintainer,
};
use kboost_prr::{CompressedPrr, LegacyPrrSource, PrrFullSource};
use kboost_rrset::greedy::greedy_max_cover;
use kboost_rrset::imm::{achieved_epsilon, run_imm_within, ImmParams};
use kboost_rrset::sketch::{ExtendStatus, SketchPool};
use kboost_rrset::ssa::{run_ssa_within, SsaParams};
use kboost_serve::{PoolSnapshot, SnapshotService};

use crate::algorithms::BoostAlgorithm;
use crate::budget::{Budget, ResolvedBudget, SolveProgress};
use crate::config::{EngineConfig, Pipeline, Sampling};
use crate::error::KboostError;
use crate::solution::Solution;

/// The PRR pool behind the estimator-based algorithms, in whichever shape
/// the sampling policy produced it.
// One PoolState exists per Engine and it never moves after construction,
// so the size spread between `Unbuilt` and the pool-carrying variants is
// irrelevant.
#[allow(clippy::large_enum_variant)]
pub(crate) enum PoolState {
    /// No estimator query or PRR solve has happened yet.
    Unbuilt,
    /// IMM- or SSA-sized pool from a one-shot adaptive run. Remembers the
    /// run's µ-greedy selection so the Sandwich branch reuses it
    /// bit-for-bit.
    Adaptive {
        pool: PrrPool,
        b_mu: Vec<NodeId>,
        mu_covered: u64,
        build_secs: f64,
        peak_bytes: usize,
    },
    /// Fixed-size pool behind the online maintainer; serves queries while
    /// the graph evolves.
    Maintained {
        maintainer: PoolMaintainer,
        build_secs: f64,
    },
    /// Fixed-size pool built through the legacy per-graph payload
    /// pipeline (the equivalence oracle / memory baseline).
    Legacy {
        pool: PrrPool,
        build_secs: f64,
        convert_secs: f64,
        peak_bytes: usize,
    },
}

/// The unified entry point: owns the graph, seed set and configuration,
/// builds the PRR pool on demand, dispatches every algorithm through
/// [`solve`](Engine::solve), answers `Δ̂`/`µ̂` queries, and drives the
/// online maintainer behind the same handle.
///
/// Selections made through the engine are **bit-identical** to the
/// hand-wired pipeline under the determinism contract: same seed, same
/// sample-target sequence, any thread count (`tests/engine_api.rs`
/// asserts it against the legacy wiring at 1 and 7 threads).
pub struct Engine {
    /// `None` exactly while the graph lives inside the online maintainer.
    graph: Option<DiGraph>,
    seeds: Vec<NodeId>,
    cfg: EngineConfig,
    state: PoolState,
    /// The resolved budget a [`solve_within`](Self::solve_within) call
    /// stashed for the pool build its algorithm will trigger.
    pending: Option<ResolvedBudget>,
    /// Whether the built pool's sampling was stopped early by a budget —
    /// a property of the pool, reported on every solve that uses it.
    interrupted: bool,
    /// Observability handle ([`Obs::noop`] unless the builder attached a
    /// recorder); propagated into the maintainer, sampler and serving
    /// cell at pool build.
    obs: Obs,
}

impl Engine {
    /// Constructor used by [`EngineBuilder::build`] — config is already
    /// validated.
    ///
    /// [`EngineBuilder::build`]: crate::EngineBuilder::build
    pub(crate) fn from_validated(
        graph: DiGraph,
        seeds: Vec<NodeId>,
        cfg: EngineConfig,
        obs: Obs,
    ) -> Self {
        Engine {
            graph: Some(graph),
            seeds,
            cfg,
            state: PoolState::Unbuilt,
            pending: None,
            interrupted: false,
            obs,
        }
    }

    /// The current graph — the mutated one once epochs have been applied.
    pub fn graph(&self) -> &DiGraph {
        match &self.state {
            PoolState::Maintained { maintainer, .. } => maintainer.graph(),
            _ => self.graph.as_ref().expect("graph present while offline"),
        }
    }

    /// The seed set the engine is conditioned on.
    pub fn seeds(&self) -> &[NodeId] {
        &self.seeds
    }

    /// The validated configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// A point-in-time snapshot of every metric the attached recorder has
    /// accumulated — solve timings, sampler chunk throughput, online
    /// epoch accounting, serving publish/pin/lag histograms. Empty (all
    /// maps empty, zero events) when no recorder was attached through
    /// [`EngineBuilder::recorder`](crate::EngineBuilder::recorder) or the
    /// recorder does not implement
    /// [`Recorder::snapshot`](kboost_obs::Recorder::snapshot).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.obs.snapshot()
    }

    /// The current mutation epoch (0 until a batch is applied).
    pub fn epoch(&self) -> u64 {
        match &self.state {
            PoolState::Maintained { maintainer, .. } => maintainer.epoch(),
            _ => 0,
        }
    }

    /// Solves with the given algorithm (any [`BoostAlgorithm`] impl,
    /// built-in or user-defined).
    pub fn solve<A: BoostAlgorithm + ?Sized>(
        &mut self,
        algorithm: &A,
    ) -> Result<Solution, KboostError> {
        // Cloned to a local so the span timer never holds a borrow of
        // `self` across the solver's `&mut Engine` access.
        let obs = self.obs.clone();
        let _span = obs.span("engine.solve.total_secs");
        let out = algorithm.solve(self);
        if obs.is_enabled() {
            if let Ok(solution) = &out {
                obs.counter_add("engine.solves", 1);
                obs.observe("engine.solve.build_secs", solution.stats.build_secs);
                obs.observe("engine.solve.convert_secs", solution.stats.convert_secs);
                obs.observe("engine.solve.select_secs", solution.stats.select_secs);
                if let Some(eps) = solution.stats.achieved_epsilon {
                    obs.gauge_set("engine.achieved_epsilon", eps);
                }
            }
        }
        out
    }

    /// Solves with the configured default algorithm
    /// ([`EngineConfig::algorithm`]).
    pub fn run(&mut self) -> Result<Solution, KboostError> {
        let algorithm = self.cfg.algorithm;
        self.solve(&algorithm)
    }

    /// [`solve`](Self::solve) under a latency [`Budget`]: the deadline,
    /// sample cap, and cancel flag are polled at every chunk boundary of
    /// the pool build this solve triggers, and sampling stops
    /// cooperatively as soon as any of them fires. Selection then runs on
    /// whatever the budget bought — always a valid pool prefix — and the
    /// solution reports the honest accuracy of that partial pool in
    /// [`SolveStats::achieved_epsilon`](crate::SolveStats::achieved_epsilon)
    /// plus [`SolveStats::interrupted`](crate::SolveStats::interrupted).
    ///
    /// `solve_within(alg, &Budget::unlimited())` is **bit-identical** to
    /// `solve(alg)`. A budget with only
    /// [`max_samples`](Budget::max_samples) is deterministic (the partial
    /// pool is bit-identical across thread counts); deadlines and cancel
    /// flags stop at a timing-dependent chunk.
    ///
    /// The budget governs the *pool build*; if the pool already exists
    /// the solve is pure selection (milliseconds) and completes
    /// regardless of the budget.
    pub fn solve_within<A: BoostAlgorithm + ?Sized>(
        &mut self,
        algorithm: &A,
        budget: &Budget,
    ) -> Result<Solution, KboostError> {
        self.pending = Some(budget.resolve());
        let out = self.solve(algorithm);
        self.pending = None;
        out
    }

    /// [`run`](Self::run) under a latency [`Budget`].
    pub fn run_within(&mut self, budget: &Budget) -> Result<Solution, KboostError> {
        let algorithm = self.cfg.algorithm;
        self.solve_within(&algorithm, budget)
    }

    /// Builds the engine's pool under a [`Budget`] without solving —
    /// useful to warm a service up to whatever accuracy a startup window
    /// allows, then answer `Δ̂`/`µ̂`/solve queries on the partial pool.
    /// No-op if the pool is already built.
    pub fn build_pool_within(&mut self, budget: &Budget) -> Result<(), KboostError> {
        if !matches!(self.state, PoolState::Unbuilt) {
            return Ok(());
        }
        let term = budget.resolve();
        self.build_pool_with(&term)
    }

    /// Whether the built pool's sampling was stopped early by a budget.
    /// `false` until a pool exists. A pool interrupted at build keeps
    /// serving — every query and solve it answers is flagged through
    /// [`SolveStats::interrupted`](crate::SolveStats::interrupted).
    pub fn interrupted(&self) -> bool {
        self.interrupted
    }

    /// `Δ̂(B)` over the engine's pool (built on first use).
    pub fn delta_hat(&mut self, boost: &[NodeId]) -> Result<f64, KboostError> {
        self.ensure_pool()?;
        Ok(self.pool_built().delta_hat(boost))
    }

    /// `µ̂(B)` over the engine's pool (built on first use).
    pub fn mu_hat(&mut self, boost: &[NodeId]) -> Result<f64, KboostError> {
        self.ensure_pool()?;
        Ok(self.pool_built().mu_hat(boost))
    }

    /// `(Δ̂(B), µ̂(B))` in one call — the uniform way to score any boost
    /// set (e.g. a pool-free baseline's) on the engine's estimator.
    pub fn evaluate(&mut self, boost: &[NodeId]) -> Result<(f64, f64), KboostError> {
        self.ensure_pool()?;
        let pool = self.pool_built();
        Ok((pool.delta_hat(boost), pool.mu_hat(boost)))
    }

    /// Scores a whole batch of candidate boost sets in one arena
    /// traversal (`(Δ̂, µ̂)` per candidate) — bit-for-bit equal to
    /// calling [`evaluate`](Self::evaluate) per set, which is retained
    /// as the equivalence oracle (`tests/serve.rs` asserts the identity
    /// over random batches). Works on any pool shape; serving callers
    /// get the same kernel lock-free through
    /// [`PoolSnapshot::evaluate_many`](kboost_serve::PoolSnapshot::evaluate_many).
    pub fn evaluate_many(
        &mut self,
        candidates: &[Vec<NodeId>],
    ) -> Result<Vec<(f64, f64)>, KboostError> {
        self.ensure_pool()?;
        Ok(self.pool_built().evaluate_many(candidates))
    }

    /// The engine's serving cell: a cloneable [`SnapshotService`] whose
    /// readers pin immutable epoch snapshots while this engine keeps
    /// applying mutation epochs — created on first call (publishing the
    /// current state, building the pool if needed) and re-published by
    /// the maintainer after every committed epoch.
    ///
    /// Config validation: serving shares the online requirements
    /// ([`Sampling::Fixed`] + the shard pipeline), rejected with a typed
    /// [`KboostError::Unsupported`] otherwise — an adaptive or legacy
    /// pool has no maintainer to publish epochs.
    ///
    /// [`SnapshotService`]: kboost_serve::SnapshotService
    pub fn serving(&mut self) -> Result<SnapshotService, KboostError> {
        self.require_online("serving")?;
        self.ensure_pool()?;
        let PoolState::Maintained { maintainer, .. } = &mut self.state else {
            unreachable!("require_online guarantees the maintained state");
        };
        Ok(maintainer.serving())
    }

    /// Freezes the engine's current pool state as an epoch-stamped
    /// [`PoolSnapshot`](kboost_serve::PoolSnapshot) — the pinned-epoch
    /// oracle serving tests compare concurrent answers against. Same
    /// online requirements as [`serving`](Self::serving).
    pub fn snapshot(&mut self) -> Result<PoolSnapshot, KboostError> {
        self.require_online("snapshot")?;
        self.ensure_pool()?;
        let PoolState::Maintained { maintainer, .. } = &self.state else {
            unreachable!("require_online guarantees the maintained state");
        };
        Ok(maintainer.snapshot())
    }

    /// The sandwich-ratio analysis of Figures 7/9/12: `num_sets`
    /// perturbations of `base`, keeping sets with
    /// `Δ̂ ≥ keep_above_frac · Δ̂(base)`.
    pub fn ratio_curve(
        &mut self,
        base: &[NodeId],
        num_sets: usize,
        keep_above_frac: f64,
        curve_seed: u64,
    ) -> Result<Vec<RatioPoint>, KboostError> {
        self.ensure_pool()?;
        Ok(sandwich_ratio_curve(
            self.graph(),
            self.pool_built(),
            &self.seeds,
            base,
            num_sets,
            keep_above_frac,
            curve_seed,
        ))
    }

    /// The engine's PRR pool, building it on first use.
    pub fn pool(&mut self) -> Result<&PrrPool, KboostError> {
        self.ensure_pool()?;
        Ok(self.pool_built())
    }

    /// The engine's PRR pool if some solve or query already built it.
    pub fn pool_if_built(&self) -> Option<&PrrPool> {
        match &self.state {
            PoolState::Unbuilt => None,
            PoolState::Adaptive { pool, .. } | PoolState::Legacy { pool, .. } => Some(pool),
            PoolState::Maintained { maintainer, .. } => Some(maintainer.pool()),
        }
    }

    /// Applies one sealed mutation epoch: mutates the graph, tombstones
    /// stale samples, resamples exactly that share, compacts past the
    /// threshold — all behind this handle, so the same engine keeps
    /// serving `Δ̂`/`µ̂`/solve queries while the graph evolves.
    ///
    /// Requires [`Sampling::Fixed`] (the maintainer keeps the sample
    /// count constant) and the shard pipeline. The epoch is
    /// transactional: a gap is a typed [`KboostError::EpochOrder`], a
    /// malformed mutation (out-of-universe endpoint, self-loop) is a
    /// typed [`KboostError::Mutation`] — never a panic — and in every
    /// error case nothing was applied.
    pub fn apply_mutations(&mut self, batch: &EpochBatch) -> Result<EpochReport, KboostError> {
        self.apply_mutations_within(batch, &Budget::unlimited())
    }

    /// [`apply_mutations`](Self::apply_mutations) under a latency
    /// [`Budget`], polled at every chunk boundary of the epoch's refresh
    /// sampling. A budget that fires mid-refresh aborts the epoch with
    /// [`KboostError::Interrupted`] and **rolls the pool back** to its
    /// byte-identical pre-epoch state; the same batch can be retried
    /// verbatim (with a bigger budget) and converges to exactly what an
    /// uninterrupted apply would have produced.
    pub fn apply_mutations_within(
        &mut self,
        batch: &EpochBatch,
        budget: &Budget,
    ) -> Result<EpochReport, KboostError> {
        self.require_online("apply_mutations")?;
        // Validate at ingress, before the (possibly expensive) first
        // pool build a bad batch must not trigger.
        validate_mutations(self.graph().num_nodes(), &batch.mutations)
            .map_err(KboostError::from)?;
        self.ensure_pool()?;
        let PoolState::Maintained { maintainer, .. } = &mut self.state else {
            unreachable!("require_online guarantees the maintained state");
        };
        let term = budget.resolve();
        maintainer
            .apply_epoch_within(batch, &term)
            .map_err(KboostError::from)
    }

    /// Dry run of the staleness rule: the live stored samples `mutations`
    /// would invalidate, in ascending graph order — useful to size a
    /// batch before sealing it. Builds the pool on first use.
    pub fn stale_graphs(&mut self, mutations: &[Mutation]) -> Result<Vec<u32>, KboostError> {
        self.require_online("stale_graphs")?;
        validate_mutations(self.graph().num_nodes(), mutations).map_err(KboostError::from)?;
        self.ensure_pool()?;
        let PoolState::Maintained { maintainer, .. } = &mut self.state else {
            unreachable!("require_online guarantees the maintained state");
        };
        Ok(maintainer.stale_graphs(mutations))
    }

    fn require_online(&self, operation: &'static str) -> Result<(), KboostError> {
        match (self.cfg.sampling, self.cfg.pipeline) {
            (Sampling::Fixed { .. }, Pipeline::Shard) => Ok(()),
            (_, Pipeline::Legacy) => Err(KboostError::Unsupported {
                operation,
                reason: "the legacy oracle pipeline cannot maintain a pool online".into(),
            }),
            _ => Err(KboostError::Unsupported {
                operation,
                reason: "online maintenance requires Sampling::Fixed so the maintainer can \
                         keep the sample count constant across epochs"
                    .into(),
            }),
        }
    }

    /// IMM parameters exactly as Algorithm 2 derives them from the
    /// engine config (`ℓ' = ℓ·(1 + log 3/log n)`).
    pub(crate) fn imm_params(&self) -> ImmParams {
        let n = (self.graph().num_nodes() as f64).max(2.0);
        ImmParams {
            k: self.cfg.k,
            epsilon: self.cfg.epsilon,
            ell: self.cfg.ell * (1.0 + 3f64.ln() / n.ln()),
            threads: self.cfg.threads,
            seed: self.cfg.seed,
            max_sketches: self.cfg.max_sketches,
            min_sketches: self.cfg.min_sketches,
        }
    }

    /// Builds the pool dictated by the sampling policy, once. Consumes
    /// the budget a surrounding [`solve_within`](Self::solve_within)
    /// stashed (unlimited otherwise) — one code path for budgeted and
    /// plain solves, which is what makes them bit-identical.
    pub(crate) fn ensure_pool(&mut self) -> Result<(), KboostError> {
        if !matches!(self.state, PoolState::Unbuilt) {
            return Ok(());
        }
        let term = self
            .pending
            .take()
            .unwrap_or_else(|| Budget::unlimited().resolve());
        self.build_pool_with(&term)
    }

    /// The budget a surrounding [`solve_within`](Self::solve_within)
    /// stashed, for algorithms that sample outside the engine's own pool
    /// (PRR-Boost-LB under adaptive sampling).
    pub(crate) fn take_pending(&mut self) -> Option<ResolvedBudget> {
        self.pending.take()
    }

    /// Records whether the engine-pool build was stopped early.
    pub(crate) fn build_interrupted(&self) -> bool {
        self.interrupted
    }

    fn build_pool_with(&mut self, term: &ResolvedBudget) -> Result<(), KboostError> {
        match (self.cfg.sampling, self.cfg.pipeline) {
            (Sampling::Imm, Pipeline::Shard) => {
                let t0 = Instant::now();
                let g = self.graph.as_ref().expect("offline engine owns the graph");
                let source = PrrFullSource::new(g, &self.seeds, self.cfg.k);
                let (run, interrupted) = run_imm_within(&source, &self.imm_params(), term);
                let peak_bytes = run.pool.shard().memory_bytes() + run.pool.cover_memory_bytes();
                let pool = PrrPool::new(run.pool, g.num_nodes(), self.cfg.threads);
                self.interrupted = interrupted;
                self.state = PoolState::Adaptive {
                    pool,
                    b_mu: run.result.selected,
                    mu_covered: run.result.covered,
                    build_secs: t0.elapsed().as_secs_f64(),
                    peak_bytes,
                };
            }
            (Sampling::Ssa { initial }, Pipeline::Shard) => {
                let t0 = Instant::now();
                let g = self.graph.as_ref().expect("offline engine owns the graph");
                let source = PrrFullSource::new(g, &self.seeds, self.cfg.k);
                let params = SsaParams {
                    k: self.cfg.k,
                    epsilon: self.cfg.epsilon,
                    initial,
                    max_sketches: self.cfg.max_sketches.unwrap_or(u64::MAX / 2),
                    threads: self.cfg.threads,
                    seed: self.cfg.seed,
                };
                let (run, interrupted) = run_ssa_within(&source, &params, term);
                let peak_bytes = run.pool.shard().memory_bytes() + run.pool.cover_memory_bytes();
                let pool = PrrPool::new(run.pool, g.num_nodes(), self.cfg.threads);
                self.interrupted = interrupted;
                self.state = PoolState::Adaptive {
                    pool,
                    b_mu: run.result.selected,
                    mu_covered: run.result.covered,
                    build_secs: t0.elapsed().as_secs_f64(),
                    peak_bytes,
                };
            }
            (Sampling::Fixed { samples }, Pipeline::Shard) => {
                let t0 = Instant::now();
                // The maintainer takes the graph by value; keep ours
                // until the build succeeds so a typed failure (bad
                // staleness config, injected panic) leaves the engine
                // fully usable. The copy is a flat-array memcpy — noise
                // against the sampling the build is about to do.
                let g = self
                    .graph
                    .as_ref()
                    .expect("offline engine owns the graph")
                    .clone();
                let n = g.num_nodes();
                let k = self.cfg.k;
                let ell = self.imm_params().ell;
                let seeds = self.seeds.clone();
                let num_seeds = seeds.len();
                let mut eligible = vec![true; n];
                for &s in &seeds {
                    eligible[s.index()] = false;
                }
                // Stage-boundary progress: a greedy pass over the covers
                // so far gives the running Δ̂, and inverting the IMM
                // bound at the current sample count gives the accuracy
                // already guaranteed.
                let obs = self.obs.clone();
                let mut on_stage = |target: u64, pool: &SketchPool<_>| {
                    let drawn = pool.total_samples();
                    let res = greedy_max_cover(pool.covers(), n, k, Some(&eligible));
                    let delta = n as f64 * res.covered as f64 / drawn.max(1) as f64;
                    let eps = achieved_epsilon(n, n - num_seeds, k, ell, drawn, delta);
                    obs.event(
                        "engine.budget_tick",
                        &[
                            ("samples", Value::from(drawn)),
                            ("target", Value::from(target)),
                            ("delta_hat", Value::from(delta)),
                            ("achieved_epsilon", Value::from(eps)),
                        ],
                    );
                    term.notify(&SolveProgress {
                        samples: drawn,
                        target: Some(target),
                        delta_hat: Some(delta),
                        achieved_epsilon: Some(eps),
                        best_boost: Some(res.selected),
                    });
                };
                let maintainer = PoolMaintainer::build_within_with_obs(
                    g,
                    seeds,
                    MaintainerOptions {
                        target_samples: samples,
                        k: self.cfg.k,
                        threads: self.cfg.threads,
                        base_seed: self.cfg.seed,
                        compact_threshold: self.cfg.compact_threshold,
                        staleness: self.cfg.staleness,
                    },
                    self.obs.clone(),
                    term,
                    &mut on_stage,
                )
                .map_err(KboostError::from)?;
                self.graph = None;
                self.interrupted = maintainer.pool().total_samples() < samples;
                self.state = PoolState::Maintained {
                    maintainer,
                    build_secs: t0.elapsed().as_secs_f64(),
                };
            }
            (Sampling::Fixed { samples }, Pipeline::Legacy) => {
                let t0 = Instant::now();
                let g = self.graph.as_ref().expect("offline engine owns the graph");
                let source = LegacyPrrSource::new(g, &self.seeds, self.cfg.k);
                let mut sketches: SketchPool<Vec<CompressedPrr>> =
                    SketchPool::new(self.cfg.seed, self.cfg.threads);
                sketches.set_obs(self.obs.clone());
                let status = sketches.extend_to_within(&source, samples, term);
                self.interrupted = status == ExtendStatus::Interrupted;
                let build_secs = t0.elapsed().as_secs_f64();
                let payload_bytes: usize = sketches
                    .shard()
                    .iter()
                    .map(|c| c.memory_bytes() + std::mem::size_of::<CompressedPrr>())
                    .sum();
                let cover_bytes = sketches.cover_memory_bytes();
                let t1 = Instant::now();
                let pool = PrrPool::from_legacy(sketches, g.num_nodes(), self.cfg.threads);
                let convert_secs = t1.elapsed().as_secs_f64();
                let peak_bytes = payload_bytes + cover_bytes + pool.memory_bytes();
                self.state = PoolState::Legacy {
                    pool,
                    build_secs,
                    convert_secs,
                    peak_bytes,
                };
            }
            (_, Pipeline::Legacy) => {
                unreachable!("EngineBuilder rejects adaptive sampling on the legacy pipeline")
            }
        }
        Ok(())
    }

    /// The built pool; panics if [`ensure_pool`](Self::ensure_pool) has
    /// not run — callers inside the crate always pair them.
    pub(crate) fn pool_built(&self) -> &PrrPool {
        self.pool_if_built()
            .expect("ensure_pool must run before pool_built")
    }

    /// The µ-greedy (lower bound) selection over the engine's pool: the
    /// adaptive run's cached IMM/SSA selection, or — for fixed-size
    /// pools — the lazy greedy over the live samples' critical sets.
    /// The fixed-size path recomputes (and re-materializes the critical
    /// covers) on every call; selection is milliseconds against the
    /// minutes sampling costs, so no per-epoch cache is kept until a
    /// profile says otherwise.
    pub(crate) fn mu_selection(&mut self) -> Result<(Vec<NodeId>, u64), KboostError> {
        self.ensure_pool()?;
        if let PoolState::Adaptive {
            b_mu, mu_covered, ..
        } = &self.state
        {
            return Ok((b_mu.clone(), *mu_covered));
        }
        let n = self.graph().num_nodes();
        let mut eligible = vec![true; n];
        for &s in &self.seeds {
            eligible[s.index()] = false;
        }
        let pool = self.pool_built();
        let arena = pool.arena();
        let covers: Vec<Vec<NodeId>> = (0..arena.len())
            .filter(|&i| arena.is_live(i))
            .map(|i| arena.graph(i).critical().to_vec())
            .collect();
        let res = greedy_max_cover(&covers, n, self.cfg.k, Some(&eligible));
        Ok((res.selected, res.covered))
    }

    /// `(build_secs, convert_secs, peak_bytes)` of the pool build — the
    /// numbers `exp_perf` records per pipeline.
    pub(crate) fn pool_build_stats(&self) -> (f64, f64, usize) {
        match &self.state {
            PoolState::Unbuilt => (0.0, 0.0, 0),
            PoolState::Adaptive {
                build_secs,
                peak_bytes,
                ..
            } => (*build_secs, 0.0, *peak_bytes),
            PoolState::Maintained {
                maintainer,
                build_secs,
            } => (*build_secs, 0.0, maintainer.build_peak_bytes()),
            PoolState::Legacy {
                build_secs,
                convert_secs,
                peak_bytes,
                ..
            } => (*build_secs, *convert_secs, *peak_bytes),
        }
    }
}
