//! [`Budget`] — the latency contract of a solve.
//!
//! Sampling dominates every pool-backed solve by orders of magnitude, so
//! bounding a solve means bounding its sampling. A `Budget` combines up
//! to three stop conditions — a wall-clock deadline, a sample cap, and a
//! cooperative cancel flag — and is polled at every chunk boundary of the
//! underlying [`SketchPool`](kboost_rrset::SketchPool) via the
//! [`Terminator`] contract. Whatever the budget bought is still a valid
//! pool prefix: selection runs over it, and the solution reports the
//! *achieved* accuracy ([`SolveStats::achieved_epsilon`]) so callers can
//! judge the partial answer instead of trusting the configured ε.
//!
//! An [`unlimited`](Budget::unlimited) budget never stops anything:
//! [`Engine::solve_within`] under it is **bit-identical** to
//! [`Engine::solve`] (`tests/engine_api.rs` asserts it).
//!
//! Deterministic budgets ([`max_samples`](Budget::max_samples) alone)
//! stop after a chunk count that depends only on the sample stream, so
//! the partial pool is bit-identical across thread counts. Deadlines and
//! cancel flags are timing-dependent: the pool still holds a valid
//! contiguous chunk prefix, but *which* prefix varies run to run.
//!
//! [`Engine::solve`]: crate::Engine::solve
//! [`Engine::solve_within`]: crate::Engine::solve_within
//! [`SolveStats::achieved_epsilon`]: crate::SolveStats::achieved_epsilon

use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use kboost_graph::NodeId;
use kboost_rrset::terminator::{CancelFlag, SampleProgress, Terminator};

/// A snapshot of solve progress, delivered to the observer installed via
/// [`Budget::observe`].
///
/// Chunk-boundary ticks carry only the sample count; stage-boundary
/// reports on the fixed-size build path (every
/// `PoolMaintainer`-internal build stage) additionally carry the running
/// estimate, the certificate width, and the **current-best boost set**
/// of a greedy selection over the samples so far — a streaming improving
/// solution: a service can start acting on `best_boost` at any stage
/// tick and refine as sampling proceeds.
#[derive(Clone, Debug)]
pub struct SolveProgress {
    /// Samples drawn so far for the pool being built.
    pub samples: u64,
    /// The build's sample target, when one is known up front (fixed-size
    /// sampling; adaptive runs discover their target as they go).
    pub target: Option<u64>,
    /// Running `Δ̂` of a greedy selection over the samples so far (stage
    /// boundaries only).
    pub delta_hat: Option<f64>,
    /// The accuracy the samples so far already guarantee — the ε that
    /// would make the IMM bound demand exactly this many samples (stage
    /// boundaries only). Shrinks as sampling proceeds.
    pub achieved_epsilon: Option<f64>,
    /// The boost set the stage's greedy selection picked — the best
    /// answer available right now, whose estimate is `delta_hat` (stage
    /// boundaries only; chunk ticks leave it `None`).
    pub best_boost: Option<Vec<NodeId>>,
}

type Observer = Arc<Mutex<dyn FnMut(&SolveProgress) + Send>>;

/// A composable latency budget for [`Engine::solve_within`] and
/// [`Engine::apply_mutations_within`].
///
/// All conditions are optional and compose disjunctively: sampling stops
/// as soon as *any* of them triggers. [`Budget::unlimited`] (also the
/// `Default`) imposes nothing.
///
/// [`Engine::solve_within`]: crate::Engine::solve_within
/// [`Engine::apply_mutations_within`]: crate::Engine::apply_mutations_within
#[derive(Clone, Default)]
pub struct Budget {
    deadline: Option<Duration>,
    max_samples: Option<u64>,
    cancel: Option<CancelFlag>,
    observer: Option<Observer>,
}

impl Budget {
    /// No deadline, no sample cap, no cancel flag: solves run exactly as
    /// [`Engine::solve`](crate::Engine::solve) would.
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Stop sampling once this much wall-clock time has elapsed, counted
    /// from the moment the budgeted call starts.
    pub fn deadline(mut self, after: Duration) -> Self {
        self.deadline = Some(after);
        self
    }

    /// Stop sampling at the first chunk boundary at or past this many
    /// samples (the overshoot is less than one chunk,
    /// [`CHUNK_SIZE`](kboost_rrset::CHUNK_SIZE) samples). Deterministic:
    /// the resulting pool is bit-identical across thread counts.
    pub fn max_samples(mut self, samples: u64) -> Self {
        self.max_samples = Some(samples);
        self
    }

    /// Stop sampling when `flag` is raised (from any thread — the flag is
    /// an `Arc`'d atomic).
    pub fn cancel_flag(mut self, flag: CancelFlag) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// Install a progress observer, called at chunk boundaries with the
    /// samples drawn so far and at build-stage boundaries with the
    /// running `Δ̂` and achieved ε as well. Called from worker threads
    /// (serialized through a mutex); keep it cheap.
    pub fn observe(mut self, f: impl FnMut(&SolveProgress) + Send + 'static) -> Self {
        self.observer = Some(Arc::new(Mutex::new(f)));
        self
    }

    /// Whether this budget can never stop a solve.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.max_samples.is_none() && self.cancel.is_none()
    }

    /// Pins the deadline to a concrete instant — called once when the
    /// budgeted engine call starts, so elapsed time counts from there.
    pub(crate) fn resolve(&self) -> ResolvedBudget {
        ResolvedBudget {
            deadline: self.deadline.map(|d| Instant::now() + d),
            max_samples: self.max_samples,
            cancel: self.cancel.clone(),
            observer: self.observer.clone(),
        }
    }
}

impl fmt::Debug for Budget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Budget")
            .field("deadline", &self.deadline)
            .field("max_samples", &self.max_samples)
            .field(
                "cancelled",
                &self.cancel.as_ref().map(CancelFlag::is_cancelled),
            )
            .field("observed", &self.observer.is_some())
            .finish()
    }
}

/// A [`Budget`] with its deadline pinned to an instant; the engine's
/// internal [`Terminator`] for one budgeted call.
pub(crate) struct ResolvedBudget {
    deadline: Option<Instant>,
    max_samples: Option<u64>,
    cancel: Option<CancelFlag>,
    observer: Option<Observer>,
}

impl ResolvedBudget {
    /// Delivers a rich (stage-boundary) progress report to the observer.
    pub(crate) fn notify(&self, progress: &SolveProgress) {
        if let Some(obs) = &self.observer {
            (obs.lock().expect("progress observer poisoned"))(progress);
        }
    }
}

impl Terminator for ResolvedBudget {
    fn should_stop(&self, progress: &SampleProgress) -> bool {
        self.notify(&SolveProgress {
            samples: progress.samples,
            target: None,
            delta_hat: None,
            achieved_epsilon: None,
            best_boost: None,
        });
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return true;
            }
        }
        if let Some(max) = self.max_samples {
            if progress.samples >= max {
                return true;
            }
        }
        self.cancel.as_ref().is_some_and(CancelFlag::is_cancelled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_stops() {
        let term = Budget::unlimited().resolve();
        assert!(Budget::unlimited().is_unlimited());
        for samples in [0, 1 << 20, u64::MAX / 2] {
            assert!(!term.should_stop(&SampleProgress { samples, chunk: 0 }));
        }
    }

    #[test]
    fn conditions_compose_disjunctively() {
        let flag = CancelFlag::new();
        let term = Budget::unlimited()
            .max_samples(1_000)
            .cancel_flag(flag.clone())
            .resolve();
        let below = SampleProgress {
            samples: 999,
            chunk: 3,
        };
        assert!(!term.should_stop(&below));
        assert!(term.should_stop(&SampleProgress {
            samples: 1_000,
            chunk: 4
        }));
        flag.cancel();
        assert!(term.should_stop(&below), "flag alone must stop");
    }

    #[test]
    fn expired_deadline_stops_immediately() {
        let term = Budget::unlimited().deadline(Duration::ZERO).resolve();
        assert!(term.should_stop(&SampleProgress {
            samples: 0,
            chunk: 0
        }));
    }

    #[test]
    fn observer_sees_every_poll() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let ticks = Arc::new(AtomicU64::new(0));
        let t = ticks.clone();
        let term = Budget::unlimited()
            .observe(move |p| {
                t.fetch_add(p.samples, Ordering::Relaxed);
            })
            .resolve();
        for samples in [10, 20] {
            term.should_stop(&SampleProgress { samples, chunk: 0 });
        }
        assert_eq!(ticks.load(Ordering::Relaxed), 30);
    }
}
