//! [`Solution`] — the uniform result type every algorithm returns.

use kboost_graph::NodeId;

/// The Sandwich Approximation's run certificate (Theorem 2 context).
///
/// PRR-Boost's guarantee is `(1 − 1/e − ε)·µ(B*)/Δ_S(B*)`: the closer
/// `µ̂/Δ̂` sits to 1 on the returned solution, the tighter the sandwich.
/// The certificate records both candidate sets, their `Δ̂` scores, which
/// branch won, and the observed ratio.
#[derive(Clone, Debug)]
pub struct SandwichCertificate {
    /// The lower-bound-greedy candidate `B_µ`.
    pub b_mu: Vec<NodeId>,
    /// The `Δ̂`-greedy candidate `B_Δ`.
    pub b_delta: Vec<NodeId>,
    /// `Δ̂(B_µ)` under the run's pool.
    pub delta_hat_mu: f64,
    /// `Δ̂(B_Δ)` under the run's pool.
    pub delta_hat_delta: f64,
    /// Whether the `Δ̂`-greedy branch was returned (ties go to `B_Δ`).
    pub chose_delta: bool,
    /// `µ̂(best)/Δ̂(best)` — the empirical sandwich-ratio of the returned
    /// set (0 when `Δ̂(best) = 0`).
    pub ratio: f64,
}

/// Build / select diagnostics of one solve.
#[derive(Clone, Copy, Debug, Default)]
pub struct SolveStats {
    /// Total samples drawn for the backing pool (0 for pool-free
    /// baselines).
    pub total_samples: u64,
    /// Stored boostable PRR-graphs (or retained covers for the LB
    /// variant).
    pub boostable: u64,
    /// Sketches/PRR-graphs covered by the returned selection (0 when the
    /// algorithm has no coverage notion).
    pub covered: u64,
    /// Wall-clock seconds the backing pool's build took (sampling
    /// included). This is a property of the pool, not of the solve: a
    /// solve that reuses an already-built pool reports the same build
    /// time again.
    pub build_secs: f64,
    /// Extra seconds converting per-graph payloads into the arena — only
    /// the legacy oracle pipeline pays this copy stage.
    pub convert_secs: f64,
    /// Wall-clock seconds in node selection.
    pub select_secs: f64,
    /// Peak bytes alive during the pool build (arena/payloads plus
    /// covers, before the covers are dropped).
    pub build_peak_bytes: usize,
    /// Bytes retained by the backing pool after the build.
    pub pool_bytes: usize,
    /// Bytes of `pool_bytes` held by per-sample staleness footprints —
    /// the memory cost of an exact
    /// [`Staleness`](crate::Staleness) rule (0 in approximate mode and
    /// for pool-free baselines).
    pub footprint_bytes: usize,
    /// The relative accuracy the backing pool's sample count actually
    /// guarantees: the ε at which the IMM sample bound demands exactly
    /// `total_samples` samples against the solution's own `µ̂` lower
    /// bound. For an uninterrupted IMM run this is at most the configured
    /// ε; for a budget-truncated run it is the honest (larger) figure the
    /// partial answer carries. `None` for pool-free algorithms.
    pub achieved_epsilon: Option<f64>,
    /// Whether the backing pool's sampling was stopped early by a
    /// [`Budget`](crate::Budget) — the solution is then a valid partial
    /// answer whose accuracy is `achieved_epsilon`, not the configured ε.
    pub interrupted: bool,
}

/// What an [`Engine`](crate::Engine) solve returns, uniformly across
/// PRR-Boost, the tree algorithms and every baseline.
#[derive(Clone, Debug)]
pub struct Solution {
    /// Name of the algorithm that produced this solution.
    pub algorithm: String,
    /// The selected boost set `B` (at most `k` non-seed nodes).
    pub boost_set: Vec<NodeId>,
    /// The boost estimate for `boost_set`: `Δ̂` under the engine's PRR
    /// pool, or the *exact* `Δ_S(B)` for the tree algorithms. `None` when
    /// no estimator was available (pool-free baselines before any pool
    /// was built — call
    /// [`Engine::evaluate`](crate::Engine::evaluate) to score them).
    pub delta_hat: Option<f64>,
    /// The lower-bound estimate `µ̂(B)` where a PRR pool was available.
    pub mu_hat: Option<f64>,
    /// The sandwich certificate ([`Algorithm::Sandwich`] runs only).
    ///
    /// [`Algorithm::Sandwich`]: crate::Algorithm::Sandwich
    pub certificate: Option<SandwichCertificate>,
    /// Build/select timing and memory diagnostics.
    pub stats: SolveStats,
}
