//! [`KboostError`] — the workspace-wide error taxonomy.
//!
//! Before the engine existed every layer reported failure its own way:
//! `Result<_, String>` on the CLI paths, panics on config mistakes
//! (`apply_epoch`'s contiguity assert), and per-crate error enums
//! ([`BuildError`], [`TreeError`], [`IoError`]) that no caller could hold
//! in one variable. `KboostError` unifies them: the engine validates
//! configuration into [`Config`](KboostError::Config) errors up front and
//! wraps the substrate errors via `From`, so a service can match on one
//! type end to end.

use std::fmt;

use kboost_graph::io::IoError;
use kboost_graph::BuildError;
use kboost_online::{InterruptCause, MutationError, OnlineError};
use kboost_tree::TreeError;

/// Any error the kboost workspace can produce through the engine API.
#[derive(Clone, Debug, PartialEq)]
pub enum KboostError {
    /// A configuration field failed validation in
    /// [`EngineBuilder::build`](crate::EngineBuilder::build) (or one of the
    /// scenario wrappers).
    Config {
        /// The offending builder field.
        field: &'static str,
        /// Human-readable explanation of the constraint that was violated.
        message: String,
    },
    /// Graph assembly failed (bad endpoint, self-loop, invalid probability
    /// pair, duplicate edge).
    Graph(BuildError),
    /// The graph could not be interpreted as a bidirected tree (required
    /// by [`Algorithm::TreeExact`](crate::Algorithm::TreeExact)).
    Tree(TreeError),
    /// Graph IO failed (edge-list parse or filesystem error). Rendered to
    /// text because `std::io::Error` is neither `Clone` nor `PartialEq`.
    Io(String),
    /// The requested operation is not supported under the engine's
    /// configuration (e.g. online maintenance without fixed-size
    /// sampling, or the legacy oracle pipeline with adaptive sampling).
    Unsupported {
        /// The operation that was attempted.
        operation: &'static str,
        /// Why the configuration rules it out.
        reason: String,
    },
    /// A mutation epoch was applied out of order; epochs must be applied
    /// contiguously or the refresh seed streams would diverge from the
    /// replay oracle's.
    EpochOrder {
        /// The epoch the engine expected next.
        expected: u64,
        /// The epoch that was submitted.
        got: u64,
    },
    /// A mutation batch failed ingress validation (out-of-universe
    /// endpoint, self-loop); nothing was applied.
    Mutation(MutationError),
    /// An epoch's refresh sampling was cancelled by a
    /// [`Budget`](crate::Budget) or panicked; the maintained pool was
    /// rolled back byte-identically to its pre-epoch state and the same
    /// batch can be retried verbatim.
    Interrupted {
        /// The epoch whose refresh was interrupted.
        epoch: u64,
        /// Whether the refresh was cancelled or panicked.
        cause: InterruptCause,
    },
}

impl fmt::Display for KboostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KboostError::Config { field, message } => {
                write!(f, "invalid config `{field}`: {message}")
            }
            KboostError::Graph(e) => write!(f, "graph error: {e}"),
            KboostError::Tree(e) => write!(f, "tree error: {e}"),
            KboostError::Io(e) => write!(f, "io error: {e}"),
            KboostError::Unsupported { operation, reason } => {
                write!(f, "unsupported operation `{operation}`: {reason}")
            }
            KboostError::EpochOrder { expected, got } => write!(
                f,
                "mutation epochs must be applied contiguously: expected epoch {expected}, \
                 got {got}"
            ),
            KboostError::Mutation(e) => write!(f, "invalid mutation batch: {e}"),
            KboostError::Interrupted { epoch, cause } => {
                write!(f, "epoch {epoch} refresh {cause}; pool rolled back")
            }
        }
    }
}

impl std::error::Error for KboostError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KboostError::Graph(e) => Some(e),
            KboostError::Tree(e) => Some(e),
            KboostError::Mutation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BuildError> for KboostError {
    fn from(e: BuildError) -> Self {
        KboostError::Graph(e)
    }
}

impl From<TreeError> for KboostError {
    fn from(e: TreeError) -> Self {
        KboostError::Tree(e)
    }
}

impl From<IoError> for KboostError {
    fn from(e: IoError) -> Self {
        KboostError::Io(e.to_string())
    }
}

impl From<MutationError> for KboostError {
    fn from(e: MutationError) -> Self {
        KboostError::Mutation(e)
    }
}

impl From<OnlineError> for KboostError {
    fn from(e: OnlineError) -> Self {
        match e {
            OnlineError::Mutation(m) => KboostError::Mutation(m),
            OnlineError::Staleness { message } => KboostError::Config {
                field: "staleness",
                message,
            },
            OnlineError::EpochOrder { expected, got } => KboostError::EpochOrder { expected, got },
            OnlineError::Interrupted { epoch, cause } => KboostError::Interrupted { epoch, cause },
        }
    }
}

/// Shorthand constructor for [`KboostError::Config`].
pub(crate) fn config_err(field: &'static str, message: impl Into<String>) -> KboostError {
    KboostError::Config {
        field,
        message: message.into(),
    }
}
