//! [`BoostAlgorithm`] — the uniform interface every solver implements —
//! and [`Algorithm`], the built-in registry.
//!
//! The paper evaluates one problem (pick `k` boost nodes maximizing the
//! boost of influence) across many solvers: PRR-Boost and its light
//! variant, the Sandwich Approximation choosing between them, the exact
//! tree algorithms, and the Section-VII heuristic baselines. Each is one
//! [`Algorithm`] variant here, so scenario sweeps and cross-algorithm
//! benchmarking iterate [`Algorithm::registry`] instead of hand-wiring
//! five call signatures. User solvers plug in by implementing
//! [`BoostAlgorithm`] and passing themselves to
//! [`Engine::solve`](crate::Engine::solve).

use std::time::Instant;

use kboost_baselines::{
    high_degree_global, high_degree_local, more_seeds, pagerank_select, random_boost,
    WeightedDegree,
};
use kboost_graph::NodeId;
use kboost_prr::{greedy_delta_selection, PrrLbSource};
use kboost_rrset::imm::{achieved_epsilon, run_imm_within};
use kboost_tree::{dp_boost, greedy_boost, BidirectedTree};

use crate::budget::Budget;
use crate::engine::Engine;
use crate::error::KboostError;
use crate::solution::{SandwichCertificate, Solution, SolveStats};

/// A boost-set solver runnable through an [`Engine`].
///
/// Implementations receive the engine mutably so they can build or reuse
/// its PRR pool; they must not call [`Engine::solve`] back (that is the
/// dispatcher calling *them*).
pub trait BoostAlgorithm {
    /// Stable human-readable name, recorded in
    /// [`Solution::algorithm`](crate::Solution::algorithm).
    fn name(&self) -> String;

    /// Produces a solution for the engine's `(graph, seeds, k)`.
    fn solve(&self, engine: &mut Engine) -> Result<Solution, KboostError>;
}

/// The built-in algorithm registry: every solver the paper evaluates, as
/// one uniformly-dispatchable value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Algorithm {
    /// Algorithm 2 end to end: the lower-bound greedy `B_µ`, the
    /// `Δ̂`-greedy `B_Δ`, and the Sandwich Approximation keeping whichever
    /// scores higher — with the certificate recorded on the solution.
    Sandwich,
    /// The `Δ̂`-greedy branch alone: greedy selection directly on the PRR
    /// estimate via the inverted coverage index.
    PrrBoost,
    /// PRR-Boost-LB (Section V-C): maximize only the submodular lower
    /// bound `µ̂` — faster sampling, far smaller memory footprint.
    PrrBoostLb,
    /// The exact bidirected-tree algorithms (Section VI): Greedy-Boost
    /// when `dp_epsilon` is `None`, the DP-Boost FPTAS at the given ε
    /// otherwise. Fails with [`KboostError::Tree`] on non-tree graphs.
    TreeExact {
        /// `None` → Greedy-Boost; `Some(ε)` → DP-Boost at that ε.
        dp_epsilon: Option<f64>,
    },
    /// HighDegreeGlobal under the given weighted-degree definition.
    HighDegreeGlobal(WeightedDegree),
    /// HighDegreeLocal (BFS rings around the seeds) under the given
    /// weighted-degree definition.
    HighDegreeLocal(WeightedDegree),
    /// PageRank over the reversed influence transition matrix.
    PageRank,
    /// MoreSeeds: `k` extra seeds via marginal IMM, returned as boosts.
    MoreSeeds,
    /// Uniform random non-seed nodes.
    Random,
}

impl Algorithm {
    /// Every built-in algorithm, one entry per paper solver (the four
    /// weighted-degree definitions of each HighDegree variant included,
    /// since the experiments report the best of the four).
    pub fn registry() -> Vec<Algorithm> {
        use WeightedDegree::*;
        let mut all = vec![
            Algorithm::Sandwich,
            Algorithm::PrrBoost,
            Algorithm::PrrBoostLb,
            Algorithm::TreeExact { dp_epsilon: None },
            Algorithm::TreeExact {
                dp_epsilon: Some(0.5),
            },
        ];
        for d in [OutSum, OutSumDiscounted, InGain, InGainDiscounted] {
            all.push(Algorithm::HighDegreeGlobal(d));
            all.push(Algorithm::HighDegreeLocal(d));
        }
        all.extend([Algorithm::PageRank, Algorithm::MoreSeeds, Algorithm::Random]);
        all
    }
}

impl BoostAlgorithm for Algorithm {
    fn name(&self) -> String {
        match self {
            Algorithm::Sandwich => "sandwich".into(),
            Algorithm::PrrBoost => "prr-boost".into(),
            Algorithm::PrrBoostLb => "prr-boost-lb".into(),
            Algorithm::TreeExact { dp_epsilon: None } => "tree-greedy".into(),
            Algorithm::TreeExact {
                dp_epsilon: Some(eps),
            } => format!("tree-dp(eps={eps})"),
            Algorithm::HighDegreeGlobal(d) => format!("high-degree-global({d:?})"),
            Algorithm::HighDegreeLocal(d) => format!("high-degree-local({d:?})"),
            Algorithm::PageRank => "pagerank".into(),
            Algorithm::MoreSeeds => "more-seeds".into(),
            Algorithm::Random => "random".into(),
        }
    }

    fn solve(&self, engine: &mut Engine) -> Result<Solution, KboostError> {
        match self {
            Algorithm::Sandwich => solve_sandwich(engine),
            Algorithm::PrrBoost => solve_prr_boost(engine),
            Algorithm::PrrBoostLb => solve_prr_boost_lb(engine),
            Algorithm::TreeExact { dp_epsilon } => solve_tree(engine, *dp_epsilon, self.name()),
            Algorithm::HighDegreeGlobal(d) => {
                let t0 = Instant::now();
                let set = high_degree_global(engine.graph(), engine.seeds(), engine.config().k, *d);
                Ok(baseline_solution(engine, self.name(), set, t0))
            }
            Algorithm::HighDegreeLocal(d) => {
                let t0 = Instant::now();
                let set = high_degree_local(engine.graph(), engine.seeds(), engine.config().k, *d);
                Ok(baseline_solution(engine, self.name(), set, t0))
            }
            Algorithm::PageRank => {
                let t0 = Instant::now();
                let set = pagerank_select(engine.graph(), engine.seeds(), engine.config().k);
                Ok(baseline_solution(engine, self.name(), set, t0))
            }
            Algorithm::MoreSeeds => {
                let t0 = Instant::now();
                let params = engine.imm_params();
                let set = more_seeds(engine.graph(), engine.seeds(), &params);
                Ok(baseline_solution(engine, self.name(), set, t0))
            }
            Algorithm::Random => {
                let t0 = Instant::now();
                let set = random_boost(
                    engine.graph(),
                    engine.seeds(),
                    engine.config().k,
                    engine.config().seed,
                );
                Ok(baseline_solution(engine, self.name(), set, t0))
            }
        }
    }
}

/// Shared stats snapshot of the engine's built pool. `mu_lb` is the
/// returned solution's `µ̂` — the OPT lower bound against which the
/// achieved ε inverts the IMM sample bound.
fn pool_stats(engine: &Engine, select_secs: f64, covered: u64, mu_lb: f64) -> SolveStats {
    let pool = engine.pool_built();
    let (build_secs, convert_secs, build_peak_bytes) = engine.pool_build_stats();
    let n = engine.graph().num_nodes();
    let eps = achieved_epsilon(
        n,
        n - engine.seeds().len(),
        engine.config().k,
        engine.imm_params().ell,
        pool.total_samples(),
        mu_lb,
    );
    SolveStats {
        total_samples: pool.total_samples(),
        boostable: pool.num_boostable() as u64,
        covered,
        build_secs,
        convert_secs,
        select_secs,
        build_peak_bytes,
        pool_bytes: pool.memory_bytes(),
        footprint_bytes: pool.arena().footprint_memory_bytes(),
        achieved_epsilon: Some(eps),
        interrupted: engine.build_interrupted(),
    }
}

/// Algorithm 2 lines 2–5: both greedy branches plus the Sandwich choice,
/// with the certificate attached. Under IMM sampling this reproduces the
/// hand-wired `kboost_core::prr_boost` bit for bit.
fn solve_sandwich(engine: &mut Engine) -> Result<Solution, KboostError> {
    engine.ensure_pool()?;
    // Time both greedy branches: for fixed-size pools the µ-selection is
    // a real lazy-greedy pass (adaptive pools return the cached IMM/SSA
    // selection, which costs nothing).
    let t0 = Instant::now();
    let (b_mu, mu_covered) = engine.mu_selection()?;
    let (n, k, threads) = {
        let cfg = engine.config();
        (engine.graph().num_nodes(), cfg.k, cfg.threads)
    };
    let pool = engine.pool_built();
    let delta_sel = greedy_delta_selection(pool.arena(), n, k, threads);
    let est_mu = pool.delta_hat(&b_mu);
    let est_delta = pool.delta_hat(&delta_sel.selected);
    let chose_delta = est_delta >= est_mu;
    let (best, estimate, covered) = if chose_delta {
        (delta_sel.selected.clone(), est_delta, delta_sel.covered)
    } else {
        (b_mu.clone(), est_mu, mu_covered)
    };
    let mu_best = pool.mu_hat(&best);
    let select_secs = t0.elapsed().as_secs_f64();
    let certificate = SandwichCertificate {
        b_mu,
        b_delta: delta_sel.selected,
        delta_hat_mu: est_mu,
        delta_hat_delta: est_delta,
        chose_delta,
        ratio: if estimate > 0.0 {
            mu_best / estimate
        } else {
            0.0
        },
    };
    Ok(Solution {
        algorithm: Algorithm::Sandwich.name(),
        boost_set: best,
        delta_hat: Some(estimate),
        mu_hat: Some(mu_best),
        certificate: Some(certificate),
        stats: pool_stats(engine, select_secs, covered, mu_best),
    })
}

/// The `Δ̂`-greedy branch alone — bit-identical to calling
/// `greedy_delta_selection` on a hand-built pool with the same seed and
/// target sequence.
fn solve_prr_boost(engine: &mut Engine) -> Result<Solution, KboostError> {
    engine.ensure_pool()?;
    let (n, k, threads) = {
        let cfg = engine.config();
        (engine.graph().num_nodes(), cfg.k, cfg.threads)
    };
    let pool = engine.pool_built();
    let t0 = Instant::now();
    let sel = greedy_delta_selection(pool.arena(), n, k, threads);
    let select_secs = t0.elapsed().as_secs_f64();
    let delta = pool.delta_hat(&sel.selected);
    let mu = pool.mu_hat(&sel.selected);
    Ok(Solution {
        algorithm: Algorithm::PrrBoost.name(),
        boost_set: sel.selected,
        delta_hat: Some(delta),
        mu_hat: Some(mu),
        certificate: None,
        stats: pool_stats(engine, select_secs, sel.covered, mu),
    })
}

/// PRR-Boost-LB. Under adaptive sampling this runs its own cover-only
/// pass over `PrrLbSource` honoring the engine's sampling policy — IMM
/// worst-case sizing (exactly `prr_boost_lb`) or SSA early stopping;
/// under fixed-size sampling it reuses the engine's maintained pool and
/// runs the lazy greedy over the live samples' critical sets.
fn solve_prr_boost_lb(engine: &mut Engine) -> Result<Solution, KboostError> {
    use crate::config::Sampling;
    if matches!(engine.config().sampling, Sampling::Fixed { .. }) {
        let t0 = Instant::now();
        let (b_mu, covered) = engine.mu_selection()?;
        let select_secs = t0.elapsed().as_secs_f64();
        let pool = engine.pool_built();
        let delta = pool.delta_hat(&b_mu);
        let mu = pool.mu_hat(&b_mu);
        return Ok(Solution {
            algorithm: Algorithm::PrrBoostLb.name(),
            boost_set: b_mu,
            delta_hat: Some(delta),
            mu_hat: Some(mu),
            certificate: None,
            stats: pool_stats(engine, select_secs, covered, mu),
        });
    }

    let t0 = Instant::now();
    let n = engine.graph().num_nodes();
    // The LB variant samples its own cover-only pool; a surrounding
    // `solve_within` budget applies to it the same way it would to the
    // engine pool.
    let term = engine
        .take_pending()
        .unwrap_or_else(|| Budget::unlimited().resolve());
    let source = PrrLbSource::new(engine.graph(), engine.seeds(), engine.config().k);
    let (result, pool, estimate, interrupted) = match engine.config().sampling {
        Sampling::Imm => {
            let (run, interrupted) = run_imm_within(&source, &engine.imm_params(), &term);
            let estimate =
                n as f64 * run.result.covered as f64 / run.pool.total_samples().max(1) as f64;
            (run.result, run.pool, estimate, interrupted)
        }
        Sampling::Ssa { initial } => {
            let cfg = engine.config();
            let params = kboost_rrset::ssa::SsaParams {
                k: cfg.k,
                epsilon: cfg.epsilon,
                initial,
                max_sketches: cfg.max_sketches.unwrap_or(u64::MAX / 2),
                threads: cfg.threads,
                seed: cfg.seed,
            };
            let (run, interrupted) = kboost_rrset::ssa::run_ssa_within(&source, &params, &term);
            // The validation pool never influenced selection, so its
            // estimate of µ̂ is the unbiased one to report.
            (run.result, run.pool, run.validated_estimate, interrupted)
        }
        Sampling::Fixed { .. } => unreachable!("handled above"),
    };
    let build_secs = t0.elapsed().as_secs_f64();
    let cover_bytes = pool.cover_memory_bytes();
    let eps = achieved_epsilon(
        n,
        n - engine.seeds().len(),
        engine.config().k,
        engine.imm_params().ell,
        pool.total_samples(),
        estimate,
    );
    Ok(Solution {
        algorithm: Algorithm::PrrBoostLb.name(),
        boost_set: result.selected,
        delta_hat: None,
        mu_hat: Some(estimate),
        certificate: None,
        stats: SolveStats {
            total_samples: pool.total_samples(),
            boostable: pool.covers().len() as u64,
            covered: result.covered,
            build_secs,
            convert_secs: 0.0,
            select_secs: 0.0,
            build_peak_bytes: cover_bytes,
            pool_bytes: cover_bytes,
            footprint_bytes: 0,
            achieved_epsilon: Some(eps),
            interrupted,
        },
    })
}

/// Greedy-Boost / DP-Boost on bidirected trees — exact evaluation, no
/// sampling. The boost value returned is the *exact* `Δ_S(B)`.
fn solve_tree(
    engine: &mut Engine,
    dp_epsilon: Option<f64>,
    name: String,
) -> Result<Solution, KboostError> {
    if let Some(eps) = dp_epsilon {
        if !(eps > 0.0 && eps <= 1.0) {
            return Err(crate::error::config_err(
                "dp_epsilon",
                format!("DP-Boost ε must lie in (0, 1], got {eps}"),
            ));
        }
    }
    let tree = BidirectedTree::from_digraph(engine.graph(), engine.seeds())?;
    let k = engine.config().k;
    let t0 = Instant::now();
    let (boost_set, boost) = match dp_epsilon {
        None => {
            let out = greedy_boost(&tree, k);
            (out.boost_set, out.boost)
        }
        Some(eps) => {
            let out = dp_boost(&tree, k, eps);
            (out.boost_set, out.boost)
        }
    };
    let select_secs = t0.elapsed().as_secs_f64();
    Ok(Solution {
        algorithm: name,
        boost_set,
        delta_hat: Some(boost),
        mu_hat: None,
        certificate: None,
        stats: SolveStats {
            select_secs,
            ..SolveStats::default()
        },
    })
}

/// Wraps a pool-free baseline's selection. `Δ̂`/`µ̂` are filled only if the
/// engine already holds a pool (building one just to score a heuristic
/// would surprise callers with minutes of sampling) — use
/// [`Engine::evaluate`](crate::Engine::evaluate) to score explicitly.
fn baseline_solution(
    engine: &Engine,
    name: String,
    boost_set: Vec<NodeId>,
    t0: Instant,
) -> Solution {
    let select_secs = t0.elapsed().as_secs_f64();
    let (delta_hat, mu_hat) = match engine.pool_if_built() {
        Some(pool) => (
            Some(pool.delta_hat(&boost_set)),
            Some(pool.mu_hat(&boost_set)),
        ),
        None => (None, None),
    };
    Solution {
        algorithm: name,
        boost_set,
        delta_hat,
        mu_hat,
        certificate: None,
        stats: SolveStats {
            select_secs,
            ..SolveStats::default()
        },
    }
}
