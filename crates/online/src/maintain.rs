//! The pool maintainer: epoch-by-epoch incremental refresh.
//!
//! # Lifecycle of one epoch
//!
//! 1. the mutated graph is rebuilt ([`apply_mutations`]);
//! 2. the batch's touched endpoints are matched against every live
//!    graph's node table through an **incrementally maintained**
//!    node → graphs invalidation index (CSR [`NodeIndex`] base plus an
//!    appended tail; see [`PoolMaintainer::stale_graphs`]), yielding the
//!    stale set in ascending graph order;
//! 3. stale graphs are [tombstoned](PrrArena::tombstone) — each stored
//!    graph is one sample of the estimator's denominator, so the pool's
//!    total is debited accordingly;
//! 4. if tombstones now exceed
//!    [`compact_threshold`](MaintainerOptions::compact_threshold), the
//!    arena is compacted (order-preserving, canonicalizing);
//! 5. exactly `|stale|` fresh samples are drawn over the new graph from a
//!    chunk-seeded pool of stream `(base_seed, epoch)` and absorbed in
//!    chunk order.
//!
//! Every step is a pure function of `(initial graph, base_seed, options,
//! mutation history)` — never of the thread count — so maintained pools
//! are bit-identical across thread counts, and
//! [`rebuild_from_history`] (the naive replay oracle: legacy per-graph
//! payloads, a full node-table scan instead of the index, eager filtering
//! instead of tombstones) reproduces the compacted arena byte for byte.

use kboost_core::PrrPool;
use kboost_graph::{DiGraph, NodeId};
use kboost_prr::{
    greedy_delta_selection, DeltaSelection, LegacyPrrSource, NodeIndex, PrrArena, PrrArenaShard,
    PrrFullSource,
};
use kboost_rrset::sketch::SketchPool;

use crate::mutation::{apply_mutations, EpochBatch, Mutation};

/// Tuning knobs of a maintained pool.
#[derive(Clone, Copy, Debug)]
pub struct MaintainerOptions {
    /// Pool size: total samples maintained at every epoch.
    pub target_samples: u64,
    /// Boost budget `k` the PRR-graphs are pruned at.
    pub k: usize,
    /// Worker threads for sampling and selection.
    pub threads: usize,
    /// Base seed of the epoch-extended determinism contract.
    pub base_seed: u64,
    /// Compact the arena when the tombstoned fraction of stored graphs
    /// exceeds this threshold (`0.0` compacts every epoch that tombstones
    /// anything; `1.0` never compacts). Compaction only reclaims memory —
    /// live content and estimates are unaffected.
    pub compact_threshold: f64,
}

impl Default for MaintainerOptions {
    fn default() -> Self {
        MaintainerOptions {
            target_samples: 100_000,
            k: 10,
            threads: 8,
            base_seed: 0x0B00_57ED,
            compact_threshold: 0.25,
        }
    }
}

/// What one [`PoolMaintainer::apply_epoch`] call did. Timing is the
/// caller's business (`exp_online` wraps the call); every field here is a
/// deterministic function of the mutation history, which the cross-thread
/// property tests compare with `==`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EpochReport {
    /// The epoch this report describes.
    pub epoch: u64,
    /// Stale stored graphs tombstoned (== samples debited and redrawn).
    pub invalidated: u64,
    /// Redrawn samples that stored a replacement graph.
    pub drawn_stored: u64,
    /// Redrawn samples that came up empty (activated / hopeless).
    pub drawn_empty: u64,
    /// Whether the arena was compacted this epoch.
    pub compacted: bool,
    /// Live stored graphs after the refresh.
    pub live_graphs: u64,
    /// Tombstoned graphs still occupying arena bytes after the refresh.
    pub dead_graphs: u64,
}

/// The node → graphs invalidation index, maintained incrementally across
/// epochs instead of rebuilt from scratch per refresh.
///
/// * `base` is a CSR [`NodeIndex`] over the arena as of the last full
///   (re)build; it may reference graphs that were tombstoned since, so
///   queries filter on [`PrrArena::is_live`].
/// * `extra` holds the `(node, graph)` pairs of samples absorbed after
///   the base was built — refreshes *append* here in graph order rather
///   than paying the linear-in-arena rebuild. When the tail outgrows the
///   base ([`append_absorbed`](Self::append_absorbed)) it is folded back
///   in by a rebuild, so a never-compacting maintainer (threshold 1.0)
///   still holds at most ~2× the live entries and dry-run scans stay
///   bounded.
/// * Compaction renumbers graphs, so it is the one event that
///   invalidates the whole index (the maintainer drops it and rebuilds
///   lazily on next use).
struct InvalidationIndex {
    base: NodeIndex,
    extra: Vec<(u32, u32)>,
}

impl InvalidationIndex {
    /// Full build over the live graphs of `arena` (node universe `n`).
    fn rebuild(arena: &PrrArena, n: usize) -> Self {
        let base = NodeIndex::build(n, |emit| {
            for gi in 0..arena.len() {
                if !arena.is_live(gi) {
                    continue;
                }
                let view = arena.graph(gi);
                for l in 0..view.num_nodes() as u32 {
                    if let Some(g) = view.global_of(l) {
                        emit(g, gi as u32);
                    }
                }
            }
        });
        InvalidationIndex {
            base,
            extra: Vec::new(),
        }
    }

    /// Appends the node-table entries of the freshly absorbed graphs
    /// `range` (arena indices) to the incremental tail, folding the tail
    /// back into the CSR base once it outgrows it (keeps the index — and
    /// every dry-run scan over `extra` — bounded even if compaction
    /// never fires).
    fn append_absorbed(&mut self, arena: &PrrArena, range: std::ops::Range<usize>, n: usize) {
        for gi in range {
            let view = arena.graph(gi);
            for l in 0..view.num_nodes() as u32 {
                if let Some(g) = view.global_of(l) {
                    self.extra.push((g.0, gi as u32));
                }
            }
        }
        if self.extra.len() > self.base.len().max(1024) {
            *self = InvalidationIndex::rebuild(arena, n);
        }
    }

    /// The live graphs whose node table holds a touched node, in
    /// ascending graph order — dead graphs are filtered here, at query
    /// time, which is what lets tombstoning skip index surgery.
    fn stale(&self, touched: &[bool], arena: &PrrArena) -> Vec<u32> {
        let mut is_stale = vec![false; arena.len()];
        let mut stale: Vec<u32> = Vec::new();
        for (v, &hit) in touched.iter().enumerate() {
            if !hit {
                continue;
            }
            for &gi in self.base.items_of(NodeId(v as u32)) {
                if arena.is_live(gi as usize) && !is_stale[gi as usize] {
                    is_stale[gi as usize] = true;
                    stale.push(gi);
                }
            }
        }
        for &(v, gi) in &self.extra {
            if touched[v as usize] && arena.is_live(gi as usize) && !is_stale[gi as usize] {
                is_stale[gi as usize] = true;
                stale.push(gi);
            }
        }
        stale.sort_unstable();
        stale
    }
}

/// A PRR pool kept consistent with an evolving graph.
pub struct PoolMaintainer {
    graph: DiGraph,
    seeds: Vec<NodeId>,
    opts: MaintainerOptions,
    pool: PrrPool,
    epoch: u64,
    /// Built lazily on the first staleness query, so purely offline
    /// consumers of the fixed-size pool (perf sweeps, one-shot solves)
    /// never pay for or retain it. `None` also encodes "invalidated by
    /// compaction".
    index: Option<InvalidationIndex>,
    build_peak_bytes: usize,
}

impl PoolMaintainer {
    /// Builds the epoch-0 pool: `target_samples` drawn over `graph`
    /// through the streaming shard pipeline, bit-identical to an offline
    /// [`SketchPool`] build with the same base seed.
    pub fn build(graph: DiGraph, seeds: Vec<NodeId>, opts: MaintainerOptions) -> Self {
        let mut sketches: SketchPool<PrrArenaShard> =
            SketchPool::with_epoch(opts.base_seed, 0, opts.threads);
        sketches.extend_to(
            &PrrFullSource::new(&graph, &seeds, opts.k),
            opts.target_samples,
        );
        let build_peak_bytes = sketches.shard().memory_bytes() + sketches.cover_memory_bytes();
        let pool = PrrPool::new(sketches, graph.num_nodes(), opts.threads);
        PoolMaintainer {
            graph,
            seeds,
            opts,
            pool,
            epoch: 0,
            index: None,
            build_peak_bytes,
        }
    }

    /// Peak bytes alive during the epoch-0 pool build: the merged
    /// sampling shard plus the covers, both held until the covers are
    /// dropped on conversion into the pool.
    pub fn build_peak_bytes(&self) -> usize {
        self.build_peak_bytes
    }

    /// The maintained pool (estimators skip tombstoned graphs).
    pub fn pool(&self) -> &PrrPool {
        &self.pool
    }

    /// The current (post-mutation) graph.
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// The seed set the pool is conditioned on.
    pub fn seeds(&self) -> &[NodeId] {
        &self.seeds
    }

    /// The current epoch (0 until the first batch is applied).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The maintainer's options.
    pub fn options(&self) -> &MaintainerOptions {
        &self.opts
    }

    /// Greedy `Δ̂` selection over the live pool.
    pub fn select(&self, k: usize) -> DeltaSelection {
        greedy_delta_selection(
            self.pool.arena(),
            self.graph.num_nodes(),
            k,
            self.opts.threads,
        )
    }

    /// Live stored graphs whose node table contains an endpoint of any of
    /// `mutations`, in ascending graph order — the staleness rule, also
    /// usable as a dry run to size a batch before sealing it.
    ///
    /// Answered from the **incrementally maintained** node → graphs
    /// [`NodeIndex`], built lazily on first use: refreshes append the
    /// absorbed samples' entries (folding the tail into the CSR base
    /// when it outgrows it), tombstoned graphs are filtered at query
    /// time, and compaction invalidates the cache wholesale. A dry run
    /// therefore costs `O(n + index-hit scan + appended tail)` in
    /// scratch flags and lookups — no node-table traversal of the arena,
    /// which the pre-index implementation paid on every call.
    ///
    /// # Panics
    /// Panics if a mutation endpoint is outside the graph's node
    /// universe (the engine API validates this up front and returns a
    /// typed error instead).
    pub fn stale_graphs(&mut self, mutations: &[Mutation]) -> Vec<u32> {
        let n = self.graph.num_nodes();
        let mut touched = vec![false; n];
        let mut any = false;
        for m in mutations {
            let (u, v) = m.endpoints();
            touched[u.index()] = true;
            touched[v.index()] = true;
            any = true;
        }
        if !any {
            return Vec::new();
        }
        let index = self
            .index
            .get_or_insert_with(|| InvalidationIndex::rebuild(self.pool.arena(), n));
        index.stale(&touched, self.pool.arena())
    }

    /// Applies one sealed epoch: mutates the graph, tombstones the stale
    /// graphs, compacts past the threshold, and resamples exactly the
    /// invalidated share under the `(base_seed, epoch, chunk)` seeds.
    ///
    /// # Panics
    /// Panics if `batch.epoch` is not `self.epoch() + 1` — epochs apply
    /// contiguously or the seed streams would diverge from the oracle's.
    pub fn apply_epoch(&mut self, batch: &EpochBatch) -> EpochReport {
        assert_eq!(
            batch.epoch,
            self.epoch + 1,
            "epochs must be applied contiguously"
        );
        self.graph = apply_mutations(&self.graph, &batch.mutations);
        let stale = self.stale_graphs(&batch.mutations);
        self.epoch = batch.epoch;

        let arena = self.pool.arena_mut();
        for &gi in &stale {
            // Tombstoning needs no index surgery: queries filter dead
            // graphs on the fly.
            arena.tombstone(gi as usize);
        }
        let compacted = arena.dead_fraction() > self.opts.compact_threshold;
        if compacted {
            arena.compact();
            // Compaction renumbers the surviving graphs — the one event
            // that invalidates the cached index wholesale. Dropped here,
            // rebuilt lazily by the next staleness query.
            self.index = None;
        }

        let invalidated = stale.len() as u64;
        let (drawn_stored, drawn_empty) = if invalidated > 0 {
            let mut refresh: SketchPool<PrrArenaShard> =
                SketchPool::with_epoch(self.opts.base_seed, self.epoch, self.opts.threads);
            refresh.extend_to(
                &PrrFullSource::new(&self.graph, &self.seeds, self.opts.k),
                invalidated,
            );
            let (_covers, shard, drawn, empties) = refresh.into_parts();
            debug_assert_eq!(drawn, invalidated);
            let absorbed_from = self.pool.arena().len();
            self.pool.arena_mut().absorb_shard(shard);
            let absorbed_to = self.pool.arena().len();
            if let Some(index) = &mut self.index {
                index.append_absorbed(
                    self.pool.arena(),
                    absorbed_from..absorbed_to,
                    self.graph.num_nodes(),
                );
            }
            self.pool.record_refresh(invalidated, drawn, empties);
            (drawn - empties, empties)
        } else {
            (0, 0)
        };

        EpochReport {
            epoch: self.epoch,
            invalidated,
            drawn_stored,
            drawn_empty,
            compacted,
            live_graphs: self.pool.arena().num_live() as u64,
            dead_graphs: self.pool.arena().num_dead() as u64,
        }
    }
}

/// The equivalence oracle: replays the same mutation history from scratch
/// through the **legacy** pipeline — per-graph [`CompressedPrr`] payloads
/// (`LegacyPrrSource` draws the exact randomness of the shard source), a
/// naive full node-table scan for staleness, eager filtering instead of
/// tombstones, and a final [`PrrArena::from_graphs`] copy build. Returns
/// the epoch-`history.len()` graph and pool.
///
/// The maintained pool's compacted arena must be byte-equal to this
/// pool's arena, and all estimates and selections must agree — the
/// property `tests/online_pool.rs` asserts.
///
/// [`CompressedPrr`]: kboost_prr::CompressedPrr
pub fn rebuild_from_history(
    graph0: &DiGraph,
    seeds: &[NodeId],
    opts: &MaintainerOptions,
    history: &[EpochBatch],
) -> (DiGraph, PrrPool) {
    let n = graph0.num_nodes();
    let mut g = graph0.clone();

    let mut pool: SketchPool<Vec<kboost_prr::CompressedPrr>> =
        SketchPool::with_epoch(opts.base_seed, 0, opts.threads);
    pool.extend_to(
        &LegacyPrrSource::new(&g, seeds, opts.k),
        opts.target_samples,
    );
    let (_covers, mut payloads, mut total, mut empties) = pool.into_parts();

    for batch in history {
        g = apply_mutations(&g, &batch.mutations);
        let mut touched = vec![false; n];
        for m in &batch.mutations {
            let (u, v) = m.endpoints();
            touched[u.index()] = true;
            touched[v.index()] = true;
        }
        // Naive staleness: scan every retained graph's whole node table.
        let before = payloads.len();
        payloads.retain(|c| {
            let view = c.view();
            !(0..view.num_nodes() as u32)
                .any(|l| view.global_of(l).is_some_and(|gid| touched[gid.index()]))
        });
        let invalidated = (before - payloads.len()) as u64;
        total -= invalidated;

        if invalidated > 0 {
            let mut refresh: SketchPool<Vec<kboost_prr::CompressedPrr>> =
                SketchPool::with_epoch(opts.base_seed, batch.epoch, opts.threads);
            refresh.extend_to(&LegacyPrrSource::new(&g, seeds, opts.k), invalidated);
            let (_c, extra, drawn, e) = refresh.into_parts();
            payloads.extend(extra);
            total += drawn;
            empties += e;
        }
    }

    let arena = PrrArena::from_graphs(payloads);
    (
        g,
        PrrPool::from_raw_parts(arena, n, total, empties, opts.threads),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mutation::MutationLog;
    use kboost_graph::{EdgeProbs, GraphBuilder};

    fn quick_opts(target: u64, threads: usize) -> MaintainerOptions {
        MaintainerOptions {
            target_samples: target,
            k: 2,
            threads,
            base_seed: 0xCAFE,
            compact_threshold: 0.25,
        }
    }

    /// Seed 0 fans out to two disjoint boost-only 2-hop paths:
    /// 0 →(boost) mid →(live) end, mids {1, 2}, ends {3, 4}.
    fn two_paths() -> DiGraph {
        let mut b = GraphBuilder::new(5);
        b.add_edge(NodeId(0), NodeId(1), 0.0, 1.0).unwrap();
        b.add_edge(NodeId(1), NodeId(3), 1.0, 1.0).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 0.0, 1.0).unwrap();
        b.add_edge(NodeId(2), NodeId(4), 1.0, 1.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builds_epoch_zero_like_an_offline_pool() {
        let opts = quick_opts(2_000, 2);
        let m = PoolMaintainer::build(two_paths(), vec![NodeId(0)], opts);
        assert_eq!(m.epoch(), 0);
        assert_eq!(m.pool().total_samples(), 2_000);
        assert!(m.pool().num_boostable() > 0);

        // Offline pool with the same seed: identical arena.
        let g = two_paths();
        let mut sketches: SketchPool<PrrArenaShard> = SketchPool::new(opts.base_seed, 2);
        sketches.extend_to(&PrrFullSource::new(&g, &[NodeId(0)], opts.k), 2_000);
        let offline = PrrPool::new(sketches, g.num_nodes(), 2);
        assert!(m.pool().arena() == offline.arena());
    }

    #[test]
    fn staleness_rule_matches_node_tables_exactly() {
        // The dry run must mark a graph stale iff its node table holds a
        // touched endpoint — checked in both directions over every stored
        // graph.
        let mut m = PoolMaintainer::build(two_paths(), vec![NodeId(0)], quick_opts(1_000, 1));
        // Every stored graph contains its root; roots are uniform over
        // non-seed nodes, so node 1 appears in some table.
        let stale = m.stale_graphs(&[Mutation::Remove {
            from: NodeId(0),
            to: NodeId(1),
        }]);
        assert!(!stale.is_empty());
        for &gi in &stale {
            let view = m.pool().arena().graph(gi as usize);
            let hit = (0..view.num_nodes() as u32).any(|l| {
                view.global_of(l) == Some(NodeId(0)) || view.global_of(l) == Some(NodeId(1))
            });
            assert!(hit, "graph {gi} marked stale without a touched node");
        }
        // And graphs that contain neither endpoint are never marked.
        let all: std::collections::HashSet<u32> = stale.iter().copied().collect();
        for gi in 0..m.pool().arena().len() as u32 {
            if all.contains(&gi) {
                continue;
            }
            let view = m.pool().arena().graph(gi as usize);
            let hit = (0..view.num_nodes() as u32).any(|l| {
                view.global_of(l) == Some(NodeId(0)) || view.global_of(l) == Some(NodeId(1))
            });
            assert!(!hit, "graph {gi} touched but not marked stale");
        }
        assert!(m.stale_graphs(&[]).is_empty());
    }

    #[test]
    fn apply_epoch_refreshes_and_keeps_totals() {
        let mut m = PoolMaintainer::build(two_paths(), vec![NodeId(0)], quick_opts(2_000, 2));
        let mut log = MutationLog::new();
        // Cut path 1 → 3: root-3 graphs become hopeless in the new world.
        log.remove_edge(NodeId(1), NodeId(3));
        let report = m.apply_epoch(&log.seal_epoch());
        assert_eq!(report.epoch, 1);
        assert_eq!(m.epoch(), 1);
        assert!(report.invalidated > 0);
        assert_eq!(report.invalidated, report.drawn_stored + report.drawn_empty);
        assert_eq!(m.pool().total_samples(), 2_000);
        assert_eq!(report.live_graphs, m.pool().arena().num_live() as u64);
        // Boosting node 1 no longer activates root 3: Δ̂ must not count
        // any refreshed graph rooted at 3 for {1} alone... node 3 is now
        // unreachable, so µ̂/Δ̂ only pay out through path 2 → 4.
        assert!(m.pool().delta_hat(&[NodeId(2)]) > 0.0);
    }

    #[test]
    #[should_panic(expected = "contiguously")]
    fn skipping_an_epoch_panics() {
        let mut m = PoolMaintainer::build(two_paths(), vec![NodeId(0)], quick_opts(500, 1));
        let mut log = MutationLog::new();
        let _skipped = log.seal_epoch();
        log.remove_edge(NodeId(1), NodeId(3));
        let batch2 = log.seal_epoch();
        m.apply_epoch(&batch2);
    }

    #[test]
    fn compact_threshold_zero_compacts_every_refresh() {
        let probs = EdgeProbs::new(0.0, 0.9).unwrap();
        let run = |threshold: f64| {
            let mut opts = quick_opts(1_500, 2);
            opts.compact_threshold = threshold;
            let mut m = PoolMaintainer::build(two_paths(), vec![NodeId(0)], opts);
            let mut log = MutationLog::new();
            for i in 0..3u64 {
                log.set_probs(NodeId(0), NodeId(1 + (i % 2) as u32), probs);
                let report = m.apply_epoch(&log.seal_epoch());
                if threshold == 0.0 && report.invalidated > 0 {
                    assert!(report.compacted);
                    assert_eq!(report.dead_graphs, 0);
                }
            }
            m
        };
        let eager = run(0.0);
        let lazy = run(1.0);
        assert_eq!(eager.pool().arena().num_dead(), 0);
        // Identical live content regardless of compaction policy.
        assert!(eager.pool().arena().compacted() == lazy.pool().arena().compacted());
        assert_eq!(eager.pool().total_samples(), lazy.pool().total_samples());
        assert_eq!(
            eager.pool().delta_hat(&[NodeId(1), NodeId(2)]),
            lazy.pool().delta_hat(&[NodeId(1), NodeId(2)])
        );
    }

    #[test]
    fn matches_replay_oracle_on_a_small_history() {
        let opts = quick_opts(1_200, 3);
        let g0 = two_paths();
        let mut m = PoolMaintainer::build(g0.clone(), vec![NodeId(0)], opts);
        let mut log = MutationLog::new();
        log.set_probs(NodeId(0), NodeId(1), EdgeProbs::new(0.2, 0.8).unwrap());
        let b1 = log.seal_epoch();
        log.remove_edge(NodeId(2), NodeId(4));
        log.insert_edge(NodeId(4), NodeId(2), EdgeProbs::new(0.3, 0.6).unwrap());
        let b2 = log.seal_epoch();
        m.apply_epoch(&b1);
        m.apply_epoch(&b2);

        let (g_oracle, oracle) = rebuild_from_history(&g0, &[NodeId(0)], &opts, &[b1, b2]);
        assert_eq!(g_oracle.num_edges(), m.graph().num_edges());
        assert_eq!(oracle.total_samples(), m.pool().total_samples());
        assert_eq!(oracle.empty_samples(), m.pool().empty_samples());
        assert!(m.pool().arena().compacted() == *oracle.arena());
        for set in [vec![NodeId(1)], vec![NodeId(2)], vec![NodeId(1), NodeId(2)]] {
            assert_eq!(m.pool().delta_hat(&set), oracle.delta_hat(&set));
            assert_eq!(m.pool().mu_hat(&set), oracle.mu_hat(&set));
        }
        assert_eq!(
            m.select(2),
            greedy_delta_selection(oracle.arena(), 5, 2, opts.threads)
        );
    }
}
