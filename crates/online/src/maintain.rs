//! The pool maintainer: epoch-by-epoch incremental refresh.
//!
//! # Lifecycle of one epoch
//!
//! 1. the mutated graph is rebuilt ([`apply_mutations`]);
//! 2. the batch is matched against every live sample under the
//!    configured [`Staleness`] rule — approximate mode matches mutation
//!    endpoints against stored node tables through an **incrementally
//!    maintained** node → graphs invalidation index (CSR [`NodeIndex`]
//!    base plus an appended tail; see [`PoolMaintainer::stale_graphs`]);
//!    exact mode matches mutated edge *heads* against the per-sample
//!    footprints retained at sampling time, stored graphs and empty
//!    samples alike;
//! 3. stale entries are [tombstoned](PrrArena::tombstone) (stored graphs)
//!    or [tombstoned in the empty column](PrrArena::tombstone_empty) —
//!    each is one sample of the estimator's denominator, so the pool's
//!    total is debited accordingly;
//! 4. if tombstones now exceed
//!    [`compact_threshold`](MaintainerOptions::compact_threshold), the
//!    arena is compacted (order-preserving, canonicalizing);
//! 5. exactly `|stale|` replacement samples are produced over the new
//!    graph and absorbed: unconditioned fresh draws from a chunk-seeded
//!    pool of stream `(base_seed, epoch)` under most rules, or — under
//!    [`Staleness::ExactTrace`] — a *conditional replay* of each stale
//!    sample's retained coin trace that redraws only the coins the batch
//!    actually mutated (per-sample streams seeded from
//!    `(base_seed, epoch, ordinal)`), keeping the pool
//!    distribution-fresh under partial churn.
//!
//! Every step is a pure function of `(initial graph, base_seed, options,
//! mutation history)` — never of the thread count — so maintained pools
//! are bit-identical across thread counts, and
//! [`rebuild_from_history`] (the naive replay oracle: legacy per-graph
//! payloads, full per-sample scans instead of the index, eager filtering
//! instead of tombstones) reproduces the compacted arena byte for byte —
//! in every staleness mode.

use std::collections::HashSet;

use kboost_core::PrrPool;
use kboost_graph::{DiGraph, NodeId};
use kboost_obs::{Obs, Value};
use kboost_prr::{
    greedy_delta_selection, DeltaSelection, FootprintColumn, FootprintMode, FootprintQuery,
    LegacyFpSource, LegacyPrrSource, LegacySample, LegacyTraceSample, LegacyTraceSource, NodeIndex,
    PrrArena, PrrArenaShard, PrrFullSource, PrrGenerator, PrrOutcome,
};
use kboost_rrset::sketch::{epoch_stream_seed, ExtendStatus, SketchPool, CHUNK_SIZE};
use kboost_rrset::terminator::{SampleProgress, Terminator, Unlimited};
use kboost_serve::{PoolSnapshot, SnapshotService};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::error::{InterruptCause, OnlineError};
use crate::mutation::{apply_mutations, validate_mutations, EpochBatch, Mutation};

/// How the maintainer decides which retained samples a mutation batch
/// invalidates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Staleness {
    /// Match mutation endpoints against stored node tables — the original
    /// rule. Zero memory overhead, but **under-detects**: samples whose
    /// phase-I exploration touched a mutated edge without keeping either
    /// endpoint past compression, and empty (activated / hopeless)
    /// samples, are never refreshed, so the estimator drifts from a fresh
    /// pool's distribution as mutations accumulate.
    #[default]
    Approximate,
    /// Match mutated edge *heads* against the exact per-sample edge-space
    /// footprint (sorted expanded-node list) retained at sampling time
    /// for **every** sample, empty ones included. Detection is exact —
    /// a sample is refreshed iff its generation queried a mutated edge's
    /// slot, so every retained sample is bitwise what resampling it over
    /// the new graph would produce, and the maintained pool equals the
    /// from-scratch exact replay byte for byte (zero recorded drift).
    /// The cost is the footprint columns' memory. One statistical caveat
    /// remains under the unconditioned-redraw refresh this rule (and
    /// every non-trace rule) uses: invalidated slots are redrawn
    /// *unconditioned*, while the slots selected for invalidation are
    /// conditionally different from average (their traces explored the
    /// mutated region), so the pool is not identical in distribution to
    /// an independent fresh pool — [`ExactTrace`](Staleness::ExactTrace)
    /// closes that gap; `tests/estimator_accuracy.rs` pins both the
    /// zero-drift guarantee and the residual gap.
    Exact,
    /// [`Exact`](Staleness::Exact) with footprints compressed into
    /// fixed-size bloom fingerprints of `bits` bits per sample (power of
    /// two ≥ 64): constant memory per sample; false positives refresh a
    /// few extra samples (harmless) but nothing is ever missed.
    ExactBloom {
        /// Bits per fingerprint; must be a power of two ≥ 64.
        bits: u32,
    },
    /// [`Exact`](Staleness::Exact) with footprints stored as delta-varint
    /// compressed blobs behind an interning dictionary
    /// ([`FootprintMode::Compressed`]): detection is still exact and
    /// still index-driven (the blobs decode), at a fraction of the
    /// sorted tier's memory — never more bytes than sorted, by
    /// construction.
    ExactCompressed,
    /// The production memory tier: footprints at most `bloom_above`
    /// nodes long are stored exactly (compressed), longer ones collapse
    /// to a fixed [`HYBRID_BLOOM_BITS`](kboost_prr::HYBRID_BLOOM_BITS)-bit
    /// bloom fingerprint. Detection never misses; the rare long-footprint
    /// false positive refreshes a few extra samples. Fingerprints are
    /// one-way, so this tier scans instead of indexing — like
    /// [`ExactBloom`](Staleness::ExactBloom), with exact verdicts for
    /// the (dominant) short footprints.
    ExactHybrid {
        /// Footprints longer than this many nodes use the bloom
        /// fingerprint; must be ≥ 1.
        bloom_above: u32,
    },
    /// [`Exact`](Staleness::Exact) detection plus *conditional refresh*:
    /// every sample retains its queried-edge coin trace
    /// ([`FootprintMode::Trace`]), and an invalidated sample is not
    /// redrawn from scratch but *replayed* — coins on edges the batch
    /// left untouched are reused, only mutated coins (and coins on
    /// newly reachable edges) are drawn fresh, from a per-sample stream
    /// seeded by `(base_seed, epoch, ordinal)`. Jointly with the
    /// untouched survivors this makes the maintained pool
    /// **distribution-fresh** under partial churn — identical in law to
    /// a from-scratch pool over the new graph — closing the
    /// unconditioned-redraw caveat the other exact tiers document. The
    /// cost is the trace sidecar's memory and a scalar (non-kernel)
    /// sampling path.
    ExactTrace,
}

impl Staleness {
    /// The footprint retention the sampling pipeline needs for this rule.
    pub fn footprint_mode(self) -> FootprintMode {
        match self {
            Staleness::Approximate => FootprintMode::Off,
            Staleness::Exact => FootprintMode::Sorted,
            Staleness::ExactBloom { bits } => FootprintMode::Bloom { bits },
            Staleness::ExactCompressed => FootprintMode::Compressed,
            Staleness::ExactHybrid { bloom_above } => FootprintMode::Hybrid { bloom_above },
            Staleness::ExactTrace => FootprintMode::Trace,
        }
    }

    /// Whether this rule detects stale samples exactly (never
    /// under-detects).
    pub fn is_exact(self) -> bool {
        self != Staleness::Approximate
    }
}

/// Tuning knobs of a maintained pool.
#[derive(Clone, Copy, Debug)]
pub struct MaintainerOptions {
    /// Pool size: total samples maintained at every epoch.
    pub target_samples: u64,
    /// Boost budget `k` the PRR-graphs are pruned at.
    pub k: usize,
    /// Worker threads for sampling and selection.
    pub threads: usize,
    /// Base seed of the epoch-extended determinism contract.
    pub base_seed: u64,
    /// Compact the arena when the tombstoned fraction of retained entries
    /// exceeds this threshold (`0.0` compacts every epoch that tombstones
    /// anything; `1.0` never compacts). Compaction only reclaims memory —
    /// live content and estimates are unaffected.
    pub compact_threshold: f64,
    /// The staleness-detection rule (default
    /// [`Staleness::Approximate`], the original node-table heuristic).
    pub staleness: Staleness,
}

impl Default for MaintainerOptions {
    fn default() -> Self {
        MaintainerOptions {
            target_samples: 100_000,
            k: 10,
            threads: 8,
            base_seed: 0x0B00_57ED,
            compact_threshold: 0.25,
            staleness: Staleness::Approximate,
        }
    }
}

/// What one [`PoolMaintainer::apply_epoch`] call did. Timing is the
/// caller's business (`exp_online` wraps the call); every field here is a
/// deterministic function of the mutation history, which the cross-thread
/// property tests compare with `==`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EpochReport {
    /// The epoch this report describes.
    pub epoch: u64,
    /// Stale samples debited and redrawn: tombstoned stored graphs plus
    /// — under exact staleness — invalidated empty samples.
    pub invalidated: u64,
    /// The empty-sample share of `invalidated` (always 0 under
    /// [`Staleness::Approximate`], which cannot see empty samples).
    pub invalidated_empty: u64,
    /// Redrawn samples that stored a replacement graph.
    pub drawn_stored: u64,
    /// Redrawn samples that came up empty (activated / hopeless).
    pub drawn_empty: u64,
    /// Whether the arena was compacted this epoch.
    pub compacted: bool,
    /// Live stored graphs after the refresh.
    pub live_graphs: u64,
    /// Tombstoned graphs still occupying arena bytes after the refresh.
    pub dead_graphs: u64,
}

/// A node → items invalidation index, maintained incrementally across
/// epochs instead of rebuilt from scratch per refresh. "Items" are
/// stored-graph indices (entries from node tables in approximate mode,
/// from footprints in exact mode) or empty-sample indices (exact mode's
/// empty-footprint column).
///
/// * `base` is a CSR [`NodeIndex`] over the arena as of the last full
///   (re)build; it may reference items that were tombstoned since, so
///   queries filter on liveness.
/// * `extra` holds the `(node, item)` pairs of samples absorbed after
///   the base was built — refreshes *append* here in item order rather
///   than paying the linear-in-arena rebuild. When the tail outgrows the
///   base ([`needs_fold`](Self::needs_fold)) it is folded back in by a
///   rebuild, so a never-compacting maintainer (threshold 1.0) still
///   holds at most ~2× the live entries and dry-run scans stay bounded.
/// * Compaction renumbers items, so it is the one event that invalidates
///   the whole index (the maintainer drops it and rebuilds lazily on
///   next use).
struct InvalidationIndex {
    base: NodeIndex,
    extra: Vec<(u32, u32)>,
}

impl InvalidationIndex {
    /// Full build over the live items `0..count` (node universe `n`).
    /// `emit_nodes(i, f)` must call `f` with every node filed under item
    /// `i`; it is invoked twice per item (CSR count + scatter passes).
    fn rebuild(
        n: usize,
        count: usize,
        live: impl Fn(usize) -> bool,
        emit_nodes: impl Fn(usize, &mut dyn FnMut(u32)),
    ) -> Self {
        let base = NodeIndex::build(n, |emit| {
            for i in 0..count {
                if live(i) {
                    emit_nodes(i, &mut |v| emit(NodeId(v), i as u32));
                }
            }
        });
        InvalidationIndex {
            base,
            extra: Vec::new(),
        }
    }

    /// Appends the entries of freshly absorbed items `range` to the
    /// incremental tail.
    fn append(
        &mut self,
        range: std::ops::Range<usize>,
        emit_nodes: impl Fn(usize, &mut dyn FnMut(u32)),
    ) {
        for i in range {
            emit_nodes(i, &mut |v| self.extra.push((v, i as u32)));
        }
    }

    /// Whether the incremental tail outgrew the CSR base — the caller
    /// folds it back in with a [`rebuild`](Self::rebuild).
    fn needs_fold(&self) -> bool {
        self.extra.len() > self.base.len().max(1024)
    }

    /// The live items filed under a touched node, in ascending item
    /// order — dead items are filtered here, at query time, which is
    /// what lets tombstoning skip index surgery.
    fn stale(&self, touched: &[bool], count: usize, live: impl Fn(usize) -> bool) -> Vec<u32> {
        let mut is_stale = vec![false; count];
        let mut stale: Vec<u32> = Vec::new();
        for (v, &hit) in touched.iter().enumerate() {
            if !hit {
                continue;
            }
            for &i in self.base.items_of(NodeId(v as u32)) {
                if live(i as usize) && !is_stale[i as usize] {
                    is_stale[i as usize] = true;
                    stale.push(i);
                }
            }
        }
        for &(v, i) in &self.extra {
            if touched[v as usize] && live(i as usize) && !is_stale[i as usize] {
                is_stale[i as usize] = true;
                stale.push(i);
            }
        }
        stale.sort_unstable();
        stale
    }
}

/// Emits the staleness-relevant nodes of stored graph `gi` under the
/// given rule: the node table (approximate) or the retained footprint
/// (any decodable tier — sorted, compressed or trace). Fingerprint tiers
/// (bloom, hybrid) are one-way and never indexed — their queries scan
/// instead.
fn graph_entry_nodes(arena: &PrrArena, staleness: Staleness, gi: usize, emit: &mut dyn FnMut(u32)) {
    let mode = staleness.footprint_mode();
    if mode.is_decodable() {
        arena.footprints().for_each_node(gi, emit);
    } else {
        debug_assert_eq!(mode, FootprintMode::Off, "scan tiers never build an index");
        let view = arena.graph(gi);
        for l in 0..view.num_nodes() as u32 {
            if let Some(g) = view.global_of(l) {
                emit(g.0);
            }
        }
    }
}

/// The nodes a mutation batch *touches* under the given rule: both
/// endpoints for the node-table heuristic, edge heads only for exact
/// footprints (the head is the one node whose in-edge list a mutation
/// changes — see `kboost_prr::footprint`).
fn touched_nodes(mutations: &[Mutation], staleness: Staleness, n: usize) -> Vec<bool> {
    let mut touched = vec![false; n];
    for m in mutations {
        let (u, v) = m.endpoints();
        if !staleness.is_exact() {
            touched[u.index()] = true;
        }
        touched[v.index()] = true;
    }
    touched
}

/// The mutated edge heads of a batch, deduplicated (exact-rule queries).
fn mutation_heads(mutations: &[Mutation]) -> Vec<u32> {
    let mut heads: Vec<u32> = mutations.iter().map(|m| m.endpoints().1 .0).collect();
    heads.sort_unstable();
    heads.dedup();
    heads
}

/// Emits the retained footprint nodes of empty sample `i` — the
/// empty-column counterpart of [`graph_entry_nodes`] (decodable exact
/// tiers only).
fn empty_entry_nodes(arena: &PrrArena, i: usize, emit: &mut dyn FnMut(u32)) {
    arena.empty_footprints().for_each_node(i, emit);
}

/// Fingerprint-tier staleness (bloom and hybrid): scan the live entries
/// of `column` against a prepared query (fingerprints are one-way, so
/// there is no index to consult; the hybrid tier's short entries still
/// answer exactly inside [`FootprintColumn::matches`]) — shared by the
/// stored-graph and empty-sample paths.
fn matches_stale_scan(
    column: &FootprintColumn,
    count: usize,
    live: impl Fn(usize) -> bool,
    mutations: &[Mutation],
    mode: FootprintMode,
    n: usize,
) -> Vec<u32> {
    let q = FootprintQuery::new(mode, &mutation_heads(mutations), n);
    (0..count as u32)
        .filter(|&i| live(i as usize) && column.matches(&q, i as usize))
        .collect()
}

/// Classifies a mutation batch against the **pre-batch** graph into the
/// two redraw predicates conditional replay needs:
///
/// * `redraw_node[v]` — head `v`'s in-edge list changed *structurally*
///   (an edge was inserted or removed), so recorded in-list positions no
///   longer line up and every coin at `v` is drawn fresh;
/// * `redraw_edge ∋ (u, v)` — edge `(u, v)` existed and only its
///   probabilities were rewritten: in-edge lists are sorted by source, so
///   every position is stable and exactly this one coin redraws.
///
/// Classification is conservative in the safe direction: a fresh draw is
/// always distribution-correct, so compound batches (remove-then-insert
/// of the same edge, say) simply fall back to node-level redraw.
fn replay_redraw_sets(old: &DiGraph, mutations: &[Mutation]) -> (Vec<bool>, HashSet<(u32, u32)>) {
    let mut redraw_node = vec![false; old.num_nodes()];
    let mut redraw_edge: HashSet<(u32, u32)> = HashSet::new();
    for m in mutations {
        match *m {
            Mutation::Upsert { from, to, .. } => {
                if old.has_edge(from, to) {
                    redraw_edge.insert((from.0, to.0));
                } else {
                    redraw_node[to.index()] = true;
                }
            }
            Mutation::Remove { from, to } => {
                if old.has_edge(from, to) {
                    redraw_node[to.index()] = true;
                }
                // Removing an absent edge is a graph no-op: reuse is exact.
            }
        }
    }
    (redraw_node, redraw_edge)
}

/// The RNG seed of replayed sample `ordinal` within epoch stream
/// `stream` ([`epoch_stream_seed`]) — the trace tier's extension of the
/// `(base_seed, epoch, chunk)` determinism contract to
/// `(base_seed, epoch, ordinal)`: stale samples are replayed in a
/// canonical order (stored ascending, then empty ascending), each from
/// its own SplitMix64-mixed stream, so maintained trace pools are
/// bit-identical across thread counts and reproducible by the oracle.
#[inline]
fn replay_sample_seed(stream: u64, ordinal: u64) -> u64 {
    let mut z = stream
        .rotate_left(17)
        .wrapping_add(ordinal.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Outcome of the compute-phase refresh: what the commit phase absorbs.
enum RefreshOutcome {
    /// Unconditioned fresh draws from the chunk-seeded epoch stream (all
    /// non-trace rules).
    Sampled(SketchPool<PrrArenaShard>),
    /// Conditionally replayed stale samples ([`Staleness::ExactTrace`]).
    Replayed(PrrArenaShard),
}

/// Samples per progress stage of a staged ([`PoolMaintainer::build_within`])
/// pool build. A multiple of the sampling [`CHUNK_SIZE`], so stage
/// boundaries are chunk-aligned and staged builds stay bit-identical to
/// one-shot builds.
const BUILD_STAGE: u64 = 64 * CHUNK_SIZE;

/// A PRR pool kept consistent with an evolving graph.
pub struct PoolMaintainer {
    graph: DiGraph,
    seeds: Vec<NodeId>,
    opts: MaintainerOptions,
    pool: PrrPool,
    epoch: u64,
    /// Stored-graph invalidation index, built lazily on the first
    /// staleness query, so purely offline consumers of the fixed-size
    /// pool (perf sweeps, one-shot solves) never pay for or retain it.
    /// `None` also encodes "invalidated by compaction". Bloom staleness
    /// never builds one (fingerprints are scanned, not indexed).
    index: Option<InvalidationIndex>,
    /// Empty-sample invalidation index ([`Staleness::Exact`] only), same
    /// lifecycle as `index`.
    empty_index: Option<InvalidationIndex>,
    build_peak_bytes: usize,
    /// The serving cell, once [`serving`](Self::serving) attached one:
    /// every committed epoch publishes a frozen snapshot here, so query
    /// threads read epoch `e` while this maintainer refreshes `e + 1`
    /// in place. `None` until a service asks for it — offline consumers
    /// never pay the per-epoch snapshot clone.
    serving: Option<SnapshotService>,
    /// Observability handle ([`Obs::noop`] unless the engine attached a
    /// recorder). Instrumentation reads clocks and counters only — never
    /// randomness — so maintained pools under any recorder are
    /// bit-identical to the no-op run.
    obs: Obs,
}

impl PoolMaintainer {
    /// Builds the epoch-0 pool: `target_samples` drawn over `graph`
    /// through the streaming shard pipeline, bit-identical to an offline
    /// [`SketchPool`] build with the same base seed (footprint capture,
    /// when the staleness rule retains one, consumes no randomness).
    ///
    /// Invalid staleness parameters (an
    /// [`ExactBloom`](Staleness::ExactBloom) width that is not a power of
    /// two ≥ 64) are rejected with [`OnlineError::Staleness`] — the
    /// engine API additionally validates this at configuration time.
    pub fn build(
        graph: DiGraph,
        seeds: Vec<NodeId>,
        opts: MaintainerOptions,
    ) -> Result<Self, OnlineError> {
        Self::build_within(graph, seeds, opts, &Unlimited, &mut |_, _| {})
    }

    /// Attaches an observability handle. Subsequent epochs record the
    /// `online.*` counters/gauges and rollback events, refresh sampling
    /// feeds the `sampler.*` chunk metrics, and committed-epoch
    /// publishes time into `serve.publish_secs`; an already-attached
    /// serving cell is wired up too.
    pub fn set_obs(&mut self, obs: Obs) {
        if let Some(serving) = &self.serving {
            serving.set_obs(obs.clone());
        }
        self.obs = obs;
    }

    /// [`build`](Self::build) under a cooperative stop condition, with a
    /// progress callback invoked after every completed sampling stage
    /// (`on_stage(target_samples, &pool_so_far)`).
    ///
    /// Stages are chunk-aligned, so an unlimited staged build is
    /// bit-identical to the one-shot build. A *cancelled* build returns
    /// `Ok` with a usable partial pool — a contiguous chunk prefix of
    /// the full build, holding however many samples the budget bought
    /// (`pool().total_samples()` tells how far it got); selection and
    /// estimation over it are exact for the samples present. A build
    /// whose sampling *panicked* returns
    /// [`OnlineError::Interrupted`] with
    /// [`InterruptCause::Panicked`] instead — the panic is contained
    /// here and never unwinds into the caller.
    pub fn build_within<T: Terminator + ?Sized>(
        graph: DiGraph,
        seeds: Vec<NodeId>,
        opts: MaintainerOptions,
        term: &T,
        on_stage: &mut dyn FnMut(u64, &SketchPool<PrrArenaShard>),
    ) -> Result<Self, OnlineError> {
        Self::build_within_with_obs(graph, seeds, opts, Obs::noop(), term, on_stage)
    }

    /// [`build_within`](Self::build_within) with an observability handle
    /// attached *before* the epoch-0 sampling runs, so the initial build's
    /// chunks feed the `sampler.*` metrics too. The handle stays attached
    /// to the returned maintainer (no separate [`set_obs`](Self::set_obs)
    /// call needed).
    pub fn build_within_with_obs<T: Terminator + ?Sized>(
        graph: DiGraph,
        seeds: Vec<NodeId>,
        opts: MaintainerOptions,
        obs: Obs,
        term: &T,
        on_stage: &mut dyn FnMut(u64, &SketchPool<PrrArenaShard>),
    ) -> Result<Self, OnlineError> {
        if let Err(message) = opts.staleness.footprint_mode().validate() {
            return Err(OnlineError::Staleness {
                message: message.to_string(),
            });
        }
        let sampled = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let source = PrrFullSource::with_footprints(
                &graph,
                &seeds,
                opts.k,
                opts.staleness.footprint_mode(),
            );
            let mut sketches: SketchPool<PrrArenaShard> =
                SketchPool::with_epoch(opts.base_seed, 0, opts.threads);
            sketches.set_obs(obs.clone());
            while sketches.total_samples() < opts.target_samples {
                let stage = (sketches.total_samples() + BUILD_STAGE).min(opts.target_samples);
                let status = sketches.extend_to_within(&source, stage, term);
                on_stage(opts.target_samples, &sketches);
                if status == ExtendStatus::Interrupted {
                    break;
                }
            }
            sketches
        }));
        let sketches = sampled.map_err(|_| OnlineError::Interrupted {
            epoch: 0,
            cause: InterruptCause::Panicked,
        })?;
        let build_peak_bytes = sketches.shard().memory_bytes() + sketches.cover_memory_bytes();
        let pool = PrrPool::new(sketches, graph.num_nodes(), opts.threads);
        Ok(PoolMaintainer {
            graph,
            seeds,
            opts,
            pool,
            epoch: 0,
            index: None,
            empty_index: None,
            build_peak_bytes,
            serving: None,
            obs,
        })
    }

    /// Freezes the maintainer's current state as an epoch-stamped
    /// [`PoolSnapshot`] — the pinned-epoch oracle the serving tests and
    /// `exp_service` compare concurrent answers against. Cost: one
    /// flat-array clone of graph and pool.
    pub fn snapshot(&self) -> PoolSnapshot {
        PoolSnapshot::new(
            self.epoch,
            self.graph.clone(),
            self.seeds.clone(),
            self.pool.clone(),
        )
    }

    /// The maintainer's [`SnapshotService`]: created on first call —
    /// publishing the current state — and re-published automatically
    /// after **every** committed epoch from then on, so readers pinning
    /// through clones of the returned handle always see the latest
    /// *committed* epoch while the next one builds. An epoch that rolls
    /// back (cancelled or panicked refresh) publishes nothing: the
    /// service keeps serving the pre-epoch snapshot, which is exactly
    /// the state the maintainer rolled back to.
    pub fn serving(&mut self) -> SnapshotService {
        if self.serving.is_none() {
            let service = SnapshotService::new(self.snapshot());
            if self.obs.is_enabled() {
                service.set_obs(self.obs.clone());
            }
            self.serving = Some(service);
        }
        self.serving.clone().expect("service just attached")
    }

    /// Peak bytes alive during the epoch-0 pool build: the merged
    /// sampling shard plus the covers, both held until the covers are
    /// dropped on conversion into the pool.
    pub fn build_peak_bytes(&self) -> usize {
        self.build_peak_bytes
    }

    /// The maintained pool (estimators skip tombstoned graphs).
    pub fn pool(&self) -> &PrrPool {
        &self.pool
    }

    /// The current (post-mutation) graph.
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// The seed set the pool is conditioned on.
    pub fn seeds(&self) -> &[NodeId] {
        &self.seeds
    }

    /// The current epoch (0 until the first batch is applied).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The maintainer's options.
    pub fn options(&self) -> &MaintainerOptions {
        &self.opts
    }

    /// Greedy `Δ̂` selection over the live pool.
    pub fn select(&self, k: usize) -> DeltaSelection {
        greedy_delta_selection(
            self.pool.arena(),
            self.graph.num_nodes(),
            k,
            self.opts.threads,
        )
    }

    /// Live stored graphs `mutations` would invalidate under the
    /// configured [`Staleness`] rule, in ascending graph order — also
    /// usable as a dry run to size a batch before sealing it. (Exact
    /// modes additionally refresh stale *empty* samples — see
    /// [`stale_empty_samples`](Self::stale_empty_samples) — which this
    /// stored-graph view does not list.)
    ///
    /// Approximate and exact-sorted rules answer from an **incrementally
    /// maintained** node → samples [`NodeIndex`], built lazily on first
    /// use: refreshes append the absorbed samples' entries (folding the
    /// tail into the CSR base when it outgrows it), tombstoned samples
    /// are filtered at query time, and compaction invalidates the cache
    /// wholesale. A dry run therefore costs
    /// `O(n + index-hit scan + appended tail)` in scratch flags and
    /// lookups. The bloom tier stores one-way fingerprints that cannot be
    /// inverted into an index, so it scans the live fingerprints instead
    /// (a handful of bit tests each).
    ///
    /// # Panics
    /// Panics if a mutation endpoint is outside the graph's node
    /// universe (the engine API validates this up front and returns a
    /// typed error instead).
    pub fn stale_graphs(&mut self, mutations: &[Mutation]) -> Vec<u32> {
        if mutations.is_empty() {
            return Vec::new();
        }
        let n = self.graph.num_nodes();
        let staleness = self.opts.staleness;
        let arena = self.pool.arena();
        let mode = staleness.footprint_mode();
        if mode.is_on() && !mode.is_decodable() {
            return matches_stale_scan(
                arena.footprints(),
                arena.len(),
                |i| arena.is_live(i),
                mutations,
                mode,
                n,
            );
        }
        let touched = touched_nodes(mutations, staleness, n);
        let index = self.index.get_or_insert_with(|| {
            InvalidationIndex::rebuild(
                n,
                arena.len(),
                |i| arena.is_live(i),
                |i, emit| graph_entry_nodes(arena, staleness, i, emit),
            )
        });
        index.stale(&touched, arena.len(), |i| arena.is_live(i))
    }

    /// Live *empty* samples (activated / hopeless / cover-less — counted
    /// in the estimator's denominator but storing no graph) that
    /// `mutations` would invalidate, in ascending empty-column order.
    /// Always empty under [`Staleness::Approximate`], which retains no
    /// trace of empty samples and therefore can never refresh them — the
    /// under-detection the exact modes exist to close.
    pub fn stale_empty_samples(&mut self, mutations: &[Mutation]) -> Vec<u32> {
        if mutations.is_empty() || !self.opts.staleness.is_exact() {
            return Vec::new();
        }
        let n = self.graph.num_nodes();
        let staleness = self.opts.staleness;
        let arena = self.pool.arena();
        let count = arena.num_empty_footprints();
        let mode = staleness.footprint_mode();
        if !mode.is_decodable() {
            return matches_stale_scan(
                arena.empty_footprints(),
                count,
                |i| arena.empty_is_live(i),
                mutations,
                mode,
                n,
            );
        }
        let touched = touched_nodes(mutations, staleness, n);
        let index = self.empty_index.get_or_insert_with(|| {
            InvalidationIndex::rebuild(
                n,
                count,
                |i| arena.empty_is_live(i),
                |i, emit| empty_entry_nodes(arena, i, emit),
            )
        });
        index.stale(&touched, count, |i| arena.empty_is_live(i))
    }

    /// The trace tier's compute-phase refresh: conditionally replays
    /// every stale sample — stored stale in ascending arena order, then
    /// stale empties in ascending empty-column order — over `new_graph`
    /// into a private shard, reusing each sample's retained coins on
    /// untouched edges and redrawing only what `batch` mutated. Reads the
    /// maintainer but never mutates it; the terminator is polled at
    /// [`CHUNK_SIZE`] replay boundaries like the sampled path polls its
    /// chunk stream, so cancellation rolls the epoch back identically.
    fn replay_refresh<T: Terminator + ?Sized>(
        &self,
        new_graph: &DiGraph,
        batch: &EpochBatch,
        stale: &[u32],
        stale_empty: &[u32],
        term: &T,
    ) -> (PrrArenaShard, ExtendStatus) {
        let mode = self.opts.staleness.footprint_mode();
        let (redraw_node, redraw_edge) = replay_redraw_sets(&self.graph, &batch.mutations);
        let is_node = |u: u32| redraw_node[u as usize];
        let is_edge = |u: u32, v: u32| redraw_edge.contains(&(u, v));
        let generator = PrrGenerator::new_scalar_oracle(new_graph, &self.seeds, self.opts.k);
        let stream = epoch_stream_seed(self.opts.base_seed, batch.epoch);
        let arena = self.pool.arena();
        let mut shard = PrrArenaShard::new();
        let mut ordinal: u64 = 0;
        let stored_traces = stale
            .iter()
            .map(|&gi| arena.footprints().trace(gi as usize));
        let empty_traces = stale_empty
            .iter()
            .map(|&ei| arena.empty_footprints().trace(ei as usize));
        #[allow(clippy::explicit_counter_loop)] // ordinal doubles as the seed stream position
        for trace in stored_traces.chain(empty_traces) {
            if ordinal.is_multiple_of(CHUNK_SIZE)
                && term.should_stop(&SampleProgress {
                    samples: ordinal,
                    chunk: ordinal / CHUNK_SIZE,
                })
            {
                return (shard, ExtendStatus::Interrupted);
            }
            let mut rng = SmallRng::seed_from_u64(replay_sample_seed(stream, ordinal));
            generator.replay_into_fp(trace, &is_node, &is_edge, &mut rng, &mut shard, mode);
            ordinal += 1;
        }
        (shard, ExtendStatus::Completed)
    }

    /// Applies one sealed epoch: mutates the graph, tombstones the stale
    /// graphs, compacts past the threshold, and resamples exactly the
    /// invalidated share under the `(base_seed, epoch, chunk)` seeds.
    ///
    /// All-or-nothing: the batch is validated at ingress and the refresh
    /// samples are drawn **before** anything is committed, so on any
    /// `Err` — malformed batch, out-of-order epoch, cancelled or
    /// panicked refresh — the maintainer's graph, epoch counter and
    /// arena bytes are exactly what they were before the call, and the
    /// batch can be retried verbatim (see
    /// [`apply_epoch_within`](Self::apply_epoch_within)).
    pub fn apply_epoch(&mut self, batch: &EpochBatch) -> Result<EpochReport, OnlineError> {
        self.apply_epoch_within(batch, &Unlimited)
    }

    /// [`apply_epoch`](Self::apply_epoch) under a cooperative stop
    /// condition polled at the refresh's chunk boundaries (the refresh
    /// chunk counter restarts at 0 each epoch, so a deterministic
    /// terminator injects at a reproducible point of the epoch's own
    /// stream).
    ///
    /// The epoch is transactional — compute, then commit:
    ///
    /// 1. contiguity and ingress validation reject bad input up front;
    /// 2. the mutated graph is rebuilt and the stale sets are computed
    ///    *read-only* (the lazily cached invalidation indices may be
    ///    built here; they describe the untouched arena and stay valid
    ///    either way);
    /// 3. the full refresh is sampled over the new graph into a private
    ///    pool, inside a panic guard — a cancelled or panicked refresh
    ///    returns [`OnlineError::Interrupted`] *before any commit*, so
    ///    the pool is byte-identical to its pre-epoch state;
    /// 4. only then are graph, epoch, tombstones, compaction and the
    ///    absorbed refresh committed, in the order the replay oracle
    ///    reproduces.
    ///
    /// An epoch that invalidates nothing draws no samples and therefore
    /// never polls the terminator — it commits even under a
    /// pre-cancelled budget.
    pub fn apply_epoch_within<T: Terminator + ?Sized>(
        &mut self,
        batch: &EpochBatch,
        term: &T,
    ) -> Result<EpochReport, OnlineError> {
        if batch.epoch != self.epoch + 1 {
            return Err(OnlineError::EpochOrder {
                expected: self.epoch + 1,
                got: batch.epoch,
            });
        }
        validate_mutations(self.graph.num_nodes(), &batch.mutations)?;
        // Cloned to a local so span timers never hold a borrow of `self`
        // across the `&mut self` commit phase.
        let obs = self.obs.clone();
        let _apply_span = obs.span("online.epoch.apply_secs");

        // Compute phase: nothing below mutates the maintainer. The stale
        // sets depend only on the arena and the batch (the universe size
        // is fixed), so computing them against the pre-mutation state is
        // exact.
        let new_graph = apply_mutations(&self.graph, &batch.mutations)?;
        let stale = self.stale_graphs(&batch.mutations);
        let stale_empty = self.stale_empty_samples(&batch.mutations);
        let invalidated_empty = stale_empty.len() as u64;
        let invalidated = stale.len() as u64 + invalidated_empty;

        let refresh = if invalidated > 0 {
            let _refresh_span = obs.span("online.epoch.refresh_secs");
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                if self.opts.staleness.footprint_mode().retains_trace() {
                    // Trace tier: conditional replay of the stale samples
                    // instead of unconditioned fresh draws.
                    let (shard, status) =
                        self.replay_refresh(&new_graph, batch, &stale, &stale_empty, term);
                    return (RefreshOutcome::Replayed(shard), status);
                }
                let mut refresh: SketchPool<PrrArenaShard> =
                    SketchPool::with_epoch(self.opts.base_seed, batch.epoch, self.opts.threads);
                refresh.set_obs(obs.clone());
                // A fresh source per epoch also rebuilds the kernel's SoA
                // in-edge mirror against the mutated graph — mirror
                // coherence is by construction, never by invalidation.
                let status = refresh.extend_to_within(
                    &PrrFullSource::with_footprints(
                        &new_graph,
                        &self.seeds,
                        self.opts.k,
                        self.opts.staleness.footprint_mode(),
                    ),
                    invalidated,
                    term,
                );
                (RefreshOutcome::Sampled(refresh), status)
            }));
            match outcome {
                Err(_) => {
                    obs.counter_add("online.rollbacks", 1);
                    obs.event(
                        "online.rollback",
                        &[
                            ("epoch", Value::from(batch.epoch)),
                            ("cause", Value::from("panicked")),
                        ],
                    );
                    return Err(OnlineError::Interrupted {
                        epoch: batch.epoch,
                        cause: InterruptCause::Panicked,
                    });
                }
                Ok((_, ExtendStatus::Interrupted)) => {
                    obs.counter_add("online.rollbacks", 1);
                    obs.event(
                        "online.rollback",
                        &[
                            ("epoch", Value::from(batch.epoch)),
                            ("cause", Value::from("cancelled")),
                        ],
                    );
                    return Err(OnlineError::Interrupted {
                        epoch: batch.epoch,
                        cause: InterruptCause::Cancelled,
                    });
                }
                Ok((refresh, ExtendStatus::Completed)) => Some(refresh),
            }
        } else {
            None
        };

        // Commit phase — infallible from here on.
        self.graph = new_graph;
        self.epoch = batch.epoch;

        let arena = self.pool.arena_mut();
        for &gi in &stale {
            // Tombstoning needs no index surgery: queries filter dead
            // samples on the fly.
            arena.tombstone(gi as usize);
        }
        for &ei in &stale_empty {
            arena.tombstone_empty(ei as usize);
        }
        let compacted = arena.dead_fraction() > self.opts.compact_threshold;
        if compacted {
            arena.compact();
            // Compaction renumbers the surviving samples — the one event
            // that invalidates the cached indices wholesale. Dropped
            // here, rebuilt lazily by the next staleness query.
            self.index = None;
            self.empty_index = None;
        }

        let (drawn_stored, drawn_empty) = if let Some(refresh) = refresh {
            let (shard, drawn) = match refresh {
                RefreshOutcome::Sampled(pool) => {
                    let (_covers, shard, drawn, _cover_empties) = pool.into_parts();
                    (shard, drawn)
                }
                RefreshOutcome::Replayed(shard) => (shard, invalidated),
            };
            debug_assert_eq!(drawn, invalidated);
            // Cover-less boostable graphs are stored too, so the empty
            // share is storage-derived — drawn minus what the shard
            // actually stored — never the sketch layer's cover-based
            // count.
            let empties = drawn - shard.len() as u64;
            let absorbed_graphs_from = self.pool.arena().len();
            let absorbed_empties_from = self.pool.arena().num_empty_footprints();
            self.pool.arena_mut().absorb_shard(shard);
            let arena = self.pool.arena();
            let n = self.graph.num_nodes();
            let staleness = self.opts.staleness;
            if let Some(index) = &mut self.index {
                index.append(absorbed_graphs_from..arena.len(), |i, emit| {
                    graph_entry_nodes(arena, staleness, i, emit)
                });
                if index.needs_fold() {
                    *index = InvalidationIndex::rebuild(
                        n,
                        arena.len(),
                        |i| arena.is_live(i),
                        |i, emit| graph_entry_nodes(arena, staleness, i, emit),
                    );
                }
            }
            if let Some(index) = &mut self.empty_index {
                index.append(
                    absorbed_empties_from..arena.num_empty_footprints(),
                    |i, emit| empty_entry_nodes(arena, i, emit),
                );
                if index.needs_fold() {
                    *index = InvalidationIndex::rebuild(
                        n,
                        arena.num_empty_footprints(),
                        |i| arena.empty_is_live(i),
                        |i, emit| empty_entry_nodes(arena, i, emit),
                    );
                }
            }
            self.pool
                .record_refresh(invalidated, invalidated_empty, drawn, empties);
            (drawn - empties, empties)
        } else {
            (0, 0)
        };

        // The epoch is committed; if a serving cell is attached, swap in
        // the frozen post-commit state. Readers pinned to the previous
        // epoch keep their Arc untouched — publication is a pointer
        // swap, never an in-place mutation of a published snapshot.
        if let Some(serving) = &self.serving {
            // The snapshot clone dominates publish cost, so it is timed
            // here rather than inside the pointer-swap `publish`.
            let timer = obs.is_enabled().then(std::time::Instant::now);
            serving.publish(self.snapshot());
            if let Some(start) = timer {
                obs.observe("serve.publish_secs", start.elapsed().as_secs_f64());
            }
        }

        let report = EpochReport {
            epoch: self.epoch,
            invalidated,
            invalidated_empty,
            drawn_stored,
            drawn_empty,
            compacted,
            live_graphs: self.pool.arena().num_live() as u64,
            dead_graphs: self.pool.arena().num_dead() as u64,
        };
        if obs.is_enabled() {
            obs.counter_add("online.epochs", 1);
            obs.counter_add("online.invalidated", invalidated);
            obs.counter_add("online.invalidated_empty", invalidated_empty);
            obs.counter_add("online.resampled", drawn_stored + drawn_empty);
            obs.counter_add("online.compactions", compacted as u64);
            obs.gauge_set("online.epoch", report.epoch as f64);
            obs.gauge_set("online.live_graphs", report.live_graphs as f64);
            obs.gauge_set("online.dead_graphs", report.dead_graphs as f64);
            obs.event(
                "online.epoch_commit",
                &[
                    ("epoch", Value::from(report.epoch)),
                    ("invalidated", Value::from(invalidated)),
                    ("resampled", Value::from(drawn_stored + drawn_empty)),
                    ("compacted", Value::from(compacted)),
                ],
            );
        }
        Ok(report)
    }
}

/// The equivalence oracle: replays the same mutation history from scratch
/// through the **legacy** pipeline, under the same [`Staleness`] rule as
/// `opts` — per-graph [`CompressedPrr`] payloads (the legacy sources draw
/// the exact randomness of the shard source), naive full per-sample scans
/// for staleness, eager filtering instead of tombstones, and a final
/// per-graph copy build. Returns the epoch-`history.len()` graph and
/// pool.
///
/// The maintained pool's compacted arena must be byte-equal to this
/// pool's arena (footprint columns included in exact modes), and all
/// estimates and selections must agree — the property
/// `tests/online_pool.rs` asserts.
///
/// [`CompressedPrr`]: kboost_prr::CompressedPrr
pub fn rebuild_from_history(
    graph0: &DiGraph,
    seeds: &[NodeId],
    opts: &MaintainerOptions,
    history: &[EpochBatch],
) -> (DiGraph, PrrPool) {
    match opts.staleness {
        Staleness::Approximate => rebuild_approximate(graph0, seeds, opts, history),
        Staleness::Exact
        | Staleness::ExactBloom { .. }
        | Staleness::ExactCompressed
        | Staleness::ExactHybrid { .. } => rebuild_exact(graph0, seeds, opts, history),
        Staleness::ExactTrace => rebuild_trace(graph0, seeds, opts, history),
    }
}

/// Approximate-rule replay: node-table scans, stored graphs only (the
/// original oracle, byte-for-byte).
fn rebuild_approximate(
    graph0: &DiGraph,
    seeds: &[NodeId],
    opts: &MaintainerOptions,
    history: &[EpochBatch],
) -> (DiGraph, PrrPool) {
    let n = graph0.num_nodes();
    let mut g = graph0.clone();

    let mut pool: SketchPool<Vec<kboost_prr::CompressedPrr>> =
        SketchPool::with_epoch(opts.base_seed, 0, opts.threads);
    pool.extend_to(
        &LegacyPrrSource::new(&g, seeds, opts.k),
        opts.target_samples,
    );
    // Empty = not stored (cover-less boostable graphs ARE stored), so the
    // count derives from storage, not from the sketch layer's covers.
    let (_covers, mut payloads, mut total, _cover_empties) = pool.into_parts();
    let mut empties = total - payloads.len() as u64;

    for batch in history {
        g = apply_mutations(&g, &batch.mutations)
            .expect("replayed batches were validated when first applied");
        let touched = touched_nodes(&batch.mutations, Staleness::Approximate, n);
        // Naive staleness: scan every retained graph's whole node table.
        let before = payloads.len();
        payloads.retain(|c| {
            let view = c.view();
            !(0..view.num_nodes() as u32)
                .any(|l| view.global_of(l).is_some_and(|gid| touched[gid.index()]))
        });
        let invalidated = (before - payloads.len()) as u64;
        total -= invalidated;

        if invalidated > 0 {
            let mut refresh: SketchPool<Vec<kboost_prr::CompressedPrr>> =
                SketchPool::with_epoch(opts.base_seed, batch.epoch, opts.threads);
            refresh.extend_to(&LegacyPrrSource::new(&g, seeds, opts.k), invalidated);
            let (_c, extra, drawn, _e) = refresh.into_parts();
            empties += drawn - extra.len() as u64;
            payloads.extend(extra);
            total += drawn;
        }
    }

    let arena = PrrArena::from_graphs(payloads);
    (
        g,
        PrrPool::from_raw_parts(arena, n, total, empties, opts.threads),
    )
}

/// Exact-rule replay: every sample — stored or empty — is retained as a
/// [`LegacySample`] with its raw footprint, scanned eagerly per epoch
/// under the same footprint verdict the arena columns give
/// ([`FootprintColumn::raw_matches`], so the bloom tier's false positives
/// reproduce bit-for-bit), and the final arena is copy-built with the
/// footprint columns in place.
fn rebuild_exact(
    graph0: &DiGraph,
    seeds: &[NodeId],
    opts: &MaintainerOptions,
    history: &[EpochBatch],
) -> (DiGraph, PrrPool) {
    let mode = opts.staleness.footprint_mode();
    let n = graph0.num_nodes();
    let mut g = graph0.clone();

    let mut pool: SketchPool<Vec<LegacySample>> =
        SketchPool::with_epoch(opts.base_seed, 0, opts.threads);
    pool.extend_to(&LegacyFpSource::new(&g, seeds, opts.k), opts.target_samples);
    let (_covers, mut samples, mut total, _cover_empties) = pool.into_parts();
    let mut empties = samples
        .iter()
        .filter(|s| matches!(s, LegacySample::Empty { .. }))
        .count() as u64;

    for batch in history {
        g = apply_mutations(&g, &batch.mutations)
            .expect("replayed batches were validated when first applied");
        let q = FootprintQuery::new(mode, &mutation_heads(&batch.mutations), n);
        let mut invalidated = 0u64;
        let mut invalidated_empty = 0u64;
        samples.retain(|s| {
            let (footprint, is_empty) = match s {
                LegacySample::Stored { footprint, .. } => (footprint, false),
                LegacySample::Empty { footprint } => (footprint, true),
            };
            if FootprintColumn::raw_matches(mode, footprint, &q) {
                invalidated += 1;
                invalidated_empty += is_empty as u64;
                false
            } else {
                true
            }
        });
        total -= invalidated;
        empties -= invalidated_empty;

        if invalidated > 0 {
            let mut refresh: SketchPool<Vec<LegacySample>> =
                SketchPool::with_epoch(opts.base_seed, batch.epoch, opts.threads);
            refresh.extend_to(&LegacyFpSource::new(&g, seeds, opts.k), invalidated);
            let (_c, extra, drawn, _e) = refresh.into_parts();
            empties += extra
                .iter()
                .filter(|s| matches!(s, LegacySample::Empty { .. }))
                .count() as u64;
            samples.extend(extra);
            total += drawn;
        }
    }

    let mut arena = PrrArena::new();
    for s in &samples {
        match s {
            LegacySample::Stored { graph, footprint } => {
                arena.push_with_footprint(graph, footprint, mode)
            }
            LegacySample::Empty { footprint } => arena.push_empty_footprint(footprint, mode),
        }
    }
    (
        g,
        PrrPool::from_raw_parts(arena, n, total, empties, opts.threads),
    )
}

/// Trace-rule replay: every sample is retained as a
/// [`LegacyTraceSample`] (payload + footprint + coin trace), staleness
/// verdicts are the same eager [`FootprintColumn::raw_matches`] scans as
/// [`rebuild_exact`], and invalidated samples are *conditionally
/// replayed* — stale stored samples in retained order, then stale
/// empties in retained order, one [`replay_sample_seed`] stream each —
/// mirroring the maintainer's [`PoolMaintainer::apply_epoch`] replay
/// exactly (arena index order equals retained-subsequence order, since
/// tombstone-compaction and absorb both preserve order).
fn rebuild_trace(
    graph0: &DiGraph,
    seeds: &[NodeId],
    opts: &MaintainerOptions,
    history: &[EpochBatch],
) -> (DiGraph, PrrPool) {
    let mode = opts.staleness.footprint_mode();
    let n = graph0.num_nodes();
    let mut g = graph0.clone();

    let mut pool: SketchPool<Vec<LegacyTraceSample>> =
        SketchPool::with_epoch(opts.base_seed, 0, opts.threads);
    pool.extend_to(
        &LegacyTraceSource::new(&g, seeds, opts.k),
        opts.target_samples,
    );
    let (_covers, mut samples, total, _cover_empties) = pool.into_parts();

    for batch in history {
        let g_new = apply_mutations(&g, &batch.mutations)
            .expect("replayed batches were validated when first applied");
        let (redraw_node, redraw_edge) = replay_redraw_sets(&g, &batch.mutations);
        let q = FootprintQuery::new(mode, &mutation_heads(&batch.mutations), n);

        // Partition preserving retained order; stale stored before stale
        // empty fixes the replay ordinals the maintainer uses.
        let mut fresh: Vec<LegacyTraceSample> = Vec::with_capacity(samples.len());
        let mut stale_stored: Vec<Vec<u8>> = Vec::new();
        let mut stale_empty: Vec<Vec<u8>> = Vec::new();
        for s in samples.drain(..) {
            let footprint = match &s {
                LegacyTraceSample::Stored { footprint, .. }
                | LegacyTraceSample::Empty { footprint, .. } => footprint,
            };
            if FootprintColumn::raw_matches(mode, footprint, &q) {
                match s {
                    LegacyTraceSample::Stored { trace, .. } => stale_stored.push(trace),
                    LegacyTraceSample::Empty { trace, .. } => stale_empty.push(trace),
                }
            } else {
                fresh.push(s);
            }
        }
        samples = fresh;

        let generator = PrrGenerator::new_scalar_oracle(&g_new, seeds, opts.k);
        let stream = epoch_stream_seed(opts.base_seed, batch.epoch);
        for (ordinal, old_trace) in stale_stored.iter().chain(stale_empty.iter()).enumerate() {
            let mut rng = SmallRng::seed_from_u64(replay_sample_seed(stream, ordinal as u64));
            let mut footprint = Vec::new();
            let mut trace = Vec::new();
            let out = generator.replay_with_footprint_trace(
                old_trace,
                &|u| redraw_node[u as usize],
                &|u, v| redraw_edge.contains(&(u, v)),
                &mut rng,
                &mut footprint,
                &mut trace,
            );
            samples.push(match out {
                PrrOutcome::Boostable(graph) => LegacyTraceSample::Stored {
                    graph,
                    footprint,
                    trace,
                },
                PrrOutcome::Activated | PrrOutcome::Hopeless => {
                    LegacyTraceSample::Empty { footprint, trace }
                }
            });
        }
        g = g_new;
    }

    let empties = samples
        .iter()
        .filter(|s| matches!(s, LegacyTraceSample::Empty { .. }))
        .count() as u64;
    let mut arena = PrrArena::new();
    for s in &samples {
        match s {
            LegacyTraceSample::Stored {
                graph,
                footprint,
                trace,
            } => arena.push_with_footprint_trace(graph, footprint, trace, mode),
            LegacyTraceSample::Empty { footprint, trace } => {
                arena.push_empty_footprint_trace(footprint, trace, mode)
            }
        }
    }
    (
        g,
        PrrPool::from_raw_parts(arena, n, total, empties, opts.threads),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mutation::MutationLog;
    use kboost_graph::{EdgeProbs, GraphBuilder};

    fn quick_opts(target: u64, threads: usize) -> MaintainerOptions {
        MaintainerOptions {
            target_samples: target,
            k: 2,
            threads,
            base_seed: 0xCAFE,
            compact_threshold: 0.25,
            staleness: Staleness::Approximate,
        }
    }

    /// Seed 0 fans out to two disjoint boost-only 2-hop paths:
    /// 0 →(boost) mid →(live) end, mids {1, 2}, ends {3, 4}.
    fn two_paths() -> DiGraph {
        let mut b = GraphBuilder::new(5);
        b.add_edge(NodeId(0), NodeId(1), 0.0, 1.0).unwrap();
        b.add_edge(NodeId(1), NodeId(3), 1.0, 1.0).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 0.0, 1.0).unwrap();
        b.add_edge(NodeId(2), NodeId(4), 1.0, 1.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builds_epoch_zero_like_an_offline_pool() {
        let opts = quick_opts(2_000, 2);
        let m = PoolMaintainer::build(two_paths(), vec![NodeId(0)], opts).unwrap();
        assert_eq!(m.epoch(), 0);
        assert_eq!(m.pool().total_samples(), 2_000);
        assert!(m.pool().num_boostable() > 0);

        // Offline pool with the same seed: identical arena.
        let g = two_paths();
        let mut sketches: SketchPool<PrrArenaShard> = SketchPool::new(opts.base_seed, 2);
        sketches.extend_to(&PrrFullSource::new(&g, &[NodeId(0)], opts.k), 2_000);
        let offline = PrrPool::new(sketches, g.num_nodes(), 2);
        assert!(m.pool().arena() == offline.arena());
    }

    #[test]
    fn staleness_rule_matches_node_tables_exactly() {
        // The dry run must mark a graph stale iff its node table holds a
        // touched endpoint — checked in both directions over every stored
        // graph.
        let mut m =
            PoolMaintainer::build(two_paths(), vec![NodeId(0)], quick_opts(1_000, 1)).unwrap();
        // Every stored graph contains its root; roots are uniform over
        // non-seed nodes, so node 1 appears in some table.
        let stale = m.stale_graphs(&[Mutation::Remove {
            from: NodeId(0),
            to: NodeId(1),
        }]);
        assert!(!stale.is_empty());
        for &gi in &stale {
            let view = m.pool().arena().graph(gi as usize);
            let hit = (0..view.num_nodes() as u32).any(|l| {
                view.global_of(l) == Some(NodeId(0)) || view.global_of(l) == Some(NodeId(1))
            });
            assert!(hit, "graph {gi} marked stale without a touched node");
        }
        // And graphs that contain neither endpoint are never marked.
        let all: std::collections::HashSet<u32> = stale.iter().copied().collect();
        for gi in 0..m.pool().arena().len() as u32 {
            if all.contains(&gi) {
                continue;
            }
            let view = m.pool().arena().graph(gi as usize);
            let hit = (0..view.num_nodes() as u32).any(|l| {
                view.global_of(l) == Some(NodeId(0)) || view.global_of(l) == Some(NodeId(1))
            });
            assert!(!hit, "graph {gi} touched but not marked stale");
        }
        assert!(m.stale_graphs(&[]).is_empty());
    }

    #[test]
    fn apply_epoch_refreshes_and_keeps_totals() {
        let mut m =
            PoolMaintainer::build(two_paths(), vec![NodeId(0)], quick_opts(2_000, 2)).unwrap();
        let mut log = MutationLog::new();
        // Cut path 1 → 3: root-3 graphs become hopeless in the new world.
        log.remove_edge(NodeId(1), NodeId(3));
        let report = m.apply_epoch(&log.seal_epoch()).unwrap();
        assert_eq!(report.epoch, 1);
        assert_eq!(m.epoch(), 1);
        assert!(report.invalidated > 0);
        assert_eq!(report.invalidated, report.drawn_stored + report.drawn_empty);
        assert_eq!(m.pool().total_samples(), 2_000);
        assert_eq!(report.live_graphs, m.pool().arena().num_live() as u64);
        // Boosting node 1 no longer activates root 3: Δ̂ must not count
        // any refreshed graph rooted at 3 for {1} alone... node 3 is now
        // unreachable, so µ̂/Δ̂ only pay out through path 2 → 4.
        assert!(m.pool().delta_hat(&[NodeId(2)]) > 0.0);
    }

    #[test]
    fn invalid_bloom_width_is_rejected_at_build() {
        let mut opts = quick_opts(100, 1);
        opts.staleness = Staleness::ExactBloom { bits: 48 };
        match PoolMaintainer::build(two_paths(), vec![NodeId(0)], opts) {
            Err(OnlineError::Staleness { message }) => {
                assert!(!message.is_empty(), "diagnostic carries the reason")
            }
            Err(other) => panic!("expected a staleness error, got {other:?}"),
            Ok(_) => panic!("expected a staleness error, got a maintainer"),
        }
    }

    #[test]
    fn skipping_an_epoch_is_a_typed_error() {
        let mut m =
            PoolMaintainer::build(two_paths(), vec![NodeId(0)], quick_opts(500, 1)).unwrap();
        let mut log = MutationLog::new();
        let _skipped = log.seal_epoch();
        log.remove_edge(NodeId(1), NodeId(3));
        let batch2 = log.seal_epoch();
        assert_eq!(
            m.apply_epoch(&batch2).unwrap_err(),
            OnlineError::EpochOrder {
                expected: 1,
                got: 2
            }
        );
        // The rejected batch left no trace: epoch 1 still applies.
        let mut log = MutationLog::new();
        let _ = log.seal_epoch();
        assert_eq!(m.epoch(), 0);
    }

    #[test]
    fn malformed_batch_is_rejected_before_any_commit() {
        let mut m =
            PoolMaintainer::build(two_paths(), vec![NodeId(0)], quick_opts(500, 2)).unwrap();
        let samples_before = m.pool().total_samples();
        let batch = EpochBatch {
            epoch: 1,
            mutations: vec![
                Mutation::Remove {
                    from: NodeId(1),
                    to: NodeId(3),
                },
                Mutation::Upsert {
                    from: NodeId(2),
                    to: NodeId(99),
                    probs: EdgeProbs::new(0.1, 0.2).unwrap(),
                },
            ],
        };
        match m.apply_epoch(&batch) {
            Err(OnlineError::Mutation(crate::error::MutationError::NodeOutOfRange { node, n })) => {
                assert_eq!((node, n), (NodeId(99), 5));
            }
            other => panic!("expected a mutation error, got {other:?}"),
        }
        assert_eq!(m.epoch(), 0, "nothing committed");
        assert_eq!(m.pool().total_samples(), samples_before);
        assert_eq!(m.graph().num_edges(), two_paths().num_edges());
    }

    #[test]
    fn cancelled_refresh_rolls_back_and_retries_cleanly() {
        use kboost_rrset::terminator::StopAtChunk;
        let mut m =
            PoolMaintainer::build(two_paths(), vec![NodeId(0)], quick_opts(2_000, 2)).unwrap();
        let mut log = MutationLog::new();
        log.remove_edge(NodeId(1), NodeId(3));
        let batch = log.seal_epoch();
        let arena_before = m.pool().arena().clone();
        let edges_before = m.graph().num_edges();

        // Stop before the refresh's first chunk: the epoch must roll back.
        assert_eq!(
            m.apply_epoch_within(&batch, &StopAtChunk(0)).unwrap_err(),
            OnlineError::Interrupted {
                epoch: 1,
                cause: InterruptCause::Cancelled
            }
        );
        assert_eq!(m.epoch(), 0);
        assert_eq!(m.graph().num_edges(), edges_before);
        assert!(
            *m.pool().arena() == arena_before,
            "arena must be byte-identical after rollback"
        );

        // Retrying the identical batch succeeds and matches an
        // uninterrupted maintainer exactly.
        let report = m.apply_epoch(&batch).unwrap();
        assert!(report.invalidated > 0);
        let mut fresh =
            PoolMaintainer::build(two_paths(), vec![NodeId(0)], quick_opts(2_000, 2)).unwrap();
        let fresh_report = fresh.apply_epoch(&batch).unwrap();
        assert_eq!(report, fresh_report);
        assert!(*m.pool().arena() == *fresh.pool().arena());
    }

    #[test]
    fn panicked_refresh_is_contained_and_rolls_back() {
        use kboost_rrset::terminator::PanicAt;
        for threads in [1usize, 2] {
            let mut m =
                PoolMaintainer::build(two_paths(), vec![NodeId(0)], quick_opts(1_500, threads))
                    .unwrap();
            let mut log = MutationLog::new();
            log.remove_edge(NodeId(1), NodeId(3));
            let batch = log.seal_epoch();
            let arena_before = m.pool().arena().clone();

            assert_eq!(
                m.apply_epoch_within(&batch, &PanicAt(0)).unwrap_err(),
                OnlineError::Interrupted {
                    epoch: 1,
                    cause: InterruptCause::Panicked
                }
            );
            assert_eq!(m.epoch(), 0);
            assert!(*m.pool().arena() == arena_before);
            // And the maintainer still serves: retry converges.
            assert!(m.apply_epoch(&batch).unwrap().invalidated > 0);
        }
    }

    #[test]
    fn empty_epoch_commits_even_under_a_dead_budget() {
        use kboost_rrset::terminator::StopAtChunk;
        let mut m =
            PoolMaintainer::build(two_paths(), vec![NodeId(0)], quick_opts(500, 1)).unwrap();
        let mut log = MutationLog::new();
        let batch = log.seal_epoch(); // nothing to refresh
        let report = m.apply_epoch_within(&batch, &StopAtChunk(0)).unwrap();
        assert_eq!(report.invalidated, 0);
        assert_eq!(m.epoch(), 1);
    }

    #[test]
    fn cancelled_build_yields_a_usable_partial_pool() {
        use kboost_rrset::terminator::{SampleBudget, StopAtChunk};
        let opts = quick_opts(4_000, 2);
        let mut stages = 0u32;
        let m = PoolMaintainer::build_within(
            two_paths(),
            vec![NodeId(0)],
            opts,
            &SampleBudget(1_000),
            &mut |target, pool| {
                stages += 1;
                assert_eq!(target, 4_000);
                assert!(pool.total_samples() <= 4_000);
            },
        )
        .unwrap();
        assert!(stages >= 1, "progress callback fired");
        let got = m.pool().total_samples();
        assert!((1_000..4_000).contains(&got), "partial pool: {got} samples");
        assert!(m.pool().num_boostable() > 0);

        // The partial pool is a prefix of the full build: its arena
        // equals a direct one-shot build truncated to the same chunks.
        let mut prefix: SketchPool<PrrArenaShard> = SketchPool::with_epoch(opts.base_seed, 0, 2);
        let status = prefix.extend_to_within(
            &PrrFullSource::new(&two_paths(), &[NodeId(0)], opts.k),
            4_000,
            &StopAtChunk(got / kboost_rrset::CHUNK_SIZE),
        );
        assert_eq!(status, ExtendStatus::Interrupted);
        assert_eq!(prefix.total_samples(), got);
        let prefix_pool = PrrPool::new(prefix, 5, 2);
        assert!(*m.pool().arena() == *prefix_pool.arena());
    }

    #[test]
    fn panicked_build_is_a_typed_error() {
        use kboost_rrset::terminator::PanicAt;
        let err = PoolMaintainer::build_within(
            two_paths(),
            vec![NodeId(0)],
            quick_opts(2_000, 2),
            &PanicAt(1),
            &mut |_, _| {},
        )
        .err()
        .expect("build must surface the contained panic");
        assert_eq!(
            err,
            OnlineError::Interrupted {
                epoch: 0,
                cause: InterruptCause::Panicked
            }
        );
    }

    #[test]
    fn compact_threshold_zero_compacts_every_refresh() {
        let probs = EdgeProbs::new(0.0, 0.9).unwrap();
        let run = |threshold: f64| {
            let mut opts = quick_opts(1_500, 2);
            opts.compact_threshold = threshold;
            let mut m = PoolMaintainer::build(two_paths(), vec![NodeId(0)], opts).unwrap();
            let mut log = MutationLog::new();
            for i in 0..3u64 {
                log.set_probs(NodeId(0), NodeId(1 + (i % 2) as u32), probs);
                let report = m.apply_epoch(&log.seal_epoch()).unwrap();
                if threshold == 0.0 && report.invalidated > 0 {
                    assert!(report.compacted);
                    assert_eq!(report.dead_graphs, 0);
                }
            }
            m
        };
        let eager = run(0.0);
        let lazy = run(1.0);
        assert_eq!(eager.pool().arena().num_dead(), 0);
        // Identical live content regardless of compaction policy.
        assert!(eager.pool().arena().compacted() == lazy.pool().arena().compacted());
        assert_eq!(eager.pool().total_samples(), lazy.pool().total_samples());
        assert_eq!(
            eager.pool().delta_hat(&[NodeId(1), NodeId(2)]),
            lazy.pool().delta_hat(&[NodeId(1), NodeId(2)])
        );
    }

    /// Seed 0 → x (always live) → root (boost-only): phase-II merges `x`
    /// into the super-seed, so the stored node table retains neither
    /// endpoint of the live edge — the approximate rule's blind spot.
    fn compressed_away() -> DiGraph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 1.0, 1.0).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.0, 1.0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn exact_mode_detects_compressed_away_footprints() {
        let remove = Mutation::Remove {
            from: NodeId(0),
            to: NodeId(1),
        };
        let mut approx =
            PoolMaintainer::build(compressed_away(), vec![NodeId(0)], quick_opts(900, 2)).unwrap();
        let mut exact_opts = quick_opts(900, 2);
        exact_opts.staleness = Staleness::Exact;
        let mut exact =
            PoolMaintainer::build(compressed_away(), vec![NodeId(0)], exact_opts).unwrap();
        assert!(exact.pool().num_boostable() > 0, "degenerate pool");

        // The approximate rule sees only the node table {super, root}:
        // the mutated endpoints 0 and 1 appear in no retained table, so
        // nothing is detected — the documented under-detection.
        assert!(approx.stale_graphs(&[remove]).is_empty());
        assert!(approx.stale_empty_samples(&[remove]).is_empty());
        // The exact rule sees the footprint {x, root} of every stored
        // graph (x was expanded during phase I) and the footprint {x} of
        // every root-x activated sample.
        assert_eq!(
            exact.stale_graphs(&[remove]).len(),
            exact.pool().num_boostable()
        );
        assert!(!exact.stale_empty_samples(&[remove]).is_empty());

        // Applying the removal: with the live edge gone nothing reaches
        // the root, so the true Δ({root}) is 0. The exact pool refreshes
        // to that truth; the approximate pool keeps serving stale graphs.
        let mut log = MutationLog::new();
        log.remove_edge(NodeId(0), NodeId(1));
        let batch = log.seal_epoch();
        let report_a = approx.apply_epoch(&batch).unwrap();
        let report_e = exact.apply_epoch(&batch).unwrap();
        assert_eq!(report_a.invalidated, 0);
        assert!(report_e.invalidated > 0);
        assert!(report_e.invalidated_empty > 0);
        assert_eq!(
            report_e.invalidated,
            report_e.drawn_stored + report_e.drawn_empty
        );
        assert!(approx.pool().delta_hat(&[NodeId(2)]) > 0.0, "stale Δ̂ kept");
        assert_eq!(exact.pool().delta_hat(&[NodeId(2)]), 0.0);
        assert_eq!(exact.pool().total_samples(), 900);
    }

    #[test]
    fn exact_modes_match_their_replay_oracle() {
        for staleness in [
            Staleness::Exact,
            Staleness::ExactBloom { bits: 128 },
            Staleness::ExactCompressed,
            Staleness::ExactHybrid { bloom_above: 2 },
            Staleness::ExactTrace,
        ] {
            let mut opts = quick_opts(1_000, 3);
            opts.staleness = staleness;
            let g0 = two_paths();
            let mut m = PoolMaintainer::build(g0.clone(), vec![NodeId(0)], opts).unwrap();
            let mut log = MutationLog::new();
            log.set_probs(NodeId(0), NodeId(1), EdgeProbs::new(0.2, 0.8).unwrap());
            let b1 = log.seal_epoch();
            log.remove_edge(NodeId(2), NodeId(4));
            log.insert_edge(NodeId(4), NodeId(2), EdgeProbs::new(0.3, 0.6).unwrap());
            let b2 = log.seal_epoch();
            m.apply_epoch(&b1).unwrap();
            m.apply_epoch(&b2).unwrap();

            let (g_oracle, oracle) = rebuild_from_history(&g0, &[NodeId(0)], &opts, &[b1, b2]);
            assert_eq!(g_oracle.num_edges(), m.graph().num_edges());
            assert_eq!(oracle.total_samples(), m.pool().total_samples());
            assert_eq!(oracle.empty_samples(), m.pool().empty_samples());
            assert!(
                m.pool().arena().compacted() == *oracle.arena(),
                "arena (footprint columns included) diverged under {staleness:?}"
            );
            for set in [vec![NodeId(1)], vec![NodeId(2)], vec![NodeId(1), NodeId(2)]] {
                assert_eq!(m.pool().delta_hat(&set), oracle.delta_hat(&set));
                assert_eq!(m.pool().mu_hat(&set), oracle.mu_hat(&set));
            }
            assert_eq!(
                m.select(2),
                greedy_delta_selection(oracle.arena(), 5, 2, opts.threads)
            );
        }
    }

    #[test]
    fn trace_refresh_is_cancellable_and_rolls_back() {
        use kboost_rrset::terminator::StopAtChunk;
        let mut opts = quick_opts(1_500, 2);
        opts.staleness = Staleness::ExactTrace;
        let mut m = PoolMaintainer::build(two_paths(), vec![NodeId(0)], opts).unwrap();
        let mut log = MutationLog::new();
        log.remove_edge(NodeId(1), NodeId(3));
        let batch = log.seal_epoch();
        let arena_before = m.pool().arena().clone();

        // Stop before the first replay chunk: the epoch must roll back.
        assert_eq!(
            m.apply_epoch_within(&batch, &StopAtChunk(0)).unwrap_err(),
            OnlineError::Interrupted {
                epoch: 1,
                cause: InterruptCause::Cancelled
            }
        );
        assert_eq!(m.epoch(), 0);
        assert!(*m.pool().arena() == arena_before, "rollback must be exact");

        // Retrying the identical batch succeeds; totals stay balanced.
        let report = m.apply_epoch(&batch).unwrap();
        assert!(report.invalidated > 0);
        assert_eq!(report.invalidated, report.drawn_stored + report.drawn_empty);
        assert_eq!(m.pool().total_samples(), 1_500);
    }

    #[test]
    fn trace_replay_reuses_untouched_coins_across_thread_counts() {
        // The replayed pool is a deterministic function of the history —
        // never of the thread count — and refreshing an edge the trace
        // never queried must reproduce the sample verbatim, so a batch
        // touching only one path leaves the other path's graphs
        // byte-identical.
        let run = |threads: usize| {
            let mut opts = quick_opts(1_000, threads);
            opts.staleness = Staleness::ExactTrace;
            let mut m = PoolMaintainer::build(two_paths(), vec![NodeId(0)], opts).unwrap();
            let mut log = MutationLog::new();
            log.set_probs(NodeId(1), NodeId(3), EdgeProbs::new(0.5, 1.0).unwrap());
            m.apply_epoch(&log.seal_epoch()).unwrap();
            m
        };
        let a = run(1);
        let b = run(3);
        assert!(a.pool().arena().compacted() == b.pool().arena().compacted());
        assert_eq!(a.pool().total_samples(), b.pool().total_samples());
        assert_eq!(a.pool().empty_samples(), b.pool().empty_samples());
    }

    #[test]
    fn footprint_capture_leaves_sampling_streams_unchanged() {
        // Same seed, footprints on vs off: identical covers, counters and
        // stored-graph content — capture must consume no randomness.
        let opts_off = quick_opts(1_500, 2);
        let mut opts_on = opts_off;
        opts_on.staleness = Staleness::Exact;
        let off = PoolMaintainer::build(two_paths(), vec![NodeId(0)], opts_off).unwrap();
        let on = PoolMaintainer::build(two_paths(), vec![NodeId(0)], opts_on).unwrap();
        assert_eq!(off.pool().total_samples(), on.pool().total_samples());
        assert_eq!(off.pool().empty_samples(), on.pool().empty_samples());
        assert_eq!(off.pool().num_boostable(), on.pool().num_boostable());
        for set in [vec![NodeId(1)], vec![NodeId(2)], vec![NodeId(3), NodeId(4)]] {
            assert_eq!(off.pool().delta_hat(&set), on.pool().delta_hat(&set));
            assert_eq!(off.pool().mu_hat(&set), on.pool().mu_hat(&set));
        }
        assert_eq!(off.pool().arena().footprint_memory_bytes(), 0);
        assert!(on.pool().arena().footprint_memory_bytes() > 0);
        assert_eq!(
            on.pool().arena().num_empty_footprints() as u64,
            on.pool().empty_samples()
        );
    }

    #[test]
    fn matches_replay_oracle_on_a_small_history() {
        let opts = quick_opts(1_200, 3);
        let g0 = two_paths();
        let mut m = PoolMaintainer::build(g0.clone(), vec![NodeId(0)], opts).unwrap();
        let mut log = MutationLog::new();
        log.set_probs(NodeId(0), NodeId(1), EdgeProbs::new(0.2, 0.8).unwrap());
        let b1 = log.seal_epoch();
        log.remove_edge(NodeId(2), NodeId(4));
        log.insert_edge(NodeId(4), NodeId(2), EdgeProbs::new(0.3, 0.6).unwrap());
        let b2 = log.seal_epoch();
        m.apply_epoch(&b1).unwrap();
        m.apply_epoch(&b2).unwrap();

        let (g_oracle, oracle) = rebuild_from_history(&g0, &[NodeId(0)], &opts, &[b1, b2]);
        assert_eq!(g_oracle.num_edges(), m.graph().num_edges());
        assert_eq!(oracle.total_samples(), m.pool().total_samples());
        assert_eq!(oracle.empty_samples(), m.pool().empty_samples());
        assert!(m.pool().arena().compacted() == *oracle.arena());
        for set in [vec![NodeId(1)], vec![NodeId(2)], vec![NodeId(1), NodeId(2)]] {
            assert_eq!(m.pool().delta_hat(&set), oracle.delta_hat(&set));
            assert_eq!(m.pool().mu_hat(&set), oracle.mu_hat(&set));
        }
        assert_eq!(
            m.select(2),
            greedy_delta_selection(oracle.arena(), 5, 2, opts.threads)
        );
    }
}
