//! Graph mutations, batched into epochs.
//!
//! The node universe is fixed (`0..n`, as everywhere in the workspace);
//! mutations change the edge set and its probabilities. Semantics are
//! *total* — every mutation applies to every graph state:
//!
//! * [`Mutation::Upsert`] inserts the edge or overwrites its probability
//!   pair if it already exists (probability updates and edge insertions
//!   are the same operation on a probabilistic graph);
//! * [`Mutation::Remove`] deletes the edge, a no-op when absent.
//!
//! A [`MutationLog`] accumulates mutations and seals them into numbered
//! [`EpochBatch`]es; epoch numbers start at 1 because epoch 0 is the
//! initial pool build. [`apply_mutations`] is the pure graph-rebuild both
//! the incremental maintainer and the replay oracle share.

use std::collections::HashMap;

use kboost_graph::{DiGraph, EdgeProbs, GraphBuilder, NodeId};

use crate::error::MutationError;

/// One edge mutation. Construct via the [`MutationLog`] helpers or
/// directly; probability pairs are validated by [`EdgeProbs::new`] before
/// they can exist.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Mutation {
    /// Insert edge `(from, to)` with the given probabilities, or overwrite
    /// the pair if the edge exists.
    Upsert {
        /// Edge tail.
        from: NodeId,
        /// Edge head.
        to: NodeId,
        /// The new `(p, p')` pair.
        probs: EdgeProbs,
    },
    /// Remove edge `(from, to)`; no-op when absent.
    Remove {
        /// Edge tail.
        from: NodeId,
        /// Edge head.
        to: NodeId,
    },
}

impl Mutation {
    /// The two endpoints this mutation touches — the staleness footprint
    /// matched against stored node tables.
    pub fn endpoints(&self) -> (NodeId, NodeId) {
        match *self {
            Mutation::Upsert { from, to, .. } | Mutation::Remove { from, to } => (from, to),
        }
    }
}

/// A sealed batch of mutations forming one refresh epoch.
#[derive(Clone, Debug, PartialEq)]
pub struct EpochBatch {
    /// Epoch number (1-based: epoch 0 is the initial build).
    pub epoch: u64,
    /// The mutations, in arrival order (later entries win on conflicts).
    pub mutations: Vec<Mutation>,
}

/// Accumulates mutations between refreshes and seals them into epochs.
#[derive(Debug, Default)]
pub struct MutationLog {
    pending: Vec<Mutation>,
    sealed_epochs: u64,
}

impl MutationLog {
    /// An empty log; the first sealed batch will be epoch 1.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a probability update (or insertion) of edge `(from, to)`.
    pub fn set_probs(&mut self, from: NodeId, to: NodeId, probs: EdgeProbs) {
        self.pending.push(Mutation::Upsert { from, to, probs });
    }

    /// Records an edge insertion — the same operation as
    /// [`set_probs`](Self::set_probs), named for call-site clarity.
    pub fn insert_edge(&mut self, from: NodeId, to: NodeId, probs: EdgeProbs) {
        self.set_probs(from, to, probs);
    }

    /// Records an edge removal.
    pub fn remove_edge(&mut self, from: NodeId, to: NodeId) {
        self.pending.push(Mutation::Remove { from, to });
    }

    /// The pending (unsealed) mutations, in arrival order — e.g. for a
    /// [`stale_graphs`](crate::maintain::PoolMaintainer::stale_graphs)
    /// dry run before sealing.
    pub fn pending(&self) -> &[Mutation] {
        &self.pending
    }

    /// Number of pending (unsealed) mutations.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether no mutations are pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Number of epochs sealed so far.
    pub fn sealed_epochs(&self) -> u64 {
        self.sealed_epochs
    }

    /// Seals the pending mutations into the next epoch's batch (which may
    /// be empty — an epoch with nothing to refresh).
    pub fn seal_epoch(&mut self) -> EpochBatch {
        self.sealed_epochs += 1;
        EpochBatch {
            epoch: self.sealed_epochs,
            mutations: std::mem::take(&mut self.pending),
        }
    }
}

/// Ingress validation of a mutation batch against the fixed node
/// universe `0..n`: every endpoint must be in range and no mutation may
/// reference a self-loop (the same rules [`GraphBuilder`] enforces
/// everywhere). The first offending mutation is reported; a batch that
/// validates can never make [`apply_mutations`] fail.
pub fn validate_mutations(n: usize, batch: &[Mutation]) -> Result<(), MutationError> {
    for m in batch {
        let (from, to) = m.endpoints();
        for node in [from, to] {
            if node.index() >= n {
                return Err(MutationError::NodeOutOfRange { node, n });
            }
        }
        if from == to {
            return Err(MutationError::SelfLoop { node: from });
        }
    }
    Ok(())
}

/// Applies a mutation batch to a graph, producing the next epoch's graph.
///
/// Pure and deterministic: the result depends only on the input graph and
/// the batch (mutations apply in order; [`GraphBuilder`] canonicalizes the
/// edge order). Cost is `O(m + |batch|)` — the CSR is immutable, so an
/// epoch rebuilds it once, which is far below the resampling cost the
/// maintainer saves.
///
/// Malformed batches (out-of-range endpoints, self-loops) are rejected
/// with a typed [`MutationError`] by [`validate_mutations`] before the
/// edge set is touched — never a panic, so one bad mutation cannot take
/// down a serving maintainer.
pub fn apply_mutations(g: &DiGraph, batch: &[Mutation]) -> Result<DiGraph, MutationError> {
    validate_mutations(g.num_nodes(), batch)?;
    let mut edges: Vec<(NodeId, NodeId, EdgeProbs)> = g.edges().collect();
    let mut removed: Vec<bool> = vec![false; edges.len()];
    let mut index: HashMap<(u32, u32), usize> = edges
        .iter()
        .enumerate()
        .map(|(i, &(u, v, _))| ((u.0, v.0), i))
        .collect();

    for m in batch {
        match *m {
            Mutation::Upsert { from, to, probs } => match index.get(&(from.0, to.0)) {
                Some(&i) => {
                    edges[i].2 = probs;
                    removed[i] = false; // re-inserting a removed edge
                }
                None => {
                    index.insert((from.0, to.0), edges.len());
                    edges.push((from, to, probs));
                    removed.push(false);
                }
            },
            Mutation::Remove { from, to } => {
                if let Some(&i) = index.get(&(from.0, to.0)) {
                    removed[i] = true;
                }
            }
        }
    }

    let mut b = GraphBuilder::with_capacity(g.num_nodes(), edges.len());
    for (i, &(u, v, p)) in edges.iter().enumerate() {
        if !removed[i] {
            b.add_edge(u, v, p.base, p.boosted)
                .map_err(MutationError::Rebuild)?;
        }
    }
    b.build().map_err(MutationError::Rebuild)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probs(p: f64, pb: f64) -> EdgeProbs {
        EdgeProbs::new(p, pb).unwrap()
    }

    fn line() -> DiGraph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 0.2, 0.4).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.1, 0.2).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn log_seals_numbered_epochs() {
        let mut log = MutationLog::new();
        assert!(log.is_empty());
        log.set_probs(NodeId(0), NodeId(1), probs(0.3, 0.5));
        log.remove_edge(NodeId(1), NodeId(2));
        assert_eq!(log.len(), 2);
        let b1 = log.seal_epoch();
        assert_eq!(b1.epoch, 1);
        assert_eq!(b1.mutations.len(), 2);
        assert!(log.is_empty());
        let b2 = log.seal_epoch();
        assert_eq!(b2.epoch, 2);
        assert!(b2.mutations.is_empty());
        assert_eq!(log.sealed_epochs(), 2);
    }

    #[test]
    fn upsert_updates_and_inserts() {
        let g = apply_mutations(
            &line(),
            &[
                Mutation::Upsert {
                    from: NodeId(0),
                    to: NodeId(1),
                    probs: probs(0.5, 0.9),
                },
                Mutation::Upsert {
                    from: NodeId(2),
                    to: NodeId(3),
                    probs: probs(0.1, 0.3),
                },
            ],
        )
        .unwrap();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.edge(NodeId(0), NodeId(1)).unwrap(), probs(0.5, 0.9));
        assert_eq!(g.edge(NodeId(1), NodeId(2)).unwrap(), probs(0.1, 0.2));
        assert_eq!(g.edge(NodeId(2), NodeId(3)).unwrap(), probs(0.1, 0.3));
    }

    #[test]
    fn remove_is_total_and_reinsertable() {
        let batch = [
            Mutation::Remove {
                from: NodeId(0),
                to: NodeId(1),
            },
            Mutation::Remove {
                from: NodeId(3),
                to: NodeId(0), // absent: no-op
            },
            Mutation::Upsert {
                from: NodeId(0),
                to: NodeId(1), // re-insert after removal, new probs
                probs: probs(0.7, 0.8),
            },
        ];
        let g = apply_mutations(&line(), &batch).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edge(NodeId(0), NodeId(1)).unwrap(), probs(0.7, 0.8));

        // Dropping the re-insert removes the edge for good.
        let g = apply_mutations(&line(), &batch[..2]).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert!(!g.has_edge(NodeId(0), NodeId(1)));
    }

    #[test]
    fn upsert_then_remove_in_one_batch_removes() {
        // Last-write-wins *within* a batch: an Upsert followed by a
        // Remove of the same edge leaves the edge absent, whether the
        // edge pre-existed or was introduced by the Upsert itself.
        let batch = [
            Mutation::Upsert {
                from: NodeId(0),
                to: NodeId(1), // pre-existing edge: update, then drop
                probs: probs(0.9, 0.95),
            },
            Mutation::Remove {
                from: NodeId(0),
                to: NodeId(1),
            },
            Mutation::Upsert {
                from: NodeId(2),
                to: NodeId(3), // fresh edge: insert, then drop
                probs: probs(0.4, 0.8),
            },
            Mutation::Remove {
                from: NodeId(2),
                to: NodeId(3),
            },
        ];
        let g = apply_mutations(&line(), &batch).unwrap();
        assert!(!g.has_edge(NodeId(0), NodeId(1)));
        assert!(!g.has_edge(NodeId(2), NodeId(3)));
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn duplicate_edge_mutated_twice_in_one_epoch_is_last_write_wins() {
        // Remove → Upsert → Upsert on one edge within one sealed epoch:
        // the final Upsert's probabilities survive, and the intermediate
        // states are never observable (the epoch applies atomically).
        let mut log = MutationLog::new();
        log.remove_edge(NodeId(0), NodeId(1));
        log.set_probs(NodeId(0), NodeId(1), probs(0.3, 0.5));
        log.set_probs(NodeId(0), NodeId(1), probs(0.6, 0.9));
        let batch = log.seal_epoch();
        assert_eq!(batch.mutations.len(), 3, "no dedup: arrival order kept");
        let g = apply_mutations(&line(), &batch.mutations).unwrap();
        assert_eq!(g.edge(NodeId(0), NodeId(1)).unwrap(), probs(0.6, 0.9));
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn later_mutations_win() {
        let g = apply_mutations(
            &line(),
            &[
                Mutation::Upsert {
                    from: NodeId(0),
                    to: NodeId(1),
                    probs: probs(0.3, 0.4),
                },
                Mutation::Upsert {
                    from: NodeId(0),
                    to: NodeId(1),
                    probs: probs(0.6, 0.7),
                },
            ],
        )
        .unwrap();
        assert_eq!(g.edge(NodeId(0), NodeId(1)).unwrap(), probs(0.6, 0.7));
    }

    #[test]
    fn out_of_range_endpoint_is_a_typed_error() {
        // Either endpoint out of `0..n` is rejected at ingress — no panic.
        let bad_head = [Mutation::Upsert {
            from: NodeId(0),
            to: NodeId(9),
            probs: probs(0.1, 0.2),
        }];
        assert_eq!(
            apply_mutations(&line(), &bad_head).unwrap_err(),
            MutationError::NodeOutOfRange {
                node: NodeId(9),
                n: 4
            }
        );
        let bad_tail = [Mutation::Remove {
            from: NodeId(17),
            to: NodeId(0),
        }];
        assert_eq!(
            apply_mutations(&line(), &bad_tail).unwrap_err(),
            MutationError::NodeOutOfRange {
                node: NodeId(17),
                n: 4
            }
        );
    }

    #[test]
    fn self_loop_is_a_typed_error() {
        let batch = [Mutation::Upsert {
            from: NodeId(2),
            to: NodeId(2),
            probs: probs(0.1, 0.2),
        }];
        assert_eq!(
            apply_mutations(&line(), &batch).unwrap_err(),
            MutationError::SelfLoop { node: NodeId(2) }
        );
        // A self-loop *removal* is equally rejected: the edge cannot
        // exist, so the reference is a caller bug either way.
        let removal = [Mutation::Remove {
            from: NodeId(2),
            to: NodeId(2),
        }];
        assert!(validate_mutations(4, &removal).is_err());
    }

    #[test]
    fn invalid_mutation_anywhere_in_a_batch_rejects_the_whole_batch() {
        // Remove-then-upsert where the upsert is invalid: the valid
        // leading mutation must not be applied — all-or-nothing.
        let batch = [
            Mutation::Remove {
                from: NodeId(0),
                to: NodeId(1),
            },
            Mutation::Upsert {
                from: NodeId(3),
                to: NodeId(7), // out of range
                probs: probs(0.2, 0.4),
            },
        ];
        let g0 = line();
        assert!(apply_mutations(&g0, &batch).is_err());
        // The input graph is untouched by construction (apply_mutations
        // is pure), and validation alone flags the batch up front.
        assert!(g0.has_edge(NodeId(0), NodeId(1)));
        assert_eq!(
            validate_mutations(4, &batch).unwrap_err(),
            MutationError::NodeOutOfRange {
                node: NodeId(7),
                n: 4
            }
        );
    }

    #[test]
    fn endpoints_cover_both_variants() {
        let up = Mutation::Upsert {
            from: NodeId(3),
            to: NodeId(5),
            probs: probs(0.1, 0.2),
        };
        assert_eq!(up.endpoints(), (NodeId(3), NodeId(5)));
        let rm = Mutation::Remove {
            from: NodeId(5),
            to: NodeId(3),
        };
        assert_eq!(rm.endpoints(), (NodeId(5), NodeId(3)));
    }
}
