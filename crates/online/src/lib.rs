//! `kboost-online` — incremental PRR-pool maintenance for evolving graphs.
//!
//! The paper's pipeline builds the PRR-graph pool once for a frozen
//! network, but a production boost service faces a network that changes
//! continuously: edge probabilities re-learned from fresh action logs, new
//! follows, unfollows. Sampling dominates the pipeline's cost by four
//! orders of magnitude over selection (`BENCH_prr.json`), so rebuilding
//! the pool on every change is the one thing a live system cannot afford.
//! This crate keeps an existing pool *serving* while paying only for the
//! share of samples a change actually invalidates.
//!
//! * [`mutation`] — the [`MutationLog`](mutation::MutationLog): edge
//!   probability/boost updates, insertions and removals, batched into
//!   numbered epochs, plus the pure
//!   [`apply_mutations`](mutation::apply_mutations) graph rebuild.
//! * [`maintain`] — the [`PoolMaintainer`](maintain::PoolMaintainer):
//!   maps a mutation batch to the set of stale PRR-graphs through a
//!   node → graphs inverted index
//!   ([`NodeIndex`](kboost_prr::NodeIndex), shared with the greedy
//!   selection), tombstones them in the
//!   [`PrrArena`](kboost_prr::PrrArena), resamples exactly that share
//!   under the epoch-extended determinism contract, and compacts the
//!   arena when tombstones exceed a threshold. The naive
//!   [`rebuild_from_history`](maintain::rebuild_from_history) replay —
//!   legacy per-graph payloads, eager filtering, no tombstones, no
//!   index — is the equivalence oracle.
//!
//! # Determinism contract, extended
//!
//! Offline sampling seeds chunk `c` from `(base_seed, c)`. Online refresh
//! adds the epoch: the resampling of epoch `e` seeds its chunks from
//! `(base_seed, e, c)` (see
//! [`epoch_stream_seed`](kboost_rrset::sketch::epoch_stream_seed)), with
//! epoch 0 — the initial build — bit-identical to the offline stream.
//! Stale-set detection is a pure function of the live arena and the
//! batch, and chunk shards merge in chunk order, so the maintained pool
//! after any mutation history is **bit-identical for any thread count**,
//! and its compacted arena is **byte-equal** to the oracle's from-scratch
//! replay at the same epoch.
//!
//! # Staleness rule (and its limits)
//!
//! A stored sample is invalidated iff a mutated edge's endpoint appears in
//! its node table — the only footprint a compressed PRR-graph retains.
//! Samples whose phase-I exploration touched a mutated edge but kept
//! neither endpoint past compression, and empty (activated / hopeless)
//! samples, are *not* detected; their slots refresh only when a later
//! mutation touches them. This is the approximation the subsystem trades
//! for incremental cost — `exp_online` records the resulting `Δ̂` drift
//! against a true full rebuild alongside the speedup.

pub mod maintain;
pub mod mutation;

pub use maintain::{rebuild_from_history, EpochReport, MaintainerOptions, PoolMaintainer};
pub use mutation::{apply_mutations, EpochBatch, Mutation, MutationLog};
