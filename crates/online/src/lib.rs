//! `kboost-online` — incremental PRR-pool maintenance for evolving graphs.
//!
//! The paper's pipeline builds the PRR-graph pool once for a frozen
//! network, but a production boost service faces a network that changes
//! continuously: edge probabilities re-learned from fresh action logs, new
//! follows, unfollows. Sampling dominates the pipeline's cost by four
//! orders of magnitude over selection (`BENCH_prr.json`), so rebuilding
//! the pool on every change is the one thing a live system cannot afford.
//! This crate keeps an existing pool *serving* while paying only for the
//! share of samples a change actually invalidates.
//!
//! * [`mutation`] — the [`MutationLog`](mutation::MutationLog): edge
//!   probability/boost updates, insertions and removals, batched into
//!   numbered epochs, plus the pure
//!   [`apply_mutations`](mutation::apply_mutations) graph rebuild.
//! * [`maintain`] — the [`PoolMaintainer`](maintain::PoolMaintainer):
//!   maps a mutation batch to the set of stale PRR-graphs through a
//!   node → graphs inverted index
//!   ([`NodeIndex`](kboost_prr::NodeIndex), shared with the greedy
//!   selection), tombstones them in the
//!   [`PrrArena`](kboost_prr::PrrArena), resamples exactly that share
//!   under the epoch-extended determinism contract, and compacts the
//!   arena when tombstones exceed a threshold. The naive
//!   [`rebuild_from_history`](maintain::rebuild_from_history) replay —
//!   legacy per-graph payloads, eager filtering, no tombstones, no
//!   index — is the equivalence oracle.
//!
//! # Determinism contract, extended
//!
//! Offline sampling seeds chunk `c` from `(base_seed, c)`. Online refresh
//! adds the epoch: the resampling of epoch `e` seeds its chunks from
//! `(base_seed, e, c)` (see
//! [`epoch_stream_seed`](kboost_rrset::sketch::epoch_stream_seed)), with
//! epoch 0 — the initial build — bit-identical to the offline stream.
//! Stale-set detection is a pure function of the live arena and the
//! batch, and chunk shards merge in chunk order, so the maintained pool
//! after any mutation history is **bit-identical for any thread count**,
//! and its compacted arena is **byte-equal** to the oracle's from-scratch
//! replay at the same epoch.
//!
//! # Staleness rules
//!
//! [`Staleness`](maintain::Staleness) picks how stale samples are found:
//!
//! * **`Approximate`** (default, zero memory overhead) — a stored sample
//!   is invalidated iff a mutated edge's endpoint appears in its node
//!   table, the only footprint a compressed PRR-graph retains. This
//!   **under-detects**: samples whose phase-I exploration touched a
//!   mutated edge but kept neither endpoint past compression, and empty
//!   (activated / hopeless) samples, are never refreshed, so `Δ̂` drifts
//!   from a fresh pool's distribution as mutations accumulate
//!   (`exp_online` records the drift against the exact replay).
//! * **`Exact`** — sampling retains each sample's *edge-space footprint*
//!   (the sorted set of nodes whose in-edge lists phase I enumerated —
//!   see `kboost_prr::footprint`), for stored graphs **and** empty
//!   samples. A mutation of edge `(u, v)` invalidates exactly the
//!   samples whose footprint contains the head `v` — the samples whose
//!   generation actually queried the mutated slot. Retained samples are
//!   therefore bitwise what regeneration over the new graph would
//!   produce (`tests/online_pool.rs` proves it per sample), and
//!   `exp_online`'s recorded incremental-vs-rebuild drift is exactly
//!   zero. The cost is footprint memory, roughly proportional to the
//!   phase-I exploration size per sample.
//! * **`ExactBloom { bits }`** — the memory-bound tier: footprints are
//!   compressed to fixed-size bloom fingerprints. Never misses a stale
//!   sample, occasionally refreshes an unaffected one (a false positive
//!   costs one redundant resample, nothing more).
//! * **`ExactCompressed`** — the same never-miss/never-over-refresh
//!   verdicts as `Exact`, from delta-varint footprints interned through
//!   a per-column dictionary (identical footprints — which dominate at
//!   pool scale — are stored once). Strictly cheaper than sorted
//!   storage at scale, still fully decodable.
//! * **`ExactHybrid { bloom_above }`** — compressed storage for
//!   footprints up to `bloom_above` nodes, fixed 128-bit fingerprints
//!   for the heavy tail. Caps the per-sample cost of high-exploration
//!   samples (the tail owns most sorted bytes) at bloom-tier semantics:
//!   exact verdicts below the threshold, never-miss above it.
//! * **`ExactTrace`** — exact verdicts *plus conditional refresh*:
//!   phase I retains each sample's categorical coin outcomes alongside
//!   the footprint, and an invalidated sample is **replayed** — coins on
//!   unmutated in-edge slots are reused, only mutated slots redraw, each
//!   replay on its own `(base_seed, epoch, ordinal)` stream. By the
//!   principle of deferred decisions the replayed pool is **identical in
//!   distribution to a fresh pool over the mutated graph**, closing the
//!   redraw-conditioning caveat below.
//!
//! All rules are pure functions of the retained bytes and the batch, so
//! the bit-identity and `incremental == rebuild` byte-equality contracts
//! hold per mode.
//!
//! One statistical caveat is shared by every rule *except `ExactTrace`*:
//! invalidated slots are redrawn as *unconditioned* fresh samples, while
//! the invalidation event itself selects slots whose traces explored the
//! mutated region — a conditionally non-average population. Under a
//! redraw-mode rule the maintained pool is therefore not identical in
//! distribution to an independently sampled fresh pool (exact modes
//! remove the under-detection error, which dominates, but not this
//! redraw-conditioning effect). `tests/estimator_accuracy.rs` pins the
//! redraw-tier gap on a fixed history and asserts positively that
//! `ExactTrace`'s conditional replay stays inside the fresh-pool
//! confidence band on the same history, with zero replay drift.
//!
//! # Transactional epochs — the fault-tolerance contract
//!
//! Every epoch applies atomically, or not at all:
//!
//! * **Ingress validation.** [`validate_mutations`] rejects batches that
//!   reference out-of-universe nodes or self-loops with a typed
//!   [`MutationError`] before anything is touched; `apply_mutations`
//!   returns `Result` and never panics.
//! * **Compute-then-commit.**
//!   [`apply_epoch`](maintain::PoolMaintainer::apply_epoch) computes the
//!   mutated graph, stale sets, and the
//!   refresh pool against the *pre-epoch* state; only a fully sampled
//!   refresh is committed. A refresh that is cancelled by a
//!   [`Terminator`](kboost_rrset::Terminator) (see
//!   [`apply_epoch_within`](maintain::PoolMaintainer::apply_epoch_within))
//!   or that panics mid-sampling is contained (`catch_unwind`) and
//!   surfaced as [`OnlineError::Interrupted`]; the maintainer's graph,
//!   epoch counter, and arena are then **byte-identical** to their
//!   pre-epoch state, and the identical batch can be retried verbatim —
//!   the retry converges to the same bytes as an uninterrupted apply
//!   (fault-injection proptests in `tests/online_pool.rs` drive random
//!   mutation histories with cancellations and panics at random chunk
//!   boundaries and check both properties against the
//!   [`rebuild_from_history`] oracle).
//! * **Bounded builds.**
//!   [`build_within`](maintain::PoolMaintainer::build_within) polls its
//!   terminator at stage boundaries that are
//!   multiples of the chunk size, so a cancelled build yields a smaller
//!   pool that is a bit-identical prefix of the full build's stream.

pub mod error;
pub mod maintain;
pub mod mutation;

pub use error::{InterruptCause, MutationError, OnlineError};
pub use maintain::{
    rebuild_from_history, EpochReport, MaintainerOptions, PoolMaintainer, Staleness,
};
pub use mutation::{apply_mutations, validate_mutations, EpochBatch, Mutation, MutationLog};
