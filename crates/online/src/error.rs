//! Typed errors of the online subsystem — the "never panic mid-service"
//! contract.
//!
//! Ingress validation ([`validate_mutations`](crate::validate_mutations))
//! rejects malformed batches with a [`MutationError`] before anything is
//! touched; epoch application returns [`OnlineError`] for every failure
//! mode — bad batch, misconfigured staleness, out-of-order epoch, or an
//! interrupted/panicked refresh — and in each case the maintainer's state
//! (graph, epoch counter, arena bytes) is exactly what it was before the
//! call.

use std::fmt;

use kboost_graph::{BuildError, NodeId};

/// Why a mutation batch was rejected at ingress.
#[derive(Clone, Debug, PartialEq)]
pub enum MutationError {
    /// A mutation endpoint is outside the fixed node universe `0..n`.
    NodeOutOfRange {
        /// The offending endpoint.
        node: NodeId,
        /// The universe size.
        n: usize,
    },
    /// A mutation references the self-loop `(u, u)`, which the diffusion
    /// model has no use for and the graph builder rejects everywhere.
    SelfLoop {
        /// The looped node.
        node: NodeId,
    },
    /// Rebuilding the mutated edge set failed in the graph builder.
    /// Unreachable for batches that passed ingress validation (the
    /// remaining builder checks — probability ranges, duplicate edges —
    /// are enforced by construction of [`Mutation`](crate::Mutation)),
    /// kept typed so no path panics.
    Rebuild(BuildError),
}

impl fmt::Display for MutationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MutationError::NodeOutOfRange { node, n } => {
                write!(
                    f,
                    "mutation endpoint {node} out of range for graph with {n} nodes"
                )
            }
            MutationError::SelfLoop { node } => {
                write!(f, "mutation references self-loop on node {node}")
            }
            MutationError::Rebuild(e) => write!(f, "mutated edge set failed to rebuild: {e}"),
        }
    }
}

impl std::error::Error for MutationError {}

/// Why a refresh was interrupted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InterruptCause {
    /// A [`Terminator`](kboost_rrset::Terminator) stopped the refresh
    /// (deadline, budget, or cancel flag).
    Cancelled,
    /// A worker panicked mid-sampling; the panic was contained and the
    /// epoch rolled back.
    Panicked,
}

impl fmt::Display for InterruptCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            InterruptCause::Cancelled => "cancelled",
            InterruptCause::Panicked => "panicked",
        })
    }
}

/// A failure of the online maintenance path. Every variant leaves the
/// maintainer byte-identical to its pre-call state.
#[derive(Clone, Debug, PartialEq)]
pub enum OnlineError {
    /// The batch failed ingress validation; nothing was applied.
    Mutation(MutationError),
    /// The staleness rule's footprint parameters are invalid (an
    /// `ExactBloom` width that is not a power of two ≥ 64).
    Staleness {
        /// What is wrong with the configuration.
        message: String,
    },
    /// Epochs must apply contiguously (`expected = current + 1`), or the
    /// refresh seed streams would diverge from the replay oracle's.
    EpochOrder {
        /// The epoch the maintainer would accept next.
        expected: u64,
        /// The epoch the batch carried.
        got: u64,
    },
    /// The epoch's refresh sampling was cancelled or panicked; the pool
    /// was rolled back and the batch can be retried verbatim.
    Interrupted {
        /// The epoch whose refresh was interrupted.
        epoch: u64,
        /// Whether the refresh was cancelled or panicked.
        cause: InterruptCause,
    },
}

impl fmt::Display for OnlineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OnlineError::Mutation(e) => write!(f, "invalid mutation batch: {e}"),
            OnlineError::Staleness { message } => {
                write!(f, "invalid staleness configuration: {message}")
            }
            OnlineError::EpochOrder { expected, got } => write!(
                f,
                "epochs must be applied contiguously: expected epoch {expected}, got {got}"
            ),
            OnlineError::Interrupted { epoch, cause } => {
                write!(f, "epoch {epoch} refresh {cause}; pool rolled back")
            }
        }
    }
}

impl std::error::Error for OnlineError {}

impl From<MutationError> for OnlineError {
    fn from(e: MutationError) -> Self {
        OnlineError::Mutation(e)
    }
}
