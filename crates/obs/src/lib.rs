//! Zero-dependency observability for the kboost engine.
//!
//! This crate is vendored in the same spirit as the `vendor/` shims: the
//! build environment has no network access, so the usual metrics
//! ecosystems are out of reach. It provides the minimal surface the
//! serving engine needs to stop being a black box:
//!
//! * a [`Recorder`] trait — the sink interface every instrumented
//!   subsystem talks to — with a [`NoopRecorder`] default whose methods
//!   are empty and whose dispatch is skipped entirely by the [`Obs`]
//!   handle (detached handles hold no recorder at all, so the hot-loop
//!   cost of instrumentation-off is one predictable branch per chunk or
//!   stage, never per sample);
//! * lock-cheap [counters and gauges](MetricsRecorder): name lookup under
//!   an uncontended `RwLock` read, the update itself a relaxed atomic;
//! * fixed-bucket log-scaled [`Histogram`]s with nearest-rank
//!   [percentile](Histogram::percentile) readout, exact while the sample
//!   count still fits the raw-value reservoir;
//! * RAII [`SpanTimer`]s for nested stage timing (a span records its
//!   elapsed seconds into the histogram of the same name on drop);
//! * a structured event sink with a [JSON-lines
//!   exporter](MetricsRecorder::to_json_lines) so bench bins and the CLI
//!   can dump a snapshot.
//!
//! # The zero-randomness rule
//!
//! Instrumentation must never perturb what it observes. Every entry
//! point in this crate reads clocks and updates atomics — none consumes
//! randomness, and none feeds back into sampling decisions. Attaching a
//! recording sink to an engine therefore leaves every sampled byte,
//! every arena, and every selection bit-identical to the no-op run; the
//! determinism suites assert exactly that.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use kboost_obs::{MetricsRecorder, Obs, Recorder};
//!
//! let recorder = Arc::new(MetricsRecorder::new());
//! let obs = Obs::new(recorder.clone());
//! obs.counter_add("demo.items", 3);
//! {
//!     let _span = obs.span("demo.stage_secs");
//!     // ... timed work ...
//! }
//! let snap = recorder.snapshot();
//! assert_eq!(snap.counter("demo.items"), Some(3));
//! assert_eq!(snap.histogram("demo.stage_secs").unwrap().count, 1);
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod hist;
mod recorder;

pub use hist::{Histogram, HistogramSummary};
pub use recorder::{EventRecord, MetricsRecorder, MetricsSnapshot, NoopRecorder, Value};

use std::cell::Cell;
use std::sync::Arc;
use std::time::Instant;

/// The sink interface instrumented subsystems record into.
///
/// All methods take `&self` and must be cheap and non-blocking enough to
/// call from sampler worker threads; implementations are shared across
/// threads behind an [`Arc`]. Metric names are `&'static str` so the hot
/// path never allocates.
pub trait Recorder: Send + Sync {
    /// Adds `delta` to the named monotonic counter.
    fn counter_add(&self, name: &'static str, delta: u64);
    /// Sets the named gauge to `value` (last write wins).
    fn gauge_set(&self, name: &'static str, value: f64);
    /// Records one observation into the named histogram.
    fn observe(&self, name: &'static str, value: f64);
    /// Appends a structured event with the given fields.
    fn event(&self, name: &'static str, fields: &[(&'static str, Value)]);
    /// Returns a point-in-time snapshot of everything recorded so far.
    ///
    /// The default (used by [`NoopRecorder`] and custom sinks that do not
    /// aggregate) returns an empty snapshot.
    fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot::default()
    }
}

thread_local! {
    /// Current span nesting depth on this thread (enabled handles only).
    static SPAN_DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// Cheap cloneable handle the engine threads through its subsystems.
///
/// A detached handle ([`Obs::noop`], the default) holds no recorder: every
/// entry point is a single `None` check and the [`span`](Obs::span) guard
/// does not even read the clock. An attached handle forwards to its
/// [`Recorder`] behind an [`Arc`], so clones are reference-count bumps and
/// the handle crosses scoped-thread boundaries freely.
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Arc<dyn Recorder>>,
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.inner.is_some() {
            "Obs(recording)"
        } else {
            "Obs(noop)"
        })
    }
}

impl Obs {
    /// A detached handle: every operation is a no-op.
    pub fn noop() -> Self {
        Obs { inner: None }
    }

    /// A handle forwarding to `recorder`.
    pub fn new(recorder: Arc<dyn Recorder>) -> Self {
        Obs {
            inner: Some(recorder),
        }
    }

    /// `true` when a recorder is attached. Use to gate instrumentation
    /// whose *inputs* cost something (e.g. reading the clock per chunk).
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Adds `delta` to the named counter (no-op when detached).
    #[inline]
    pub fn counter_add(&self, name: &'static str, delta: u64) {
        if let Some(r) = &self.inner {
            r.counter_add(name, delta);
        }
    }

    /// Sets the named gauge (no-op when detached).
    #[inline]
    pub fn gauge_set(&self, name: &'static str, value: f64) {
        if let Some(r) = &self.inner {
            r.gauge_set(name, value);
        }
    }

    /// Records one histogram observation (no-op when detached).
    #[inline]
    pub fn observe(&self, name: &'static str, value: f64) {
        if let Some(r) = &self.inner {
            r.observe(name, value);
        }
    }

    /// Appends a structured event (no-op when detached).
    #[inline]
    pub fn event(&self, name: &'static str, fields: &[(&'static str, Value)]) {
        if let Some(r) = &self.inner {
            r.event(name, fields);
        }
    }

    /// Starts an RAII span timer. On drop the guard records the elapsed
    /// seconds into the histogram named `name`. Detached handles return
    /// an inert guard that never reads the clock.
    #[inline]
    pub fn span(&self, name: &'static str) -> SpanTimer<'_> {
        let start = if self.inner.is_some() {
            SPAN_DEPTH.with(|d| d.set(d.get() + 1));
            Some(Instant::now())
        } else {
            None
        };
        SpanTimer {
            obs: self,
            name,
            start,
        }
    }

    /// Snapshot of the attached recorder (empty when detached).
    pub fn snapshot(&self) -> MetricsSnapshot {
        match &self.inner {
            Some(r) => r.snapshot(),
            None => MetricsSnapshot::default(),
        }
    }

    /// Current span nesting depth on the calling thread. Only spans from
    /// attached handles count; detached spans are invisible.
    pub fn current_span_depth() -> u32 {
        SPAN_DEPTH.with(|d| d.get())
    }
}

/// RAII guard created by [`Obs::span`]: records elapsed wall-clock
/// seconds into the histogram of the same name when dropped.
///
/// Spans nest: guards created while another guard is live on the same
/// thread sit one level deeper (see [`Obs::current_span_depth`]), and a
/// parent's recorded duration is always ≥ any child's.
#[must_use = "a span records its duration when dropped; binding it to _ drops it immediately"]
pub struct SpanTimer<'a> {
    obs: &'a Obs,
    name: &'static str,
    start: Option<Instant>,
}

impl SpanTimer<'_> {
    /// Nesting depth of this span (1 = outermost). Inert guards from
    /// detached handles report 0.
    pub fn depth(&self) -> u32 {
        match self.start {
            Some(_) => Obs::current_span_depth(),
            None => 0,
        }
    }
}

impl Drop for SpanTimer<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            SPAN_DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
            self.obs.observe(self.name, start.elapsed().as_secs_f64());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_handle_records_nothing_and_reads_no_clock() {
        let obs = Obs::noop();
        assert!(!obs.is_enabled());
        obs.counter_add("x", 1);
        obs.gauge_set("y", 2.0);
        obs.observe("z", 3.0);
        obs.event("e", &[("k", Value::U64(1))]);
        let span = obs.span("s");
        assert!(span.start.is_none(), "detached span must not read clock");
        assert_eq!(span.depth(), 0);
        drop(span);
        assert_eq!(obs.snapshot().counters.len(), 0);
    }

    #[test]
    fn spans_nest_and_parent_dominates_child() {
        let rec = Arc::new(MetricsRecorder::new());
        let obs = Obs::new(rec.clone());
        {
            let outer = obs.span("outer_secs");
            assert_eq!(outer.depth(), 1);
            {
                let inner = obs.span("inner_secs");
                assert_eq!(inner.depth(), 2);
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            assert_eq!(Obs::current_span_depth(), 1);
        }
        assert_eq!(Obs::current_span_depth(), 0);
        let snap = rec.snapshot();
        let outer = snap.histogram("outer_secs").unwrap();
        let inner = snap.histogram("inner_secs").unwrap();
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        // Timing monotonicity: the parent encloses the child.
        assert!(outer.max >= inner.max, "outer {outer:?} < inner {inner:?}");
        assert!(inner.max >= 0.002, "child span missed the sleep: {inner:?}");
    }

    #[test]
    fn concurrent_counter_increments_sum_exactly() {
        let rec = Arc::new(MetricsRecorder::new());
        let obs = Obs::new(rec.clone());
        let threads = 8;
        let per_thread = 10_000u64;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let obs = obs.clone();
                s.spawn(move || {
                    for _ in 0..per_thread {
                        obs.counter_add("hits", 1);
                    }
                });
            }
        });
        assert_eq!(rec.snapshot().counter("hits"), Some(threads * per_thread));
    }
}
