//! Fixed-bucket log-scaled histogram with nearest-rank percentiles.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;

/// Sub-bucket resolution bits: 2^3 = 8 sub-buckets per octave, bounding
/// the relative error of bucket-resolution readout at 1/8 = 12.5%.
const SUB_BITS: u32 = 3;
const SUBBUCKETS: usize = 1 << SUB_BITS;
/// Smallest distinguished binary exponent: values below 2^-30 (~1 ns when
/// recording seconds) collapse into the first positive bucket.
const MIN_EXP: i32 = -30;
/// Largest distinguished binary exponent: values at or above 2^34
/// (~1.7e10) collapse into the top bucket.
const MAX_EXP: i32 = 33;
const OCTAVES: usize = (MAX_EXP - MIN_EXP + 1) as usize;
/// Bucket 0 holds zero and negative values; the rest are log-linear.
const NUM_BUCKETS: usize = 1 + OCTAVES * SUBBUCKETS;
/// Raw values are kept verbatim up to this count, making percentile
/// readout *exact* (not bucket-resolution) for small samples — the
/// regime bench publish latencies live in.
const RESERVOIR_CAP: usize = 512;

/// A concurrent, fixed-memory histogram of `f64` observations.
///
/// Layout: one zero-or-below bucket plus 8 log-linear sub-buckets per
/// binary octave over `[2^-30, 2^34)` — 505 atomic buckets, ~4 KiB, no
/// allocation after construction apart from the bounded raw-value
/// reservoir. Recording is lock-free (relaxed atomics) once the
/// reservoir is full.
///
/// Percentile readout is **nearest-rank**: the p-th percentile is the
/// smallest recorded value whose cumulative rank reaches `⌈p·N⌉`. While
/// all `N` observations still sit in the raw reservoir the result is
/// exact; beyond that it falls back to the lower bound of the bucket
/// containing the rank (≤ 12.5% below the true value). Rank `N` always
/// reports the exact tracked maximum.
///
/// Non-finite observations are ignored.
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    /// Sum of observations, stored as `f64` bits and updated by CAS.
    sum: AtomicU64,
    /// Min/max as `f64` bits (init +inf / -inf), updated by CAS.
    min: AtomicU64,
    max: AtomicU64,
    raw: Mutex<Vec<f64>>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0f64.to_bits()),
            min: AtomicU64::new(f64::INFINITY.to_bits()),
            max: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            raw: Mutex::new(Vec::new()),
        }
    }

    /// Bucket index for a finite value.
    fn index(v: f64) -> usize {
        if v <= 0.0 {
            return 0;
        }
        let bits = v.to_bits();
        let exp = ((bits >> 52) & 0x7ff) as i32 - 1023;
        if exp < MIN_EXP {
            return 1;
        }
        if exp > MAX_EXP {
            return NUM_BUCKETS - 1;
        }
        let sub = ((bits >> (52 - SUB_BITS)) & (SUBBUCKETS as u64 - 1)) as usize;
        1 + (exp - MIN_EXP) as usize * SUBBUCKETS + sub
    }

    /// Lower bound of bucket `i` — the representative reported when the
    /// raw reservoir no longer covers the full count.
    fn bucket_lower(i: usize) -> f64 {
        if i == 0 {
            return 0.0;
        }
        let o = (i - 1) / SUBBUCKETS;
        let s = (i - 1) % SUBBUCKETS;
        let base = (MIN_EXP + o as i32) as f64;
        base.exp2() * (1.0 + s as f64 / SUBBUCKETS as f64)
    }

    /// Records one observation. Ignores NaN and ±∞.
    pub fn record(&self, v: f64) {
        if !v.is_finite() {
            return;
        }
        self.buckets[Self::index(v)].fetch_add(1, Relaxed);
        let n = self.count.fetch_add(1, Relaxed);
        cas_update(&self.sum, |cur| Some(cur + v));
        cas_update(&self.min, |cur| (v < cur).then_some(v));
        cas_update(&self.max, |cur| (v > cur).then_some(v));
        if (n as usize) < RESERVOIR_CAP {
            let mut raw = self.raw.lock().unwrap();
            if raw.len() < RESERVOIR_CAP {
                raw.push(v);
            }
        }
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Sum of recorded observations (0 when empty).
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum.load(Relaxed))
    }

    /// Smallest recorded observation (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count() == 0 {
            return 0.0;
        }
        f64::from_bits(self.min.load(Relaxed))
    }

    /// Largest recorded observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count() == 0 {
            return 0.0;
        }
        f64::from_bits(self.max.load(Relaxed))
    }

    /// Nearest-rank percentile for `q ∈ [0, 1]` (e.g. `0.5` = median):
    /// the value at rank `⌈q·N⌉` (clamped to `[1, N]`) among the sorted
    /// observations. Returns 0 when empty. Exact while every observation
    /// is reservoir-resident; bucket lower bound beyond that.
    pub fn percentile(&self, q: f64) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        if rank == count {
            return self.max();
        }
        {
            let raw = self.raw.lock().unwrap();
            if raw.len() as u64 == count {
                let mut sorted = raw.clone();
                drop(raw);
                sorted.sort_by(f64::total_cmp);
                return sorted[(rank - 1) as usize];
            }
        }
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b.load(Relaxed);
            if cum >= rank {
                return if i == 0 {
                    self.min()
                } else {
                    Self::bucket_lower(i)
                };
            }
        }
        self.max()
    }

    /// Point-in-time summary (count, min/max/sum, p50/p90/p99).
    pub fn summary(&self, name: &str) -> HistogramSummary {
        HistogramSummary {
            name: name.to_string(),
            count: self.count(),
            min: self.min(),
            max: self.max(),
            sum: self.sum(),
            p50: self.percentile(0.50),
            p90: self.percentile(0.90),
            p99: self.percentile(0.99),
        }
    }
}

/// Retries a CAS loop over an `AtomicU64` holding `f64` bits; the closure
/// returns the new value or `None` to leave the cell untouched.
fn cas_update(cell: &AtomicU64, f: impl Fn(f64) -> Option<f64>) {
    let mut cur = cell.load(Relaxed);
    loop {
        let Some(next) = f(f64::from_bits(cur)) else {
            return;
        };
        match cell.compare_exchange_weak(cur, next.to_bits(), Relaxed, Relaxed) {
            Ok(_) => return,
            Err(c) => cur = c,
        }
    }
}

/// Point-in-time summary of one [`Histogram`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HistogramSummary {
    /// Metric name.
    pub name: String,
    /// Number of observations — emitted alongside every percentile so
    /// readers can judge the resolution (a p90 over 4 samples IS the max).
    pub count: u64,
    /// Smallest observation (exact).
    pub min: f64,
    /// Largest observation (exact).
    pub max: f64,
    /// Sum of observations.
    pub sum: f64,
    /// Nearest-rank 50th percentile.
    pub p50: f64,
    /// Nearest-rank 90th percentile.
    pub p90: f64,
    /// Nearest-rank 99th percentile.
    pub p99: f64,
}

impl HistogramSummary {
    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum / self.count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic LCG so the oracle comparison needs no RNG dep.
    fn lcg(state: &mut u64) -> f64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (*state >> 11) as f64 / (1u64 << 53) as f64
    }

    fn oracle_nearest_rank(values: &[f64], q: f64) -> f64 {
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len() as u64;
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        sorted[(rank - 1) as usize]
    }

    #[test]
    fn small_counts_match_sorted_vec_oracle_exactly() {
        // Everything reservoir-resident: percentiles must be bit-exact.
        let h = Histogram::new();
        let mut st = 42u64;
        let values: Vec<f64> = (0..RESERVOIR_CAP).map(|_| lcg(&mut st) * 1e3).collect();
        for &v in &values {
            h.record(v);
        }
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.percentile(q), oracle_nearest_rank(&values, q), "q={q}");
        }
        assert_eq!(h.count(), values.len() as u64);
        assert_eq!(h.max(), oracle_nearest_rank(&values, 1.0));
    }

    #[test]
    fn four_sample_p90_is_the_max_and_says_so() {
        // The exp_service regression: with 4 publishes p90 rank is
        // ceil(0.9*4) = 4 — the max. Honest, as long as count is emitted.
        let h = Histogram::new();
        for v in [1.0, 2.0, 3.0, 10.0] {
            h.record(v);
        }
        let s = h.summary("publish");
        assert_eq!(s.p90, 10.0);
        assert_eq!(s.p50, 2.0);
        assert_eq!(s.count, 4);
    }

    #[test]
    fn large_counts_stay_within_bucket_resolution_of_oracle() {
        let h = Histogram::new();
        let mut st = 7u64;
        // Log-uniform over ~9 orders of magnitude, far beyond the
        // reservoir, so readout is bucket-resolution.
        let values: Vec<f64> = (0..20_000)
            .map(|_| 10f64.powf(lcg(&mut st) * 9.0 - 6.0))
            .collect();
        for &v in &values {
            h.record(v);
        }
        for q in [0.1, 0.5, 0.9, 0.99] {
            let exact = oracle_nearest_rank(&values, q);
            let got = h.percentile(q);
            assert!(
                got <= exact && got >= exact * (1.0 - 1.0 / SUBBUCKETS as f64) * 0.999,
                "q={q}: got {got}, exact {exact}"
            );
        }
        assert_eq!(h.percentile(1.0), oracle_nearest_rank(&values, 1.0));
        let mean = h.sum() / h.count() as f64;
        let exact_mean = values.iter().sum::<f64>() / values.len() as f64;
        assert!((mean - exact_mean).abs() / exact_mean < 1e-9);
    }

    #[test]
    fn zero_negative_and_nonfinite_values() {
        let h = Histogram::new();
        h.record(0.0);
        h.record(-5.0);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 2, "non-finite must be ignored");
        assert_eq!(h.min(), -5.0);
        assert_eq!(h.percentile(0.5), -5.0);
        assert_eq!(h.percentile(1.0), 0.0);
    }

    #[test]
    fn integer_lags_report_exactly_even_past_the_reservoir() {
        // Epoch lags are small integers recorded many thousands of times;
        // 1.0 and 2.0 sit on bucket boundaries so even bucket-resolution
        // readout is exact for them.
        let h = Histogram::new();
        for i in 0..10_000u32 {
            h.record(f64::from(i % 3)); // 0,1,2 evenly
        }
        assert_eq!(h.percentile(0.33), 0.0);
        assert_eq!(h.percentile(0.5), 1.0);
        assert_eq!(h.percentile(0.9), 2.0);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Histogram::new());
        let threads = 8usize;
        let per = 5_000u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..per {
                        h.record((t as u64 * per + i) as f64);
                    }
                });
            }
        });
        assert_eq!(h.count(), threads as u64 * per);
        assert_eq!(h.max(), (threads as u64 * per - 1) as f64);
        assert_eq!(h.min(), 0.0);
    }
}
