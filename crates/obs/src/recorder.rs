//! Recorder implementations: the no-op default and the aggregating sink.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use crate::hist::{Histogram, HistogramSummary};
use crate::Recorder;

/// Bound on retained events; past it events are counted as dropped.
const EVENT_CAP: usize = 65_536;

/// A field value in a structured event.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Static string (no allocation on the recording path).
    Str(&'static str),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&'static str> for Value {
    fn from(v: &'static str) -> Self {
        Value::Str(v)
    }
}

/// One recorded structured event.
#[derive(Clone, Debug)]
pub struct EventRecord {
    /// Milliseconds since the recorder was created.
    pub t_ms: u64,
    /// Event name.
    pub name: &'static str,
    /// Field key/value pairs, in recording order.
    pub fields: Vec<(&'static str, Value)>,
}

/// The guaranteed-zero-cost default sink: every method is empty.
///
/// [`Obs`](crate::Obs) handles built without a recorder skip dispatch
/// entirely, so this type mostly exists to pass where an explicit
/// `Arc<dyn Recorder>` is required.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn counter_add(&self, _name: &'static str, _delta: u64) {}
    fn gauge_set(&self, _name: &'static str, _value: f64) {}
    fn observe(&self, _name: &'static str, _value: f64) {}
    fn event(&self, _name: &'static str, _fields: &[(&'static str, Value)]) {}
}

/// The aggregating sink: counters, gauges, histograms and a bounded
/// event log, all behind lock-cheap access paths.
///
/// Registered metrics are keyed by `&'static str`; lookup takes an
/// uncontended `RwLock` read and the update itself is a relaxed atomic
/// (counters/gauges) or a [`Histogram::record`]. First use of a name
/// takes the write lock once to register it.
pub struct MetricsRecorder {
    counters: RwLock<BTreeMap<&'static str, Arc<AtomicU64>>>,
    gauges: RwLock<BTreeMap<&'static str, Arc<AtomicU64>>>,
    histograms: RwLock<BTreeMap<&'static str, Arc<Histogram>>>,
    events: Mutex<Vec<EventRecord>>,
    dropped_events: AtomicU64,
    epoch: Instant,
}

impl Default for MetricsRecorder {
    fn default() -> Self {
        Self::new()
    }
}

/// Fetches (or registers) the named cell in a metric registry.
fn intern<T: Default>(reg: &RwLock<BTreeMap<&'static str, Arc<T>>>, name: &'static str) -> Arc<T> {
    if let Some(cell) = reg.read().unwrap().get(name) {
        return cell.clone();
    }
    reg.write().unwrap().entry(name).or_default().clone()
}

impl MetricsRecorder {
    /// Creates an empty recorder; event timestamps count from here.
    pub fn new() -> Self {
        MetricsRecorder {
            counters: RwLock::new(BTreeMap::new()),
            gauges: RwLock::new(BTreeMap::new()),
            histograms: RwLock::new(BTreeMap::new()),
            events: Mutex::new(Vec::new()),
            dropped_events: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }

    /// Direct handle to the named histogram (registering it if new), for
    /// callers that want [`Histogram::percentile`] readout beyond the
    /// snapshot summary.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        intern(&self.histograms, name)
    }

    /// Number of retained events.
    pub fn events_len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    /// Clones the retained events out of the sink.
    pub fn events(&self) -> Vec<EventRecord> {
        self.events.lock().unwrap().clone()
    }

    /// Serializes the full recorder state as JSON lines: one object per
    /// counter, gauge, histogram and event. Every line parses as a
    /// standalone JSON document with a `"type"` discriminator; histogram
    /// lines carry `count` next to each percentile so readers can judge
    /// resolution.
    pub fn to_json_lines(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::new();
        for (name, value) in &snap.counters {
            out.push_str(&format!(
                "{{\"type\":\"counter\",\"name\":{},\"value\":{}}}\n",
                json_str(name),
                value
            ));
        }
        for (name, value) in &snap.gauges {
            out.push_str(&format!(
                "{{\"type\":\"gauge\",\"name\":{},\"value\":{}}}\n",
                json_str(name),
                json_f64(*value)
            ));
        }
        for h in &snap.histograms {
            out.push_str(&format!(
                "{{\"type\":\"histogram\",\"name\":{},\"count\":{},\"min\":{},\"max\":{},\
                 \"sum\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}\n",
                json_str(&h.name),
                h.count,
                json_f64(h.min),
                json_f64(h.max),
                json_f64(h.sum),
                json_f64(h.p50),
                json_f64(h.p90),
                json_f64(h.p99)
            ));
        }
        for ev in self.events() {
            out.push_str(&format!(
                "{{\"type\":\"event\",\"name\":{},\"t_ms\":{},\"fields\":{{",
                json_str(ev.name),
                ev.t_ms
            ));
            for (i, (k, v)) in ev.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{}:{}", json_str(k), json_value(v)));
            }
            out.push_str("}}\n");
        }
        out
    }
}

impl Recorder for MetricsRecorder {
    fn counter_add(&self, name: &'static str, delta: u64) {
        intern(&self.counters, name).fetch_add(delta, Relaxed);
    }

    fn gauge_set(&self, name: &'static str, value: f64) {
        intern(&self.gauges, name).store(value.to_bits(), Relaxed);
    }

    fn observe(&self, name: &'static str, value: f64) {
        intern(&self.histograms, name).record(value);
    }

    fn event(&self, name: &'static str, fields: &[(&'static str, Value)]) {
        let t_ms = self.epoch.elapsed().as_millis() as u64;
        let mut events = self.events.lock().unwrap();
        if events.len() >= EVENT_CAP {
            drop(events);
            self.dropped_events.fetch_add(1, Relaxed);
            return;
        }
        events.push(EventRecord {
            t_ms,
            name,
            fields: fields.to_vec(),
        });
    }

    fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .read()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.to_string(), v.load(Relaxed)))
            .collect();
        let gauges = self
            .gauges
            .read()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.to_string(), f64::from_bits(v.load(Relaxed))))
            .collect();
        let histograms = self
            .histograms
            .read()
            .unwrap()
            .iter()
            .map(|(k, h)| h.summary(k))
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
            events: self.events_len() as u64,
            dropped_events: self.dropped_events.load(Relaxed),
        }
    }
}

/// Point-in-time copy of everything a [`MetricsRecorder`] aggregated.
///
/// Entries are sorted by name. Values recorded concurrently with the
/// snapshot may or may not be included (each metric is read atomically,
/// the set is not a global consistent cut).
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Summaries of every histogram, sorted by name.
    pub histograms: Vec<HistogramSummary>,
    /// Number of retained events at snapshot time.
    pub events: u64,
    /// Events dropped after the retention cap was hit.
    pub dropped_events: u64,
}

impl MetricsSnapshot {
    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Looks up a histogram summary by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

/// JSON string literal with escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number; non-finite values (never produced by the recorder's own
/// metrics, but possible through gauges) serialize as null.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

fn json_value(v: &Value) -> String {
    match v {
        Value::U64(x) => x.to_string(),
        Value::I64(x) => x.to_string(),
        Value::F64(x) => json_f64(*x),
        Value::Bool(x) => x.to_string(),
        Value::Str(s) => json_str(s),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms_round_trip_through_snapshot() {
        let rec = MetricsRecorder::new();
        rec.counter_add("a.count", 2);
        rec.counter_add("a.count", 3);
        rec.gauge_set("b.gauge", 1.5);
        rec.gauge_set("b.gauge", 2.5);
        rec.observe("c.hist", 10.0);
        rec.observe("c.hist", 20.0);
        rec.event("d.event", &[("k", Value::U64(7)), ("s", Value::Str("x"))]);

        let snap = rec.snapshot();
        assert_eq!(snap.counter("a.count"), Some(5));
        assert_eq!(snap.gauge("b.gauge"), Some(2.5));
        let h = snap.histogram("c.hist").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.min, 10.0);
        assert_eq!(h.max, 20.0);
        assert_eq!(snap.events, 1);
        assert_eq!(snap.dropped_events, 0);
    }

    #[test]
    fn json_lines_are_one_parseable_object_each() {
        let rec = MetricsRecorder::new();
        rec.counter_add("n", 1);
        rec.gauge_set("g", -0.25);
        rec.observe("h", 3.0);
        rec.event(
            "e",
            &[
                ("why", Value::Str("ro\"ll\\back")),
                ("ok", Value::Bool(true)),
            ],
        );
        let out = rec.to_json_lines();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        // Minimal structural checks without a JSON parser: balanced
        // braces, a type tag, and the escaped payload intact.
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"type\":\""), "{line}");
        }
        assert!(out.contains("\"why\":\"ro\\\"ll\\\\back\""), "{out}");
        assert!(out.contains("\"ok\":true"), "{out}");
        assert!(out.contains("\"p90\":3.0"), "{out}");
    }

    #[test]
    fn event_cap_counts_drops() {
        let rec = MetricsRecorder::new();
        for _ in 0..EVENT_CAP + 5 {
            rec.event("e", &[]);
        }
        assert_eq!(rec.events_len(), EVENT_CAP);
        assert_eq!(rec.snapshot().dropped_events, 5);
    }

    #[test]
    fn noop_recorder_snapshot_is_empty() {
        let rec = NoopRecorder;
        rec.counter_add("x", 1);
        let snap = rec.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.histograms.is_empty());
    }
}
