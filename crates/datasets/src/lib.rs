//! Synthetic stand-ins for the paper's four social networks.
//!
//! The real crawls (Digg, Flixster, Twitter, Flickr) with probabilities
//! learned from action logs are not available offline, so the experiment
//! harness substitutes preferential-attachment networks whose node/edge
//! counts and average influence probabilities are calibrated to Table 1:
//!
//! | dataset  | n     | m     | avg p |
//! |----------|-------|-------|-------|
//! | Digg     | 28K   | 200K  | 0.239 |
//! | Flixster | 96K   | 485K  | 0.228 |
//! | Twitter  | 323K  | 2.14M | 0.608 |
//! | Flickr   | 1.45M | 2.15M | 0.013 |
//!
//! Every algorithm under test touches the network only through its degree
//! structure and `(p, p')` values, so matching the degree tail and the
//! probability distribution reproduces the qualitative regimes the paper
//! reports (e.g. Flickr's tiny probabilities ⇒ tiny PRR-graphs, Twitter's
//! large ones ⇒ large boosts). Scales default to a laptop-friendly
//! fraction of the originals; `Scale::Full` restores paper sizes.

use kboost_graph::generators::preferential_attachment;
use kboost_graph::probability::{boost_probability, ProbabilityModel};
use kboost_graph::stats::largest_weakly_connected_component;
use kboost_graph::DiGraph;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Which of the paper's four networks to emulate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Digg-like: 28K nodes, 200K edges, avg p ≈ 0.239.
    Digg,
    /// Flixster-like: 96K nodes, 485K edges, avg p ≈ 0.228.
    Flixster,
    /// Twitter-like: 323K nodes, 2.14M edges, avg p ≈ 0.608.
    Twitter,
    /// Flickr-like: 1.45M nodes, 2.15M edges, avg p ≈ 0.013.
    Flickr,
}

/// All four datasets, in the paper's column order.
pub const ALL_DATASETS: [Dataset; 4] = [
    Dataset::Digg,
    Dataset::Flixster,
    Dataset::Twitter,
    Dataset::Flickr,
];

/// Generation scale.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Scale {
    /// Paper-size networks (up to 1.45M nodes — minutes to generate).
    Full,
    /// A fixed fraction of the paper size (e.g. `Fraction(0.1)`).
    Fraction(f64),
    /// Tiny versions for tests.
    Tiny,
}

impl Dataset {
    /// Paper name of the dataset.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Digg => "Digg",
            Dataset::Flixster => "Flixster",
            Dataset::Twitter => "Twitter",
            Dataset::Flickr => "Flickr",
        }
    }

    /// `(n, m, avg_p)` targets from Table 1.
    pub fn table1_targets(self) -> (usize, usize, f64) {
        match self {
            Dataset::Digg => (28_000, 200_000, 0.239),
            Dataset::Flixster => (96_000, 485_000, 0.228),
            Dataset::Twitter => (323_000, 2_140_000, 0.608),
            Dataset::Flickr => (1_450_000, 2_150_000, 0.013),
        }
    }

    /// Log-normal parameters calibrated so the mean base probability
    /// matches Table 1 while keeping the long-tailed shape of
    /// action-log-learned probabilities.
    fn probability_model(self) -> ProbabilityModel {
        // E[lognormal(mu, sigma)] = exp(mu + sigma²/2); cap at 1.
        match self {
            Dataset::Digg => ProbabilityModel::LogNormal {
                mu: -1.93,
                sigma: 1.0,
                cap: 1.0,
            },
            Dataset::Flixster => ProbabilityModel::LogNormal {
                mu: -1.98,
                sigma: 1.0,
                cap: 1.0,
            },
            // Twitter's learned probabilities are huge (mean 0.608): use a
            // tighter spread so the cap does not dominate.
            Dataset::Twitter => ProbabilityModel::LogNormal {
                mu: -0.55,
                sigma: 0.45,
                cap: 1.0,
            },
            Dataset::Flickr => ProbabilityModel::LogNormal {
                mu: -4.85,
                sigma: 1.0,
                cap: 1.0,
            },
        }
    }

    /// Generates the synthetic network at the given scale and boosting
    /// parameter β.
    pub fn generate(self, scale: Scale, beta: f64, seed: u64) -> DiGraph {
        let (n_full, m_full, _) = self.table1_targets();
        let factor = match scale {
            Scale::Full => 1.0,
            Scale::Fraction(f) => f,
            Scale::Tiny => 2_000.0 / n_full as f64,
        };
        let n = ((n_full as f64 * factor) as usize).max(500);
        let m = ((m_full as f64 * factor) as usize).max(2 * n);
        let out_per_node = (m / n).max(1);
        // Reciprocity tuned low; PA yields the heavy in-degree tail.
        let mut rng = SmallRng::seed_from_u64(seed ^ self as u64);
        let g = preferential_attachment(
            n,
            out_per_node,
            0.15,
            self.probability_model(),
            beta,
            &mut rng,
        );
        let (g, _) = largest_weakly_connected_component(&g);
        g
    }

    /// Re-applies the boosting parameter to an existing instance (for the
    /// β sweep of Figures 8–9).
    pub fn reboost(g: &DiGraph, beta: f64) -> DiGraph {
        g.map_probs(|_, _, p| {
            kboost_graph::EdgeProbs::new(p.base, boost_probability(p.base, beta))
                .expect("boosting keeps probabilities valid")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kboost_graph::stats::graph_stats;

    #[test]
    fn tiny_digg_matches_targets_roughly() {
        let g = Dataset::Digg.generate(Scale::Tiny, 2.0, 42);
        let s = graph_stats(&g);
        assert!(s.nodes >= 500, "n = {}", s.nodes);
        // Average probability within 35% of Table 1's 0.239.
        assert!(
            (s.avg_probability - 0.239).abs() < 0.239 * 0.35,
            "avg p = {}",
            s.avg_probability
        );
        // β = 2 ⇒ boosted mean strictly larger.
        assert!(s.avg_boosted_probability > s.avg_probability);
    }

    #[test]
    fn flickr_has_tiny_probabilities() {
        let g = Dataset::Flickr.generate(Scale::Tiny, 2.0, 42);
        let s = graph_stats(&g);
        assert!(s.avg_probability < 0.05, "avg p = {}", s.avg_probability);
    }

    #[test]
    fn twitter_has_large_probabilities() {
        let g = Dataset::Twitter.generate(Scale::Tiny, 2.0, 42);
        let s = graph_stats(&g);
        assert!(s.avg_probability > 0.4, "avg p = {}", s.avg_probability);
    }

    #[test]
    fn degree_tail_is_heavy() {
        let g = Dataset::Digg.generate(Scale::Tiny, 2.0, 7);
        let s = graph_stats(&g);
        let avg_in = s.edges as f64 / s.nodes as f64;
        assert!(
            s.max_in_degree as f64 > 8.0 * avg_in,
            "max in-degree {} vs avg {avg_in}",
            s.max_in_degree
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::Digg.generate(Scale::Tiny, 2.0, 5);
        let b = Dataset::Digg.generate(Scale::Tiny, 2.0, 5);
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(a.num_edges(), b.num_edges());
    }

    #[test]
    fn names_and_targets() {
        for d in ALL_DATASETS {
            assert!(!d.name().is_empty());
            let (n, m, p) = d.table1_targets();
            assert!(n > 0 && m > 0 && p > 0.0);
        }
    }
}
