//! Influence-diffusion simulators for the influence boosting model.
//!
//! The paper's Definition 1 extends the Independent Cascade (IC) model with
//! *boosted* nodes: an edge `(u, v)` fires with probability `p_uv`, unless
//! `v` is boosted, in which case it fires with probability `p'_uv ≥ p_uv`.
//! The boosted influence spread `σ_S(B)` is the expected number of nodes
//! activated from seed set `S` when `B` is boosted, and the *boost* is
//! `Δ_S(B) = σ_S(B) − σ_S(∅)`.
//!
//! This crate provides three evaluation paths:
//!
//! * [`sim`] — single coupled simulation runs. The same per-edge random
//!   draw decides both the base and the boosted world, so
//!   `Δ` estimates are low-variance (common random numbers).
//! * [`monte_carlo`] — multi-threaded Monte-Carlo estimation of `σ` and
//!   `Δ` (the paper evaluates every solution with 20 000 simulations).
//! * [`exact`] — exhaustive enumeration over deterministic graph outcomes,
//!   exponential in `m` and therefore only for small graphs; it is the test
//!   oracle used across the workspace.
//! * [`mu_model`] — the "at most one boost per activation chain" diffusion
//!   model that Section IV-C reverse-engineers from the submodular lower
//!   bound `µ`; simulating it cross-validates the PRR-graph critical-node
//!   machinery.

pub mod exact;
pub mod lt;
pub mod monte_carlo;
pub mod mu_model;
pub mod sim;

pub use monte_carlo::{estimate_boost, estimate_sigma, McConfig};
pub use sim::{BoostMask, CoupledRun};
