//! Single simulation runs of the influence boosting model.
//!
//! Two styles are offered:
//!
//! * [`simulate`] draws fresh coins from an [`Rng`] — the classic IC
//!   forward simulation, extended with the boost set.
//! * [`CoupledRun`] derives every edge's coin deterministically from a run
//!   seed, so the *same* randomness can be replayed with different boost
//!   sets. Because the boost `Δ_S(B)` is usually a small difference between
//!   two large quantities, this common-random-numbers coupling slashes the
//!   variance of Monte-Carlo `Δ` estimates.

use kboost_graph::{DiGraph, NodeId};
use rand::Rng;

/// A dense boolean membership mask over nodes, used for boost sets.
#[derive(Clone, Debug)]
pub struct BoostMask {
    bits: Vec<bool>,
}

impl BoostMask {
    /// An empty mask for a graph with `n` nodes.
    pub fn empty(n: usize) -> Self {
        BoostMask {
            bits: vec![false; n],
        }
    }

    /// Builds a mask from a list of boosted nodes.
    pub fn from_nodes(n: usize, nodes: &[NodeId]) -> Self {
        let mut mask = Self::empty(n);
        for &v in nodes {
            mask.bits[v.index()] = true;
        }
        mask
    }

    /// Whether `v` is boosted.
    #[inline]
    pub fn contains(&self, v: NodeId) -> bool {
        self.bits[v.index()]
    }

    /// Adds a node to the mask.
    pub fn insert(&mut self, v: NodeId) {
        self.bits[v.index()] = true;
    }

    /// Removes a node from the mask.
    pub fn remove(&mut self, v: NodeId) {
        self.bits[v.index()] = false;
    }

    /// Number of boosted nodes.
    pub fn len(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }

    /// Whether the mask is empty.
    pub fn is_empty(&self) -> bool {
        !self.bits.iter().any(|&b| b)
    }
}

/// Runs one forward IC simulation with boost set `boost`, returning the
/// number of activated nodes. Coins are drawn fresh from `rng`.
pub fn simulate<R: Rng + ?Sized>(
    g: &DiGraph,
    seeds: &[NodeId],
    boost: &BoostMask,
    rng: &mut R,
) -> usize {
    let mut active = vec![false; g.num_nodes()];
    let mut frontier: Vec<NodeId> = Vec::with_capacity(seeds.len());
    for &s in seeds {
        if !active[s.index()] {
            active[s.index()] = true;
            frontier.push(s);
        }
    }
    let mut count = frontier.len();
    while let Some(u) = frontier.pop() {
        for (v, p) in g.out_edges(u) {
            if active[v.index()] {
                continue;
            }
            let prob = p.for_boosted(boost.contains(v));
            if prob > 0.0 && rng.random::<f64>() < prob {
                active[v.index()] = true;
                count += 1;
                frontier.push(v);
            }
        }
    }
    count
}

/// SplitMix64 — a tiny, high-quality 64-bit mixer used to derive per-edge
/// coins from `(run_seed, edge_index)`.
#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Maps a `u64` to a double in `[0, 1)` using the top 53 bits.
#[inline]
fn to_unit(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A single simulation run with replayable randomness.
///
/// Every edge `e` gets the fixed coin `x_e = h(run_seed, e) ∈ [0,1)`. A
/// traversal then interprets `x_e < p` as "live" and `p ≤ x_e < p'` as
/// "live upon boosting the head" — exactly the three-way edge status used
/// by PRR-graphs (Definition 3), evaluated forward instead of backward.
#[derive(Clone, Copy, Debug)]
pub struct CoupledRun {
    seed: u64,
}

impl CoupledRun {
    /// Creates the run with the given seed.
    pub fn new(seed: u64) -> Self {
        CoupledRun { seed }
    }

    /// The coin for edge index `e`.
    #[inline]
    pub fn coin(&self, e: u32) -> f64 {
        to_unit(splitmix64(
            self.seed ^ (e as u64).wrapping_mul(0xA24B_AED4_963E_E407),
        ))
    }

    /// Number of nodes activated from `seeds` when `boost` is boosted,
    /// under this run's fixed coins.
    pub fn spread(&self, g: &DiGraph, seeds: &[NodeId], boost: &BoostMask) -> usize {
        let mut active = vec![false; g.num_nodes()];
        let mut frontier: Vec<NodeId> = Vec::with_capacity(seeds.len());
        for &s in seeds {
            if !active[s.index()] {
                active[s.index()] = true;
                frontier.push(s);
            }
        }
        let mut count = frontier.len();
        while let Some(u) = frontier.pop() {
            for (e, v, p) in g.out_edges_indexed(u) {
                if active[v.index()] {
                    continue;
                }
                let prob = p.for_boosted(boost.contains(v));
                if self.coin(e) < prob {
                    active[v.index()] = true;
                    count += 1;
                    frontier.push(v);
                }
            }
        }
        count
    }

    /// Returns `(base_spread, boosted_spread)` under the same coins.
    ///
    /// The base world's activated set is always a subset of the boosted
    /// world's, so `boosted − base` is a non-negative per-run boost sample.
    pub fn spread_pair(&self, g: &DiGraph, seeds: &[NodeId], boost: &BoostMask) -> (usize, usize) {
        let empty = BoostMask::empty(g.num_nodes());
        let base = self.spread(g, seeds, &empty);
        let boosted = self.spread(g, seeds, boost);
        (base, boosted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kboost_graph::GraphBuilder;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn figure1() -> DiGraph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 0.2, 0.4).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.1, 0.2).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn boost_mask_basics() {
        let mut m = BoostMask::from_nodes(5, &[NodeId(1), NodeId(3)]);
        assert!(m.contains(NodeId(1)));
        assert!(!m.contains(NodeId(0)));
        assert_eq!(m.len(), 2);
        m.remove(NodeId(1));
        m.insert(NodeId(4));
        assert_eq!(m.len(), 2);
        assert!(m.contains(NodeId(4)));
        assert!(!BoostMask::empty(3).contains(NodeId(2)));
        assert!(BoostMask::empty(3).is_empty());
    }

    #[test]
    fn seeds_always_active() {
        let g = figure1();
        let mut rng = SmallRng::seed_from_u64(1);
        let boost = BoostMask::empty(3);
        for _ in 0..20 {
            let spread = simulate(&g, &[NodeId(0)], &boost, &mut rng);
            assert!(spread >= 1);
            assert!(spread <= 3);
        }
    }

    #[test]
    fn deterministic_edges_spread_fully() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 1.0, 1.0).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 1.0, 1.0).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 1.0, 1.0).unwrap();
        let g = b.build().unwrap();
        let mut rng = SmallRng::seed_from_u64(2);
        let boost = BoostMask::empty(4);
        assert_eq!(simulate(&g, &[NodeId(0)], &boost, &mut rng), 4);
    }

    #[test]
    fn coupled_base_subset_of_boosted() {
        let g = figure1();
        let boost = BoostMask::from_nodes(3, &[NodeId(1), NodeId(2)]);
        for seed in 0..2000u64 {
            let run = CoupledRun::new(seed);
            let (base, boosted) = run.spread_pair(&g, &[NodeId(0)], &boost);
            assert!(
                boosted >= base,
                "seed {seed}: boosted {boosted} < base {base}"
            );
        }
    }

    #[test]
    fn coupled_runs_replayable() {
        let g = figure1();
        let boost = BoostMask::from_nodes(3, &[NodeId(1)]);
        let run = CoupledRun::new(42);
        let a = run.spread(&g, &[NodeId(0)], &boost);
        let b = run.spread(&g, &[NodeId(0)], &boost);
        assert_eq!(a, b);
    }

    #[test]
    fn coins_are_uniform_ish() {
        let run = CoupledRun::new(7);
        let n = 10_000u32;
        let mean: f64 = (0..n).map(|e| run.coin(e)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "coin mean {mean}");
        let below_quarter = (0..n).filter(|&e| run.coin(e) < 0.25).count();
        let frac = below_quarter as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "P[coin<0.25] ≈ {frac}");
    }

    #[test]
    fn duplicate_seeds_counted_once() {
        let g = figure1();
        let boost = BoostMask::empty(3);
        let run = CoupledRun::new(3);
        let s1 = run.spread(&g, &[NodeId(0), NodeId(0)], &boost);
        let s2 = run.spread(&g, &[NodeId(0)], &boost);
        assert_eq!(s1, s2);
    }
}
