//! Parallel Monte-Carlo estimation of `σ_S(B)` and `Δ_S(B)`.
//!
//! The paper evaluates every returned boost set with 20 000 Monte-Carlo
//! simulations; this module reproduces that evaluator. Runs are split
//! across threads with deterministic per-run seeds, so an estimate depends
//! only on `(seed, runs)` — not the thread count.

use kboost_graph::{DiGraph, NodeId};

use crate::sim::{BoostMask, CoupledRun};

/// Configuration for Monte-Carlo estimation.
#[derive(Clone, Copy, Debug)]
pub struct McConfig {
    /// Number of simulation runs (the paper uses 20 000).
    pub runs: u32,
    /// Worker thread count.
    pub threads: usize,
    /// Base seed; run `i` uses seed `base_seed + i`.
    pub seed: u64,
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig {
            runs: 20_000,
            threads: 8,
            seed: 0x5EED,
        }
    }
}

impl McConfig {
    /// A small-budget configuration for tests and quick experiments.
    pub fn quick(runs: u32, seed: u64) -> Self {
        McConfig {
            runs,
            threads: 4,
            seed,
        }
    }
}

fn run_range(cfg: &McConfig, worker: usize) -> std::ops::Range<u64> {
    let per = (cfg.runs as u64).div_ceil(cfg.threads as u64);
    let lo = per * worker as u64;
    let hi = (lo + per).min(cfg.runs as u64);
    lo..hi.max(lo)
}

/// Estimates the boosted influence spread `σ_S(B)`.
pub fn estimate_sigma(g: &DiGraph, seeds: &[NodeId], boost: &[NodeId], cfg: &McConfig) -> f64 {
    let mask = BoostMask::from_nodes(g.num_nodes(), boost);
    let total: u64 = parallel_sum(cfg, |run_id| {
        CoupledRun::new(cfg.seed.wrapping_add(run_id)).spread(g, seeds, &mask) as u64
    });
    total as f64 / cfg.runs.max(1) as f64
}

/// Estimates the boost `Δ_S(B)` with common random numbers: each run
/// evaluates the base and the boosted world under identical coins, so the
/// per-run difference is a non-negative low-variance sample of the boost.
pub fn estimate_boost(g: &DiGraph, seeds: &[NodeId], boost: &[NodeId], cfg: &McConfig) -> f64 {
    let mask = BoostMask::from_nodes(g.num_nodes(), boost);
    let total: u64 = parallel_sum(cfg, |run_id| {
        let run = CoupledRun::new(cfg.seed.wrapping_add(run_id));
        let (base, boosted) = run.spread_pair(g, seeds, &mask);
        (boosted - base) as u64
    });
    total as f64 / cfg.runs.max(1) as f64
}

/// Estimates `σ_S(B)` for several boost sets under *shared* coins, which
/// makes the comparison between solutions fair (the paper compares up to
/// six algorithms per figure).
pub fn estimate_sigma_many(
    g: &DiGraph,
    seeds: &[NodeId],
    boosts: &[Vec<NodeId>],
    cfg: &McConfig,
) -> Vec<f64> {
    boosts
        .iter()
        .map(|b| estimate_sigma(g, seeds, b, cfg))
        .collect()
}

fn parallel_sum(cfg: &McConfig, per_run: impl Fn(u64) -> u64 + Sync) -> u64 {
    if cfg.threads <= 1 || cfg.runs < 64 {
        return (0..cfg.runs as u64).map(&per_run).sum();
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.threads)
            .map(|w| {
                let range = run_range(cfg, w);
                let per_run = &per_run;
                scope.spawn(move || range.map(per_run).sum::<u64>())
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .sum()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{exact_boost, exact_sigma};
    use kboost_graph::GraphBuilder;

    fn figure1() -> DiGraph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 0.2, 0.4).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.1, 0.2).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn sigma_matches_exact() {
        let g = figure1();
        let s = [NodeId(0)];
        let cfg = McConfig {
            runs: 60_000,
            threads: 4,
            seed: 11,
        };
        let est = estimate_sigma(&g, &s, &[NodeId(1)], &cfg);
        let truth = exact_sigma(&g, &s, &[NodeId(1)]);
        assert!((est - truth).abs() < 0.01, "est {est} vs exact {truth}");
    }

    #[test]
    fn boost_matches_exact_with_low_variance() {
        let g = figure1();
        let s = [NodeId(0)];
        let cfg = McConfig {
            runs: 60_000,
            threads: 4,
            seed: 13,
        };
        let est = estimate_boost(&g, &s, &[NodeId(1), NodeId(2)], &cfg);
        let truth = exact_boost(&g, &s, &[NodeId(1), NodeId(2)]);
        assert!((est - truth).abs() < 0.01, "est {est} vs exact {truth}");
    }

    #[test]
    fn thread_count_does_not_change_estimate() {
        let g = figure1();
        let s = [NodeId(0)];
        let a = estimate_sigma(
            &g,
            &s,
            &[NodeId(1)],
            &McConfig {
                runs: 1000,
                threads: 1,
                seed: 5,
            },
        );
        let b = estimate_sigma(
            &g,
            &s,
            &[NodeId(1)],
            &McConfig {
                runs: 1000,
                threads: 7,
                seed: 5,
            },
        );
        assert_eq!(a, b);
    }

    #[test]
    fn many_evaluates_each_set() {
        let g = figure1();
        let s = [NodeId(0)];
        let cfg = McConfig::quick(2000, 3);
        let out = estimate_sigma_many(&g, &s, &[vec![], vec![NodeId(1)]], &cfg);
        assert_eq!(out.len(), 2);
        assert!(out[1] > out[0]);
    }

    #[test]
    fn zero_runs_is_finite() {
        let g = figure1();
        let cfg = McConfig {
            runs: 0,
            threads: 2,
            seed: 1,
        };
        let est = estimate_sigma(&g, &[NodeId(0)], &[], &cfg);
        assert_eq!(est, 0.0);
    }
}
