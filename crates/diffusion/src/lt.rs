//! The Linear Threshold (LT) model and a *boosted* LT extension.
//!
//! The paper's conclusion names "similar problems under other influence
//! diffusion models, for example the well-known Linear Threshold model" as
//! future work; this module provides that substrate.
//!
//! Classic LT: each node `v` draws a threshold `θ_v ~ U[0,1]`; `v`
//! activates once `Σ_{active in-neighbors u} w_uv ≥ θ_v`, where the
//! incoming weights satisfy `Σ_u w_uv ≤ 1`.
//!
//! **Boosted LT** (our extension, mirroring Definition 1): every edge
//! carries two weights `w_uv ≤ w'_uv`; a boosted node accumulates the
//! boosted weights on its incoming edges. To keep thresholds meaningful,
//! boosted incoming weights must also sum to at most 1 — the
//! [`lt_weights_from_probabilities`] helper rescales a `(p, p')` graph
//! accordingly (the standard weighted-cascade-style normalization).
//!
//! The triggering-set equivalence (Kempe et al. 2003) carries over: fixing
//! `θ_v` is equivalent to `v` picking at most one in-neighbor as its
//! "trigger" with probability `w_uv` (or `w'_uv` when boosted) — so LT
//! reachability arguments mirror the IC ones and the same RR-set/PRR-graph
//! machinery applies conceptually.

use kboost_graph::{DiGraph, GraphBuilder, NodeId};
use rand::Rng;

use crate::sim::BoostMask;

/// Rescales a `(p, p')` influence graph into valid LT weights: for every
/// node `v`, divides incoming weights by `max(1, Σ w'_uv)` so the boosted
/// weights sum to at most one (and the base weights, being smaller, do
/// too).
pub fn lt_weights_from_probabilities(g: &DiGraph) -> DiGraph {
    let n = g.num_nodes();
    let denom: Vec<f64> = (0..n)
        .map(|v| {
            let sum: f64 = g
                .in_edges(NodeId::from_index(v))
                .map(|(_, p)| p.boosted)
                .sum();
            sum.max(1.0)
        })
        .collect();
    let mut b = GraphBuilder::with_capacity(n, g.num_edges());
    for (u, v, p) in g.edges() {
        let d = denom[v.index()];
        b.add_edge(u, v, p.base / d, p.boosted / d)
            .expect("rescaled weights are valid probabilities");
    }
    b.build().expect("same topology builds")
}

/// Checks the LT weight constraint: boosted incoming weights sum to ≤ 1
/// for every node (within floating-point slack).
pub fn lt_weights_valid(g: &DiGraph) -> bool {
    g.nodes()
        .all(|v| g.in_edges(v).map(|(_, p)| p.boosted).sum::<f64>() <= 1.0 + 1e-9)
}

/// One forward simulation of (boosted) LT: returns the number of activated
/// nodes. Thresholds are drawn fresh from `rng`.
pub fn simulate_lt<R: Rng + ?Sized>(
    g: &DiGraph,
    seeds: &[NodeId],
    boost: &BoostMask,
    rng: &mut R,
) -> usize {
    debug_assert!(lt_weights_valid(g), "LT weights must sum to <= 1");
    let n = g.num_nodes();
    let mut threshold: Vec<f64> = (0..n).map(|_| rng.random::<f64>()).collect();
    let mut weight_in = vec![0.0f64; n];
    let mut active = vec![false; n];
    let mut frontier: Vec<NodeId> = Vec::new();
    for &s in seeds {
        if !active[s.index()] {
            active[s.index()] = true;
            frontier.push(s);
        }
    }
    // Make seeds self-consistent: their thresholds are irrelevant.
    for &s in seeds {
        threshold[s.index()] = f64::INFINITY;
    }
    let mut count = frontier.len();
    while let Some(u) = frontier.pop() {
        for (v, p) in g.out_edges(u) {
            if active[v.index()] {
                continue;
            }
            weight_in[v.index()] += p.for_boosted(boost.contains(v));
            if weight_in[v.index()] >= threshold[v.index()] {
                active[v.index()] = true;
                count += 1;
                frontier.push(v);
            }
        }
    }
    count
}

/// Monte-Carlo estimate of the boosted LT spread `σ^LT_S(B)`.
pub fn estimate_lt_sigma(
    g: &DiGraph,
    seeds: &[NodeId],
    boost: &[NodeId],
    runs: u32,
    seed: u64,
) -> f64 {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let mask = BoostMask::from_nodes(g.num_nodes(), boost);
    let mut total = 0u64;
    for i in 0..runs as u64 {
        let mut rng = SmallRng::seed_from_u64(seed.wrapping_add(i));
        total += simulate_lt(g, seeds, &mask, &mut rng) as u64;
    }
    total as f64 / runs.max(1) as f64
}

/// Exact boosted-LT spread by exhaustive enumeration over *trigger*
/// choices (Kempe et al.'s equivalence): each node independently picks
/// in-neighbor `u` as its trigger with probability `w^B_uv`, or nobody.
/// A node activates iff a trigger chain reaches a seed. Exponential —
/// test oracle only.
pub fn exact_lt_sigma(g: &DiGraph, seeds: &[NodeId], boost: &[NodeId]) -> f64 {
    let n = g.num_nodes();
    assert!(n <= 8, "exact LT enumeration needs n <= 8");
    let mask = BoostMask::from_nodes(n, boost);
    // Per node: list of (trigger, probability) with the "no trigger"
    // remainder.
    let choices: Vec<Vec<(Option<NodeId>, f64)>> = (0..n)
        .map(|v| {
            let vid = NodeId::from_index(v);
            let mut opts: Vec<(Option<NodeId>, f64)> = g
                .in_edges(vid)
                .map(|(u, p)| (Some(u), p.for_boosted(mask.contains(vid))))
                .collect();
            let rest: f64 = 1.0 - opts.iter().map(|&(_, p)| p).sum::<f64>();
            debug_assert!(rest >= -1e-9, "LT weights exceed 1");
            opts.push((None, rest.max(0.0)));
            opts
        })
        .collect();

    let mut total = 0.0;
    // Mixed-radix enumeration over trigger choices.
    let radices: Vec<usize> = choices.iter().map(Vec::len).collect();
    let combos: usize = radices.iter().product();
    let mut is_seed = vec![false; n];
    for &s in seeds {
        is_seed[s.index()] = true;
    }
    for mut code in 0..combos {
        let mut prob = 1.0;
        let mut trigger: Vec<Option<NodeId>> = Vec::with_capacity(n);
        for v in 0..n {
            let idx = code % radices[v];
            code /= radices[v];
            let (t, p) = choices[v][idx];
            prob *= p;
            trigger.push(t);
        }
        if prob == 0.0 {
            continue;
        }
        // v active iff following triggers reaches a seed (or v is a seed).
        let mut active_count = 0;
        for v in 0..n {
            let mut cur = v;
            let mut steps = 0;
            let activated = loop {
                if is_seed[cur] {
                    break true;
                }
                match trigger[cur] {
                    Some(t) => cur = t.index(),
                    None => break false,
                }
                steps += 1;
                if steps > n {
                    break false; // trigger cycle without a seed
                }
            };
            active_count += activated as usize;
        }
        total += prob * active_count as f64;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use kboost_graph::GraphBuilder;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn lt_path() -> DiGraph {
        // 0 -> 1 -> 2 with weights (0.3, 0.5) and (0.2, 0.4).
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 0.3, 0.5).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.2, 0.4).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn weights_validation_and_rescaling() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(2), 0.8, 0.9).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.5, 0.8).unwrap();
        let g = b.build().unwrap(); // boosted sum = 1.7 > 1
        assert!(!lt_weights_valid(&g));
        let g2 = lt_weights_from_probabilities(&g);
        assert!(lt_weights_valid(&g2));
        // Ratios preserved.
        let p = g2.edge(NodeId(0), NodeId(2)).unwrap();
        assert!((p.base / p.boosted - 0.8 / 0.9).abs() < 1e-12);
    }

    #[test]
    fn exact_lt_path_unboosted() {
        // Triggering sets on a path: σ = 1 + w01 + w01·w12.
        let g = lt_path();
        let sigma = exact_lt_sigma(&g, &[NodeId(0)], &[]);
        let expect = 1.0 + 0.3 + 0.3 * 0.2;
        assert!((sigma - expect).abs() < 1e-12, "σ = {sigma}");
    }

    #[test]
    fn exact_lt_boost_increases_spread() {
        let g = lt_path();
        let base = exact_lt_sigma(&g, &[NodeId(0)], &[]);
        let boosted = exact_lt_sigma(&g, &[NodeId(0)], &[NodeId(1)]);
        let expect = 1.0 + 0.5 + 0.5 * 0.2;
        assert!((boosted - expect).abs() < 1e-12, "σ_B = {boosted}");
        assert!(boosted > base);
    }

    #[test]
    fn simulation_matches_exact() {
        let g = lt_path();
        for boost in [vec![], vec![NodeId(1)], vec![NodeId(1), NodeId(2)]] {
            let sim = estimate_lt_sigma(&g, &[NodeId(0)], &boost, 200_000, 3);
            let truth = exact_lt_sigma(&g, &[NodeId(0)], &boost);
            assert!((sim - truth).abs() < 0.01, "B={boost:?}: {sim} vs {truth}");
        }
    }

    #[test]
    fn simulation_matches_exact_on_diamond() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 0.4, 0.6).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 0.3, 0.5).unwrap();
        b.add_edge(NodeId(1), NodeId(3), 0.3, 0.45).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 0.3, 0.45).unwrap();
        let g = b.build().unwrap();
        assert!(lt_weights_valid(&g));
        for boost in [vec![], vec![NodeId(3)], vec![NodeId(1), NodeId(3)]] {
            let sim = estimate_lt_sigma(&g, &[NodeId(0)], &boost, 200_000, 9);
            let truth = exact_lt_sigma(&g, &[NodeId(0)], &boost);
            assert!((sim - truth).abs() < 0.015, "B={boost:?}: {sim} vs {truth}");
        }
    }

    #[test]
    fn boosting_monotone_in_simulation() {
        let g = lt_path();
        let mut rng = SmallRng::seed_from_u64(5);
        let empty = BoostMask::empty(3);
        let full = BoostMask::from_nodes(3, &[NodeId(1), NodeId(2)]);
        let mut base = 0usize;
        let mut boosted = 0usize;
        for _ in 0..20_000 {
            base += simulate_lt(&g, &[NodeId(0)], &empty, &mut rng);
            boosted += simulate_lt(&g, &[NodeId(0)], &full, &mut rng);
        }
        assert!(boosted > base);
    }
}
