//! The lower-bound diffusion model of Section IV-C.
//!
//! The paper's submodular lower bound `µ(B)` of the boost `Δ_S(B)`
//! corresponds to a constrained diffusion: along any activation chain from
//! a seed, **at most one** edge may rely on boosting. Equivalently (fixing
//! the three-way edge statuses of Definition 3), a node `r` is activated
//! under boost set `B` iff there is a seed→`r` path whose edges are live,
//! except possibly a single live-upon-boost edge whose head is in `B`, and
//! `µ(B)` counts the activations that required that single boost edge.
//!
//! This module simulates that reachability directly with a 0-1 BFS, giving
//! an independent estimator of `µ(B)` used to cross-validate the PRR-graph
//! critical-node machinery (`µ(B) = n·E[f⁻_R(B)]`, Lemma 2).

use kboost_graph::{DiGraph, NodeId};

use crate::sim::{BoostMask, CoupledRun};

/// One coupled run of the lower-bound model: returns
/// `(live_reach, one_boost_reach)` — the number of nodes reachable with
/// zero boost edges, and with at most one boost edge whose head is in `B`.
///
/// The per-run `µ` sample is `one_boost_reach − live_reach`.
pub fn mu_spread_pair(
    g: &DiGraph,
    seeds: &[NodeId],
    boost: &BoostMask,
    run: CoupledRun,
) -> (usize, usize) {
    const INF: u8 = u8::MAX;
    let n = g.num_nodes();
    // dist[v] = minimum number of boost edges on any seed→v path
    // (capped at 2); 0-1 BFS with a double-ended queue.
    let mut dist = vec![INF; n];
    let mut deque = std::collections::VecDeque::with_capacity(seeds.len());
    for &s in seeds {
        if dist[s.index()] != 0 {
            dist[s.index()] = 0;
            deque.push_back((s, 0u8));
        }
    }
    while let Some((u, d)) = deque.pop_front() {
        if d > dist[u.index()] {
            continue;
        }
        for (e, v, p) in g.out_edges_indexed(u) {
            let coin = run.coin(e);
            let (w, usable) = if coin < p.base {
                (0u8, true)
            } else if coin < p.boosted && boost.contains(v) {
                (1u8, true)
            } else {
                (0, false)
            };
            if !usable {
                continue;
            }
            let nd = d.saturating_add(w);
            if nd > 1 {
                continue; // at most one boost edge per chain
            }
            if nd < dist[v.index()] {
                dist[v.index()] = nd;
                if w == 0 {
                    deque.push_front((v, nd));
                } else {
                    deque.push_back((v, nd));
                }
            }
        }
    }
    let live = dist.iter().filter(|&&d| d == 0).count();
    let one_boost = dist.iter().filter(|&&d| d <= 1).count();
    (live, one_boost)
}

/// Monte-Carlo estimate of `µ(B)` under the lower-bound model.
pub fn estimate_mu(g: &DiGraph, seeds: &[NodeId], boost: &[NodeId], runs: u32, seed: u64) -> f64 {
    let mask = BoostMask::from_nodes(g.num_nodes(), boost);
    let mut total = 0u64;
    for i in 0..runs as u64 {
        let (live, one) = mu_spread_pair(g, seeds, &mask, CoupledRun::new(seed.wrapping_add(i)));
        total += (one - live) as u64;
    }
    total as f64 / runs.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_boost;
    use kboost_graph::GraphBuilder;

    fn figure1() -> DiGraph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 0.2, 0.4).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.1, 0.2).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn mu_lower_bounds_delta_single_node() {
        // For |B| = 1 the µ-model and the true boost coincide on a path
        // graph where only one boost edge can ever be used.
        let g = figure1();
        let s = [NodeId(0)];
        let mu = estimate_mu(&g, &s, &[NodeId(1)], 200_000, 17);
        let delta = exact_boost(&g, &s, &[NodeId(1)]);
        assert!((mu - delta).abs() < 0.01, "µ {mu} vs Δ {delta}");
    }

    #[test]
    fn mu_strictly_below_delta_on_chain() {
        // Boosting both nodes of the chain: Δ uses two boost edges on one
        // path, µ may not — so µ < Δ.
        let g = figure1();
        let s = [NodeId(0)];
        let mu = estimate_mu(&g, &s, &[NodeId(1), NodeId(2)], 300_000, 19);
        let delta = exact_boost(&g, &s, &[NodeId(1), NodeId(2)]);
        assert!(mu <= delta + 0.005, "µ {mu} must lower-bound Δ {delta}");
        // Exact µ here: boost path s→v0 (0.4-0.2) then live v0→v1 … plus
        // live s→v0 then boost v0→v1. µ = (p'₀−p₀)(1+p₁) + p₀(p'₁−p₁)
        let exact_mu = (0.4 - 0.2) * (1.0 + 0.1) + 0.2 * (0.2 - 0.1);
        assert!((mu - exact_mu).abs() < 0.01, "µ {mu} vs exact {exact_mu}");
        assert!(exact_mu < delta);
    }

    #[test]
    fn empty_boost_set_gives_zero_mu() {
        let g = figure1();
        let mu = estimate_mu(&g, &[NodeId(0)], &[], 1000, 23);
        assert_eq!(mu, 0.0);
    }

    #[test]
    fn mu_monotone_in_b() {
        let g = figure1();
        let s = [NodeId(0)];
        let m1 = estimate_mu(&g, &s, &[NodeId(2)], 100_000, 29);
        let m2 = estimate_mu(&g, &s, &[NodeId(1), NodeId(2)], 100_000, 29);
        assert!(m2 >= m1 - 1e-9);
    }
}
