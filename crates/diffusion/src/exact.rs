//! Exact (exhaustive) evaluation of `σ_S(B)` and `Δ_S(B)`.
//!
//! Computing the boosted influence spread is #P-hard (Theorem 1), but for
//! small graphs we can enumerate every deterministic outcome. This module
//! is the test oracle for the whole workspace: simulators, PRR-graphs and
//! the tree algorithms are all validated against it.
//!
//! Two enumeration granularities are provided:
//!
//! * [`exact_sigma`] — per boost set `B`, enumerate the `2^m` live/blocked
//!   outcomes (edge `(u,v)` is live with probability `p` or `p'` depending
//!   on `v ∈ B`).
//! * [`for_each_deterministic_graph`] — enumerate the `3^m` three-way
//!   statuses of Definition 3 (live / live-upon-boost / blocked) with their
//!   probabilities, letting callers evaluate *any* functional of the
//!   sampled graph (e.g. PRR-graph quantities like `f_R` and critical
//!   sets) under the exact distribution.

use kboost_graph::{DiGraph, NodeId};

use crate::sim::BoostMask;

/// Three-way edge status from Definition 3.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EdgeStatus {
    /// Fires regardless of boosting (probability `p`).
    Live,
    /// Fires only if the head is boosted (probability `p' − p`).
    LiveUponBoost,
    /// Never fires (probability `1 − p'`).
    Blocked,
}

/// Exact expected influence spread `σ_S(B)` by exhaustive enumeration.
///
/// Runs in `O(2^m · (n + m))`; intended for graphs with at most ~20 edges.
///
/// # Panics
/// Panics if the graph has more than 25 edges (the enumeration would not
/// terminate in reasonable time).
pub fn exact_sigma(g: &DiGraph, seeds: &[NodeId], boost: &[NodeId]) -> f64 {
    let m = g.num_edges();
    assert!(m <= 25, "exact_sigma is exponential in m; got m = {m}");
    let mask = BoostMask::from_nodes(g.num_nodes(), boost);

    // Collect edges with their effective probability under `boost`.
    let edges: Vec<(NodeId, NodeId, f64)> = g
        .edges()
        .map(|(u, v, p)| (u, v, p.for_boosted(mask.contains(v))))
        .collect();

    let mut total = 0.0;
    for outcome in 0u32..(1u32 << m) {
        let mut prob = 1.0;
        for (i, &(_, _, p)) in edges.iter().enumerate() {
            let live = outcome >> i & 1 == 1;
            prob *= if live { p } else { 1.0 - p };
            if prob == 0.0 {
                break;
            }
        }
        if prob == 0.0 {
            continue;
        }
        let reach = count_reachable(
            g.num_nodes(),
            seeds,
            edges
                .iter()
                .enumerate()
                .filter_map(|(i, &(u, v, _))| (outcome >> i & 1 == 1).then_some((u, v))),
        );
        total += prob * reach as f64;
    }
    total
}

/// Exact boost of influence `Δ_S(B) = σ_S(B) − σ_S(∅)`.
pub fn exact_boost(g: &DiGraph, seeds: &[NodeId], boost: &[NodeId]) -> f64 {
    exact_sigma(g, seeds, boost) - exact_sigma(g, seeds, &[])
}

/// Enumerates every deterministic three-way outcome of the graph, invoking
/// `f(probability, statuses)` for each; `statuses[i]` is the status of the
/// edge with CSR index `i` (the order of [`DiGraph::edges`]).
///
/// # Panics
/// Panics if the graph has more than 16 edges (`3^16 ≈ 4.3e7`).
pub fn for_each_deterministic_graph(g: &DiGraph, mut f: impl FnMut(f64, &[EdgeStatus])) {
    let m = g.num_edges();
    assert!(m <= 16, "3^m enumeration needs m <= 16; got m = {m}");
    let probs: Vec<(f64, f64, f64)> = g
        .edges()
        .map(|(_, _, p)| (p.base, p.boosted - p.base, 1.0 - p.boosted))
        .collect();

    let mut statuses = vec![EdgeStatus::Blocked; m];
    let total = 3usize.pow(m as u32);
    for mut code in 0..total {
        let mut prob = 1.0;
        for i in 0..m {
            let digit = code % 3;
            code /= 3;
            let (pl, pb, pk) = probs[i];
            statuses[i] = match digit {
                0 => {
                    prob *= pl;
                    EdgeStatus::Live
                }
                1 => {
                    prob *= pb;
                    EdgeStatus::LiveUponBoost
                }
                _ => {
                    prob *= pk;
                    EdgeStatus::Blocked
                }
            };
            if prob == 0.0 {
                break;
            }
        }
        if prob > 0.0 {
            f(prob, &statuses);
        }
    }
}

/// Number of nodes reachable from `seeds` through the given directed edges.
pub fn count_reachable(
    n: usize,
    seeds: &[NodeId],
    live_edges: impl Iterator<Item = (NodeId, NodeId)>,
) -> usize {
    // Build a tiny adjacency list for this outcome.
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (u, v) in live_edges {
        adj[u.index()].push(v.0);
    }
    let mut seen = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    for &s in seeds {
        if !seen[s.index()] {
            seen[s.index()] = true;
            stack.push(s.0);
        }
    }
    let mut count = stack.len();
    while let Some(u) = stack.pop() {
        for &v in &adj[u as usize] {
            if !seen[v as usize] {
                seen[v as usize] = true;
                count += 1;
                stack.push(v);
            }
        }
    }
    count
}

/// Exact `σ_S(B)` computed through the `3^m` enumeration — slower than
/// [`exact_sigma`] but validates that the three-way status decomposition
/// is consistent with the two-way one.
pub fn exact_sigma_threeway(g: &DiGraph, seeds: &[NodeId], boost: &[NodeId]) -> f64 {
    let mask = BoostMask::from_nodes(g.num_nodes(), boost);
    let edges: Vec<(NodeId, NodeId)> = g.edges().map(|(u, v, _)| (u, v)).collect();
    let mut total = 0.0;
    for_each_deterministic_graph(g, |prob, statuses| {
        let reach = count_reachable(
            g.num_nodes(),
            seeds,
            edges.iter().enumerate().filter_map(|(i, &(u, v))| {
                let traversable = match statuses[i] {
                    EdgeStatus::Live => true,
                    EdgeStatus::LiveUponBoost => mask.contains(v),
                    EdgeStatus::Blocked => false,
                };
                traversable.then_some((u, v))
            }),
        );
        total += prob * reach as f64;
    });
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use kboost_graph::GraphBuilder;

    fn figure1() -> DiGraph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 0.2, 0.4).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.1, 0.2).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn figure1_numbers() {
        // The table in Figure 1: σ_S(∅)=1.22, boosts 0.22 / 0.02 / 0.26.
        let g = figure1();
        let s = [NodeId(0)];
        assert!((exact_sigma(&g, &s, &[]) - 1.22).abs() < 1e-12);
        assert!((exact_boost(&g, &s, &[NodeId(1)]) - 0.22).abs() < 1e-12);
        assert!((exact_boost(&g, &s, &[NodeId(2)]) - 0.02).abs() < 1e-12);
        assert!((exact_boost(&g, &s, &[NodeId(1), NodeId(2)]) - 0.26).abs() < 1e-12);
    }

    #[test]
    fn figure1_supermodular_pair() {
        // Section III-B: Δ({v0,v1}) − Δ({v0}) = 0.04 > Δ({v1}) − Δ(∅) = 0.02.
        let g = figure1();
        let s = [NodeId(0)];
        let d01 = exact_boost(&g, &s, &[NodeId(1), NodeId(2)]);
        let d0 = exact_boost(&g, &s, &[NodeId(1)]);
        let d1 = exact_boost(&g, &s, &[NodeId(2)]);
        assert!((d01 - d0 - 0.04).abs() < 1e-12);
        assert!((d1 - 0.02).abs() < 1e-12);
    }

    #[test]
    fn threeway_matches_twoway() {
        let g = figure1();
        let s = [NodeId(0)];
        for boost in [
            vec![],
            vec![NodeId(1)],
            vec![NodeId(2)],
            vec![NodeId(1), NodeId(2)],
        ] {
            let a = exact_sigma(&g, &s, &boost);
            let b = exact_sigma_threeway(&g, &s, &boost);
            assert!((a - b).abs() < 1e-12, "boost {boost:?}: {a} vs {b}");
        }
    }

    #[test]
    fn seed_in_boost_set_is_noop() {
        let g = figure1();
        let s = [NodeId(0)];
        // Boosting a seed changes nothing: its in-edges never matter.
        let a = exact_sigma(&g, &s, &[NodeId(0)]);
        let b = exact_sigma(&g, &s, &[]);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn diamond_graph_sigma() {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3 with p=0.5 everywhere.
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 0.5, 0.75).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 0.5, 0.75).unwrap();
        b.add_edge(NodeId(1), NodeId(3), 0.5, 0.75).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 0.5, 0.75).unwrap();
        let g = b.build().unwrap();
        // σ = 1 + 0.5 + 0.5 + P[3 active]; P[3] = 1-(1-0.25)^2 = 0.4375.
        let sigma = exact_sigma(&g, &[NodeId(0)], &[]);
        assert!((sigma - (1.0 + 0.5 + 0.5 + 0.4375)).abs() < 1e-12);
    }

    #[test]
    fn probabilities_sum_to_one_in_threeway() {
        let g = figure1();
        let mut total = 0.0;
        for_each_deterministic_graph(&g, |p, _| total += p);
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn boost_monotone_in_b() {
        let g = figure1();
        let s = [NodeId(0)];
        let d0 = exact_boost(&g, &s, &[]);
        let d1 = exact_boost(&g, &s, &[NodeId(1)]);
        let d12 = exact_boost(&g, &s, &[NodeId(1), NodeId(2)]);
        assert!(d0 <= d1 && d1 <= d12);
        assert_eq!(d0, 0.0);
    }

    #[test]
    fn count_reachable_handles_cycles() {
        let n = 3;
        let edges = [
            (NodeId(0), NodeId(1)),
            (NodeId(1), NodeId(2)),
            (NodeId(2), NodeId(0)),
        ];
        assert_eq!(count_reachable(n, &[NodeId(0)], edges.iter().copied()), 3);
        assert_eq!(count_reachable(n, &[], edges.iter().copied()), 0);
    }
}
