//! k-boosting on bidirected trees (Section VI of the paper).
//!
//! On trees the boosted influence spread becomes tractable:
//!
//! * [`tree`] — the bidirected-tree representation (each undirected edge
//!   carries an independent probability pair per direction) with a rooted
//!   traversal order.
//! * [`exact`] — the three-step linear-time computation of Lemmas 5–7:
//!   activation probabilities `ap_B(u)` and `ap_B(u\v)`, seeding gains
//!   `g_B(u\v)`, and `σ_S(B ∪ {u})` for *every* node `u` in one `O(n)`
//!   sweep.
//! * [`greedy`] — `Greedy-Boost`: `k` rounds of exact marginal evaluation,
//!   `O(kn)` total.
//! * [`dp`] — `DP-Boost`: the rounded dynamic program of Section VI-B and
//!   Appendix B (general trees), a fully polynomial-time approximation
//!   scheme returning a `(1 − ε)`-approximate boost set.
//! * [`brute`] — exhaustive optimum for small trees (test/benchmark
//!   oracle).

pub mod brute;
pub mod dp;
pub mod exact;
pub mod greedy;
pub mod tree;

pub use dp::{dp_boost, DpOutcome};
pub use exact::TreeState;
pub use greedy::{greedy_boost, GreedyOutcome};
pub use tree::{BidirectedTree, TreeError};
