//! Exhaustive optimum for the k-boosting problem on small trees.
//!
//! Enumerates every boost set of size ≤ k over the non-seed nodes and
//! scores it with the exact Lemma 5–7 computation. Exponential — strictly
//! a test / benchmark oracle (the problem is NP-hard, Theorem 1).

use kboost_graph::NodeId;

use crate::exact::tree_sigma;
use crate::tree::BidirectedTree;

/// The optimal boost set and its value.
#[derive(Clone, Debug)]
pub struct BruteOutcome {
    /// An optimal boost set (ties broken by enumeration order).
    pub boost_set: Vec<NodeId>,
    /// `σ_S(B*)`.
    pub sigma: f64,
    /// `Δ_S(B*)`.
    pub boost: f64,
}

/// Finds the exact optimum by enumeration.
///
/// # Panics
/// Panics if the tree has more than 24 non-seed nodes.
pub fn brute_force_optimum(tree: &BidirectedTree, k: usize) -> BruteOutcome {
    let candidates: Vec<u32> = (0..tree.num_nodes() as u32)
        .filter(|&v| !tree.is_seed(v))
        .collect();
    assert!(candidates.len() <= 24, "brute force is exponential");

    let sigma_empty = tree_sigma(tree, &[]);
    let mut best = BruteOutcome {
        boost_set: Vec::new(),
        sigma: sigma_empty,
        boost: 0.0,
    };

    for bits in 0u32..(1u32 << candidates.len()) {
        if (bits.count_ones() as usize) > k {
            continue;
        }
        let set: Vec<NodeId> = candidates
            .iter()
            .enumerate()
            .filter(|&(i, _)| bits >> i & 1 == 1)
            .map(|(_, &v)| NodeId(v))
            .collect();
        let sigma = tree_sigma(tree, &set);
        if sigma > best.sigma + 1e-15 {
            best = BruteOutcome {
                boost_set: set,
                sigma,
                boost: sigma - sigma_empty,
            };
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use kboost_graph::GraphBuilder;

    #[test]
    fn picks_obviously_best_node() {
        // Path s - a - b: boosting a (head of the seed edge) dominates.
        let mut b = GraphBuilder::new(3);
        b.add_bidirected_edge(NodeId(0), NodeId(1), 0.2, 0.6)
            .unwrap();
        b.add_bidirected_edge(NodeId(1), NodeId(2), 0.2, 0.6)
            .unwrap();
        let g = b.build().unwrap();
        let t = BidirectedTree::from_digraph(&g, &[NodeId(0)]).unwrap();
        let out = brute_force_optimum(&t, 1);
        assert_eq!(out.boost_set, vec![NodeId(1)]);
        assert!(out.boost > 0.0);
    }

    #[test]
    fn k_zero_returns_empty() {
        let mut b = GraphBuilder::new(2);
        b.add_bidirected_edge(NodeId(0), NodeId(1), 0.2, 0.6)
            .unwrap();
        let g = b.build().unwrap();
        let t = BidirectedTree::from_digraph(&g, &[NodeId(0)]).unwrap();
        let out = brute_force_optimum(&t, 0);
        assert!(out.boost_set.is_empty());
        assert_eq!(out.boost, 0.0);
    }
}
