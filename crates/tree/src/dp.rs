//! `DP-Boost` — the rounded dynamic program of Section VI-B / Appendix B.
//!
//! For every node `v` the DP computes `g'(v, κ, c, f)`: the maximum
//! (rounded-down) boost obtainable inside `v`'s subtree when `κ` nodes of
//! the subtree are boosted, `v`'s within-subtree activation probability is
//! `c`, and `v`'s parent is activated with probability `f` outside the
//! subtree. Probabilities are discretized to multiples of a rounding
//! parameter
//!
//! ```text
//! δ = ε·max(LB, 1) / (2·Σ_{u,v} p̄(u⇝v))
//! ```
//!
//! where `LB` is Greedy-Boost's value and `p̄(u⇝v)` upper-bounds the
//! boosted path probability (we use the all-edges-boosted product, a
//! conservative over-estimate of the paper's `p^(k)`). Every rounding is
//! *downward*, so the DP value never exceeds the true boost of the
//! returned set, and Theorem 4 gives `Δ(B̃) ≥ (1−ε)·Δ(B*)`.
//!
//! Nodes with `d ≥ 2` children are combined through the helper chain
//! `h(b, i, κ, x, z)` of Appendix B: `x` carries the activation
//! probability accumulated from the first `i` subtrees and `z` the (free,
//! later-resolved) activation arriving from the parent side and the
//! remaining subtrees; intermediate values are quantized at `δ/(d−1)` so
//! the per-node rounding error stays within `δ`. The paper's range
//! refinements are implemented: each node's `c`/`f` grid is restricted to
//! `[no-boost bound − slack, all-boost bound]`.

use std::collections::HashMap;

use kboost_graph::NodeId;

use crate::exact::{tree_sigma, TreeState};
use crate::greedy::greedy_boost;
use crate::tree::{BidirectedTree, NO_PARENT};

/// Result of a DP-Boost run.
#[derive(Clone, Debug)]
pub struct DpOutcome {
    /// The returned boost set `B̃` (at most `k` nodes).
    pub boost_set: Vec<NodeId>,
    /// The DP's internal (rounded-down) objective value; a lower bound on
    /// the exact boost of `boost_set`.
    pub dp_value: f64,
    /// The exact boost `Δ_S(B̃)`, recomputed with Lemmas 5–7.
    pub boost: f64,
    /// The rounding parameter δ used.
    pub delta: f64,
}

/// One node's value grid for `c` or `f`.
#[derive(Clone, Debug)]
enum Grid {
    /// A single exact value (seeds' `c = 1`, the root's `f = 0`,
    /// children-of-seeds' `f = 1`).
    Singleton(f64),
    /// Multiples of `unit`: indices `lo..=hi` holding `idx·unit`.
    Units { lo: u64, hi: u64, unit: f64 },
}

impl Grid {
    fn len(&self) -> usize {
        match *self {
            Grid::Singleton(_) => 1,
            Grid::Units { lo, hi, .. } => (hi - lo + 1) as usize,
        }
    }

    fn value(&self, idx: usize) -> f64 {
        match *self {
            Grid::Singleton(v) => v,
            Grid::Units { lo, unit, .. } => (lo + idx as u64) as f64 * unit,
        }
    }

    /// Index to *store* a computed probability `x` at (rounding down).
    /// `None` when `x` falls below the grid — the entry is dropped to keep
    /// the stored value a true lower bound.
    fn store_index(&self, x: f64) -> Option<usize> {
        match *self {
            Grid::Singleton(v) => (x >= v - 1e-9).then_some(0),
            Grid::Units { lo, hi, unit } => {
                let q = ((x / unit) + 1e-9).floor() as i64;
                if q < lo as i64 {
                    None
                } else {
                    Some(((q as u64).min(hi) - lo) as usize)
                }
            }
        }
    }

    /// Index to *query* at probability `x`: rounds down and clamps into the
    /// grid from above (querying at a smaller value is always sound).
    fn query_index(&self, x: f64) -> Option<usize> {
        self.store_index(x)
    }
}

/// Per-node DP table: `vals[(κ·|c| + ci)·|f| + fi]`.
struct Table {
    kmax: usize,
    c: Grid,
    f: Grid,
    vals: Vec<f64>,
    /// Backtrack record per cell: `(b, level-d x-key, level-d κ)` for
    /// non-seed internal nodes; unused elsewhere.
    choice: Vec<ChainRef>,
}

#[derive(Clone, Copy, PartialEq, Debug)]
enum ChainRef {
    None,
    /// Leaf cell (boost decision is implied by κ > 0).
    Leaf,
    /// Seed-knapsack cell (re-solved during backtracking).
    Seed,
    /// Non-seed internal: the winning `b` (whether `v` itself is boosted).
    Chain {
        b: bool,
    },
}

impl Table {
    fn new(kmax: usize, c: Grid, f: Grid) -> Self {
        let len = (kmax + 1) * c.len() * f.len();
        Table {
            kmax,
            c,
            f,
            vals: vec![f64::NEG_INFINITY; len],
            choice: vec![ChainRef::None; len],
        }
    }

    #[inline]
    fn idx(&self, k: usize, ci: usize, fi: usize) -> usize {
        (k * self.c.len() + ci) * self.f.len() + fi
    }

    #[inline]
    fn get(&self, k: usize, ci: usize, fi: usize) -> f64 {
        self.vals[self.idx(k, ci, fi)]
    }

    fn improve(&mut self, k: usize, ci: usize, fi: usize, val: f64, choice: ChainRef) {
        let i = self.idx(k, ci, fi);
        if val > self.vals[i] {
            self.vals[i] = val;
            self.choice[i] = choice;
        }
    }
}

/// Shared immutable context of one DP run.
struct Ctx<'t> {
    tree: &'t BidirectedTree,
    delta: f64,
    kmax: Vec<usize>,
    c_grid: Vec<Grid>,
    f_grid: Vec<Grid>,
    /// `ap_∅(v)` — unboosted activation in the full tree.
    ap_empty: Vec<f64>,
    /// `(cL, cU)` raw bounds per node (before slack).
    c_bounds: Vec<(f64, f64)>,
    /// `(fL, fU)` raw bounds per node.
    f_bounds: Vec<(f64, f64)>,
}

impl Ctx<'_> {
    /// `p^b_{u,v}` on the parent→v edge (0 for the root).
    fn parent_prob(&self, v: u32, b: bool) -> f64 {
        let p = self.tree.parent(v);
        if p == NO_PARENT {
            0.0
        } else {
            self.tree.edge(p, v).for_boosted(b)
        }
    }

    /// The per-node boost contribution
    /// `max{1 − (1−c)(1 − f·p^b_{u,v}) − ap_∅(v), 0}`.
    fn boost_term(&self, v: u32, b: bool, c: f64, f: f64) -> f64 {
        let p = self.parent_prob(v, b);
        (1.0 - (1.0 - c) * (1.0 - f * p) - self.ap_empty[v as usize]).max(0.0)
    }
}

/// Runs DP-Boost with accuracy ε, returning a `(1−ε)`-approximate boost
/// set (Theorems 3–4, assuming the optimal boost is at least one).
pub fn dp_boost(tree: &BidirectedTree, k: usize, eps: f64) -> DpOutcome {
    assert!(eps > 0.0, "epsilon must be positive");
    let n = tree.num_nodes();
    if k == 0 || n == 0 {
        return DpOutcome {
            boost_set: Vec::new(),
            dp_value: 0.0,
            boost: 0.0,
            delta: 0.0,
        };
    }

    // --- Rounding parameter (Algorithm 4, lines 1-2) --------------------
    let lb = greedy_boost(tree, k).boost;
    let denom = boosted_path_mass(tree);
    let delta = (eps * lb.max(1.0) / (2.0 * denom)).min(0.25);

    // --- Range refinements ----------------------------------------------
    let st_lo = TreeState::compute(tree, &[]);
    let all_non_seeds: Vec<NodeId> = (0..n as u32)
        .filter(|&v| !tree.is_seed(v))
        .map(NodeId)
        .collect();
    let st_hi = TreeState::compute(tree, &all_non_seeds);

    let (s_below, s_above) = rounding_slack_mass(tree);

    let mut c_grid = Vec::with_capacity(n);
    let mut f_grid = Vec::with_capacity(n);
    let mut c_bounds = Vec::with_capacity(n);
    let mut f_bounds = Vec::with_capacity(n);
    let max_q = (1.0 / delta).floor() as u64;
    for v in 0..n as u32 {
        let parent = tree.parent(v);
        // c bounds: activation of v within its own subtree.
        let (c_lo, c_hi) = if tree.is_seed(v) {
            (1.0, 1.0)
        } else if parent == NO_PARENT {
            (st_lo.ap(NodeId(v)), st_hi.ap(NodeId(v)))
        } else {
            (
                st_lo.ap_leave(NodeId(v), NodeId(parent)),
                st_hi.ap_leave(NodeId(v), NodeId(parent)),
            )
        };
        c_bounds.push((c_lo, c_hi));
        c_grid.push(if tree.is_seed(v) {
            Grid::Singleton(1.0)
        } else {
            let slack = 2.0 * delta * s_below[v as usize];
            let lo = (((c_lo - slack) / delta).floor().max(0.0) as u64).min(max_q);
            let hi = (((c_hi / delta).floor() as u64) + 1).min(max_q);
            Grid::Units {
                lo,
                hi: hi.max(lo),
                unit: delta,
            }
        });
        // f bounds: activation of the parent outside T_v.
        let (f_lo, f_hi) = if parent == NO_PARENT {
            (0.0, 0.0)
        } else if tree.is_seed(parent) {
            (1.0, 1.0)
        } else {
            (
                st_lo.ap_leave(NodeId(parent), NodeId(v)),
                st_hi.ap_leave(NodeId(parent), NodeId(v)),
            )
        };
        f_bounds.push((f_lo, f_hi));
        f_grid.push(if parent == NO_PARENT {
            Grid::Singleton(0.0)
        } else if tree.is_seed(parent) {
            Grid::Singleton(1.0)
        } else {
            let slack = 2.0 * delta * s_above[v as usize];
            let lo = (((f_lo - slack) / delta).floor().max(0.0) as u64).min(max_q);
            let hi = (((f_hi / delta).floor() as u64) + 1).min(max_q);
            Grid::Units {
                lo,
                hi: hi.max(lo),
                unit: delta,
            }
        });
    }

    let sizes = tree.subtree_sizes();
    let ctx = Ctx {
        tree,
        delta,
        kmax: sizes.iter().map(|&s| k.min(s as usize)).collect(),
        c_grid,
        f_grid,
        ap_empty: (0..n as u32).map(|v| st_lo.ap(NodeId(v))).collect(),
        c_bounds,
        f_bounds,
    };

    // --- Bottom-up tables -------------------------------------------------
    let mut tables: Vec<Option<Table>> = (0..n).map(|_| None).collect();
    for &v in tree.bfs_order().iter().rev() {
        let table = if tree.children(v).is_empty() {
            build_leaf(&ctx, v)
        } else if tree.is_seed(v) {
            build_seed(&ctx, v, &tables)
        } else {
            build_internal(&ctx, v, &tables, None)
        };
        tables[v as usize] = Some(table);
    }

    // --- Extract the answer at the root ----------------------------------
    let root_table = tables[0].as_ref().expect("root table");
    let mut best: Option<(f64, usize, usize)> = None; // (value, κ, ci)
    for kappa in 0..=root_table.kmax {
        for ci in 0..root_table.c.len() {
            let val = root_table.get(kappa, ci, 0);
            if val > f64::NEG_INFINITY && best.is_none_or(|(bv, _, _)| val > bv) {
                best = Some((val, kappa, ci));
            }
        }
    }
    let Some((dp_value, kappa, ci)) = best else {
        return DpOutcome {
            boost_set: Vec::new(),
            dp_value: 0.0,
            boost: 0.0,
            delta,
        };
    };

    let mut boost_set = Vec::new();
    backtrack(&ctx, &tables, 0, kappa, ci, 0, &mut boost_set);
    boost_set.sort_unstable();
    boost_set.dedup();
    debug_assert!(boost_set.len() <= k, "budget exceeded: {}", boost_set.len());

    let sigma_empty = tree_sigma(tree, &[]);
    let boost = tree_sigma(tree, &boost_set) - sigma_empty;
    DpOutcome {
        boost_set,
        dp_value: dp_value.max(0.0),
        boost,
        delta,
    }
}

/// `Σ_{u,v} Π p'` over all ordered pairs (including `u = v`, counted as 1):
/// a conservative upper bound on the paper's `Σ p^(k)(u⇝v)`.
fn boosted_path_mass(tree: &BidirectedTree) -> f64 {
    let n = tree.num_nodes();
    let mut total = 0.0;
    let mut stack: Vec<(u32, u32, f64)> = Vec::new();
    for src in 0..n as u32 {
        total += 1.0; // u = v
        stack.clear();
        stack.push((src, src, 1.0));
        while let Some((u, from, prod)) = stack.pop() {
            for nb in tree.neighbors(u) {
                if nb.id == from {
                    continue;
                }
                let p = prod * nb.out.boosted;
                if p > 1e-12 {
                    total += p;
                    stack.push((nb.id, u, p));
                }
            }
        }
    }
    total
}

/// Per-node rounding-error masses for the grid slack: `S_below[v]` bounds
/// `Σ_{x∈T_v} p*(x⇝v)` and `S_above[v]` bounds `Σ_{x∉T_v} p*(x⇝parent)`.
fn rounding_slack_mass(tree: &BidirectedTree) -> (Vec<f64>, Vec<f64>) {
    let n = tree.num_nodes();
    // Euler intervals for ancestry tests.
    let mut tin = vec![0u32; n];
    let mut tout = vec![0u32; n];
    let mut timer = 0u32;
    // Iterative DFS (enter/exit events).
    let mut stack: Vec<(u32, bool)> = vec![(0, false)];
    while let Some((u, exit)) = stack.pop() {
        if exit {
            tout[u as usize] = timer;
            continue;
        }
        tin[u as usize] = timer;
        timer += 1;
        stack.push((u, true));
        for &c in tree.children(u) {
            stack.push((c, false));
        }
    }
    let is_in_subtree =
        |x: u32, v: u32| tin[v as usize] <= tin[x as usize] && tin[x as usize] < tout[v as usize];

    let mut s_below = vec![0.0f64; n]; // Σ_{x∈Tv} p'(x⇝v)
    let mut a_total = vec![0.0f64; n]; // Σ_x p'(x⇝u)
    let mut walk: Vec<(u32, u32, f64)> = Vec::new();
    for src in 0..n as u32 {
        s_below[src as usize] += 1.0;
        a_total[src as usize] += 1.0;
        walk.clear();
        walk.push((src, src, 1.0));
        while let Some((u, from, prod)) = walk.pop() {
            for nb in tree.neighbors(u) {
                if nb.id == from {
                    continue;
                }
                let p = prod * nb.out.boosted;
                if p > 1e-12 {
                    a_total[nb.id as usize] += p;
                    if is_in_subtree(src, nb.id) {
                        s_below[nb.id as usize] += p;
                    }
                    walk.push((nb.id, u, p));
                }
            }
        }
    }
    // S_above[v] = A[parent] − p'_{v→parent} · S_below[v].
    let mut s_above = vec![0.0f64; n];
    for v in 1..n as u32 {
        let parent = tree.parent(v);
        let p_up = tree.edge(v, parent).boosted;
        s_above[v as usize] = (a_total[parent as usize] - p_up * s_below[v as usize]).max(0.0);
    }
    (s_below, s_above)
}

// --------------------------------------------------------------------------
// Table construction
// --------------------------------------------------------------------------

fn build_leaf(ctx: &Ctx<'_>, v: u32) -> Table {
    let mut t = Table::new(
        ctx.kmax[v as usize],
        ctx.c_grid[v as usize].clone(),
        ctx.f_grid[v as usize].clone(),
    );
    let c_val = if ctx.tree.is_seed(v) { 1.0 } else { 0.0 };
    let ci = t.c.store_index(c_val).expect("leaf c value in grid");
    for kappa in 0..=t.kmax {
        let b = kappa > 0 && !ctx.tree.is_seed(v);
        for fi in 0..t.f.len() {
            let f = t.f.value(fi);
            let val = ctx.boost_term(v, b, c_val, f);
            t.improve(kappa, ci, fi, val, ChainRef::Leaf);
        }
    }
    t
}

/// Internal seed node: knapsack over children with `f_child = 1`
/// (Algorithm 5). Returns the per-(i, κ) choices when `record` is set.
/// Per-budget `(κ_child, ci_child)` picks of one knapsack step.
type KnapsackChoices = Vec<Option<(usize, usize)>>;

#[allow(clippy::needless_range_loop)]
fn seed_knapsack(
    ctx: &Ctx<'_>,
    v: u32,
    tables: &[Option<Table>],
    record: bool,
) -> (Vec<f64>, Vec<KnapsackChoices>) {
    let children = ctx.tree.children(v);
    let kmax = ctx.kmax[v as usize];
    // maxg[child][κc] = best over ci of child's value at f = 1.
    let mut h = vec![f64::NEG_INFINITY; kmax + 1];
    h[0] = 0.0;
    // choices[i][κ] = (κ_child, ci_child) chosen at step i for budget κ.
    let mut choices: Vec<KnapsackChoices> = Vec::new();
    for &c in children {
        let ct = tables[c as usize].as_ref().expect("child table");
        let fi = 0; // child's f-grid is Singleton(1.0)
        debug_assert_eq!(ct.f.len(), 1);
        let mut maxg = vec![(f64::NEG_INFINITY, 0usize); ct.kmax + 1];
        for kc in 0..=ct.kmax {
            for ci in 0..ct.c.len() {
                let val = ct.get(kc, ci, fi);
                if val > maxg[kc].0 {
                    maxg[kc] = (val, ci);
                }
            }
        }
        let mut next = vec![f64::NEG_INFINITY; kmax + 1];
        let mut choice = vec![None; kmax + 1];
        for kappa in 0..=kmax {
            for kc in 0..=ct.kmax.min(kappa) {
                if h[kappa - kc] == f64::NEG_INFINITY || maxg[kc].0 == f64::NEG_INFINITY {
                    continue;
                }
                let val = h[kappa - kc] + maxg[kc].0;
                if val > next[kappa] {
                    next[kappa] = val;
                    choice[kappa] = Some((kc, maxg[kc].1));
                }
            }
        }
        h = next;
        if record {
            choices.push(choice);
        }
    }
    (h, choices)
}

fn build_seed(ctx: &Ctx<'_>, v: u32, tables: &[Option<Table>]) -> Table {
    let (h, _) = seed_knapsack(ctx, v, tables, false);
    let mut t = Table::new(
        ctx.kmax[v as usize],
        ctx.c_grid[v as usize].clone(),
        ctx.f_grid[v as usize].clone(),
    );
    debug_assert_eq!(t.c.len(), 1); // Singleton(1.0)
    for (kappa, &hval) in h.iter().enumerate().take(t.kmax + 1) {
        if hval == f64::NEG_INFINITY {
            continue;
        }
        for fi in 0..t.f.len() {
            t.improve(kappa, 0, fi, hval, ChainRef::Seed);
        }
    }
    t
}

/// Key of a helper-chain entry at one level: `(κ, x-quantum)`.
type ChainKey = (u32, u64);
/// One level of the helper chain: `z-quantum → (κ, x) → value`.
type Level = HashMap<u64, HashMap<ChainKey, f64>>;
/// Provenance of a chain entry for backtracking:
/// `(z_prev, κ_prev, x_prev, κ_child, ci_child, fi_child)`.
type Prov = HashMap<(usize, u64, u32, u64), (u64, u32, u64, usize, usize, usize)>;

/// z-grid of level `i` (1-based, `i < d`): range of the activation arriving
/// from the parent side plus subtrees `> i`, at resolution `unit`.
fn z_grid(ctx: &Ctx<'_>, v: u32, i: usize, b: bool, unit: f64) -> Grid {
    let children = ctx.tree.children(v);
    let d = children.len();
    let (f_lo, f_hi) = ctx.f_bounds[v as usize];
    let p_lo = ctx.parent_prob(v, false);
    let p_hi = ctx.parent_prob(v, true);
    let _ = b;
    let mut lo = 1.0 - (1.0 - f_lo * p_lo);
    let mut hi = 1.0 - (1.0 - f_hi * p_hi);
    for &c in &children[i..d] {
        let (c_lo, c_hi) = ctx.c_bounds[c as usize];
        let e_lo = ctx.tree.edge(c, v).base;
        let e_hi = ctx.tree.edge(c, v).boosted;
        lo = 1.0 - (1.0 - lo) * (1.0 - c_lo * e_lo);
        hi = 1.0 - (1.0 - hi) * (1.0 - c_hi * e_hi);
    }
    let slack = 8u64;
    let lo_q = ((lo / unit).floor() as u64).saturating_sub(slack);
    let hi_q = (hi / unit).floor() as u64 + 2;
    Grid::Units {
        lo: lo_q,
        hi: hi_q.max(lo_q),
        unit,
    }
}

/// Builds the table of a non-seed internal node via the helper chain
/// (Algorithms 6–7 unified). With `record`, also returns provenance maps
/// for backtracking.
fn build_internal(
    ctx: &Ctx<'_>,
    v: u32,
    tables: &[Option<Table>],
    mut record: Option<(&mut Prov, bool)>,
) -> Table {
    let tree = ctx.tree;
    let children = tree.children(v);
    let d = children.len();
    let kmax = ctx.kmax[v as usize];
    let unit = ctx.delta / ((d as f64) - 1.0).max(1.0);
    let mut t = Table::new(
        kmax,
        ctx.c_grid[v as usize].clone(),
        ctx.f_grid[v as usize].clone(),
    );

    for b in [false, true] {
        if b && kmax == 0 {
            continue;
        }
        let p_parent = ctx.parent_prob(v, b);

        // h_0: budget b consumed by boosting v, x_0 = 0, z unconstrained.
        let mut prev: HashMap<ChainKey, f64> = HashMap::new();
        prev.insert((b as u32, 0u64), 0.0);
        let mut prev_level: Option<Level> = None; // None ⇒ use `prev` for any z

        for i in 1..=d {
            let child = children[i - 1];
            let ct = tables[child as usize].as_ref().expect("child table");
            let p_child = tree.edge(child, v).for_boosted(b);
            let is_last = i == d;
            let this_z: Vec<(u64, f64)> = if is_last {
                // z_d ranges over v's own f-grid; y_d = f · p^b_{u,v}.
                (0..t.f.len())
                    .map(|fi| (fi as u64, t.f.value(fi) * p_parent))
                    .collect()
            } else {
                match z_grid(ctx, v, i, b, unit) {
                    Grid::Units { lo, hi, unit } => {
                        (lo..=hi).map(|q| (q, q as f64 * unit)).collect()
                    }
                    Grid::Singleton(_) => unreachable!("z grids are unit grids"),
                }
            };

            let mut level: Level = HashMap::new();
            for &(zq, y) in &this_z {
                for ci in 0..ct.c.len() {
                    let c_val = ct.c.value(ci);
                    let m = c_val * p_child;
                    // Derive the previous level's z (rounded down).
                    let z_prev_val = 1.0 - (1.0 - m) * (1.0 - y);
                    let z_prev_q = ((z_prev_val / unit) + 1e-9).floor() as u64;
                    let inner: &HashMap<ChainKey, f64> = match &prev_level {
                        None => &prev,
                        Some(lv) => match lookup_z(lv, z_prev_q) {
                            Some(m) => m,
                            None => continue,
                        },
                    };
                    for (&(kappa_prev, xq_prev), &acc) in inner {
                        let x_prev = xq_prev as f64 * unit;
                        // f passed to the child.
                        let f_child = 1.0 - (1.0 - x_prev) * (1.0 - y);
                        let Some(fi_child) = ct.f.query_index(f_child) else {
                            continue;
                        };
                        // New accumulated x.
                        let x_new = 1.0 - (1.0 - x_prev) * (1.0 - m);
                        let x_key = if is_last {
                            match t.c.store_index(x_new) {
                                Some(ci_v) => ci_v as u64,
                                None => continue,
                            }
                        } else {
                            ((x_new / unit) + 1e-9).floor() as u64
                        };
                        let k_budget = kmax - (kappa_prev as usize).min(kmax);
                        for kc in 0..=ct.kmax.min(k_budget) {
                            let child_val = ct.get(kc, ci, fi_child);
                            if child_val == f64::NEG_INFINITY {
                                continue;
                            }
                            let kappa_new = kappa_prev + kc as u32;
                            let val = acc + child_val;
                            let slot = level.entry(zq).or_default();
                            let cell = slot.entry((kappa_new, x_key)).or_insert(f64::NEG_INFINITY);
                            if val > *cell {
                                *cell = val;
                                if let Some((prov, target_b)) = record.as_mut() {
                                    if *target_b == b {
                                        prov.insert(
                                            (i, zq, kappa_new, x_key),
                                            (z_prev_q, kappa_prev, xq_prev, kc, ci, fi_child),
                                        );
                                    }
                                }
                            }
                        }
                    }
                }
            }
            prev_level = Some(level);
        }

        // Finalize: level-d z keys are f indices, x keys are c indices.
        if let Some(level) = &prev_level {
            for (&fi, inner) in level {
                for (&(kappa, ci), &acc) in inner {
                    let c_val = t.c.value(ci as usize);
                    let f_val = t.f.value(fi as usize);
                    let val = acc + ctx.boost_term(v, b, c_val, f_val);
                    t.improve(
                        kappa as usize,
                        ci as usize,
                        fi as usize,
                        val,
                        ChainRef::Chain { b },
                    );
                }
            }
        }
    }
    t
}

/// Exact-match z lookup.
fn lookup_z(level: &Level, zq: u64) -> Option<&HashMap<ChainKey, f64>> {
    level.get(&zq)
}

// --------------------------------------------------------------------------
// Backtracking
// --------------------------------------------------------------------------

fn backtrack(
    ctx: &Ctx<'_>,
    tables: &[Option<Table>],
    v: u32,
    kappa: usize,
    ci: usize,
    fi: usize,
    out: &mut Vec<NodeId>,
) {
    let t = tables[v as usize].as_ref().expect("table");
    let cell = t.choice[t.idx(kappa, ci, fi)];
    match cell {
        ChainRef::None => {}
        ChainRef::Leaf => {
            if kappa > 0 && !ctx.tree.is_seed(v) {
                out.push(NodeId(v));
            }
        }
        ChainRef::Seed => {
            let (_, choices) = seed_knapsack(ctx, v, tables, true);
            let children = ctx.tree.children(v);
            let mut budget = kappa;
            for i in (0..children.len()).rev() {
                let Some((kc, ci_child)) = choices[i][budget] else {
                    continue;
                };
                backtrack(ctx, tables, children[i], kc, ci_child, 0, out);
                budget -= kc;
            }
        }
        ChainRef::Chain { b } => {
            // Recompute the chain with provenance recording, then walk it.
            let mut prov: Prov = HashMap::new();
            let _ = build_internal(ctx, v, tables, Some((&mut prov, b)));
            if b {
                out.push(NodeId(v));
            }
            let children = ctx.tree.children(v);
            let d = children.len();
            let mut key = (d, fi as u64, kappa as u32, ci as u64);
            for i in (1..=d).rev() {
                let Some(&(z_prev, k_prev, x_prev, kc, ci_child, fi_child)) =
                    prov.get(&(key.0, key.1, key.2, key.3))
                else {
                    break;
                };
                backtrack(ctx, tables, children[i - 1], kc, ci_child, fi_child, out);
                key = (i - 1, z_prev, k_prev, x_prev);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_optimum;
    use kboost_graph::generators::{complete_binary_tree, random_tree};
    use kboost_graph::probability::ProbabilityModel;
    use kboost_graph::GraphBuilder;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn small_tree(seed: u64, n: usize, max_children: Option<usize>) -> BidirectedTree {
        let mut rng = SmallRng::seed_from_u64(seed);
        let topo = random_tree(n, max_children, &mut rng);
        let g = topo.into_bidirected_graph(ProbabilityModel::Constant(0.25), 2.0, &mut rng);
        BidirectedTree::from_digraph(&g, &[NodeId((seed % n as u64) as u32)]).unwrap()
    }

    #[test]
    fn dp_value_lower_bounds_returned_set() {
        for seed in 0..15 {
            let t = small_tree(seed, 7, None);
            let out = dp_boost(&t, 2, 0.5);
            assert!(
                out.dp_value <= out.boost + 1e-6,
                "seed {seed}: dp value {} exceeds exact boost {}",
                out.dp_value,
                out.boost
            );
            assert!(out.boost_set.len() <= 2);
        }
    }

    #[test]
    fn dp_is_near_optimal_on_small_trees() {
        for seed in 0..15 {
            let t = small_tree(seed + 100, 7, None);
            let opt = brute_force_optimum(&t, 2);
            let out = dp_boost(&t, 2, 0.25);
            assert!(
                out.boost >= (1.0 - 0.25) * opt.boost - 1e-9,
                "seed {seed}: DP {} below (1-ε)·OPT ({})",
                out.boost,
                opt.boost
            );
            assert!(out.boost <= opt.boost + 1e-9, "DP beat brute force?!");
        }
    }

    #[test]
    fn dp_handles_binary_trees() {
        let mut rng = SmallRng::seed_from_u64(3);
        let topo = complete_binary_tree(15);
        let g = topo.into_bidirected_graph(ProbabilityModel::Constant(0.2), 2.0, &mut rng);
        let t = BidirectedTree::from_digraph(&g, &[NodeId(0)]).unwrap();
        let opt = brute_force_optimum(&t, 3);
        let out = dp_boost(&t, 3, 0.5);
        assert!(out.boost >= (1.0 - 0.5) * opt.boost - 1e-9);
        assert!(out.boost_set.len() <= 3);
    }

    #[test]
    fn dp_handles_high_degree_nodes() {
        // A star with 5 leaves exercises the general (d > 2) chain.
        let mut b = GraphBuilder::new(6);
        for v in 1..6u32 {
            b.add_bidirected_edge(NodeId(0), NodeId(v), 0.3, 0.55)
                .unwrap();
        }
        let g = b.build().unwrap();
        let t = BidirectedTree::from_digraph(&g, &[NodeId(1)]).unwrap();
        let opt = brute_force_optimum(&t, 2);
        let out = dp_boost(&t, 2, 0.3);
        assert!(
            out.boost >= (1.0 - 0.3) * opt.boost - 1e-9,
            "DP {} vs OPT {}",
            out.boost,
            opt.boost
        );
    }

    #[test]
    fn tighter_epsilon_never_hurts() {
        let t = small_tree(7, 8, Some(3));
        let loose = dp_boost(&t, 2, 1.0);
        let tight = dp_boost(&t, 2, 0.2);
        assert!(tight.boost >= loose.boost - 1e-9);
        assert!(tight.delta <= loose.delta);
    }

    #[test]
    fn zero_budget_returns_empty() {
        let t = small_tree(11, 6, None);
        let out = dp_boost(&t, 0, 0.5);
        assert!(out.boost_set.is_empty());
        assert_eq!(out.boost, 0.0);
    }

    #[test]
    fn grid_semantics() {
        let g = Grid::Units {
            lo: 2,
            hi: 10,
            unit: 0.1,
        };
        assert_eq!(g.len(), 9);
        assert!((g.value(0) - 0.2).abs() < 1e-12);
        assert_eq!(g.store_index(0.55), Some(3)); // ⌊5.5⌋ = 5 → idx 3
        assert_eq!(g.store_index(0.05), None); // below range
        assert_eq!(g.store_index(5.0), Some(8)); // clamped to hi
        let s = Grid::Singleton(1.0);
        assert_eq!(s.store_index(1.0), Some(0));
        assert_eq!(s.store_index(0.5), None);
    }
}
