//! `Greedy-Boost` — Section VI-A's greedy algorithm.
//!
//! Each of the `k` rounds runs the full Lemma 5–7 computation (`O(n)`) and
//! inserts the node with the largest `σ_S(B ∪ {u})`; total `O(kn)`.

use kboost_graph::NodeId;

use crate::exact::TreeState;
use crate::tree::BidirectedTree;

/// Result of a Greedy-Boost run.
#[derive(Clone, Debug)]
pub struct GreedyOutcome {
    /// Selected boost nodes in pick order.
    pub boost_set: Vec<NodeId>,
    /// `σ_S(B)` of the final set.
    pub sigma: f64,
    /// `Δ_S(B) = σ_S(B) − σ_S(∅)`.
    pub boost: f64,
}

/// Runs Greedy-Boost for budget `k`.
pub fn greedy_boost(tree: &BidirectedTree, k: usize) -> GreedyOutcome {
    let n = tree.num_nodes();
    let mut mask = vec![false; n];
    let mut boost_set = Vec::with_capacity(k);

    let sigma_empty = TreeState::compute_mask(tree, mask.clone()).sigma();
    let mut sigma = sigma_empty;

    for _ in 0..k.min(n) {
        let state = TreeState::compute_mask(tree, mask.clone());
        let mut best: Option<(f64, u32)> = None;
        for u in 0..n as u32 {
            if mask[u as usize] || tree.is_seed(u) {
                continue;
            }
            let s = state.sigma_with(NodeId(u));
            // Ascending iteration keeps the smallest id on ties.
            if best.is_none_or(|(bs, _)| s > bs + 1e-15) {
                best = Some((s, u));
            }
        }
        let Some((best_sigma, u)) = best else { break };
        if best_sigma <= sigma + 1e-15 {
            // No strictly positive marginal gain: later rounds cannot help
            // either (the marginal of an unpicked node never grows under
            // this exact evaluation), so stop early.
            break;
        }
        mask[u as usize] = true;
        boost_set.push(NodeId(u));
        sigma = best_sigma;
    }

    GreedyOutcome {
        boost_set,
        sigma,
        boost: sigma - sigma_empty,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brute::brute_force_optimum;
    use crate::exact::tree_boost;
    use kboost_graph::generators::{complete_binary_tree, random_tree};
    use kboost_graph::probability::ProbabilityModel;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn greedy_matches_bruteforce_on_small_trees() {
        let mut rng = SmallRng::seed_from_u64(73);
        let mut optimal_hits = 0;
        let trials = 20;
        for trial in 0..trials {
            let topo = random_tree(8, None, &mut rng);
            let g = topo.into_bidirected_graph(ProbabilityModel::Constant(0.2), 2.0, &mut rng);
            let seeds = [NodeId(trial % 8)];
            let t = BidirectedTree::from_digraph(&g, &seeds).unwrap();
            let greedy = greedy_boost(&t, 2);
            let opt = brute_force_optimum(&t, 2);
            assert!(
                greedy.boost <= opt.boost + 1e-9,
                "greedy {} beat brute force {}",
                greedy.boost,
                opt.boost
            );
            if greedy.boost >= opt.boost - 1e-9 {
                optimal_hits += 1;
            }
        }
        // Greedy is near-optimal on trees in practice (Section VIII).
        assert!(
            optimal_hits * 10 >= trials * 8,
            "greedy optimal on only {optimal_hits}/{trials} trials"
        );
    }

    #[test]
    fn greedy_boost_value_is_consistent() {
        let mut rng = SmallRng::seed_from_u64(79);
        let topo = complete_binary_tree(63);
        let g = topo.into_bidirected_graph(ProbabilityModel::Trivalency, 2.0, &mut rng);
        let t = BidirectedTree::from_digraph(&g, &[NodeId(0), NodeId(5)]).unwrap();
        let out = greedy_boost(&t, 5);
        assert_eq!(out.boost_set.len(), 5);
        let recomputed = tree_boost(&t, &out.boost_set);
        assert!((out.boost - recomputed).abs() < 1e-9);
        assert!(out.boost >= 0.0);
    }

    #[test]
    fn greedy_never_picks_seeds() {
        let mut rng = SmallRng::seed_from_u64(83);
        let topo = complete_binary_tree(15);
        let g = topo.into_bidirected_graph(ProbabilityModel::Constant(0.3), 2.0, &mut rng);
        let seeds = [NodeId(0), NodeId(1), NodeId(2)];
        let t = BidirectedTree::from_digraph(&g, &seeds).unwrap();
        let out = greedy_boost(&t, 6);
        for s in seeds {
            assert!(!out.boost_set.contains(&s));
        }
    }

    #[test]
    fn zero_budget() {
        let mut rng = SmallRng::seed_from_u64(89);
        let topo = complete_binary_tree(7);
        let g = topo.into_bidirected_graph(ProbabilityModel::Constant(0.3), 2.0, &mut rng);
        let t = BidirectedTree::from_digraph(&g, &[NodeId(0)]).unwrap();
        let out = greedy_boost(&t, 0);
        assert!(out.boost_set.is_empty());
        assert_eq!(out.boost, 0.0);
    }

    #[test]
    fn no_seeds_means_no_boost() {
        let mut rng = SmallRng::seed_from_u64(97);
        let topo = complete_binary_tree(7);
        let g = topo.into_bidirected_graph(ProbabilityModel::Constant(0.3), 2.0, &mut rng);
        let t = BidirectedTree::from_digraph(&g, &[]).unwrap();
        let out = greedy_boost(&t, 3);
        assert_eq!(out.boost, 0.0);
        assert!(out.boost_set.is_empty());
    }
}
