//! Exact boosted influence on bidirected trees — Lemmas 5, 6 and 7.
//!
//! Three linear passes over the rooted tree compute, for a fixed boost set
//! `B`:
//!
//! 1. **Activation probabilities** (Lemma 5): `ap_B(u)` and the
//!    leave-one-out `ap_B(u\v)` for every adjacent pair, via an upward
//!    (post-order) pass and a downward pass with prefix/suffix products —
//!    numerically equivalent to Eq. (9)'s division trick but stable when
//!    `1 − ap·p` approaches zero.
//! 2. **Seeding gains** (Lemma 6): `g_B(u\v)`, the increase of boosted
//!    influence in the subtree `G_{u\v}` if `u` were made a seed.
//! 3. **Marginal boosts** (Lemma 7): `σ_S(B ∪ {u})` for *every* node `u`
//!    in one sweep, via `Δap` terms against the boosted in-probabilities.
//!
//! All passes are iterative (explicit orders, no recursion), so path-shaped
//! trees of arbitrary depth are fine.

use kboost_graph::NodeId;

use crate::tree::{BidirectedTree, NO_PARENT};

/// All Lemma 5–7 quantities for a fixed `(tree, B)`.
pub struct TreeState<'t> {
    tree: &'t BidirectedTree,
    boost: Vec<bool>,
    /// `ap_in[u][i] = ap_B(x_i\u)` for the i-th neighbor `x_i` of `u`.
    ap_in: Vec<Vec<f64>>,
    /// `msg[u][i] = ap_B(x_i\u) · p^B_{x_i,u}`.
    msg: Vec<Vec<f64>>,
    /// `ap_leave[u][i] = ap_B(u\x_i)`.
    ap_leave: Vec<Vec<f64>>,
    /// `g_in[u][i] = g_B(x_i\u)`.
    g_in: Vec<Vec<f64>>,
    /// `ap[u] = ap_B(u)`.
    ap: Vec<f64>,
    sigma: f64,
}

impl<'t> TreeState<'t> {
    /// Runs the three passes for boost set `boost`.
    pub fn compute(tree: &'t BidirectedTree, boost: &[NodeId]) -> Self {
        let n = tree.num_nodes();
        let mut mask = vec![false; n];
        for &b in boost {
            mask[b.index()] = true;
        }
        Self::compute_mask(tree, mask)
    }

    /// As [`compute`](Self::compute) but taking an existing mask.
    pub fn compute_mask(tree: &'t BidirectedTree, boost: Vec<bool>) -> Self {
        let n = tree.num_nodes();
        let degs: Vec<usize> = (0..n as u32).map(|u| tree.neighbors(u).len()).collect();
        let mut state = TreeState {
            tree,
            boost,
            ap_in: degs.iter().map(|&d| vec![0.0; d]).collect(),
            msg: degs.iter().map(|&d| vec![0.0; d]).collect(),
            ap_leave: degs.iter().map(|&d| vec![0.0; d]).collect(),
            g_in: degs.iter().map(|&d| vec![0.0; d]).collect(),
            ap: vec![0.0; n],
            sigma: 0.0,
        };
        state.pass_activation();
        state.pass_gain();
        state.sigma = state.ap.iter().sum();
        state
    }

    /// `p^B_{x,u}` for the i-th neighbor entry of `u` (the in-direction).
    #[inline]
    fn p_in(&self, u: u32, i: usize) -> f64 {
        self.tree.neighbors(u)[i]
            .in_
            .for_boosted(self.boost[u as usize])
    }

    /// `p^B_{u,x}` for the i-th neighbor entry of `u` (the out-direction).
    #[inline]
    fn p_out(&self, u: u32, i: usize) -> f64 {
        let nb = self.tree.neighbors(u)[i];
        nb.out.for_boosted(self.boost[nb.id as usize])
    }

    fn neighbor_index(&self, u: u32, v: u32) -> usize {
        self.tree
            .neighbors(u)
            .iter()
            .position(|nb| nb.id == v)
            .expect("nodes must be adjacent")
    }

    /// Pass 1: `up[u] = ap_B(u\parent)` bottom-up, then `ap_B(u\x)` for
    /// every neighbor by prefix/suffix products top-down.
    fn pass_activation(&mut self) {
        let tree = self.tree;
        let n = tree.num_nodes();

        // Upward: ap_B(u\parent(u)).
        let mut up = vec![0.0f64; n];
        for &u in tree.bfs_order().iter().rev() {
            if tree.is_seed(u) {
                up[u as usize] = 1.0;
                continue;
            }
            let mut prod = 1.0;
            for (i, nb) in tree.neighbors(u).iter().enumerate() {
                if nb.id != tree.parent(u) {
                    prod *= 1.0 - up[nb.id as usize] * self.p_in(u, i);
                }
            }
            up[u as usize] = 1.0 - prod;
        }

        // Downward: fill ap_in/msg, then leave-one-out products.
        let mut prefix: Vec<f64> = Vec::new();
        let mut suffix: Vec<f64> = Vec::new();
        for &u in tree.bfs_order() {
            let deg = tree.neighbors(u).len();
            // ap_in for children comes from `up`; for the parent it was
            // written by the parent's iteration (below).
            for i in 0..deg {
                let x = tree.neighbors(u)[i].id;
                if x != tree.parent(u) {
                    self.ap_in[u as usize][i] = up[x as usize];
                }
                self.msg[u as usize][i] = self.ap_in[u as usize][i] * self.p_in(u, i);
            }

            // Leave-one-out: ap_B(u\x_i) = 1 - Π_{j≠i}(1 - msg_j).
            prefix.clear();
            prefix.resize(deg + 1, 1.0);
            suffix.clear();
            suffix.resize(deg + 1, 1.0);
            for i in 0..deg {
                prefix[i + 1] = prefix[i] * (1.0 - self.msg[u as usize][i]);
            }
            for i in (0..deg).rev() {
                suffix[i] = suffix[i + 1] * (1.0 - self.msg[u as usize][i]);
            }
            let seed = tree.is_seed(u);
            self.ap[u as usize] = if seed { 1.0 } else { 1.0 - prefix[deg] };
            for i in 0..deg {
                self.ap_leave[u as usize][i] = if seed {
                    1.0
                } else {
                    1.0 - prefix[i] * suffix[i + 1]
                };
            }

            // Push the parent-side value down to each child.
            for i in 0..deg {
                let x = tree.neighbors(u)[i].id;
                if x != tree.parent(u) {
                    let j = self.neighbor_index(x, u);
                    self.ap_in[x as usize][j] = self.ap_leave[u as usize][i];
                }
            }
        }
    }

    /// Pass 2: seeding gains `g_B(x\u)` stored per in-neighbor (Lemma 6).
    fn pass_gain(&mut self) {
        let tree = self.tree;
        let n = tree.num_nodes();

        // h-term of Eq. (10): contribution of neighbor x_i to g_B(u\·).
        // h_i = p^B_{u,x_i} · g_B(x_i\u) / (1 - msg_i).
        let h = |state: &TreeState<'_>, u: u32, i: usize| -> f64 {
            let denom = (1.0 - state.msg[u as usize][i]).max(f64::MIN_POSITIVE);
            state.p_out(u, i) * state.g_in[u as usize][i] / denom
        };

        // Upward: g_B(u\parent) from children only.
        let mut gup = vec![0.0f64; n];
        for &u in tree.bfs_order().iter().rev() {
            if tree.is_seed(u) {
                continue; // gains of seeds are 0
            }
            let mut sum = 0.0;
            for (i, nb) in tree.neighbors(u).iter().enumerate() {
                if nb.id != tree.parent(u) {
                    // g_in for children is gup (set in earlier reverse-BFS
                    // iterations).
                    sum += h(self, u, i);
                }
            }
            // ap_B(u\parent) is ap_leave at the parent's index.
            let pi = tree
                .neighbors(u)
                .iter()
                .position(|nb| nb.id == tree.parent(u));
            let ap_uv = match pi {
                Some(i) => self.ap_leave[u as usize][i],
                None => self.ap[u as usize], // root: "leave nothing out"
            };
            gup[u as usize] = (1.0 - ap_uv) * (1.0 + sum);
            // Expose to the parent via its g_in slot.
            let p = tree.parent(u);
            if p != NO_PARENT {
                let j = self.neighbor_index(p, u);
                self.g_in[p as usize][j] = gup[u as usize];
            }
        }

        // Downward: g_B(u\child) for every child, using total-sum
        // exclusion over h terms.
        for &u in tree.bfs_order() {
            if tree.is_seed(u) {
                // Children still need g_B(u\c) = 0 in their g_in slots —
                // already zero-initialized.
                continue;
            }
            let deg = tree.neighbors(u).len();
            let total: f64 = (0..deg).map(|i| h(self, u, i)).sum();
            for i in 0..deg {
                let x = tree.neighbors(u)[i].id;
                if x == tree.parent(u) {
                    continue;
                }
                // g_B(u\x) = (1 - ap_B(u\x)) · (1 + Σ_{j≠i} h_j).
                let g_ux = (1.0 - self.ap_leave[u as usize][i]) * (1.0 + total - h(self, u, i));
                let j = self.neighbor_index(x, u);
                self.g_in[x as usize][j] = g_ux;
            }
        }
    }

    /// The boosted influence spread `σ_S(B)`.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// `ap_B(u)`.
    pub fn ap(&self, u: NodeId) -> f64 {
        self.ap[u.index()]
    }

    /// `ap_B(u\v)` for adjacent `u`, `v`.
    pub fn ap_leave(&self, u: NodeId, v: NodeId) -> f64 {
        let i = self.neighbor_index(u.0, v.0);
        self.ap_leave[u.index()][i]
    }

    /// `g_B(u\v)` for adjacent `u`, `v` (gain in `G_{u\v}` of seeding `u`).
    pub fn gain_leave(&self, u: NodeId, v: NodeId) -> f64 {
        let j = self.neighbor_index(v.0, u.0);
        self.g_in[v.index()][j]
    }

    /// Whether `u` is in the boost set.
    pub fn is_boosted(&self, u: NodeId) -> bool {
        self.boost[u.index()]
    }

    /// `σ_S(B ∪ {u})` (Lemma 7). Equals `σ_S(B)` when `u` is a seed or
    /// already boosted.
    pub fn sigma_with(&self, u: NodeId) -> f64 {
        let tree = self.tree;
        let u0 = u.0;
        if tree.is_seed(u0) || self.boost[u.index()] {
            return self.sigma;
        }
        let deg = tree.neighbors(u0).len();

        // Boosted in-products: 1 - Π (1 - ap_in_i · p'_i).
        let mut prefix = vec![1.0f64; deg + 1];
        let mut suffix = vec![1.0f64; deg + 1];
        for i in 0..deg {
            let boosted_p = self.tree.neighbors(u0)[i].in_.boosted;
            prefix[i + 1] = prefix[i] * (1.0 - self.ap_in[u.index()][i] * boosted_p);
        }
        for i in (0..deg).rev() {
            let boosted_p = self.tree.neighbors(u0)[i].in_.boosted;
            suffix[i] = suffix[i + 1] * (1.0 - self.ap_in[u.index()][i] * boosted_p);
        }

        let d_ap = (1.0 - prefix[deg]) - self.ap[u.index()];
        let mut total = self.sigma + d_ap;
        for i in 0..deg {
            let d_ap_leave = (1.0 - prefix[i] * suffix[i + 1]) - self.ap_leave[u.index()][i];
            total += self.p_out(u0, i) * d_ap_leave * self.g_in[u.index()][i];
        }
        total
    }

    /// `σ_S(B ∪ {u})` for every node, in `O(n)` total.
    pub fn marginal_sigmas(&self) -> Vec<f64> {
        (0..self.tree.num_nodes() as u32)
            .map(|u| self.sigma_with(NodeId(u)))
            .collect()
    }
}

/// Convenience: `σ_S(B)` on a bidirected tree.
pub fn tree_sigma(tree: &BidirectedTree, boost: &[NodeId]) -> f64 {
    TreeState::compute(tree, boost).sigma()
}

/// Convenience: `Δ_S(B) = σ_S(B) − σ_S(∅)` on a bidirected tree.
pub fn tree_boost(tree: &BidirectedTree, boost: &[NodeId]) -> f64 {
    tree_sigma(tree, boost) - tree_sigma(tree, &[])
}

#[cfg(test)]
mod tests {
    use super::*;
    use kboost_diffusion::exact::exact_sigma;
    use kboost_graph::generators::{complete_binary_tree, random_tree};
    use kboost_graph::probability::ProbabilityModel;
    use kboost_graph::{DiGraph, GraphBuilder};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn figure4() -> DiGraph {
        let mut b = GraphBuilder::new(4);
        for v in 1..4u32 {
            b.add_bidirected_edge(NodeId(0), NodeId(v), 0.1, 0.19)
                .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn figure4_ap_values() {
        // S = {v1, v3}: ap_∅(v0) = 1 - (1-p)² = 0.19; ap_∅(v0\v1) = 0.1.
        let g = figure4();
        let t = BidirectedTree::from_digraph(&g, &[NodeId(1), NodeId(3)]).unwrap();
        let st = TreeState::compute(&t, &[]);
        assert!((st.ap(NodeId(0)) - 0.19).abs() < 1e-12);
        assert!((st.ap_leave(NodeId(0), NodeId(1)) - 0.1).abs() < 1e-12);
        assert_eq!(st.ap(NodeId(1)), 1.0);
    }

    fn check_sigma_against_enumeration(g: &DiGraph, seeds: &[NodeId], boosts: &[Vec<NodeId>]) {
        let t = BidirectedTree::from_digraph(g, seeds).unwrap();
        for b in boosts {
            let fast = tree_sigma(&t, b);
            let slow = exact_sigma(g, seeds, b);
            assert!(
                (fast - slow).abs() < 1e-9,
                "σ mismatch for B={b:?}: tree {fast} vs enumeration {slow}"
            );
        }
    }

    #[test]
    fn sigma_matches_enumeration_on_star() {
        let g = figure4();
        check_sigma_against_enumeration(
            &g,
            &[NodeId(1), NodeId(3)],
            &[
                vec![],
                vec![NodeId(0)],
                vec![NodeId(2)],
                vec![NodeId(0), NodeId(2)],
            ],
        );
    }

    #[test]
    fn sigma_matches_enumeration_on_path() {
        // Path 0-1-2-3 with asymmetric probabilities.
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 0.3, 0.5).unwrap();
        b.add_edge(NodeId(1), NodeId(0), 0.2, 0.4).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.4, 0.6).unwrap();
        b.add_edge(NodeId(2), NodeId(1), 0.1, 0.3).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 0.5, 0.7).unwrap();
        b.add_edge(NodeId(3), NodeId(2), 0.3, 0.4).unwrap();
        let g = b.build().unwrap();
        check_sigma_against_enumeration(
            &g,
            &[NodeId(1)],
            &[
                vec![],
                vec![NodeId(0)],
                vec![NodeId(2)],
                vec![NodeId(3)],
                vec![NodeId(0), NodeId(2), NodeId(3)],
            ],
        );
    }

    #[test]
    fn sigma_with_matches_recomputation_small_trees() {
        let mut rng = SmallRng::seed_from_u64(61);
        for trial in 0..30 {
            let topo = random_tree(7, None, &mut rng);
            let g = topo.into_bidirected_graph(ProbabilityModel::Constant(0.3), 2.0, &mut rng);
            let seeds = [NodeId(trial % 7)];
            let t = BidirectedTree::from_digraph(&g, &seeds).unwrap();
            let base: Vec<NodeId> = if trial % 2 == 0 {
                vec![]
            } else {
                vec![NodeId((trial + 1) % 7)]
            };
            let st = TreeState::compute(&t, &base);
            for u in 0..7u32 {
                let fast = st.sigma_with(NodeId(u));
                let mut b2 = base.clone();
                if !b2.contains(&NodeId(u)) {
                    b2.push(NodeId(u));
                }
                let slow = tree_sigma(&t, &b2);
                assert!(
                    (fast - slow).abs() < 1e-9,
                    "trial {trial} u={u}: Lemma7 {fast} vs recompute {slow}"
                );
            }
        }
    }

    #[test]
    fn binary_tree_sigma_against_enumeration() {
        let mut rng = SmallRng::seed_from_u64(67);
        let topo = complete_binary_tree(6); // 10 directed edges: 2^10 cheap
        let g = topo.into_bidirected_graph(ProbabilityModel::Constant(0.25), 2.0, &mut rng);
        check_sigma_against_enumeration(
            &g,
            &[NodeId(0), NodeId(4)],
            &[vec![], vec![NodeId(2)], vec![NodeId(1), NodeId(5)]],
        );
    }

    #[test]
    fn boost_is_nonnegative_and_monotone() {
        let mut rng = SmallRng::seed_from_u64(71);
        let topo = complete_binary_tree(31);
        let g = topo.into_bidirected_graph(ProbabilityModel::Constant(0.1), 2.0, &mut rng);
        let t = BidirectedTree::from_digraph(&g, &[NodeId(0)]).unwrap();
        let d1 = tree_boost(&t, &[NodeId(1)]);
        let d12 = tree_boost(&t, &[NodeId(1), NodeId(2)]);
        assert!(d1 >= 0.0);
        assert!(d12 >= d1 - 1e-12);
    }

    #[test]
    fn gain_leave_matches_definition() {
        // g_B(u\v) = σ^{G_{u\v}}_{S∪{u}} − σ^{G_{u\v}}_S : check on the
        // path 0-1-2 by building the actual subtree.
        let mut b = GraphBuilder::new(3);
        b.add_bidirected_edge(NodeId(0), NodeId(1), 0.3, 0.5)
            .unwrap();
        b.add_bidirected_edge(NodeId(1), NodeId(2), 0.4, 0.6)
            .unwrap();
        let g = b.build().unwrap();
        let t = BidirectedTree::from_digraph(&g, &[NodeId(0)]).unwrap();
        let st = TreeState::compute(&t, &[]);
        // G_{1\0}: the subtree {1, 2}. Seeding 1 there: spread = 1 + 0.4.
        // Without: ap of 1 in G_{1\0} is 0 (no seeds), so spread = 0.
        let expected = 1.0 + 0.4;
        let got = st.gain_leave(NodeId(1), NodeId(0));
        assert!((got - expected).abs() < 1e-12, "g(1\\0) = {got}");
        // Seeds have zero gain.
        assert_eq!(st.gain_leave(NodeId(0), NodeId(1)), 0.0);
    }
}

#[cfg(test)]
mod identity_tests {
    //! The paper gives two equivalent recurrences for the leave-one-out
    //! quantities: the definitional products (Eq. 8 / Eq. 10) and the
    //! division-based O(1) updates (Eq. 9 / Eq. 11). Our implementation
    //! uses prefix/suffix products; these tests verify the paper's
    //! division identities against it, confirming the algebra.

    use super::*;
    use kboost_graph::generators::random_tree;
    use kboost_graph::probability::ProbabilityModel;
    use kboost_graph::NodeId;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn random_state(seed: u64) -> (BidirectedTree, Vec<NodeId>) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let topo = random_tree(9, None, &mut rng);
        let g = topo.into_bidirected_graph(ProbabilityModel::Constant(0.3), 2.0, &mut rng);
        let seeds = vec![NodeId((seed % 9) as u32)];
        let tree = BidirectedTree::from_digraph(&g, &seeds).unwrap();
        (tree, seeds)
    }

    #[test]
    fn equation_9_identity() {
        // ap_B(u\v) = 1 − (1 − ap_B(u\w)) · (1 − ap_B(w\u)p_{w,u})
        //                                  / (1 − ap_B(v\u)p_{v,u}).
        for seed in 0..20u64 {
            let (tree, _) = random_state(seed);
            let st = TreeState::compute(&tree, &[NodeId(1)]);
            for u in 0..9u32 {
                if tree.is_seed(u) {
                    continue;
                }
                let nbrs = tree.neighbors(u).to_vec();
                if nbrs.len() < 2 {
                    continue;
                }
                for i in 0..nbrs.len() {
                    for j in 0..nbrs.len() {
                        if i == j {
                            continue;
                        }
                        let (v, w) = (nbrs[i].id, nbrs[j].id);
                        let m_w = st.ap_leave(NodeId(w), NodeId(u))
                            * nbrs[j].in_.for_boosted(st.is_boosted(NodeId(u)));
                        let m_v = st.ap_leave(NodeId(v), NodeId(u))
                            * nbrs[i].in_.for_boosted(st.is_boosted(NodeId(u)));
                        if (1.0 - m_v).abs() < 1e-9 {
                            continue; // identity needs the denominator nonzero
                        }
                        let lhs = st.ap_leave(NodeId(u), NodeId(v));
                        let rhs = 1.0
                            - (1.0 - st.ap_leave(NodeId(u), NodeId(w))) * (1.0 - m_w) / (1.0 - m_v);
                        assert!(
                            (lhs - rhs).abs() < 1e-9,
                            "seed {seed} u={u} v={v} w={w}: {lhs} vs {rhs}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn equation_11_identity() {
        // g_B(u\v) = (1−ap_B(u\v)) · ( g_B(u\w)/(1−ap_B(u\w))
        //              + h_w − h_v ), with h_x the Eq.10 neighbor terms.
        for seed in 0..20u64 {
            let (tree, _) = random_state(seed + 100);
            let st = TreeState::compute(&tree, &[]);
            for u in 0..9u32 {
                if tree.is_seed(u) {
                    continue;
                }
                let nbrs = tree.neighbors(u).to_vec();
                if nbrs.len() < 2 {
                    continue;
                }
                let h = |i: usize| -> f64 {
                    let x = nbrs[i].id;
                    let p_ux = nbrs[i].out.for_boosted(st.is_boosted(NodeId(x)));
                    let m = st.ap_leave(NodeId(x), NodeId(u))
                        * nbrs[i].in_.for_boosted(st.is_boosted(NodeId(u)));
                    p_ux * st.gain_leave(NodeId(x), NodeId(u)) / (1.0 - m)
                };
                for i in 0..nbrs.len() {
                    for j in 0..nbrs.len() {
                        if i == j {
                            continue;
                        }
                        let (v, w) = (nbrs[i].id, nbrs[j].id);
                        let ap_uw = st.ap_leave(NodeId(u), NodeId(w));
                        if (1.0 - ap_uw).abs() < 1e-9 {
                            continue;
                        }
                        let lhs = st.gain_leave(NodeId(u), NodeId(v));
                        let rhs = (1.0 - st.ap_leave(NodeId(u), NodeId(v)))
                            * (st.gain_leave(NodeId(u), NodeId(w)) / (1.0 - ap_uw) + h(j) - h(i));
                        assert!(
                            (lhs - rhs).abs() < 1e-9,
                            "seed {seed} u={u} v={v} w={w}: {lhs} vs {rhs}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn sigma_equals_sum_of_activation_probabilities() {
        for seed in 0..10u64 {
            let (tree, _) = random_state(seed + 200);
            let st = TreeState::compute(&tree, &[NodeId(2), NodeId(3)]);
            let total: f64 = (0..9u32).map(|v| st.ap(NodeId(v))).sum();
            assert!((st.sigma() - total).abs() < 1e-12);
        }
    }
}
