//! Bidirected-tree representation.

use kboost_graph::{DiGraph, EdgeProbs, NodeId};

/// Errors while interpreting a graph as a bidirected tree.
#[derive(Clone, Debug, PartialEq)]
pub enum TreeError {
    /// The underlying undirected graph is not a tree (wrong edge count or
    /// disconnected).
    NotATree,
    /// Some edge lacks its reverse direction.
    MissingReverse { from: NodeId, to: NodeId },
    /// A seed id is out of range.
    SeedOutOfRange(NodeId),
}

impl std::fmt::Display for TreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeError::NotATree => write!(f, "underlying undirected graph is not a tree"),
            TreeError::MissingReverse { from, to } => {
                write!(f, "edge ({from}, {to}) has no reverse direction")
            }
            TreeError::SeedOutOfRange(v) => write!(f, "seed {v} out of range"),
        }
    }
}

impl std::error::Error for TreeError {}

/// One neighbor entry of a node `u`: the neighbor id plus the probability
/// pairs of the two directed edges `u→v` (`out`) and `v→u` (`in_`).
#[derive(Clone, Copy, Debug)]
pub struct Neighbor {
    /// The neighbor's id.
    pub id: u32,
    /// Probabilities of the edge from this node to the neighbor.
    pub out: EdgeProbs,
    /// Probabilities of the edge from the neighbor to this node.
    pub in_: EdgeProbs,
}

/// A bidirected tree with a fixed seed set, rooted at node 0.
///
/// The rooted structure (parent pointers, children lists, a reverse-BFS
/// order usable as a post-order) drives both the exact computation and the
/// dynamic program.
#[derive(Clone, Debug)]
pub struct BidirectedTree {
    n: usize,
    adj: Vec<Vec<Neighbor>>,
    seeds: Vec<bool>,
    parent: Vec<u32>,
    children: Vec<Vec<u32>>,
    /// Nodes in BFS order from the root (prefix order; its reverse is a
    /// valid post-order).
    bfs_order: Vec<u32>,
}

/// Sentinel parent of the root.
pub const NO_PARENT: u32 = u32::MAX;

impl BidirectedTree {
    /// Interprets `g` as a bidirected tree with the given seeds.
    pub fn from_digraph(g: &DiGraph, seeds: &[NodeId]) -> Result<Self, TreeError> {
        let n = g.num_nodes();
        for &s in seeds {
            if s.index() >= n {
                return Err(TreeError::SeedOutOfRange(s));
            }
        }
        // Undirected edge count must be n-1 and every edge paired.
        if n == 0 {
            return Err(TreeError::NotATree);
        }
        let mut adj: Vec<Vec<Neighbor>> = vec![Vec::new(); n];
        let mut undirected = 0usize;
        for (u, v, p_out) in g.edges() {
            let Some(p_in) = g.edge(v, u) else {
                return Err(TreeError::MissingReverse { from: u, to: v });
            };
            if u < v {
                undirected += 1;
                adj[u.index()].push(Neighbor {
                    id: v.0,
                    out: p_out,
                    in_: p_in,
                });
                adj[v.index()].push(Neighbor {
                    id: u.0,
                    out: p_in,
                    in_: p_out,
                });
            }
        }
        if undirected != n - 1 {
            return Err(TreeError::NotATree);
        }

        // Root at 0; build parent/children via BFS and check connectivity.
        let mut parent = vec![NO_PARENT; n];
        let mut children: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut bfs_order = Vec::with_capacity(n);
        let mut visited = vec![false; n];
        visited[0] = true;
        bfs_order.push(0u32);
        let mut head = 0usize;
        while head < bfs_order.len() {
            let u = bfs_order[head];
            head += 1;
            for nb in &adj[u as usize] {
                if !visited[nb.id as usize] {
                    visited[nb.id as usize] = true;
                    parent[nb.id as usize] = u;
                    children[u as usize].push(nb.id);
                    bfs_order.push(nb.id);
                }
            }
        }
        if bfs_order.len() != n {
            return Err(TreeError::NotATree);
        }

        let mut seed_mask = vec![false; n];
        for &s in seeds {
            seed_mask[s.index()] = true;
        }
        Ok(BidirectedTree {
            n,
            adj,
            seeds: seed_mask,
            parent,
            children,
            bfs_order,
        })
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Whether `v` is a seed.
    #[inline]
    pub fn is_seed(&self, v: u32) -> bool {
        self.seeds[v as usize]
    }

    /// The seed nodes.
    pub fn seed_nodes(&self) -> Vec<NodeId> {
        (0..self.n as u32)
            .filter(|&v| self.seeds[v as usize])
            .map(NodeId)
            .collect()
    }

    /// Neighbors of `u` with both directions' probabilities.
    #[inline]
    pub fn neighbors(&self, u: u32) -> &[Neighbor] {
        &self.adj[u as usize]
    }

    /// Parent of `u` in the rooted orientation ([`NO_PARENT`] for the
    /// root).
    #[inline]
    pub fn parent(&self, u: u32) -> u32 {
        self.parent[u as usize]
    }

    /// Children of `u` in the rooted orientation.
    #[inline]
    pub fn children(&self, u: u32) -> &[u32] {
        &self.children[u as usize]
    }

    /// BFS (prefix) order from the root; iterate it in reverse for a
    /// post-order.
    pub fn bfs_order(&self) -> &[u32] {
        &self.bfs_order
    }

    /// The probability pair of directed edge `(u, v)` for adjacent nodes.
    ///
    /// # Panics
    /// Panics if `v` is not adjacent to `u`.
    pub fn edge(&self, u: u32, v: u32) -> EdgeProbs {
        self.adj[u as usize]
            .iter()
            .find(|nb| nb.id == v)
            .map(|nb| nb.out)
            .expect("nodes must be adjacent")
    }

    /// Subtree sizes in the rooted orientation.
    pub fn subtree_sizes(&self) -> Vec<u32> {
        let mut size = vec![1u32; self.n];
        for &u in self.bfs_order.iter().rev() {
            let p = self.parent[u as usize];
            if p != NO_PARENT {
                size[p as usize] += size[u as usize];
            }
        }
        size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kboost_graph::GraphBuilder;

    fn figure4() -> DiGraph {
        // Figure 4: star with center v0 and leaves v1..v3, p=0.1, p'=0.19.
        let mut b = GraphBuilder::new(4);
        for v in 1..4u32 {
            b.add_bidirected_edge(NodeId(0), NodeId(v), 0.1, 0.19)
                .unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn builds_star() {
        let t = BidirectedTree::from_digraph(&figure4(), &[NodeId(1), NodeId(3)]).unwrap();
        assert_eq!(t.num_nodes(), 4);
        assert!(t.is_seed(1) && t.is_seed(3) && !t.is_seed(0));
        assert_eq!(t.children(0), &[1, 2, 3]);
        assert_eq!(t.parent(2), 0);
        assert_eq!(t.parent(0), NO_PARENT);
        assert_eq!(t.subtree_sizes(), vec![4, 1, 1, 1]);
    }

    #[test]
    fn rejects_missing_reverse() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1), 0.1, 0.2).unwrap();
        let g = b.build().unwrap();
        assert!(matches!(
            BidirectedTree::from_digraph(&g, &[]),
            Err(TreeError::MissingReverse { .. })
        ));
    }

    #[test]
    fn rejects_cycle() {
        let mut b = GraphBuilder::new(3);
        b.add_bidirected_edge(NodeId(0), NodeId(1), 0.1, 0.2)
            .unwrap();
        b.add_bidirected_edge(NodeId(1), NodeId(2), 0.1, 0.2)
            .unwrap();
        b.add_bidirected_edge(NodeId(2), NodeId(0), 0.1, 0.2)
            .unwrap();
        let g = b.build().unwrap();
        assert!(matches!(
            BidirectedTree::from_digraph(&g, &[]),
            Err(TreeError::NotATree)
        ));
    }

    #[test]
    fn rejects_disconnected() {
        let mut b = GraphBuilder::new(4);
        b.add_bidirected_edge(NodeId(0), NodeId(1), 0.1, 0.2)
            .unwrap();
        b.add_bidirected_edge(NodeId(2), NodeId(3), 0.1, 0.2)
            .unwrap();
        let g = b.build().unwrap();
        assert!(BidirectedTree::from_digraph(&g, &[]).is_err());
    }

    #[test]
    fn edge_lookup_directional() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1), 0.1, 0.2).unwrap();
        b.add_edge(NodeId(1), NodeId(0), 0.3, 0.5).unwrap();
        let g = b.build().unwrap();
        let t = BidirectedTree::from_digraph(&g, &[]).unwrap();
        assert_eq!(t.edge(0, 1).base, 0.1);
        assert_eq!(t.edge(1, 0).base, 0.3);
    }
}
