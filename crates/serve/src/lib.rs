//! `kboost-serve` — concurrent query serving over epoch-pinned pool
//! snapshots.
//!
//! The paper's setting is boosting on *live* social networks, and a
//! production boost service faces two clocks at once: query traffic that
//! must never block, and a mutation stream that keeps the PRR pool
//! honest. `kboost-online` made the second clock cheap (refresh only the
//! invalidated share); this crate decouples the two entirely. The
//! maintainer publishes an immutable [`PoolSnapshot`] of the pool after
//! every committed epoch through a pointer-swap primitive
//! ([`SnapSwap`]), so any number of query threads read epoch `e` — each
//! holding a plain `Arc` pin — while epoch `e + 1` is sampled and
//! committed off to the side. No reader ever takes a lock a writer
//! holds during sampling; the only synchronisation is the swap itself.
//!
//! * [`swap`] — the vendored double-buffer publication primitive
//!   (`arc-swap` is unavailable offline; two slots and an atomic active
//!   index reproduce the wait-free-read property the pattern needs).
//! * [`snapshot`] — [`PoolSnapshot`]: one epoch's frozen
//!   `(graph, seeds, pool)` triple with the full read-side query surface
//!   (`Δ̂`/`µ̂`/[`evaluate_many`](PoolSnapshot::evaluate_many)).
//! * [`service`] — [`SnapshotService`]: the cloneable handle wiring a
//!   single publisher (the maintainer) to many pinning readers, with
//!   publish/epoch statistics.
//!
//! # Epoch pinning rules
//!
//! 1. [`SnapshotService::pin`] returns an `Arc<PoolSnapshot>` of the
//!    latest *published* epoch. The pin is the unit of consistency:
//!    every query answered through one pin is answered by one frozen
//!    pool, byte-identical for the pin's whole lifetime, no matter how
//!    many epochs commit meanwhile.
//! 2. Publishing epoch `e + 1` never mutates epoch `e`'s snapshot — it
//!    swaps which slot new pins resolve to. Readers that want to follow
//!    the head re-pin per query (cheap: an atomic load, a momentary
//!    read-lock, an `Arc` clone).
//! 3. A snapshot is *retired* when the last pin drops: memory is
//!    reclaimed by `Arc`, not by the publisher. A publisher is never
//!    blocked by current readers of the *active* slot; it waits only
//!    for stragglers still cloning out of the slot being overwritten —
//!    a window of one `Arc` clone, not of query execution.
//!
//! # Publish ordering
//!
//! There is one publisher (the pool maintainer), so published epochs are
//! strictly increasing. The swap's release/acquire pair guarantees a
//! reader that observes the new index also observes the fully built
//! snapshot behind it — no torn reads: `tests/serve.rs` hammers a
//! publisher with concurrent pinning readers and asserts every pinned
//! arena is byte-equal to its epoch's oracle.

#![deny(missing_docs)]

pub mod service;
pub mod snapshot;
pub mod swap;

pub use service::{ServeStats, SnapshotService};
pub use snapshot::PoolSnapshot;
pub use swap::SnapSwap;
