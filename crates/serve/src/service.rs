//! [`SnapshotService`] — the publisher↔readers handle over a
//! [`SnapSwap`] of [`PoolSnapshot`]s.

use std::sync::{Arc, OnceLock};

use kboost_obs::Obs;

use crate::snapshot::PoolSnapshot;
use crate::swap::SnapSwap;

/// Publish/epoch statistics of a serving cell — the numbers
/// `exp_service` records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServeStats {
    /// Epochs published through [`SnapshotService::publish`] (the
    /// initial snapshot is construction, not a publish).
    pub publishes: u64,
    /// Epoch of the currently published snapshot.
    pub epoch: u64,
}

/// A cloneable handle over one published [`PoolSnapshot`] stream.
///
/// One logical publisher — the pool maintainer, which calls
/// [`publish`](Self::publish) after every committed mutation epoch —
/// and any number of reader clones, each calling [`pin`](Self::pin) per
/// query (or per batch of queries wanting one consistent epoch).
/// Cloning the handle is an `Arc` clone; all clones observe the same
/// stream.
#[derive(Clone)]
pub struct SnapshotService {
    cell: Arc<SnapSwap<PoolSnapshot>>,
    /// Observability handle, shared by every clone of the service (set
    /// once, usually by the engine when a recorder is attached — clones
    /// taken before or after all see it).
    obs: Arc<OnceLock<Obs>>,
}

impl SnapshotService {
    /// A service initially publishing `snapshot`.
    pub fn new(snapshot: PoolSnapshot) -> Self {
        SnapshotService {
            cell: Arc::new(SnapSwap::new(Arc::new(snapshot))),
            obs: Arc::new(OnceLock::new()),
        }
    }

    /// Attaches an observability handle shared across all clones of this
    /// service (first caller wins). Publishes then maintain the
    /// `serve.publishes` counter and `serve.live_pins` gauge, pins count
    /// into `serve.pins`, and [`record_query`](Self::record_query) feeds
    /// the `serve.queries` counter and `serve.epoch_lag` histogram.
    /// Instrumentation reads no randomness and never touches snapshot
    /// contents.
    pub fn set_obs(&self, obs: Obs) {
        let _ = self.obs.set(obs);
    }

    #[inline]
    fn obs(&self) -> Option<&Obs> {
        self.obs.get().filter(|obs| obs.is_enabled())
    }

    /// Pins the latest published snapshot. The returned `Arc` keeps its
    /// epoch's pool alive — and byte-identical — for as long as the pin
    /// is held, regardless of how many epochs publish meanwhile.
    pub fn pin(&self) -> Arc<PoolSnapshot> {
        if let Some(obs) = self.obs() {
            obs.counter_add("serve.pins", 1);
        }
        self.cell.load()
    }

    /// Publishes `snapshot` as the new head; subsequent [`pin`]s resolve
    /// to it. Returns the snapshot it displaced from the inactive slot
    /// (useful to observe retirement). Publisher-side only — epochs must
    /// be published in increasing order by the single maintainer.
    ///
    /// [`pin`]: Self::pin
    pub fn publish(&self, snapshot: PoolSnapshot) -> Arc<PoolSnapshot> {
        let replaced = self.cell.publish(Arc::new(snapshot));
        if let Some(obs) = self.obs() {
            obs.counter_add("serve.publishes", 1);
            obs.gauge_set("serve.live_pins", self.cell.pinned_estimate() as f64);
        }
        replaced
    }

    /// Records that `sets` candidate sets were served from `pinned`:
    /// bumps `serve.queries` and observes the pin's epoch lag (head
    /// epoch minus pinned epoch) into `serve.epoch_lag`. A no-op without
    /// an attached recorder, so query workers can call it
    /// unconditionally.
    pub fn record_query(&self, pinned: &PoolSnapshot, sets: u64) {
        if let Some(obs) = self.obs() {
            obs.counter_add("serve.queries", sets);
            let head = self.cell.load().epoch();
            obs.observe(
                "serve.epoch_lag",
                head.saturating_sub(pinned.epoch()) as f64,
            );
        }
    }

    /// Current publish/epoch statistics.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            publishes: self.cell.publishes(),
            epoch: self.cell.load().epoch(),
        }
    }
}
