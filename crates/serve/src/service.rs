//! [`SnapshotService`] — the publisher↔readers handle over a
//! [`SnapSwap`] of [`PoolSnapshot`]s.

use std::sync::Arc;

use crate::snapshot::PoolSnapshot;
use crate::swap::SnapSwap;

/// Publish/epoch statistics of a serving cell — the numbers
/// `exp_service` records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServeStats {
    /// Epochs published through [`SnapshotService::publish`] (the
    /// initial snapshot is construction, not a publish).
    pub publishes: u64,
    /// Epoch of the currently published snapshot.
    pub epoch: u64,
}

/// A cloneable handle over one published [`PoolSnapshot`] stream.
///
/// One logical publisher — the pool maintainer, which calls
/// [`publish`](Self::publish) after every committed mutation epoch —
/// and any number of reader clones, each calling [`pin`](Self::pin) per
/// query (or per batch of queries wanting one consistent epoch).
/// Cloning the handle is an `Arc` clone; all clones observe the same
/// stream.
#[derive(Clone)]
pub struct SnapshotService {
    cell: Arc<SnapSwap<PoolSnapshot>>,
}

impl SnapshotService {
    /// A service initially publishing `snapshot`.
    pub fn new(snapshot: PoolSnapshot) -> Self {
        SnapshotService {
            cell: Arc::new(SnapSwap::new(Arc::new(snapshot))),
        }
    }

    /// Pins the latest published snapshot. The returned `Arc` keeps its
    /// epoch's pool alive — and byte-identical — for as long as the pin
    /// is held, regardless of how many epochs publish meanwhile.
    pub fn pin(&self) -> Arc<PoolSnapshot> {
        self.cell.load()
    }

    /// Publishes `snapshot` as the new head; subsequent [`pin`]s resolve
    /// to it. Returns the snapshot it displaced from the inactive slot
    /// (useful to observe retirement). Publisher-side only — epochs must
    /// be published in increasing order by the single maintainer.
    ///
    /// [`pin`]: Self::pin
    pub fn publish(&self, snapshot: PoolSnapshot) -> Arc<PoolSnapshot> {
        self.cell.publish(Arc::new(snapshot))
    }

    /// Current publish/epoch statistics.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            publishes: self.cell.publishes(),
            epoch: self.cell.load().epoch(),
        }
    }
}
