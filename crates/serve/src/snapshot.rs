//! [`PoolSnapshot`] — one epoch's frozen `(graph, seeds, pool)` triple.

use kboost_core::{EvalManyScratch, PrrPool};
use kboost_graph::{DiGraph, NodeId};

/// An immutable, epoch-stamped copy of a maintained PRR pool and the
/// graph state it estimates — the unit readers pin.
///
/// Everything here is by-value: the maintainer keeps mutating its own
/// private pool after the snapshot is taken, and compaction
/// canonicalization (the maintained arena is byte-equal to its replay
/// oracle) carries over, so two snapshots of the same epoch compare
/// byte-equal with `==` on their arenas. All query methods take
/// `&self` — a pinned snapshot serves any number of threads.
pub struct PoolSnapshot {
    epoch: u64,
    graph: DiGraph,
    seeds: Vec<NodeId>,
    pool: PrrPool,
}

impl PoolSnapshot {
    /// Freezes `(graph, seeds, pool)` as the published state of `epoch`.
    pub fn new(epoch: u64, graph: DiGraph, seeds: Vec<NodeId>, pool: PrrPool) -> Self {
        PoolSnapshot {
            epoch,
            graph,
            seeds,
            pool,
        }
    }

    /// The mutation epoch this snapshot was taken at (0 = initial build).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The graph as of this snapshot's epoch.
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// The seed set the pool is conditioned on.
    pub fn seeds(&self) -> &[NodeId] {
        &self.seeds
    }

    /// The frozen PRR pool (estimators skip tombstoned graphs, exactly
    /// as the live maintained pool does).
    pub fn pool(&self) -> &PrrPool {
        &self.pool
    }

    /// `Δ̂(B)` over the frozen pool — bit-identical to what the live
    /// engine answered at this epoch.
    pub fn delta_hat(&self, boost: &[NodeId]) -> f64 {
        self.pool.delta_hat(boost)
    }

    /// `µ̂(B)` over the frozen pool.
    pub fn mu_hat(&self, boost: &[NodeId]) -> f64 {
        self.pool.mu_hat(boost)
    }

    /// `(Δ̂(B), µ̂(B))` in one call.
    pub fn evaluate(&self, boost: &[NodeId]) -> (f64, f64) {
        (self.pool.delta_hat(boost), self.pool.mu_hat(boost))
    }

    /// Scores a whole batch of candidate boost sets in **one arena
    /// traversal** — the call shape a recommendation tier makes. Returns
    /// `(Δ̂, µ̂)` per candidate, bit-for-bit equal to calling
    /// [`evaluate`](Self::evaluate) per set (the property test in
    /// `tests/serve.rs` asserts it on ER/PA/gadget pools).
    pub fn evaluate_many(&self, candidates: &[Vec<NodeId>]) -> Vec<(f64, f64)> {
        self.pool.evaluate_many(candidates)
    }

    /// [`evaluate_many`](Self::evaluate_many) with a caller-owned
    /// [`EvalManyScratch`]: a query worker looping over batches reuses
    /// one workspace instead of allocating per call. Bit-for-bit equal
    /// to the allocating path.
    pub fn evaluate_many_with(
        &self,
        candidates: &[Vec<NodeId>],
        scratch: &mut EvalManyScratch,
    ) -> Vec<(f64, f64)> {
        self.pool.evaluate_many_with(candidates, scratch)
    }
}
