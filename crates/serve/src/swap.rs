//! [`SnapSwap`] — the vendored double-buffer pointer-swap primitive.
//!
//! The offline build cannot pull `arc-swap`, so publication is built from
//! `std` parts with the same contract: readers get the current
//! `Arc<T>` without ever contending with a writer that is *building*
//! the next value, and a publish is a pointer-sized index swap, not a
//! data copy.
//!
//! Layout: two slots, each an `Arc<T>` behind its own `RwLock`, plus an
//! atomic *active* index. The locks are never held across user code —
//! readers hold one only for the duration of an `Arc` clone, the
//! publisher only for an `Arc` store — so the primitive is effectively
//! wait-free for both sides in the steady state.
//!
//! * **Load**: `Acquire`-load the active index, read-lock that slot,
//!   clone the `Arc`. The `Release` store in `publish` happens after the
//!   new value is written, so a reader that sees the new index sees the
//!   complete value — no torn read is possible because the slot content
//!   is only ever replaced under the slot's write lock, and readers
//!   clone under the read lock.
//! * **Publish**: write-lock the *inactive* slot (new readers never
//!   arrive there; the lock waits only for stragglers that loaded the
//!   index before the previous swap and have not finished their clone),
//!   store the new `Arc`, then `Release`-store the index. Two
//!   back-to-back publishes therefore recycle slots A→B→A, and memory
//!   of a replaced value is reclaimed when its last outside `Arc`
//!   drops — retirement is the reader's `Drop`, never the publisher's
//!   problem.
//!
//! A reader's load may race a publish and return either the old or the
//! new value; both are fully published values, which is the whole
//! consistency contract (`load` is monotone per publisher because slot
//! stores happen-before the index store).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

/// A two-slot atomic publication cell for `Arc<T>` values.
///
/// One logical publisher, any number of readers. Readers never block the
/// publisher's *build* of the next value (that happens entirely outside
/// this type); the swap itself is two pointer-sized operations under
/// momentary locks.
pub struct SnapSwap<T> {
    slots: [RwLock<Arc<T>>; 2],
    /// Index of the slot current loads resolve to (0 or 1).
    active: AtomicUsize,
    /// Number of successful [`publish`](Self::publish) calls.
    publishes: AtomicU64,
}

impl<T> SnapSwap<T> {
    /// A swap cell holding `initial` as the published value.
    pub fn new(initial: Arc<T>) -> Self {
        SnapSwap {
            slots: [RwLock::new(initial.clone()), RwLock::new(initial)],
            active: AtomicUsize::new(0),
            publishes: AtomicU64::new(0),
        }
    }

    /// The currently published value. Lock-held time is one `Arc` clone.
    pub fn load(&self) -> Arc<T> {
        let i = self.active.load(Ordering::Acquire);
        self.slots[i]
            .read()
            .expect("snapshot slot poisoned")
            .clone()
    }

    /// Publishes `next`, making it the value subsequent [`load`]s
    /// return, and returns the value it replaced (the one published two
    /// swaps ago, still alive through any outstanding reader pins).
    ///
    /// Single-publisher by contract: concurrent publishers would
    /// serialize on the slot lock but could interleave index stores out
    /// of build order.
    ///
    /// [`load`]: Self::load
    pub fn publish(&self, next: Arc<T>) -> Arc<T> {
        let inactive = 1 - self.active.load(Ordering::Relaxed);
        let replaced = {
            let mut slot = self.slots[inactive]
                .write()
                .expect("snapshot slot poisoned");
            std::mem::replace(&mut *slot, next)
        };
        self.active.store(inactive, Ordering::Release);
        self.publishes.fetch_add(1, Ordering::Relaxed);
        replaced
    }

    /// Number of publishes so far (0 for a freshly constructed cell).
    pub fn publishes(&self) -> u64 {
        self.publishes.load(Ordering::Relaxed)
    }

    /// Estimated number of outstanding reader pins: the `Arc` strong
    /// counts of both slots minus the slots' own references. Racy by
    /// nature (readers may be mid-clone), so a momentary estimate — it
    /// feeds the `serve.live_pins` gauge, not any invariant.
    pub fn pinned_estimate(&self) -> u64 {
        let a = self.slots[0].read().expect("snapshot slot poisoned");
        let b = self.slots[1].read().expect("snapshot slot poisoned");
        if Arc::ptr_eq(&a, &b) {
            Arc::strong_count(&a).saturating_sub(2) as u64
        } else {
            (Arc::strong_count(&a).saturating_sub(1) + Arc::strong_count(&b).saturating_sub(1))
                as u64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_returns_latest_publish() {
        let cell = SnapSwap::new(Arc::new(0u64));
        assert_eq!(*cell.load(), 0);
        for v in 1..10u64 {
            let replaced = cell.publish(Arc::new(v));
            assert!(*replaced < v);
            assert_eq!(*cell.load(), v);
        }
        assert_eq!(cell.publishes(), 9);
    }

    #[test]
    fn pins_survive_subsequent_publishes() {
        let cell = SnapSwap::new(Arc::new(vec![1, 2, 3]));
        let pin = cell.load();
        cell.publish(Arc::new(vec![4]));
        cell.publish(Arc::new(vec![5]));
        cell.publish(Arc::new(vec![6]));
        // The pinned value is untouched by three slot recycles.
        assert_eq!(*pin, vec![1, 2, 3]);
        assert_eq!(*cell.load(), vec![6]);
    }

    #[test]
    fn concurrent_readers_always_see_a_complete_value() {
        // Values carry a self-checksum; a torn read would break it.
        let make = |i: u64| Arc::new((i, i.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        let cell = Arc::new(SnapSwap::new(make(0)));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let cell = Arc::clone(&cell);
                s.spawn(move || {
                    for _ in 0..20_000 {
                        let v = cell.load();
                        assert_eq!(v.1, v.0.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                    }
                });
            }
            for i in 1..=2_000 {
                cell.publish(make(i));
            }
        });
        assert_eq!(cell.load().0, 2_000);
    }
}
