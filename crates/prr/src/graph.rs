//! The compressed PRR-graph representation and its evaluation primitives.

use kboost_diffusion::sim::BoostMask;
use kboost_graph::NodeId;

/// Sentinel "global id" of the super-seed node (it aggregates the whole
/// live-reachable seed region and corresponds to no single original node).
pub const SUPER_SEED: u32 = u32::MAX;

/// A compressed boostable PRR-graph (output of Phase II).
///
/// Local node 0 is always the super-seed. Every stored edge is either live
/// or live-upon-boost; `f_R(B)` is the reachability of the root from the
/// super-seed when boost edges with heads in `B` are traversable.
#[derive(Clone, Debug)]
pub struct CompressedPrr {
    root: u32,
    /// Local → global id; `globals[0] == SUPER_SEED`.
    globals: Vec<u32>,
    fwd_offsets: Vec<u32>,
    fwd: Vec<(u32, bool)>,
    bwd_offsets: Vec<u32>,
    bwd: Vec<(u32, bool)>,
    critical: Vec<NodeId>,
    uncompressed_edges: u32,
}

/// Reusable buffers for PRR-graph traversals.
#[derive(Default)]
pub struct PrrEvalScratch {
    fwd_mark: Vec<bool>,
    bwd_mark: Vec<bool>,
    stack: Vec<u32>,
}

/// Outcome of the B-augmented criticality computation.
pub enum Augmented {
    /// `f_R(B) = 1` already — the graph is covered by the current set.
    Covered,
    /// Candidates were appended to the output vector.
    Open,
}

impl CompressedPrr {
    /// Assembles a compressed graph from adjacency lists. `globals[0]` must
    /// be [`SUPER_SEED`].
    pub(crate) fn from_adjacency(
        root: u32,
        globals: Vec<u32>,
        out_adj: &[Vec<(u32, bool)>],
        critical: Vec<NodeId>,
        uncompressed_edges: u32,
    ) -> Self {
        let n = globals.len();
        debug_assert_eq!(out_adj.len(), n);
        debug_assert_eq!(globals[0], SUPER_SEED);

        let m: usize = out_adj.iter().map(Vec::len).sum();
        let mut fwd_offsets = vec![0u32; n + 1];
        for (i, adj) in out_adj.iter().enumerate() {
            fwd_offsets[i + 1] = fwd_offsets[i] + adj.len() as u32;
        }
        let mut fwd = Vec::with_capacity(m);
        for adj in out_adj {
            fwd.extend_from_slice(adj);
        }

        let mut bwd_counts = vec![0u32; n + 1];
        for adj in out_adj {
            for &(to, _) in adj {
                bwd_counts[to as usize + 1] += 1;
            }
        }
        let mut bwd_offsets = bwd_counts;
        for i in 0..n {
            bwd_offsets[i + 1] += bwd_offsets[i];
        }
        let mut cursor: Vec<u32> = bwd_offsets[..n].to_vec();
        let mut bwd = vec![(0u32, false); m];
        for (from, adj) in out_adj.iter().enumerate() {
            for &(to, boost) in adj {
                bwd[cursor[to as usize] as usize] = (from as u32, boost);
                cursor[to as usize] += 1;
            }
        }

        CompressedPrr { root, globals, fwd_offsets, fwd, bwd_offsets, bwd, critical, uncompressed_edges }
    }

    /// Number of local nodes (super-seed included).
    pub fn num_nodes(&self) -> usize {
        self.globals.len()
    }

    /// Number of stored edges.
    pub fn num_edges(&self) -> usize {
        self.fwd.len()
    }

    /// Number of phase-I edges this graph had before compression.
    pub fn uncompressed_edges(&self) -> u32 {
        self.uncompressed_edges
    }

    /// The critical nodes `C_R = {v : f_R({v}) = 1}` (global ids).
    pub fn critical(&self) -> &[NodeId] {
        &self.critical
    }

    /// The local id of the root.
    pub fn root_local(&self) -> u32 {
        self.root
    }

    /// The global id of local node `v`, or `None` for the super-seed.
    pub fn global_of(&self, v: u32) -> Option<NodeId> {
        let g = self.globals[v as usize];
        (g != SUPER_SEED).then_some(NodeId(g))
    }

    #[inline]
    fn traversable(&self, to: u32, boosted_edge: bool, boost: &BoostMask) -> bool {
        if !boosted_edge {
            return true;
        }
        let g = self.globals[to as usize];
        g != SUPER_SEED && boost.contains(NodeId(g))
    }

    /// Evaluates `f_R(B)`: does boosting `B` activate the root?
    ///
    /// For a stored (boostable) graph there is no live super-seed→root
    /// path, so this is exactly Definition 3's `f_R`.
    pub fn f(&self, boost: &BoostMask, scratch: &mut PrrEvalScratch) -> bool {
        let n = self.num_nodes();
        scratch.fwd_mark.clear();
        scratch.fwd_mark.resize(n, false);
        scratch.stack.clear();
        scratch.fwd_mark[0] = true;
        scratch.stack.push(0);
        while let Some(u) = scratch.stack.pop() {
            if u == self.root {
                return true;
            }
            let (lo, hi) = (self.fwd_offsets[u as usize] as usize, self.fwd_offsets[u as usize + 1] as usize);
            for &(v, boosted_edge) in &self.fwd[lo..hi] {
                if !scratch.fwd_mark[v as usize] && self.traversable(v, boosted_edge, boost) {
                    scratch.fwd_mark[v as usize] = true;
                    scratch.stack.push(v);
                }
            }
        }
        false
    }

    /// Computes the *B-augmented critical set*: nodes `v ∉ B` such that
    /// `f_R(B ∪ {v}) = 1`. Appends the global ids to `out` (deduplicated
    /// within this graph). Returns [`Augmented::Covered`] without touching
    /// `out` when `f_R(B) = 1` already.
    ///
    /// Soundness: `f_R(B∪{v}) = 1` iff some boost edge `(u, v)` has `u`
    /// reachable from the super-seed and `v` reaching the root, both under
    /// `B`-traversability — take the first entry of `v` on any witnessing
    /// path for the forward half and the last exit for the backward half.
    pub fn augmented_critical(
        &self,
        boost: &BoostMask,
        scratch: &mut PrrEvalScratch,
        out: &mut Vec<NodeId>,
    ) -> Augmented {
        let n = self.num_nodes();
        scratch.fwd_mark.clear();
        scratch.fwd_mark.resize(n, false);
        scratch.stack.clear();
        scratch.fwd_mark[0] = true;
        scratch.stack.push(0);
        while let Some(u) = scratch.stack.pop() {
            let (lo, hi) = (self.fwd_offsets[u as usize] as usize, self.fwd_offsets[u as usize + 1] as usize);
            for &(v, boosted_edge) in &self.fwd[lo..hi] {
                if !scratch.fwd_mark[v as usize] && self.traversable(v, boosted_edge, boost) {
                    scratch.fwd_mark[v as usize] = true;
                    scratch.stack.push(v);
                }
            }
        }
        if scratch.fwd_mark[self.root as usize] {
            return Augmented::Covered;
        }

        scratch.bwd_mark.clear();
        scratch.bwd_mark.resize(n, false);
        scratch.stack.clear();
        scratch.bwd_mark[self.root as usize] = true;
        scratch.stack.push(self.root);
        while let Some(u) = scratch.stack.pop() {
            let (lo, hi) = (self.bwd_offsets[u as usize] as usize, self.bwd_offsets[u as usize + 1] as usize);
            for &(v, boosted_edge) in &self.bwd[lo..hi] {
                // Edge (v → u); traversable if live or head `u` boosted.
                if !scratch.bwd_mark[v as usize] && self.traversable(u, boosted_edge, boost) {
                    scratch.bwd_mark[v as usize] = true;
                    scratch.stack.push(v);
                }
            }
        }

        // For every boost edge (u, v): if u is forward-reachable and v
        // backward-reaches the root, boosting v closes the gap.
        let before = out.len();
        for u in 0..n as u32 {
            if !scratch.fwd_mark[u as usize] {
                continue;
            }
            let (lo, hi) = (self.fwd_offsets[u as usize] as usize, self.fwd_offsets[u as usize + 1] as usize);
            for &(v, boosted_edge) in &self.fwd[lo..hi] {
                if boosted_edge && scratch.bwd_mark[v as usize] {
                    let g = self.globals[v as usize];
                    if g != SUPER_SEED && !boost.contains(NodeId(g)) {
                        let id = NodeId(g);
                        if !out[before..].contains(&id) {
                            out.push(id);
                        }
                    }
                }
            }
        }
        Augmented::Open
    }

    /// Approximate heap bytes of this compressed graph.
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        self.globals.len() * size_of::<u32>()
            + (self.fwd_offsets.len() + self.bwd_offsets.len()) * size_of::<u32>()
            + (self.fwd.len() + self.bwd.len()) * size_of::<(u32, bool)>()
            + self.critical.len() * size_of::<NodeId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-built graph: super(0) --boost--> a(1) --live--> root(2),
    /// plus super --boost--> root directly.
    fn sample() -> CompressedPrr {
        let out_adj = vec![
            vec![(1u32, true), (2u32, true)], // super
            vec![(2u32, false)],              // a
            vec![],                           // root
        ];
        CompressedPrr::from_adjacency(
            2,
            vec![SUPER_SEED, 10, 20],
            &out_adj,
            vec![NodeId(10), NodeId(20)],
            100,
        )
    }

    #[test]
    fn f_empty_is_false() {
        let g = sample();
        let mut scratch = PrrEvalScratch::default();
        assert!(!g.f(&BoostMask::empty(30), &mut scratch));
    }

    #[test]
    fn f_with_critical_node_is_true() {
        let g = sample();
        let mut scratch = PrrEvalScratch::default();
        let b = BoostMask::from_nodes(30, &[NodeId(10)]);
        assert!(g.f(&b, &mut scratch));
        let b2 = BoostMask::from_nodes(30, &[NodeId(20)]);
        assert!(g.f(&b2, &mut scratch));
        let b3 = BoostMask::from_nodes(30, &[NodeId(25)]);
        assert!(!g.f(&b3, &mut scratch));
    }

    #[test]
    fn augmented_critical_empty_b() {
        let g = sample();
        let mut scratch = PrrEvalScratch::default();
        let mut out = Vec::new();
        let res = g.augmented_critical(&BoostMask::empty(30), &mut scratch, &mut out);
        assert!(matches!(res, Augmented::Open));
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![NodeId(10), NodeId(20)]);
    }

    #[test]
    fn augmented_critical_covered() {
        let g = sample();
        let mut scratch = PrrEvalScratch::default();
        let mut out = Vec::new();
        let b = BoostMask::from_nodes(30, &[NodeId(10)]);
        let res = g.augmented_critical(&b, &mut scratch, &mut out);
        assert!(matches!(res, Augmented::Covered));
        assert!(out.is_empty());
    }

    #[test]
    fn memory_accounting_positive() {
        let g = sample();
        assert!(g.memory_bytes() > 0);
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.uncompressed_edges(), 100);
    }

    #[test]
    fn two_hop_boost_requires_both() {
        // super --boost--> a --boost--> root: need both a and root boosted?
        // No: edges are boost(a) and boost(root); f({a}) = false,
        // f({a, root}) = true.
        let out_adj = vec![vec![(1u32, true)], vec![(2u32, true)], vec![]];
        let g = CompressedPrr::from_adjacency(
            2,
            vec![SUPER_SEED, 10, 20],
            &out_adj,
            vec![],
            5,
        );
        let mut scratch = PrrEvalScratch::default();
        assert!(!g.f(&BoostMask::from_nodes(30, &[NodeId(10)]), &mut scratch));
        assert!(g.f(&BoostMask::from_nodes(30, &[NodeId(10), NodeId(20)]), &mut scratch));
        // Augmented criticality given B = {a}: boosting root closes it.
        let mut out = Vec::new();
        let res = g.augmented_critical(
            &BoostMask::from_nodes(30, &[NodeId(10)]),
            &mut scratch,
            &mut out,
        );
        assert!(matches!(res, Augmented::Open));
        assert_eq!(out, vec![NodeId(20)]);
    }
}
