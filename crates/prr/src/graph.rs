//! The compressed PRR-graph representation and its evaluation primitives.
//!
//! Edges are stored *packed*: a single `u32` holds the local head id in the
//! low 31 bits and the live-upon-boost flag in the top bit
//! ([`BOOST_BIT`]). A standalone [`CompressedPrr`] owns its arrays; the
//! evaluation logic lives on the borrowed [`PrrGraphView`] so the flat
//! [`PrrArena`](crate::arena::PrrArena) shares it without copying.

use kboost_diffusion::sim::BoostMask;
use kboost_graph::NodeId;

use crate::arena::PrrGraphView;

/// Sentinel "global id" of the super-seed node (it aggregates the whole
/// live-reachable seed region and corresponds to no single original node).
pub const SUPER_SEED: u32 = u32::MAX;

/// High bit of a packed edge: set iff the edge is live-upon-boost.
pub const BOOST_BIT: u32 = 1 << 31;

/// Packs an edge head and its boost flag into one `u32`.
#[inline]
pub(crate) fn pack_edge(to: u32, boost: bool) -> u32 {
    debug_assert!(to < BOOST_BIT, "local id overflows packed edge");
    to | ((boost as u32) << 31)
}

/// Unpacks an edge into `(head, is_boost)`.
#[inline]
pub(crate) fn unpack_edge(edge: u32) -> (u32, bool) {
    (edge & !BOOST_BIT, edge & BOOST_BIT != 0)
}

/// A compressed boostable PRR-graph (output of Phase II).
///
/// Local node 0 is always the super-seed. Every stored edge is either live
/// or live-upon-boost; `f_R(B)` is the reachability of the root from the
/// super-seed when boost edges with heads in `B` are traversable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompressedPrr {
    pub(crate) root: u32,
    /// Local → global id; `globals[0] == SUPER_SEED`.
    pub(crate) globals: Vec<u32>,
    pub(crate) fwd_offsets: Vec<u32>,
    pub(crate) fwd: Vec<u32>,
    pub(crate) bwd_offsets: Vec<u32>,
    pub(crate) bwd: Vec<u32>,
    pub(crate) critical: Vec<NodeId>,
    pub(crate) uncompressed_edges: u32,
}

/// Reusable buffers for PRR-graph traversals.
#[derive(Default)]
pub struct PrrEvalScratch {
    pub(crate) fwd_mark: Vec<bool>,
    pub(crate) bwd_mark: Vec<bool>,
    pub(crate) stack: Vec<u32>,
}

/// Outcome of the B-augmented criticality computation.
pub enum Augmented {
    /// `f_R(B) = 1` already — the graph is covered by the current set.
    Covered,
    /// Candidates were appended to the output vector.
    Open,
}

impl CompressedPrr {
    /// Assembles a compressed graph from adjacency lists. `globals[0]` must
    /// be [`SUPER_SEED`]. Test-only fixture constructor; the pipeline
    /// assembles graphs through [`from_parts`](Self::from_parts).
    #[cfg(test)]
    pub(crate) fn from_adjacency(
        root: u32,
        globals: Vec<u32>,
        out_adj: &[Vec<(u32, bool)>],
        critical: Vec<NodeId>,
        uncompressed_edges: u32,
    ) -> Self {
        let n = globals.len();
        debug_assert_eq!(out_adj.len(), n);
        debug_assert_eq!(globals[0], SUPER_SEED);

        let m: usize = out_adj.iter().map(Vec::len).sum();
        let mut fwd_offsets = vec![0u32; n + 1];
        for (i, adj) in out_adj.iter().enumerate() {
            fwd_offsets[i + 1] = fwd_offsets[i] + adj.len() as u32;
        }
        let mut fwd = Vec::with_capacity(m);
        for adj in out_adj {
            fwd.extend(adj.iter().map(|&(to, boost)| pack_edge(to, boost)));
        }

        let mut bwd_counts = vec![0u32; n + 1];
        for adj in out_adj {
            for &(to, _) in adj {
                bwd_counts[to as usize + 1] += 1;
            }
        }
        let mut bwd_offsets = bwd_counts;
        for i in 0..n {
            bwd_offsets[i + 1] += bwd_offsets[i];
        }
        let mut cursor: Vec<u32> = bwd_offsets[..n].to_vec();
        let mut bwd = vec![0u32; m];
        for (from, adj) in out_adj.iter().enumerate() {
            for &(to, boost) in adj {
                bwd[cursor[to as usize] as usize] = pack_edge(from as u32, boost);
                cursor[to as usize] += 1;
            }
        }

        CompressedPrr {
            root,
            globals,
            fwd_offsets,
            fwd,
            bwd_offsets,
            bwd,
            critical,
            uncompressed_edges,
        }
    }

    /// Assembles a compressed graph from CSR-shaped phase-II output,
    /// producing arrays byte-identical to
    /// [`from_adjacency`](Self::from_adjacency) on the equivalent nested
    /// adjacency — the oracle path of the shard byte-equality tests relies
    /// on that.
    pub(crate) fn from_parts(parts: crate::compress::CompressedParts) -> Self {
        let n = parts.globals.len();
        debug_assert_eq!(parts.adj_off.len(), n + 1);
        debug_assert_eq!(parts.globals[0], SUPER_SEED);
        let m = parts.adj.len();

        let mut fwd = Vec::with_capacity(m);
        fwd.extend(parts.adj.iter().map(|&(to, boost)| pack_edge(to, boost)));

        let mut bwd_counts = vec![0u32; n + 1];
        for &(to, _) in &parts.adj {
            bwd_counts[to as usize + 1] += 1;
        }
        let mut bwd_offsets = bwd_counts;
        for i in 0..n {
            bwd_offsets[i + 1] += bwd_offsets[i];
        }
        let mut cursor: Vec<u32> = bwd_offsets[..n].to_vec();
        let mut bwd = vec![0u32; m];
        for from in 0..n {
            let (lo, hi) = (
                parts.adj_off[from] as usize,
                parts.adj_off[from + 1] as usize,
            );
            for &(to, boost) in &parts.adj[lo..hi] {
                bwd[cursor[to as usize] as usize] = pack_edge(from as u32, boost);
                cursor[to as usize] += 1;
            }
        }

        CompressedPrr {
            root: parts.root,
            globals: parts.globals,
            fwd_offsets: parts.adj_off,
            fwd,
            bwd_offsets,
            bwd,
            critical: parts.critical,
            uncompressed_edges: parts.uncompressed,
        }
    }

    /// Borrows this graph as a [`PrrGraphView`] — the shared evaluation
    /// interface also used for arena-resident graphs.
    #[inline]
    pub fn view(&self) -> PrrGraphView<'_> {
        PrrGraphView::from_parts(
            self.root,
            &self.globals,
            &self.fwd_offsets,
            &self.fwd,
            &self.bwd_offsets,
            &self.bwd,
            &self.critical,
            self.uncompressed_edges,
        )
    }

    /// Number of local nodes (super-seed included).
    pub fn num_nodes(&self) -> usize {
        self.globals.len()
    }

    /// Number of stored edges.
    pub fn num_edges(&self) -> usize {
        self.fwd.len()
    }

    /// Number of phase-I edges this graph had before compression.
    pub fn uncompressed_edges(&self) -> u32 {
        self.uncompressed_edges
    }

    /// The critical nodes `C_R = {v : f_R({v}) = 1}` (global ids).
    pub fn critical(&self) -> &[NodeId] {
        &self.critical
    }

    /// The local id of the root.
    pub fn root_local(&self) -> u32 {
        self.root
    }

    /// The global id of local node `v`, or `None` for the super-seed.
    pub fn global_of(&self, v: u32) -> Option<NodeId> {
        self.view().global_of(v)
    }

    /// Evaluates `f_R(B)`: does boosting `B` activate the root?
    ///
    /// For a stored (boostable) graph there is no live super-seed→root
    /// path, so this is exactly Definition 3's `f_R`.
    pub fn f(&self, boost: &BoostMask, scratch: &mut PrrEvalScratch) -> bool {
        self.view().f(boost, scratch)
    }

    /// Computes the *B-augmented critical set*; see
    /// [`PrrGraphView::augmented_critical`].
    pub fn augmented_critical(
        &self,
        boost: &BoostMask,
        scratch: &mut PrrEvalScratch,
        out: &mut Vec<NodeId>,
    ) -> Augmented {
        self.view().augmented_critical(boost, scratch, out)
    }

    /// Approximate heap bytes of this compressed graph.
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        self.globals.len() * size_of::<u32>()
            + (self.fwd_offsets.len() + self.bwd_offsets.len()) * size_of::<u32>()
            + (self.fwd.len() + self.bwd.len()) * size_of::<u32>()
            + self.critical.len() * size_of::<NodeId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-built graph: super(0) --boost--> a(1) --live--> root(2),
    /// plus super --boost--> root directly.
    fn sample() -> CompressedPrr {
        let out_adj = vec![
            vec![(1u32, true), (2u32, true)], // super
            vec![(2u32, false)],              // a
            vec![],                           // root
        ];
        CompressedPrr::from_adjacency(
            2,
            vec![SUPER_SEED, 10, 20],
            &out_adj,
            vec![NodeId(10), NodeId(20)],
            100,
        )
    }

    #[test]
    fn f_empty_is_false() {
        let g = sample();
        let mut scratch = PrrEvalScratch::default();
        assert!(!g.f(&BoostMask::empty(30), &mut scratch));
    }

    #[test]
    fn f_with_critical_node_is_true() {
        let g = sample();
        let mut scratch = PrrEvalScratch::default();
        let b = BoostMask::from_nodes(30, &[NodeId(10)]);
        assert!(g.f(&b, &mut scratch));
        let b2 = BoostMask::from_nodes(30, &[NodeId(20)]);
        assert!(g.f(&b2, &mut scratch));
        let b3 = BoostMask::from_nodes(30, &[NodeId(25)]);
        assert!(!g.f(&b3, &mut scratch));
    }

    #[test]
    fn augmented_critical_empty_b() {
        let g = sample();
        let mut scratch = PrrEvalScratch::default();
        let mut out = Vec::new();
        let res = g.augmented_critical(&BoostMask::empty(30), &mut scratch, &mut out);
        assert!(matches!(res, Augmented::Open));
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![NodeId(10), NodeId(20)]);
    }

    #[test]
    fn augmented_critical_covered() {
        let g = sample();
        let mut scratch = PrrEvalScratch::default();
        let mut out = Vec::new();
        let b = BoostMask::from_nodes(30, &[NodeId(10)]);
        let res = g.augmented_critical(&b, &mut scratch, &mut out);
        assert!(matches!(res, Augmented::Covered));
        assert!(out.is_empty());
    }

    #[test]
    fn memory_accounting_positive() {
        let g = sample();
        assert!(g.memory_bytes() > 0);
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.uncompressed_edges(), 100);
    }

    #[test]
    fn packed_edges_round_trip() {
        for (to, boost) in [(0u32, false), (0, true), (7, true), (BOOST_BIT - 1, false)] {
            assert_eq!(unpack_edge(pack_edge(to, boost)), (to, boost));
        }
    }

    #[test]
    fn two_hop_boost_requires_both() {
        // super --boost--> a --boost--> root: need both a and root boosted?
        // No: edges are boost(a) and boost(root); f({a}) = false,
        // f({a, root}) = true.
        let out_adj = vec![vec![(1u32, true)], vec![(2u32, true)], vec![]];
        let g = CompressedPrr::from_adjacency(2, vec![SUPER_SEED, 10, 20], &out_adj, vec![], 5);
        let mut scratch = PrrEvalScratch::default();
        assert!(!g.f(&BoostMask::from_nodes(30, &[NodeId(10)]), &mut scratch));
        assert!(g.f(
            &BoostMask::from_nodes(30, &[NodeId(10), NodeId(20)]),
            &mut scratch
        ));
        // Augmented criticality given B = {a}: boosting root closes it.
        let mut out = Vec::new();
        let res = g.augmented_critical(
            &BoostMask::from_nodes(30, &[NodeId(10)]),
            &mut scratch,
            &mut out,
        );
        assert!(matches!(res, Augmented::Open));
        assert_eq!(out, vec![NodeId(20)]);
    }
}
