//! Phase II — PRR-graph compression (Section V-A).
//!
//! The compression keeps `f_R(B)` and `f⁻_R(B)` unchanged for every
//! `|B| ≤ k` while shrinking the graph by orders of magnitude (the paper
//! reports ratios of 27–3125, Tables 2–3):
//!
//! 1. merge the live-forward closure `X` of the seeds into one *super-seed*
//!    (boosting inside `X` can never matter);
//! 2. drop every node whose cheapest super-seed→node→root path needs more
//!    than `k` boost edges (`d_S[v] + d'_r[v] > k`);
//! 3. shortcut nodes with a live path to the root (`d'_r[v] = 0`) straight
//!    to it — once such a node activates, the root follows;
//! 4. keep only nodes lying on some super-seed→root path.
//!
//! The critical set falls out for free: after merging, every edge leaving
//! the super-seed is live-upon-boost (a live one would have extended `X`),
//! so `C_R` is exactly the heads of super-seed edges that live-reach the
//! root.
//!
//! # Allocation discipline
//!
//! Compression runs once per boostable sample, which puts it squarely on
//! the sampling hot path. All working state — the global→local id map
//! (epoch-stamped, the same stamp/round trick the phase-I scratch uses),
//! the staged CSR adjacencies, the 0-1 BFS distance arrays and deque, the
//! reachability flags — lives in a thread-local [`CompressScratch`] whose
//! buffers are reused across samples; steady-state compression performs no
//! heap allocation beyond growing the output [`CompressedParts`]. Every
//! intermediate ordering (local ids by first appearance, per-node
//! adjacency in edge-scan order, critical nodes in super-seed edge order)
//! is insertion-driven, never hash-iteration-driven, so the output is
//! deterministic and identical to the historical `HashMap`-based
//! implementation.

use std::collections::VecDeque;

use kboost_graph::NodeId;

use crate::gen::RawPrr;
use crate::graph::{CompressedPrr, SUPER_SEED};

const INF: u32 = u32::MAX;

/// Packed local-edge encoding shared with the phase-I kernel: an edge
/// `(from, to, is_boost)` in raw-local ids is stored as
/// `(from, to | LEDGE_BOOST * is_boost)`. Local ids stay below 2³¹ (they
/// index nodes of one PRR sample), so bit 31 of the head is free.
pub(crate) const LEDGE_BOOST: u32 = 1 << 31;
/// Mask clearing [`LEDGE_BOOST`] to recover the head's local id.
pub(crate) const LEDGE_MASK: u32 = LEDGE_BOOST - 1;

/// The assembled output of Phase II before any storage commitment: the
/// shard pipeline appends it straight into a
/// [`PrrArenaShard`](crate::arena::PrrArenaShard), while the single-graph
/// oracle path materializes it as a [`CompressedPrr`]. Adjacency is stored
/// in CSR form (`adj_off` has `globals.len() + 1` entries, `adj_off[0] ==
/// 0`) so the kernel path can reuse one `CompressedParts` across samples
/// without per-node `Vec`s.
#[derive(Default)]
pub(crate) struct CompressedParts {
    /// Local id of the root.
    pub root: u32,
    /// Local → global id table; `globals[0] == SUPER_SEED`.
    pub globals: Vec<u32>,
    /// Per-node edge ranges into `adj` (`globals.len() + 1` entries).
    pub adj_off: Vec<u32>,
    /// Outgoing edges `(head, is_boost)` in local ids, node-major.
    pub adj: Vec<(u32, bool)>,
    /// Critical nodes `C_R` (global ids).
    pub critical: Vec<NodeId>,
    /// Phase-I edge count before compression.
    pub uncompressed: u32,
}

impl CompressedParts {
    /// Resets for reuse without releasing capacity.
    pub fn clear(&mut self) {
        self.root = 0;
        self.globals.clear();
        self.adj_off.clear();
        self.adj.clear();
        self.critical.clear();
        self.uncompressed = 0;
    }
}

/// Reusable phase-II working state; one per thread, reused across samples.
///
/// The localization half (`gstamp`/`glocal`/`nodes`/`ledges`/
/// `seed_locals`) is only exercised by the scalar path
/// ([`compress_parts_into`]): the kernel emits raw-local ids straight out
/// of phase I and enters through [`compress_locals_into`], which skips the
/// global→local assign pass entirely and uses just the [`CoreScratch`].
struct CompressScratch {
    // Epoch-stamped global → raw-local id map, grown on demand to cover
    // the largest global id seen.
    gstamp: Vec<u32>,
    glocal: Vec<u32>,
    round: u32,
    // Raw-local space (packed [`LEDGE_BOOST`] edge encoding).
    nodes: Vec<u32>,
    ledges: Vec<(u32, u32)>,
    seed_locals: Vec<u32>,
    core: CoreScratch,
}

/// The compression core's working state, shared by the scalar and kernel
/// entry points; everything here is indexed by raw-local or stage-local
/// ids only.
struct CoreScratch {
    live_off: Vec<u32>,
    live_adj: Vec<u32>,
    in_x: Vec<bool>,
    stack: Vec<u32>,
    // Stage space (super-seed 0 + non-X nodes).
    stage_of: Vec<u32>,
    stage_nodes: Vec<u32>,
    out_off: Vec<u32>,
    out_adj: Vec<(u32, bool)>,
    super_heads: Vec<u32>,
    in_off: Vec<u32>,
    in_adj: Vec<(u32, bool)>,
    out2_off: Vec<u32>,
    out2_adj: Vec<(u32, bool)>,
    in2_off: Vec<u32>,
    in2_adj: Vec<u32>,
    d_s: Vec<u32>,
    d_r: Vec<u32>,
    deque: VecDeque<(u32, u32)>,
    fwd_seen: Vec<bool>,
    bwd_seen: Vec<bool>,
    final_of: Vec<u32>,
    stage_of_final: Vec<u32>,
    cursor: Vec<u32>,
}

impl CompressScratch {
    fn new() -> Self {
        CompressScratch {
            gstamp: Vec::new(),
            glocal: Vec::new(),
            round: 0,
            nodes: Vec::new(),
            ledges: Vec::new(),
            seed_locals: Vec::new(),
            core: CoreScratch::new(),
        }
    }
}

impl CoreScratch {
    fn new() -> Self {
        CoreScratch {
            live_off: Vec::new(),
            live_adj: Vec::new(),
            in_x: Vec::new(),
            stack: Vec::new(),
            stage_of: Vec::new(),
            stage_nodes: Vec::new(),
            out_off: Vec::new(),
            out_adj: Vec::new(),
            super_heads: Vec::new(),
            in_off: Vec::new(),
            in_adj: Vec::new(),
            out2_off: Vec::new(),
            out2_adj: Vec::new(),
            in2_off: Vec::new(),
            in2_adj: Vec::new(),
            d_s: Vec::new(),
            d_r: Vec::new(),
            deque: VecDeque::new(),
            fwd_seen: Vec::new(),
            bwd_seen: Vec::new(),
            final_of: Vec::new(),
            stage_of_final: Vec::new(),
            cursor: Vec::new(),
        }
    }
}

thread_local! {
    static CSCRATCH: std::cell::RefCell<CompressScratch> =
        std::cell::RefCell::new(CompressScratch::new());
}

/// Compresses a phase-I raw PRR-graph into a standalone [`CompressedPrr`].
/// Returns `None` when the graph turns out to be non-boostable (no
/// super-seed→root path within the `k`-boost budget) — callers count it as
/// hopeless.
///
/// The sampling hot path does not go through this function: it uses
/// [`compress_parts_into`] and appends directly into an arena shard.
pub fn compress(raw: &RawPrr, k: usize) -> Option<CompressedPrr> {
    compress_parts(raw, k).map(CompressedPrr::from_parts)
}

/// Phase-II compression into a freshly allocated [`CompressedParts`] —
/// the single-sample convenience wrapper over [`compress_parts_into`].
pub(crate) fn compress_parts(raw: &RawPrr, k: usize) -> Option<CompressedParts> {
    let mut parts = CompressedParts::default();
    if compress_parts_into(raw.root, &raw.edges, &raw.seeds, k, &mut parts) {
        Some(parts)
    } else {
        None
    }
}

/// Phase-II compression over *global*-id phase-I output: localizes the
/// edge/seed lists through the epoch-stamped map, then runs the shared
/// core. Compresses into `parts` (cleared first), returning `false` when
/// the graph is non-boostable within budget `k` (in which case `parts`
/// holds no meaningful content). Thread-local scratch makes repeated calls
/// allocation-free.
///
/// The sampling hot path skips this localization: the phase-I kernel
/// assigns local ids during its BFS (the first-touch order provably
/// equals the first-appearance order this assign pass would produce) and
/// enters through [`compress_locals_into`].
pub(crate) fn compress_parts_into(
    root: u32,
    redges: &[(u32, u32, bool)],
    rseeds: &[u32],
    k: usize,
    parts: &mut CompressedParts,
) -> bool {
    CSCRATCH.with_borrow_mut(|s| {
        s.round += 1;
        if s.round == u32::MAX {
            s.gstamp.fill(0);
            s.round = 1;
        }
        let round = s.round;
        let CompressScratch {
            gstamp,
            glocal,
            round: _,
            nodes,
            ledges,
            seed_locals,
            core,
        } = s;

        // Local ids by first appearance (root, then each edge's endpoints
        // in scan order) via the epoch-stamped map — the same order the
        // historical HashMap entry API produced.
        nodes.clear();
        ledges.clear();
        seed_locals.clear();
        let mut assign = |g: u32| -> u32 {
            let gi = g as usize;
            if gi >= gstamp.len() {
                gstamp.resize(gi + 1, 0);
                glocal.resize(gi + 1, 0);
            }
            if gstamp[gi] != round {
                gstamp[gi] = round;
                glocal[gi] = nodes.len() as u32;
                nodes.push(g);
            }
            glocal[gi]
        };
        let root_l = assign(root);
        debug_assert_eq!(root_l, 0, "root is always the first local id");
        for &(u, v, b) in redges {
            let ul = assign(u);
            let vl = assign(v);
            ledges.push((ul, vl | if b { LEDGE_BOOST } else { 0 }));
        }
        for &g in rseeds {
            seed_locals.push(assign(g));
        }
        compress_core(nodes, ledges, seed_locals, k, parts, core)
    })
}

/// Phase-II compression over *local*-id phase-I output — the kernel fast
/// path. `globals` maps raw-local → global ids with the root at index 0,
/// `ledges` is the packed [`LEDGE_BOOST`] edge list, and `lseeds` the
/// discovered seeds, all exactly as the phase-I kernel leaves them in its
/// scratch. Output-identical to routing the same sample through
/// [`compress_parts_into`] (the kernel equivalence suites pin this).
pub(crate) fn compress_locals_into(
    globals: &[u32],
    ledges: &[(u32, u32)],
    lseeds: &[u32],
    k: usize,
    parts: &mut CompressedParts,
) -> bool {
    CSCRATCH.with_borrow_mut(|s| compress_core(globals, ledges, lseeds, k, parts, &mut s.core))
}

/// In-place prefix sum: `off[i] += off[i-1]`, turning per-node counts
/// stored at `off[v + 1]` into CSR offsets.
fn prefix_sum(off: &mut [u32]) {
    for i in 1..off.len() {
        off[i] += off[i - 1];
    }
}

/// 0-1 BFS over a CSR adjacency: boost edges weigh 1, live edges 0.
/// Reuses the caller's distance vector and deque.
fn zero_one_bfs_csr(
    off: &[u32],
    adj: &[(u32, bool)],
    n: usize,
    start: u32,
    dist: &mut Vec<u32>,
    deque: &mut VecDeque<(u32, u32)>,
) {
    dist.clear();
    dist.resize(n, INF);
    deque.clear();
    dist[start as usize] = 0;
    deque.push_back((start, 0u32));
    while let Some((u, du)) = deque.pop_front() {
        if du > dist[u as usize] {
            continue;
        }
        let (lo, hi) = (off[u as usize] as usize, off[u as usize + 1] as usize);
        for &(v, boost) in &adj[lo..hi] {
            let nd = du + boost as u32;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                if boost {
                    deque.push_back((v, nd));
                } else {
                    deque.push_front((v, nd));
                }
            }
        }
    }
}

fn compress_core(
    nodes: &[u32],
    ledges: &[(u32, u32)],
    seed_locals: &[u32],
    k: usize,
    parts: &mut CompressedParts,
    s: &mut CoreScratch,
) -> bool {
    let k = k as u32;
    parts.clear();

    let CoreScratch {
        live_off,
        live_adj,
        in_x,
        stack,
        stage_of,
        stage_nodes,
        out_off,
        out_adj,
        super_heads,
        in_off,
        in_adj,
        out2_off,
        out2_adj,
        in2_off,
        in2_adj,
        d_s,
        d_r,
        deque,
        fwd_seen,
        bwd_seen,
        final_of,
        stage_of_final,
        cursor,
    } = s;

    // Raw-local ids are first-appearance ordered with the root at 0 —
    // guaranteed by both the scalar localization and the phase-I kernel.
    let root_l: u32 = 0;
    let n0 = nodes.len();

    // ---- X: live-forward closure of the seeds -------------------------
    live_off.clear();
    live_off.resize(n0 + 1, 0);
    for &(u, pv) in ledges.iter() {
        if pv & LEDGE_BOOST == 0 {
            live_off[u as usize + 1] += 1;
        }
    }
    prefix_sum(live_off);
    live_adj.clear();
    live_adj.resize(live_off[n0] as usize, 0);
    cursor.clear();
    cursor.extend_from_slice(&live_off[..n0]);
    for &(u, pv) in ledges.iter() {
        if pv & LEDGE_BOOST == 0 {
            live_adj[cursor[u as usize] as usize] = pv;
            cursor[u as usize] += 1;
        }
    }
    in_x.clear();
    in_x.resize(n0, false);
    stack.clear();
    for &sl in seed_locals.iter() {
        if !in_x[sl as usize] {
            in_x[sl as usize] = true;
            stack.push(sl);
        }
    }
    while let Some(u) = stack.pop() {
        let (lo, hi) = (
            live_off[u as usize] as usize,
            live_off[u as usize + 1] as usize,
        );
        for &v in &live_adj[lo..hi] {
            if !in_x[v as usize] {
                in_x[v as usize] = true;
                stack.push(v);
            }
        }
    }
    if in_x[root_l as usize] {
        // Live seed→root path: activated (phase I normally catches this).
        return false;
    }

    // ---- Stage-2 graph: super-seed 0 + non-X nodes --------------------
    stage_of.clear();
    stage_of.resize(n0, INF);
    stage_nodes.clear();
    stage_nodes.push(SUPER_SEED); // stage-local -> raw-local (marker for 0)
    for v in 0..n0 as u32 {
        if !in_x[v as usize] {
            stage_of[v as usize] = stage_nodes.len() as u32;
            stage_nodes.push(v);
        }
    }
    let sn = stage_nodes.len();
    let root_s = stage_of[root_l as usize];

    // Out-CSR: count (deduplicating super-seed heads in first-seen order),
    // prefix-sum, scatter in edge-scan order — per-node edge order matches
    // the per-node `Vec` pushes of the historical implementation.
    out_off.clear();
    out_off.resize(sn + 1, 0);
    super_heads.clear();
    fwd_seen.clear(); // reused here as the super-head dedup flags
    fwd_seen.resize(sn, false);
    for &(u, pv) in ledges.iter() {
        let v = pv & LEDGE_MASK;
        if in_x[v as usize] {
            continue; // edges into the merged region are useless
        }
        let sv = stage_of[v as usize];
        if in_x[u as usize] {
            debug_assert!(
                pv & LEDGE_BOOST != 0,
                "a live edge out of X would have extended X"
            );
            if !fwd_seen[sv as usize] {
                fwd_seen[sv as usize] = true;
                super_heads.push(sv);
                out_off[1] += 1;
            }
        } else {
            out_off[stage_of[u as usize] as usize + 1] += 1;
        }
    }
    prefix_sum(out_off);
    out_adj.clear();
    out_adj.resize(out_off[sn] as usize, (0, false));
    cursor.clear();
    cursor.extend_from_slice(&out_off[..sn]);
    for &sv in super_heads.iter() {
        out_adj[cursor[0] as usize] = (sv, true);
        cursor[0] += 1;
    }
    for &(u, pv) in ledges.iter() {
        let v = pv & LEDGE_MASK;
        if in_x[v as usize] || in_x[u as usize] {
            continue;
        }
        let su = stage_of[u as usize] as usize;
        out_adj[cursor[su] as usize] = (stage_of[v as usize], pv & LEDGE_BOOST != 0);
        cursor[su] += 1;
    }

    // ---- d_S (forward from super) and d'_r (backward from root) -------
    zero_one_bfs_csr(out_off, out_adj, sn, 0, d_s, deque);
    if d_s[root_s as usize] == INF || d_s[root_s as usize] > k {
        return false; // hopeless within budget
    }
    in_off.clear();
    in_off.resize(sn + 1, 0);
    for &(v, _) in out_adj.iter() {
        in_off[v as usize + 1] += 1;
    }
    prefix_sum(in_off);
    in_adj.clear();
    in_adj.resize(out_adj.len(), (0, false));
    cursor.clear();
    cursor.extend_from_slice(&in_off[..sn]);
    for u in 0..sn {
        let (lo, hi) = (out_off[u] as usize, out_off[u + 1] as usize);
        for &(v, _b) in &out_adj[lo..hi] {
            in_adj[cursor[v as usize] as usize] = (u as u32, _b);
            cursor[v as usize] += 1;
        }
    }
    zero_one_bfs_csr(in_off, in_adj, sn, root_s, d_r, deque);

    // ---- Budget filter + live shortcut --------------------------------
    let keep = |v: u32| -> bool {
        let (a, b) = (d_s[v as usize], d_r[v as usize]);
        a != INF && b != INF && a + b <= k
    };
    // Shortcutting can't edit a CSR list in place, so build a second
    // out-CSR with shortcut nodes' lists replaced by the single live edge
    // to the root.
    out2_off.clear();
    out2_off.resize(sn + 1, 0);
    for v in 0..sn as u32 {
        let shortcut = v != 0 && v != root_s && keep(v) && d_r[v as usize] == 0;
        out2_off[v as usize + 1] = if shortcut {
            1
        } else {
            out_off[v as usize + 1] - out_off[v as usize]
        };
    }
    prefix_sum(out2_off);
    out2_adj.clear();
    out2_adj.resize(out2_off[sn] as usize, (0, false));
    for v in 0..sn {
        let dst = out2_off[v] as usize;
        let shortcut = v != 0 && v as u32 != root_s && keep(v as u32) && d_r[v] == 0;
        if shortcut {
            out2_adj[dst] = (root_s, false);
        } else {
            let (lo, hi) = (out_off[v] as usize, out_off[v + 1] as usize);
            out2_adj[dst..dst + (hi - lo)].copy_from_slice(&out_adj[lo..hi]);
        }
    }

    // ---- Final pass: nodes on some super→root path --------------------
    fwd_seen.clear();
    fwd_seen.resize(sn, false);
    stack.clear();
    if keep(0) {
        fwd_seen[0] = true;
        stack.push(0);
        while let Some(u) = stack.pop() {
            let (lo, hi) = (
                out2_off[u as usize] as usize,
                out2_off[u as usize + 1] as usize,
            );
            for &(v, _) in &out2_adj[lo..hi] {
                if keep(v) && !fwd_seen[v as usize] {
                    fwd_seen[v as usize] = true;
                    stack.push(v);
                }
            }
        }
    }
    in2_off.clear();
    in2_off.resize(sn + 1, 0);
    for &(v, _) in out2_adj.iter() {
        in2_off[v as usize + 1] += 1;
    }
    prefix_sum(in2_off);
    in2_adj.clear();
    in2_adj.resize(out2_adj.len(), 0);
    cursor.clear();
    cursor.extend_from_slice(&in2_off[..sn]);
    for u in 0..sn {
        let (lo, hi) = (out2_off[u] as usize, out2_off[u + 1] as usize);
        for &(v, _) in &out2_adj[lo..hi] {
            in2_adj[cursor[v as usize] as usize] = u as u32;
            cursor[v as usize] += 1;
        }
    }
    bwd_seen.clear();
    bwd_seen.resize(sn, false);
    stack.clear();
    if keep(root_s) {
        bwd_seen[root_s as usize] = true;
        stack.push(root_s);
        while let Some(u) = stack.pop() {
            let (lo, hi) = (
                in2_off[u as usize] as usize,
                in2_off[u as usize + 1] as usize,
            );
            for &v in &in2_adj[lo..hi] {
                if keep(v) && !bwd_seen[v as usize] {
                    bwd_seen[v as usize] = true;
                    stack.push(v);
                }
            }
        }
    }
    let final_keep = |v: u32| -> bool { keep(v) && fwd_seen[v as usize] && bwd_seen[v as usize] };
    if !final_keep(0) || !final_keep(root_s) {
        return false;
    }

    // ---- Relabel + assemble -------------------------------------------
    final_of.clear();
    final_of.resize(sn, INF);
    stage_of_final.clear();
    for v in 0..sn as u32 {
        if final_keep(v) {
            final_of[v as usize] = parts.globals.len() as u32;
            stage_of_final.push(v);
            let raw_local = stage_nodes[v as usize];
            parts.globals.push(if raw_local == SUPER_SEED {
                SUPER_SEED
            } else {
                nodes[raw_local as usize]
            });
        }
    }
    parts.adj_off.push(0);
    for &v in stage_of_final.iter() {
        let (lo, hi) = (
            out2_off[v as usize] as usize,
            out2_off[v as usize + 1] as usize,
        );
        for &(w, b) in &out2_adj[lo..hi] {
            if final_keep(w) {
                parts.adj.push((final_of[w as usize], b));
            }
        }
        parts.adj_off.push(parts.adj.len() as u32);
    }

    // Critical nodes: heads of super-seed (boost) edges that live-reach
    // the root.
    let zero = parts.adj_off[1] as usize;
    for &(v, _) in &parts.adj[..zero] {
        let stage_v = stage_of_final[v as usize];
        if d_r[stage_v as usize] == 0 {
            parts.critical.push(NodeId(parts.globals[v as usize]));
        }
    }

    parts.root = final_of[root_s as usize];
    parts.uncompressed = ledges.len() as u32;
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{raw_f, PrrGenerator};
    use crate::graph::PrrEvalScratch;
    use kboost_diffusion::sim::BoostMask;
    use kboost_graph::{DiGraph, GraphBuilder};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Compare compressed f_R(B) with the raw reference for all B with
    /// |B| ≤ k over a sampled PRR-graph.
    fn check_equivalence(g: &DiGraph, seeds: &[NodeId], k: usize, root: NodeId, seed: u64) {
        let generator = PrrGenerator::new(g, seeds, k);
        let mut rng = SmallRng::seed_from_u64(seed);
        let Some(raw) = generator.phase1_raw(root, &mut rng) else {
            return;
        };
        let compressed = compress(&raw, k);
        let n = g.num_nodes();
        let mut scratch = PrrEvalScratch::default();

        // Enumerate all subsets of nodes of size ≤ k (graphs are tiny).
        let subsets = 1u32 << n;
        for bits in 0..subsets {
            if (bits.count_ones() as usize) > k {
                continue;
            }
            let members: Vec<NodeId> = (0..n as u32)
                .filter(|i| bits >> i & 1 == 1)
                .map(NodeId)
                .collect();
            let mask = BoostMask::from_nodes(n, &members);
            let expected = raw_f(&raw, &mask);
            let got = compressed
                .as_ref()
                .map(|c| c.f(&mask, &mut scratch))
                .unwrap_or(false);
            assert_eq!(expected, got, "B = {members:?} (bits {bits:b})");
        }

        // Critical set must equal the definitional {v : f({v}) = 1}.
        if let Some(c) = &compressed {
            let mut expect: Vec<NodeId> = (0..n as u32)
                .map(NodeId)
                .filter(|&v| raw_f(&raw, &BoostMask::from_nodes(n, &[v])))
                .collect();
            let mut got: Vec<NodeId> = c.critical().to_vec();
            expect.sort_unstable();
            got.sort_unstable();
            assert_eq!(expect, got, "critical set mismatch");
        }
    }

    fn random_graph(n: usize, m: usize, seed: u64) -> DiGraph {
        use kboost_graph::generators::erdos_renyi;
        use kboost_graph::probability::ProbabilityModel;
        let mut rng = SmallRng::seed_from_u64(seed);
        erdos_renyi(n, m, ProbabilityModel::Constant(0.4), 2.5, &mut rng)
    }

    #[test]
    fn equivalence_on_random_graphs() {
        for seed in 0..60 {
            let g = random_graph(8, 20, seed);
            for k in [1usize, 2, 3] {
                check_equivalence(&g, &[NodeId(0)], k, NodeId(7), seed * 31 + k as u64);
            }
        }
    }

    #[test]
    fn equivalence_with_two_seeds() {
        for seed in 0..40 {
            let g = random_graph(9, 24, seed + 1000);
            check_equivalence(&g, &[NodeId(0), NodeId(1)], 2, NodeId(8), seed * 7);
        }
    }

    #[test]
    fn compress_deterministic_chain() {
        // s -(live)-> a -(boost)-> b -(live)-> r : C_R = {b}.
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 1.0, 1.0).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.0, 1.0).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 1.0, 1.0).unwrap();
        let g = b.build().unwrap();
        let generator = PrrGenerator::new(&g, &[NodeId(0)], 2);
        let mut rng = SmallRng::seed_from_u64(2);
        let raw = generator.phase1_raw(NodeId(3), &mut rng).unwrap();
        let c = compress(&raw, 2).expect("boostable");
        assert_eq!(c.critical(), &[NodeId(2)]);
        // Super-seed merges {s, a}; nodes: super, b, r.
        assert_eq!(c.num_nodes(), 3);
        assert_eq!(c.num_edges(), 2);
    }

    #[test]
    fn hopeless_when_budget_too_small() {
        // Two boost edges in series need k >= 2.
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 0.0, 1.0).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.0, 1.0).unwrap();
        let g = b.build().unwrap();
        // Generate with prune k=2 so the raw graph includes both edges,
        // but compress with budget k=1.
        let generator = PrrGenerator::new(&g, &[NodeId(0)], 2);
        let mut rng = SmallRng::seed_from_u64(4);
        let raw = generator.phase1_raw(NodeId(2), &mut rng).unwrap();
        assert!(compress(&raw, 1).is_none());
        assert!(compress(&raw, 2).is_some());
    }

    #[test]
    fn scratch_reuse_is_stateless_across_samples() {
        // Running many different compressions through the same
        // thread-local scratch must give the same output as a fresh
        // process would: interleave two raw graphs and check both keep
        // producing identical CompressedParts every time.
        let g = random_graph(10, 30, 77);
        let generator = PrrGenerator::new(&g, &[NodeId(0)], 2);
        let mut rng = SmallRng::seed_from_u64(123);
        let mut raws = Vec::new();
        for root in 0..10u32 {
            if let Some(raw) = generator.phase1_raw(NodeId(root % 10), &mut rng) {
                raws.push(raw);
            }
        }
        let baseline: Vec<_> = raws.iter().map(|r| compress_parts(r, 2)).collect();
        for _ in 0..3 {
            for (raw, base) in raws.iter().zip(&baseline) {
                let again = compress_parts(raw, 2);
                match (base, &again) {
                    (None, None) => {}
                    (Some(a), Some(b)) => {
                        assert_eq!(a.root, b.root);
                        assert_eq!(a.globals, b.globals);
                        assert_eq!(a.adj_off, b.adj_off);
                        assert_eq!(a.adj, b.adj);
                        assert_eq!(a.critical, b.critical);
                        assert_eq!(a.uncompressed, b.uncompressed);
                    }
                    _ => panic!("boostability changed across scratch reuse"),
                }
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    //! Property-based compression equivalence: on arbitrary random graphs
    //! and budgets, the compressed PRR-graph answers every `f_R(B)` query
    //! (|B| ≤ k) exactly like the uncompressed phase-I graph, and the
    //! critical set matches its definition.

    use super::*;
    use crate::gen::{raw_f, PrrGenerator};
    use crate::graph::PrrEvalScratch;
    use kboost_diffusion::sim::BoostMask;
    use kboost_graph::generators::erdos_renyi;
    use kboost_graph::probability::ProbabilityModel;
    use kboost_graph::NodeId;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn compression_preserves_f_for_all_small_b(
            graph_seed in 0u64..10_000,
            status_seed in 0u64..10_000,
            k in 1usize..4,
            p in 0.2f64..0.7,
            root in 0u32..8,
        ) {
            let mut rng = SmallRng::seed_from_u64(graph_seed);
            let g = erdos_renyi(8, 18, ProbabilityModel::Constant(p), 2.0, &mut rng);
            let generator = PrrGenerator::new(&g, &[NodeId(0)], k);
            let mut srng = SmallRng::seed_from_u64(status_seed);
            let Some(raw) = generator.phase1_raw(NodeId(root), &mut srng) else {
                return Ok(());
            };
            let compressed = compress(&raw, k);
            let mut scratch = PrrEvalScratch::default();
            for bits in 0u32..256 {
                if bits.count_ones() as usize > k {
                    continue;
                }
                let members: Vec<NodeId> =
                    (0..8u32).filter(|i| bits >> i & 1 == 1).map(NodeId).collect();
                let mask = BoostMask::from_nodes(8, &members);
                let expected = raw_f(&raw, &mask);
                let got = compressed
                    .as_ref()
                    .map(|c| c.f(&mask, &mut scratch))
                    .unwrap_or(false);
                prop_assert_eq!(expected, got, "B = {:?}", members);
            }
        }

        #[test]
        fn critical_set_matches_definition(
            graph_seed in 0u64..10_000,
            status_seed in 0u64..10_000,
            root in 0u32..8,
        ) {
            let k = 2usize;
            let mut rng = SmallRng::seed_from_u64(graph_seed);
            let g = erdos_renyi(8, 16, ProbabilityModel::Constant(0.4), 2.2, &mut rng);
            let generator = PrrGenerator::new(&g, &[NodeId(0), NodeId(1)], k);
            let mut srng = SmallRng::seed_from_u64(status_seed);
            let Some(raw) = generator.phase1_raw(NodeId(root), &mut srng) else {
                return Ok(());
            };
            let Some(c) = compress(&raw, k) else { return Ok(()) };
            let mut expect: Vec<NodeId> = (0..8u32)
                .map(NodeId)
                .filter(|&v| raw_f(&raw, &BoostMask::from_nodes(8, &[v])))
                .collect();
            let mut got = c.critical().to_vec();
            expect.sort_unstable();
            got.sort_unstable();
            prop_assert_eq!(expect, got);
        }
    }
}
