//! Phase II — PRR-graph compression (Section V-A).
//!
//! The compression keeps `f_R(B)` and `f⁻_R(B)` unchanged for every
//! `|B| ≤ k` while shrinking the graph by orders of magnitude (the paper
//! reports ratios of 27–3125, Tables 2–3):
//!
//! 1. merge the live-forward closure `X` of the seeds into one *super-seed*
//!    (boosting inside `X` can never matter);
//! 2. drop every node whose cheapest super-seed→node→root path needs more
//!    than `k` boost edges (`d_S[v] + d'_r[v] > k`);
//! 3. shortcut nodes with a live path to the root (`d'_r[v] = 0`) straight
//!    to it — once such a node activates, the root follows;
//! 4. keep only nodes lying on some super-seed→root path.
//!
//! The critical set falls out for free: after merging, every edge leaving
//! the super-seed is live-upon-boost (a live one would have extended `X`),
//! so `C_R` is exactly the heads of super-seed edges that live-reach the
//! root.

use std::collections::HashMap;

use kboost_graph::NodeId;

use crate::gen::RawPrr;
use crate::graph::{CompressedPrr, SUPER_SEED};

const INF: u32 = u32::MAX;

/// The assembled output of Phase II before any storage commitment: the
/// shard pipeline appends it straight into a
/// [`PrrArenaShard`](crate::arena::PrrArenaShard), while the single-graph
/// oracle path materializes it as a [`CompressedPrr`].
pub(crate) struct CompressedParts {
    /// Local id of the root.
    pub root: u32,
    /// Local → global id table; `globals[0] == SUPER_SEED`.
    pub globals: Vec<u32>,
    /// Per-node outgoing adjacency `(head, is_boost)` in local ids.
    pub adj: Vec<Vec<(u32, bool)>>,
    /// Critical nodes `C_R` (global ids).
    pub critical: Vec<NodeId>,
    /// Phase-I edge count before compression.
    pub uncompressed: u32,
}

/// Compresses a phase-I raw PRR-graph into a standalone [`CompressedPrr`].
/// Returns `None` when the graph turns out to be non-boostable (no
/// super-seed→root path within the `k`-boost budget) — callers count it as
/// hopeless.
///
/// The sampling hot path does not go through this function: it uses
/// [`compress_parts`] and appends directly into an arena shard.
pub fn compress(raw: &RawPrr, k: usize) -> Option<CompressedPrr> {
    compress_parts(raw, k).map(|p| {
        CompressedPrr::from_adjacency(p.root, p.globals, &p.adj, p.critical, p.uncompressed)
    })
}

/// Phase-II compression core shared by the shard pipeline and the oracle
/// path: both feed the identical [`CompressedParts`] into their respective
/// CSR assemblers, which is what makes shard-built arenas byte-equal to
/// legacy copy-built ones.
pub(crate) fn compress_parts(raw: &RawPrr, k: usize) -> Option<CompressedParts> {
    let k = k as u32;

    // ---- Local indexing over the raw node set -------------------------
    let mut index: HashMap<u32, u32> = HashMap::with_capacity(raw.edges.len());
    let mut nodes: Vec<u32> = Vec::new();
    let local = |g: u32, index: &mut HashMap<u32, u32>, nodes: &mut Vec<u32>| -> u32 {
        *index.entry(g).or_insert_with(|| {
            nodes.push(g);
            (nodes.len() - 1) as u32
        })
    };
    let root_l = local(raw.root, &mut index, &mut nodes);
    let edges: Vec<(u32, u32, bool)> = raw
        .edges
        .iter()
        .map(|&(u, v, b)| {
            let ul = local(u, &mut index, &mut nodes);
            let vl = local(v, &mut index, &mut nodes);
            (ul, vl, b)
        })
        .collect();
    let n0 = nodes.len();
    let seed_locals: Vec<u32> = raw.seeds.iter().map(|&s| index[&s]).collect();

    // ---- X: live-forward closure of the seeds -------------------------
    let mut live_out: Vec<Vec<u32>> = vec![Vec::new(); n0];
    for &(u, v, b) in &edges {
        if !b {
            live_out[u as usize].push(v);
        }
    }
    let mut in_x = vec![false; n0];
    let mut stack: Vec<u32> = Vec::new();
    for &s in &seed_locals {
        if !in_x[s as usize] {
            in_x[s as usize] = true;
            stack.push(s);
        }
    }
    while let Some(u) = stack.pop() {
        for &v in &live_out[u as usize] {
            if !in_x[v as usize] {
                in_x[v as usize] = true;
                stack.push(v);
            }
        }
    }
    if in_x[root_l as usize] {
        // Live seed→root path: activated (phase I normally catches this).
        return None;
    }

    // ---- Stage-2 graph: super-seed 0 + non-X nodes --------------------
    let mut stage_of = vec![INF; n0];
    let mut stage_nodes: Vec<u32> = vec![SUPER_SEED]; // stage-local -> raw-local (SUPER_SEED marker for 0)
    for v in 0..n0 as u32 {
        if !in_x[v as usize] {
            stage_of[v as usize] = stage_nodes.len() as u32;
            stage_nodes.push(v);
        }
    }
    let sn = stage_nodes.len();
    let root_s = stage_of[root_l as usize];

    let mut out_adj: Vec<Vec<(u32, bool)>> = vec![Vec::new(); sn];
    let mut super_head_seen = vec![false; sn];
    for &(u, v, b) in &edges {
        let (ux, vx) = (in_x[u as usize], in_x[v as usize]);
        if vx {
            continue; // edges into the merged region are useless
        }
        let sv = stage_of[v as usize];
        if ux {
            debug_assert!(b, "a live edge out of X would have extended X");
            if !super_head_seen[sv as usize] {
                super_head_seen[sv as usize] = true;
                out_adj[0].push((sv, true));
            }
        } else {
            out_adj[stage_of[u as usize] as usize].push((sv, b));
        }
    }

    // ---- d_S (forward from super) and d'_r (backward from root) -------
    let d_s = zero_one_bfs(sn, 0, |u, f| {
        for &(v, b) in &out_adj[u as usize] {
            f(v, b);
        }
    });
    if d_s[root_s as usize] == INF || d_s[root_s as usize] > k {
        return None; // hopeless within budget
    }
    let mut in_adj: Vec<Vec<(u32, bool)>> = vec![Vec::new(); sn];
    for (u, adj) in out_adj.iter().enumerate() {
        for &(v, b) in adj {
            in_adj[v as usize].push((u as u32, b));
        }
    }
    let d_r = zero_one_bfs(sn, root_s, |u, f| {
        for &(v, b) in &in_adj[u as usize] {
            f(v, b);
        }
    });

    // ---- Budget filter + live shortcut --------------------------------
    let keep = |v: u32| -> bool {
        let (a, b) = (d_s[v as usize], d_r[v as usize]);
        a != INF && b != INF && a + b <= k
    };
    for v in 1..sn as u32 {
        if v != root_s && keep(v) && d_r[v as usize] == 0 {
            out_adj[v as usize].clear();
            out_adj[v as usize].push((root_s, false));
        }
    }

    // ---- Final pass: nodes on some super→root path --------------------
    let fwd_reach = reach(sn, 0, &keep, |u, f| {
        for &(v, _) in &out_adj[u as usize] {
            f(v);
        }
    });
    // Rebuild reverse adjacency after shortcutting.
    let mut in_adj2: Vec<Vec<u32>> = vec![Vec::new(); sn];
    for (u, adj) in out_adj.iter().enumerate() {
        for &(v, _) in adj {
            in_adj2[v as usize].push(u as u32);
        }
    }
    let bwd_reach = reach(sn, root_s, &keep, |u, f| {
        for &v in &in_adj2[u as usize] {
            f(v);
        }
    });
    let final_keep: Vec<bool> = (0..sn as u32)
        .map(|v| keep(v) && fwd_reach[v as usize] && bwd_reach[v as usize])
        .collect();
    if !final_keep[0] || !final_keep[root_s as usize] {
        return None;
    }

    // ---- Relabel + assemble -------------------------------------------
    let mut final_of = vec![INF; sn];
    let mut stage_of_final: Vec<u32> = Vec::new();
    let mut globals: Vec<u32> = Vec::new();
    for v in 0..sn as u32 {
        if final_keep[v as usize] {
            final_of[v as usize] = globals.len() as u32;
            stage_of_final.push(v);
            let raw_local = stage_nodes[v as usize];
            globals.push(if raw_local == SUPER_SEED {
                SUPER_SEED
            } else {
                nodes[raw_local as usize]
            });
        }
    }
    let fn_count = globals.len();
    let mut final_adj: Vec<Vec<(u32, bool)>> = vec![Vec::new(); fn_count];
    for (u, adj) in out_adj.iter().enumerate() {
        if !final_keep[u] {
            continue;
        }
        for &(v, b) in adj {
            if final_keep[v as usize] {
                final_adj[final_of[u] as usize].push((final_of[v as usize], b));
            }
        }
    }

    // Critical nodes: heads of super-seed (boost) edges that live-reach
    // the root.
    let mut critical: Vec<NodeId> = Vec::new();
    for &(v, _) in &final_adj[0] {
        let stage_v = stage_of_final[v as usize];
        if d_r[stage_v as usize] == 0 {
            critical.push(NodeId(globals[v as usize]));
        }
    }

    let root_final = final_of[root_s as usize];
    Some(CompressedParts {
        root: root_final,
        globals,
        adj: final_adj,
        critical,
        uncompressed: raw.edges.len() as u32,
    })
}

/// 0-1 BFS over an implicit graph: returns the per-node distance from
/// `start`, where edge weight is 1 for boost edges and 0 for live edges.
fn zero_one_bfs(
    n: usize,
    start: u32,
    for_each_edge: impl Fn(u32, &mut dyn FnMut(u32, bool)),
) -> Vec<u32> {
    let mut dist = vec![INF; n];
    let mut deque = std::collections::VecDeque::new();
    dist[start as usize] = 0;
    deque.push_back((start, 0u32));
    while let Some((u, du)) = deque.pop_front() {
        if du > dist[u as usize] {
            continue;
        }
        for_each_edge(u, &mut |v, boost| {
            let nd = du + boost as u32;
            if nd < dist[v as usize] {
                dist[v as usize] = nd;
                if boost {
                    deque.push_back((v, nd));
                } else {
                    deque.push_front((v, nd));
                }
            }
        });
    }
    dist
}

/// Reachability from `start` restricted to nodes passing `keep`.
fn reach(
    n: usize,
    start: u32,
    keep: &impl Fn(u32) -> bool,
    for_each_edge: impl Fn(u32, &mut dyn FnMut(u32)),
) -> Vec<bool> {
    let mut seen = vec![false; n];
    if !keep(start) {
        return seen;
    }
    let mut stack = vec![start];
    seen[start as usize] = true;
    while let Some(u) = stack.pop() {
        for_each_edge(u, &mut |v| {
            if keep(v) && !seen[v as usize] {
                seen[v as usize] = true;
                stack.push(v);
            }
        });
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{raw_f, PrrGenerator};
    use crate::graph::PrrEvalScratch;
    use kboost_diffusion::sim::BoostMask;
    use kboost_graph::{DiGraph, GraphBuilder};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Compare compressed f_R(B) with the raw reference for all B with
    /// |B| ≤ k over a sampled PRR-graph.
    fn check_equivalence(g: &DiGraph, seeds: &[NodeId], k: usize, root: NodeId, seed: u64) {
        let generator = PrrGenerator::new(g, seeds, k);
        let mut rng = SmallRng::seed_from_u64(seed);
        let Some(raw) = generator.phase1_raw(root, &mut rng) else {
            return;
        };
        let compressed = compress(&raw, k);
        let n = g.num_nodes();
        let mut scratch = PrrEvalScratch::default();

        // Enumerate all subsets of nodes of size ≤ k (graphs are tiny).
        let subsets = 1u32 << n;
        for bits in 0..subsets {
            if (bits.count_ones() as usize) > k {
                continue;
            }
            let members: Vec<NodeId> = (0..n as u32)
                .filter(|i| bits >> i & 1 == 1)
                .map(NodeId)
                .collect();
            let mask = BoostMask::from_nodes(n, &members);
            let expected = raw_f(&raw, &mask);
            let got = compressed
                .as_ref()
                .map(|c| c.f(&mask, &mut scratch))
                .unwrap_or(false);
            assert_eq!(expected, got, "B = {members:?} (bits {bits:b})");
        }

        // Critical set must equal the definitional {v : f({v}) = 1}.
        if let Some(c) = &compressed {
            let mut expect: Vec<NodeId> = (0..n as u32)
                .map(NodeId)
                .filter(|&v| raw_f(&raw, &BoostMask::from_nodes(n, &[v])))
                .collect();
            let mut got: Vec<NodeId> = c.critical().to_vec();
            expect.sort_unstable();
            got.sort_unstable();
            assert_eq!(expect, got, "critical set mismatch");
        }
    }

    fn random_graph(n: usize, m: usize, seed: u64) -> DiGraph {
        use kboost_graph::generators::erdos_renyi;
        use kboost_graph::probability::ProbabilityModel;
        let mut rng = SmallRng::seed_from_u64(seed);
        erdos_renyi(n, m, ProbabilityModel::Constant(0.4), 2.5, &mut rng)
    }

    #[test]
    fn equivalence_on_random_graphs() {
        for seed in 0..60 {
            let g = random_graph(8, 20, seed);
            for k in [1usize, 2, 3] {
                check_equivalence(&g, &[NodeId(0)], k, NodeId(7), seed * 31 + k as u64);
            }
        }
    }

    #[test]
    fn equivalence_with_two_seeds() {
        for seed in 0..40 {
            let g = random_graph(9, 24, seed + 1000);
            check_equivalence(&g, &[NodeId(0), NodeId(1)], 2, NodeId(8), seed * 7);
        }
    }

    #[test]
    fn compress_deterministic_chain() {
        // s -(live)-> a -(boost)-> b -(live)-> r : C_R = {b}.
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 1.0, 1.0).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.0, 1.0).unwrap();
        b.add_edge(NodeId(2), NodeId(3), 1.0, 1.0).unwrap();
        let g = b.build().unwrap();
        let generator = PrrGenerator::new(&g, &[NodeId(0)], 2);
        let mut rng = SmallRng::seed_from_u64(2);
        let raw = generator.phase1_raw(NodeId(3), &mut rng).unwrap();
        let c = compress(&raw, 2).expect("boostable");
        assert_eq!(c.critical(), &[NodeId(2)]);
        // Super-seed merges {s, a}; nodes: super, b, r.
        assert_eq!(c.num_nodes(), 3);
        assert_eq!(c.num_edges(), 2);
    }

    #[test]
    fn hopeless_when_budget_too_small() {
        // Two boost edges in series need k >= 2.
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 0.0, 1.0).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.0, 1.0).unwrap();
        let g = b.build().unwrap();
        // Generate with prune k=2 so the raw graph includes both edges,
        // but compress with budget k=1.
        let generator = PrrGenerator::new(&g, &[NodeId(0)], 2);
        let mut rng = SmallRng::seed_from_u64(4);
        let raw = generator.phase1_raw(NodeId(2), &mut rng).unwrap();
        assert!(compress(&raw, 1).is_none());
        assert!(compress(&raw, 2).is_some());
    }
}

#[cfg(test)]
mod proptests {
    //! Property-based compression equivalence: on arbitrary random graphs
    //! and budgets, the compressed PRR-graph answers every `f_R(B)` query
    //! (|B| ≤ k) exactly like the uncompressed phase-I graph, and the
    //! critical set matches its definition.

    use super::*;
    use crate::gen::{raw_f, PrrGenerator};
    use crate::graph::PrrEvalScratch;
    use kboost_diffusion::sim::BoostMask;
    use kboost_graph::generators::erdos_renyi;
    use kboost_graph::probability::ProbabilityModel;
    use kboost_graph::NodeId;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn compression_preserves_f_for_all_small_b(
            graph_seed in 0u64..10_000,
            status_seed in 0u64..10_000,
            k in 1usize..4,
            p in 0.2f64..0.7,
            root in 0u32..8,
        ) {
            let mut rng = SmallRng::seed_from_u64(graph_seed);
            let g = erdos_renyi(8, 18, ProbabilityModel::Constant(p), 2.0, &mut rng);
            let generator = PrrGenerator::new(&g, &[NodeId(0)], k);
            let mut srng = SmallRng::seed_from_u64(status_seed);
            let Some(raw) = generator.phase1_raw(NodeId(root), &mut srng) else {
                return Ok(());
            };
            let compressed = compress(&raw, k);
            let mut scratch = PrrEvalScratch::default();
            for bits in 0u32..256 {
                if bits.count_ones() as usize > k {
                    continue;
                }
                let members: Vec<NodeId> =
                    (0..8u32).filter(|i| bits >> i & 1 == 1).map(NodeId).collect();
                let mask = BoostMask::from_nodes(8, &members);
                let expected = raw_f(&raw, &mask);
                let got = compressed
                    .as_ref()
                    .map(|c| c.f(&mask, &mut scratch))
                    .unwrap_or(false);
                prop_assert_eq!(expected, got, "B = {:?}", members);
            }
        }

        #[test]
        fn critical_set_matches_definition(
            graph_seed in 0u64..10_000,
            status_seed in 0u64..10_000,
            root in 0u32..8,
        ) {
            let k = 2usize;
            let mut rng = SmallRng::seed_from_u64(graph_seed);
            let g = erdos_renyi(8, 16, ProbabilityModel::Constant(0.4), 2.2, &mut rng);
            let generator = PrrGenerator::new(&g, &[NodeId(0), NodeId(1)], k);
            let mut srng = SmallRng::seed_from_u64(status_seed);
            let Some(raw) = generator.phase1_raw(NodeId(root), &mut srng) else {
                return Ok(());
            };
            let Some(c) = compress(&raw, k) else { return Ok(()) };
            let mut expect: Vec<NodeId> = (0..8u32)
                .map(NodeId)
                .filter(|&v| raw_f(&raw, &BoostMask::from_nodes(8, &[v])))
                .collect();
            let mut got = c.critical().to_vec();
            expect.sort_unstable();
            got.sort_unstable();
            prop_assert_eq!(expect, got);
        }
    }
}
