//! PRR-graph generation — Algorithm 1, phase I.
//!
//! A backward 0-1 BFS from the root: the *distance* of a node is the
//! minimum number of live-upon-boost edges on any path from it to the root,
//! so live edges relax at the front of the deque and boost edges at the
//! back. Edges whose best distance would exceed `k` are pruned — boosting
//! at most `k` nodes can never make them useful (Section V-A).
//!
//! # Edge-space footprints
//!
//! The BFS queries edge statuses lazily: expanding a node enumerates its
//! in-edges and draws one status each. The set of *expanded* nodes is
//! therefore the sample's exact edge-space footprint — a mutation of edge
//! `(u, v)` changes the sample's distribution iff `v` was expanded,
//! because only then would the generator have queried `v`'s (old or new)
//! in-edge list. The footprint-retaining entry points capture that set at
//! generation time (sorted, deduplicated) for the online subsystem's
//! exact staleness detection; capture consumes no randomness, so
//! footprint-on and footprint-off pools draw identical streams.

use kboost_diffusion::sim::BoostMask;
use kboost_graph::{DiGraph, NodeId};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::arena::PrrArenaShard;
use crate::compress::{compress, compress_parts};
use crate::footprint::FootprintMode;
use crate::graph::CompressedPrr;

/// Result of generating one PRR-graph.
pub enum PrrOutcome {
    /// A live seed→root path exists: the root is activated regardless of
    /// boosting (`f_R ≡ 0`). Only counted.
    Activated,
    /// No seed→root path with at most `k` boost edges exists (`f_R ≡ 0`
    /// for all `|B| ≤ k`). Only counted.
    Hopeless,
    /// The root can be activated by boosting: the compressed graph.
    Boostable(CompressedPrr),
}

/// Phase-I output before compression, kept public for testing and for the
/// critical-only fast path.
pub struct RawPrr {
    /// The root node (global id).
    pub root: u32,
    /// Sampled non-blocked edges `(from, to, is_boost)` in global ids.
    pub edges: Vec<(u32, u32, bool)>,
    /// Seed nodes discovered during the backward BFS.
    pub seeds: Vec<u32>,
}

enum Phase1 {
    Activated,
    Hopeless,
    Raw(RawPrr),
}

/// Generator of random PRR-graphs for a fixed `(G, S, k)`.
pub struct PrrGenerator<'g> {
    g: &'g DiGraph,
    seed_mask: BoostMask,
    k: usize,
}

/// Per-thread scratch: stamped distance array sized to the host graph.
struct GenScratch {
    dist: Vec<u32>,
    stamp: Vec<u32>,
    round: u32,
}

impl GenScratch {
    const INF: u32 = u32::MAX;

    fn new() -> Self {
        GenScratch {
            dist: Vec::new(),
            stamp: Vec::new(),
            round: 0,
        }
    }

    fn begin(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp = vec![0; n];
            self.dist = vec![Self::INF; n];
            self.round = 0;
        }
        self.round += 1;
        if self.round == u32::MAX {
            self.stamp.fill(0);
            self.round = 1;
        }
    }

    #[inline]
    fn get(&self, v: u32) -> u32 {
        if self.stamp[v as usize] == self.round {
            self.dist[v as usize]
        } else {
            Self::INF
        }
    }

    #[inline]
    fn set(&mut self, v: u32, d: u32) {
        self.stamp[v as usize] = self.round;
        self.dist[v as usize] = d;
    }
}

thread_local! {
    static SCRATCH: std::cell::RefCell<GenScratch> = std::cell::RefCell::new(GenScratch::new());
    /// Reusable footprint buffer for the streaming footprint path —
    /// cleared per sample, copied into the shard column on retention.
    static FP_SCRATCH: std::cell::RefCell<Vec<u32>> = const { std::cell::RefCell::new(Vec::new()) };
}

impl<'g> PrrGenerator<'g> {
    /// Creates a generator for seeds `S` and budget `k`.
    pub fn new(g: &'g DiGraph, seeds: &[NodeId], k: usize) -> Self {
        PrrGenerator {
            g,
            seed_mask: BoostMask::from_nodes(g.num_nodes(), seeds),
            k,
        }
    }

    /// The boost budget `k` this generator prunes at.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Generates a PRR-graph for a uniformly random root.
    pub fn sample(&self, rng: &mut SmallRng) -> PrrOutcome {
        let root = NodeId(rng.random_range(0..self.g.num_nodes() as u32));
        self.sample_rooted(root, rng)
    }

    /// Generates a PRR-graph for the given root.
    pub fn sample_rooted(&self, root: NodeId, rng: &mut SmallRng) -> PrrOutcome {
        match self.phase1(root, rng, self.k as u32, None) {
            Phase1::Activated => PrrOutcome::Activated,
            Phase1::Hopeless => PrrOutcome::Hopeless,
            Phase1::Raw(raw) => match compress(&raw, self.k) {
                Some(c) => PrrOutcome::Boostable(c),
                None => PrrOutcome::Hopeless,
            },
        }
    }

    /// Like [`sample`](Self::sample), additionally writing the sample's
    /// edge-space footprint (sorted, deduplicated expanded-node set) into
    /// `footprint` — the legacy/oracle entry point of the exact-staleness
    /// pipeline. Draws the exact same randomness as [`sample`] and
    /// [`sample_into`](Self::sample_into), so footprint-retaining pools
    /// reproduce footprint-free streams bit-for-bit.
    pub fn sample_with_footprint(
        &self,
        rng: &mut SmallRng,
        footprint: &mut Vec<u32>,
    ) -> PrrOutcome {
        footprint.clear();
        let root = NodeId(rng.random_range(0..self.g.num_nodes() as u32));
        let out = match self.phase1(root, rng, self.k as u32, Some(footprint)) {
            Phase1::Activated => PrrOutcome::Activated,
            Phase1::Hopeless => PrrOutcome::Hopeless,
            Phase1::Raw(raw) => match compress(&raw, self.k) {
                Some(c) => PrrOutcome::Boostable(c),
                None => PrrOutcome::Hopeless,
            },
        };
        footprint.sort_unstable();
        footprint.dedup();
        out
    }

    /// Samples one PRR-graph for a uniformly random root straight into a
    /// sampling `shard` — the streaming pipeline's hot path: Phase-II
    /// output is appended to the shard's flat arrays without ever
    /// materializing a per-graph [`CompressedPrr`].
    ///
    /// Returns the sketch cover (the stored graph's critical set). An
    /// empty return means nothing was appended: the sample was activated,
    /// hopeless, or boostable with an empty critical set — the last case
    /// matches the legacy per-graph path, which dropped the payload of any
    /// cover-less sketch.
    pub fn sample_into(&self, rng: &mut SmallRng, shard: &mut PrrArenaShard) -> Vec<NodeId> {
        self.sample_into_fp(rng, shard, FootprintMode::Off)
    }

    /// [`sample_into`](Self::sample_into) with footprint retention: when
    /// `mode` is on, the sample's footprint is appended to the shard —
    /// alongside the stored graph for boostable samples, or into the
    /// empty-sample column for activated / hopeless / cover-less ones
    /// (those must be refreshable too, or the estimator's denominator
    /// would silently go stale). Randomness consumption is identical to
    /// the footprint-free path.
    pub fn sample_into_fp(
        &self,
        rng: &mut SmallRng,
        shard: &mut PrrArenaShard,
        mode: FootprintMode,
    ) -> Vec<NodeId> {
        let root = NodeId(rng.random_range(0..self.g.num_nodes() as u32));
        if !mode.is_on() {
            return match self.phase1(root, rng, self.k as u32, None) {
                Phase1::Activated | Phase1::Hopeless => Vec::new(),
                Phase1::Raw(raw) => match compress_parts(&raw, self.k) {
                    None => Vec::new(),
                    Some(parts) => {
                        if parts.critical.is_empty() {
                            return Vec::new();
                        }
                        shard.push_parts(&parts);
                        // The shard copied the critical set; hand the owned
                        // Vec back as the cover instead of cloning it.
                        parts.critical
                    }
                },
            };
        }
        FP_SCRATCH.with_borrow_mut(|fp| {
            fp.clear();
            let phase1 = self.phase1(root, rng, self.k as u32, Some(fp));
            fp.sort_unstable();
            fp.dedup();
            match phase1 {
                Phase1::Activated | Phase1::Hopeless => {
                    shard.push_empty_footprint(fp, mode);
                    Vec::new()
                }
                Phase1::Raw(raw) => match compress_parts(&raw, self.k) {
                    None => {
                        shard.push_empty_footprint(fp, mode);
                        Vec::new()
                    }
                    Some(parts) => {
                        if parts.critical.is_empty() {
                            shard.push_empty_footprint(fp, mode);
                            return Vec::new();
                        }
                        shard.push_parts_fp(&parts, fp, mode);
                        parts.critical
                    }
                },
            }
        })
    }

    /// Fast path for PRR-Boost-LB: produces only the critical-node set
    /// `C_R` (empty for activated / hopeless / criticality-free graphs).
    ///
    /// Exploration is pruned at distance 1 — "there is no need to explore
    /// incoming edges of a node v if d_r[v] > 1" (Section V-C) — which is
    /// sound because a critical node needs a live tail to the root and a
    /// single boost edge fed by a live head from a seed.
    pub fn sample_critical_only(&self, rng: &mut SmallRng) -> Vec<NodeId> {
        let root = NodeId(rng.random_range(0..self.g.num_nodes() as u32));
        match self.phase1(root, rng, 1, None) {
            Phase1::Activated | Phase1::Hopeless => Vec::new(),
            Phase1::Raw(raw) => critical_from_raw(&raw, self.g.num_nodes(), &self.seed_mask),
        }
    }

    /// Phase-I raw generation, exposed for tests; prunes at `prune_at`
    /// boost edges.
    pub fn phase1_raw(&self, root: NodeId, rng: &mut SmallRng) -> Option<RawPrr> {
        match self.phase1(root, rng, self.k as u32, None) {
            Phase1::Raw(raw) => Some(raw),
            _ => None,
        }
    }

    /// When `footprint` is given, every node whose in-edge enumeration
    /// begins is appended to it (unsorted; a node appears at most once
    /// because only the entry matching the settled distance expands). A
    /// seed root queries nothing and leaves the footprint empty.
    fn phase1(
        &self,
        root: NodeId,
        rng: &mut SmallRng,
        prune_at: u32,
        mut footprint: Option<&mut Vec<u32>>,
    ) -> Phase1 {
        if self.seed_mask.contains(root) {
            return Phase1::Activated;
        }
        SCRATCH.with_borrow_mut(|scratch| {
            scratch.begin(self.g.num_nodes());
            let mut deque: std::collections::VecDeque<(u32, u32)> =
                std::collections::VecDeque::new();
            let mut edges: Vec<(u32, u32, bool)> = Vec::new();
            let mut seeds_found: Vec<u32> = Vec::new();

            scratch.set(root.0, 0);
            deque.push_back((root.0, 0));

            while let Some((u, du)) = deque.pop_front() {
                if du > scratch.get(u) {
                    continue; // stale entry: u was settled at a smaller distance
                }
                if let Some(fp) = footprint.as_deref_mut() {
                    fp.push(u);
                }
                for (v, p) in self.g.in_edges(NodeId(u)) {
                    // Sample the three-way status on first (and only) touch.
                    let x: f64 = rng.random();
                    let boost = if x < p.base {
                        false
                    } else if x < p.boosted {
                        true
                    } else {
                        continue; // blocked
                    };
                    let dvr = du + boost as u32;
                    if dvr > prune_at {
                        continue; // pruning: needs more than k boosts
                    }
                    edges.push((v.0, u, boost));
                    let old = scratch.get(v.0);
                    if dvr < old {
                        scratch.set(v.0, dvr);
                        if self.seed_mask.contains(v) {
                            if dvr == 0 {
                                return Phase1::Activated;
                            }
                            if old == GenScratch::INF {
                                seeds_found.push(v.0);
                            }
                        } else if dvr == du {
                            deque.push_front((v.0, dvr));
                        } else {
                            deque.push_back((v.0, dvr));
                        }
                    }
                }
            }

            if seeds_found.is_empty() {
                Phase1::Hopeless
            } else {
                Phase1::Raw(RawPrr {
                    root: root.0,
                    edges,
                    seeds: seeds_found,
                })
            }
        })
    }
}

/// Extracts the critical set straight from a phase-I raw graph:
/// `v ∈ C_R` iff some boost edge `(u, v)` has `u` live-reachable from a
/// seed and `v` live-reaching the root.
pub fn critical_from_raw(raw: &RawPrr, n: usize, seed_mask: &BoostMask) -> Vec<NodeId> {
    use std::collections::{HashMap, HashSet};

    // Build adjacency over the raw edge list (local, hash-based: raw graphs
    // are small relative to the host graph).
    let mut live_out: HashMap<u32, Vec<u32>> = HashMap::new();
    let mut live_in: HashMap<u32, Vec<u32>> = HashMap::new();
    for &(u, v, boost) in &raw.edges {
        if !boost {
            live_out.entry(u).or_default().push(v);
            live_in.entry(v).or_default().push(u);
        }
    }

    // X: live-forward closure of the seeds.
    let mut x_set: HashSet<u32> = raw.seeds.iter().copied().collect();
    let mut stack: Vec<u32> = raw.seeds.clone();
    while let Some(u) = stack.pop() {
        if let Some(outs) = live_out.get(&u) {
            for &v in outs {
                if x_set.insert(v) {
                    stack.push(v);
                }
            }
        }
    }

    // L: live-backward closure of the root.
    let mut l_set: HashSet<u32> = HashSet::new();
    l_set.insert(raw.root);
    let mut stack = vec![raw.root];
    while let Some(u) = stack.pop() {
        if let Some(ins) = live_in.get(&u) {
            for &v in ins {
                if l_set.insert(v) {
                    stack.push(v);
                }
            }
        }
    }

    let _ = n;
    let mut critical: Vec<NodeId> = Vec::new();
    let mut seen: HashSet<u32> = HashSet::new();
    for &(u, v, boost) in &raw.edges {
        if boost
            && x_set.contains(&u)
            && l_set.contains(&v)
            && !seed_mask.contains(NodeId(v))
            && seen.insert(v)
        {
            critical.push(NodeId(v));
        }
    }
    critical
}

/// Evaluates `f_R(B)` directly on a phase-I raw graph (reference
/// implementation used by tests to validate compression).
pub fn raw_f(raw: &RawPrr, boost: &BoostMask) -> bool {
    use std::collections::{HashMap, HashSet};
    let mut out: HashMap<u32, Vec<(u32, bool)>> = HashMap::new();
    for &(u, v, b) in &raw.edges {
        out.entry(u).or_default().push((v, b));
    }
    // No boosting: is the root already activated?
    let reach = |use_boost: bool| -> bool {
        let mut seen: HashSet<u32> = raw.seeds.iter().copied().collect();
        let mut stack: Vec<u32> = raw.seeds.clone();
        while let Some(u) = stack.pop() {
            if u == raw.root {
                return true;
            }
            if let Some(outs) = out.get(&u) {
                for &(v, b) in outs {
                    let ok = !b || (use_boost && boost.contains(NodeId(v)));
                    if ok && seen.insert(v) {
                        stack.push(v);
                    }
                }
            }
        }
        seen.contains(&raw.root)
    };
    !reach(false) && reach(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kboost_graph::GraphBuilder;
    use rand::SeedableRng;

    fn figure1() -> DiGraph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 0.2, 0.4).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.1, 0.2).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn root_at_seed_is_activated() {
        let g = figure1();
        let gen = PrrGenerator::new(&g, &[NodeId(0)], 2);
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(matches!(
            gen.sample_rooted(NodeId(0), &mut rng),
            PrrOutcome::Activated
        ));
    }

    #[test]
    fn outcome_frequencies_match_exact_probabilities() {
        // Root = v1 (node 2). P[activated] = P[both edges live] = 0.02.
        // P[boostable] = P[root activatable with ≤2 boosts] − P[activated].
        let g = figure1();
        let gen = PrrGenerator::new(&g, &[NodeId(0)], 2);
        let mut rng = SmallRng::seed_from_u64(5);
        let trials = 200_000;
        let (mut act, mut boostable) = (0u32, 0u32);
        for _ in 0..trials {
            match gen.sample_rooted(NodeId(2), &mut rng) {
                PrrOutcome::Activated => act += 1,
                PrrOutcome::Boostable(_) => boostable += 1,
                PrrOutcome::Hopeless => {}
            }
        }
        let p_act = act as f64 / trials as f64;
        assert!((p_act - 0.02).abs() < 0.005, "P[activated] ≈ {p_act}");
        // Boostable: both edges non-blocked, not both live:
        // 0.4·0.2 − 0.02 = 0.06.
        let p_boost = boostable as f64 / trials as f64;
        assert!((p_boost - 0.06).abs() < 0.005, "P[boostable] ≈ {p_boost}");
    }

    #[test]
    fn pruning_respects_k() {
        // With k = 1, a root needing 2 boosts must be hopeless.
        let mut b = GraphBuilder::new(3);
        // Both edges are boost-only (p = 0, p' = 1).
        b.add_edge(NodeId(0), NodeId(1), 0.0, 1.0).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.0, 1.0).unwrap();
        let g = b.build().unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        let gen1 = PrrGenerator::new(&g, &[NodeId(0)], 1);
        assert!(matches!(
            gen1.sample_rooted(NodeId(2), &mut rng),
            PrrOutcome::Hopeless
        ));
        let gen2 = PrrGenerator::new(&g, &[NodeId(0)], 2);
        assert!(matches!(
            gen2.sample_rooted(NodeId(2), &mut rng),
            PrrOutcome::Boostable(_)
        ));
    }

    #[test]
    fn raw_f_on_deterministic_graph() {
        // p = 0, p' = 1 on s->a and a->r: f(∅)=0, f({a})=0, f({a,r})=1.
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 0.0, 1.0).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.0, 1.0).unwrap();
        let g = b.build().unwrap();
        let gen = PrrGenerator::new(&g, &[NodeId(0)], 2);
        let mut rng = SmallRng::seed_from_u64(9);
        let raw = gen.phase1_raw(NodeId(2), &mut rng).expect("boostable");
        assert!(!raw_f(&raw, &BoostMask::empty(3)));
        assert!(!raw_f(&raw, &BoostMask::from_nodes(3, &[NodeId(1)])));
        assert!(raw_f(
            &raw,
            &BoostMask::from_nodes(3, &[NodeId(1), NodeId(2)])
        ));
    }

    #[test]
    fn critical_only_agrees_with_raw_definition() {
        // Deterministic boost-only single edge: s -> r with p=0, p'=1.
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1), 0.0, 1.0).unwrap();
        let g = b.build().unwrap();
        let gen = PrrGenerator::new(&g, &[NodeId(0)], 1);
        let mut rng = SmallRng::seed_from_u64(11);
        // Critical set of every sampled graph rooted at 1 must be {1}.
        let mut found = 0;
        for _ in 0..20 {
            let crit = gen.sample_critical_only(&mut rng);
            if crit == vec![NodeId(1)] {
                found += 1;
            } else {
                assert!(crit.is_empty(), "unexpected critical set {crit:?}");
            }
        }
        // Root is uniform over {0, 1}; roughly half the samples root at 1.
        assert!(found > 3, "critical set never found");
    }
}
