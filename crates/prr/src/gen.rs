//! PRR-graph generation — Algorithm 1, phase I.
//!
//! A backward 0-1 BFS from the root: the *distance* of a node is the
//! minimum number of live-upon-boost edges on any path from it to the root,
//! so live edges relax at the front of the deque and boost edges at the
//! back. Edges whose best distance would exceed `k` are pruned — boosting
//! at most `k` nodes can never make them useful (Section V-A). Pruned
//! edges are dropped at the check, *before* entering the raw edge list, so
//! they never inflate phase-II input (pinned by
//! `pruned_edges_not_retained`).
//!
//! # The data-oriented kernel and its scalar oracle
//!
//! Two implementations of the same sampler coexist here, byte-for-byte
//! equivalent by construction and by test:
//!
//! * the **scalar oracle** ([`phase1`](PrrGenerator)) — the original
//!   readable loop over [`DiGraph::in_edges`], one `rng.random::<f64>()`
//!   per touched edge, fresh `Vec`s per sample. Generators built with
//!   [`PrrGenerator::new_scalar_oracle`] use it on every entry point.
//! * the **kernel** (`phase1_kernel`) — the throughput path used by
//!   generators built with [`PrrGenerator::new`]. It walks the flat
//!   [`InEdgeSoa`] probability lanes instead of zipped `EdgeProbs`
//!   structs, refills a fixed scratch buffer of uniforms through bulk
//!   [`RngCore::fill_u64`] calls (consumed in the exact one-draw-per-edge
//!   order of the scalar loop, so the stream is bit-identical), keeps the
//!   BFS deque, edge list, and seed buffer in the thread-local
//!   [`GenScratch`] so steady-state sampling performs no heap allocation,
//!   and emits *sample-local* node ids as it goes — phase II consumes them
//!   directly and skips its global→local relabeling pass.
//!
//! The only stream subtlety is the early `Activated` return: the scalar
//! loop stops mid-in-edge-list having consumed exactly one draw per edge
//! up to the live seed edge, while the kernel has already bulk-drawn its
//! whole batch. The kernel therefore snapshots the 32-byte RNG state
//! before each refill and, on early return after batch index `j`, restores
//! the snapshot and replays exactly `j + 1` draws — leaving the RNG in the
//! scalar loop's exact state.
//!
//! # Edge-space footprints
//!
//! The BFS queries edge statuses lazily: expanding a node enumerates its
//! in-edges and draws one status each. The set of *expanded* nodes is
//! therefore the sample's exact edge-space footprint — a mutation of edge
//! `(u, v)` changes the sample's distribution iff `v` was expanded,
//! because only then would the generator have queried `v`'s (old or new)
//! in-edge list. The footprint-retaining entry points capture that set at
//! generation time (sorted, deduplicated) for the online subsystem's
//! exact staleness detection; capture consumes no randomness, so
//! footprint-on and footprint-off pools draw identical streams.

use kboost_diffusion::sim::BoostMask;
use kboost_graph::{DiGraph, InEdgeSoa, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, RngCore};

use crate::arena::PrrArenaShard;
use crate::compress::{
    compress, compress_locals_into, compress_parts, CompressedParts, LEDGE_BOOST, LEDGE_MASK,
};
use crate::footprint::{read_varint, write_varint, FootprintMode};
use crate::graph::CompressedPrr;

/// 2-bit trace outcome: the edge was sampled live.
const TRACE_LIVE: u8 = 0;
/// 2-bit trace outcome: the edge was sampled live-upon-boost.
const TRACE_BOOST: u8 = 1;
/// 2-bit trace outcome: the edge was sampled blocked.
const TRACE_BLOCKED: u8 = 2;
/// 2-bit trace sentinel: the edge's coin was never drawn (the sample
/// returned `Activated` mid-way through the node's in-edge list).
const TRACE_NOT_DRAWN: u8 = 3;

/// Per-sample trace blob builder for [`FootprintMode::Trace`].
///
/// Layout: `varint(root)` followed by one self-delimiting record per
/// expanded node in BFS pop order — `varint(global id)`,
/// `varint(in-degree at capture)`, then `ceil(deg / 4)` bytes of 2-bit
/// edge outcomes in in-edge-list order ([`TRACE_LIVE`], [`TRACE_BOOST`],
/// [`TRACE_BLOCKED`], [`TRACE_NOT_DRAWN`]). Outcome bytes start
/// all-sentinel, so an early `Activated` return leaves the undrawn tail
/// of the last record marked not-drawn without any cleanup pass.
#[derive(Default)]
struct TraceBuf {
    buf: Vec<u8>,
    node_off: usize,
}

impl TraceBuf {
    fn begin(&mut self, root: u32) {
        self.buf.clear();
        write_varint(&mut self.buf, root);
    }

    fn begin_node(&mut self, v: u32, deg: usize) {
        write_varint(&mut self.buf, v);
        write_varint(&mut self.buf, deg as u32);
        self.node_off = self.buf.len();
        self.buf.resize(self.node_off + deg.div_ceil(4), 0xFF);
    }

    #[inline]
    fn record(&mut self, pos: usize, outcome: u8) {
        let byte = &mut self.buf[self.node_off + pos / 4];
        let shift = (pos % 4) * 2;
        *byte = (*byte & !(0b11 << shift)) | (outcome << shift);
    }
}

/// Parsed read-only view of a trace blob: the retained root plus a
/// node → (captured in-degree, outcome-byte offset) index.
struct TraceView<'a> {
    root: u32,
    records: std::collections::HashMap<u32, (u32, usize)>,
    blob: &'a [u8],
}

impl<'a> TraceView<'a> {
    fn parse(blob: &'a [u8]) -> Self {
        let mut pos = 0usize;
        let root = read_varint(blob, &mut pos);
        let mut records = std::collections::HashMap::new();
        while pos < blob.len() {
            let v = read_varint(blob, &mut pos);
            let deg = read_varint(blob, &mut pos);
            records.insert(v, (deg, pos));
            pos += (deg as usize).div_ceil(4);
        }
        TraceView {
            root,
            records,
            blob,
        }
    }

    /// The 2-bit outcome recorded at in-edge position `pos` of the record
    /// whose outcome bytes start at `off`.
    #[inline]
    fn outcome(&self, off: usize, pos: usize) -> u8 {
        (self.blob[off + pos / 4] >> ((pos % 4) * 2)) & 0b11
    }
}

/// Result of generating one PRR-graph.
pub enum PrrOutcome {
    /// A live seed→root path exists: the root is activated regardless of
    /// boosting (`f_R ≡ 0`). Only counted.
    Activated,
    /// No seed→root path with at most `k` boost edges exists (`f_R ≡ 0`
    /// for all `|B| ≤ k`). Only counted.
    Hopeless,
    /// The root can be activated by boosting: the compressed graph.
    Boostable(CompressedPrr),
}

/// Phase-I output before compression, kept public for testing and for the
/// critical-only fast path.
pub struct RawPrr {
    /// The root node (global id).
    pub root: u32,
    /// Sampled non-blocked edges `(from, to, is_boost)` in global ids.
    pub edges: Vec<(u32, u32, bool)>,
    /// Seed nodes discovered during the backward BFS.
    pub seeds: Vec<u32>,
}

enum Phase1 {
    Activated,
    Hopeless,
    Raw(RawPrr),
}

/// Kernel phase-I outcome: on `Raw`, the edge and seed lists are left in
/// the thread-local [`GenScratch`] instead of being moved into an owned
/// [`RawPrr`].
enum KernelPhase1 {
    Activated,
    Hopeless,
    Raw,
}

/// Generator of random PRR-graphs for a fixed `(G, S, k)`.
pub struct PrrGenerator<'g> {
    g: &'g DiGraph,
    /// SoA in-edge mirror: present on kernel generators ([`new`]
    /// (Self::new)), absent on scalar oracles
    /// ([`new_scalar_oracle`](Self::new_scalar_oracle)).
    soa: Option<InEdgeSoa>,
    seed_mask: BoostMask,
    k: usize,
}

/// Maximum number of uniforms drawn per bulk RNG refill in the kernel.
const UNIFORM_BATCH: usize = 512;

/// First refill size of a sample. Refills double from here up to
/// [`UNIFORM_BATCH`], so a sample that touches only a handful of edges
/// (tiny graphs, early activation) over-draws at most ~8 uniforms
/// instead of a full batch, while long walks settle into maximal batches
/// after a few refills.
const UNIFORM_BATCH_MIN: usize = 8;

/// How many edges ahead the kernel prefetches the per-node state of edge
/// heads. The per-node arrays span megabytes at benchmark scale, so every
/// head lookup is a likely cache miss; issuing the loads this far ahead
/// lets them overlap instead of serializing on the BFS's dependent chain.
const PREFETCH_AHEAD: usize = 16;

/// Best-effort prefetch of the cache line holding `p` (no-op off x86-64).
#[inline(always)]
fn prefetch<T>(p: &T) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        _mm_prefetch::<_MM_HINT_T0>(p as *const T as *const i8);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

/// Per-node phase-I state, merged into one entry so the BFS pays a single
/// random cache access per touched node: the epoch stamp (validity), the
/// settled 0-1 BFS distance, and the sample-local id the kernel assigns on
/// first touch (the compression core consumes local ids directly).
#[derive(Clone, Copy)]
struct NodeMeta {
    stamp: u32,
    dist: u32,
    lid: u32,
}

/// Per-thread scratch: stamped per-node state sized to the host graph,
/// plus the kernel's reusable BFS deque, local-id node/edge/seed output
/// lists, and uniform batch buffer.
struct GenScratch {
    meta: Vec<NodeMeta>,
    round: u32,
    deque: std::collections::VecDeque<(u32, u32)>,
    /// Kernel output: local → global id table, first-touch ordered,
    /// `globals[0]` = the root.
    globals: Vec<u32>,
    /// Kernel output: packed local edges (see [`LEDGE_BOOST`]).
    ledges: Vec<(u32, u32)>,
    /// Kernel output: local ids of the seeds discovered by the BFS.
    lseeds: Vec<u32>,
    uniforms: Vec<u64>,
}

impl GenScratch {
    const INF: u32 = u32::MAX;

    fn new() -> Self {
        GenScratch {
            meta: Vec::new(),
            round: 0,
            deque: std::collections::VecDeque::new(),
            globals: Vec::new(),
            ledges: Vec::new(),
            lseeds: Vec::new(),
            uniforms: Vec::new(),
        }
    }

    fn begin(&mut self, n: usize) {
        if self.meta.len() < n {
            self.meta = vec![
                NodeMeta {
                    stamp: 0,
                    dist: Self::INF,
                    lid: 0,
                };
                n
            ];
            self.round = 0;
        }
        self.round += 1;
        if self.round == u32::MAX {
            for m in &mut self.meta {
                m.stamp = 0;
            }
            self.round = 1;
        }
        self.deque.clear();
        self.globals.clear();
        self.ledges.clear();
        self.lseeds.clear();
        if self.uniforms.len() != UNIFORM_BATCH {
            self.uniforms.resize(UNIFORM_BATCH, 0);
        }
    }

    #[inline]
    fn get(&self, v: u32) -> u32 {
        let m = &self.meta[v as usize];
        if m.stamp == self.round {
            m.dist
        } else {
            Self::INF
        }
    }

    #[inline]
    fn set(&mut self, v: u32, d: u32) {
        let m = &mut self.meta[v as usize];
        m.stamp = self.round;
        m.dist = d;
    }
}

thread_local! {
    static SCRATCH: std::cell::RefCell<GenScratch> = std::cell::RefCell::new(GenScratch::new());
    /// Reusable footprint buffer for the streaming footprint path —
    /// cleared per sample, copied into the shard column on retention.
    static FP_SCRATCH: std::cell::RefCell<Vec<u32>> = const { std::cell::RefCell::new(Vec::new()) };
    /// Reusable phase-II output for the kernel path: compression writes
    /// into it in place, the shard copies out of it.
    static PARTS: std::cell::RefCell<CompressedParts> =
        std::cell::RefCell::new(CompressedParts::default());
    /// Reusable state for the kernel's hash-free critical-set extraction.
    static CRIT_SCRATCH: std::cell::RefCell<CritScratch> =
        std::cell::RefCell::new(CritScratch::new());
    /// Reusable trace blob builder for [`FootprintMode::Trace`] capture
    /// and replay — cleared per sample, copied into the shard's trace
    /// sidecar on retention.
    static TRACE_SCRATCH: std::cell::RefCell<TraceBuf> =
        const {
            std::cell::RefCell::new(TraceBuf {
                buf: Vec::new(),
                node_off: 0,
            })
        };
}

impl<'g> PrrGenerator<'g> {
    /// Creates a kernel generator for seeds `S` and budget `k`: builds the
    /// SoA in-edge mirror (`O(m)`, once per generator — sources construct
    /// one generator per pool build / mutation epoch, which is what keeps
    /// the mirror fresh across online epochs) and routes the bulk-sampling
    /// entry points through the data-oriented kernel.
    pub fn new(g: &'g DiGraph, seeds: &[NodeId], k: usize) -> Self {
        PrrGenerator {
            g,
            soa: Some(g.in_edge_soa()),
            seed_mask: BoostMask::from_nodes(g.num_nodes(), seeds),
            k,
        }
    }

    /// Creates a scalar-oracle generator: no SoA mirror, every entry point
    /// runs the original per-edge loop. Used by the legacy sources and the
    /// kernel-equivalence test suites.
    pub fn new_scalar_oracle(g: &'g DiGraph, seeds: &[NodeId], k: usize) -> Self {
        PrrGenerator {
            g,
            soa: None,
            seed_mask: BoostMask::from_nodes(g.num_nodes(), seeds),
            k,
        }
    }

    /// The boost budget `k` this generator prunes at.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Whether this generator routes bulk sampling through the
    /// data-oriented kernel (true for [`new`](Self::new), false for
    /// [`new_scalar_oracle`](Self::new_scalar_oracle)).
    pub fn is_kernel(&self) -> bool {
        self.soa.is_some()
    }

    /// Generates a PRR-graph for a uniformly random root.
    ///
    /// Always runs the scalar oracle — this per-graph entry point exists
    /// for the legacy pipeline and for tests.
    pub fn sample(&self, rng: &mut SmallRng) -> PrrOutcome {
        let root = NodeId(rng.random_range(0..self.g.num_nodes() as u32));
        self.sample_rooted(root, rng)
    }

    /// Generates a PRR-graph for the given root (scalar oracle).
    pub fn sample_rooted(&self, root: NodeId, rng: &mut SmallRng) -> PrrOutcome {
        match self.phase1(root, rng, self.k as u32, None) {
            Phase1::Activated => PrrOutcome::Activated,
            Phase1::Hopeless => PrrOutcome::Hopeless,
            Phase1::Raw(raw) => match compress(&raw, self.k) {
                Some(c) => PrrOutcome::Boostable(c),
                None => PrrOutcome::Hopeless,
            },
        }
    }

    /// Like [`sample`](Self::sample), additionally writing the sample's
    /// edge-space footprint (sorted, deduplicated expanded-node set) into
    /// `footprint` — the legacy/oracle entry point of the exact-staleness
    /// pipeline. Draws the exact same randomness as [`sample`] and
    /// [`sample_into`](Self::sample_into), so footprint-retaining pools
    /// reproduce footprint-free streams bit-for-bit.
    pub fn sample_with_footprint(
        &self,
        rng: &mut SmallRng,
        footprint: &mut Vec<u32>,
    ) -> PrrOutcome {
        footprint.clear();
        let root = NodeId(rng.random_range(0..self.g.num_nodes() as u32));
        let out = match self.phase1(root, rng, self.k as u32, Some(footprint)) {
            Phase1::Activated => PrrOutcome::Activated,
            Phase1::Hopeless => PrrOutcome::Hopeless,
            Phase1::Raw(raw) => match compress(&raw, self.k) {
                Some(c) => PrrOutcome::Boostable(c),
                None => PrrOutcome::Hopeless,
            },
        };
        footprint.sort_unstable();
        footprint.dedup();
        out
    }

    /// Like [`sample_with_footprint`](Self::sample_with_footprint),
    /// additionally writing the sample's trace blob (retained queried-edge
    /// outcomes, [`TraceBuf`] layout) into `trace` — the legacy/oracle
    /// entry point of the trace-retention tier. Draws the exact same
    /// randomness as every other sampling entry point.
    pub fn sample_with_footprint_trace(
        &self,
        rng: &mut SmallRng,
        footprint: &mut Vec<u32>,
        trace: &mut Vec<u8>,
    ) -> PrrOutcome {
        footprint.clear();
        let root = NodeId(rng.random_range(0..self.g.num_nodes() as u32));
        let out = TRACE_SCRATCH.with_borrow_mut(|tb| {
            let out = match self.phase1_tr(root, rng, self.k as u32, Some(footprint), Some(tb)) {
                Phase1::Activated => PrrOutcome::Activated,
                Phase1::Hopeless => PrrOutcome::Hopeless,
                Phase1::Raw(raw) => match compress(&raw, self.k) {
                    Some(c) => PrrOutcome::Boostable(c),
                    None => PrrOutcome::Hopeless,
                },
            };
            trace.clear();
            trace.extend_from_slice(&tb.buf);
            out
        });
        footprint.sort_unstable();
        footprint.dedup();
        out
    }

    /// Conditionally replays one invalidated sample from its retained
    /// trace (legacy/oracle form): re-runs phase I on the current graph
    /// for the trace's root, reusing every recorded coin whose edge the
    /// mutation batch left untouched and drawing fresh coins only for
    /// `redraw_node` heads, `redraw_edge` hits, and not-drawn sentinels —
    /// see [`phase1_replay`](Self::phase1_replay) for why the result is
    /// distribution-fresh. Writes the replayed sample's new footprint and
    /// trace (against the current graph) into the out-params.
    pub fn replay_with_footprint_trace(
        &self,
        old_trace: &[u8],
        redraw_node: &dyn Fn(u32) -> bool,
        redraw_edge: &dyn Fn(u32, u32) -> bool,
        rng: &mut SmallRng,
        footprint: &mut Vec<u32>,
        trace: &mut Vec<u8>,
    ) -> PrrOutcome {
        footprint.clear();
        let tv = TraceView::parse(old_trace);
        let out = TRACE_SCRATCH.with_borrow_mut(|tb| {
            let out = match self.phase1_replay(
                &tv,
                redraw_node,
                redraw_edge,
                rng,
                self.k as u32,
                footprint,
                tb,
            ) {
                Phase1::Activated => PrrOutcome::Activated,
                Phase1::Hopeless => PrrOutcome::Hopeless,
                Phase1::Raw(raw) => match compress(&raw, self.k) {
                    Some(c) => PrrOutcome::Boostable(c),
                    None => PrrOutcome::Hopeless,
                },
            };
            trace.clear();
            trace.extend_from_slice(&tb.buf);
            out
        });
        footprint.sort_unstable();
        footprint.dedup();
        out
    }

    /// Conditionally replays one invalidated sample from its retained
    /// trace straight into a sampling `shard` — the maintainer's
    /// trace-retention refresh path. Stores the replayed graph (or its
    /// empty-sample footprint) together with the new footprint and trace,
    /// and returns the sketch cover exactly like
    /// [`sample_into_fp`](Self::sample_into_fp). `mode` must retain
    /// traces.
    pub fn replay_into_fp(
        &self,
        old_trace: &[u8],
        redraw_node: &dyn Fn(u32) -> bool,
        redraw_edge: &dyn Fn(u32, u32) -> bool,
        rng: &mut SmallRng,
        shard: &mut PrrArenaShard,
        mode: FootprintMode,
    ) -> Vec<NodeId> {
        assert!(
            mode.retains_trace(),
            "replay requires a trace-retaining mode"
        );
        let tv = TraceView::parse(old_trace);
        FP_SCRATCH.with_borrow_mut(|fp| {
            TRACE_SCRATCH.with_borrow_mut(|tb| {
                fp.clear();
                let phase1 =
                    self.phase1_replay(&tv, redraw_node, redraw_edge, rng, self.k as u32, fp, tb);
                fp.sort_unstable();
                fp.dedup();
                match phase1 {
                    Phase1::Activated | Phase1::Hopeless => {
                        shard.push_empty_footprint_trace(fp, &tb.buf, mode);
                        Vec::new()
                    }
                    Phase1::Raw(raw) => match compress_parts(&raw, self.k) {
                        None => {
                            shard.push_empty_footprint_trace(fp, &tb.buf, mode);
                            Vec::new()
                        }
                        Some(parts) => {
                            shard.push_parts_fp_trace(&parts, fp, &tb.buf, mode);
                            parts.critical
                        }
                    },
                }
            })
        })
    }

    /// Samples one PRR-graph for a uniformly random root straight into a
    /// sampling `shard` — the streaming pipeline's hot path: Phase-II
    /// output is appended to the shard's flat arrays without ever
    /// materializing a per-graph [`CompressedPrr`]. Kernel generators run
    /// the data-oriented phase-I kernel here; scalar oracles run the
    /// original loop, drawing the identical random stream.
    ///
    /// Returns the sketch cover (the stored graph's critical set). An
    /// empty return means no cover was contributed: the sample was
    /// activated, hopeless, or boostable with an empty critical set.
    /// Cover-less boostable graphs ARE stored — they carry no criticality
    /// signal for `k = 1` sketch covers, but `Δ̂` for a `k ≥ 2` boost set
    /// must still count them when the set activates their root, so
    /// dropping them (as the pre-PR-10 pipeline did) underestimated.
    pub fn sample_into(&self, rng: &mut SmallRng, shard: &mut PrrArenaShard) -> Vec<NodeId> {
        self.sample_into_fp(rng, shard, FootprintMode::Off)
    }

    /// [`sample_into`](Self::sample_into) with footprint retention: when
    /// `mode` is on, the sample's footprint is appended to the shard —
    /// alongside the stored graph for boostable samples (cover-less ones
    /// included), or into the empty-sample column for activated /
    /// hopeless ones (those must be refreshable too, or the estimator's
    /// denominator would silently go stale). Trace-retaining modes
    /// additionally store the sample's queried-edge outcomes for
    /// conditional replay. Randomness consumption is identical to the
    /// footprint-free path.
    pub fn sample_into_fp(
        &self,
        rng: &mut SmallRng,
        shard: &mut PrrArenaShard,
        mode: FootprintMode,
    ) -> Vec<NodeId> {
        let root = NodeId(rng.random_range(0..self.g.num_nodes() as u32));
        match &self.soa {
            // Trace capture is scalar-only: the kernel has no traced
            // variant, and both loops draw bit-identical streams anyway.
            Some(soa) if !mode.retains_trace() => {
                self.kernel_sample_into_fp(soa, root, rng, shard, mode)
            }
            _ => self.scalar_sample_into_fp(root, rng, shard, mode),
        }
    }

    /// Scalar-oracle body of [`sample_into_fp`](Self::sample_into_fp).
    fn scalar_sample_into_fp(
        &self,
        root: NodeId,
        rng: &mut SmallRng,
        shard: &mut PrrArenaShard,
        mode: FootprintMode,
    ) -> Vec<NodeId> {
        if !mode.is_on() {
            return match self.phase1(root, rng, self.k as u32, None) {
                Phase1::Activated | Phase1::Hopeless => Vec::new(),
                Phase1::Raw(raw) => match compress_parts(&raw, self.k) {
                    None => Vec::new(),
                    Some(parts) => {
                        shard.push_parts(&parts);
                        // The shard copied the critical set; hand the owned
                        // Vec back as the cover instead of cloning it.
                        parts.critical
                    }
                },
            };
        }
        FP_SCRATCH.with_borrow_mut(|fp| {
            fp.clear();
            if mode.retains_trace() {
                return TRACE_SCRATCH.with_borrow_mut(|tb| {
                    let phase1 = self.phase1_tr(root, rng, self.k as u32, Some(fp), Some(tb));
                    fp.sort_unstable();
                    fp.dedup();
                    match phase1 {
                        Phase1::Activated | Phase1::Hopeless => {
                            shard.push_empty_footprint_trace(fp, &tb.buf, mode);
                            Vec::new()
                        }
                        Phase1::Raw(raw) => match compress_parts(&raw, self.k) {
                            None => {
                                shard.push_empty_footprint_trace(fp, &tb.buf, mode);
                                Vec::new()
                            }
                            Some(parts) => {
                                shard.push_parts_fp_trace(&parts, fp, &tb.buf, mode);
                                parts.critical
                            }
                        },
                    }
                });
            }
            let phase1 = self.phase1(root, rng, self.k as u32, Some(fp));
            fp.sort_unstable();
            fp.dedup();
            match phase1 {
                Phase1::Activated | Phase1::Hopeless => {
                    shard.push_empty_footprint(fp, mode);
                    Vec::new()
                }
                Phase1::Raw(raw) => match compress_parts(&raw, self.k) {
                    None => {
                        shard.push_empty_footprint(fp, mode);
                        Vec::new()
                    }
                    Some(parts) => {
                        shard.push_parts_fp(&parts, fp, mode);
                        parts.critical
                    }
                },
            }
        })
    }

    /// Kernel body of [`sample_into_fp`](Self::sample_into_fp): phase I in
    /// the batched-draw kernel, phase II through the reusable
    /// [`CompressedParts`] — allocation-free in steady state apart from
    /// the returned cover.
    fn kernel_sample_into_fp(
        &self,
        soa: &InEdgeSoa,
        root: NodeId,
        rng: &mut SmallRng,
        shard: &mut PrrArenaShard,
        mode: FootprintMode,
    ) -> Vec<NodeId> {
        SCRATCH.with_borrow_mut(|scratch| {
            if !mode.is_on() {
                let ph = self.phase1_kernel(soa, root, rng, self.k as u32, None, scratch);
                return match ph {
                    KernelPhase1::Activated | KernelPhase1::Hopeless => Vec::new(),
                    KernelPhase1::Raw => PARTS.with_borrow_mut(|parts| {
                        if !compress_locals_into(
                            &scratch.globals,
                            &scratch.ledges,
                            &scratch.lseeds,
                            self.k,
                            parts,
                        ) {
                            return Vec::new();
                        }
                        shard.push_parts(parts);
                        // The shard copied the critical set; the reused
                        // parts can donate the Vec as the cover.
                        std::mem::take(&mut parts.critical)
                    }),
                };
            }
            FP_SCRATCH.with_borrow_mut(|fp| {
                fp.clear();
                let phase1 = self.phase1_kernel(soa, root, rng, self.k as u32, Some(fp), scratch);
                fp.sort_unstable();
                fp.dedup();
                match phase1 {
                    KernelPhase1::Activated | KernelPhase1::Hopeless => {
                        shard.push_empty_footprint(fp, mode);
                        Vec::new()
                    }
                    KernelPhase1::Raw => PARTS.with_borrow_mut(|parts| {
                        if !compress_locals_into(
                            &scratch.globals,
                            &scratch.ledges,
                            &scratch.lseeds,
                            self.k,
                            parts,
                        ) {
                            shard.push_empty_footprint(fp, mode);
                            return Vec::new();
                        }
                        shard.push_parts_fp(parts, fp, mode);
                        std::mem::take(&mut parts.critical)
                    }),
                }
            })
        })
    }

    /// Fast path for PRR-Boost-LB: produces only the critical-node set
    /// `C_R` (empty for activated / hopeless / criticality-free graphs).
    ///
    /// Exploration is pruned at distance 1 — "there is no need to explore
    /// incoming edges of a node v if d_r[v] > 1" (Section V-C) — which is
    /// sound because a critical node needs a live tail to the root and a
    /// single boost edge fed by a live head from a seed. Kernel generators
    /// extract the set via stamped scratch arrays; scalar oracles via the
    /// hash-based [`critical_from_raw`]. Both orders are edge-scan-driven
    /// and identical.
    pub fn sample_critical_only(&self, rng: &mut SmallRng) -> Vec<NodeId> {
        let root = NodeId(rng.random_range(0..self.g.num_nodes() as u32));
        match &self.soa {
            Some(soa) => SCRATCH.with_borrow_mut(|scratch| {
                match self.phase1_kernel(soa, root, rng, 1, None, scratch) {
                    KernelPhase1::Activated | KernelPhase1::Hopeless => Vec::new(),
                    KernelPhase1::Raw => CRIT_SCRATCH.with_borrow_mut(|cs| {
                        critical_from_scratch(
                            &scratch.globals,
                            &scratch.ledges,
                            &scratch.lseeds,
                            &self.seed_mask,
                            cs,
                        )
                    }),
                }
            }),
            None => match self.phase1(root, rng, 1, None) {
                Phase1::Activated | Phase1::Hopeless => Vec::new(),
                Phase1::Raw(raw) => critical_from_raw(&raw, self.g.num_nodes(), &self.seed_mask),
            },
        }
    }

    /// Phase-I raw generation, exposed for tests; prunes at `prune_at`
    /// boost edges. Always the scalar oracle.
    pub fn phase1_raw(&self, root: NodeId, rng: &mut SmallRng) -> Option<RawPrr> {
        match self.phase1(root, rng, self.k as u32, None) {
            Phase1::Raw(raw) => Some(raw),
            _ => None,
        }
    }

    /// When `footprint` is given, every node whose in-edge enumeration
    /// begins is appended to it (unsorted; a node appears at most once
    /// because only the entry matching the settled distance expands). A
    /// seed root queries nothing and leaves the footprint empty.
    fn phase1(
        &self,
        root: NodeId,
        rng: &mut SmallRng,
        prune_at: u32,
        footprint: Option<&mut Vec<u32>>,
    ) -> Phase1 {
        self.phase1_tr(root, rng, prune_at, footprint, None)
    }

    /// [`phase1`](Self::phase1) with optional trace capture: when `trace`
    /// is given, the sampled outcome of every queried edge is recorded
    /// into the per-sample [`TraceBuf`] (capture consumes no randomness,
    /// so traced and untraced streams are bit-identical). Trace capture
    /// runs only on the scalar loop — the kernel has no traced variant.
    fn phase1_tr(
        &self,
        root: NodeId,
        rng: &mut SmallRng,
        prune_at: u32,
        mut footprint: Option<&mut Vec<u32>>,
        mut trace: Option<&mut TraceBuf>,
    ) -> Phase1 {
        if let Some(tb) = trace.as_deref_mut() {
            tb.begin(root.0);
        }
        if self.seed_mask.contains(root) {
            return Phase1::Activated;
        }
        SCRATCH.with_borrow_mut(|scratch| {
            scratch.begin(self.g.num_nodes());
            let mut deque: std::collections::VecDeque<(u32, u32)> =
                std::collections::VecDeque::new();
            let mut edges: Vec<(u32, u32, bool)> = Vec::new();
            let mut seeds_found: Vec<u32> = Vec::new();

            scratch.set(root.0, 0);
            deque.push_back((root.0, 0));

            while let Some((u, du)) = deque.pop_front() {
                if du > scratch.get(u) {
                    continue; // stale entry: u was settled at a smaller distance
                }
                if let Some(fp) = footprint.as_deref_mut() {
                    fp.push(u);
                }
                if let Some(tb) = trace.as_deref_mut() {
                    tb.begin_node(u, self.g.in_degree(NodeId(u)));
                }
                for (i, (v, p)) in self.g.in_edges(NodeId(u)).enumerate() {
                    // Sample the three-way status on first (and only) touch.
                    let x: f64 = rng.random();
                    let outcome = if x < p.base {
                        TRACE_LIVE
                    } else if x < p.boosted {
                        TRACE_BOOST
                    } else {
                        TRACE_BLOCKED
                    };
                    if let Some(tb) = trace.as_deref_mut() {
                        tb.record(i, outcome);
                    }
                    if outcome == TRACE_BLOCKED {
                        continue; // blocked
                    }
                    let boost = outcome == TRACE_BOOST;
                    let dvr = du + boost as u32;
                    if dvr > prune_at {
                        continue; // pruning: needs more than k boosts
                    }
                    edges.push((v.0, u, boost));
                    let old = scratch.get(v.0);
                    if dvr < old {
                        scratch.set(v.0, dvr);
                        if self.seed_mask.contains(v) {
                            if dvr == 0 {
                                return Phase1::Activated;
                            }
                            if old == GenScratch::INF {
                                seeds_found.push(v.0);
                            }
                        } else if dvr == du {
                            deque.push_front((v.0, dvr));
                        } else {
                            deque.push_back((v.0, dvr));
                        }
                    }
                }
            }

            if seeds_found.is_empty() {
                Phase1::Hopeless
            } else {
                Phase1::Raw(RawPrr {
                    root: root.0,
                    edges,
                    seeds: seeds_found,
                })
            }
        })
    }

    /// Conditional-replay phase I (Ohsaka-style): re-runs the backward
    /// 0-1 BFS on the *current* graph for the root retained in `tv`,
    /// reusing the recorded coin of every edge whose law is unchanged and
    /// drawing fresh coins only where the mutation batch touched:
    ///
    /// * `redraw_node(u)` — `u`'s in-edge list changed structurally
    ///   (insert/remove head): every coin of `u`'s in-edges is redrawn,
    ///   positional correspondence with the record is void;
    /// * `redraw_edge(v, u)` — the edge `(v, u)` had its probabilities
    ///   rewritten in place: only that coin is redrawn;
    /// * a popped node with no record, or whose captured in-degree
    ///   disagrees with the current one, is redrawn wholesale;
    /// * a [`TRACE_NOT_DRAWN`] sentinel (the capturing run returned
    ///   `Activated` before drawing) is a deferred decision — drawn
    ///   fresh now.
    ///
    /// By the principle of deferred decisions the replayed sample is an
    /// exact draw from the new graph's PRR distribution, *jointly* with
    /// the untouched survivors — the coupling that makes trace-retention
    /// refresh distribution-fresh under partial churn where unconditioned
    /// redraw is not. The replay records a new footprint and trace
    /// against the current graph as it goes.
    #[allow(clippy::too_many_arguments)]
    fn phase1_replay(
        &self,
        tv: &TraceView<'_>,
        redraw_node: &dyn Fn(u32) -> bool,
        redraw_edge: &dyn Fn(u32, u32) -> bool,
        rng: &mut SmallRng,
        prune_at: u32,
        footprint: &mut Vec<u32>,
        trace_out: &mut TraceBuf,
    ) -> Phase1 {
        let root = NodeId(tv.root);
        trace_out.begin(root.0);
        if self.seed_mask.contains(root) {
            return Phase1::Activated;
        }
        SCRATCH.with_borrow_mut(|scratch| {
            scratch.begin(self.g.num_nodes());
            let mut deque: std::collections::VecDeque<(u32, u32)> =
                std::collections::VecDeque::new();
            let mut edges: Vec<(u32, u32, bool)> = Vec::new();
            let mut seeds_found: Vec<u32> = Vec::new();

            scratch.set(root.0, 0);
            deque.push_back((root.0, 0));

            while let Some((u, du)) = deque.pop_front() {
                if du > scratch.get(u) {
                    continue; // stale entry: u was settled at a smaller distance
                }
                footprint.push(u);
                let deg = self.g.in_degree(NodeId(u));
                trace_out.begin_node(u, deg);
                // The record is positionally valid only if the in-edge
                // list is membership- and order-identical to capture time.
                let rec = if redraw_node(u) {
                    None
                } else {
                    tv.records
                        .get(&u)
                        .filter(|&&(d, _)| d as usize == deg)
                        .copied()
                };
                for (i, (v, p)) in self.g.in_edges(NodeId(u)).enumerate() {
                    let mut outcome = TRACE_NOT_DRAWN;
                    if let Some((_, off)) = rec {
                        if !redraw_edge(v.0, u) {
                            outcome = tv.outcome(off, i);
                        }
                    }
                    if outcome == TRACE_NOT_DRAWN {
                        let x: f64 = rng.random();
                        outcome = if x < p.base {
                            TRACE_LIVE
                        } else if x < p.boosted {
                            TRACE_BOOST
                        } else {
                            TRACE_BLOCKED
                        };
                    }
                    trace_out.record(i, outcome);
                    if outcome == TRACE_BLOCKED {
                        continue; // blocked
                    }
                    let boost = outcome == TRACE_BOOST;
                    let dvr = du + boost as u32;
                    if dvr > prune_at {
                        continue; // pruning: needs more than k boosts
                    }
                    edges.push((v.0, u, boost));
                    let old = scratch.get(v.0);
                    if dvr < old {
                        scratch.set(v.0, dvr);
                        if self.seed_mask.contains(v) {
                            if dvr == 0 {
                                return Phase1::Activated;
                            }
                            if old == GenScratch::INF {
                                seeds_found.push(v.0);
                            }
                        } else if dvr == du {
                            deque.push_front((v.0, dvr));
                        } else {
                            deque.push_back((v.0, dvr));
                        }
                    }
                }
            }

            if seeds_found.is_empty() {
                Phase1::Hopeless
            } else {
                Phase1::Raw(RawPrr {
                    root: root.0,
                    edges,
                    seeds: seeds_found,
                })
            }
        })
    }

    /// Data-oriented phase I: identical semantics and random stream to
    /// [`phase1`](Self::phase1), but walking the SoA lanes with batched
    /// uniform draws and emitting *sample-local* node/edge/seed lists into
    /// `scratch` for the compression core to consume without any
    /// global→local relabeling pass.
    ///
    /// Local ids are assigned on first touch. That reproduces exactly the
    /// first-appearance order compression's scalar localization would
    /// assign over the global edge list (root first, then each edge's
    /// endpoints in scan order): every non-root node's first appearance in
    /// the edge list is as the tail of the edge on which the BFS first
    /// touches it — it cannot appear as a head earlier, because heads are
    /// expanded nodes and expansion requires an earlier first touch — and
    /// a first touch always relaxes (the stored distance is `INF`).
    fn phase1_kernel(
        &self,
        soa: &InEdgeSoa,
        root: NodeId,
        rng: &mut SmallRng,
        prune_at: u32,
        mut footprint: Option<&mut Vec<u32>>,
        scratch: &mut GenScratch,
    ) -> KernelPhase1 {
        if self.seed_mask.contains(root) {
            return KernelPhase1::Activated;
        }
        scratch.begin(self.g.num_nodes());
        let GenScratch {
            meta,
            round,
            deque,
            globals,
            ledges,
            lseeds,
            uniforms,
        } = scratch;
        let round = *round;
        let heads = soa.heads();
        let probs = soa.probs();
        let offsets = soa.offsets();

        meta[root.0 as usize] = NodeMeta {
            stamp: round,
            dist: 0,
            lid: 0,
        };
        globals.push(root.0);
        deque.push_back((root.0, 0));

        // Rolling uniform buffer, shared across node boundaries. `saved`
        // snapshots the RNG before each bulk refill; `pos` counts uniforms
        // consumed since. On ANY exit the RNG is rewound to the snapshot
        // and advanced exactly `pos` draws, leaving it bit-identical to
        // the scalar oracle's one-draw-per-touched-edge stream. Refills
        // grow from `UNIFORM_BATCH_MIN` to `UNIFORM_BATCH`; the batch size
        // never affects the stream, only how far the RNG runs ahead.
        let mut saved = rng.clone();
        let mut pos: usize = 0;
        let mut batch: usize = 0;

        while let Some((u, du)) = deque.pop_front() {
            // Deque entries are stamped this round by construction.
            if du > meta[u as usize].dist {
                continue; // stale entry: u was settled at a smaller distance
            }
            if let Some(fp) = footprint.as_deref_mut() {
                fp.push(u);
            }
            let ul = meta[u as usize].lid;
            let (lo, hi) = soa.range(NodeId(u));
            // One-expansion lookahead: start fetching the edge-range lines
            // of the next nodes in the deque while this node is processed
            // (their offset entries were prefetched when they were pushed).
            for &(w, _) in deque.iter().take(2) {
                prefetch(&meta[w as usize]);
                let wlo = offsets[w as usize] as usize;
                if wlo < heads.len() {
                    prefetch(&heads[wlo]);
                    prefetch(&probs[wlo]);
                }
            }
            // Heads are known before any draw: issue their per-node state
            // loads for the whole range (rolling beyond PREFETCH_AHEAD) so
            // the kept-edge lookups below overlap their cache misses.
            for e in lo..hi.min(lo + PREFETCH_AHEAD) {
                prefetch(&meta[heads[e] as usize]);
            }
            for e in lo..hi {
                if e + PREFETCH_AHEAD < hi {
                    prefetch(&meta[heads[e + PREFETCH_AHEAD] as usize]);
                }
                if pos == batch {
                    batch = if batch == 0 {
                        UNIFORM_BATCH_MIN
                    } else {
                        (batch * 2).min(UNIFORM_BATCH)
                    };
                    saved = rng.clone();
                    rng.fill_u64(&mut uniforms[..batch]);
                    pos = 0;
                }
                let x = rand::distr::unit_f64(uniforms[pos]);
                pos += 1;
                let p = probs[e];
                if x >= p.boosted {
                    continue; // blocked (the common case)
                }
                // Same three-way split as the scalar loop, boost decided
                // branchlessly: x < base ⇒ live, base ≤ x < boosted ⇒ boost.
                let boost = x >= p.base;
                let dvr = du + boost as u32;
                if dvr > prune_at {
                    continue; // pruning: needs more than k boosts
                }
                let v = heads[e];
                let to_packed = ul | if boost { LEDGE_BOOST } else { 0 };
                let mi = v as usize;
                let m = meta[mi];
                if m.stamp != round {
                    // First touch: assign the next local id; the stored
                    // distance is INF, so the relaxation is unconditional.
                    let l = globals.len() as u32;
                    meta[mi] = NodeMeta {
                        stamp: round,
                        dist: dvr,
                        lid: l,
                    };
                    globals.push(v);
                    ledges.push((l, to_packed));
                    if self.seed_mask.contains(NodeId(v)) {
                        if dvr == 0 {
                            *rng = saved;
                            for _ in 0..pos {
                                rng.next_u64();
                            }
                            return KernelPhase1::Activated;
                        }
                        lseeds.push(l);
                    } else if dvr == du {
                        prefetch(&offsets[mi]);
                        deque.push_front((v, dvr));
                    } else {
                        prefetch(&offsets[mi]);
                        deque.push_back((v, dvr));
                    }
                } else {
                    ledges.push((m.lid, to_packed));
                    if dvr < m.dist {
                        meta[mi].dist = dvr;
                        if self.seed_mask.contains(NodeId(v)) {
                            if dvr == 0 {
                                *rng = saved;
                                for _ in 0..pos {
                                    rng.next_u64();
                                }
                                return KernelPhase1::Activated;
                            }
                            // Seeds are recorded on first touch only.
                        } else if dvr == du {
                            prefetch(&offsets[mi]);
                            deque.push_front((v, dvr));
                        } else {
                            prefetch(&offsets[mi]);
                            deque.push_back((v, dvr));
                        }
                    }
                }
            }
        }

        // Resync after over-drawing the tail of the last batch. When the
        // buffer is exactly exhausted (or never filled) the RNG already
        // sits at the scalar stream position.
        if pos != batch {
            *rng = saved;
            for _ in 0..pos {
                rng.next_u64();
            }
        }

        if lseeds.is_empty() {
            KernelPhase1::Hopeless
        } else {
            KernelPhase1::Raw
        }
    }
}

/// Extracts the critical set straight from a phase-I raw graph:
/// `v ∈ C_R` iff some boost edge `(u, v)` has `u` live-reachable from a
/// seed and `v` live-reaching the root.
///
/// This is the hash-based reference; the kernel path runs the
/// stamped-scratch [`critical_from_scratch`] equivalent, whose output
/// order (first occurrence in edge-scan order) is identical.
pub fn critical_from_raw(raw: &RawPrr, n: usize, seed_mask: &BoostMask) -> Vec<NodeId> {
    use std::collections::{HashMap, HashSet};

    // Build adjacency over the raw edge list (local, hash-based: raw graphs
    // are small relative to the host graph).
    let mut live_out: HashMap<u32, Vec<u32>> = HashMap::new();
    let mut live_in: HashMap<u32, Vec<u32>> = HashMap::new();
    for &(u, v, boost) in &raw.edges {
        if !boost {
            live_out.entry(u).or_default().push(v);
            live_in.entry(v).or_default().push(u);
        }
    }

    // X: live-forward closure of the seeds.
    let mut x_set: HashSet<u32> = raw.seeds.iter().copied().collect();
    let mut stack: Vec<u32> = raw.seeds.clone();
    while let Some(u) = stack.pop() {
        if let Some(outs) = live_out.get(&u) {
            for &v in outs {
                if x_set.insert(v) {
                    stack.push(v);
                }
            }
        }
    }

    // L: live-backward closure of the root.
    let mut l_set: HashSet<u32> = HashSet::new();
    l_set.insert(raw.root);
    let mut stack = vec![raw.root];
    while let Some(u) = stack.pop() {
        if let Some(ins) = live_in.get(&u) {
            for &v in ins {
                if l_set.insert(v) {
                    stack.push(v);
                }
            }
        }
    }

    let _ = n;
    let mut critical: Vec<NodeId> = Vec::new();
    let mut seen: HashSet<u32> = HashSet::new();
    for &(u, v, boost) in &raw.edges {
        if boost
            && x_set.contains(&u)
            && l_set.contains(&v)
            && !seed_mask.contains(NodeId(v))
            && seen.insert(v)
        {
            critical.push(NodeId(v));
        }
    }
    critical
}

/// Node-flag bits used by [`critical_from_scratch`].
const X_FLAG: u8 = 1;
const L_FLAG: u8 = 2;
const SEEN_FLAG: u8 = 4;

/// Reusable state for the kernel's critical-set extraction: local live
/// CSR adjacencies and per-node flag bytes — the hash-free equivalent of
/// [`critical_from_raw`]'s maps and sets. The phase-I kernel already
/// emits local ids, so no global→local map is needed here.
struct CritScratch {
    out_off: Vec<u32>,
    out_adj: Vec<u32>,
    in_off: Vec<u32>,
    in_adj: Vec<u32>,
    flags: Vec<u8>,
    stack: Vec<u32>,
    cursor: Vec<u32>,
}

impl CritScratch {
    fn new() -> Self {
        CritScratch {
            out_off: Vec::new(),
            out_adj: Vec::new(),
            in_off: Vec::new(),
            in_adj: Vec::new(),
            flags: Vec::new(),
            stack: Vec::new(),
            cursor: Vec::new(),
        }
    }
}

/// Hash-free critical-set extraction over the kernel's scratch-resident
/// phase-I output (local-id tables, packed [`LEDGE_BOOST`] edges, root at
/// local id 0); output-identical to [`critical_from_raw`] (verified by
/// `critical_only_kernel_matches_scalar`).
fn critical_from_scratch(
    globals: &[u32],
    ledges: &[(u32, u32)],
    lseeds: &[u32],
    seed_mask: &BoostMask,
    cs: &mut CritScratch,
) -> Vec<NodeId> {
    let CritScratch {
        out_off,
        out_adj,
        in_off,
        in_adj,
        flags,
        stack,
        cursor,
    } = cs;

    let nn = globals.len();
    let root_l: u32 = 0;

    // Local live CSRs, both directions, per-node lists in edge-scan order.
    out_off.clear();
    out_off.resize(nn + 1, 0);
    in_off.clear();
    in_off.resize(nn + 1, 0);
    for &(lu, pv) in ledges {
        if pv & LEDGE_BOOST == 0 {
            out_off[lu as usize + 1] += 1;
            in_off[pv as usize + 1] += 1;
        }
    }
    for i in 1..=nn {
        out_off[i] += out_off[i - 1];
        in_off[i] += in_off[i - 1];
    }
    out_adj.clear();
    out_adj.resize(out_off[nn] as usize, 0);
    in_adj.clear();
    in_adj.resize(in_off[nn] as usize, 0);
    cursor.clear();
    cursor.extend_from_slice(&out_off[..nn]);
    for &(lu, pv) in ledges {
        if pv & LEDGE_BOOST == 0 {
            out_adj[cursor[lu as usize] as usize] = pv;
            cursor[lu as usize] += 1;
        }
    }
    cursor.clear();
    cursor.extend_from_slice(&in_off[..nn]);
    for &(lu, pv) in ledges {
        if pv & LEDGE_BOOST == 0 {
            in_adj[cursor[pv as usize] as usize] = lu;
            cursor[pv as usize] += 1;
        }
    }

    flags.clear();
    flags.resize(nn, 0);

    // X: live-forward closure of the seeds.
    stack.clear();
    for &ls in lseeds {
        if flags[ls as usize] & X_FLAG == 0 {
            flags[ls as usize] |= X_FLAG;
            stack.push(ls);
        }
    }
    while let Some(u) = stack.pop() {
        let (lo, hi) = (
            out_off[u as usize] as usize,
            out_off[u as usize + 1] as usize,
        );
        for &v in &out_adj[lo..hi] {
            if flags[v as usize] & X_FLAG == 0 {
                flags[v as usize] |= X_FLAG;
                stack.push(v);
            }
        }
    }

    // L: live-backward closure of the root.
    stack.clear();
    flags[root_l as usize] |= L_FLAG;
    stack.push(root_l);
    while let Some(u) = stack.pop() {
        let (lo, hi) = (in_off[u as usize] as usize, in_off[u as usize + 1] as usize);
        for &v in &in_adj[lo..hi] {
            if flags[v as usize] & L_FLAG == 0 {
                flags[v as usize] |= L_FLAG;
                stack.push(v);
            }
        }
    }

    let mut critical: Vec<NodeId> = Vec::new();
    for &(lu, pv) in ledges {
        if pv & LEDGE_BOOST == 0 {
            continue;
        }
        let lv = pv & LEDGE_MASK;
        let gv = globals[lv as usize];
        if flags[lu as usize] & X_FLAG != 0
            && flags[lv as usize] & L_FLAG != 0
            && !seed_mask.contains(NodeId(gv))
            && flags[lv as usize] & SEEN_FLAG == 0
        {
            flags[lv as usize] |= SEEN_FLAG;
            critical.push(NodeId(gv));
        }
    }
    critical
}

/// Evaluates `f_R(B)` directly on a phase-I raw graph (reference
/// implementation used by tests to validate compression).
pub fn raw_f(raw: &RawPrr, boost: &BoostMask) -> bool {
    use std::collections::{HashMap, HashSet};
    let mut out: HashMap<u32, Vec<(u32, bool)>> = HashMap::new();
    for &(u, v, b) in &raw.edges {
        out.entry(u).or_default().push((v, b));
    }
    // No boosting: is the root already activated?
    let reach = |use_boost: bool| -> bool {
        let mut seen: HashSet<u32> = raw.seeds.iter().copied().collect();
        let mut stack: Vec<u32> = raw.seeds.clone();
        while let Some(u) = stack.pop() {
            if u == raw.root {
                return true;
            }
            if let Some(outs) = out.get(&u) {
                for &(v, b) in outs {
                    let ok = !b || (use_boost && boost.contains(NodeId(v)));
                    if ok && seen.insert(v) {
                        stack.push(v);
                    }
                }
            }
        }
        seen.contains(&raw.root)
    };
    !reach(false) && reach(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kboost_graph::GraphBuilder;
    use rand::SeedableRng;

    /// Maps the kernel's local-id edge list back to the scalar oracle's
    /// global `(from, to, is_boost)` representation.
    fn kernel_global_edges(s: &GenScratch) -> Vec<(u32, u32, bool)> {
        s.ledges
            .iter()
            .map(|&(f, pt)| {
                (
                    s.globals[f as usize],
                    s.globals[(pt & LEDGE_MASK) as usize],
                    pt & LEDGE_BOOST != 0,
                )
            })
            .collect()
    }

    /// Maps the kernel's local seed ids back to global ids.
    fn kernel_global_seeds(s: &GenScratch) -> Vec<u32> {
        s.lseeds.iter().map(|&l| s.globals[l as usize]).collect()
    }

    fn figure1() -> DiGraph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 0.2, 0.4).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.1, 0.2).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn root_at_seed_is_activated() {
        let g = figure1();
        let gen = PrrGenerator::new(&g, &[NodeId(0)], 2);
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(matches!(
            gen.sample_rooted(NodeId(0), &mut rng),
            PrrOutcome::Activated
        ));
    }

    #[test]
    fn outcome_frequencies_match_exact_probabilities() {
        // Root = v1 (node 2). P[activated] = P[both edges live] = 0.02.
        // P[boostable] = P[root activatable with ≤2 boosts] − P[activated].
        let g = figure1();
        let gen = PrrGenerator::new(&g, &[NodeId(0)], 2);
        let mut rng = SmallRng::seed_from_u64(5);
        let trials = 200_000;
        let (mut act, mut boostable) = (0u32, 0u32);
        for _ in 0..trials {
            match gen.sample_rooted(NodeId(2), &mut rng) {
                PrrOutcome::Activated => act += 1,
                PrrOutcome::Boostable(_) => boostable += 1,
                PrrOutcome::Hopeless => {}
            }
        }
        let p_act = act as f64 / trials as f64;
        assert!((p_act - 0.02).abs() < 0.005, "P[activated] ≈ {p_act}");
        // Boostable: both edges non-blocked, not both live:
        // 0.4·0.2 − 0.02 = 0.06.
        let p_boost = boostable as f64 / trials as f64;
        assert!((p_boost - 0.06).abs() < 0.005, "P[boostable] ≈ {p_boost}");
    }

    #[test]
    fn pruning_respects_k() {
        // With k = 1, a root needing 2 boosts must be hopeless.
        let mut b = GraphBuilder::new(3);
        // Both edges are boost-only (p = 0, p' = 1).
        b.add_edge(NodeId(0), NodeId(1), 0.0, 1.0).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.0, 1.0).unwrap();
        let g = b.build().unwrap();
        let mut rng = SmallRng::seed_from_u64(3);
        let gen1 = PrrGenerator::new(&g, &[NodeId(0)], 1);
        assert!(matches!(
            gen1.sample_rooted(NodeId(2), &mut rng),
            PrrOutcome::Hopeless
        ));
        let gen2 = PrrGenerator::new(&g, &[NodeId(0)], 2);
        assert!(matches!(
            gen2.sample_rooted(NodeId(2), &mut rng),
            PrrOutcome::Boostable(_)
        ));
    }

    #[test]
    fn pruned_edges_not_retained() {
        // Satellite audit pin: the `dvr > prune_at` check precedes the
        // `edges.push`, so pruned edges never reach phase II. Graph:
        // 0→1, 0→2, 1→2 all boost-only; seeds {0}, k = 1, root 2. The
        // backward BFS reaches node 1 at distance 1; its in-edge 0→1
        // would land at dvr = 2 > 1 and must be dropped — in both the
        // scalar oracle and the kernel.
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 0.0, 1.0).unwrap();
        b.add_edge(NodeId(0), NodeId(2), 0.0, 1.0).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.0, 1.0).unwrap();
        let g = b.build().unwrap();
        let gen = PrrGenerator::new(&g, &[NodeId(0)], 1);

        let mut rng = SmallRng::seed_from_u64(17);
        let raw = gen.phase1_raw(NodeId(2), &mut rng).expect("boostable");
        assert_eq!(raw.edges.len(), 2, "pruned edge retained: {:?}", raw.edges);
        assert!(raw.edges.contains(&(0, 2, true)));
        assert!(raw.edges.contains(&(1, 2, true)));
        assert!(!raw.edges.contains(&(0, 1, true)));

        let soa = gen.soa.as_ref().unwrap();
        let mut rng = SmallRng::seed_from_u64(17);
        let mut scratch = GenScratch::new();
        assert!(matches!(
            gen.phase1_kernel(soa, NodeId(2), &mut rng, 1, None, &mut scratch),
            KernelPhase1::Raw
        ));
        assert_eq!(kernel_global_edges(&scratch), raw.edges);
        assert_eq!(kernel_global_seeds(&scratch), raw.seeds);
    }

    fn er_graph(n: usize, m: usize, seed: u64) -> DiGraph {
        use kboost_graph::generators::erdos_renyi;
        use kboost_graph::probability::ProbabilityModel;
        let mut rng = SmallRng::seed_from_u64(seed);
        erdos_renyi(n, m, ProbabilityModel::Constant(0.35), 2.0, &mut rng)
    }

    #[test]
    fn kernel_phase1_matches_scalar_oracle() {
        // Same seed, same root → identical edges, seeds, and (critically)
        // identical RNG state afterwards, early-Activated rewinds included.
        for gseed in 0..8u64 {
            let g = er_graph(24, 90, gseed);
            let gen = PrrGenerator::new(&g, &[NodeId(0), NodeId(1)], 2);
            let soa = gen.soa.as_ref().unwrap();
            let mut scratch = GenScratch::new();
            for sseed in 0..40u64 {
                for root in [2u32, 7, 23] {
                    let mut rng_s = SmallRng::seed_from_u64(sseed * 1000 + root as u64);
                    let mut rng_k = rng_s.clone();
                    let scalar = gen.phase1(NodeId(root), &mut rng_s, 2, None);
                    let kernel =
                        gen.phase1_kernel(soa, NodeId(root), &mut rng_k, 2, None, &mut scratch);
                    match (&scalar, &kernel) {
                        (Phase1::Activated, KernelPhase1::Activated)
                        | (Phase1::Hopeless, KernelPhase1::Hopeless) => {}
                        (Phase1::Raw(raw), KernelPhase1::Raw) => {
                            assert_eq!(raw.edges, kernel_global_edges(&scratch));
                            assert_eq!(raw.seeds, kernel_global_seeds(&scratch));
                        }
                        _ => panic!("outcome diverged (gseed {gseed}, sseed {sseed})"),
                    }
                    // Streams must stay in lockstep after the sample.
                    assert_eq!(
                        rng_s.next_u64(),
                        rng_k.next_u64(),
                        "rng state diverged (gseed {gseed}, sseed {sseed}, root {root})"
                    );
                }
            }
        }
    }

    #[test]
    fn kernel_shard_byte_equal_to_scalar_shard() {
        use crate::arena::{PrrArena, PrrArenaShard};
        for gseed in 0..4u64 {
            let g = er_graph(20, 70, gseed + 50);
            let kernel = PrrGenerator::new(&g, &[NodeId(0)], 2);
            let scalar = PrrGenerator::new_scalar_oracle(&g, &[NodeId(0)], 2);
            assert!(kernel.is_kernel() && !scalar.is_kernel());
            for mode in [
                FootprintMode::Off,
                FootprintMode::Sorted,
                FootprintMode::Compressed,
                FootprintMode::Hybrid { bloom_above: 4 },
            ] {
                let mut rng_k = SmallRng::seed_from_u64(gseed * 7 + 3);
                let mut rng_s = rng_k.clone();
                let mut shard_k = PrrArenaShard::new();
                let mut shard_s = PrrArenaShard::new();
                for _ in 0..300 {
                    let ck = kernel.sample_into_fp(&mut rng_k, &mut shard_k, mode);
                    let cs = scalar.sample_into_fp(&mut rng_s, &mut shard_s, mode);
                    assert_eq!(ck, cs, "covers diverged");
                }
                assert_eq!(rng_k.next_u64(), rng_s.next_u64(), "stream diverged");
                assert_eq!(
                    PrrArena::from_shard(shard_k),
                    PrrArena::from_shard(shard_s),
                    "arenas diverged (gseed {gseed}, mode {mode:?})"
                );
            }
        }
    }

    #[test]
    fn trace_capture_leaves_stream_and_payload_unchanged() {
        // Trace mode must draw the identical stream and store the same
        // graphs/footprints as Sorted mode; only the sidecar differs.
        use crate::arena::{PrrArena, PrrArenaShard};
        for gseed in 0..4u64 {
            let g = er_graph(20, 70, gseed + 200);
            let gen = PrrGenerator::new_scalar_oracle(&g, &[NodeId(0)], 2);
            let mut rng_t = SmallRng::seed_from_u64(gseed * 11 + 5);
            let mut rng_s = rng_t.clone();
            let mut shard_t = PrrArenaShard::new();
            let mut shard_s = PrrArenaShard::new();
            for _ in 0..200 {
                let ct = gen.sample_into_fp(&mut rng_t, &mut shard_t, FootprintMode::Trace);
                let cs = gen.sample_into_fp(&mut rng_s, &mut shard_s, FootprintMode::Sorted);
                assert_eq!(ct, cs, "covers diverged");
            }
            assert_eq!(rng_t.next_u64(), rng_s.next_u64(), "stream diverged");
            let at = PrrArena::from_shard(shard_t);
            let arena_s = PrrArena::from_shard(shard_s);
            assert_eq!(at.len(), arena_s.len());
            // Same decoded footprints, graph for graph.
            for i in 0..at.len() {
                let mut ft = Vec::new();
                at.footprints().for_each_node(i, |v| ft.push(v));
                assert_eq!(arena_s.footprints().nodes(i).unwrap(), &ft[..]);
                assert!(!at.footprints().trace(i).is_empty(), "missing trace");
            }
        }
    }

    #[test]
    fn replay_without_mutation_reproduces_the_sample() {
        // With no mutated edges every coin is reused: the replay must
        // reproduce the original graph, footprint, and trace exactly,
        // consuming no randomness (except for not-drawn sentinels, which
        // only arise on early-Activated samples — those have no stored
        // graph to compare anyway).
        for gseed in 0..6u64 {
            let g = er_graph(24, 90, gseed + 300);
            let gen = PrrGenerator::new_scalar_oracle(&g, &[NodeId(0)], 2);
            let mut rng = SmallRng::seed_from_u64(gseed * 13 + 1);
            let (mut fp0, mut tr0) = (Vec::new(), Vec::new());
            let (mut fp1, mut tr1) = (Vec::new(), Vec::new());
            for _ in 0..80 {
                let out = gen.sample_with_footprint_trace(&mut rng, &mut fp0, &mut tr0);
                let mut replay_rng = SmallRng::seed_from_u64(999);
                let before = replay_rng.clone().next_u64();
                let rep = gen.replay_with_footprint_trace(
                    &tr0,
                    &|_| false,
                    &|_, _| false,
                    &mut replay_rng,
                    &mut fp1,
                    &mut tr1,
                );
                match (&out, &rep) {
                    (PrrOutcome::Boostable(a), PrrOutcome::Boostable(b)) => {
                        assert_eq!(a, b, "replayed graph diverged");
                        assert_eq!(fp0, fp1);
                        assert_eq!(tr0, tr1);
                        // Full-reuse replay consumes no randomness.
                        assert_eq!(replay_rng.next_u64(), before);
                    }
                    (PrrOutcome::Hopeless, PrrOutcome::Hopeless) => {
                        assert_eq!(fp0, fp1);
                        assert_eq!(tr0, tr1);
                    }
                    (PrrOutcome::Activated, PrrOutcome::Activated) => {}
                    _ => panic!("outcome diverged under no-mutation replay"),
                }
            }
        }
    }

    #[test]
    fn replay_redraws_only_mutated_coins() {
        // Conditional replay on the same graph with a redraw predicate:
        // outcomes of untouched edges must be preserved bit-for-bit in
        // the new trace; redrawn positions follow the replay RNG.
        let g = er_graph(24, 90, 7);
        let gen = PrrGenerator::new_scalar_oracle(&g, &[NodeId(0)], 2);
        let mut rng = SmallRng::seed_from_u64(21);
        let (mut fp0, mut tr0) = (Vec::new(), Vec::new());
        let (mut fp1, mut tr1) = (Vec::new(), Vec::new());
        let mut checked = 0u32;
        for _ in 0..60 {
            let out = gen.sample_with_footprint_trace(&mut rng, &mut fp0, &mut tr0);
            if !matches!(out, PrrOutcome::Boostable(_)) {
                continue;
            }
            // "Mutate" the in-edges of one footprint node: same probs, so
            // the replayed sample stays a valid draw, but its coins are
            // forced fresh while all the others must be reused.
            let target = fp0[fp0.len() / 2];
            let mut replay_rng = SmallRng::seed_from_u64(4242);
            let rep = gen.replay_with_footprint_trace(
                &tr0,
                &|u| u == target,
                &|_, _| false,
                &mut replay_rng,
                &mut fp1,
                &mut tr1,
            );
            // The replay is a valid sample; if the redrawn coins happen to
            // repeat the original outcomes, everything must round-trip.
            if tr1 == tr0 {
                assert_eq!(fp1, fp0);
                match rep {
                    PrrOutcome::Boostable(_) => {}
                    _ => panic!("identical trace but different outcome"),
                }
            }
            checked += 1;
        }
        assert!(checked > 10, "too few boostable samples to exercise replay");
    }

    #[test]
    fn coverless_boostable_graphs_are_stored() {
        // Satellite pin (PR 10): a boostable graph whose critical set is
        // empty is retained in the shard with an empty cover — dropping
        // it broke Δ̂ for k ≥ 2 boost sets that activate its root.
        use crate::arena::{PrrArena, PrrArenaShard};
        let mut stored_coverless = 0usize;
        for gseed in 0..8u64 {
            let g = er_graph(20, 70, gseed + 400);
            let gen = PrrGenerator::new(&g, &[NodeId(0)], 2);
            let mut rng = SmallRng::seed_from_u64(gseed);
            let mut shard = PrrArenaShard::new();
            let mut covers = 0usize;
            for _ in 0..300 {
                if !gen.sample_into(&mut rng, &mut shard).is_empty() {
                    covers += 1;
                }
            }
            let arena = PrrArena::from_shard(shard);
            assert!(arena.len() >= covers);
            stored_coverless += arena.len() - covers;
        }
        assert!(
            stored_coverless > 0,
            "no cover-less boostable graph sampled; weaken the pin's graphs"
        );
    }

    #[test]
    fn critical_only_kernel_matches_scalar() {
        for gseed in 0..6u64 {
            let g = er_graph(18, 60, gseed + 100);
            let kernel = PrrGenerator::new(&g, &[NodeId(0), NodeId(3)], 1);
            let scalar = PrrGenerator::new_scalar_oracle(&g, &[NodeId(0), NodeId(3)], 1);
            let mut rng_k = SmallRng::seed_from_u64(gseed + 9);
            let mut rng_s = rng_k.clone();
            for _ in 0..200 {
                assert_eq!(
                    kernel.sample_critical_only(&mut rng_k),
                    scalar.sample_critical_only(&mut rng_s)
                );
            }
            assert_eq!(rng_k.next_u64(), rng_s.next_u64(), "stream diverged");
        }
    }

    #[test]
    fn raw_f_on_deterministic_graph() {
        // p = 0, p' = 1 on s->a and a->r: f(∅)=0, f({a})=0, f({a,r})=1.
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 0.0, 1.0).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.0, 1.0).unwrap();
        let g = b.build().unwrap();
        let gen = PrrGenerator::new(&g, &[NodeId(0)], 2);
        let mut rng = SmallRng::seed_from_u64(9);
        let raw = gen.phase1_raw(NodeId(2), &mut rng).expect("boostable");
        assert!(!raw_f(&raw, &BoostMask::empty(3)));
        assert!(!raw_f(&raw, &BoostMask::from_nodes(3, &[NodeId(1)])));
        assert!(raw_f(
            &raw,
            &BoostMask::from_nodes(3, &[NodeId(1), NodeId(2)])
        ));
    }

    #[test]
    fn critical_only_agrees_with_raw_definition() {
        // Deterministic boost-only single edge: s -> r with p=0, p'=1.
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1), 0.0, 1.0).unwrap();
        let g = b.build().unwrap();
        let gen = PrrGenerator::new(&g, &[NodeId(0)], 1);
        let mut rng = SmallRng::seed_from_u64(11);
        // Critical set of every sampled graph rooted at 1 must be {1}.
        let mut found = 0;
        for _ in 0..20 {
            let crit = gen.sample_critical_only(&mut rng);
            if crit == vec![NodeId(1)] {
                found += 1;
            } else {
                assert!(crit.is_empty(), "unexpected critical set {crit:?}");
            }
        }
        // Root is uniform over {0, 1}; roughly half the samples root at 1.
        assert!(found > 3, "critical set never found");
    }
}
