//! Flat arena storage for pools of compressed PRR-graphs, built in
//! streaming shards during sampling.
//!
//! PRR-Boost retains `10^5`–`10^7` compressed PRR-graphs and re-traverses
//! them on every `Δ̂` evaluation and greedy round. Storing each graph as an
//! independent [`CompressedPrr`] scatters those traversals across the heap
//! (seven allocations per graph). The [`PrrArena`] concatenates every
//! graph's node table, CSR offsets, packed edges and critical set into one
//! shared `Vec` each, with a fixed-size [`GraphMeta`] record per graph — so
//! a full pool sweep is a linear scan over a handful of flat arrays.
//!
//! # Shard lifecycle
//!
//! The arena is *never* populated by copying finished per-graph objects.
//! Sampling workers each build a [`PrrArenaShard`] per work chunk: Phase-II
//! compression appends node tables, CSR offsets, packed `u32` edges and
//! critical sets straight from the raw PRR-graph into the shard's shared
//! arrays (no intermediate `CompressedPrr` is ever allocated on this path).
//! The sketch pool then merges chunk shards **in chunk order** via
//! [`PrrArena::absorb_shard`]: a handful of bulk `Vec` appends, with the
//! shard's (shard-absolute) CSR offsets and [`GraphMeta`] bases rebased by
//! the receiving arena's current sizes. Converting the final merged shard
//! into a [`PrrArena`] is a move.
//!
//! # Determinism contract
//!
//! Shard contents depend only on the RNG handed to the generator, and
//! chunk shards are absorbed in global chunk-index order, so for a fixed
//! `(base_seed, target sequence)` the final arena is **bit-identical for
//! any thread count**. Shard construction reuses the exact CSR assembly of
//! [`CompressedPrr::from_adjacency`], so a shard-built arena is also
//! byte-equal to a legacy arena built by pushing per-graph `CompressedPrr`
//! payloads (`tests/shard_pipeline.rs` asserts both properties; the legacy
//! path survives only as that equivalence oracle).
//!
//! Per-node edge offsets are stored *absolute* (into the shared edge
//! arrays) as `u32`, capping an arena at `u32::MAX` stored edges — orders
//! of magnitude above the paper's largest runs; [`PrrArena::push`] and
//! [`PrrArena::absorb_shard`] assert the cap.
//!
//! # Tombstones and compaction (online maintenance)
//!
//! The online subsystem (`kboost-online`) refreshes a pool under graph
//! mutations by [`tombstone`](PrrArena::tombstone)-ing stale graphs and
//! absorbing replacement shards. A tombstoned graph's bytes stay in the
//! shared arrays (flagged dead, skipped by every consumer via
//! [`is_live`](PrrArena::is_live)) until
//! [`compact`](PrrArena::compact) rewrites the arena without them.
//! Compaction is *canonicalizing*: the compacted arena is byte-identical
//! to one built by appending the surviving graphs in order onto an empty
//! arena, so an incrementally maintained arena compares equal (`==`) to a
//! from-scratch rebuild with the same live content — the equivalence the
//! online property tests assert.
//!
//! [`PrrGraphView`] is the borrowed form of one graph — either a slice of
//! an arena or a borrow of a standalone [`CompressedPrr`] — and owns the
//! evaluation primitives `f_R(B)` and the B-augmented critical set.

use kboost_diffusion::sim::BoostMask;
use kboost_graph::NodeId;
use kboost_rrset::sketch::SketchShard;

use crate::compress::CompressedParts;
use crate::footprint::{FootprintColumn, FootprintMode};
use crate::graph::{pack_edge, unpack_edge, Augmented, CompressedPrr, PrrEvalScratch, SUPER_SEED};

thread_local! {
    /// Reusable backward-CSR count/cursor buffer for
    /// [`PrrArena::push_parts`] (cleared per graph, grown on demand) —
    /// same idiom as the generation scratch in `gen.rs`.
    static BWD_SCRATCH: std::cell::RefCell<Vec<u32>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Per-graph record: where the graph's slices live in the shared arrays.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct GraphMeta {
    /// Local id of the root.
    root: u32,
    /// Start of this graph's entries in `globals`.
    node_base: u32,
    /// Number of local nodes (super-seed included).
    nodes: u32,
    /// Start of this graph's `nodes + 1` entries in `fwd_off` / `bwd_off`.
    off_base: u32,
    /// Start of this graph's entries in `critical`.
    crit_base: u32,
    /// Number of critical nodes.
    crit_len: u32,
    /// Phase-I edge count before compression.
    uncompressed: u32,
}

/// A flat, append-only pool of compressed PRR-graphs.
///
/// Filled by absorbing sampling shards (see the module docs for the
/// lifecycle); immutable once filled and shared across worker threads by
/// reference (all parallel consumers only read). `PartialEq` compares the
/// raw storage arrays — two arenas are equal iff they are byte-equal,
/// which is what the determinism and shard-vs-legacy equivalence tests
/// assert. `Clone` exists for the transactional-epoch fault tests, which
/// snapshot the arena before an epoch and assert byte-identity after a
/// rollback.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct PrrArena {
    meta: Vec<GraphMeta>,
    /// Concatenated local → global id tables.
    globals: Vec<u32>,
    /// Concatenated per-node forward CSR offsets, absolute into `fwd`.
    fwd_off: Vec<u32>,
    /// Concatenated packed forward edges.
    fwd: Vec<u32>,
    /// Concatenated per-node backward CSR offsets, absolute into `bwd`.
    bwd_off: Vec<u32>,
    /// Concatenated packed backward edges.
    bwd: Vec<u32>,
    /// Concatenated critical sets.
    critical: Vec<NodeId>,
    /// Tombstone flags, parallel to `meta`. Lazily allocated: empty means
    /// every graph is live (the invariant batch-built arenas keep), and
    /// [`compact`](Self::compact) restores the empty state — so two arenas
    /// with identical live content compare equal regardless of tombstone
    /// history once compacted.
    dead: Vec<bool>,
    /// Number of `true` entries in `dead`.
    num_dead: usize,
    /// Per-stored-graph edge-space footprints (exact staleness only;
    /// empty column in [`FootprintMode::Off`]).
    fp: FootprintColumn,
    /// Footprints of *empty* samples (activated / hopeless / cover-less),
    /// which store no graph but still need refreshing when their
    /// phase-I exploration touched a mutated edge.
    empty_fp: FootprintColumn,
    /// Tombstone flags for `empty_fp` entries, same lazy semantics as
    /// `dead`.
    empty_dead: Vec<bool>,
    /// Number of `true` entries in `empty_dead`.
    num_empty_dead: usize,
}

impl PrrArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds an arena by pushing per-graph `CompressedPrr`s in order —
    /// the legacy copy path, kept as the equivalence oracle for the shard
    /// pipeline (tests only; the production path is
    /// [`absorb_shard`](Self::absorb_shard)).
    pub fn from_graphs<I: IntoIterator<Item = CompressedPrr>>(graphs: I) -> Self {
        let mut arena = PrrArena::new();
        for g in graphs {
            arena.push(&g);
        }
        arena
    }

    /// Unwraps the final merged sampling shard into an arena (a move — the
    /// shard's arrays *are* the arena's arrays).
    pub fn from_shard(shard: PrrArenaShard) -> Self {
        shard.0
    }

    /// Asserts the shared-array growth stays within the `u32` offset caps.
    ///
    /// Every stored offset and meta base — including each graph's *end*
    /// edge offset, which equals the resulting array length — must fit in
    /// a `u32`, so each resulting length is capped at `u32::MAX`.
    /// `add_off` is the true `fwd_off`/`bwd_off` growth (`nodes + 1` per
    /// appended graph).
    fn assert_caps(
        &self,
        add_nodes: usize,
        add_off: usize,
        add_fwd: usize,
        add_bwd: usize,
        add_crit: usize,
    ) {
        const LIMIT: u64 = u32::MAX as u64;
        assert!(
            self.fwd.len() as u64 + add_fwd as u64 <= LIMIT
                && self.bwd.len() as u64 + add_bwd as u64 <= LIMIT,
            "PrrArena exceeds the u32 stored-edge cap"
        );
        assert!(
            self.globals.len() as u64 + add_nodes as u64 <= LIMIT
                && self.fwd_off.len() as u64 + add_off as u64 <= LIMIT
                && self.critical.len() as u64 + add_crit as u64 <= LIMIT,
            "PrrArena exceeds a u32 shared-array cap"
        );
    }

    /// Appends one compressed graph, copying its arrays into the shared
    /// storage with offsets rebased (legacy/oracle path).
    pub fn push(&mut self, g: &CompressedPrr) {
        let n = g.globals.len();
        let fwd_base = self.fwd.len() as u64;
        let bwd_base = self.bwd.len() as u64;
        self.assert_caps(n, n + 1, g.fwd.len(), g.bwd.len(), g.critical.len());

        self.meta.push(GraphMeta {
            root: g.root,
            node_base: self.globals.len() as u32,
            nodes: n as u32,
            off_base: self.fwd_off.len() as u32,
            crit_base: self.critical.len() as u32,
            crit_len: g.critical.len() as u32,
            uncompressed: g.uncompressed_edges,
        });
        self.globals.extend_from_slice(&g.globals);
        self.fwd_off
            .extend(g.fwd_offsets.iter().map(|&o| fwd_base as u32 + o));
        self.fwd.extend_from_slice(&g.fwd);
        self.bwd_off
            .extend(g.bwd_offsets.iter().map(|&o| bwd_base as u32 + o));
        self.bwd.extend_from_slice(&g.bwd);
        self.critical.extend_from_slice(&g.critical);
        if !self.dead.is_empty() {
            self.dead.push(false);
        }
    }

    /// Appends one compressed graph together with its sampling footprint
    /// (legacy/oracle path of the exact-staleness pipeline).
    pub fn push_with_footprint(
        &mut self,
        g: &CompressedPrr,
        footprint: &[u32],
        mode: FootprintMode,
    ) {
        debug_assert!(mode.is_on());
        self.push(g);
        self.fp.ensure_mode(mode);
        self.fp.push(footprint);
    }

    /// [`push_with_footprint`](Self::push_with_footprint) with the
    /// sample's phase-I trace sidecar attached
    /// ([`FootprintMode::Trace`]).
    pub fn push_with_footprint_trace(
        &mut self,
        g: &CompressedPrr,
        footprint: &[u32],
        trace: &[u8],
        mode: FootprintMode,
    ) {
        debug_assert!(mode.is_on());
        self.push(g);
        self.fp.ensure_mode(mode);
        self.fp.push_with_trace(footprint, trace);
    }

    /// Records the footprint of an *empty* sample (one that stored no
    /// graph). No-op in [`FootprintMode::Off`].
    pub fn push_empty_footprint(&mut self, footprint: &[u32], mode: FootprintMode) {
        self.push_empty_footprint_trace(footprint, &[], mode);
    }

    /// [`push_empty_footprint`](Self::push_empty_footprint) with the
    /// sample's phase-I trace sidecar attached
    /// ([`FootprintMode::Trace`]).
    pub fn push_empty_footprint_trace(
        &mut self,
        footprint: &[u32],
        trace: &[u8],
        mode: FootprintMode,
    ) {
        if !mode.is_on() {
            return;
        }
        self.empty_fp.ensure_mode(mode);
        self.empty_fp.push_with_trace(footprint, trace);
        if !self.empty_dead.is_empty() {
            self.empty_dead.push(false);
        }
    }

    /// Appends one graph straight from Phase-II adjacency output,
    /// assembling both CSR halves in place in the shared arrays — the
    /// streaming counterpart of [`CompressedPrr::from_adjacency`] followed
    /// by [`push`](Self::push), producing byte-identical storage.
    pub(crate) fn push_parts(&mut self, parts: &CompressedParts) {
        let n = parts.globals.len();
        debug_assert_eq!(parts.adj_off.len(), n + 1);
        debug_assert_eq!(parts.globals[0], SUPER_SEED);
        let m = parts.adj.len();
        let fwd_base = self.fwd.len();
        let bwd_base = self.bwd.len();
        self.assert_caps(n, n + 1, m, m, parts.critical.len());

        self.meta.push(GraphMeta {
            root: parts.root,
            node_base: self.globals.len() as u32,
            nodes: n as u32,
            off_base: self.fwd_off.len() as u32,
            crit_base: self.critical.len() as u32,
            crit_len: parts.critical.len() as u32,
            uncompressed: parts.uncompressed,
        });
        self.globals.extend_from_slice(&parts.globals);
        self.critical.extend_from_slice(&parts.critical);
        if !self.dead.is_empty() {
            self.dead.push(false);
        }

        // Forward CSR: the parts offsets rebased to this arena, plus the
        // packed edges.
        self.fwd_off
            .extend(parts.adj_off.iter().map(|&o| fwd_base as u32 + o));
        self.fwd.reserve(m);
        self.fwd
            .extend(parts.adj.iter().map(|&(to, boost)| pack_edge(to, boost)));

        // Backward CSR: count in-degrees, prefix-sum into absolute
        // offsets, then scatter (same edge order as `from_adjacency`).
        // One reusable thread-local buffer serves as both the count and
        // the scatter-cursor array, keeping this hot path allocation-free.
        BWD_SCRATCH.with_borrow_mut(|cursor| {
            cursor.clear();
            cursor.resize(n, 0);
            for &(to, _) in &parts.adj {
                cursor[to as usize] += 1;
            }
            // Prefix-sum: emit the absolute offsets and convert each count
            // into its node's scatter start position in the same pass.
            let mut off = bwd_base as u32;
            self.bwd_off.push(off);
            for c in cursor.iter_mut() {
                let count = *c;
                *c = off;
                off += count;
                self.bwd_off.push(off);
            }
            self.bwd.resize(bwd_base + m, 0);
            for from in 0..n {
                let (lo, hi) = (
                    parts.adj_off[from] as usize,
                    parts.adj_off[from + 1] as usize,
                );
                for &(to, boost) in &parts.adj[lo..hi] {
                    self.bwd[cursor[to as usize] as usize] = pack_edge(from as u32, boost);
                    cursor[to as usize] += 1;
                }
            }
        });
    }

    /// Streaming-path variant of [`push_parts`](Self::push_parts) that
    /// also records the sample's footprint.
    pub(crate) fn push_parts_fp(
        &mut self,
        parts: &CompressedParts,
        footprint: &[u32],
        mode: FootprintMode,
    ) {
        debug_assert!(mode.is_on());
        self.push_parts(parts);
        self.fp.ensure_mode(mode);
        self.fp.push(footprint);
    }

    /// [`push_parts_fp`](Self::push_parts_fp) with the sample's phase-I
    /// trace sidecar attached ([`FootprintMode::Trace`]).
    pub(crate) fn push_parts_fp_trace(
        &mut self,
        parts: &CompressedParts,
        footprint: &[u32],
        trace: &[u8],
        mode: FootprintMode,
    ) {
        debug_assert!(mode.is_on());
        self.push_parts(parts);
        self.fp.ensure_mode(mode);
        self.fp.push_with_trace(footprint, trace);
    }

    /// Merges a sampling shard into this arena by bulk `Vec` appends,
    /// rebasing the shard's (shard-absolute) CSR offsets and `GraphMeta`
    /// bases by this arena's current sizes. Callers must absorb shards in
    /// chunk order — that ordering is the determinism contract.
    pub fn absorb_shard(&mut self, shard: PrrArenaShard) {
        let other = shard.0;
        debug_assert!(
            other.dead.is_empty() && other.empty_dead.is_empty(),
            "shards never hold tombstones"
        );
        if self.meta.is_empty() && self.empty_fp.count() == 0 {
            // First shard: adopt its arrays wholesale (all bases are 0).
            // A previously filled arena can only be empty again if it was
            // never tombstoned or was compacted, so no dead flags to keep.
            // (A latent footprint *mode* on an empty column carries no
            // content — column equality ignores it — so adopting the
            // shard's columns wholesale is safe here too.)
            debug_assert!(self.dead.is_empty() && self.empty_dead.is_empty());
            *self = other;
            return;
        }
        self.assert_caps(
            other.globals.len(),
            other.fwd_off.len(),
            other.fwd.len(),
            other.bwd.len(),
            other.critical.len(),
        );
        let node_base = self.globals.len() as u32;
        let off_base = self.fwd_off.len() as u32;
        let crit_base = self.critical.len() as u32;
        let fwd_base = self.fwd.len() as u32;
        let bwd_base = self.bwd.len() as u32;

        self.meta.extend(other.meta.iter().map(|m| GraphMeta {
            root: m.root,
            node_base: m.node_base + node_base,
            nodes: m.nodes,
            off_base: m.off_base + off_base,
            crit_base: m.crit_base + crit_base,
            crit_len: m.crit_len,
            uncompressed: m.uncompressed,
        }));
        self.globals.extend_from_slice(&other.globals);
        self.fwd_off
            .extend(other.fwd_off.iter().map(|&o| o + fwd_base));
        self.fwd.extend_from_slice(&other.fwd);
        self.bwd_off
            .extend(other.bwd_off.iter().map(|&o| o + bwd_base));
        self.bwd.extend_from_slice(&other.bwd);
        self.critical.extend_from_slice(&other.critical);
        if !self.dead.is_empty() {
            self.dead.resize(self.meta.len(), false);
        }
        self.fp.absorb(&other.fp);
        self.empty_fp.absorb(&other.empty_fp);
        if !self.empty_dead.is_empty() {
            self.empty_dead.resize(self.empty_fp.count(), false);
        }
    }

    /// Marks graph `i` dead: skipped by estimation/selection, its bytes
    /// reclaimed by the next [`compact`](Self::compact).
    pub fn tombstone(&mut self, i: usize) {
        if self.dead.is_empty() {
            self.dead.resize(self.meta.len(), false);
        }
        assert!(!self.dead[i], "graph {i} tombstoned twice");
        self.dead[i] = true;
        self.num_dead += 1;
    }

    /// Whether graph `i` is live (not tombstoned).
    #[inline]
    pub fn is_live(&self, i: usize) -> bool {
        self.dead.is_empty() || !self.dead[i]
    }

    /// Number of tombstoned graphs.
    pub fn num_dead(&self) -> usize {
        self.num_dead
    }

    /// Number of live (non-tombstoned) graphs.
    pub fn num_live(&self) -> usize {
        self.meta.len() - self.num_dead
    }

    /// Marks the empty-sample footprint `i` dead — the empty-sample
    /// counterpart of [`tombstone`](Self::tombstone), used by exact
    /// staleness when a mutation hits an empty sample's exploration.
    pub fn tombstone_empty(&mut self, i: usize) {
        if self.empty_dead.is_empty() {
            self.empty_dead.resize(self.empty_fp.count(), false);
        }
        assert!(!self.empty_dead[i], "empty sample {i} tombstoned twice");
        self.empty_dead[i] = true;
        self.num_empty_dead += 1;
    }

    /// Whether empty-sample footprint `i` is live.
    #[inline]
    pub fn empty_is_live(&self, i: usize) -> bool {
        self.empty_dead.is_empty() || !self.empty_dead[i]
    }

    /// Number of retained empty-sample footprints (dead included until
    /// compaction; 0 unless a footprint mode is on).
    pub fn num_empty_footprints(&self) -> usize {
        self.empty_fp.count()
    }

    /// Number of tombstoned empty-sample footprints.
    pub fn num_empty_dead(&self) -> usize {
        self.num_empty_dead
    }

    /// Fraction of retained entries — stored graphs plus empty-sample
    /// footprints — that are tombstoned (`0.0` when nothing is stored).
    /// Without footprint retention this is exactly the stored-graph dead
    /// fraction of the original tombstone lifecycle.
    pub fn dead_fraction(&self) -> f64 {
        let entries = self.meta.len() + self.empty_fp.count();
        if entries == 0 {
            0.0
        } else {
            (self.num_dead + self.num_empty_dead) as f64 / entries as f64
        }
    }

    /// A canonical live-only copy: byte-identical to an arena built by
    /// appending the surviving graphs in order onto an empty one.
    pub fn compacted(&self) -> PrrArena {
        let mut out = PrrArena::new();
        for (i, &m) in self.meta.iter().enumerate() {
            if !self.is_live(i) {
                continue;
            }
            let (nb, n) = (m.node_base as usize, m.nodes as usize);
            let ob = m.off_base as usize;
            let cb = m.crit_base as usize;
            let (fwd_lo, fwd_hi) = (self.fwd_off[ob] as usize, self.fwd_off[ob + n] as usize);
            let (bwd_lo, bwd_hi) = (self.bwd_off[ob] as usize, self.bwd_off[ob + n] as usize);

            out.meta.push(GraphMeta {
                root: m.root,
                node_base: out.globals.len() as u32,
                nodes: m.nodes,
                off_base: out.fwd_off.len() as u32,
                crit_base: out.critical.len() as u32,
                crit_len: m.crit_len,
                uncompressed: m.uncompressed,
            });
            let fwd_base = out.fwd.len() as u32;
            let bwd_base = out.bwd.len() as u32;
            out.globals.extend_from_slice(&self.globals[nb..nb + n]);
            out.fwd_off.extend(
                self.fwd_off[ob..=ob + n]
                    .iter()
                    .map(|&o| o - fwd_lo as u32 + fwd_base),
            );
            out.fwd.extend_from_slice(&self.fwd[fwd_lo..fwd_hi]);
            out.bwd_off.extend(
                self.bwd_off[ob..=ob + n]
                    .iter()
                    .map(|&o| o - bwd_lo as u32 + bwd_base),
            );
            out.bwd.extend_from_slice(&self.bwd[bwd_lo..bwd_hi]);
            out.critical
                .extend_from_slice(&self.critical[cb..cb + m.crit_len as usize]);
        }
        out.fp = self.fp.compacted(|i| self.is_live(i));
        out.empty_fp = self.empty_fp.compacted(|i| self.empty_is_live(i));
        out
    }

    /// Rewrites the arena without its tombstoned graphs and empty-sample
    /// footprints (no-op when none are dead), restoring the canonical
    /// all-live representation.
    pub fn compact(&mut self) {
        if self.num_dead > 0 || self.num_empty_dead > 0 {
            *self = self.compacted();
        } else {
            // Still drop all-false flag arrays so the representation is
            // canonical (equal to a never-tombstoned arena).
            self.dead = Vec::new();
            self.empty_dead = Vec::new();
        }
    }

    /// Number of stored graphs.
    pub fn len(&self) -> usize {
        self.meta.len()
    }

    /// Whether the arena holds no graphs.
    pub fn is_empty(&self) -> bool {
        self.meta.is_empty()
    }

    /// Borrows graph `i`.
    #[inline]
    pub fn graph(&self, i: usize) -> PrrGraphView<'_> {
        let m = self.meta[i];
        let (nb, n) = (m.node_base as usize, m.nodes as usize);
        let ob = m.off_base as usize;
        let cb = m.crit_base as usize;
        PrrGraphView {
            root: m.root,
            globals: &self.globals[nb..nb + n],
            fwd_off: &self.fwd_off[ob..ob + n + 1],
            fwd: &self.fwd,
            bwd_off: &self.bwd_off[ob..ob + n + 1],
            bwd: &self.bwd,
            critical: &self.critical[cb..cb + m.crit_len as usize],
            uncompressed: m.uncompressed,
        }
    }

    /// Iterates over all stored graphs.
    pub fn iter(&self) -> impl Iterator<Item = PrrGraphView<'_>> {
        (0..self.len()).map(|i| self.graph(i))
    }

    /// Total local nodes across all graphs.
    pub fn total_nodes(&self) -> usize {
        self.globals.len()
    }

    /// Total stored (compressed) edges across all graphs.
    pub fn total_edges(&self) -> usize {
        self.fwd.len()
    }

    /// Total critical-set entries across all graphs.
    pub fn total_critical(&self) -> usize {
        self.critical.len()
    }

    /// Approximate heap bytes of the shared storage (tombstoned graphs
    /// included until the next [`compact`](Self::compact)).
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        self.meta.len() * size_of::<GraphMeta>()
            + self.globals.len() * size_of::<u32>()
            + (self.fwd_off.len() + self.bwd_off.len()) * size_of::<u32>()
            + (self.fwd.len() + self.bwd.len()) * size_of::<u32>()
            + self.critical.len() * size_of::<NodeId>()
            + (self.dead.len() + self.empty_dead.len()) * size_of::<bool>()
            + self.footprint_memory_bytes()
    }

    /// The footprint retention mode this arena carries (Off unless it
    /// was built by a footprint-retaining source).
    pub fn footprint_mode(&self) -> FootprintMode {
        if self.fp.mode().is_on() {
            self.fp.mode()
        } else {
            self.empty_fp.mode()
        }
    }

    /// The per-stored-graph footprint column.
    pub fn footprints(&self) -> &FootprintColumn {
        &self.fp
    }

    /// The empty-sample footprint column.
    pub fn empty_footprints(&self) -> &FootprintColumn {
        &self.empty_fp
    }

    /// Approximate heap bytes held by the footprint columns alone — the
    /// memory overhead of exact staleness detection.
    pub fn footprint_memory_bytes(&self) -> usize {
        self.fp.memory_bytes() + self.empty_fp.memory_bytes()
    }

    /// Approximate heap bytes attributable to the *live* graphs alone —
    /// what [`memory_bytes`](Self::memory_bytes) would report right after
    /// a compaction.
    pub fn live_memory_bytes(&self) -> usize {
        use std::mem::size_of;
        if self.num_dead == 0 && self.num_empty_dead == 0 {
            return self.memory_bytes()
                - (self.dead.len() + self.empty_dead.len()) * size_of::<bool>();
        }
        let mut bytes = 0usize;
        for (i, &m) in self.meta.iter().enumerate() {
            if !self.is_live(i) {
                continue;
            }
            let n = m.nodes as usize;
            let ob = m.off_base as usize;
            let fwd = (self.fwd_off[ob + n] - self.fwd_off[ob]) as usize;
            let bwd = (self.bwd_off[ob + n] - self.bwd_off[ob]) as usize;
            bytes += size_of::<GraphMeta>()
                + n * size_of::<u32>()
                + 2 * (n + 1) * size_of::<u32>()
                + (fwd + bwd) * size_of::<u32>()
                + m.crit_len as usize * size_of::<NodeId>();
        }
        bytes
            + self.fp.live_memory_bytes(|i| self.is_live(i))
            + self.empty_fp.live_memory_bytes(|i| self.empty_is_live(i))
    }
}

/// A per-worker-chunk slice of arena content, built in place during
/// sampling.
///
/// Workers append each boostable graph's tables directly from Phase-II
/// compression (no intermediate `CompressedPrr`); the sketch pool merges
/// finished shards in chunk order with [`PrrArena::absorb_shard`], and the
/// final merged shard becomes the pool's [`PrrArena`] by a move
/// ([`PrrArena::from_shard`]). Internally a shard *is* an arena whose
/// offsets are shard-absolute — rebasing happens once, at absorb time.
#[derive(Default, Debug, PartialEq, Eq)]
pub struct PrrArenaShard(PrrArena);

impl PrrArenaShard {
    /// An empty shard.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of graphs appended so far.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the shard holds no graphs.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Approximate heap bytes of the shard's storage.
    pub fn memory_bytes(&self) -> usize {
        self.0.memory_bytes()
    }

    /// Borrows the shard's content as an arena (for inspection/tests).
    pub fn as_arena(&self) -> &PrrArena {
        &self.0
    }

    /// Appends one graph straight from Phase-II output.
    pub(crate) fn push_parts(&mut self, parts: &CompressedParts) {
        self.0.push_parts(parts);
    }

    /// Appends one graph plus its sampling footprint (exact-staleness
    /// pipeline).
    pub(crate) fn push_parts_fp(
        &mut self,
        parts: &CompressedParts,
        footprint: &[u32],
        mode: FootprintMode,
    ) {
        self.0.push_parts_fp(parts, footprint, mode);
    }

    /// Records an empty sample's footprint (exact-staleness pipeline).
    pub(crate) fn push_empty_footprint(&mut self, footprint: &[u32], mode: FootprintMode) {
        self.0.push_empty_footprint(footprint, mode);
    }

    /// Trace-sidecar variant of
    /// [`push_parts_fp`](Self::push_parts_fp)
    /// (conditional-refresh pipeline).
    pub(crate) fn push_parts_fp_trace(
        &mut self,
        parts: &CompressedParts,
        footprint: &[u32],
        trace: &[u8],
        mode: FootprintMode,
    ) {
        self.0.push_parts_fp_trace(parts, footprint, trace, mode);
    }

    /// Trace-sidecar variant of
    /// [`push_empty_footprint`](Self::push_empty_footprint).
    pub(crate) fn push_empty_footprint_trace(
        &mut self,
        footprint: &[u32],
        trace: &[u8],
        mode: FootprintMode,
    ) {
        self.0.push_empty_footprint_trace(footprint, trace, mode);
    }
}

/// Chunk shards merge in chunk order: `absorb` appends `later`'s graphs
/// after this shard's own, rebasing offsets — exactly what
/// [`PrrArena::absorb_shard`] does.
impl SketchShard for PrrArenaShard {
    fn absorb(&mut self, later: Self) {
        self.0.absorb_shard(later);
    }
}

/// A borrowed compressed PRR-graph: evaluation interface shared by
/// arena-resident graphs and standalone [`CompressedPrr`]s.
#[derive(Clone, Copy)]
pub struct PrrGraphView<'a> {
    root: u32,
    globals: &'a [u32],
    /// Per-node forward offsets (`n + 1` entries), absolute into `fwd`.
    fwd_off: &'a [u32],
    fwd: &'a [u32],
    bwd_off: &'a [u32],
    bwd: &'a [u32],
    critical: &'a [NodeId],
    uncompressed: u32,
}

impl<'a> PrrGraphView<'a> {
    /// Assembles a view from raw parts (used by [`CompressedPrr::view`]).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        root: u32,
        globals: &'a [u32],
        fwd_off: &'a [u32],
        fwd: &'a [u32],
        bwd_off: &'a [u32],
        bwd: &'a [u32],
        critical: &'a [NodeId],
        uncompressed: u32,
    ) -> Self {
        PrrGraphView {
            root,
            globals,
            fwd_off,
            fwd,
            bwd_off,
            bwd,
            critical,
            uncompressed,
        }
    }

    /// Number of local nodes (super-seed included).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.globals.len()
    }

    /// Number of stored edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        (self.fwd_off[self.num_nodes()] - self.fwd_off[0]) as usize
    }

    /// Number of phase-I edges before compression.
    pub fn uncompressed_edges(&self) -> u32 {
        self.uncompressed
    }

    /// The critical nodes `C_R = {v : f_R({v}) = 1}` (global ids).
    pub fn critical(&self) -> &'a [NodeId] {
        self.critical
    }

    /// The local id of the root.
    pub fn root_local(&self) -> u32 {
        self.root
    }

    /// The global id of local node `v`, or `None` for the super-seed.
    pub fn global_of(&self, v: u32) -> Option<NodeId> {
        let g = self.globals[v as usize];
        (g != SUPER_SEED).then_some(NodeId(g))
    }

    /// Packed forward edges of local node `u`.
    #[inline]
    fn out_edges(&self, u: u32) -> &'a [u32] {
        let (lo, hi) = (
            self.fwd_off[u as usize] as usize,
            self.fwd_off[u as usize + 1] as usize,
        );
        &self.fwd[lo..hi]
    }

    /// Packed backward edges of local node `u` (sources of in-edges).
    #[inline]
    fn in_edges(&self, u: u32) -> &'a [u32] {
        let (lo, hi) = (
            self.bwd_off[u as usize] as usize,
            self.bwd_off[u as usize + 1] as usize,
        );
        &self.bwd[lo..hi]
    }

    #[inline]
    fn traversable(&self, to: u32, boosted_edge: bool, boost: &BoostMask) -> bool {
        if !boosted_edge {
            return true;
        }
        let g = self.globals[to as usize];
        g != SUPER_SEED && boost.contains(NodeId(g))
    }

    /// Calls `visit` for every distinct boost-edge head (global id) of this
    /// graph — the nodes whose boosting can change `f_R`. Heads are emitted
    /// in ascending local-id order without duplicates (a head's in-edges
    /// are contiguous in the backward CSR).
    pub fn for_each_boost_head(&self, mut visit: impl FnMut(NodeId)) {
        for v in 0..self.num_nodes() as u32 {
            if self.in_edges(v).iter().any(|&e| unpack_edge(e).1) {
                let g = self.globals[v as usize];
                if g != SUPER_SEED {
                    visit(NodeId(g));
                }
            }
        }
    }

    /// Evaluates `f_R(B)`: does boosting `B` activate the root?
    pub fn f(&self, boost: &BoostMask, scratch: &mut PrrEvalScratch) -> bool {
        self.f_by(|v| boost.contains(v), scratch)
    }

    /// [`f`](Self::f) with an arbitrary boost-membership predicate — the
    /// hook the batched `evaluate_many` kernel (`kboost-core`) uses to
    /// test candidate bitsets without materializing a [`BoostMask`] per
    /// candidate. Same traversal, so for any predicate that agrees with
    /// a mask the result is identical to [`f`](Self::f) on that mask.
    pub fn f_by(&self, boosted: impl Fn(NodeId) -> bool, scratch: &mut PrrEvalScratch) -> bool {
        let n = self.num_nodes();
        scratch.fwd_mark.clear();
        scratch.fwd_mark.resize(n, false);
        scratch.stack.clear();
        scratch.fwd_mark[0] = true;
        scratch.stack.push(0);
        while let Some(u) = scratch.stack.pop() {
            if u == self.root {
                return true;
            }
            for &e in self.out_edges(u) {
                let (v, boosted_edge) = unpack_edge(e);
                let pass = !boosted_edge || {
                    let g = self.globals[v as usize];
                    g != SUPER_SEED && boosted(NodeId(g))
                };
                if !scratch.fwd_mark[v as usize] && pass {
                    scratch.fwd_mark[v as usize] = true;
                    scratch.stack.push(v);
                }
            }
        }
        false
    }

    /// Computes the *B-augmented critical set*: nodes `v ∉ B` such that
    /// `f_R(B ∪ {v}) = 1`. Appends the global ids to `out` (deduplicated
    /// within this graph). Returns [`Augmented::Covered`] without touching
    /// `out` when `f_R(B) = 1` already.
    ///
    /// Soundness: `f_R(B∪{v}) = 1` iff some boost edge `(u, v)` has `u`
    /// reachable from the super-seed and `v` reaching the root, both under
    /// `B`-traversability — take the first entry of `v` on any witnessing
    /// path for the forward half and the last exit for the backward half.
    pub fn augmented_critical(
        &self,
        boost: &BoostMask,
        scratch: &mut PrrEvalScratch,
        out: &mut Vec<NodeId>,
    ) -> Augmented {
        let n = self.num_nodes();
        scratch.fwd_mark.clear();
        scratch.fwd_mark.resize(n, false);
        scratch.stack.clear();
        scratch.fwd_mark[0] = true;
        scratch.stack.push(0);
        while let Some(u) = scratch.stack.pop() {
            for &e in self.out_edges(u) {
                let (v, boosted_edge) = unpack_edge(e);
                if !scratch.fwd_mark[v as usize] && self.traversable(v, boosted_edge, boost) {
                    scratch.fwd_mark[v as usize] = true;
                    scratch.stack.push(v);
                }
            }
        }
        if scratch.fwd_mark[self.root as usize] {
            return Augmented::Covered;
        }

        scratch.bwd_mark.clear();
        scratch.bwd_mark.resize(n, false);
        scratch.stack.clear();
        scratch.bwd_mark[self.root as usize] = true;
        scratch.stack.push(self.root);
        while let Some(u) = scratch.stack.pop() {
            for &e in self.in_edges(u) {
                // Edge (v → u); traversable if live or head `u` boosted.
                let (v, boosted_edge) = unpack_edge(e);
                if !scratch.bwd_mark[v as usize] && self.traversable(u, boosted_edge, boost) {
                    scratch.bwd_mark[v as usize] = true;
                    scratch.stack.push(v);
                }
            }
        }

        // For every boost edge (u, v): if u is forward-reachable and v
        // backward-reaches the root, boosting v closes the gap.
        let before = out.len();
        for u in 0..n as u32 {
            if !scratch.fwd_mark[u as usize] {
                continue;
            }
            for &e in self.out_edges(u) {
                let (v, boosted_edge) = unpack_edge(e);
                if boosted_edge && scratch.bwd_mark[v as usize] {
                    let g = self.globals[v as usize];
                    if g != SUPER_SEED && !boost.contains(NodeId(g)) {
                        let id = NodeId(g);
                        if !out[before..].contains(&id) {
                            out.push(id);
                        }
                    }
                }
            }
        }
        Augmented::Open
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::SUPER_SEED;

    /// super --boost--> a --live--> root, plus super --boost--> root.
    fn sample(a: u32, r: u32) -> CompressedPrr {
        let out_adj = vec![
            vec![(1u32, true), (2u32, true)],
            vec![(2u32, false)],
            vec![],
        ];
        CompressedPrr::from_adjacency(
            2,
            vec![SUPER_SEED, a, r],
            &out_adj,
            vec![NodeId(a), NodeId(r)],
            42,
        )
    }

    #[test]
    fn arena_roundtrips_graphs() {
        let g1 = sample(10, 20);
        let g2 = sample(5, 6);
        let mut arena = PrrArena::new();
        arena.push(&g1);
        arena.push(&g2);
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.total_nodes(), 6);
        assert_eq!(arena.total_edges(), 6);
        assert_eq!(arena.total_critical(), 4);
        assert!(arena.memory_bytes() > 0);

        let mut scratch = PrrEvalScratch::default();
        for (view, original) in arena.iter().zip([&g1, &g2]) {
            assert_eq!(view.num_nodes(), original.num_nodes());
            assert_eq!(view.num_edges(), original.num_edges());
            assert_eq!(view.critical(), original.critical());
            assert_eq!(view.uncompressed_edges(), original.uncompressed_edges());
            assert_eq!(view.root_local(), original.root_local());
            for boosted in [vec![], vec![NodeId(10)], vec![NodeId(5)], vec![NodeId(20)]] {
                let mask = BoostMask::from_nodes(30, &boosted);
                let mut s2 = PrrEvalScratch::default();
                assert_eq!(view.f(&mask, &mut scratch), original.f(&mask, &mut s2));
                let mut out_view = Vec::new();
                let mut out_orig = Vec::new();
                let a = view.augmented_critical(&mask, &mut scratch, &mut out_view);
                let b = original.augmented_critical(&mask, &mut s2, &mut out_orig);
                assert_eq!(out_view, out_orig);
                assert!(matches!(
                    (a, b),
                    (Augmented::Covered, Augmented::Covered) | (Augmented::Open, Augmented::Open)
                ));
            }
        }
    }

    #[test]
    fn from_graphs_preserves_order() {
        let arena = PrrArena::from_graphs(vec![sample(1, 2), sample(3, 4)]);
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.graph(1).critical(), &[NodeId(3), NodeId(4)]);
    }

    /// `CompressedParts` mirroring [`sample`]'s adjacency.
    fn sample_parts(a: u32, r: u32) -> crate::compress::CompressedParts {
        crate::compress::CompressedParts {
            root: 2,
            globals: vec![SUPER_SEED, a, r],
            adj_off: vec![0, 2, 3, 3],
            adj: vec![(1u32, true), (2u32, true), (2u32, false)],
            critical: vec![NodeId(a), NodeId(r)],
            uncompressed: 42,
        }
    }

    #[test]
    fn shard_build_matches_legacy_push_bytes() {
        // In-place CSR assembly must be byte-identical to the
        // from_adjacency + push copy path.
        let legacy = PrrArena::from_graphs(vec![sample(10, 20), sample(5, 6)]);
        let mut shard = PrrArenaShard::new();
        shard.push_parts(&sample_parts(10, 20));
        shard.push_parts(&sample_parts(5, 6));
        assert_eq!(PrrArena::from_shard(shard), legacy);
    }

    #[test]
    fn absorb_shard_rebases_offsets() {
        // Build [g1] ++ [g2, g3] by absorbing two shards and compare with
        // the sequential single-shard build.
        let mut a = PrrArenaShard::new();
        a.push_parts(&sample_parts(10, 20));
        let mut b = PrrArenaShard::new();
        b.push_parts(&sample_parts(5, 6));
        b.push_parts(&sample_parts(7, 8));
        let mut merged = PrrArena::new();
        merged.absorb_shard(a);
        merged.absorb_shard(b);

        let mut all = PrrArenaShard::new();
        for (x, y) in [(10, 20), (5, 6), (7, 8)] {
            all.push_parts(&sample_parts(x, y));
        }
        assert_eq!(merged, PrrArena::from_shard(all));
        assert_eq!(merged.len(), 3);
        assert_eq!(merged.graph(2).critical(), &[NodeId(7), NodeId(8)]);
        // Views still evaluate correctly after rebasing.
        let mut scratch = PrrEvalScratch::default();
        let mask = BoostMask::from_nodes(30, &[NodeId(7)]);
        assert!(merged.graph(2).f(&mask, &mut scratch));
        assert!(!merged.graph(1).f(&mask, &mut scratch));
    }

    #[test]
    fn absorb_into_empty_is_a_move() {
        let mut shard = PrrArenaShard::new();
        shard.push_parts(&sample_parts(1, 2));
        let bytes = shard.memory_bytes();
        let mut arena = PrrArena::new();
        arena.absorb_shard(shard);
        assert_eq!(arena.len(), 1);
        assert_eq!(arena.memory_bytes(), bytes);
    }

    #[test]
    fn boost_heads_deduplicated() {
        // Two boost edges into the same head must report it once.
        let out_adj = vec![vec![(1u32, true), (2, false)], vec![], vec![(1u32, true)]];
        let g =
            CompressedPrr::from_adjacency(1, vec![SUPER_SEED, 7, 9], &out_adj, vec![NodeId(7)], 3);
        let mut arena = PrrArena::new();
        arena.push(&g);
        let mut heads = Vec::new();
        arena.graph(0).for_each_boost_head(|v| heads.push(v));
        assert_eq!(heads, vec![NodeId(7)]);
    }

    #[test]
    fn empty_arena() {
        let arena = PrrArena::new();
        assert!(arena.is_empty());
        assert_eq!(arena.iter().count(), 0);
        assert_eq!(arena.dead_fraction(), 0.0);
    }

    #[test]
    fn tombstone_then_compact_matches_fresh_build() {
        // Dropping the middle graph must leave bytes identical to an arena
        // that never contained it.
        let mut arena = PrrArena::from_graphs(vec![sample(1, 2), sample(3, 4), sample(5, 6)]);
        assert!(arena.is_live(1));
        arena.tombstone(1);
        assert!(!arena.is_live(1));
        assert!(arena.is_live(0) && arena.is_live(2));
        assert_eq!(arena.num_dead(), 1);
        assert_eq!(arena.num_live(), 2);
        assert!((arena.dead_fraction() - 1.0 / 3.0).abs() < 1e-12);

        let fresh = PrrArena::from_graphs(vec![sample(1, 2), sample(5, 6)]);
        assert_eq!(arena.compacted(), fresh);
        assert!(arena.live_memory_bytes() < arena.memory_bytes());
        assert_eq!(arena.live_memory_bytes(), fresh.memory_bytes());

        arena.compact();
        assert_eq!(arena, fresh);
        assert_eq!(arena.num_dead(), 0);
        assert_eq!(arena.live_memory_bytes(), arena.memory_bytes());
    }

    #[test]
    fn absorb_after_tombstone_keeps_flags_consistent() {
        let mut arena = PrrArena::from_graphs(vec![sample(1, 2), sample(3, 4)]);
        arena.tombstone(0);
        let mut shard = PrrArenaShard::new();
        shard.push_parts(&sample_parts(7, 8));
        arena.absorb_shard(shard);
        assert_eq!(arena.len(), 3);
        assert!(!arena.is_live(0));
        assert!(arena.is_live(1) && arena.is_live(2));
        // Compacting after the absorb equals building the two live graphs.
        let fresh = PrrArena::from_graphs(vec![sample(3, 4), sample(7, 8)]);
        assert_eq!(arena.compacted(), fresh);
    }

    #[test]
    fn compact_without_dead_is_canonicalizing_noop() {
        let mut arena = PrrArena::from_graphs(vec![sample(1, 2)]);
        let before = arena.memory_bytes();
        arena.compact();
        assert_eq!(arena.memory_bytes(), before);
        assert_eq!(arena, PrrArena::from_graphs(vec![sample(1, 2)]));
    }

    #[test]
    #[should_panic(expected = "tombstoned twice")]
    fn double_tombstone_panics() {
        let mut arena = PrrArena::from_graphs(vec![sample(1, 2)]);
        arena.tombstone(0);
        arena.tombstone(0);
    }
}
