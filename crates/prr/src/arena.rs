//! Flat arena storage for pools of compressed PRR-graphs.
//!
//! PRR-Boost retains `10^5`–`10^7` compressed PRR-graphs and re-traverses
//! them on every `Δ̂` evaluation and greedy round. Storing each graph as an
//! independent [`CompressedPrr`] scatters those traversals across the heap
//! (seven allocations per graph). The [`PrrArena`] concatenates every
//! graph's node table, CSR offsets, packed edges and critical set into one
//! shared `Vec` each, with a fixed-size [`GraphMeta`] record per graph — so
//! a full pool sweep is a linear scan over a handful of flat arrays.
//!
//! Per-node edge offsets are stored *absolute* (into the shared edge
//! arrays) as `u32`, capping an arena at `2^32` stored edges — orders of
//! magnitude above the paper's largest runs; [`PrrArena::push`] asserts the
//! cap.
//!
//! [`PrrGraphView`] is the borrowed form of one graph — either a slice of
//! an arena or a borrow of a standalone [`CompressedPrr`] — and owns the
//! evaluation primitives `f_R(B)` and the B-augmented critical set.

use kboost_diffusion::sim::BoostMask;
use kboost_graph::NodeId;

use crate::graph::{unpack_edge, Augmented, CompressedPrr, PrrEvalScratch, SUPER_SEED};

/// Per-graph record: where the graph's slices live in the shared arrays.
#[derive(Clone, Copy, Debug)]
struct GraphMeta {
    /// Local id of the root.
    root: u32,
    /// Start of this graph's entries in `globals`.
    node_base: u32,
    /// Number of local nodes (super-seed included).
    nodes: u32,
    /// Start of this graph's `nodes + 1` entries in `fwd_off` / `bwd_off`.
    off_base: u32,
    /// Start of this graph's entries in `critical`.
    crit_base: u32,
    /// Number of critical nodes.
    crit_len: u32,
    /// Phase-I edge count before compression.
    uncompressed: u32,
}

/// A flat, append-only pool of compressed PRR-graphs.
///
/// Immutable once filled; shared across worker threads by reference (all
/// parallel consumers only read).
#[derive(Default)]
pub struct PrrArena {
    meta: Vec<GraphMeta>,
    /// Concatenated local → global id tables.
    globals: Vec<u32>,
    /// Concatenated per-node forward CSR offsets, absolute into `fwd`.
    fwd_off: Vec<u32>,
    /// Concatenated packed forward edges.
    fwd: Vec<u32>,
    /// Concatenated per-node backward CSR offsets, absolute into `bwd`.
    bwd_off: Vec<u32>,
    /// Concatenated packed backward edges.
    bwd: Vec<u32>,
    /// Concatenated critical sets.
    critical: Vec<NodeId>,
}

impl PrrArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds an arena by draining the boostable payloads of a sketch pool.
    pub fn from_payloads<I: IntoIterator<Item = Option<CompressedPrr>>>(payloads: I) -> Self {
        let mut arena = PrrArena::new();
        for p in payloads.into_iter().flatten() {
            arena.push(&p);
        }
        arena
    }

    /// Appends one compressed graph, copying its arrays into the shared
    /// storage with offsets rebased.
    pub fn push(&mut self, g: &CompressedPrr) {
        let n = g.globals.len();
        let fwd_base = self.fwd.len() as u64;
        let bwd_base = self.bwd.len() as u64;
        assert!(
            fwd_base + g.fwd.len() as u64 <= u32::MAX as u64 + 1
                && bwd_base + g.bwd.len() as u64 <= u32::MAX as u64 + 1,
            "PrrArena exceeds the 2^32 stored-edge cap"
        );

        self.meta.push(GraphMeta {
            root: g.root,
            node_base: self.globals.len() as u32,
            nodes: n as u32,
            off_base: self.fwd_off.len() as u32,
            crit_base: self.critical.len() as u32,
            crit_len: g.critical.len() as u32,
            uncompressed: g.uncompressed_edges,
        });
        self.globals.extend_from_slice(&g.globals);
        self.fwd_off
            .extend(g.fwd_offsets.iter().map(|&o| fwd_base as u32 + o));
        self.fwd.extend_from_slice(&g.fwd);
        self.bwd_off
            .extend(g.bwd_offsets.iter().map(|&o| bwd_base as u32 + o));
        self.bwd.extend_from_slice(&g.bwd);
        self.critical.extend_from_slice(&g.critical);
    }

    /// Number of stored graphs.
    pub fn len(&self) -> usize {
        self.meta.len()
    }

    /// Whether the arena holds no graphs.
    pub fn is_empty(&self) -> bool {
        self.meta.is_empty()
    }

    /// Borrows graph `i`.
    #[inline]
    pub fn graph(&self, i: usize) -> PrrGraphView<'_> {
        let m = self.meta[i];
        let (nb, n) = (m.node_base as usize, m.nodes as usize);
        let ob = m.off_base as usize;
        let cb = m.crit_base as usize;
        PrrGraphView {
            root: m.root,
            globals: &self.globals[nb..nb + n],
            fwd_off: &self.fwd_off[ob..ob + n + 1],
            fwd: &self.fwd,
            bwd_off: &self.bwd_off[ob..ob + n + 1],
            bwd: &self.bwd,
            critical: &self.critical[cb..cb + m.crit_len as usize],
            uncompressed: m.uncompressed,
        }
    }

    /// Iterates over all stored graphs.
    pub fn iter(&self) -> impl Iterator<Item = PrrGraphView<'_>> {
        (0..self.len()).map(|i| self.graph(i))
    }

    /// Total local nodes across all graphs.
    pub fn total_nodes(&self) -> usize {
        self.globals.len()
    }

    /// Total stored (compressed) edges across all graphs.
    pub fn total_edges(&self) -> usize {
        self.fwd.len()
    }

    /// Total critical-set entries across all graphs.
    pub fn total_critical(&self) -> usize {
        self.critical.len()
    }

    /// Approximate heap bytes of the shared storage.
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        self.meta.len() * size_of::<GraphMeta>()
            + self.globals.len() * size_of::<u32>()
            + (self.fwd_off.len() + self.bwd_off.len()) * size_of::<u32>()
            + (self.fwd.len() + self.bwd.len()) * size_of::<u32>()
            + self.critical.len() * size_of::<NodeId>()
    }
}

/// A borrowed compressed PRR-graph: evaluation interface shared by
/// arena-resident graphs and standalone [`CompressedPrr`]s.
#[derive(Clone, Copy)]
pub struct PrrGraphView<'a> {
    root: u32,
    globals: &'a [u32],
    /// Per-node forward offsets (`n + 1` entries), absolute into `fwd`.
    fwd_off: &'a [u32],
    fwd: &'a [u32],
    bwd_off: &'a [u32],
    bwd: &'a [u32],
    critical: &'a [NodeId],
    uncompressed: u32,
}

impl<'a> PrrGraphView<'a> {
    /// Assembles a view from raw parts (used by [`CompressedPrr::view`]).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        root: u32,
        globals: &'a [u32],
        fwd_off: &'a [u32],
        fwd: &'a [u32],
        bwd_off: &'a [u32],
        bwd: &'a [u32],
        critical: &'a [NodeId],
        uncompressed: u32,
    ) -> Self {
        PrrGraphView {
            root,
            globals,
            fwd_off,
            fwd,
            bwd_off,
            bwd,
            critical,
            uncompressed,
        }
    }

    /// Number of local nodes (super-seed included).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.globals.len()
    }

    /// Number of stored edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        (self.fwd_off[self.num_nodes()] - self.fwd_off[0]) as usize
    }

    /// Number of phase-I edges before compression.
    pub fn uncompressed_edges(&self) -> u32 {
        self.uncompressed
    }

    /// The critical nodes `C_R = {v : f_R({v}) = 1}` (global ids).
    pub fn critical(&self) -> &'a [NodeId] {
        self.critical
    }

    /// The local id of the root.
    pub fn root_local(&self) -> u32 {
        self.root
    }

    /// The global id of local node `v`, or `None` for the super-seed.
    pub fn global_of(&self, v: u32) -> Option<NodeId> {
        let g = self.globals[v as usize];
        (g != SUPER_SEED).then_some(NodeId(g))
    }

    /// Packed forward edges of local node `u`.
    #[inline]
    fn out_edges(&self, u: u32) -> &'a [u32] {
        let (lo, hi) = (
            self.fwd_off[u as usize] as usize,
            self.fwd_off[u as usize + 1] as usize,
        );
        &self.fwd[lo..hi]
    }

    /// Packed backward edges of local node `u` (sources of in-edges).
    #[inline]
    fn in_edges(&self, u: u32) -> &'a [u32] {
        let (lo, hi) = (
            self.bwd_off[u as usize] as usize,
            self.bwd_off[u as usize + 1] as usize,
        );
        &self.bwd[lo..hi]
    }

    #[inline]
    fn traversable(&self, to: u32, boosted_edge: bool, boost: &BoostMask) -> bool {
        if !boosted_edge {
            return true;
        }
        let g = self.globals[to as usize];
        g != SUPER_SEED && boost.contains(NodeId(g))
    }

    /// Calls `visit` for every distinct boost-edge head (global id) of this
    /// graph — the nodes whose boosting can change `f_R`. Heads are emitted
    /// in ascending local-id order without duplicates (a head's in-edges
    /// are contiguous in the backward CSR).
    pub fn for_each_boost_head(&self, mut visit: impl FnMut(NodeId)) {
        for v in 0..self.num_nodes() as u32 {
            if self.in_edges(v).iter().any(|&e| unpack_edge(e).1) {
                let g = self.globals[v as usize];
                if g != SUPER_SEED {
                    visit(NodeId(g));
                }
            }
        }
    }

    /// Evaluates `f_R(B)`: does boosting `B` activate the root?
    pub fn f(&self, boost: &BoostMask, scratch: &mut PrrEvalScratch) -> bool {
        let n = self.num_nodes();
        scratch.fwd_mark.clear();
        scratch.fwd_mark.resize(n, false);
        scratch.stack.clear();
        scratch.fwd_mark[0] = true;
        scratch.stack.push(0);
        while let Some(u) = scratch.stack.pop() {
            if u == self.root {
                return true;
            }
            for &e in self.out_edges(u) {
                let (v, boosted_edge) = unpack_edge(e);
                if !scratch.fwd_mark[v as usize] && self.traversable(v, boosted_edge, boost) {
                    scratch.fwd_mark[v as usize] = true;
                    scratch.stack.push(v);
                }
            }
        }
        false
    }

    /// Computes the *B-augmented critical set*: nodes `v ∉ B` such that
    /// `f_R(B ∪ {v}) = 1`. Appends the global ids to `out` (deduplicated
    /// within this graph). Returns [`Augmented::Covered`] without touching
    /// `out` when `f_R(B) = 1` already.
    ///
    /// Soundness: `f_R(B∪{v}) = 1` iff some boost edge `(u, v)` has `u`
    /// reachable from the super-seed and `v` reaching the root, both under
    /// `B`-traversability — take the first entry of `v` on any witnessing
    /// path for the forward half and the last exit for the backward half.
    pub fn augmented_critical(
        &self,
        boost: &BoostMask,
        scratch: &mut PrrEvalScratch,
        out: &mut Vec<NodeId>,
    ) -> Augmented {
        let n = self.num_nodes();
        scratch.fwd_mark.clear();
        scratch.fwd_mark.resize(n, false);
        scratch.stack.clear();
        scratch.fwd_mark[0] = true;
        scratch.stack.push(0);
        while let Some(u) = scratch.stack.pop() {
            for &e in self.out_edges(u) {
                let (v, boosted_edge) = unpack_edge(e);
                if !scratch.fwd_mark[v as usize] && self.traversable(v, boosted_edge, boost) {
                    scratch.fwd_mark[v as usize] = true;
                    scratch.stack.push(v);
                }
            }
        }
        if scratch.fwd_mark[self.root as usize] {
            return Augmented::Covered;
        }

        scratch.bwd_mark.clear();
        scratch.bwd_mark.resize(n, false);
        scratch.stack.clear();
        scratch.bwd_mark[self.root as usize] = true;
        scratch.stack.push(self.root);
        while let Some(u) = scratch.stack.pop() {
            for &e in self.in_edges(u) {
                // Edge (v → u); traversable if live or head `u` boosted.
                let (v, boosted_edge) = unpack_edge(e);
                if !scratch.bwd_mark[v as usize] && self.traversable(u, boosted_edge, boost) {
                    scratch.bwd_mark[v as usize] = true;
                    scratch.stack.push(v);
                }
            }
        }

        // For every boost edge (u, v): if u is forward-reachable and v
        // backward-reaches the root, boosting v closes the gap.
        let before = out.len();
        for u in 0..n as u32 {
            if !scratch.fwd_mark[u as usize] {
                continue;
            }
            for &e in self.out_edges(u) {
                let (v, boosted_edge) = unpack_edge(e);
                if boosted_edge && scratch.bwd_mark[v as usize] {
                    let g = self.globals[v as usize];
                    if g != SUPER_SEED && !boost.contains(NodeId(g)) {
                        let id = NodeId(g);
                        if !out[before..].contains(&id) {
                            out.push(id);
                        }
                    }
                }
            }
        }
        Augmented::Open
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::SUPER_SEED;

    /// super --boost--> a --live--> root, plus super --boost--> root.
    fn sample(a: u32, r: u32) -> CompressedPrr {
        let out_adj = vec![
            vec![(1u32, true), (2u32, true)],
            vec![(2u32, false)],
            vec![],
        ];
        CompressedPrr::from_adjacency(
            2,
            vec![SUPER_SEED, a, r],
            &out_adj,
            vec![NodeId(a), NodeId(r)],
            42,
        )
    }

    #[test]
    fn arena_roundtrips_graphs() {
        let g1 = sample(10, 20);
        let g2 = sample(5, 6);
        let mut arena = PrrArena::new();
        arena.push(&g1);
        arena.push(&g2);
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.total_nodes(), 6);
        assert_eq!(arena.total_edges(), 6);
        assert_eq!(arena.total_critical(), 4);
        assert!(arena.memory_bytes() > 0);

        let mut scratch = PrrEvalScratch::default();
        for (view, original) in arena.iter().zip([&g1, &g2]) {
            assert_eq!(view.num_nodes(), original.num_nodes());
            assert_eq!(view.num_edges(), original.num_edges());
            assert_eq!(view.critical(), original.critical());
            assert_eq!(view.uncompressed_edges(), original.uncompressed_edges());
            assert_eq!(view.root_local(), original.root_local());
            for boosted in [vec![], vec![NodeId(10)], vec![NodeId(5)], vec![NodeId(20)]] {
                let mask = BoostMask::from_nodes(30, &boosted);
                let mut s2 = PrrEvalScratch::default();
                assert_eq!(view.f(&mask, &mut scratch), original.f(&mask, &mut s2));
                let mut out_view = Vec::new();
                let mut out_orig = Vec::new();
                let a = view.augmented_critical(&mask, &mut scratch, &mut out_view);
                let b = original.augmented_critical(&mask, &mut s2, &mut out_orig);
                assert_eq!(out_view, out_orig);
                assert!(matches!(
                    (a, b),
                    (Augmented::Covered, Augmented::Covered) | (Augmented::Open, Augmented::Open)
                ));
            }
        }
    }

    #[test]
    fn from_payloads_skips_empty_slots() {
        let arena =
            PrrArena::from_payloads(vec![None, Some(sample(1, 2)), None, Some(sample(3, 4))]);
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.graph(1).critical(), &[NodeId(3), NodeId(4)]);
    }

    #[test]
    fn boost_heads_deduplicated() {
        // Two boost edges into the same head must report it once.
        let out_adj = vec![vec![(1u32, true), (2, false)], vec![], vec![(1u32, true)]];
        let g =
            CompressedPrr::from_adjacency(1, vec![SUPER_SEED, 7, 9], &out_adj, vec![NodeId(7)], 3);
        let mut arena = PrrArena::new();
        arena.push(&g);
        let mut heads = Vec::new();
        arena.graph(0).for_each_boost_head(|v| heads.push(v));
        assert_eq!(heads, vec![NodeId(7)]);
    }

    #[test]
    fn empty_arena() {
        let arena = PrrArena::new();
        assert!(arena.is_empty());
        assert_eq!(arena.iter().count(), 0);
    }
}
