//! Potentially Reverse Reachable (PRR) graphs — the paper's core sketch.
//!
//! A PRR-graph for a root `r` (Definition 3) fixes a deterministic copy of
//! the network in which each edge is *live* (probability `p`),
//! *live-upon-boost* (`p' − p`) or *blocked* (`1 − p'`), and keeps the part
//! relevant to activating `r` from the seeds. Its central property
//! (Lemma 1): `n · E[f_R(B)] = Δ_S(B)`, where `f_R(B) = 1` iff the root is
//! inactive without boosting but active once `B` is boosted.
//!
//! Modules:
//!
//! * [`gen`] — Algorithm 1: backward 0-1 BFS from the root with status
//!   sampling, distance pruning at `k`, and early classification into
//!   *activated* / *hopeless* / *boostable*.
//! * [`compress`] — Phase II: merge the live-reachable seed region into a
//!   super-seed, remove nodes off all super-seed→root paths or beyond the
//!   `k`-boost budget, and shortcut live-reaching nodes straight to the
//!   root. Compression preserves `f_R(B)` for every `|B| ≤ k`.
//! * [`graph`] — the compressed representation with `f_R(B)` evaluation,
//!   critical nodes `C_R = {v : f_R({v}) = 1}`, and the *B-augmented*
//!   critical set used by the greedy `Δ̂` selection.
//! * [`source`] — [`SketchGenerator`](kboost_rrset::SketchGenerator)
//!   adapters: the full source streams compressed PRR-graphs into arena
//!   shards (PRR-Boost), the light source keeps only critical sets
//!   (PRR-Boost-LB), and the legacy per-graph source survives as the
//!   shard pipeline's equivalence oracle.
//! * [`arena`] — flat shared storage for retained PRR-graph pools: one
//!   `Vec` each of node tables, CSR offsets and packed edges, built in
//!   per-chunk [`PrrArenaShard`]s during sampling and merged in chunk
//!   order by bulk append with offset rebasing, with [`PrrGraphView`] as
//!   the borrowed per-graph evaluation interface. Supports tombstoning
//!   and order-preserving compaction so the online maintainer
//!   (`kboost-online`) can retire stale graphs in place.
//! * [`footprint`] — per-sample *edge-space footprints* (the expanded-node
//!   set of phase I) retained as flat [`FootprintColumn`]s — sorted lists,
//!   fixed-size bloom fingerprints, delta-varint compressed blobs with an
//!   interning dictionary, a hybrid exact-below / bloom-above split, or
//!   the trace-retaining tier that additionally stores each sample's
//!   queried-edge outcomes for conditional replay — for the online
//!   subsystem's exact staleness detection. Stored graphs and *empty*
//!   samples both carry one, so no sample is ever silently unrefreshable.
//! * [`select`] — the greedy NodeSelection over `Δ̂` (Algorithm 2, line 4):
//!   an inverted coverage index with incremental vote maintenance, plus
//!   the naive full re-traversal greedy as the equivalence oracle. The
//!   index's CSR build is factored out as [`NodeIndex`], which the online
//!   maintainer reuses for its node → graphs invalidation index.

pub mod arena;
pub mod compress;
pub mod footprint;
pub mod gen;
pub mod graph;
pub mod select;
pub mod source;

pub use arena::{PrrArena, PrrArenaShard, PrrGraphView};
pub use footprint::{FootprintColumn, FootprintMode, FootprintQuery, HYBRID_BLOOM_BITS};
pub use gen::{PrrGenerator, PrrOutcome, RawPrr};
pub use graph::{CompressedPrr, PrrEvalScratch};
pub use select::{greedy_delta_selection, greedy_delta_selection_naive, DeltaSelection, NodeIndex};
pub use source::{
    LegacyFpSource, LegacyPrrSource, LegacySample, LegacyTraceSample, LegacyTraceSource,
    PrrFullSource, PrrLbSource,
};
