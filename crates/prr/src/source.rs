//! [`SketchGenerator`] adapters feeding PRR-graphs into the IMM framework.
//!
//! Both sources expose the critical set `C_R` as the sketch *cover* (so the
//! IMM machinery maximizes `µ̂`). They differ in what they retain:
//!
//! * [`PrrFullSource`] keeps the whole compressed PRR-graph as the payload,
//!   which PRR-Boost later reuses for the greedy `Δ̂` selection and the
//!   Sandwich comparison;
//! * [`PrrLbSource`] keeps nothing beyond the cover, reproducing
//!   PRR-Boost-LB's lower memory footprint and faster generation (phase-I
//!   exploration is pruned at distance 1).

use kboost_graph::{DiGraph, NodeId};
use kboost_rrset::sketch::{Sketch, SketchGenerator};
use rand::rngs::SmallRng;

use crate::gen::{PrrGenerator, PrrOutcome};
use crate::graph::CompressedPrr;

/// Full PRR-graph source (PRR-Boost).
pub struct PrrFullSource<'g> {
    generator: PrrGenerator<'g>,
    n: usize,
    candidates: usize,
}

impl<'g> PrrFullSource<'g> {
    /// Creates the source for `(G, S, k)`.
    pub fn new(g: &'g DiGraph, seeds: &[NodeId], k: usize) -> Self {
        PrrFullSource {
            generator: PrrGenerator::new(g, seeds, k),
            n: g.num_nodes(),
            candidates: g.num_nodes().saturating_sub(seeds.len()),
        }
    }
}

impl SketchGenerator for PrrFullSource<'_> {
    type Payload = CompressedPrr;

    fn universe(&self) -> usize {
        self.n
    }

    fn num_candidates(&self) -> usize {
        self.candidates
    }

    fn generate(&self, rng: &mut SmallRng) -> Sketch<CompressedPrr> {
        match self.generator.sample(rng) {
            PrrOutcome::Activated | PrrOutcome::Hopeless => Sketch::empty(),
            PrrOutcome::Boostable(c) => Sketch {
                cover: c.critical().to_vec(),
                payload: Some(c),
            },
        }
    }
}

/// Critical-set-only source (PRR-Boost-LB).
pub struct PrrLbSource<'g> {
    generator: PrrGenerator<'g>,
    n: usize,
    candidates: usize,
}

impl<'g> PrrLbSource<'g> {
    /// Creates the source for `(G, S, k)`.
    pub fn new(g: &'g DiGraph, seeds: &[NodeId], k: usize) -> Self {
        PrrLbSource {
            generator: PrrGenerator::new(g, seeds, k),
            n: g.num_nodes(),
            candidates: g.num_nodes().saturating_sub(seeds.len()),
        }
    }
}

impl SketchGenerator for PrrLbSource<'_> {
    type Payload = ();

    fn universe(&self) -> usize {
        self.n
    }

    fn num_candidates(&self) -> usize {
        self.candidates
    }

    fn generate(&self, rng: &mut SmallRng) -> Sketch<()> {
        let critical = self.generator.sample_critical_only(rng);
        if critical.is_empty() {
            Sketch::empty()
        } else {
            Sketch {
                cover: critical,
                payload: Some(()),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kboost_diffusion::exact::exact_boost;
    use kboost_graph::GraphBuilder;
    use kboost_rrset::sketch::SketchPool;

    fn figure1() -> DiGraph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 0.2, 0.4).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.1, 0.2).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn full_source_estimates_delta_unbiasedly() {
        // n · E[f_R(B)] = Δ_S(B) (Lemma 1), checked via the pool estimator
        // for B = {v0}: Δ = 0.22.
        let g = figure1();
        let source = PrrFullSource::new(&g, &[NodeId(0)], 2);
        let mut pool: SketchPool<CompressedPrr> = SketchPool::new(77, 4);
        pool.extend_to(&source, 300_000);

        use crate::graph::PrrEvalScratch;
        use kboost_diffusion::sim::BoostMask;
        let mask = BoostMask::from_nodes(3, &[NodeId(1)]);
        let mut scratch = PrrEvalScratch::default();
        let hits = pool
            .payloads()
            .iter()
            .flatten()
            .filter(|c| c.f(&mask, &mut scratch))
            .count();
        let est = 3.0 * hits as f64 / pool.total_samples() as f64;
        let truth = exact_boost(&g, &[NodeId(0)], &[NodeId(1)]);
        assert!((est - truth).abs() < 0.01, "Δ̂ {est} vs Δ {truth}");
    }

    #[test]
    fn lb_source_estimates_mu() {
        // µ({v1}) for Figure 1 with B = {v1}: critical sets containing v1.
        // Exact µ({v0,v1}) from the lower-bound model:
        // (p'₀−p₀)(1+p₁) + p₀(p'₁−p₁) = 0.2·1.1 + 0.2·0.1 = 0.24... wait:
        // 0.2·1.1 = 0.22, plus 0.02 = 0.24? No: (0.4−0.2)·(1+0.1)=0.22 and
        // 0.2·(0.2−0.1)=0.02 → µ = 0.24. Checked against the µ-model
        // simulator in kboost-diffusion instead, to avoid double error.
        let g = figure1();
        let source = PrrLbSource::new(&g, &[NodeId(0)], 2);
        let mut pool: SketchPool<()> = SketchPool::new(78, 4);
        pool.extend_to(&source, 300_000);
        let est = pool.estimate(3, &[NodeId(1), NodeId(2)]);
        let sim = kboost_diffusion::mu_model::estimate_mu(
            &g,
            &[NodeId(0)],
            &[NodeId(1), NodeId(2)],
            300_000,
            123,
        );
        assert!((est - sim).abs() < 0.01, "µ̂ {est} vs simulated µ {sim}");
    }

    #[test]
    fn lb_and_full_covers_same_distribution() {
        // The critical-set distribution must be identical between the two
        // sources (same underlying randomness model): compare the estimate
        // of µ({v0}) from both pools.
        let g = figure1();
        let full = PrrFullSource::new(&g, &[NodeId(0)], 2);
        let lb = PrrLbSource::new(&g, &[NodeId(0)], 2);
        let mut pf: SketchPool<CompressedPrr> = SketchPool::new(5, 2);
        pf.extend_to(&full, 200_000);
        let mut pl: SketchPool<()> = SketchPool::new(6, 2);
        pl.extend_to(&lb, 200_000);
        let a = pf.estimate(3, &[NodeId(1)]);
        let b = pl.estimate(3, &[NodeId(1)]);
        assert!((a - b).abs() < 0.01, "full {a} vs lb {b}");
    }
}
