//! [`SketchGenerator`] adapters feeding PRR-graphs into the IMM framework.
//!
//! All sources expose the critical set `C_R` as the sketch *cover* (so the
//! IMM machinery maximizes `µ̂`). They differ in what they retain:
//!
//! * [`PrrFullSource`] appends each boostable compressed PRR-graph
//!   directly into a per-chunk [`PrrArenaShard`] — the streaming pipeline
//!   PRR-Boost later reuses for the greedy `Δ̂` selection and the Sandwich
//!   comparison. No per-graph object is retained for storage (Phase I/II
//!   still use transient scratch allocations);
//! * [`PrrLbSource`] keeps nothing beyond the cover, reproducing
//!   PRR-Boost-LB's lower memory footprint and faster generation (phase-I
//!   exploration is pruned at distance 1);
//! * [`LegacyPrrSource`] retains one heap-allocated [`CompressedPrr`] per
//!   boostable sample, the pre-shard storage model. It exists **only** as
//!   the equivalence oracle: tests build both pools from the same seed and
//!   assert the shard-built arena is byte-equal to the copy-built one. Do
//!   not use it outside tests/benches.
//!
//! [`PrrFullSource`] and [`PrrLbSource`] sample through the data-oriented
//! phase-I kernel; the legacy sources always run the scalar loop. Since
//! both pairs must produce identical bytes under a shared seed, every
//! shard-vs-legacy test doubles as a continuous kernel-vs-oracle
//! verification. The `scalar_oracle` constructors additionally expose
//! scalar variants of the streaming sources for direct A/B comparison.

use kboost_graph::{DiGraph, NodeId};
use kboost_rrset::sketch::SketchGenerator;
use rand::rngs::SmallRng;

use crate::arena::PrrArenaShard;
use crate::footprint::FootprintMode;
use crate::gen::{PrrGenerator, PrrOutcome};
use crate::graph::CompressedPrr;

/// Full PRR-graph source (PRR-Boost): builds arena shards in place.
///
/// With a [`FootprintMode`] other than `Off`
/// ([`with_footprints`](Self::with_footprints)) each sample's edge-space
/// footprint is retained in the shard too — stored graphs get a footprint
/// column entry and empty samples land in the shard's empty-footprint
/// column — enabling the online subsystem's exact staleness detection.
/// Footprint capture consumes no randomness: the covers and stored
/// graphs are bit-identical to the footprint-free source under the same
/// seed.
pub struct PrrFullSource<'g> {
    generator: PrrGenerator<'g>,
    n: usize,
    candidates: usize,
    mode: FootprintMode,
}

impl<'g> PrrFullSource<'g> {
    /// Creates the source for `(G, S, k)` without footprint retention.
    /// Samples through the data-oriented phase-I kernel.
    pub fn new(g: &'g DiGraph, seeds: &[NodeId], k: usize) -> Self {
        Self::with_footprints(g, seeds, k, FootprintMode::Off)
    }

    /// Creates the source for `(G, S, k)` retaining per-sample footprints
    /// in the given mode. Samples through the data-oriented phase-I
    /// kernel — except for trace-retaining modes, which are scalar-only
    /// (the kernel has no traced variant; the stream and every stored
    /// byte are identical either way, so only throughput differs).
    pub fn with_footprints(
        g: &'g DiGraph,
        seeds: &[NodeId],
        k: usize,
        mode: FootprintMode,
    ) -> Self {
        let generator = if mode.retains_trace() {
            PrrGenerator::new_scalar_oracle(g, seeds, k)
        } else {
            PrrGenerator::new(g, seeds, k)
        };
        PrrFullSource {
            generator,
            n: g.num_nodes(),
            candidates: g.num_nodes().saturating_sub(seeds.len()),
            mode,
        }
    }

    /// Like [`with_footprints`](Self::with_footprints), but sampling
    /// through the scalar oracle loop instead of the kernel. The random
    /// stream and every produced byte are identical; this constructor
    /// exists for the kernel-equivalence test suites and the perf
    /// benchmark's baseline leg.
    pub fn scalar_oracle(g: &'g DiGraph, seeds: &[NodeId], k: usize, mode: FootprintMode) -> Self {
        PrrFullSource {
            generator: PrrGenerator::new_scalar_oracle(g, seeds, k),
            n: g.num_nodes(),
            candidates: g.num_nodes().saturating_sub(seeds.len()),
            mode,
        }
    }
}

impl SketchGenerator for PrrFullSource<'_> {
    type Shard = PrrArenaShard;

    fn universe(&self) -> usize {
        self.n
    }

    fn num_candidates(&self) -> usize {
        self.candidates
    }

    fn generate(&self, rng: &mut SmallRng, shard: &mut PrrArenaShard) -> Vec<NodeId> {
        self.generator.sample_into_fp(rng, shard, self.mode)
    }
}

/// Critical-set-only source (PRR-Boost-LB).
pub struct PrrLbSource<'g> {
    generator: PrrGenerator<'g>,
    n: usize,
    candidates: usize,
}

impl<'g> PrrLbSource<'g> {
    /// Creates the source for `(G, S, k)`. Samples through the
    /// data-oriented phase-I kernel.
    pub fn new(g: &'g DiGraph, seeds: &[NodeId], k: usize) -> Self {
        PrrLbSource {
            generator: PrrGenerator::new(g, seeds, k),
            n: g.num_nodes(),
            candidates: g.num_nodes().saturating_sub(seeds.len()),
        }
    }

    /// Scalar-oracle variant of [`new`](Self::new): identical stream and
    /// covers, original per-edge loop. For equivalence tests and baseline
    /// timing.
    pub fn scalar_oracle(g: &'g DiGraph, seeds: &[NodeId], k: usize) -> Self {
        PrrLbSource {
            generator: PrrGenerator::new_scalar_oracle(g, seeds, k),
            n: g.num_nodes(),
            candidates: g.num_nodes().saturating_sub(seeds.len()),
        }
    }
}

impl SketchGenerator for PrrLbSource<'_> {
    type Shard = ();

    fn universe(&self) -> usize {
        self.n
    }

    fn num_candidates(&self) -> usize {
        self.candidates
    }

    fn generate(&self, rng: &mut SmallRng, (): &mut ()) -> Vec<NodeId> {
        self.generator.sample_critical_only(rng)
    }
}

/// Test-only equivalence oracle: the legacy per-graph storage model, one
/// heap `CompressedPrr` per boostable sample.
///
/// Must draw the exact same randomness as [`PrrFullSource`] so that a pool
/// sampled from either source with the same `(base_seed, target)` contains
/// the same graphs in the same order — the shard-vs-legacy byte-equality
/// tests depend on it.
pub struct LegacyPrrSource<'g> {
    generator: PrrGenerator<'g>,
    n: usize,
    candidates: usize,
}

impl<'g> LegacyPrrSource<'g> {
    /// Creates the oracle source for `(G, S, k)`. Always samples through
    /// the scalar loop (the per-graph entry points are oracle-only), so
    /// no SoA mirror is built.
    pub fn new(g: &'g DiGraph, seeds: &[NodeId], k: usize) -> Self {
        LegacyPrrSource {
            generator: PrrGenerator::new_scalar_oracle(g, seeds, k),
            n: g.num_nodes(),
            candidates: g.num_nodes().saturating_sub(seeds.len()),
        }
    }
}

impl SketchGenerator for LegacyPrrSource<'_> {
    type Shard = Vec<CompressedPrr>;

    fn universe(&self) -> usize {
        self.n
    }

    fn num_candidates(&self) -> usize {
        self.candidates
    }

    fn generate(&self, rng: &mut SmallRng, shard: &mut Vec<CompressedPrr>) -> Vec<NodeId> {
        match self.generator.sample(rng) {
            PrrOutcome::Activated | PrrOutcome::Hopeless => Vec::new(),
            PrrOutcome::Boostable(c) => {
                // Cover-less boostable graphs are stored too (matching the
                // shard path): they contribute no sketch cover, but Δ̂ for
                // a k ≥ 2 boost set that activates their root needs them.
                let cover = c.critical().to_vec();
                shard.push(c);
                cover
            }
        }
    }
}

/// One sample as the exact-staleness replay oracle retains it: the
/// legacy per-graph payload (when stored) plus the raw sorted footprint
/// of **every** sample, empty ones included.
#[derive(Clone, Debug)]
pub enum LegacySample {
    /// A boostable sample (cover-less ones included).
    Stored {
        /// The legacy per-graph payload.
        graph: CompressedPrr,
        /// Sorted, deduplicated expanded-node set.
        footprint: Vec<u32>,
    },
    /// An activated / hopeless sample: counted, not stored —
    /// but its footprint still determines when its slot must refresh.
    Empty {
        /// Sorted, deduplicated expanded-node set.
        footprint: Vec<u32>,
    },
}

/// Test-only equivalence oracle of the exact-staleness pipeline: the
/// legacy per-graph storage model extended with per-sample footprints
/// (see [`LegacySample`]). Draws the exact randomness of
/// [`PrrFullSource`], so an oracle-replayed pool is byte-comparable to a
/// footprint-retaining shard pool with the same `(base_seed, target)`.
pub struct LegacyFpSource<'g> {
    generator: PrrGenerator<'g>,
    n: usize,
    candidates: usize,
}

impl<'g> LegacyFpSource<'g> {
    /// Creates the oracle source for `(G, S, k)`. Always samples through
    /// the scalar loop (the per-graph entry points are oracle-only), so
    /// no SoA mirror is built.
    pub fn new(g: &'g DiGraph, seeds: &[NodeId], k: usize) -> Self {
        LegacyFpSource {
            generator: PrrGenerator::new_scalar_oracle(g, seeds, k),
            n: g.num_nodes(),
            candidates: g.num_nodes().saturating_sub(seeds.len()),
        }
    }
}

impl SketchGenerator for LegacyFpSource<'_> {
    type Shard = Vec<LegacySample>;

    fn universe(&self) -> usize {
        self.n
    }

    fn num_candidates(&self) -> usize {
        self.candidates
    }

    fn generate(&self, rng: &mut SmallRng, shard: &mut Vec<LegacySample>) -> Vec<NodeId> {
        let mut footprint = Vec::new();
        match self.generator.sample_with_footprint(rng, &mut footprint) {
            PrrOutcome::Activated | PrrOutcome::Hopeless => {
                shard.push(LegacySample::Empty { footprint });
                Vec::new()
            }
            PrrOutcome::Boostable(c) => {
                let cover = c.critical().to_vec();
                shard.push(LegacySample::Stored {
                    graph: c,
                    footprint,
                });
                cover
            }
        }
    }
}

/// One sample as the trace-retention replay oracle retains it: the
/// [`LegacySample`] payload plus the sample's trace blob (queried-edge
/// outcomes), for every sample — empties must be replayable too.
#[derive(Clone, Debug)]
pub enum LegacyTraceSample {
    /// A boostable sample (cover-less ones included).
    Stored {
        /// The legacy per-graph payload.
        graph: CompressedPrr,
        /// Sorted, deduplicated expanded-node set.
        footprint: Vec<u32>,
        /// Retained queried-edge outcomes for conditional replay.
        trace: Vec<u8>,
    },
    /// An activated / hopeless sample: counted, not stored — but its
    /// footprint still schedules its refresh and its trace still seeds
    /// the conditional replay.
    Empty {
        /// Sorted, deduplicated expanded-node set.
        footprint: Vec<u32>,
        /// Retained queried-edge outcomes for conditional replay.
        trace: Vec<u8>,
    },
}

/// Test-only equivalence oracle of the trace-retention tier:
/// [`LegacyFpSource`] extended with per-sample traces. Draws the exact
/// randomness of every other source, so an oracle-replayed pool is
/// byte-comparable to a [`FootprintMode::Trace`] shard pool with the same
/// `(base_seed, target)`.
pub struct LegacyTraceSource<'g> {
    generator: PrrGenerator<'g>,
    n: usize,
    candidates: usize,
}

impl<'g> LegacyTraceSource<'g> {
    /// Creates the oracle source for `(G, S, k)`. Always samples through
    /// the scalar loop (trace capture is scalar-only).
    pub fn new(g: &'g DiGraph, seeds: &[NodeId], k: usize) -> Self {
        LegacyTraceSource {
            generator: PrrGenerator::new_scalar_oracle(g, seeds, k),
            n: g.num_nodes(),
            candidates: g.num_nodes().saturating_sub(seeds.len()),
        }
    }
}

impl SketchGenerator for LegacyTraceSource<'_> {
    type Shard = Vec<LegacyTraceSample>;

    fn universe(&self) -> usize {
        self.n
    }

    fn num_candidates(&self) -> usize {
        self.candidates
    }

    fn generate(&self, rng: &mut SmallRng, shard: &mut Vec<LegacyTraceSample>) -> Vec<NodeId> {
        let mut footprint = Vec::new();
        let mut trace = Vec::new();
        match self
            .generator
            .sample_with_footprint_trace(rng, &mut footprint, &mut trace)
        {
            PrrOutcome::Activated | PrrOutcome::Hopeless => {
                shard.push(LegacyTraceSample::Empty { footprint, trace });
                Vec::new()
            }
            PrrOutcome::Boostable(c) => {
                let cover = c.critical().to_vec();
                shard.push(LegacyTraceSample::Stored {
                    graph: c,
                    footprint,
                    trace,
                });
                cover
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::PrrArena;
    use kboost_diffusion::exact::exact_boost;
    use kboost_graph::GraphBuilder;
    use kboost_rrset::sketch::SketchPool;

    fn figure1() -> DiGraph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(NodeId(0), NodeId(1), 0.2, 0.4).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.1, 0.2).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn full_source_estimates_delta_unbiasedly() {
        // n · E[f_R(B)] = Δ_S(B) (Lemma 1), checked via the shard arena
        // for B = {v0}: Δ = 0.22.
        let g = figure1();
        let source = PrrFullSource::new(&g, &[NodeId(0)], 2);
        let mut pool: SketchPool<PrrArenaShard> = SketchPool::new(77, 4);
        pool.extend_to(&source, 300_000);

        use crate::graph::PrrEvalScratch;
        use kboost_diffusion::sim::BoostMask;
        let mask = BoostMask::from_nodes(3, &[NodeId(1)]);
        let mut scratch = PrrEvalScratch::default();
        let total = pool.total_samples();
        let hits = pool
            .shard()
            .as_arena()
            .iter()
            .filter(|view| view.f(&mask, &mut scratch))
            .count();
        let est = 3.0 * hits as f64 / total as f64;
        let truth = exact_boost(&g, &[NodeId(0)], &[NodeId(1)]);
        assert!((est - truth).abs() < 0.01, "Δ̂ {est} vs Δ {truth}");
    }

    #[test]
    fn shard_pool_matches_legacy_oracle() {
        // Same seed, same target: the shard-built arena must be byte-equal
        // to the arena copy-built from the legacy per-graph payloads.
        let g = figure1();
        let full = PrrFullSource::new(&g, &[NodeId(0)], 2);
        let legacy = LegacyPrrSource::new(&g, &[NodeId(0)], 2);
        let mut ps: SketchPool<PrrArenaShard> = SketchPool::new(40, 3);
        ps.extend_to(&full, 50_000);
        let mut pl: SketchPool<Vec<CompressedPrr>> = SketchPool::new(40, 3);
        pl.extend_to(&legacy, 50_000);

        assert_eq!(ps.total_samples(), pl.total_samples());
        assert_eq!(ps.empty_samples(), pl.empty_samples());
        assert_eq!(ps.covers(), pl.covers());
        let (_, shard, _, _) = ps.into_parts();
        let (_, payloads, _, _) = pl.into_parts();
        let shard_arena = PrrArena::from_shard(shard);
        let legacy_arena = PrrArena::from_graphs(payloads);
        assert!(shard_arena == legacy_arena, "arenas diverge");
        assert!(
            !shard_arena.is_empty(),
            "degenerate test: no boostable graphs"
        );
    }

    #[test]
    fn lb_source_estimates_mu() {
        // µ({v1}) for Figure 1 with B = {v1}: critical sets containing v1.
        // Exact µ({v0,v1}) from the lower-bound model:
        // (p'₀−p₀)(1+p₁) + p₀(p'₁−p₁) = 0.2·1.1 + 0.2·0.1 = 0.24... wait:
        // 0.2·1.1 = 0.22, plus 0.02 = 0.24? No: (0.4−0.2)·(1+0.1)=0.22 and
        // 0.2·(0.2−0.1)=0.02 → µ = 0.24. Checked against the µ-model
        // simulator in kboost-diffusion instead, to avoid double error.
        let g = figure1();
        let source = PrrLbSource::new(&g, &[NodeId(0)], 2);
        let mut pool: SketchPool<()> = SketchPool::new(78, 4);
        pool.extend_to(&source, 300_000);
        let est = pool.estimate(3, &[NodeId(1), NodeId(2)]);
        let sim = kboost_diffusion::mu_model::estimate_mu(
            &g,
            &[NodeId(0)],
            &[NodeId(1), NodeId(2)],
            300_000,
            123,
        );
        assert!((est - sim).abs() < 0.01, "µ̂ {est} vs simulated µ {sim}");
    }

    #[test]
    fn lb_and_full_covers_same_distribution() {
        // The critical-set distribution must be identical between the two
        // sources (same underlying randomness model): compare the estimate
        // of µ({v0}) from both pools.
        let g = figure1();
        let full = PrrFullSource::new(&g, &[NodeId(0)], 2);
        let lb = PrrLbSource::new(&g, &[NodeId(0)], 2);
        let mut pf: SketchPool<PrrArenaShard> = SketchPool::new(5, 2);
        pf.extend_to(&full, 200_000);
        let mut pl: SketchPool<()> = SketchPool::new(6, 2);
        pl.extend_to(&lb, 200_000);
        let a = pf.estimate(3, &[NodeId(1)]);
        let b = pl.estimate(3, &[NodeId(1)]);
        assert!((a - b).abs() < 0.01, "full {a} vs lb {b}");
    }
}
