//! Greedy NodeSelection over `Δ̂` (Algorithm 2, line 4).
//!
//! Unlike the coverage greedy used for `µ̂` (each sketch is covered by a
//! fixed set), `Δ̂` is evaluated on whole PRR-graphs: after each insertion
//! the per-graph candidate sets change. The naive algorithm therefore
//! recomputes, for each not-yet-covered graph, the *B-augmented* critical
//! set every round — `O(k · Σ|R|)` node-selection cost.
//!
//! [`greedy_delta_selection`] replaces the per-round full re-traversal with
//! an **inverted coverage index**: node `v` maps to the PRR-graphs in which
//! `v` heads a boost edge — precisely the graphs whose `f_R` / candidate
//! set can change when `v` enters `B`. Each round then
//!
//! 1. picks the max-vote node from incrementally maintained vote counts
//!    (`votes[v] = #{uncovered R : v ∈ A_R(B)}`), and
//! 2. re-traverses only the graphs listed under the picked node,
//!    subtracting their old candidate votes and adding the new ones.
//!
//! Graphs without the picked node among their boost heads cannot change
//! (`f_R` and `A_R` depend on `B` only through the graph's own boost-edge
//! heads), so their cached candidate sets stay exact. The result is
//! bit-identical to the naive greedy — tie-breaks included (highest vote
//! count, then lowest node id) — which
//! `greedy_matches_naive_on_random_arenas` and the cross-crate property
//! tests enforce. The initial candidate sets are computed in parallel
//! (deterministically: per-graph results are ordered by graph id).

use kboost_diffusion::sim::BoostMask;
use kboost_graph::NodeId;

use crate::arena::PrrArena;
use crate::graph::{Augmented, PrrEvalScratch};

/// A CSR multimap from node id to `u32` items, built by the
/// count / prefix-sum / scatter passes of the greedy selection's inverted
/// coverage index. The online pool maintainer reuses it as its
/// node → PRR-graphs invalidation index.
///
/// `fill` is invoked twice — once to count, once to scatter — and must
/// emit the identical `(node, item)` sequence both times; items of one
/// node keep their emission order.
pub struct NodeIndex {
    /// `n + 1` offsets into `items`.
    offsets: Vec<u32>,
    items: Vec<u32>,
}

impl NodeIndex {
    /// Builds the index over node universe `0..n`.
    pub fn build(n: usize, fill: impl Fn(&mut dyn FnMut(NodeId, u32))) -> Self {
        let mut offsets = vec![0u32; n + 1];
        fill(&mut |v, _| offsets[v.index() + 1] += 1);
        for v in 0..n {
            offsets[v + 1] += offsets[v];
        }
        let mut cursor = offsets[..n].to_vec();
        let mut items = vec![0u32; offsets[n] as usize];
        fill(&mut |v, item| {
            items[cursor[v.index()] as usize] = item;
            cursor[v.index()] += 1;
        });
        NodeIndex { offsets, items }
    }

    /// The items filed under node `v`.
    #[inline]
    pub fn items_of(&self, v: NodeId) -> &[u32] {
        let (lo, hi) = (
            self.offsets[v.index()] as usize,
            self.offsets[v.index() + 1] as usize,
        );
        &self.items[lo..hi]
    }

    /// Total number of stored `(node, item)` pairs.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the index holds no pairs.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Result of the greedy `Δ̂` selection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeltaSelection {
    /// Chosen boost nodes, in pick order.
    pub selected: Vec<NodeId>,
    /// Number of PRR-graphs whose root activates under the final set.
    pub covered: u64,
}

/// Greedily selects up to `k` nodes maximizing the number of PRR-graphs
/// with `f_R(B) = 1`, using the inverted coverage index. `n` is the
/// host-graph node count; `threads` bounds the parallel fan-out of the
/// initial candidate computation. Tombstoned graphs (online maintenance)
/// are skipped: they earn no votes and never count as covered.
pub fn greedy_delta_selection(
    arena: &PrrArena,
    n: usize,
    k: usize,
    threads: usize,
) -> DeltaSelection {
    // `k == 0` deliberately falls through: phase 1 still classifies graphs
    // already covered under the empty boost set, matching the naive
    // greedy's final sweep.
    let num_graphs = arena.len();
    if num_graphs == 0 {
        return DeltaSelection {
            selected: Vec::new(),
            covered: 0,
        };
    }

    // Phase 1 (parallel): per-graph initial candidate set A_R(∅) and the
    // graph's distinct boost-edge heads.
    let init = initial_candidates(arena, n, threads);

    let mut covered: Vec<bool> = Vec::with_capacity(num_graphs);
    let mut covered_count = 0u64;
    let mut cand_sets: Vec<Vec<NodeId>> = Vec::with_capacity(num_graphs);
    let mut head_lists: Vec<Vec<NodeId>> = Vec::with_capacity(num_graphs);
    for g in init {
        if g.covered {
            covered_count += 1;
        }
        covered.push(g.covered);
        cand_sets.push(g.candidates);
        head_lists.push(g.heads);
    }

    // Phase 2: inverted index node -> graphs where it heads a boost edge.
    let index = NodeIndex::build(n, |emit| {
        for (gi, heads) in head_lists.iter().enumerate() {
            for &h in heads {
                emit(h, gi as u32);
            }
        }
    });
    drop(head_lists);

    // Phase 3: vote counts over the current candidate sets.
    let mut votes = vec![0u32; n];
    let mut active: Vec<u32> = Vec::new();
    let mut in_active = vec![false; n];
    for (gi, cands) in cand_sets.iter().enumerate() {
        if covered[gi] {
            continue;
        }
        for &v in cands {
            votes[v.index()] += 1;
            if !in_active[v.index()] {
                in_active[v.index()] = true;
                active.push(v.0);
            }
        }
    }

    // Phase 4: greedy rounds with lazy incremental updates.
    let mut boost = BoostMask::empty(n);
    let mut selected: Vec<NodeId> = Vec::with_capacity(k);
    let mut scratch = PrrEvalScratch::default();
    let mut fresh: Vec<NodeId> = Vec::new();

    for _round in 0..k {
        // Max votes, ties to the lowest node id — the naive greedy's order.
        let mut best: Option<(u32, u32)> = None;
        for &v in &active {
            let count = votes[v as usize];
            if count == 0 {
                continue;
            }
            best = match best {
                None => Some((count, v)),
                Some((bc, bv)) if count > bc || (count == bc && v < bv) => Some((count, v)),
                other => other,
            };
        }
        let Some((_, picked)) = best else { break }; // no node improves any graph
        let picked = NodeId(picked);
        boost.insert(picked);
        selected.push(picked);

        // Only graphs with `picked` among their boost heads can change.
        for &gi in index.items_of(picked) {
            let gi = gi as usize;
            if covered[gi] {
                continue;
            }
            for &u in &cand_sets[gi] {
                votes[u.index()] -= 1;
            }
            fresh.clear();
            match arena
                .graph(gi)
                .augmented_critical(&boost, &mut scratch, &mut fresh)
            {
                Augmented::Covered => {
                    covered[gi] = true;
                    covered_count += 1;
                    cand_sets[gi] = Vec::new();
                }
                Augmented::Open => {
                    for &u in &fresh {
                        votes[u.index()] += 1;
                        if !in_active[u.index()] {
                            in_active[u.index()] = true;
                            active.push(u.0);
                        }
                    }
                    std::mem::swap(&mut cand_sets[gi], &mut fresh);
                }
            }
        }
        debug_assert_eq!(votes[picked.index()], 0, "picked node kept residual votes");
    }

    DeltaSelection {
        selected,
        covered: covered_count,
    }
}

/// Per-graph output of the parallel initial pass.
struct GraphInit {
    candidates: Vec<NodeId>,
    heads: Vec<NodeId>,
    covered: bool,
}

/// Computes `A_R(∅)` and the distinct boost heads of every graph, fanning
/// out over contiguous graph ranges; results are ordered by graph id, so
/// the output is independent of `threads`. Tombstoned graphs get an inert
/// record — no candidates, no heads, not covered — so they contribute no
/// votes, no index entries and no coverage.
fn initial_candidates(arena: &PrrArena, n: usize, threads: usize) -> Vec<GraphInit> {
    let num_graphs = arena.len();
    let empty = BoostMask::empty(n);
    let run_range = |range: std::ops::Range<usize>| -> Vec<GraphInit> {
        let mut scratch = PrrEvalScratch::default();
        let mut out = Vec::with_capacity(range.len());
        for gi in range {
            if !arena.is_live(gi) {
                out.push(GraphInit {
                    candidates: Vec::new(),
                    heads: Vec::new(),
                    covered: false,
                });
                continue;
            }
            let view = arena.graph(gi);
            let mut candidates = Vec::new();
            let covered = matches!(
                view.augmented_critical(&empty, &mut scratch, &mut candidates),
                Augmented::Covered
            );
            let mut heads = Vec::new();
            view.for_each_boost_head(|v| heads.push(v));
            out.push(GraphInit {
                candidates,
                heads,
                covered,
            });
        }
        out
    };

    let workers = threads.max(1).min(num_graphs.max(1));
    if workers <= 1 || num_graphs < 256 {
        return run_range(0..num_graphs);
    }
    let per = num_graphs.div_ceil(workers);
    let mut results: Vec<GraphInit> = Vec::with_capacity(num_graphs);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let lo = (per * w).min(num_graphs);
                let hi = (lo + per).min(num_graphs);
                let run_range = &run_range;
                scope.spawn(move || run_range(lo..hi))
            })
            .collect();
        for h in handles {
            results.extend(h.join().expect("initial-candidate worker panicked"));
        }
    });
    results
}

/// The reference greedy: recomputes every uncovered graph's B-augmented
/// critical set each round (the paper's `O(k · Σ|R|)` node selection).
/// Kept as the equivalence oracle for [`greedy_delta_selection`] and as the
/// baseline the perf harness measures against.
pub fn greedy_delta_selection_naive(arena: &PrrArena, n: usize, k: usize) -> DeltaSelection {
    let num_graphs = arena.len();
    let mut boost = BoostMask::empty(n);
    let mut selected: Vec<NodeId> = Vec::with_capacity(k);
    let mut covered: Vec<bool> = vec![false; num_graphs];
    let mut scratch = PrrEvalScratch::default();

    // Per-round vote counts, reset via the touched list.
    let mut votes: Vec<u32> = vec![0; n];
    let mut touched: Vec<NodeId> = Vec::new();
    let mut candidates: Vec<NodeId> = Vec::new();

    for _round in 0..k {
        touched.clear();
        for (i, prr) in arena.iter().enumerate() {
            if covered[i] || !arena.is_live(i) {
                continue;
            }
            candidates.clear();
            match prr.augmented_critical(&boost, &mut scratch, &mut candidates) {
                Augmented::Covered => covered[i] = true,
                Augmented::Open => {
                    for &v in &candidates {
                        if votes[v.index()] == 0 {
                            touched.push(v);
                        }
                        votes[v.index()] += 1;
                    }
                }
            }
        }

        let best = touched
            .iter()
            .copied()
            .max_by_key(|v| (votes[v.index()], std::cmp::Reverse(v.0)));
        for &v in &touched {
            votes[v.index()] = 0;
        }
        match best {
            Some(v) => {
                boost.insert(v);
                selected.push(v);
            }
            None => break, // no node improves any graph
        }
    }

    // Final coverage count under the complete selection.
    let mut covered_final = 0u64;
    for (i, prr) in arena.iter().enumerate() {
        if arena.is_live(i) && (covered[i] || prr.f(&boost, &mut scratch)) {
            covered_final += 1;
        }
    }
    DeltaSelection {
        selected,
        covered: covered_final,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{CompressedPrr, SUPER_SEED};

    /// super --boost--> a --live--> root.
    fn single_critical(a_global: u32, root_global: u32) -> CompressedPrr {
        let out_adj = vec![vec![(1u32, true)], vec![(2u32, false)], vec![]];
        CompressedPrr::from_adjacency(
            2,
            vec![SUPER_SEED, a_global, root_global],
            &out_adj,
            vec![NodeId(a_global)],
            10,
        )
    }

    /// super --boost--> a --boost--> root (needs both boosted).
    fn chain_of_two(a_global: u32, root_global: u32) -> CompressedPrr {
        let out_adj = vec![vec![(1u32, true)], vec![(2u32, true)], vec![]];
        CompressedPrr::from_adjacency(
            2,
            vec![SUPER_SEED, a_global, root_global],
            &out_adj,
            vec![],
            10,
        )
    }

    fn arena_of(graphs: &[CompressedPrr]) -> PrrArena {
        let mut arena = PrrArena::new();
        for g in graphs {
            arena.push(g);
        }
        arena
    }

    fn both(arena: &PrrArena, n: usize, k: usize) -> DeltaSelection {
        let fast = greedy_delta_selection(arena, n, k, 2);
        let naive = greedy_delta_selection_naive(arena, n, k);
        assert_eq!(fast, naive, "indexed greedy diverged from naive");
        fast
    }

    #[test]
    fn picks_majority_node() {
        let arena = arena_of(&[
            single_critical(5, 6),
            single_critical(5, 7),
            single_critical(8, 9),
        ]);
        let res = both(&arena, 10, 1);
        assert_eq!(res.selected, vec![NodeId(5)]);
        assert_eq!(res.covered, 2);
    }

    #[test]
    fn chains_get_completed_across_rounds() {
        // One chain graph needing {3, 4}: alone it offers no single-node
        // gain, but a single-critical graph on node 3 drags 3 in; after
        // that the chain's candidate set becomes {4}.
        let arena = arena_of(&[chain_of_two(3, 4), single_critical(3, 6)]);
        let res = both(&arena, 10, 2);
        assert_eq!(res.selected, vec![NodeId(3), NodeId(4)]);
        assert_eq!(res.covered, 2);
    }

    #[test]
    fn stops_early_without_candidates() {
        let arena = arena_of(&[chain_of_two(3, 4)]);
        // Alone, the chain offers no single-node gain: selection is empty.
        let res = both(&arena, 10, 2);
        assert!(res.selected.is_empty());
        assert_eq!(res.covered, 0);
    }

    #[test]
    fn ties_break_to_lower_id() {
        let arena = arena_of(&[single_critical(5, 6), single_critical(2, 7)]);
        let res = both(&arena, 10, 1);
        assert_eq!(res.selected, vec![NodeId(2)]);
    }

    #[test]
    fn empty_pool() {
        let arena = PrrArena::new();
        let res = both(&arena, 5, 3);
        assert!(res.selected.is_empty());
        assert_eq!(res.covered, 0);
    }

    /// super --live--> root: covered with no boosting at all (cannot come
    /// out of the PRR-Boost pipeline, but the arena API allows it).
    fn pre_covered(root_global: u32) -> CompressedPrr {
        let out_adj = vec![vec![(1u32, false)], vec![]];
        CompressedPrr::from_adjacency(1, vec![SUPER_SEED, root_global], &out_adj, vec![], 3)
    }

    #[test]
    fn k_zero_counts_pre_covered_graphs() {
        let arena = arena_of(&[pre_covered(4), single_critical(5, 6)]);
        let res = both(&arena, 10, 0);
        assert!(res.selected.is_empty());
        assert_eq!(res.covered, 1);
        let res = both(&arena, 10, 1);
        assert_eq!(res.selected, vec![NodeId(5)]);
        assert_eq!(res.covered, 2);
    }

    #[test]
    fn node_index_groups_items_in_emission_order() {
        let pairs = [(2u32, 10u32), (0, 11), (2, 12), (1, 13), (2, 14)];
        let index = NodeIndex::build(4, |emit| {
            for &(v, item) in &pairs {
                emit(NodeId(v), item);
            }
        });
        assert_eq!(index.len(), 5);
        assert!(!index.is_empty());
        assert_eq!(index.items_of(NodeId(0)), &[11]);
        assert_eq!(index.items_of(NodeId(1)), &[13]);
        assert_eq!(index.items_of(NodeId(2)), &[10, 12, 14]);
        assert_eq!(index.items_of(NodeId(3)), &[] as &[u32]);
    }

    #[test]
    fn tombstoned_graphs_are_invisible_to_both_greedys() {
        // Three graphs voting for node 5; tombstoning two must change the
        // winner and the coverage count exactly as if they were absent.
        let mut arena = arena_of(&[
            single_critical(5, 6),
            single_critical(5, 7),
            single_critical(8, 9),
        ]);
        arena.tombstone(0);
        arena.tombstone(1);
        let res = both(&arena, 10, 1);
        assert_eq!(res.selected, vec![NodeId(8)]);
        assert_eq!(res.covered, 1);
        // And the result matches a fresh arena holding only the survivor.
        let fresh = arena_of(&[single_critical(8, 9)]);
        assert_eq!(res, both(&fresh, 10, 1));
    }

    #[test]
    fn greedy_matches_naive_on_random_arenas() {
        // Synthetic random pools: chains and single-critical graphs over a
        // small universe, several budgets.
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..30u64 {
            let mut rng = SmallRng::seed_from_u64(seed * 7 + 1);
            let n = 12usize;
            let graphs: Vec<CompressedPrr> = (0..rng.random_range(1..40usize))
                .map(|_| {
                    let a = rng.random_range(1..n as u32 - 1);
                    let r = rng.random_range(1..n as u32 - 1);
                    if rng.random_bool(0.5) {
                        single_critical(a, if r == a { r - 1 } else { r })
                    } else {
                        chain_of_two(a, if r == a { r - 1 } else { r })
                    }
                })
                .collect();
            let arena = arena_of(&graphs);
            for k in [0usize, 1, 2, 4, 8] {
                both(&arena, n, k);
            }
        }
    }
}
