//! Greedy NodeSelection over `Δ̂` (Algorithm 2, line 4).
//!
//! Unlike the coverage greedy used for `µ̂` (each sketch is covered by a
//! fixed set), `Δ̂` is evaluated on whole PRR-graphs: after each insertion
//! the per-graph candidate sets change, so every round recomputes, for each
//! not-yet-covered graph, the *B-augmented* critical set — which nodes
//! would activate that graph's root given the current `B`. One round is
//! linear in the total size of the stored PRR-graphs, matching the paper's
//! `O(k · Σ|R|)` node-selection cost.

use kboost_diffusion::sim::BoostMask;
use kboost_graph::NodeId;

use crate::graph::{Augmented, CompressedPrr, PrrEvalScratch};

/// Result of the greedy `Δ̂` selection.
#[derive(Clone, Debug)]
pub struct DeltaSelection {
    /// Chosen boost nodes, in pick order.
    pub selected: Vec<NodeId>,
    /// Number of PRR-graphs whose root activates under the final set.
    pub covered: u64,
}

/// Greedily selects up to `k` nodes maximizing the number of PRR-graphs
/// with `f_R(B) = 1`. `n` is the host-graph node count.
pub fn greedy_delta_selection(graphs: &[&CompressedPrr], n: usize, k: usize) -> DeltaSelection {
    let mut boost = BoostMask::empty(n);
    let mut selected: Vec<NodeId> = Vec::with_capacity(k);
    let mut covered: Vec<bool> = vec![false; graphs.len()];
    let mut scratch = PrrEvalScratch::default();

    // Per-round vote counts, reset via the touched list.
    let mut votes: Vec<u32> = vec![0; n];
    let mut touched: Vec<NodeId> = Vec::new();
    let mut candidates: Vec<NodeId> = Vec::new();

    for _round in 0..k {
        touched.clear();
        let mut covered_now = 0u64;
        for (i, prr) in graphs.iter().enumerate() {
            if covered[i] {
                covered_now += 1;
                continue;
            }
            candidates.clear();
            match prr.augmented_critical(&boost, &mut scratch, &mut candidates) {
                Augmented::Covered => {
                    covered[i] = true;
                    covered_now += 1;
                }
                Augmented::Open => {
                    for &v in &candidates {
                        if votes[v.index()] == 0 {
                            touched.push(v);
                        }
                        votes[v.index()] += 1;
                    }
                }
            }
        }

        let best = touched
            .iter()
            .copied()
            .max_by_key(|v| (votes[v.index()], std::cmp::Reverse(v.0)));
        for &v in &touched {
            votes[v.index()] = 0;
        }
        let _ = covered_now;
        match best {
            Some(v) => {
                boost.insert(v);
                selected.push(v);
            }
            None => break, // no node improves any graph
        }
    }

    // Final coverage count under the complete selection.
    let mut covered_final = 0u64;
    for (i, prr) in graphs.iter().enumerate() {
        if covered[i] || prr.f(&boost, &mut scratch) {
            covered_final += 1;
        }
    }
    DeltaSelection { selected, covered: covered_final }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::SUPER_SEED;

    /// super --boost--> a --live--> root.
    fn single_critical(a_global: u32, root_global: u32) -> CompressedPrr {
        let out_adj = vec![vec![(1u32, true)], vec![(2u32, false)], vec![]];
        CompressedPrr::from_adjacency(
            2,
            vec![SUPER_SEED, a_global, root_global],
            &out_adj,
            vec![NodeId(a_global)],
            10,
        )
    }

    /// super --boost--> a --boost--> root (needs both boosted).
    fn chain_of_two(a_global: u32, root_global: u32) -> CompressedPrr {
        let out_adj = vec![vec![(1u32, true)], vec![(2u32, true)], vec![]];
        CompressedPrr::from_adjacency(
            2,
            vec![SUPER_SEED, a_global, root_global],
            &out_adj,
            vec![],
            10,
        )
    }

    #[test]
    fn picks_majority_node() {
        let g1 = single_critical(5, 6);
        let g2 = single_critical(5, 7);
        let g3 = single_critical(8, 9);
        let graphs = vec![&g1, &g2, &g3];
        let res = greedy_delta_selection(&graphs, 10, 1);
        assert_eq!(res.selected, vec![NodeId(5)]);
        assert_eq!(res.covered, 2);
    }

    #[test]
    fn chains_get_completed_across_rounds() {
        // One chain graph needing {3, 4}: greedy must pick both (the first
        // pick gives no immediate coverage but opens the second).
        // Round 1: no single node covers the chain — augmented criticality
        // of the chain is empty (boosting 4 alone doesn't help because the
        // super→a edge is closed; boosting 3 alone leaves a→root closed)…
        // wait: boosting 3 makes super→a traversable and then a→root needs
        // 4. Candidates: F = {super}, T = {root, a?}. a reaches root only
        // if root ∈ B. So candidates = heads v of boost edges (u,v) with
        // u ∈ F, v ∈ T = {}. A second single-critical graph on node 3
        // breaks the tie and drags 3 in; after that the chain's candidate
        // set becomes {4}.
        let chain = chain_of_two(3, 4);
        let single = single_critical(3, 6);
        let graphs = vec![&chain, &single];
        let res = greedy_delta_selection(&graphs, 10, 2);
        assert_eq!(res.selected, vec![NodeId(3), NodeId(4)]);
        assert_eq!(res.covered, 2);
    }

    #[test]
    fn stops_early_without_candidates() {
        let chain = chain_of_two(3, 4);
        let graphs = vec![&chain];
        // Alone, the chain offers no single-node gain: selection is empty.
        let res = greedy_delta_selection(&graphs, 10, 2);
        assert!(res.selected.is_empty());
        assert_eq!(res.covered, 0);
    }

    #[test]
    fn ties_break_to_lower_id() {
        let g1 = single_critical(5, 6);
        let g2 = single_critical(2, 7);
        let graphs = vec![&g1, &g2];
        let res = greedy_delta_selection(&graphs, 10, 1);
        assert_eq!(res.selected, vec![NodeId(2)]);
    }

    #[test]
    fn empty_pool() {
        let res = greedy_delta_selection(&[], 5, 3);
        assert!(res.selected.is_empty());
        assert_eq!(res.covered, 0);
    }
}
