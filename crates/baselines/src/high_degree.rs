//! HighDegreeGlobal and HighDegreeLocal (Section VII).
//!
//! Both iteratively add the node with the highest *weighted degree* to the
//! boost set. Four degree definitions are used; experiments report the
//! best-performing of the four solutions. HighDegreeLocal restricts
//! candidates to BFS rings around the seeds, expanding ring by ring until
//! `k` nodes are found.

use kboost_graph::{DiGraph, NodeId};

/// The four weighted-degree definitions of the HighDegree baselines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WeightedDegree {
    /// `Σ_{e_uv} p_uv` — total outgoing influence.
    OutSum,
    /// `Σ_{e_uv, v∉B} p_uv` — outgoing influence discounted by already
    /// boosted heads.
    OutSumDiscounted,
    /// `Σ_{e_vu} (p'_vu − p_vu)` — total incoming boost gain.
    InGain,
    /// `Σ_{e_vu, v∉B} (p'_vu − p_vu)` — incoming boost gain discounted by
    /// already boosted tails.
    InGainDiscounted,
}

/// All four variants, for "report the best of the four" loops.
pub const ALL_DEGREES: [WeightedDegree; 4] = [
    WeightedDegree::OutSum,
    WeightedDegree::OutSumDiscounted,
    WeightedDegree::InGain,
    WeightedDegree::InGainDiscounted,
];

fn degree_of(g: &DiGraph, u: NodeId, kind: WeightedDegree, boosted: &[bool]) -> f64 {
    match kind {
        WeightedDegree::OutSum => g.out_edges(u).map(|(_, p)| p.base).sum(),
        WeightedDegree::OutSumDiscounted => g
            .out_edges(u)
            .filter(|(v, _)| !boosted[v.index()])
            .map(|(_, p)| p.base)
            .sum(),
        WeightedDegree::InGain => g.in_edges(u).map(|(_, p)| p.gain()).sum(),
        WeightedDegree::InGainDiscounted => g
            .in_edges(u)
            .filter(|(v, _)| !boosted[v.index()])
            .map(|(_, p)| p.gain())
            .sum(),
    }
}

/// HighDegreeGlobal for one degree definition: iteratively picks the
/// highest-degree non-seed node.
pub fn high_degree_global(
    g: &DiGraph,
    seeds: &[NodeId],
    k: usize,
    kind: WeightedDegree,
) -> Vec<NodeId> {
    let n = g.num_nodes();
    let mut excluded = vec![false; n];
    for &s in seeds {
        excluded[s.index()] = true;
    }
    pick_iteratively(g, k, kind, &mut excluded, None)
}

/// HighDegreeLocal: same selection restricted to nodes near the seeds —
/// first among direct out-neighbors of seeds, then two hops out, and so
/// on, until `k` nodes are collected.
pub fn high_degree_local(
    g: &DiGraph,
    seeds: &[NodeId],
    k: usize,
    kind: WeightedDegree,
) -> Vec<NodeId> {
    let n = g.num_nodes();
    let mut excluded = vec![false; n];
    let mut ring: Vec<NodeId> = Vec::new();
    for &s in seeds {
        excluded[s.index()] = true;
        ring.push(s);
    }

    let mut result = Vec::with_capacity(k);
    let mut in_frontier = vec![false; n];
    while result.len() < k && !ring.is_empty() {
        // Expand one BFS ring (out-neighbors of the current ring).
        let mut next: Vec<NodeId> = Vec::new();
        for &u in &ring {
            for (v, _) in g.out_edges(u) {
                if !excluded[v.index()] && !in_frontier[v.index()] {
                    in_frontier[v.index()] = true;
                    next.push(v);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        // Select greedily inside the ring.
        let mut allowed = vec![false; n];
        for &v in &next {
            allowed[v.index()] = true;
        }
        let want = k - result.len();
        let picked = pick_iteratively(g, want, kind, &mut excluded, Some(&allowed));
        result.extend_from_slice(&picked);
        for &v in &next {
            excluded[v.index()] = true; // spent this ring
            in_frontier[v.index()] = false;
        }
        ring = next;
    }
    result
}

fn pick_iteratively(
    g: &DiGraph,
    k: usize,
    kind: WeightedDegree,
    excluded: &mut [bool],
    allowed: Option<&[bool]>,
) -> Vec<NodeId> {
    let n = g.num_nodes();
    let mut boosted = vec![false; n];
    let mut picked = Vec::with_capacity(k);
    let discounted = matches!(
        kind,
        WeightedDegree::OutSumDiscounted | WeightedDegree::InGainDiscounted
    );

    // Non-discounted degrees are static: one sort suffices. Discounted
    // degrees change as B grows, so re-scan per pick.
    if !discounted {
        let mut scored: Vec<(f64, u32)> = (0..n as u32)
            .filter(|&v| !excluded[v as usize] && allowed.is_none_or(|a| a[v as usize]))
            .map(|v| (degree_of(g, NodeId(v), kind, &boosted), v))
            .collect();
        scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
        for (_score, v) in scored.into_iter().take(k) {
            excluded[v as usize] = true;
            picked.push(NodeId(v));
        }
        return picked;
    }

    for _ in 0..k {
        let mut best: Option<(f64, u32)> = None;
        for v in 0..n as u32 {
            if excluded[v as usize] || allowed.is_some_and(|a| !a[v as usize]) {
                continue;
            }
            let d = degree_of(g, NodeId(v), kind, &boosted);
            if best.is_none_or(|(bd, _)| d > bd) {
                best = Some((d, v));
            }
        }
        let Some((_score, v)) = best else { break };
        excluded[v as usize] = true;
        boosted[v as usize] = true;
        picked.push(NodeId(v));
    }
    picked
}

#[cfg(test)]
mod tests {
    use super::*;
    use kboost_graph::GraphBuilder;

    fn sample() -> DiGraph {
        // Node 1 has the largest out-sum; node 2 the largest in-gain.
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 0.1, 0.2).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.9, 0.95).unwrap();
        b.add_edge(NodeId(1), NodeId(3), 0.8, 0.9).unwrap();
        b.add_edge(NodeId(3), NodeId(2), 0.1, 0.9).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn out_sum_picks_node1() {
        let g = sample();
        let picked = high_degree_global(&g, &[NodeId(0)], 1, WeightedDegree::OutSum);
        assert_eq!(picked, vec![NodeId(1)]);
    }

    #[test]
    fn in_gain_picks_node2() {
        let g = sample();
        let picked = high_degree_global(&g, &[NodeId(0)], 1, WeightedDegree::InGain);
        assert_eq!(picked, vec![NodeId(2)]);
    }

    #[test]
    fn seeds_excluded() {
        let g = sample();
        for kind in ALL_DEGREES {
            let picked = high_degree_global(&g, &[NodeId(1)], 2, kind);
            assert!(!picked.contains(&NodeId(1)), "{kind:?} picked a seed");
        }
    }

    #[test]
    fn local_prefers_seed_neighborhood() {
        let g = sample();
        // Seeds = {0}: first ring is {1}; node 1 must be picked first even
        // under InGain (where node 2 scores higher globally).
        let picked = high_degree_local(&g, &[NodeId(0)], 1, WeightedDegree::InGain);
        assert_eq!(picked, vec![NodeId(1)]);
    }

    #[test]
    fn local_expands_rings_until_k() {
        let g = sample();
        let picked = high_degree_local(&g, &[NodeId(0)], 3, WeightedDegree::OutSum);
        assert_eq!(picked.len(), 3);
        assert_eq!(picked[0], NodeId(1)); // ring 1
    }

    #[test]
    fn discounted_differs_from_plain() {
        // 0 -> {1,2}, 1 -> 2: discounting steers the 2nd pick away from
        // nodes pointing into the already-boosted region.
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 0.5, 0.9).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.5, 0.9).unwrap();
        b.add_edge(NodeId(3), NodeId(2), 0.5, 0.9).unwrap();
        b.add_edge(NodeId(3), NodeId(1), 0.4, 0.8).unwrap();
        let g = b.build().unwrap();
        let plain = high_degree_global(&g, &[NodeId(0)], 2, WeightedDegree::OutSum);
        let disc = high_degree_global(&g, &[NodeId(0)], 2, WeightedDegree::OutSumDiscounted);
        assert_eq!(plain.len(), 2);
        assert_eq!(disc.len(), 2);
        assert_eq!(plain[0], NodeId(3)); // 0.9 total out-sum
    }
}
