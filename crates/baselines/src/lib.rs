//! Baseline boost-set selectors from Section VII.
//!
//! None of these carries an approximation guarantee; the paper uses them
//! to demonstrate PRR-Boost's superiority:
//!
//! * [`high_degree`] — HighDegreeGlobal / HighDegreeLocal with the four
//!   weighted-degree definitions (the experiments report the best of the
//!   four).
//! * [`pagerank`] — PageRank over the reversed influence transition
//!   matrix, restart 0.15, L1 tolerance `1e-4`.
//! * [`more_seeds`] — re-exported from `kboost-rrset`: k extra seeds via
//!   marginal IMM, returned *as boosted nodes*.
//! * [`random_boost`] — uniform random non-seed nodes.

pub mod high_degree;
pub mod pagerank;

pub use high_degree::{high_degree_global, high_degree_local, WeightedDegree};
pub use kboost_rrset::seeds::select_more_seeds as more_seeds;
pub use pagerank::{pagerank_scores, pagerank_select};

use kboost_graph::{DiGraph, NodeId};

/// Uniform random non-seed boost set (baseline).
pub fn random_boost(g: &DiGraph, seeds: &[NodeId], k: usize, seed: u64) -> Vec<NodeId> {
    kboost_rrset::seeds::select_random_nodes(g, k, seeds, seed)
}
