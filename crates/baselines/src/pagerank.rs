//! The PageRank baseline (Section VII).
//!
//! "When a node u has influence on v, it implies that node v 'votes' for
//! the rank of u. The transition probability on edge e_uv is
//! p_vu / ρ(u), where ρ(u) is the summation of influence probabilities on
//! all incoming edges of u. The restart probability is 0.15. We compute
//! the PageRank iteratively until two consecutive iterations differ by at
//! most 1e-4 in L1 norm."

use kboost_graph::{DiGraph, NodeId};

/// Computes the baseline's PageRank scores.
pub fn pagerank_scores(g: &DiGraph, restart: f64, tol_l1: f64, max_iters: usize) -> Vec<f64> {
    let n = g.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    // ρ(u) = Σ of influence probabilities on incoming edges of u.
    let rho: Vec<f64> = (0..n)
        .map(|u| g.in_edges(NodeId::from_index(u)).map(|(_, p)| p.base).sum())
        .collect();

    let uniform = 1.0 / n as f64;
    let mut rank = vec![uniform; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..max_iters {
        next.fill(restart * uniform);
        let mut dangling = 0.0;
        for u in 0..n {
            if rho[u] <= 0.0 {
                dangling += rank[u];
                continue;
            }
            // Mass flows from u to its *in-neighbors* v (v voted for u by
            // influencing it): transition weight p_vu / ρ(u).
            let share = (1.0 - restart) * rank[u] / rho[u];
            for (v, p) in g.in_edges(NodeId::from_index(u)) {
                next[v.index()] += share * p.base;
            }
        }
        // Dangling mass is spread uniformly.
        let spread = (1.0 - restart) * dangling * uniform;
        for x in next.iter_mut() {
            *x += spread;
        }

        let diff: f64 = rank.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
        std::mem::swap(&mut rank, &mut next);
        if diff <= tol_l1 {
            break;
        }
    }
    rank
}

/// Selects the top-`k` non-seed nodes by PageRank score (the paper's
/// parameters: restart 0.15, tolerance 1e-4).
pub fn pagerank_select(g: &DiGraph, seeds: &[NodeId], k: usize) -> Vec<NodeId> {
    let scores = pagerank_scores(g, 0.15, 1e-4, 200);
    let mut excluded = vec![false; g.num_nodes()];
    for &s in seeds {
        excluded[s.index()] = true;
    }
    let mut order: Vec<u32> = (0..g.num_nodes() as u32)
        .filter(|&v| !excluded[v as usize])
        .collect();
    order.sort_by(|&a, &b| {
        scores[b as usize]
            .partial_cmp(&scores[a as usize])
            .unwrap()
            .then(a.cmp(&b))
    });
    order.into_iter().take(k).map(NodeId).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kboost_graph::GraphBuilder;

    #[test]
    fn scores_sum_to_one() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 0.5, 0.6).unwrap();
        b.add_edge(NodeId(1), NodeId(2), 0.5, 0.6).unwrap();
        b.add_edge(NodeId(2), NodeId(0), 0.5, 0.6).unwrap();
        b.add_edge(NodeId(3), NodeId(0), 0.5, 0.6).unwrap();
        let g = b.build().unwrap();
        let scores = pagerank_scores(&g, 0.15, 1e-9, 500);
        let total: f64 = scores.iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "total {total}");
    }

    #[test]
    fn influencer_ranks_high() {
        // Node 0 influences everyone: all mass votes for 0.
        let mut b = GraphBuilder::new(4);
        for v in 1..4u32 {
            b.add_edge(NodeId(0), NodeId(v), 0.9, 0.95).unwrap();
        }
        let g = b.build().unwrap();
        let scores = pagerank_scores(&g, 0.15, 1e-9, 500);
        for v in 1..4 {
            assert!(scores[0] > scores[v], "node 0 should outrank {v}");
        }
    }

    #[test]
    fn select_excludes_seeds() {
        let mut b = GraphBuilder::new(4);
        for v in 1..4u32 {
            b.add_edge(NodeId(0), NodeId(v), 0.9, 0.95).unwrap();
        }
        let g = b.build().unwrap();
        let picked = pagerank_select(&g, &[NodeId(0)], 2);
        assert_eq!(picked.len(), 2);
        assert!(!picked.contains(&NodeId(0)));
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build().unwrap();
        assert!(pagerank_scores(&g, 0.15, 1e-4, 10).is_empty());
    }
}
