//! Shared experiment drivers: the influential-seed and random-seed
//! variants of each figure differ only in seed selection, so Figures 5/10,
//! 6/11, Tables 2/3 and Figures 7/12 share these functions.

use kboost_baselines::{more_seeds, pagerank_select};
use kboost_core::sandwich::sandwich_ratio_curve;
use kboost_core::{prr_boost, prr_boost_lb};
use kboost_datasets::{Dataset, ALL_DATASETS};
use kboost_graph::DiGraph;

use crate::{
    best_high_degree_global, best_high_degree_local, eval_boost, fmt_mb, fmt_secs, load,
    pick_seeds, print_table, Opts, SeedMode,
};

/// Datasets exercised by default (all four; Flickr-like last since it is
/// the largest at full scale).
pub fn datasets(_opts: &Opts) -> Vec<Dataset> {
    ALL_DATASETS.to_vec()
}

/// Figures 5 / 10: boost of influence versus `k` for the six algorithms.
pub fn quality_experiment(mode: SeedMode, opts: &Opts) {
    for dataset in datasets(opts) {
        let g = load(dataset, 2.0, opts);
        let seeds = pick_seeds(&g, mode, opts);
        println!(
            "\n### {} (n = {}, m = {}, |S| = {}, {:?} seeds)",
            dataset.name(),
            g.num_nodes(),
            g.num_edges(),
            seeds.len(),
            mode
        );
        let mut rows = Vec::new();
        for k in opts.k_grid() {
            let bopts = opts.boost_options(k as u64);
            let (full, _) = prr_boost(&g, &seeds, k, &bopts);
            let lb = prr_boost_lb(&g, &seeds, k, &bopts);
            let (hdg, _) = best_high_degree_global(&g, &seeds, k, opts);
            let (hdl, _) = best_high_degree_local(&g, &seeds, k, opts);
            let pr = eval_boost(&g, &seeds, &pagerank_select(&g, &seeds, k), opts);
            let ms_set = more_seeds(&g, &seeds, &opts.imm_params(k, 0xE));
            let ms = eval_boost(&g, &seeds, &ms_set, opts);
            rows.push(vec![
                k.to_string(),
                format!("{:.1}", eval_boost(&g, &seeds, &full.best, opts)),
                format!("{:.1}", eval_boost(&g, &seeds, &lb.best, opts)),
                format!("{hdg:.1}"),
                format!("{hdl:.1}"),
                format!("{pr:.1}"),
                format!("{ms:.1}"),
            ]);
        }
        print_table(
            &[
                "k",
                "PRR-Boost",
                "PRR-Boost-LB",
                "HighDegGlobal",
                "HighDegLocal",
                "PageRank",
                "MoreSeeds",
            ],
            &rows,
        );
    }
}

/// Figures 6 / 11: running time of PRR-Boost vs PRR-Boost-LB.
pub fn time_experiment(mode: SeedMode, opts: &Opts) {
    let k_grid: Vec<usize> = if opts.full {
        vec![100, 1000, 5000]
    } else {
        vec![20, 100, 200]
    };
    for dataset in datasets(opts) {
        let g = load(dataset, 2.0, opts);
        let seeds = pick_seeds(&g, mode, opts);
        println!("\n### {} ({:?} seeds)", dataset.name(), mode);
        let mut rows = Vec::new();
        for &k in &k_grid {
            let bopts = opts.boost_options(k as u64);
            let (full, _) = prr_boost(&g, &seeds, k, &bopts);
            let lb = prr_boost_lb(&g, &seeds, k, &bopts);
            let t_full = full.stats.sampling_secs + full.stats.selection_secs;
            let t_lb = lb.stats.sampling_secs;
            rows.push(vec![
                k.to_string(),
                fmt_secs(t_full),
                fmt_secs(t_lb),
                format!("{:.1}x", t_full / t_lb.max(1e-9)),
                full.stats.total_samples.to_string(),
                lb.stats.total_samples.to_string(),
            ]);
        }
        print_table(
            &[
                "k",
                "PRR-Boost",
                "PRR-Boost-LB",
                "speedup",
                "samples(full)",
                "samples(LB)",
            ],
            &rows,
        );
    }
}

/// Tables 2 / 3: compression ratio and memory usage.
pub fn compression_experiment(mode: SeedMode, opts: &Opts) {
    let k_grid: Vec<usize> = if opts.full {
        vec![100, 5000]
    } else {
        vec![20, 200]
    };
    let mut rows = Vec::new();
    for &k in &k_grid {
        for dataset in datasets(opts) {
            let g = load(dataset, 2.0, opts);
            let seeds = pick_seeds(&g, mode, opts);
            let bopts = opts.boost_options(k as u64);
            let (full, pool) = prr_boost(&g, &seeds, k, &bopts);
            let lb = prr_boost_lb(&g, &seeds, k, &bopts);
            let (unc, cmp) = pool.compression_stats();
            rows.push(vec![
                k.to_string(),
                dataset.name().to_string(),
                format!("{unc:.2} / {cmp:.2} = {:.2}", unc / cmp.max(1e-9)),
                fmt_mb(full.stats.memory_bytes),
                fmt_mb(lb.stats.memory_bytes),
            ]);
        }
    }
    print_table(
        &[
            "k",
            "dataset",
            "compression (unc/cmp = ratio)",
            "mem PRR-Boost",
            "mem PRR-Boost-LB",
        ],
        &rows,
    );
}

/// Figures 7 / 9 / 12: sandwich-ratio scatter summaries. For each `k` (or
/// β), reports the minimum and mean of `µ̂(B)/Δ̂(B)` over perturbed sets
/// whose boost stays above 50% of the solution's.
pub fn sandwich_experiment(mode: SeedMode, betas: &[f64], k_grid: &[usize], opts: &Opts) {
    for dataset in datasets(opts) {
        let base_graph = load(dataset, 2.0, opts);
        println!("\n### {} ({:?} seeds)", dataset.name(), mode);
        let mut rows = Vec::new();
        for &beta in betas {
            let g: DiGraph = if (beta - 2.0).abs() < 1e-12 {
                base_graph.clone()
            } else {
                Dataset::reboost(&base_graph, beta)
            };
            let seeds = pick_seeds(&g, mode, opts);
            for &k in k_grid {
                let bopts = opts.boost_options((beta as u64) << 16 | k as u64);
                let (out, pool) = prr_boost(&g, &seeds, k, &bopts);
                let points =
                    sandwich_ratio_curve(&g, &pool, &seeds, &out.best, 300, 0.5, opts.seed ^ 0xF);
                if points.is_empty() {
                    rows.push(vec![
                        format!("{beta}"),
                        k.to_string(),
                        "-".into(),
                        "-".into(),
                        "0".into(),
                    ]);
                    continue;
                }
                let min = points.iter().map(|p| p.ratio).fold(f64::INFINITY, f64::min);
                let mean: f64 = points.iter().map(|p| p.ratio).sum::<f64>() / points.len() as f64;
                rows.push(vec![
                    format!("{beta}"),
                    k.to_string(),
                    format!("{min:.3}"),
                    format!("{mean:.3}"),
                    points.len().to_string(),
                ]);
            }
        }
        print_table(&["beta", "k", "min ratio", "mean ratio", "#sets"], &rows);
    }
}
