//! Figure 14: Greedy-Boost vs DP-Boost on bidirected trees (varying ε and
//! k; complete binary trees with Trivalency probabilities).

use kboost_bench::{fmt_secs, print_table, Opts};
use kboost_graph::generators::complete_binary_tree;
use kboost_graph::probability::ProbabilityModel;
use kboost_rrset::seeds::select_random_nodes;
use kboost_tree::{dp_boost, greedy_boost, BidirectedTree};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let opts = Opts::from_args();
    let n = if opts.full { 2000 } else { 500 };
    let k_grid: Vec<usize> = if opts.full {
        vec![50, 100, 150, 200, 250]
    } else {
        vec![10, 20, 30, 40, 50]
    };
    println!("## Figure 14 — Greedy-Boost vs DP-Boost (n = {n}, Trivalency)");

    let mut rng = SmallRng::seed_from_u64(opts.seed);
    let topo = complete_binary_tree(n);
    let g = topo.into_bidirected_graph(ProbabilityModel::Trivalency, 2.0, &mut rng);
    let seeds = select_random_nodes(&g, 50, &[], opts.seed ^ 1);
    let tree = BidirectedTree::from_digraph(&g, &seeds).unwrap();

    let mut rows = Vec::new();
    for &k in &k_grid {
        let t0 = Instant::now();
        let greedy = greedy_boost(&tree, k);
        let t_greedy = t0.elapsed().as_secs_f64();
        let mut row = vec![
            k.to_string(),
            format!("{:.2}", greedy.boost),
            fmt_secs(t_greedy),
        ];
        for eps in [0.2, 0.6, 1.0] {
            let t0 = Instant::now();
            let dp = dp_boost(&tree, k, eps);
            row.push(format!("{:.2}", dp.boost));
            row.push(fmt_secs(t0.elapsed().as_secs_f64()));
        }
        rows.push(row);
    }
    print_table(
        &[
            "k",
            "greedy",
            "t(greedy)",
            "DP(0.2)",
            "t",
            "DP(0.6)",
            "t",
            "DP(1.0)",
            "t",
        ],
        &rows,
    );
    println!("\n(expected shape: DP ≈ greedy in quality; greedy orders of magnitude faster)");
}
