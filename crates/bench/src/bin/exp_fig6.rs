//! Figure 6: running time of PRR-Boost vs PRR-Boost-LB (influential seeds).

use kboost_bench::figures::time_experiment;
use kboost_bench::{Opts, SeedMode};

fn main() {
    let opts = Opts::from_args();
    println!("## Figure 6 — running time (influential seeds)");
    time_experiment(SeedMode::Influential, &opts);
}
