//! Figure 10: boost of influence vs k — random seeds, six algorithms.

use kboost_bench::figures::quality_experiment;
use kboost_bench::{Opts, SeedMode};

fn main() {
    let opts = Opts::from_args();
    println!("## Figure 10 — boost vs k (random seeds)");
    quality_experiment(SeedMode::Random, &opts);
}
