//! Figure 13: budget allocation between seeding and boosting
//! (Flixster-like and Flickr-like networks; cost ratios 100–800).

use kboost_bench::{load, print_table, Opts};
use kboost_core::{budget_sweep, BudgetOptions};
use kboost_datasets::Dataset;

fn main() {
    let opts = Opts::from_args();
    println!("## Figure 13 — budget allocation between seeding and boosting");
    let max_seeds = if opts.full { 100 } else { 20 };
    let fractions = [0.2, 0.4, 0.6, 0.8, 1.0];
    for dataset in [Dataset::Flixster, Dataset::Flickr] {
        let g = load(dataset, 2.0, &opts);
        println!(
            "\n### {} (n = {}, m = {})",
            dataset.name(),
            g.num_nodes(),
            g.num_edges()
        );
        let mut rows = Vec::new();
        for cost_ratio in [100usize, 200, 400, 800] {
            let budget = BudgetOptions {
                max_seeds,
                cost_ratio,
                boost: opts.boost_options(cost_ratio as u64),
                imm: opts.imm_params(1, cost_ratio as u64 + 1),
                mc: opts.mc(cost_ratio as u64 + 2),
            };
            let points = budget_sweep(&g, &fractions, &budget);
            let mut row = vec![format!("{cost_ratio}x")];
            for p in &points {
                row.push(format!("{:.0}", p.sigma));
            }
            rows.push(row);
        }
        print_table(
            &[
                "cost ratio",
                "20%",
                "40%",
                "60%",
                "80%",
                "100% (pure seeding)",
            ],
            &rows,
        );
    }
}
