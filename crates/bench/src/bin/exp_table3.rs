//! Table 3: compression ratio and memory usage (random seeds).

use kboost_bench::figures::compression_experiment;
use kboost_bench::{Opts, SeedMode};

fn main() {
    let opts = Opts::from_args();
    println!("## Table 3 — compression + memory (random seeds)\n");
    compression_experiment(SeedMode::Random, &opts);
}
