//! Perf + correctness harness for the online maintenance subsystem,
//! driven through the unified `kboost-engine` API.
//!
//! Builds an engine in online mode (fixed-size sampling) over a
//! preferential-attachment network, then applies a sequence of mutation
//! epochs through `Engine::apply_mutations`. Each epoch's batch is grown
//! (probability re-draws, removals, insertions on random edges) until it
//! invalidates ≈ `--churn` of the live stored graphs — sized with the
//! engine's `stale_graphs` dry run, which the maintainer now answers
//! from its **incrementally maintained** invalidation index — and is
//! then applied two ways:
//!
//! * **incrementally** (the engine's maintainer: tombstone the stale
//!   share, resample exactly that many samples under the
//!   `(base_seed, epoch, chunk)` seeds, compact past the threshold);
//! * **full rebuild** (a fresh engine over the mutated graph — what a
//!   pre-online deployment would do on every change).
//!
//! The recorded `speedup` is `rebuild_secs / refresh_secs` per epoch.
//! Note on comparability with pre-PR-4 numbers: the maintainer's
//! invalidation index is now built lazily and kept incrementally, so a
//! post-compaction rebuild lands in the first *dry run* that needs it
//! (the untimed `grow_batch` sizing phase here) rather than inside the
//! timed `apply_mutations` — `refresh_secs` therefore measures
//! tombstone + resample + index append, which is also what a service
//! that dry-runs its batches pays on the epoch path.
//! Because staleness detection only sees retained node tables, the
//! incremental pool drifts from a fresh pool's distribution on the
//! undetected share; `probe_delta_incremental` vs `probe_delta_rebuild`
//! records that drift on a *fixed* probe set (top in-degree non-seeds,
//! chosen independently of either pool — evaluating a pool's own greedy
//! pick would fold selection bias into the number; that estimate is
//! still reported as `delta_hat_selected`).
//!
//! The binary is also the CI determinism smoke for the subsystem: for
//! every thread count in `--threads` the whole epoch sequence is re-run
//! and must produce bit-identical arenas and epoch reports, and the
//! first thread count is additionally checked byte-for-byte against the
//! naive replay oracle (`rebuild_from_history` — incremental == rebuild).
//!
//! After the approximate phase (whose recorded numbers are a pure
//! function of the seeds and therefore stay bit-identical across
//! footprint-free code changes), the **same mutation history** is
//! replayed in `Staleness::Exact` mode: per epoch the exact engine's
//! probe `Δ̂` (`delta_hat_incremental`) is compared against a
//! from-scratch exact replay of the history prefix
//! (`delta_hat_rebuild`) — the recorded `drift` is asserted to be
//! **exactly zero** (the arenas are byte-equal), the approximate pool's
//! residual drift against the same ground truth is recorded as
//! `drift_approximate`, and the footprint columns' memory overhead is
//! reported. The exact run is also re-executed at every thread count
//! and must be bit-identical.
//!
//! Two further phases cover the production staleness tiers:
//!
//! * **Memory tiers** — the same history under `ExactCompressed`
//!   (verdicts asserted identical to sorted exact, bytes asserted
//!   never above sorted) and `ExactHybrid { bloom_above: 16 }`
//!   (never-miss asserted; peak footprint bytes asserted under a hard
//!   40 MiB budget at the default scale), per-epoch byte curves in
//!   `memory_tiers`.
//! * **Trace tier** — `ExactTrace` at a reduced pool size: each epoch's
//!   conditional replay must stay byte-equal to the from-scratch trace
//!   replay of the history prefix (`drift` asserted exactly zero), and
//!   the probe gap against an independent fresh pool over the mutated
//!   graph is recorded as `freshness_gap` (the statistical freshness
//!   assert lives in `tests/estimator_accuracy.rs`).
//!
//! ```text
//! cargo run --release -p kboost-bench --bin exp_online -- \
//!     [--nodes N] [--samples N] [--k N] [--epochs N] [--churn F] \
//!     [--threads 1,2] [--seed N] [--compact-threshold F] [--out PATH]
//! ```

use std::time::Instant;

use kboost_engine::{
    Algorithm, Engine, EngineBuilder, EpochBatch, MutationLog, Sampling, Staleness,
};
use kboost_graph::generators::preferential_attachment;
use kboost_graph::probability::{boost_probability, ProbabilityModel};
use kboost_graph::{DiGraph, EdgeProbs, NodeId};
use kboost_online::{rebuild_from_history, MaintainerOptions};
use kboost_prr::greedy_delta_selection;
use kboost_rrset::seeds::select_random_nodes;
use kboost_rrset::sketch::epoch_stream_seed;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

struct OnlineOpts {
    nodes: usize,
    samples: u64,
    k: usize,
    epochs: u64,
    churn: f64,
    threads: Vec<usize>,
    seed: u64,
    compact_threshold: f64,
    out: String,
}

fn parse_args() -> OnlineOpts {
    let mut opts = OnlineOpts {
        nodes: 20_000,
        samples: 40_000,
        k: 50,
        epochs: 3,
        churn: 0.10,
        threads: vec![1, 2],
        seed: 42,
        compact_threshold: 0.25,
        out: "BENCH_online.json".to_string(),
    };
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        let flag = args[i].as_str();
        let next = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i)
                .unwrap_or_else(|| panic!("{flag} needs a value"))
                .clone()
        };
        match flag {
            "--nodes" => opts.nodes = next(&mut i).parse().expect("--nodes N"),
            "--samples" => opts.samples = next(&mut i).parse().expect("--samples N"),
            "--k" => opts.k = next(&mut i).parse().expect("--k N"),
            "--epochs" => opts.epochs = next(&mut i).parse().expect("--epochs N"),
            "--churn" => opts.churn = next(&mut i).parse().expect("--churn F"),
            "--threads" => {
                opts.threads = next(&mut i)
                    .split(',')
                    .map(|t| t.trim().parse().expect("--threads N[,N...]"))
                    .collect();
                assert!(
                    !opts.threads.is_empty(),
                    "--threads needs at least one value"
                );
            }
            "--seed" => opts.seed = next(&mut i).parse().expect("--seed N"),
            "--compact-threshold" => {
                opts.compact_threshold = next(&mut i).parse().expect("--compact-threshold F")
            }
            "--out" => opts.out = next(&mut i),
            other => panic!("unknown flag {other}"),
        }
        i += 1;
    }
    opts
}

/// An online-mode engine over `g` — the maintainer behind one handle.
fn build_engine(g: &DiGraph, seeds: &[NodeId], opts: &OnlineOpts, threads: usize) -> Engine {
    build_engine_mode(g, seeds, opts, threads, Staleness::Approximate)
}

/// Same, with an explicit staleness rule (the exact phase).
fn build_engine_mode(
    g: &DiGraph,
    seeds: &[NodeId],
    opts: &OnlineOpts,
    threads: usize,
    staleness: Staleness,
) -> Engine {
    EngineBuilder::new(g.clone())
        .seeds(seeds.to_vec())
        .k(opts.k)
        .threads(threads)
        .seed(opts.seed)
        .sampling(Sampling::Fixed {
            samples: opts.samples,
        })
        .compact_threshold(opts.compact_threshold)
        .staleness(staleness)
        .build()
        .expect("valid engine configuration")
}

/// Grows a mutation batch on random edges of `g` until it invalidates at
/// least `churn` of the engine's live stored graphs (or a mutation budget
/// runs out). Deterministic in `rng`.
fn grow_batch(
    engine: &mut Engine,
    g: &DiGraph,
    log: &mut MutationLog,
    churn: f64,
    rng: &mut SmallRng,
) {
    let live = engine.pool().expect("pool built").arena().num_live();
    let want = ((live as f64) * churn).ceil() as usize;
    let edges: Vec<(NodeId, NodeId, EdgeProbs)> = g.edges().collect();
    let n = g.num_nodes() as u32;
    // Grow geometrically between dry runs; the incremental invalidation
    // index makes each dry run cheap (`O(touched + hits)`), but doubling
    // still keeps the untimed setup phase short.
    let mut step = 8usize;
    for _ in 0..64 {
        if engine
            .stale_graphs(log.pending())
            .expect("online mode")
            .len()
            >= want
        {
            break;
        }
        for _ in 0..step {
            match rng.random_range(0..4u32) {
                0 if !edges.is_empty() => {
                    // Remove a random existing edge.
                    let (u, v, _) = edges[rng.random_range(0..edges.len())];
                    log.remove_edge(u, v);
                }
                1 => {
                    // Insert a random fresh edge.
                    let u = rng.random_range(0..n);
                    let v = rng.random_range(0..n);
                    if u == v {
                        continue;
                    }
                    let p: f64 = rng.random_range(0.01..0.2);
                    log.insert_edge(
                        NodeId(u),
                        NodeId(v),
                        EdgeProbs::new(p, boost_probability(p, 2.0)).unwrap(),
                    );
                }
                _ if !edges.is_empty() => {
                    // Re-draw an existing edge's probability (fresh action
                    // logs): the most common production mutation.
                    let (u, v, _) = edges[rng.random_range(0..edges.len())];
                    let p: f64 = rng.random_range(0.01..0.3);
                    log.set_probs(u, v, EdgeProbs::new(p, boost_probability(p, 2.0)).unwrap());
                }
                _ => {}
            }
        }
        step = (step * 2).min(4_096);
    }
}

struct EpochPoint {
    epoch: u64,
    mutations: usize,
    invalidated: u64,
    invalidation_rate: f64,
    compacted: bool,
    refresh_secs: f64,
    rebuild_secs: f64,
    speedup: f64,
    live_bytes: usize,
    arena_bytes: usize,
    delta_selected: f64,
    probe_inc: f64,
    probe_rebuild: f64,
}

/// A boost set chosen independently of any sampled pool: the `k` highest
/// in-degree non-seed nodes (ties to the lower id). Evaluating both pools
/// on it isolates pool drift from selection bias.
fn probe_set(g: &DiGraph, seeds: &[NodeId], k: usize) -> Vec<NodeId> {
    let mut is_seed = vec![false; g.num_nodes()];
    for &s in seeds {
        is_seed[s.index()] = true;
    }
    let mut nodes: Vec<NodeId> = g.nodes().filter(|v| !is_seed[v.index()]).collect();
    nodes.sort_by_key(|&v| (std::cmp::Reverse(g.in_degree(v)), v.0));
    nodes.truncate(k);
    nodes
}

/// Full-rebuild baseline: a fresh engine sampling the whole pool over the
/// current graph (epoch-seeded so each baseline is an independent draw).
fn full_rebuild(
    g: &DiGraph,
    seeds: &[NodeId],
    opts: &OnlineOpts,
    epoch: u64,
    threads: usize,
) -> Engine {
    let mut engine = EngineBuilder::new(g.clone())
        .seeds(seeds.to_vec())
        .k(opts.k)
        .threads(threads)
        .seed(epoch_stream_seed(opts.seed ^ 0x5EED_F00D, epoch))
        .sampling(Sampling::Fixed {
            samples: opts.samples,
        })
        .build()
        .expect("valid engine configuration");
    engine.pool().expect("pool built");
    engine
}

fn main() {
    let opts = parse_args();

    let mut rng = SmallRng::seed_from_u64(opts.seed);
    let g0 = preferential_attachment(
        opts.nodes,
        4,
        0.15,
        ProbabilityModel::LogNormal {
            mu: -1.93,
            sigma: 1.0,
            cap: 1.0,
        },
        2.0,
        &mut rng,
    );
    let seeds = select_random_nodes(&g0, 50.min(opts.nodes / 4), &[], opts.seed ^ 0x5EED);
    eprintln!(
        "graph: {} nodes, {} edges; {} seeds, k = {}, {} samples, {} epochs at {:.0}% churn, \
         thread sweep {:?}",
        g0.num_nodes(),
        g0.num_edges(),
        seeds.len(),
        opts.k,
        opts.samples,
        opts.epochs,
        opts.churn * 100.0,
        opts.threads,
    );

    // The mutation history is fixed once (primary thread count) and then
    // replayed identically for every other thread count and the oracle.
    let primary = opts.threads[0];

    let t0 = Instant::now();
    let mut engine = build_engine(&g0, &seeds, &opts, primary);
    engine.pool().expect("pool built");
    let build_secs = t0.elapsed().as_secs_f64();
    let boostable0 = engine.pool().expect("pool built").num_boostable();
    eprintln!(
        "[epoch 0] built {} samples ({boostable0} boostable) in {build_secs:.2}s",
        engine.pool().expect("pool built").total_samples(),
    );

    let mut log = MutationLog::new();
    let mut mut_rng = SmallRng::seed_from_u64(opts.seed ^ 0xC0FFEE);
    let mut history: Vec<EpochBatch> = Vec::new();
    let mut points: Vec<EpochPoint> = Vec::new();
    let mut reports = Vec::new();

    for _ in 0..opts.epochs {
        let g = engine.graph().clone();
        grow_batch(&mut engine, &g, &mut log, opts.churn, &mut mut_rng);
        let batch = log.seal_epoch();

        let live_before = engine.pool().expect("pool built").arena().num_live();
        let t = Instant::now();
        let report = engine.apply_mutations(&batch).expect("contiguous epoch");
        let refresh_secs = t.elapsed().as_secs_f64();

        // Baseline: what a pre-online deployment pays for the same change.
        let t = Instant::now();
        let mut rebuilt = full_rebuild(engine.graph(), &seeds, &opts, report.epoch, primary);
        let rebuild_secs = t.elapsed().as_secs_f64();

        let selection = engine.solve(&Algorithm::PrrBoost).expect("solve");
        let delta_selected = selection.delta_hat.expect("PRR solve carries Δ̂");
        let probe = probe_set(engine.graph(), &seeds, opts.k);
        let probe_inc = engine.delta_hat(&probe).expect("pool built");
        let probe_rebuild = rebuilt.delta_hat(&probe).expect("pool built");

        let rate = report.invalidated as f64 / live_before.max(1) as f64;
        eprintln!(
            "[epoch {}] {} mutations invalidated {} graphs ({:.1}% of live): \
             refresh {refresh_secs:.2}s vs rebuild {rebuild_secs:.2}s → {:.1}x; \
             probe Δ̂ {probe_inc:.2} vs fresh {probe_rebuild:.2}{}",
            report.epoch,
            batch.mutations.len(),
            report.invalidated,
            rate * 100.0,
            rebuild_secs / refresh_secs.max(1e-9),
            if report.compacted { "; compacted" } else { "" },
        );
        points.push(EpochPoint {
            epoch: report.epoch,
            mutations: batch.mutations.len(),
            invalidated: report.invalidated,
            invalidation_rate: rate,
            compacted: report.compacted,
            refresh_secs,
            rebuild_secs,
            speedup: rebuild_secs / refresh_secs.max(1e-9),
            live_bytes: engine
                .pool()
                .expect("pool built")
                .arena()
                .live_memory_bytes(),
            arena_bytes: engine.pool().expect("pool built").arena().memory_bytes(),
            delta_selected,
            probe_inc,
            probe_rebuild,
        });
        history.push(batch);
        reports.push(report);
    }
    let final_selection = engine.solve(&Algorithm::PrrBoost).expect("solve");

    // Determinism: every other thread count must reproduce the primary
    // run's arena bytes (tombstones included) and epoch reports.
    for &threads in &opts.threads[1..] {
        let mut m = build_engine(&g0, &seeds, &opts, threads);
        for (batch, expect) in history.iter().zip(&reports) {
            let report = m.apply_mutations(batch).expect("contiguous epoch");
            assert_eq!(
                &report, expect,
                "epoch report differs at {threads} threads (epoch {})",
                batch.epoch
            );
        }
        assert!(
            m.pool().expect("pool built").arena() == engine.pool().expect("pool built").arena(),
            "maintained arena differs at {threads} threads vs {primary}"
        );
        let sel = m.solve(&Algorithm::PrrBoost).expect("solve");
        assert_eq!(
            sel.boost_set, final_selection.boost_set,
            "selection differs at {threads} threads"
        );
        eprintln!("[determinism] {threads} threads: bit-identical to {primary}-thread run");
    }

    // Equivalence oracle: incremental == from-scratch replay (legacy
    // payload pipeline, naive staleness scan, no tombstones) — the deep
    // module path kept precisely for this role.
    let oracle_opts = MaintainerOptions {
        target_samples: opts.samples,
        k: opts.k,
        threads: primary,
        base_seed: opts.seed,
        compact_threshold: opts.compact_threshold,
        staleness: Staleness::Approximate,
    };
    let t = Instant::now();
    let (_g, oracle) = rebuild_from_history(&g0, &seeds, &oracle_opts, &history);
    let oracle_secs = t.elapsed().as_secs_f64();
    let pool = engine.pool().expect("pool built");
    assert_eq!(oracle.total_samples(), pool.total_samples());
    assert_eq!(oracle.empty_samples(), pool.empty_samples());
    assert!(
        pool.arena().compacted() == *oracle.arena(),
        "incremental maintenance diverged from the replay rebuild oracle"
    );
    let oracle_selection = greedy_delta_selection(oracle.arena(), g0.num_nodes(), opts.k, primary);
    assert_eq!(
        final_selection.boost_set, oracle_selection.selected,
        "selection diverged from the replay rebuild oracle"
    );
    assert_eq!(final_selection.stats.covered, oracle_selection.covered);
    eprintln!("[oracle] incremental == rebuild (replay verified in {oracle_secs:.2}s)");

    // ---- Exact-staleness phase: same history, drift must be zero -----
    let exact_opts = MaintainerOptions {
        staleness: Staleness::Exact,
        ..oracle_opts
    };
    let t = Instant::now();
    let mut exact_engine = build_engine_mode(&g0, &seeds, &opts, primary, Staleness::Exact);
    exact_engine.pool().expect("pool built");
    let exact_build_secs = t.elapsed().as_secs_f64();
    let sorted_fp0 = {
        let arena = exact_engine.pool().expect("pool built").arena();
        eprintln!(
            "[exact epoch 0] built in {exact_build_secs:.2}s; footprints {} KiB over a {} KiB \
             arena ({:.1}% overhead)",
            arena.footprint_memory_bytes() / 1024,
            arena.memory_bytes() / 1024,
            100.0 * arena.footprint_memory_bytes() as f64 / arena.memory_bytes().max(1) as f64,
        );
        arena.footprint_memory_bytes()
    };

    struct ExactPoint {
        epoch: u64,
        invalidated: u64,
        invalidated_empty: u64,
        refresh_secs: f64,
        oracle_secs: f64,
        footprint_bytes: usize,
        footprint_overhead: f64,
        delta_inc: f64,
        delta_rebuild: f64,
        drift: f64,
        drift_approx: f64,
    }
    let mut exact_points: Vec<ExactPoint> = Vec::new();
    let mut exact_reports = Vec::new();
    for (i, batch) in history.iter().enumerate() {
        let t = Instant::now();
        let report = exact_engine
            .apply_mutations(batch)
            .expect("contiguous epoch");
        let refresh_secs = t.elapsed().as_secs_f64();

        // Ground truth: from-scratch exact replay of the history prefix.
        let t = Instant::now();
        let (_g, rebuilt) = rebuild_from_history(&g0, &seeds, &exact_opts, &history[..=i]);
        let exact_oracle_secs = t.elapsed().as_secs_f64();
        {
            let pool = exact_engine.pool().expect("pool built");
            assert_eq!(pool.total_samples(), rebuilt.total_samples());
            assert_eq!(pool.empty_samples(), rebuilt.empty_samples());
            assert!(
                pool.arena().compacted() == *rebuilt.arena(),
                "exact incremental diverged from the exact replay at epoch {}",
                report.epoch
            );
        }
        let probe = probe_set(exact_engine.graph(), &seeds, opts.k);
        let delta_inc = exact_engine.delta_hat(&probe).expect("pool built");
        let delta_rebuild = rebuilt.delta_hat(&probe);
        let drift = (delta_inc - delta_rebuild).abs();
        assert_eq!(
            drift, 0.0,
            "exact staleness must have zero incremental-vs-rebuild drift"
        );
        // The approximate phase probed the same (graph, seeds, k) set at
        // this epoch; its residual gap against the exact ground truth is
        // the under-detection the exact mode closes.
        let drift_approx = (points[i].probe_inc - delta_rebuild).abs();
        let arena = exact_engine.pool().expect("pool built").arena();
        let footprint_bytes = arena.footprint_memory_bytes();
        let footprint_overhead = footprint_bytes as f64 / arena.memory_bytes().max(1) as f64;
        eprintln!(
            "[exact epoch {}] invalidated {} ({} empty) in {refresh_secs:.2}s; \
             Δ̂ {delta_inc:.2} == rebuild {delta_rebuild:.2} (drift 0); \
             approximate pool drifts {drift_approx:.2}",
            report.epoch, report.invalidated, report.invalidated_empty,
        );
        exact_points.push(ExactPoint {
            epoch: report.epoch,
            invalidated: report.invalidated,
            invalidated_empty: report.invalidated_empty,
            refresh_secs,
            oracle_secs: exact_oracle_secs,
            footprint_bytes,
            footprint_overhead,
            delta_inc,
            delta_rebuild,
            drift,
            drift_approx,
        });
        exact_reports.push(report);
    }

    // Exact-mode thread determinism: bit-identical reports and arenas.
    for &threads in &opts.threads[1..] {
        let mut m = build_engine_mode(&g0, &seeds, &opts, threads, Staleness::Exact);
        for (batch, expect) in history.iter().zip(&exact_reports) {
            let report = m.apply_mutations(batch).expect("contiguous epoch");
            assert_eq!(
                &report, expect,
                "exact epoch report differs at {threads} threads (epoch {})",
                batch.epoch
            );
        }
        assert!(
            m.pool().expect("pool built").arena()
                == exact_engine.pool().expect("pool built").arena(),
            "exact maintained arena differs at {threads} threads vs {primary}"
        );
        eprintln!("[exact determinism] {threads} threads: bit-identical to {primary}-thread run");
    }

    // ---- Memory tiers: compressed + hybrid footprints, same history ---
    //
    // Each tier replays the identical epoch sequence and records its
    // footprint bytes per epoch (index 0 = the initial build). The
    // compressed tier must answer bit-identically to sorted exact
    // storage (same epoch reports) while never spending more footprint
    // bytes; the hybrid tier caps the heavy tail with fingerprints and
    // must stay under a hard byte budget at the default scale.
    const HYBRID_BLOOM_ABOVE: u32 = 16;
    const HYBRID_CAP_BYTES: usize = 40 * 1024 * 1024;
    let run_tier = |staleness: Staleness| -> (f64, Vec<usize>, Vec<kboost_online::EpochReport>) {
        let t = Instant::now();
        let mut m = build_engine_mode(&g0, &seeds, &opts, primary, staleness);
        m.pool().expect("pool built");
        let build_secs = t.elapsed().as_secs_f64();
        let mut bytes = vec![m
            .pool()
            .expect("pool built")
            .arena()
            .footprint_memory_bytes()];
        let mut tier_reports = Vec::new();
        for batch in &history {
            let report = m.apply_mutations(batch).expect("contiguous epoch");
            bytes.push(
                m.pool()
                    .expect("pool built")
                    .arena()
                    .footprint_memory_bytes(),
            );
            tier_reports.push(report);
        }
        (build_secs, bytes, tier_reports)
    };
    let sorted_bytes: Vec<usize> = std::iter::once(sorted_fp0)
        .chain(exact_points.iter().map(|p| p.footprint_bytes))
        .collect();
    let (compressed_build_secs, compressed_bytes, compressed_reports) =
        run_tier(Staleness::ExactCompressed);
    for (i, (report, expect)) in compressed_reports.iter().zip(&exact_reports).enumerate() {
        assert_eq!(
            report,
            expect,
            "compressed tier verdicts diverged from sorted exact at epoch {}",
            i + 1
        );
    }
    for (i, (&c, &s)) in compressed_bytes.iter().zip(&sorted_bytes).enumerate() {
        assert!(
            c <= s,
            "compressed footprints ({c} B) exceed sorted ({s} B) at epoch {i}"
        );
    }
    let (hybrid_build_secs, hybrid_bytes, hybrid_reports) = run_tier(Staleness::ExactHybrid {
        bloom_above: HYBRID_BLOOM_ABOVE,
    });
    // Never-miss is a per-query property against a shared pool state;
    // the pools only coincide before the first refresh (the epoch-0
    // build is footprint-mode-independent), so the count comparison is
    // meaningful at epoch 1 alone — after an over-refresh the hybrid
    // pool's sample population diverges. The per-query guarantee across
    // arbitrary states is property-tested in `footprint_properties`.
    if let (Some(report), Some(expect)) = (hybrid_reports.first(), exact_reports.first()) {
        assert!(
            report.invalidated >= expect.invalidated,
            "hybrid tier under-detected stale samples at epoch 1"
        );
    }
    let hybrid_peak = hybrid_bytes.iter().copied().max().unwrap_or(0);
    assert!(
        hybrid_peak <= HYBRID_CAP_BYTES,
        "hybrid footprints peak at {hybrid_peak} B, over the {HYBRID_CAP_BYTES} B budget"
    );
    eprintln!(
        "[memory tiers] footprint bytes per epoch — sorted {:?}, compressed {:?}, hybrid {:?} \
         (peak {:.1} MiB ≤ {} MiB budget)",
        sorted_bytes,
        compressed_bytes,
        hybrid_bytes,
        hybrid_peak as f64 / (1024.0 * 1024.0),
        HYBRID_CAP_BYTES / (1024 * 1024),
    );

    // ---- Trace tier: conditional replay, distribution-fresh ----------
    //
    // Retaining phase-I coin outcomes costs trace bytes per sample, so
    // the freshness leg runs at a reduced pool size. Per epoch the
    // replayed pool must stay byte-equal to the from-scratch trace
    // replay of the history prefix (zero drift); the probe gap against
    // an *independent* fresh pool over the mutated graph is recorded as
    // `freshness_gap` (stochastic — asserted statistically in
    // `tests/estimator_accuracy.rs`, recorded here for trend tracking).
    let trace_samples = (opts.samples / 8).max(1_000);
    let trace_opts = MaintainerOptions {
        target_samples: trace_samples,
        staleness: Staleness::ExactTrace,
        ..oracle_opts
    };
    let t = Instant::now();
    let mut trace_engine = EngineBuilder::new(g0.clone())
        .seeds(seeds.to_vec())
        .k(opts.k)
        .threads(primary)
        .seed(opts.seed)
        .sampling(Sampling::Fixed {
            samples: trace_samples,
        })
        .compact_threshold(opts.compact_threshold)
        .staleness(Staleness::ExactTrace)
        .build()
        .expect("valid engine configuration");
    trace_engine.pool().expect("pool built");
    let trace_build_secs = t.elapsed().as_secs_f64();

    struct TracePoint {
        epoch: u64,
        invalidated: u64,
        invalidated_empty: u64,
        replay_secs: f64,
        footprint_bytes: usize,
        delta_inc: f64,
        delta_rebuild: f64,
        drift: f64,
        probe_fresh: f64,
        freshness_gap: f64,
    }
    let mut trace_points: Vec<TracePoint> = Vec::new();
    for (i, batch) in history.iter().enumerate() {
        let t = Instant::now();
        let report = trace_engine
            .apply_mutations(batch)
            .expect("contiguous epoch");
        let replay_secs = t.elapsed().as_secs_f64();

        let (_g, rebuilt) = rebuild_from_history(&g0, &seeds, &trace_opts, &history[..=i]);
        {
            let pool = trace_engine.pool().expect("pool built");
            assert_eq!(pool.total_samples(), rebuilt.total_samples());
            assert_eq!(pool.empty_samples(), rebuilt.empty_samples());
            assert!(
                pool.arena().compacted() == *rebuilt.arena(),
                "trace replay diverged from the trace rebuild oracle at epoch {}",
                report.epoch
            );
        }
        let probe = probe_set(trace_engine.graph(), &seeds, opts.k);
        let delta_inc = trace_engine.delta_hat(&probe).expect("pool built");
        let delta_rebuild = rebuilt.delta_hat(&probe);
        let drift = (delta_inc - delta_rebuild).abs();
        assert_eq!(drift, 0.0, "trace tier must have zero replay drift");

        // Independent fresh pool over the mutated graph, same size.
        let mut fresh = EngineBuilder::new(trace_engine.graph().clone())
            .seeds(seeds.to_vec())
            .k(opts.k)
            .threads(primary)
            .seed(epoch_stream_seed(opts.seed ^ 0xF4E5, report.epoch))
            .sampling(Sampling::Fixed {
                samples: trace_samples,
            })
            .build()
            .expect("valid engine configuration");
        let probe_fresh = fresh.delta_hat(&probe).expect("pool built");
        let freshness_gap = (delta_inc - probe_fresh).abs();

        let footprint_bytes = trace_engine
            .pool()
            .expect("pool built")
            .arena()
            .footprint_memory_bytes();
        eprintln!(
            "[trace epoch {}] replayed {} stale ({} empty) in {replay_secs:.2}s; \
             Δ̂ {delta_inc:.2} == rebuild {delta_rebuild:.2} (drift 0); \
             fresh pool Δ̂ {probe_fresh:.2} (gap {freshness_gap:.2})",
            report.epoch, report.invalidated, report.invalidated_empty,
        );
        trace_points.push(TracePoint {
            epoch: report.epoch,
            invalidated: report.invalidated,
            invalidated_empty: report.invalidated_empty,
            replay_secs,
            footprint_bytes,
            delta_inc,
            delta_rebuild,
            drift,
            probe_fresh,
            freshness_gap,
        });
    }
    let trace_max_drift = trace_points.iter().map(|p| p.drift).fold(0.0f64, f64::max);

    let mean_speedup = points.iter().map(|p| p.speedup).sum::<f64>() / points.len().max(1) as f64;
    let min_speedup = points
        .iter()
        .map(|p| p.speedup)
        .fold(f64::INFINITY, f64::min);
    let epoch_json: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{ \"epoch\": {}, \"mutations\": {}, \"invalidated\": {}, \
                 \"invalidation_rate\": {:.4}, \"compacted\": {}, \"refresh_secs\": {:.4}, \
                 \"rebuild_secs\": {:.4}, \"speedup\": {:.2}, \"live_bytes\": {}, \
                 \"arena_bytes\": {}, \"delta_hat_selected\": {:.4}, \
                 \"probe_delta_incremental\": {:.4}, \"probe_delta_rebuild\": {:.4} }}",
                p.epoch,
                p.mutations,
                p.invalidated,
                p.invalidation_rate,
                p.compacted,
                p.refresh_secs,
                p.rebuild_secs,
                p.speedup,
                p.live_bytes,
                p.arena_bytes,
                p.delta_selected,
                p.probe_inc,
                p.probe_rebuild,
            )
        })
        .collect();
    let exact_epoch_json: Vec<String> = exact_points
        .iter()
        .map(|p| {
            format!(
                "      {{ \"epoch\": {}, \"invalidated\": {}, \"invalidated_empty\": {}, \
                 \"refresh_secs\": {:.4}, \"rebuild_oracle_secs\": {:.4}, \
                 \"footprint_bytes\": {}, \"footprint_overhead\": {:.4}, \
                 \"delta_hat_incremental\": {:.4}, \"delta_hat_rebuild\": {:.4}, \
                 \"drift\": {:.4}, \"drift_approximate\": {:.4} }}",
                p.epoch,
                p.invalidated,
                p.invalidated_empty,
                p.refresh_secs,
                p.oracle_secs,
                p.footprint_bytes,
                p.footprint_overhead,
                p.delta_inc,
                p.delta_rebuild,
                p.drift,
                p.drift_approx,
            )
        })
        .collect();
    let max_drift = exact_points.iter().map(|p| p.drift).fold(0.0f64, f64::max);
    let max_drift_approx = exact_points
        .iter()
        .map(|p| p.drift_approx)
        .fold(0.0f64, f64::max);
    let trace_epoch_json: Vec<String> = trace_points
        .iter()
        .map(|p| {
            format!(
                "      {{ \"epoch\": {}, \"invalidated\": {}, \"invalidated_empty\": {}, \
                 \"replay_secs\": {:.4}, \"footprint_bytes\": {}, \
                 \"delta_hat_incremental\": {:.4}, \"delta_hat_rebuild\": {:.4}, \
                 \"drift\": {:.4}, \"probe_delta_fresh\": {:.4}, \"freshness_gap\": {:.4} }}",
                p.epoch,
                p.invalidated,
                p.invalidated_empty,
                p.replay_secs,
                p.footprint_bytes,
                p.delta_inc,
                p.delta_rebuild,
                p.drift,
                p.probe_fresh,
                p.freshness_gap,
            )
        })
        .collect();
    let memory_tiers_json = format!(
        "{{\n    \"hybrid_bloom_above\": {HYBRID_BLOOM_ABOVE},\n    \
         \"hybrid_cap_bytes\": {HYBRID_CAP_BYTES},\n    \
         \"compressed_build_secs\": {compressed_build_secs:.4},\n    \
         \"hybrid_build_secs\": {hybrid_build_secs:.4},\n    \
         \"sorted_bytes\": {sorted_bytes:?},\n    \
         \"compressed_bytes\": {compressed_bytes:?},\n    \
         \"hybrid_bytes\": {hybrid_bytes:?}\n  }}"
    );
    // Box context: a 1-core box makes any thread sweep meaningless, so
    // the JSON must say so (CI gates the presence of these fields).
    let nproc = std::thread::available_parallelism().map_or(1, |p| p.get());
    let json = format!(
        "{{\n  \"nodes\": {},\n  \"edges\": {},\n  \"num_seeds\": {},\n  \"k\": {},\n  \
         \"seed\": {},\n  \"nproc\": {},\n  \"single_core\": {},\n  \"samples\": {},\n  \
         \"churn_target\": {:.2},\n  \
         \"compact_threshold\": {:.2},\n  \"threads\": {:?},\n  \"build_secs\": {:.4},\n  \
         \"boostable_epoch0\": {},\n  \"mean_speedup\": {:.2},\n  \"min_speedup\": {:.2},\n  \
         \"epochs\": [\n{}\n  ],\n  \"exact\": {{\n    \"staleness\": \"exact\",\n    \
         \"build_secs\": {:.4},\n    \"max_drift\": {:.4},\n    \
         \"max_drift_approximate\": {:.4},\n    \"epochs\": [\n{}\n    ]\n  }},\n  \
         \"memory_tiers\": {},\n  \"trace\": {{\n    \"staleness\": \"exact_trace\",\n    \
         \"samples\": {},\n    \"build_secs\": {:.4},\n    \"max_drift\": {:.4},\n    \
         \"epochs\": [\n{}\n    ]\n  }}\n}}\n",
        g0.num_nodes(),
        g0.num_edges(),
        seeds.len(),
        opts.k,
        opts.seed,
        nproc,
        nproc == 1,
        opts.samples,
        opts.churn,
        opts.compact_threshold,
        opts.threads,
        build_secs,
        boostable0,
        mean_speedup,
        min_speedup,
        epoch_json.join(",\n"),
        exact_build_secs,
        max_drift,
        max_drift_approx,
        exact_epoch_json.join(",\n"),
        memory_tiers_json,
        trace_samples,
        trace_build_secs,
        trace_max_drift,
        trace_epoch_json.join(",\n"),
    );
    assert_eq!(max_drift, 0.0, "recorded exact-mode drift must be zero");
    assert_eq!(
        trace_max_drift, 0.0,
        "recorded trace-replay drift must be zero"
    );
    std::fs::write(&opts.out, &json).expect("write BENCH_online.json");
    println!("{json}");
    eprintln!("wrote {}", opts.out);
}
