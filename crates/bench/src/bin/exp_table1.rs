//! Table 1: dataset statistics and seed-set influence.

use kboost_bench::figures::datasets;
use kboost_bench::{eval_sigma, load, pick_seeds, print_table, Opts, SeedMode};
use kboost_graph::stats::graph_stats;

fn main() {
    let opts = Opts::from_args();
    println!("## Table 1 — dataset statistics (synthetic stand-ins)\n");
    let mut rows = Vec::new();
    for dataset in datasets(&opts) {
        let g = load(dataset, 2.0, &opts);
        let s = graph_stats(&g);
        let influential = pick_seeds(&g, SeedMode::Influential, &opts);
        let random = pick_seeds(&g, SeedMode::Random, &opts);
        let inf_sigma = eval_sigma(&g, &influential, &[], &opts);
        let rnd_sigma = eval_sigma(&g, &random, &[], &opts);
        let (n_t, m_t, p_t) = dataset.table1_targets();
        rows.push(vec![
            dataset.name().to_string(),
            s.nodes.to_string(),
            s.edges.to_string(),
            format!("{:.3}", s.avg_probability),
            format!("{:.0}", inf_sigma),
            format!("{:.0}", rnd_sigma),
            format!("(paper: n={n_t}, m={m_t}, p={p_t})"),
        ]);
    }
    print_table(
        &[
            "dataset",
            "n",
            "m",
            "avg p",
            "infl(50 IMM seeds)",
            "infl(random seeds)",
            "targets",
        ],
        &rows,
    );
}
