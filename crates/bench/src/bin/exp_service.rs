//! Perf + correctness harness for the serving subsystem: sustained
//! query throughput **under mutation churn** over epoch-pinned pool
//! snapshots, driven through `Engine::serving`.
//!
//! Builds an engine in online mode over a preferential-attachment
//! network, attaches the serving cell, and then — for every query-worker
//! count in `--threads` — re-runs the same deterministic mutation
//! history while the workers hammer `evaluate_many` on pinned
//! snapshots. The harness measures what a recommendation tier cares
//! about and asserts what the snapshot contract promises:
//!
//! * **queries/sec under churn**: candidate boost sets scored per second
//!   while mutation epochs commit and publish concurrently;
//! * **snapshot-publish latency**: per epoch, the cost of freezing the
//!   maintained state (flat-array clone) plus the pointer swap — the
//!   full price of making a committed epoch visible to readers, read
//!   back from the engine's `serve.publish_secs` histogram
//!   (nearest-rank percentiles, sample count emitted alongside — a p90
//!   over 4 publishes IS the max, and the JSON says so);
//! * **epoch-lag percentiles**: per query batch, how many committed
//!   epochs ahead the head was of the reader's pinned snapshot, from
//!   the `serve.epoch_lag` histogram the workers feed through
//!   [`SnapshotService::record_query`];
//! * **zero cross-epoch drift**: every answer a worker produced from a
//!   pinned epoch-`e` snapshot — including those served *while*
//!   `e + 1` was sampling and committing — must be **byte-identical**
//!   to the epoch-`e` oracle (the maintained pool's own answers,
//!   recorded at commit time). Asserted bitwise, recorded as
//!   `cross_epoch_drift` (gated `== 0` in CI);
//! * **batched ≡ per-set**: `evaluate_many` must match the per-set
//!   `Engine::evaluate` loop bit-for-bit on every run's final pool;
//! * **thread invariance**: the final head answers must be bit-identical
//!   across all query-worker counts.
//!
//! ```text
//! cargo run --release -p kboost-bench --bin exp_service -- \
//!     [--nodes N] [--samples N] [--k N] [--epochs N] [--batch N] \
//!     [--threads 1,2] [--engine-threads N] [--seed N] [--out PATH]
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use kboost_core::EvalManyScratch;
use kboost_engine::{
    Algorithm, Engine, EngineBuilder, EpochBatch, HistogramSummary, MetricsRecorder, MutationLog,
    NodeId, Sampling, SnapshotService,
};
use kboost_graph::generators::preferential_attachment;
use kboost_graph::probability::{boost_probability, ProbabilityModel};
use kboost_graph::{DiGraph, EdgeProbs};
use kboost_rrset::seeds::select_random_nodes;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

struct ServiceOpts {
    nodes: usize,
    samples: u64,
    k: usize,
    epochs: u64,
    batch: usize,
    threads: Vec<usize>,
    engine_threads: usize,
    seed: u64,
    out: String,
}

fn parse_args() -> ServiceOpts {
    let mut opts = ServiceOpts {
        nodes: 10_000,
        samples: 40_000,
        k: 20,
        epochs: 4,
        batch: 128,
        threads: vec![1, 2],
        engine_threads: 2,
        seed: 7,
        out: "BENCH_service.json".to_string(),
    };
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        let mut take = |name: &str| -> Option<String> {
            if args[i] == name {
                i += 1;
                Some(
                    args.get(i)
                        .unwrap_or_else(|| panic!("{name} needs a value"))
                        .clone(),
                )
            } else {
                None
            }
        };
        if let Some(v) = take("--nodes") {
            opts.nodes = v.parse().expect("--nodes");
        } else if let Some(v) = take("--samples") {
            opts.samples = v.parse().expect("--samples");
        } else if let Some(v) = take("--k") {
            opts.k = v.parse().expect("--k");
        } else if let Some(v) = take("--epochs") {
            opts.epochs = v.parse().expect("--epochs");
        } else if let Some(v) = take("--batch") {
            opts.batch = v.parse().expect("--batch");
        } else if let Some(v) = take("--threads") {
            opts.threads = v
                .split(',')
                .map(|t| t.trim().parse().expect("--threads"))
                .collect();
        } else if let Some(v) = take("--engine-threads") {
            opts.engine_threads = v.parse().expect("--engine-threads");
        } else if let Some(v) = take("--seed") {
            opts.seed = v.parse().expect("--seed");
        } else if let Some(v) = take("--out") {
            opts.out = v;
        } else {
            panic!("unknown argument: {}", args[i]);
        }
        i += 1;
    }
    opts
}

fn build_engine(
    g: &DiGraph,
    seeds: &[NodeId],
    opts: &ServiceOpts,
    recorder: Arc<MetricsRecorder>,
) -> Engine {
    EngineBuilder::new(g.clone())
        .seeds(seeds.to_vec())
        .k(opts.k)
        .threads(opts.engine_threads)
        .seed(opts.seed)
        .sampling(Sampling::Fixed {
            samples: opts.samples,
        })
        .recorder(recorder)
        .build()
        .expect("valid engine configuration")
}

/// The deterministic mutation history every run replays: per epoch, 40
/// probability re-draws on random existing edges.
fn make_history(g: &DiGraph, epochs: u64, seed: u64) -> Vec<EpochBatch> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xC0FFEE);
    let edges: Vec<_> = g.edges().collect();
    let mut log = MutationLog::new();
    (0..epochs)
        .map(|_| {
            for _ in 0..40 {
                let (u, v, _) = edges[rng.random_range(0..edges.len())];
                let p: f64 = rng.random_range(0.01..0.3);
                log.set_probs(u, v, EdgeProbs::new(p, boost_probability(p, 2.0)).unwrap());
            }
            log.seal_epoch()
        })
        .collect()
}

struct RunResult {
    query_threads: usize,
    elapsed_secs: f64,
    sets_scored: u64,
    batches: u64,
    /// `serve.publish_secs` summary — one observation per committed
    /// epoch, nearest-rank percentiles.
    publish: HistogramSummary,
    /// `serve.epoch_lag` summary — one observation per served batch.
    lag: HistogramSummary,
    head_answers: Vec<(f64, f64)>,
    cross_epoch_drift: f64,
}

/// One measured run: `query_threads` workers serving while the feeder
/// commits the shared mutation history on a freshly built engine.
fn run_once(
    g: &DiGraph,
    seeds: &[NodeId],
    opts: &ServiceOpts,
    history: &[EpochBatch],
    candidates: &[Vec<NodeId>],
    query_threads: usize,
) -> RunResult {
    let recorder = Arc::new(MetricsRecorder::new());
    let mut engine = build_engine(g, seeds, opts, recorder.clone());
    engine.pool().expect("pool built");
    let service: SnapshotService = engine.serving().expect("online mode");

    // Per-epoch oracle answers, recorded at commit time from the
    // maintained pool itself — the "pinned e oracle" concurrent reader
    // answers are checked against.
    let mut epoch_oracles: HashMap<u64, Vec<(f64, f64)>> = HashMap::new();
    epoch_oracles.insert(0, engine.evaluate_many(candidates).expect("pool built"));

    let pin0 = service.pin();
    let stop = AtomicBool::new(false);
    let t0 = Instant::now();

    type Observed = (HashMap<u64, Vec<(f64, f64)>>, u64, u64);
    let (observations, elapsed_secs) = std::thread::scope(|s| {
        let handles: Vec<_> = (0..query_threads)
            .map(|_| {
                let service = service.clone();
                let stop = &stop;
                s.spawn(move || -> Observed {
                    let mut observed: HashMap<u64, Vec<(f64, f64)>> = HashMap::new();
                    // One reusable workspace per worker: the batched
                    // kernel allocates nothing per call.
                    let mut scratch = EvalManyScratch::default();
                    let (mut sets, mut batches) = (0u64, 0u64);
                    while !stop.load(Ordering::Relaxed) {
                        let snap = service.pin();
                        let res = snap.evaluate_many_with(candidates, &mut scratch);
                        // Feeds serve.queries and the serve.epoch_lag
                        // histogram (head epoch minus pinned epoch).
                        service.record_query(&snap, candidates.len() as u64);
                        sets += candidates.len() as u64;
                        batches += 1;
                        observed.insert(snap.epoch(), res);
                    }
                    (observed, sets, batches)
                })
            })
            .collect();

        // The mutation feeder: commits each epoch — the maintainer
        // publishes the post-commit snapshot inside the commit and
        // records the full snapshot+swap cost into serve.publish_secs —
        // then records the epoch oracle.
        for batch in history {
            engine.apply_mutations(batch).expect("contiguous epoch");
            epoch_oracles.insert(
                batch.epoch,
                engine.evaluate_many(candidates).expect("pool built"),
            );
            // Give readers a churn-free window so the lag distribution
            // sees both mid-commit and settled pins.
            std::thread::sleep(Duration::from_millis(30));
        }
        stop.store(true, Ordering::Relaxed);
        let elapsed = t0.elapsed().as_secs_f64();
        (
            handles
                .into_iter()
                .map(|h| h.join().expect("query worker panicked"))
                .collect::<Vec<Observed>>(),
            elapsed,
        )
    });

    // Zero cross-epoch drift: every concurrently served answer must be
    // byte-identical to its pinned epoch's oracle.
    let mut drift = 0.0f64;
    for (observed, _, _) in &observations {
        for (epoch, res) in observed {
            let oracle = &epoch_oracles[epoch];
            assert_eq!(
                res, oracle,
                "served answers drifted from the epoch-{epoch} oracle"
            );
            for ((d, m), (od, om)) in res.iter().zip(oracle) {
                drift = drift.max((d - od).abs()).max((m - om).abs());
            }
        }
    }
    // The epoch-0 pin is still byte-identical after the whole history.
    assert_eq!(pin0.epoch(), 0);
    assert_eq!(pin0.evaluate_many(candidates), epoch_oracles[&0]);

    // Batched ≡ per-set on the final pool, and the head snapshot serves
    // exactly what the engine's own pool answers.
    let head = service.pin();
    assert_eq!(head.epoch(), history.last().map_or(0, |b| b.epoch));
    let head_answers = head.evaluate_many(candidates);
    let per_set: Vec<(f64, f64)> = candidates
        .iter()
        .map(|c| engine.evaluate(c).expect("pool built"))
        .collect();
    assert_eq!(
        head_answers, per_set,
        "evaluate_many diverged from the per-set evaluate oracle"
    );

    let (mut sets, mut batches) = (0u64, 0u64);
    for (_, s_, b) in observations {
        sets += s_;
        batches += b;
    }
    // The run's latency/lag numbers come from the obs histograms the
    // lifecycle itself fed — nearest-rank percentiles with the sample
    // count attached.
    let metrics = engine.metrics();
    let publish = metrics
        .histogram("serve.publish_secs")
        .cloned()
        .unwrap_or_default();
    let lag = metrics
        .histogram("serve.epoch_lag")
        .cloned()
        .unwrap_or_default();
    assert_eq!(
        publish.count,
        history.len() as u64,
        "one publish per committed epoch"
    );
    assert_eq!(lag.count, batches, "one lag observation per served batch");
    RunResult {
        query_threads,
        elapsed_secs,
        sets_scored: sets,
        batches,
        publish,
        lag,
        head_answers,
        cross_epoch_drift: drift,
    }
}

fn main() {
    let opts = parse_args();
    let mut rng = SmallRng::seed_from_u64(opts.seed);
    let g = preferential_attachment(
        opts.nodes,
        4,
        0.15,
        ProbabilityModel::LogNormal {
            mu: -1.93,
            sigma: 1.0,
            cap: 1.0,
        },
        2.0,
        &mut rng,
    );
    let seeds = select_random_nodes(&g, 20, &[], opts.seed ^ 1);
    eprintln!(
        "[setup] n = {}, m = {}, {} seeds, {} samples, {} epochs, batch {}",
        g.num_nodes(),
        g.num_edges(),
        seeds.len(),
        opts.samples,
        opts.epochs,
        opts.batch
    );

    // Candidate batch: perturbations of a solved boost set plus random
    // probes — deterministic, shared by every run.
    let t = Instant::now();
    let mut base_engine = build_engine(&g, &seeds, &opts, Arc::new(MetricsRecorder::new()));
    let solved = base_engine.solve(&Algorithm::PrrBoost).expect("solve");
    let build_secs = t.elapsed().as_secs_f64();
    let mut probe_rng = SmallRng::seed_from_u64(opts.seed ^ 0xFACADE);
    let width = solved.boost_set.len().clamp(1, 12);
    let candidates: Vec<Vec<NodeId>> = (0..opts.batch)
        .map(|i| {
            let mut set: Vec<NodeId> = solved.boost_set.iter().copied().take(width).collect();
            for _ in 0..(i % 5) + 1 {
                set[probe_rng.random_range(0..width as u32) as usize] =
                    NodeId(probe_rng.random_range(0..g.num_nodes() as u32));
            }
            set
        })
        .collect();
    // Batched ≡ per-set on the epoch-0 pool before any serving starts.
    let per_set: Vec<(f64, f64)> = candidates
        .iter()
        .map(|c| base_engine.evaluate(c).expect("pool built"))
        .collect();
    assert_eq!(
        base_engine.evaluate_many(&candidates).expect("pool built"),
        per_set,
        "evaluate_many diverged from the per-set oracle at epoch 0"
    );
    drop(base_engine);

    let history = make_history(&g, opts.epochs, opts.seed);
    let runs: Vec<RunResult> = opts
        .threads
        .iter()
        .map(|&t| {
            let r = run_once(&g, &seeds, &opts, &history, &candidates, t);
            eprintln!(
                "[run] {} query workers: {:.0} sets/s ({} batches over {:.2}s), \
                 publish p50 {:.2} ms (n={}), lag p90 {:.1} epochs (n={}), drift {}",
                r.query_threads,
                r.sets_scored as f64 / r.elapsed_secs,
                r.batches,
                r.elapsed_secs,
                r.publish.p50 * 1e3,
                r.publish.count,
                r.lag.p90,
                r.lag.count,
                r.cross_epoch_drift,
            );
            r
        })
        .collect();

    // Served answers are bit-identical across query-worker counts: the
    // pool is deterministic, and serving must not perturb it.
    for r in &runs[1..] {
        assert_eq!(
            r.head_answers, runs[0].head_answers,
            "served answers differ between {} and {} query workers",
            r.query_threads, runs[0].query_threads
        );
    }
    let max_drift = runs
        .iter()
        .map(|r| r.cross_epoch_drift)
        .fold(0.0f64, f64::max);
    assert_eq!(max_drift, 0.0, "cross-epoch answer drift must be zero");

    let nproc = std::thread::available_parallelism().map_or(1, |p| p.get());
    let run_json: Vec<String> = runs
        .iter()
        .map(|r| {
            format!(
                "    {{ \"query_threads\": {}, \"elapsed_secs\": {:.3}, \
                 \"sets_scored\": {}, \"batches\": {}, \"queries_per_sec\": {:.1}, \
                 \"batches_per_sec\": {:.2}, \
                 \"publish_ms\": {{ \"count\": {}, \"p50\": {:.3}, \"p90\": {:.3}, \
                 \"max\": {:.3} }}, \
                 \"epoch_lag\": {{ \"count\": {}, \"p50\": {:.2}, \"p90\": {:.2}, \
                 \"max\": {:.2} }}, \
                 \"cross_epoch_drift\": {:.1} }}",
                r.query_threads,
                r.elapsed_secs,
                r.sets_scored,
                r.batches,
                r.sets_scored as f64 / r.elapsed_secs,
                r.batches as f64 / r.elapsed_secs,
                r.publish.count,
                r.publish.p50 * 1e3,
                r.publish.p90 * 1e3,
                r.publish.max * 1e3,
                r.lag.count,
                r.lag.p50,
                r.lag.p90,
                r.lag.max,
                r.cross_epoch_drift,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"nodes\": {},\n  \"edges\": {},\n  \"num_seeds\": {},\n  \"k\": {},\n  \
         \"seed\": {},\n  \"nproc\": {},\n  \"single_core\": {},\n  \"samples\": {},\n  \
         \"epochs\": {},\n  \"batch\": {},\n  \"engine_threads\": {},\n  \
         \"build_secs\": {:.4},\n  \"evaluate_many_matches_oracle\": true,\n  \
         \"served_answers_thread_invariant\": true,\n  \"cross_epoch_drift\": {:.1},\n  \
         \"runs\": [\n{}\n  ]\n}}\n",
        g.num_nodes(),
        g.num_edges(),
        seeds.len(),
        opts.k,
        opts.seed,
        nproc,
        nproc == 1,
        opts.samples,
        opts.epochs,
        opts.batch,
        opts.engine_threads,
        build_secs,
        max_drift,
        run_json.join(",\n"),
    );
    std::fs::write(&opts.out, &json).expect("write BENCH_service.json");
    println!("{json}");
    eprintln!("wrote {}", opts.out);
}
