//! Figure 15: Greedy-Boost vs DP-Boost on trees of varying size (ε = 0.5).

use kboost_bench::{fmt_secs, print_table, Opts};
use kboost_graph::generators::complete_binary_tree;
use kboost_graph::probability::ProbabilityModel;
use kboost_rrset::seeds::select_random_nodes;
use kboost_tree::{dp_boost, greedy_boost, BidirectedTree};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let opts = Opts::from_args();
    let sizes: Vec<usize> = if opts.full {
        vec![1000, 2000, 3000, 4000, 5000]
    } else {
        vec![200, 400, 600, 800, 1000]
    };
    let k = if opts.full { 250 } else { 30 };
    println!("## Figure 15 — trees of varying size (ε = 0.5, k = {k})");

    let mut rows = Vec::new();
    for &n in &sizes {
        let mut rng = SmallRng::seed_from_u64(opts.seed + n as u64);
        let topo = complete_binary_tree(n);
        let g = topo.into_bidirected_graph(ProbabilityModel::Trivalency, 2.0, &mut rng);
        let seeds = select_random_nodes(&g, 50.min(n / 10), &[], opts.seed ^ n as u64);
        let tree = BidirectedTree::from_digraph(&g, &seeds).unwrap();

        let t0 = Instant::now();
        let greedy = greedy_boost(&tree, k);
        let t_greedy = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let dp = dp_boost(&tree, k, 0.5);
        let t_dp = t0.elapsed().as_secs_f64();
        rows.push(vec![
            n.to_string(),
            format!("{:.2}", greedy.boost),
            format!("{:.2}", dp.boost),
            fmt_secs(t_greedy),
            fmt_secs(t_dp),
        ]);
    }
    print_table(
        &["n", "greedy boost", "DP boost", "t(greedy)", "t(DP)"],
        &rows,
    );
}
