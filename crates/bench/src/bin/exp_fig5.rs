//! Figure 5: boost of influence vs k — influential seeds, six algorithms.

use kboost_bench::figures::quality_experiment;
use kboost_bench::{Opts, SeedMode};

fn main() {
    let opts = Opts::from_args();
    println!("## Figure 5 — boost vs k (influential seeds)");
    quality_experiment(SeedMode::Influential, &opts);
}
