//! Figure 7: sandwich-approximation ratio µ̂/Δ̂ (influential seeds, β=2).

use kboost_bench::figures::sandwich_experiment;
use kboost_bench::{Opts, SeedMode};

fn main() {
    let opts = Opts::from_args();
    println!("## Figure 7 — sandwich ratio (influential seeds)");
    let ks = opts.k_grid();
    sandwich_experiment(SeedMode::Influential, &[2.0], &ks, &opts);
}
