//! Perf-trajectory harness for the parallel PRR engine.
//!
//! Generates a preferential-attachment network, samples a large PRR-graph
//! pool in parallel, then runs greedy `Δ̂` boost selection twice — with the
//! inverted coverage index and with the naive per-round full re-traversal —
//! and writes the timings to `BENCH_prr.json`. Committed alongside the code
//! so the perf trajectory of the hot path is tracked across PRs.
//!
//! ```text
//! cargo run --release -p kboost-bench --bin exp_perf -- \
//!     [--nodes N] [--samples N] [--k N] [--threads N] [--seed N] [--out PATH]
//! ```

use std::time::Instant;

use kboost_core::PrrPool;
use kboost_graph::generators::preferential_attachment;
use kboost_graph::probability::ProbabilityModel;
use kboost_prr::{greedy_delta_selection, greedy_delta_selection_naive, PrrFullSource};
use kboost_rrset::seeds::select_random_nodes;
use kboost_rrset::sketch::SketchPool;
use rand::rngs::SmallRng;
use rand::SeedableRng;

struct PerfOpts {
    nodes: usize,
    samples: u64,
    k: usize,
    threads: usize,
    seed: u64,
    out: String,
}

fn parse_args() -> PerfOpts {
    let mut opts = PerfOpts {
        nodes: 60_000,
        samples: 120_000,
        k: 100,
        threads: 8,
        seed: 42,
        out: "BENCH_prr.json".to_string(),
    };
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        let flag = args[i].as_str();
        let next = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i)
                .unwrap_or_else(|| panic!("{flag} needs a value"))
                .clone()
        };
        match flag {
            "--nodes" => opts.nodes = next(&mut i).parse().expect("--nodes N"),
            "--samples" => opts.samples = next(&mut i).parse().expect("--samples N"),
            "--k" => opts.k = next(&mut i).parse().expect("--k N"),
            "--threads" => opts.threads = next(&mut i).parse().expect("--threads N"),
            "--seed" => opts.seed = next(&mut i).parse().expect("--seed N"),
            "--out" => opts.out = next(&mut i),
            other => panic!("unknown flag {other}"),
        }
        i += 1;
    }
    opts
}

fn main() {
    let opts = parse_args();

    let mut rng = SmallRng::seed_from_u64(opts.seed);
    // Digg-calibrated log-normal probabilities (Table 1) — the same model
    // the synthetic datasets use. (WeightedCascade is unusable here: the PA
    // generator samples probabilities before in-degrees are final.)
    let g = preferential_attachment(
        opts.nodes,
        4,
        0.15,
        ProbabilityModel::LogNormal {
            mu: -1.93,
            sigma: 1.0,
            cap: 1.0,
        },
        2.0,
        &mut rng,
    );
    let seeds = select_random_nodes(&g, 50, &[], opts.seed ^ 0x5EED);
    eprintln!(
        "graph: {} nodes, {} edges; {} seeds, k = {}, {} threads",
        g.num_nodes(),
        g.num_edges(),
        seeds.len(),
        opts.k,
        opts.threads
    );

    // Phase 1: parallel PRR-graph sampling into the flat arena.
    let t0 = Instant::now();
    let source = PrrFullSource::new(&g, &seeds, opts.k);
    let mut sketches = SketchPool::new(opts.seed, opts.threads);
    sketches.extend_to(&source, opts.samples);
    let gen_secs = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let pool = PrrPool::new(sketches, g.num_nodes(), opts.threads);
    let arena_build_secs = t1.elapsed().as_secs_f64();
    eprintln!(
        "sampled {} PRR-graphs ({} boostable, {} stored edges) in {gen_secs:.2}s (+{arena_build_secs:.2}s arena build)",
        pool.total_samples(),
        pool.num_boostable(),
        pool.arena().total_edges(),
    );

    // Phase 2: greedy Δ̂ selection, index-accelerated vs naive.
    let t2 = Instant::now();
    let indexed = greedy_delta_selection(pool.arena(), g.num_nodes(), opts.k, opts.threads);
    let indexed_secs = t2.elapsed().as_secs_f64();

    let t3 = Instant::now();
    let naive = greedy_delta_selection_naive(pool.arena(), g.num_nodes(), opts.k);
    let naive_secs = t3.elapsed().as_secs_f64();

    assert_eq!(
        indexed, naive,
        "index-accelerated selection diverged from the naive baseline"
    );
    let speedup = naive_secs / indexed_secs.max(1e-9);
    let delta_hat = pool.delta_hat(&indexed.selected);
    eprintln!(
        "selection: indexed {indexed_secs:.3}s vs naive {naive_secs:.3}s → {speedup:.1}x; \
         picked {} nodes covering {} graphs (Δ̂ = {delta_hat:.1})",
        indexed.selected.len(),
        indexed.covered,
    );

    let json = format!(
        "{{\n  \"nodes\": {},\n  \"edges\": {},\n  \"num_seeds\": {},\n  \"k\": {},\n  \
         \"threads\": {},\n  \"seed\": {},\n  \"samples\": {},\n  \"boostable\": {},\n  \
         \"arena_edges\": {},\n  \"arena_bytes\": {},\n  \"gen_secs\": {:.4},\n  \
         \"arena_build_secs\": {:.4},\n  \"indexed_select_secs\": {:.4},\n  \
         \"naive_select_secs\": {:.4},\n  \"select_speedup\": {:.2},\n  \
         \"covered\": {},\n  \"delta_hat\": {:.4}\n}}\n",
        g.num_nodes(),
        g.num_edges(),
        seeds.len(),
        opts.k,
        opts.threads,
        opts.seed,
        pool.total_samples(),
        pool.num_boostable(),
        pool.arena().total_edges(),
        pool.memory_bytes(),
        gen_secs,
        arena_build_secs,
        indexed_secs,
        naive_secs,
        speedup,
        indexed.covered,
        delta_hat,
    );
    std::fs::write(&opts.out, &json).expect("write BENCH_prr.json");
    println!("{json}");
    eprintln!("wrote {}", opts.out);
}
